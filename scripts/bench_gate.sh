#!/bin/sh
# Bench regression gate (DESIGN.md §13).
#
# Compares a fresh BENCH_results.json against the committed
# BENCH_baseline.json and fails if any simulated-time metric regressed
# beyond tolerance.  Only deterministic simulated measurements are
# gated:
#
#   - numeric leaves whose key ends in "_us"  fail when  new > old * (1 + TOL)
#   - numeric leaves whose key ends in "mb_s" fail when  new < old * (1 - TOL)
#
# The "microbench_ns_per_run" section is wall-clock (Bechamel) and is
# excluded: it measures the host machine, not the simulated one.
#
# Usage: scripts/bench_gate.sh [baseline] [results]
# Env:   BENCH_GATE_TOLERANCE  fractional tolerance (default 0.15)
set -eu
cd "$(dirname "$0")/.."

baseline=${1:-BENCH_baseline.json}
results=${2:-BENCH_results.json}
tol=${BENCH_GATE_TOLERANCE:-0.15}

test -s "$baseline" || { echo "bench_gate: missing $baseline" >&2; exit 1; }
test -s "$results" || { echo "bench_gate: missing $results" >&2; exit 1; }

if ! command -v python3 > /dev/null 2>&1; then
  # Without python3 the numeric comparison is impossible; require at
  # least that the artifact parses as the right schema by shape.
  grep -q '"uvm-bench/1"' "$results"
  echo 'bench_gate: python3 unavailable, shape-checked only'
  exit 0
fi

python3 - "$baseline" "$results" "$tol" <<'EOF'
import json, sys

baseline_path, results_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    base = json.load(f)
with open(results_path) as f:
    new = json.load(f)

for artifact, name in ((base, baseline_path), (new, results_path)):
    if artifact.get("schema") != "uvm-bench/1":
        sys.exit("bench_gate: %s: bad schema %r" % (name, artifact.get("schema")))

failures = []
checked = [0]
worst = [0.0, None]  # (relative slowdown, path)


def gate(path, old, cur):
    """Gate one numeric leaf; returns None or a failure line."""
    key = path.rsplit(".", 1)[-1]
    lower_is_better = key.endswith("_us")
    higher_is_better = key.endswith("mb_s")
    if not (lower_is_better or higher_is_better):
        return
    if not isinstance(old, (int, float)) or not isinstance(cur, (int, float)):
        return
    checked[0] += 1
    if old == 0:
        return  # no baseline signal; nothing to scale a tolerance from
    if lower_is_better:
        rel = (cur - old) / old
        bad = cur > old * (1.0 + tol)
    else:
        rel = (old - cur) / old
        bad = cur < old * (1.0 - tol)
    if rel > worst[0]:
        worst[0], worst[1] = rel, path
    if bad:
        failures.append(
            "  %-60s %12.3f -> %12.3f  (%+.1f%%)" % (path, old, cur, 100.0 * rel)
        )


def walk(path, old, cur):
    if isinstance(old, dict) and isinstance(cur, dict):
        missing = sorted(set(old) - set(cur))
        if missing:
            failures.append("  %s: keys dropped from results: %s" % (path, missing))
        for k in old:
            if k in cur:
                walk("%s.%s" % (path, k) if path else k, old[k], cur[k])
    elif isinstance(old, list) and isinstance(cur, list):
        if len(old) != len(cur):
            failures.append(
                "  %s: row count changed %d -> %d" % (path, len(old), len(cur))
            )
        for i, (o, c) in enumerate(zip(old, cur)):
            walk("%s[%d]" % (path, i), o, c)
    else:
        gate(path, old, cur)


# Gate only the deterministic simulated-time experiments; Bechamel
# wall-clock numbers vary with the host and are reported, not gated.
walk("experiments", base.get("experiments", {}), new.get("experiments", {}))

if not checked[0]:
    sys.exit("bench_gate: no gateable metrics found; baseline malformed?")

if failures:
    print("bench_gate: FAIL (%d of %d metrics beyond %.0f%% tolerance)"
          % (len(failures), checked[0], 100.0 * tol))
    for line in failures:
        print(line)
    sys.exit(1)

if worst[1] is None:
    print("bench_gate: OK (%d metrics, none slower than baseline)" % checked[0])
else:
    print("bench_gate: OK (%d metrics within %.0f%%; worst %+.1f%% at %s)"
          % (checked[0], 100.0 * tol, 100.0 * worst[0], worst[1]))
EOF

#!/bin/sh
# Tier-1 CI gate: full build (all targets, including bench, examples and
# the docs alias) with warnings treated as errors, then the test suite.
# Run from anywhere: paths are relative to the repository root.
set -eu
cd "$(dirname "$0")/.."

# Force a rebuild of every action so compiler warnings are re-emitted even
# on a warm _build, then fail if any slipped through.
out=$(dune build @all --force 2>&1) || {
  printf '%s\n' "$out"
  exit 1
}
if printf '%s' "$out" | grep -q 'Warning'; then
  printf '%s\n' "$out"
  echo 'ci: compiler warnings are errors' >&2
  exit 1
fi

dune runtest
echo 'ci: build clean, all tests passed'

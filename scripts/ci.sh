#!/bin/sh
# Tier-1 CI gate: full build (all targets, including bench, examples and
# the docs alias) with warnings treated as errors, then the test suite.
# Run from anywhere: paths are relative to the repository root.
set -eu
cd "$(dirname "$0")/.."

# Force a rebuild of every action so compiler warnings are re-emitted even
# on a warm _build, then fail if any slipped through.
out=$(dune build @all --force 2>&1) || {
  printf '%s\n' "$out"
  exit 1
}
if printf '%s' "$out" | grep -q 'Warning'; then
  printf '%s\n' "$out"
  echo 'ci: compiler warnings are errors' >&2
  exit 1
fi

dune runtest

# Trace-export smoke test: a short experiment run must produce a valid
# Chrome trace with fault and pagein events from both VM systems.
trace=$(mktemp /tmp/uvm-trace.XXXXXX.json)
trap 'rm -f "$trace"' EXIT
dune exec bin/uvm_sim.exe -- table2 --trace-out "$trace" > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "$trace" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    events = json.load(f)["traceEvents"]
labels = {e["pid"]: e["args"]["name"]
          for e in events
          if e["ph"] == "M" and e["name"] == "process_name"}
assert set(labels.values()) >= {"UVM", "BSD VM"}, labels
for want in ("fault", "pagein"):
    per_sys = {labels[e["pid"]] for e in events
               if e["ph"] != "M" and e["name"] == want}
    assert per_sys >= {"UVM", "BSD VM"}, (want, per_sys)
print("ci: trace export valid (%d events)" % len(events))
EOF
else
  # No python3: at least require a non-empty artifact with the right shape.
  grep -q '"traceEvents"' "$trace"
  echo 'ci: trace export produced (python3 unavailable, shape-checked only)'
fi

# Torture smoke: one fixed-seed differential run with periodic invariant
# audits on both VM systems.  On failure it leaves a crash artifact (op
# trace, failure, event ring, stats) in artifacts/torture/ for the CI
# workflow to upload.
dune exec bin/uvm_sim.exe -- torture --seed 42 --ops 2000 --audit-every 50 \
  --shrink --artifact-dir artifacts/torture

# Efficacy-report smoke (DESIGN.md §10): quick-mode ledger report over
# both systems, kept in artifacts/ for the workflow to upload.
mkdir -p artifacts
dune exec bin/uvm_sim.exe -- report --quick --out artifacts/report.json \
  > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - artifacts/report.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
assert r["schema"] == "uvm-sim-report/1", r.get("schema")
systems = {s["label"]: s for s in r["systems"]}
assert set(systems) >= {"UVM", "BSD VM"}, set(systems)
for label, s in systems.items():
    assert s["ledger"]["illegal_transitions"] == 0, label
    assert set(s["fault_ahead"]) == {"normal", "random", "sequential"}, label
print("ci: efficacy report valid (%d systems)" % len(r["systems"]))
EOF
else
  grep -q '"uvm-sim-report/1"' artifacts/report.json
  echo 'ci: efficacy report produced (python3 unavailable, shape-checked only)'
fi

# IPC serve smoke (DESIGN.md §11): quick client/server run under every
# policy on both systems.  The BSD rows must match its copy baseline (it
# has no zero-copy path to fall back from), and UVM's map-entry passing
# must beat copying at the largest payload in the sweep.
dune exec bin/uvm_sim.exe -- serve --quick --out artifacts/serve.json \
  > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - artifacts/serve.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
assert r["schema"] == "uvm-sim-serve/1", r.get("schema")
rows = r["rows"]
assert {x["system"] for x in rows} == {"UVM", "BSD VM"}, rows
assert {x["policy"] for x in rows} == {"copy", "loan", "mexp"}, rows
by = {(x["system"], x["policy"], x["payload"]): x["total_us"] for x in rows}
top = max(x["payload"] for x in rows)
for policy in ("loan", "mexp"):
    assert by[("BSD VM", policy, top)] == by[("BSD VM", "copy", top)], policy
assert by[("UVM", "mexp", top)] < by[("UVM", "copy", top)]
# Causal attribution (DESIGN.md §13): every row's per-subsystem p99
# breakdown must sum back to the measured p99 within 1%.
for x in rows:
    total = sum(part["self_us"] for part in x["p99_breakdown"])
    assert abs(total - x["p99_us"]) <= 0.01 * x["p99_us"], \
        (x["system"], x["policy"], x["payload"], total, x["p99_us"])
print("ci: serve results valid (%d rows, p99 breakdowns sum)" % len(rows))
EOF
else
  grep -q '"uvm-sim-serve/1"' artifacts/serve.json
  echo 'ci: serve results produced (python3 unavailable, shape-checked only)'
fi

# Observability smoke (DESIGN.md §13): a quick vmstat run must emit
# valid uvm-sim-metrics/1 and uvm-sim-spans/1 artifacts for both VM
# systems, with well-formed span trees (every non-root's parent exists
# in the same trace) and strictly increasing sample timestamps.
dune exec bin/uvm_sim.exe -- vmstat --quick \
  --metrics-out artifacts/metrics.json --spans-out artifacts/spans.json \
  > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - artifacts/metrics.json artifacts/spans.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
assert m["schema"] == "uvm-sim-metrics/1", m.get("schema")
systems = {s["label"]: s for s in m["systems"]}
assert set(systems) >= {"UVM", "BSD VM"}, set(systems)
for label, s in systems.items():
    cols = s["columns"]
    assert {"free_pages", "faults", "swap_slots_used"} <= set(cols), label
    ts = [row["ts"] for row in s["samples"]]
    assert len(ts) >= 2, label
    assert all(a < b for a, b in zip(ts, ts[1:])), label
    assert all(len(row["values"]) == len(cols) for row in s["samples"]), label
with open(sys.argv[2]) as f:
    sp = json.load(f)
assert sp["schema"] == "uvm-sim-spans/1", sp.get("schema")
spsys = {s["label"]: s for s in sp["systems"]}
assert set(spsys) >= {"UVM", "BSD VM"}, set(spsys)
nspans = 0
for label, s in spsys.items():
    spans = s["spans"]
    assert spans, label
    by_id = {(x["trace"], x["span"]): x for x in spans}
    roots = 0
    for x in spans:
        assert x["dur"] >= 0, (label, x)
        if x["parent"] == 0:
            roots += 1
        else:
            parent = by_id.get((x["trace"], x["parent"]))
            assert parent is not None, (label, x)
            assert parent["ts"] <= x["ts"] + 1e-9, (label, x)
    assert roots > 0, label
    assert {x["subsys"] for x in spans} >= {"fault", "pager"}, label
    nspans += len(spans)
print("ci: observability artifacts valid (%d spans)" % nspans)
EOF
else
  grep -q '"uvm-sim-metrics/1"' artifacts/metrics.json
  grep -q '"uvm-sim-spans/1"' artifacts/spans.json
  echo 'ci: observability artifacts produced (python3 unavailable, shape-checked only)'
fi

# Tier-failover resilience smoke: stream a working set through a
# fast+slow swap pair, kill the fast device mid-stream, and require both
# kernels to survive with zero lost pages and a warm swapcache before
# the death.
dune exec bin/uvm_sim.exe -- resilience --quick \
  --out artifacts/resilience.json > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - artifacts/resilience.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
assert r["schema"] == "uvm-sim-resilience/1", r.get("schema")
rows = r["rows"]
assert {x["system"] for x in rows} == {"UVM", "BSD VM"}, rows
for x in rows:
    assert x["survived"], x["system"]
    assert x["lost_pages"] == 0, (x["system"], x["lost_pages"])
    assert x["devices_dead"] == 1, x["system"]
    assert x["migrations"] + x["failovers"] > 0, x["system"]
    assert x["hit_rate_before"] > 0, x["system"]
print("ci: resilience valid (%d rows, no lost pages)" % len(rows))
EOF
else
  grep -q '"uvm-sim-resilience/1"' artifacts/resilience.json
  echo 'ci: resilience produced (python3 unavailable, shape-checked only)'
fi

# Chaos soak smoke: a compressed scenario composing device death, I/O
# storms, pressure spikes, rlimit squeezes and fork churn.  Both kernels
# must pass every SLO — zero audit failures, zero lost pages, bounded
# p99 fault latency, every OOM kill attributed to a chaos phase.  The
# soak binary exits non-zero on any SLO failure, so the run itself is
# the gate; the validator re-checks the artifact's schema and SLOs.
dune exec bin/uvm_sim.exe -- soak --quick \
  --out artifacts/soak.json > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - artifacts/soak.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
assert r["schema"] == "uvm-sim-soak/1", r.get("schema")
rows = r["systems"]
assert {x["label"] for x in rows} == {"UVM", "BSD VM"}, rows
for x in rows:
    assert x["passed"], x["label"]
    slo = x["slo"]
    assert slo["audit_failures"] == 0, (x["label"], slo)
    assert slo["lost_pages"] == 0, (x["label"], slo)
    assert slo["p99_fault_us"] <= slo["p99_bound_us"], (x["label"], slo)
    assert slo["unattributed_ooms"] == 0, (x["label"], slo)
    for k in x["kills"]:
        assert k["phase"] != "unattributed", (x["label"], k)
print("ci: soak valid (%d systems, all SLOs green)" % len(rows))
EOF
else
  grep -q '"uvm-sim-soak/1"' artifacts/soak.json
  grep -q '"audit_failures":0' artifacts/soak.json
  grep -q '"lost_pages":0' artifacts/soak.json
  echo 'ci: soak produced (python3 unavailable, shape-checked only)'
fi

# Lock observatory smoke (DESIGN.md §15): one paging+IPC workload through
# every registered lock class on both kernels.  Requires >= 6 held lock
# classes per system, a cycle-free observed lock-order graph, and folded
# flamegraph self-times that telescope to the measured wall within 1%.
dune exec bin/uvm_sim.exe -- lockstat --out artifacts/lockstat.json \
  --folded-out artifacts/profile.folded > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - artifacts/lockstat.json artifacts/profile.folded <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
assert r["schema"] == "uvm-sim-lockstat/1", r.get("schema")
assert abs(r["folded_total_us"] - r["wall_us"]) <= 0.01 * r["wall_us"], \
    (r["folded_total_us"], r["wall_us"])
systems = {s["label"]: s for s in r["systems"]}
assert set(systems) >= {"UVM", "BSD VM"}, set(systems)
for label, s in systems.items():
    held = [c for c in s["classes"] if c["acquires"] > 0]
    assert len(held) >= 6, (label, [c["class"] for c in held])
    assert s["cycles"] == [], (label, s["cycles"])
    for c in held:
        h = c["hold_us"]
        assert h["count"] == c["acquires"], (label, c["class"])
        assert c["reads"] + c["writes"] == c["acquires"], (label, c["class"])
        attributed = sum(b["holds"] for b in c["by_subsys"])
        assert attributed == c["acquires"], (label, c["class"], attributed)
    assert s["order_edges"], label
total = 0.0
with open(sys.argv[2]) as f:
    for line in f:
        path, weight = line.rsplit(" ", 1)
        assert ";" in path, line
        total += float(weight)
assert abs(total - r["wall_us"]) <= 0.01 * r["wall_us"], (total, r["wall_us"])
print("ci: lockstat valid (%d classes held, folded telescopes)"
      % sum(len([c for c in s["classes"] if c["acquires"] > 0])
            for s in r["systems"]))
EOF
else
  grep -q '"uvm-sim-lockstat/1"' artifacts/lockstat.json
  grep -q '"cycles":\[\]' artifacts/lockstat.json
  test -s artifacts/profile.folded
  echo 'ci: lockstat produced (python3 unavailable, shape-checked only)'
fi

# Simulated-SMP smoke (DESIGN.md §16): the 4-CPU storm on both kernels
# with periodic sharding audits.  Gates on zero audit failures, a
# speedup of at least 1 over the 1-CPU baseline, and the lockless
# lookup fast path serving the majority of page lookups.
dune exec bin/uvm_sim.exe -- smp --cpus 4 --quick \
  --out artifacts/smp.json > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - artifacts/smp.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
assert r["schema"] == "uvm-sim-smp/1", r.get("schema")
assert r["cpus"] == 4, r["cpus"]
systems = {s["system"]: s for s in r["systems"]}
assert set(systems) == {"UVM", "BSD VM"}, set(systems)
for label, s in systems.items():
    for run in (s["baseline"], s["parallel"]):
        assert run["audit_failures"] == [], (label, run["audit_failures"])
        assert run["audits"] > 0, label
    assert s["speedup"] >= 1.0, (label, s["speedup"])
    assert s["fast_hit_rate"] > 0.5, (label, s["fast_hit_rate"])
    par = s["parallel"]
    assert len(par["cpus_detail"]) == 4, label
    assert sum(c["quanta"] for c in par["cpus_detail"]) == par["quanta"], label
# The paper's asymmetry, measured: the shared-anon storm must make the
# object class BSD VM's top waiter while UVM's amap layer spreads it.
assert systems["BSD VM"]["top_wait_class"] == "object", \
    systems["BSD VM"]["top_wait_class"]
assert systems["UVM"]["top_wait_class"] != "object", \
    systems["UVM"]["top_wait_class"]
print("ci: smp valid (UVM %.2fx, BSD VM %.2fx at 4 cpus, audits clean)"
      % (systems["UVM"]["speedup"], systems["BSD VM"]["speedup"]))
EOF
else
  grep -q '"uvm-sim-smp/1"' artifacts/smp.json
  grep -q '"audit_failures":\[\]' artifacts/smp.json
  echo 'ci: smp produced (python3 unavailable, shape-checked only)'
fi

# Full bench: reproduces every paper table/figure, the ablations and the
# embedded efficacy report; leaves BENCH_results.json at the repo root so
# the workflow can start accumulating the bench trajectory.
dune exec bench/main.exe > /dev/null
test -s BENCH_results.json

# Regression gate: fail if any simulated-time metric in the fresh bench
# run regressed more than 15% against the committed baseline.
sh scripts/bench_gate.sh BENCH_baseline.json BENCH_results.json

echo 'ci: build clean, all tests passed'

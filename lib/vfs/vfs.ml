module Vnode = Vnode

type t = {
  page_size : int;
  max_vnodes : int;
  disk : Sim.Disk.t;
  clock : Sim.Simclock.t;
  costs : Sim.Cost_model.t;
  stats : Sim.Stats.t;
  files : (string, Vnode.t) Hashtbl.t;
  free_lru : Vnode.t Sim.Dlist.t;
  mutable incore : int;
  mutable next_vid : int;
  mutable recycle_hooks : (Vnode.t -> unit) list;
}

let create ?(max_vnodes = 2048) ~page_size ~clock ~costs ~stats () =
  {
    page_size;
    max_vnodes;
    disk = Sim.Disk.create ~clock ~costs ~stats;
    clock;
    costs;
    stats;
    files = Hashtbl.create 256;
    free_lru = Sim.Dlist.create ();
    incore = 0;
    next_vid = 0;
    recycle_hooks = [];
  }

let page_size t = t.page_size
let disk t = t.disk
let incore_count t = t.incore
let free_list_length t = Sim.Dlist.length t.free_lru
let register_recycle_hook t f = t.recycle_hooks <- f :: t.recycle_hooks

let file_byte ~name ~off =
  (* Cheap deterministic mixing of the name hash and the offset. *)
  let h = Hashtbl.hash name in
  let v = (h * 31) lxor off lxor ((off lsr 8) * 131) in
  Char.chr (v land 0xff)

let fill_pattern ~name data =
  for i = 0 to Bytes.length data - 1 do
    Bytes.unsafe_set data i (file_byte ~name ~off:i)
  done

(* Discard the in-core state of an unreferenced vnode. *)
let recycle t (vn : Vnode.t) =
  assert (vn.usecount = 0);
  List.iter (fun hook -> hook vn) t.recycle_hooks;
  vn.vm_private <- Vnode.No_vm;
  vn.incore <- false;
  (match vn.lru_node with
  | Some node ->
      Sim.Dlist.remove t.free_lru node;
      vn.lru_node <- None
  | None -> ());
  t.incore <- t.incore - 1;
  t.stats.Sim.Stats.vnode_recycles <- t.stats.Sim.Stats.vnode_recycles + 1

let make_room t =
  while t.incore >= t.max_vnodes && not (Sim.Dlist.is_empty t.free_lru) do
    match Sim.Dlist.peek_head t.free_lru with
    | Some lru -> recycle t lru
    | None -> ()
  done

let bring_incore t (vn : Vnode.t) =
  if not vn.incore then begin
    make_room t;
    vn.incore <- true;
    t.incore <- t.incore + 1;
    Sim.Simclock.advance t.clock t.costs.Sim.Cost_model.struct_alloc
  end

let take_ref t (vn : Vnode.t) =
  bring_incore t vn;
  (match vn.lru_node with
  | Some node ->
      Sim.Dlist.remove t.free_lru node;
      vn.lru_node <- None
  | None -> ());
  vn.usecount <- vn.usecount + 1

let create_file t ~name ~size =
  if Hashtbl.mem t.files name then
    invalid_arg (Printf.sprintf "Vfs.create_file: %s exists" name);
  let data = Bytes.create size in
  fill_pattern ~name data;
  let vn =
    {
      Vnode.vid = t.next_vid;
      name;
      size;
      usecount = 0;
      data;
      vm_private = Vnode.No_vm;
      incore = false;
      lru_node = None;
      last_read_end = -1;
    }
  in
  t.next_vid <- t.next_vid + 1;
  Hashtbl.replace t.files name vn;
  take_ref t vn;
  vn

let lookup t ~name =
  match Hashtbl.find_opt t.files name with
  | None -> raise Not_found
  | Some vn ->
      take_ref t vn;
      vn

let vref t vn =
  if not vn.Vnode.incore then invalid_arg "Vfs.vref: vnode not in core";
  ignore t;
  vn.Vnode.usecount <- vn.Vnode.usecount + 1

let vrele t (vn : Vnode.t) =
  if vn.usecount <= 0 then invalid_arg "Vfs.vrele: no references";
  vn.usecount <- vn.usecount - 1;
  if vn.usecount = 0 then
    vn.lru_node <- Some (Sim.Dlist.push_tail t.free_lru vn)

let npages_of t (vn : Vnode.t) = (vn.size + t.page_size - 1) / t.page_size

let copy_file_page t (vn : Vnode.t) pgno (dst : Physmem.Page.t) =
  let off = pgno * t.page_size in
  let avail = max 0 (min t.page_size (vn.size - off)) in
  if avail > 0 then Bytes.blit vn.data off dst.data 0 avail;
  if avail < t.page_size then
    Bytes.fill dst.data avail (t.page_size - avail) '\000'

let read_pages t (vn : Vnode.t) ~start_page ~dsts =
  let n = List.length dsts in
  if n = 0 then invalid_arg "Vfs.read_pages: no pages";
  (* UFS-style read-ahead: a read continuing where the previous one ended
     streams off the platter without paying the seek again. *)
  let sequential = start_page = vn.last_read_end in
  match Sim.Disk.read ~sequential t.disk ~npages:n with
  | Error _ as e -> e
  | Ok () ->
      List.iteri
        (fun i dst ->
          copy_file_page t vn (start_page + i) dst;
          dst.Physmem.Page.dirty <- false)
        dsts;
      vn.last_read_end <- start_page + n;
      t.stats.Sim.Stats.pageins <- t.stats.Sim.Stats.pageins + n;
      Ok ()

let write_pages t (vn : Vnode.t) ~start_page ~srcs =
  let n = List.length srcs in
  if n = 0 then invalid_arg "Vfs.write_pages: no pages";
  match Sim.Disk.write t.disk ~npages:n with
  | Error _ as e -> e
  | Ok () ->
      List.iteri
        (fun i (src : Physmem.Page.t) ->
          let off = (start_page + i) * t.page_size in
          let avail = max 0 (min t.page_size (vn.size - off)) in
          if avail > 0 then Bytes.blit src.data 0 vn.data off avail;
          src.dirty <- false)
        srcs;
      t.stats.Sim.Stats.pageouts <- t.stats.Sim.Stats.pageouts + n;
      Ok ()

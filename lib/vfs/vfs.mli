(** An in-memory filesystem with a vnode cache.

    Files have deterministic contents ({!file_byte}) so every read path —
    mmap faults, pager clustered reads, copy-on-write — can be checked for
    byte-exact correctness.

    Unreferenced vnodes are kept on an LRU list and recycled when the
    in-core vnode limit is reached; recycling runs the registered hooks
    (UVM uses this to terminate the embedded memory object — the single
    unified cache the paper advocates).  The BSD VM baseline instead holds
    extra vnode references from its own object cache, preventing optimal
    recycling, which is the behaviour Figure 2 measures. *)

module Vnode = Vnode

type t

val create :
  ?max_vnodes:int ->
  page_size:int ->
  clock:Sim.Simclock.t ->
  costs:Sim.Cost_model.t ->
  stats:Sim.Stats.t ->
  unit ->
  t
(** [max_vnodes] (default 2048) bounds the number of in-core vnodes, like
    the kernel's [numvnodes] limit. *)

val page_size : t -> int
val disk : t -> Sim.Disk.t

val file_byte : name:string -> off:int -> char
(** The canonical byte at offset [off] of file [name]; deterministic, so
    tests can verify any mapping's contents independently. *)

val create_file : t -> name:string -> size:int -> Vnode.t
(** Create a file filled with the canonical pattern and return its vnode
    with one reference.
    @raise Invalid_argument if the file exists. *)

val lookup : t -> name:string -> Vnode.t
(** Name lookup ("open"): returns the vnode with an extra reference,
    bringing it in core (possibly recycling another vnode) if needed.
    @raise Not_found if no such file. *)

val vref : t -> Vnode.t -> unit
(** Take an additional reference on an in-core vnode. *)

val vrele : t -> Vnode.t -> unit
(** Drop a reference.  When the last reference goes away the vnode moves to
    the free LRU (it stays in core until recycled). *)

val register_recycle_hook : t -> (Vnode.t -> unit) -> unit
(** Called just before an unreferenced vnode's in-core state is discarded;
    the VM layer must tear down any memory object riding in [vm_private]. *)

val incore_count : t -> int
val free_list_length : t -> int

val read_pages :
  t ->
  Vnode.t ->
  start_page:int ->
  dsts:Physmem.Page.t list ->
  (unit, Sim.Fault_plan.error) result
(** One clustered disk read filling [dsts] with file pages
    [start_page, start_page + n).  Pages past EOF are zero-filled.
    On [Error] no destination page is touched. *)

val write_pages :
  t ->
  Vnode.t ->
  start_page:int ->
  srcs:Physmem.Page.t list ->
  (unit, Sim.Fault_plan.error) result
(** One clustered disk write of file pages back to the store.  On [Error]
    the source pages stay dirty and the file is unchanged. *)

val npages_of : t -> Vnode.t -> int
(** File size in pages, rounded up. *)

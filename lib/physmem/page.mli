(** Physical page frames ([vm_page] in the paper's Figure 1).

    One [Page.t] is allocated for every page of simulated physical memory at
    boot.  Pages carry their actual contents as [bytes], so copy-on-write,
    loanout and paging can be validated for data correctness.

    Ownership: the machine-independent VM layer above (UVM or BSD VM) tags
    each allocated page with an owner via the extensible variant {!tag} —
    this keeps [physmem] independent of the layers built on top of it while
    still letting the page point back at its memory object or anon, as real
    [vm_page] structures do. *)

type tag = ..
(** Extensible ownership tag.  Each VM layer adds its own constructors
    (e.g. [Uvm_object of ...], [Anon of ...], [Shadow of ...]). *)

type tag += No_owner  (** The page is free or ownership was dropped. *)

type queue =
  | Q_none  (** not on any paging queue (e.g. wired or busy) *)
  | Q_free
  | Q_active
  | Q_inactive

(** Ledger lifecycle state (DESIGN.md §10).  Mirrors [queue] for queued
    pages and splits [Q_none] into why the page is off-queue: freshly
    allocated or mid-I/O ([L_detached]), wired ([L_wired]), wired while
    out on loan to the kernel ([L_loaned]), or owner-dropped-while-loaned
    ([L_limbo]).  Only {!Physmem}'s audited transition function may
    change it. *)
type lstate =
  | L_free
  | L_detached
  | L_active
  | L_inactive
  | L_wired
  | L_loaned
  | L_limbo

type t = {
  id : int;  (** physical frame number *)
  color : int;  (** [id mod ncolors] — its colored-queue index, fixed at boot *)
  data : bytes;  (** page contents, [page_size] bytes *)
  mutable dirty : bool;  (** modified since last cleaned *)
  mutable busy : bool;  (** I/O in progress (asserted by pagers) *)
  mutable wire_count : int;  (** > 0 means the page may not be paged out *)
  mutable loan_count : int;  (** outstanding loans (UVM page loanout) *)
  mutable owner : tag;
  mutable owner_offset : int;  (** page index within the owner object *)
  mutable queue : queue;
  mutable node : t Sim.Dlist.node option;  (** paging-queue linkage *)
  mutable q_seq : int;  (** global enqueue stamp: FIFO order across colors *)
  mutable cached_cpu : int;  (** CPU whose free cache holds this page, -1 none *)
  mutable referenced : bool;  (** software-emulated reference bit *)
  mutable lstate : lstate;  (** ledger state; audited against [queue] *)
  mutable l_birth : float;  (** sim time of the current allocation *)
  mutable l_fill : Sim.Lifecycle.fill option;  (** how contents arrived *)
  mutable l_last_fault : float;  (** last fault-in resolving here, -1 none *)
  mutable l_fa : int;  (** pending fault-ahead premap: madv index, -1 none *)
  mutable l_steps : int;  (** lifecycle transitions since alloc *)
  mutable l_clusters : int;  (** pageout-cluster memberships *)
  mutable l_reassigns : int;  (** swap-slot reassignments *)
}

val is_free : t -> bool
val is_wired : t -> bool
val is_loaned : t -> bool
val lstate_name : lstate -> string

val pp : Format.formatter -> t -> unit

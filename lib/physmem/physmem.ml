module Page = Page

exception Out_of_pages

type violation = {
  v_page : int;
  v_from : Page.lstate;
  v_to : Page.lstate;
  v_op : string;
}

let string_of_violation v =
  Printf.sprintf "page#%d %s->%s on %s" v.v_page
    (Page.lstate_name v.v_from) (Page.lstate_name v.v_to) v.v_op

type t = {
  page_size : int;
  total_pages : int;
  clock : Sim.Simclock.t;
  costs : Sim.Cost_model.t;
  stats : Sim.Stats.t;
  lifecycle : Sim.Lifecycle.t;
  free : Page.t Sim.Dlist.t;
  active : Page.t Sim.Dlist.t;
  inactive : Page.t Sim.Dlist.t;
  pages : Page.t array;  (** every frame, indexed by frame number *)
  mutable free_count : int;
  freemin : int;
  freetarg : int;
  reserve : int;  (** frames only privileged (daemon/drain) allocs may take *)
  mutable pagedaemon : (unit -> unit) option;
  mutable daemon_running : bool;
  mutable oom_hook : (unit -> bool) option;
      (** last-resort reclaim: swap a process out or reap a victim; returns
          true if it freed anything worth retrying the allocation for *)
  mutable violations : violation list;  (** first few illegal transitions *)
  mutable last_fill : float;  (** time of the last fault-in, -1 if none *)
  mutable lockq : (Sim.Lockstat.t * Sim.Lockstat.lock) option;
      (** the page-queue lock, registered when the machine wires its lock
          observatory in *)
}

(* ---- Provenance ledger: the legal-transition state machine ---------- *)

(* Which lifecycle moves a healthy kernel can make.  The teeth are the
   [L_free] row (any use of a free frame except allocation is a bug), the
   wired row (a wired frame may not be freed or deactivated) and the limbo
   row (an owner-dropped loaned frame can only drain to the free list). *)
let legal ~from ~to_ =
  match (from, to_) with
  | Page.L_free, Page.L_detached -> true
  | Page.L_free, _ -> false
  | Page.L_wired, (Page.L_free | Page.L_inactive) -> false
  | Page.L_wired, _ -> true
  (* Loaned-and-wired frames obey the wired rules: the borrower must end
     the loan (draining through unwire/release_loan) before the frame can
     reach the free list or cool off. *)
  | Page.L_loaned, (Page.L_free | Page.L_inactive) -> false
  | Page.L_loaned, _ -> true
  | Page.L_limbo, (Page.L_free | Page.L_limbo | Page.L_wired | Page.L_loaned)
    -> true
  | Page.L_limbo, _ -> false
  | (Page.L_detached | Page.L_active | Page.L_inactive), _ -> true

let lstep t (page : Page.t) ~op to_ =
  let from = page.Page.lstate in
  if not (legal ~from ~to_) then begin
    Sim.Lifecycle.note_illegal t.lifecycle;
    if List.length t.violations < 8 then
      t.violations <-
        t.violations
        @ [ { v_page = page.Page.id; v_from = from; v_to = to_; v_op = op } ]
  end;
  page.Page.lstate <- to_;
  page.Page.l_steps <- page.Page.l_steps + 1

(* Resolve a pending fault-ahead premap.  [used]: the mapping was touched
   before eviction, i.e. a fault was avoided; otherwise the neighbour was
   unmapped, evicted, freed or demand-faulted first and the premap was in
   vain.  Takes stats/lifecycle rather than [t] so Pmap (which sees pages
   but not the physmem handle) can resolve soft touches too. *)
let fa_resolve ~stats ~lifecycle (page : Page.t) ~used =
  if page.Page.l_fa >= 0 then begin
    let m = Sim.Lifecycle.madv_of_index page.Page.l_fa in
    page.Page.l_fa <- -1;
    if used then begin
      stats.Sim.Stats.fault_ahead_used <- stats.Sim.Stats.fault_ahead_used + 1;
      Sim.Lifecycle.note_fa_used lifecycle m
    end
    else begin
      stats.Sim.Stats.fault_ahead_wasted <-
        stats.Sim.Stats.fault_ahead_wasted + 1;
      Sim.Lifecycle.note_fa_wasted lifecycle m
    end
  end

let create ?(page_size = 4096) ?lifecycle ~npages ~clock ~costs ~stats () =
  if npages < 16 then invalid_arg "Physmem.create: need at least 16 pages";
  let pages =
    Array.init npages (fun i ->
        {
          Page.id = i;
          data = Bytes.create page_size;
          dirty = false;
          busy = false;
          wire_count = 0;
          loan_count = 0;
          owner = Page.No_owner;
          owner_offset = 0;
          queue = Page.Q_free;
          node = None;
          referenced = false;
          lstate = Page.L_free;
          l_birth = 0.0;
          l_fill = None;
          l_last_fault = -1.0;
          l_fa = -1;
          l_steps = 0;
          l_clusters = 0;
          l_reassigns = 0;
        })
  in
  let lifecycle =
    match lifecycle with Some l -> l | None -> Sim.Lifecycle.create ()
  in
  let t =
    {
      page_size;
      total_pages = npages;
      clock;
      costs;
      stats;
      lifecycle;
      free = Sim.Dlist.create ();
      active = Sim.Dlist.create ();
      inactive = Sim.Dlist.create ();
      pages;
      free_count = 0;
      freemin = max 8 (npages / 32);
      freetarg = max 16 (npages / 16);
      reserve = max 4 (npages / 64);
      pagedaemon = None;
      daemon_running = false;
      oom_hook = None;
      violations = [];
      last_fill = -1.0;
      lockq = None;
    }
  in
  Array.iter
    (fun page ->
      page.Page.node <- Some (Sim.Dlist.push_tail t.free page);
      t.free_count <- t.free_count + 1)
    t.pages;
  t

let page_size t = t.page_size
let total_pages t = t.total_pages
let free_count t = t.free_count
let active_count t = Sim.Dlist.length t.active
let inactive_count t = Sim.Dlist.length t.inactive
let freemin t = t.freemin
let freetarg t = t.freetarg
let reserve t = t.reserve
let set_pagedaemon t f = t.pagedaemon <- Some f
let set_oom_hook t f = t.oom_hook <- f

let set_lockstat t reg =
  t.lockq <-
    Option.map
      (fun ls -> (ls, Sim.Lockstat.register ls ~cls:"pagequeue" "pagequeues"))
      reg
let page_shortage t = t.free_count < t.freemin

let queue_of t = function
  | Page.Q_free -> Some t.free
  | Page.Q_active -> Some t.active
  | Page.Q_inactive -> Some t.inactive
  | Page.Q_none -> None

(* The queue-surgery leaves are the critical sections a real SMP kernel
   would guard with the page-queue lock, so they are what the observatory
   times: straight-line, exception-free, write-mode holds.  [enqueue]
   calls [unlink] — the registry counts that as a recursive acquire of
   the same instance, one recorded hold. *)
let queue_lock t =
  match t.lockq with
  | Some (ls, lk) -> Sim.Lockstat.acquire ls lk ~mode:Sim.Lockstat.Write
  | None -> ()

let queue_unlock t =
  match t.lockq with
  | Some (ls, lk) -> Sim.Lockstat.release ls lk
  | None -> ()

(* Unlink [page] from whatever queue it is on. *)
let unlink t (page : Page.t) =
  queue_lock t;
  (match (queue_of t page.queue, page.node) with
  | Some q, Some node ->
      Sim.Dlist.remove q node;
      if page.queue = Page.Q_free then t.free_count <- t.free_count - 1;
      page.node <- None;
      page.queue <- Page.Q_none
  | None, _ -> ()
  | Some _, None -> assert false);
  queue_unlock t

let enqueue t (page : Page.t) kind =
  queue_lock t;
  unlink t page;
  (match queue_of t kind with
  | None -> ()
  | Some q ->
      page.Page.node <- Some (Sim.Dlist.push_tail q page);
      page.Page.queue <- kind;
      if kind = Page.Q_free then t.free_count <- t.free_count + 1);
  queue_unlock t

let run_pagedaemon t =
  match t.pagedaemon with
  | Some daemon when not t.daemon_running ->
      t.daemon_running <- true;
      Fun.protect ~finally:(fun () -> t.daemon_running <- false) daemon
  | Some _ | None -> ()

let alloc t ?(zero = false) ?(privileged = false) ~owner ~offset () =
  if t.free_count <= t.freemin then run_pagedaemon t;
  (* The bottom [reserve] frames of the free list belong to the paths that
     make more memory: pagedaemon staging, drain migration, swap pagein.
     Ordinary allocations stop above the reserve so those paths can always
     make forward progress at (nominally) zero free pages. *)
  let grab () =
    if (not privileged) && t.free_count <= t.reserve then None
    else
      match Sim.Dlist.pop_head t.free with
      | Some page ->
          if privileged && t.free_count <= t.reserve then
            t.stats.Sim.Stats.reserve_grabs <-
              t.stats.Sim.Stats.reserve_grabs + 1;
          t.free_count <- t.free_count - 1;
          page.Page.node <- None;
          page.Page.queue <- Page.Q_none;
          Some page
      | None -> None
  in
  let page =
    match grab () with
    | Some page -> page
    | None ->
        (* VM_WAIT: the failing allocation waits on the pagedaemon and
           retries.  Several rounds, because the two-queue second-chance
           scan needs them — one pass clears reference bits on the active
           queue, the next deactivates, the one after reclaims — and a
           single pass may legitimately free nothing while reclaimable
           pages still exist. *)
        let rec wait_rounds n =
          run_pagedaemon t;
          match grab () with
          | Some page -> Some page
          | None -> if n > 1 then wait_rounds (n - 1) else None
        in
        (match wait_rounds 4 with
        | Some page -> page
        | None ->
            (* Paging alone cannot meet demand: hand the decision to the
               overload policy (process swapout, then OOM kill).  Each
               round that claims progress earns one more daemon pass and
               retry; the first round that does not ends in Out_of_pages. *)
            let rec last_resort () =
              match t.oom_hook with
              | Some hook when hook () -> (
                  run_pagedaemon t;
                  match grab () with
                  | Some page -> page
                  | None -> last_resort ())
              | Some _ | None -> raise Out_of_pages
            in
            last_resort ())
  in
  page.Page.owner <- owner;
  page.Page.owner_offset <- offset;
  page.Page.dirty <- false;
  page.Page.busy <- false;
  page.Page.referenced <- false;
  assert (page.Page.wire_count = 0);
  assert (page.Page.loan_count = 0);
  page.Page.l_steps <- 0;
  lstep t page ~op:"alloc" Page.L_detached;
  page.Page.l_birth <- Sim.Simclock.now t.clock;
  page.Page.l_fill <- None;
  page.Page.l_last_fault <- -1.0;
  page.Page.l_fa <- -1;
  page.Page.l_clusters <- 0;
  page.Page.l_reassigns <- 0;
  if zero then begin
    Bytes.fill page.Page.data 0 t.page_size '\000';
    Sim.Simclock.advance t.clock t.costs.Sim.Cost_model.page_zero;
    t.stats.Sim.Stats.pages_zeroed <- t.stats.Sim.Stats.pages_zeroed + 1
  end;
  page

(* Shared bookkeeping for a frame leaving service: resolve any dangling
   fault-ahead premap as wasted and log the frame's residency time. *)
let retire t (page : Page.t) =
  fa_resolve ~stats:t.stats ~lifecycle:t.lifecycle page ~used:false;
  Sim.Lifecycle.note_residency t.lifecycle
    (Sim.Simclock.now t.clock -. page.Page.l_birth)

let free_page t (page : Page.t) =
  if page.queue = Page.Q_free then
    invalid_arg "Physmem.free_page: page already free";
  if page.loan_count > 0 then begin
    (* The owner dropped the page while it is loaned out (possibly wired by
       the borrower): the borrower keeps using the frame; it is finally
       freed when the last loan is ended (uvm_loan handles that). *)
    page.owner <- Page.No_owner;
    page.owner_offset <- 0;
    unlink t page;
    lstep t page ~op:"free_loaned" Page.L_limbo
  end
  else if page.wire_count > 0 then
    invalid_arg "Physmem.free_page: page is wired"
  else begin
    page.owner <- Page.No_owner;
    page.owner_offset <- 0;
    page.dirty <- false;
    page.busy <- false;
    page.referenced <- false;
    retire t page;
    lstep t page ~op:"free" Page.L_free;
    enqueue t page Page.Q_free
  end

let activate t (page : Page.t) =
  if page.wire_count > 0 then begin
    lstep t page ~op:"activate_wired" Page.L_wired;
    unlink t page
  end
  else begin
    lstep t page ~op:"activate" Page.L_active;
    enqueue t page Page.Q_active
  end

let deactivate t (page : Page.t) =
  page.referenced <- false;
  (* Cooling off without ever being soft-touched resolves a pending
     fault-ahead premap as wasted. *)
  fa_resolve ~stats:t.stats ~lifecycle:t.lifecycle page ~used:false;
  if page.wire_count > 0 then begin
    lstep t page ~op:"deactivate_wired" Page.L_wired;
    unlink t page
  end
  else begin
    lstep t page ~op:"deactivate" Page.L_inactive;
    enqueue t page Page.Q_inactive
  end

let dequeue t page =
  lstep t page ~op:"dequeue" Page.L_detached;
  unlink t page
let inactive_pages t = Sim.Dlist.to_list t.inactive
let active_pages t = Sim.Dlist.to_list t.active
let free_pages t = Sim.Dlist.to_list t.free
let iter_pages f t = Array.iter f t.pages

let wire t (page : Page.t) =
  page.wire_count <- page.wire_count + 1;
  if page.wire_count = 1 then begin
    (* A frame wired on behalf of a loan (uvm_loan wiring the borrower's
       reference) is ledgered separately from plain wirings. *)
    lstep t page ~op:"wire"
      (if page.loan_count > 0 then Page.L_loaned else Page.L_wired);
    unlink t page
  end

let unwire t (page : Page.t) =
  if page.wire_count <= 0 then invalid_arg "Physmem.unwire: page not wired";
  page.wire_count <- page.wire_count - 1;
  if page.wire_count = 0 then
    if page.owner = Page.No_owner && page.loan_count > 0 then
      (* Owner dropped the frame while it was loaned out: it stays in
         limbo (off-queue) until the last loan drains it to the free
         list. *)
      lstep t page ~op:"unwire_limbo" Page.L_limbo
    else begin
      lstep t page ~op:"unwire" Page.L_active;
      enqueue t page Page.Q_active
    end

let release_loan t (page : Page.t) =
  if page.loan_count <= 0 then
    invalid_arg "Physmem.release_loan: page not loaned";
  page.loan_count <- page.loan_count - 1;
  if page.loan_count = 0 && page.owner = Page.No_owner && page.wire_count = 0
  then begin
    page.dirty <- false;
    page.busy <- false;
    page.referenced <- false;
    retire t page;
    lstep t page ~op:"loan_free" Page.L_free;
    enqueue t page Page.Q_free
  end

(* ---- Ledger notes from the VM layers -------------------------------- *)

let lifecycle t = t.lifecycle
let ledger_violations t = t.violations

let note_fault_in t (page : Page.t) ~fill =
  let now = Sim.Simclock.now t.clock in
  if t.last_fill >= 0.0 then
    Sim.Lifecycle.note_interfault t.lifecycle (now -. t.last_fill);
  t.last_fill <- now;
  page.Page.l_last_fault <- now;
  page.Page.l_fill <- Some fill;
  Sim.Lifecycle.note_fill t.lifecycle fill;
  (* A demand fault resolving to a premapped frame means the premap did
     not prevent the fault: in vain. *)
  fa_resolve ~stats:t.stats ~lifecycle:t.lifecycle page ~used:false

let note_fault_ahead_mapped t (page : Page.t) ~madv =
  if page.Page.l_fa < 0 then begin
    page.Page.l_fa <- Sim.Lifecycle.madv_index madv;
    Sim.Lifecycle.note_fa_mapped t.lifecycle madv
  end

let note_soft_use ~stats ~lifecycle page =
  fa_resolve ~stats ~lifecycle page ~used:true

(* A demand fault landed on this frame: whatever premap it carried did not
   prevent the fault. *)
let note_demand_fault t page =
  fa_resolve ~stats:t.stats ~lifecycle:t.lifecycle page ~used:false

let note_unmapped ~stats ~lifecycle page =
  fa_resolve ~stats ~lifecycle page ~used:false

let note_cluster t ~pages ~runs =
  Sim.Lifecycle.note_cluster t.lifecycle ~size:(List.length pages) ~runs;
  List.iter
    (fun (p : Page.t) -> p.Page.l_clusters <- p.Page.l_clusters + 1)
    pages

let note_reassign t (page : Page.t) ~dist =
  page.Page.l_reassigns <- page.Page.l_reassigns + 1;
  Sim.Lifecycle.note_reassign t.lifecycle ~dist

let copy_data t ~(src : Page.t) ~(dst : Page.t) =
  Bytes.blit src.data 0 dst.data 0 t.page_size;
  Sim.Simclock.advance t.clock t.costs.Sim.Cost_model.page_copy;
  t.stats.Sim.Stats.pages_copied <- t.stats.Sim.Stats.pages_copied + 1

let zero_data t (page : Page.t) =
  Bytes.fill page.data 0 t.page_size '\000';
  Sim.Simclock.advance t.clock t.costs.Sim.Cost_model.page_zero;
  t.stats.Sim.Stats.pages_zeroed <- t.stats.Sim.Stats.pages_zeroed + 1

module Testhook = struct
  (* Deliberately link [page] onto a second paging queue without unlinking
     it from its current one, leaving the frame reachable from two rings at
     once — the classic queue-corruption bug the auditor must catch.  Only
     for tests; never called by the VM layers. *)
  let double_insert t (page : Page.t) =
    let second =
      match page.Page.queue with Page.Q_inactive -> t.active | _ -> t.inactive
    in
    ignore (Sim.Dlist.push_tail second page)
end

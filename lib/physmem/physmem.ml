module Page = Page

exception Out_of_pages

type t = {
  page_size : int;
  total_pages : int;
  clock : Sim.Simclock.t;
  costs : Sim.Cost_model.t;
  stats : Sim.Stats.t;
  free : Page.t Sim.Dlist.t;
  active : Page.t Sim.Dlist.t;
  inactive : Page.t Sim.Dlist.t;
  pages : Page.t array;  (** every frame, indexed by frame number *)
  mutable free_count : int;
  freemin : int;
  freetarg : int;
  mutable pagedaemon : (unit -> unit) option;
  mutable daemon_running : bool;
}

let create ?(page_size = 4096) ~npages ~clock ~costs ~stats () =
  if npages < 16 then invalid_arg "Physmem.create: need at least 16 pages";
  let pages =
    Array.init npages (fun i ->
        {
          Page.id = i;
          data = Bytes.create page_size;
          dirty = false;
          busy = false;
          wire_count = 0;
          loan_count = 0;
          owner = Page.No_owner;
          owner_offset = 0;
          queue = Page.Q_free;
          node = None;
          referenced = false;
        })
  in
  let t =
    {
      page_size;
      total_pages = npages;
      clock;
      costs;
      stats;
      free = Sim.Dlist.create ();
      active = Sim.Dlist.create ();
      inactive = Sim.Dlist.create ();
      pages;
      free_count = 0;
      freemin = max 8 (npages / 32);
      freetarg = max 16 (npages / 16);
      pagedaemon = None;
      daemon_running = false;
    }
  in
  Array.iter
    (fun page ->
      page.Page.node <- Some (Sim.Dlist.push_tail t.free page);
      t.free_count <- t.free_count + 1)
    t.pages;
  t

let page_size t = t.page_size
let total_pages t = t.total_pages
let free_count t = t.free_count
let active_count t = Sim.Dlist.length t.active
let inactive_count t = Sim.Dlist.length t.inactive
let freemin t = t.freemin
let freetarg t = t.freetarg
let set_pagedaemon t f = t.pagedaemon <- Some f
let page_shortage t = t.free_count < t.freemin

let queue_of t = function
  | Page.Q_free -> Some t.free
  | Page.Q_active -> Some t.active
  | Page.Q_inactive -> Some t.inactive
  | Page.Q_none -> None

(* Unlink [page] from whatever queue it is on. *)
let unlink t (page : Page.t) =
  match (queue_of t page.queue, page.node) with
  | Some q, Some node ->
      Sim.Dlist.remove q node;
      if page.queue = Page.Q_free then t.free_count <- t.free_count - 1;
      page.node <- None;
      page.queue <- Page.Q_none
  | None, _ -> ()
  | Some _, None -> assert false

let enqueue t (page : Page.t) kind =
  unlink t page;
  match queue_of t kind with
  | None -> ()
  | Some q ->
      page.Page.node <- Some (Sim.Dlist.push_tail q page);
      page.Page.queue <- kind;
      if kind = Page.Q_free then t.free_count <- t.free_count + 1

let run_pagedaemon t =
  match t.pagedaemon with
  | Some daemon when not t.daemon_running ->
      t.daemon_running <- true;
      Fun.protect ~finally:(fun () -> t.daemon_running <- false) daemon
  | Some _ | None -> ()

let alloc t ?(zero = false) ~owner ~offset () =
  if t.free_count <= t.freemin then run_pagedaemon t;
  let grab () =
    match Sim.Dlist.pop_head t.free with
    | Some page ->
        t.free_count <- t.free_count - 1;
        page.Page.node <- None;
        page.Page.queue <- Page.Q_none;
        Some page
    | None -> None
  in
  let page =
    match grab () with
    | Some page -> page
    | None -> (
        run_pagedaemon t;
        match grab () with Some page -> page | None -> raise Out_of_pages)
  in
  page.Page.owner <- owner;
  page.Page.owner_offset <- offset;
  page.Page.dirty <- false;
  page.Page.busy <- false;
  page.Page.referenced <- false;
  assert (page.Page.wire_count = 0);
  assert (page.Page.loan_count = 0);
  if zero then begin
    Bytes.fill page.Page.data 0 t.page_size '\000';
    Sim.Simclock.advance t.clock t.costs.Sim.Cost_model.page_zero;
    t.stats.Sim.Stats.pages_zeroed <- t.stats.Sim.Stats.pages_zeroed + 1
  end;
  page

let free_page t (page : Page.t) =
  if page.queue = Page.Q_free then
    invalid_arg "Physmem.free_page: page already free";
  if page.loan_count > 0 then begin
    (* The owner dropped the page while it is loaned out (possibly wired by
       the borrower): the borrower keeps using the frame; it is finally
       freed when the last loan is ended (uvm_loan handles that). *)
    page.owner <- Page.No_owner;
    page.owner_offset <- 0;
    unlink t page
  end
  else if page.wire_count > 0 then
    invalid_arg "Physmem.free_page: page is wired"
  else begin
    page.owner <- Page.No_owner;
    page.owner_offset <- 0;
    page.dirty <- false;
    page.busy <- false;
    page.referenced <- false;
    enqueue t page Page.Q_free
  end

let activate t (page : Page.t) =
  if page.wire_count > 0 then unlink t page
  else enqueue t page Page.Q_active

let deactivate t (page : Page.t) =
  page.referenced <- false;
  if page.wire_count > 0 then unlink t page
  else enqueue t page Page.Q_inactive

let dequeue t page = unlink t page
let inactive_pages t = Sim.Dlist.to_list t.inactive
let active_pages t = Sim.Dlist.to_list t.active
let free_pages t = Sim.Dlist.to_list t.free
let iter_pages f t = Array.iter f t.pages

let wire t (page : Page.t) =
  page.wire_count <- page.wire_count + 1;
  if page.wire_count = 1 then unlink t page

let unwire t (page : Page.t) =
  if page.wire_count <= 0 then invalid_arg "Physmem.unwire: page not wired";
  page.wire_count <- page.wire_count - 1;
  if page.wire_count = 0 then enqueue t page Page.Q_active

let release_loan t (page : Page.t) =
  if page.loan_count <= 0 then
    invalid_arg "Physmem.release_loan: page not loaned";
  page.loan_count <- page.loan_count - 1;
  if page.loan_count = 0 && page.owner = Page.No_owner && page.wire_count = 0
  then begin
    page.dirty <- false;
    page.busy <- false;
    page.referenced <- false;
    enqueue t page Page.Q_free
  end

let copy_data t ~(src : Page.t) ~(dst : Page.t) =
  Bytes.blit src.data 0 dst.data 0 t.page_size;
  Sim.Simclock.advance t.clock t.costs.Sim.Cost_model.page_copy;
  t.stats.Sim.Stats.pages_copied <- t.stats.Sim.Stats.pages_copied + 1

let zero_data t (page : Page.t) =
  Bytes.fill page.data 0 t.page_size '\000';
  Sim.Simclock.advance t.clock t.costs.Sim.Cost_model.page_zero;
  t.stats.Sim.Stats.pages_zeroed <- t.stats.Sim.Stats.pages_zeroed + 1

module Testhook = struct
  (* Deliberately link [page] onto a second paging queue without unlinking
     it from its current one, leaving the frame reachable from two rings at
     once — the classic queue-corruption bug the auditor must catch.  Only
     for tests; never called by the VM layers. *)
  let double_insert t (page : Page.t) =
    let second =
      match page.Page.queue with Page.Q_inactive -> t.active | _ -> t.inactive
    in
    ignore (Sim.Dlist.push_tail second page)
end

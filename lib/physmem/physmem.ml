module Page = Page

exception Out_of_pages

type violation = {
  v_page : int;
  v_from : Page.lstate;
  v_to : Page.lstate;
  v_op : string;
}

let string_of_violation v =
  Printf.sprintf "page#%d %s->%s on %s" v.v_page
    (Page.lstate_name v.v_from) (Page.lstate_name v.v_to) v.v_op

(* DragonFly shards its page queues by page color (pfn mod NCOLORS) so
   CPUs working disjoint colors never touch the same free-list cache
   line.  16 colors keeps the per-queue rings long enough to stay
   FIFO-meaningful on small simulated machines. *)
let ncolors = 16

(* A per-CPU free-page cache: small per-color stacks refilled in batches
   from the global colored queues and drained back under pressure.  A
   CPU prefers the colors congruent to its index (CPU-localized color
   selection); serving from outside that partition is a "steal". *)
type cpu_cache = {
  cc_cpu : int;
  cc_pages : Page.t list array;  (** per-color LIFO stacks *)
  mutable cc_count : int;
  mutable cc_pref : int;  (** rotating cursor into the preferred colors *)
  mutable cc_hits : int;
  mutable cc_misses : int;
  mutable cc_refills : int;
  mutable cc_drains : int;
  mutable cc_steals : int;
}

(* One slot of the lockless page-lookup table (DragonFly's heuristic
   page hash): a direct-mapped cache of (object, offset) -> page with a
   generation counter modelling the seqlock protocol a real SMP kernel
   would need.  Entries self-invalidate: the owner tag captured at
   publish time is compared by physical identity, and every insert
   allocates a fresh tag block, so a freed/moved/collapsed page never
   validates against a stale slot. *)
type lentry = {
  mutable e_oid : int;  (** owning object's lookup serial, -1 empty *)
  mutable e_pgno : int;
  mutable e_page : Page.t option;
  mutable e_owner : Page.tag;  (** owner tag captured at publish *)
  mutable e_gen : int;  (** even = stable, odd = publisher mid-update *)
}

let lookup_slots = 4096

type t = {
  page_size : int;
  total_pages : int;
  ncpus : int;
  clock : Sim.Simclock.t;
  costs : Sim.Cost_model.t;
  stats : Sim.Stats.t;
  lifecycle : Sim.Lifecycle.t;
  free : Page.t Sim.Dlist.t array;  (** colored free queues *)
  active : Page.t Sim.Dlist.t array;
  inactive : Page.t Sim.Dlist.t array;
  caches : cpu_cache array;
  mutable cur_cpu : int;  (** CPU the scheduler is currently running *)
  mutable seq : int;  (** global enqueue stamp: FIFO across colors *)
  pages : Page.t array;  (** every frame, indexed by frame number *)
  mutable free_count : int;  (** free frames: colored queues + CPU caches *)
  mutable qfree : int;  (** free frames on the colored queues only *)
  freemin : int;
  freetarg : int;
  reserve : int;  (** frames only privileged (daemon/drain) allocs may take *)
  mutable pagedaemon : (unit -> unit) option;
  mutable daemon_running : bool;
  mutable oom_hook : (unit -> bool) option;
      (** last-resort reclaim: swap a process out or reap a victim; returns
          true if it freed anything worth retrying the allocation for *)
  mutable violations : violation list;  (** first few illegal transitions *)
  mutable last_fill : float;  (** time of the last fault-in, -1 if none *)
  mutable lockq : (Sim.Lockstat.t * Sim.Lockstat.lock array) option;
      (** the page-queue locks — one instance per color ring, so queue
          surgery on different colors never contends — registered when
          the machine wires its lock observatory in *)
  lookup : lentry array;
  mutable oid_serial : int;
}

(* ---- Provenance ledger: the legal-transition state machine ---------- *)

(* Which lifecycle moves a healthy kernel can make.  The teeth are the
   [L_free] row (any use of a free frame except allocation is a bug), the
   wired row (a wired frame may not be freed or deactivated) and the limbo
   row (an owner-dropped loaned frame can only drain to the free list). *)
let legal ~from ~to_ =
  match (from, to_) with
  | Page.L_free, Page.L_detached -> true
  | Page.L_free, _ -> false
  | Page.L_wired, (Page.L_free | Page.L_inactive) -> false
  | Page.L_wired, _ -> true
  (* Loaned-and-wired frames obey the wired rules: the borrower must end
     the loan (draining through unwire/release_loan) before the frame can
     reach the free list or cool off. *)
  | Page.L_loaned, (Page.L_free | Page.L_inactive) -> false
  | Page.L_loaned, _ -> true
  | Page.L_limbo, (Page.L_free | Page.L_limbo | Page.L_wired | Page.L_loaned)
    -> true
  | Page.L_limbo, _ -> false
  | (Page.L_detached | Page.L_active | Page.L_inactive), _ -> true

let lstep t (page : Page.t) ~op to_ =
  let from = page.Page.lstate in
  if not (legal ~from ~to_) then begin
    Sim.Lifecycle.note_illegal t.lifecycle;
    if List.length t.violations < 8 then
      t.violations <-
        t.violations
        @ [ { v_page = page.Page.id; v_from = from; v_to = to_; v_op = op } ]
  end;
  page.Page.lstate <- to_;
  page.Page.l_steps <- page.Page.l_steps + 1

(* Resolve a pending fault-ahead premap.  [used]: the mapping was touched
   before eviction, i.e. a fault was avoided; otherwise the neighbour was
   unmapped, evicted, freed or demand-faulted first and the premap was in
   vain.  Takes stats/lifecycle rather than [t] so Pmap (which sees pages
   but not the physmem handle) can resolve soft touches too. *)
let fa_resolve ~stats ~lifecycle (page : Page.t) ~used =
  if page.Page.l_fa >= 0 then begin
    let m = Sim.Lifecycle.madv_of_index page.Page.l_fa in
    page.Page.l_fa <- -1;
    if used then begin
      stats.Sim.Stats.fault_ahead_used <- stats.Sim.Stats.fault_ahead_used + 1;
      Sim.Lifecycle.note_fa_used lifecycle m
    end
    else begin
      stats.Sim.Stats.fault_ahead_wasted <-
        stats.Sim.Stats.fault_ahead_wasted + 1;
      Sim.Lifecycle.note_fa_wasted lifecycle m
    end
  end

let create ?(page_size = 4096) ?lifecycle ?(ncpus = 1) ~npages ~clock ~costs
    ~stats () =
  if npages < 16 then invalid_arg "Physmem.create: need at least 16 pages";
  if ncpus < 1 then invalid_arg "Physmem.create: need at least one CPU";
  let pages =
    Array.init npages (fun i ->
        {
          Page.id = i;
          color = i mod ncolors;
          data = Bytes.create page_size;
          dirty = false;
          busy = false;
          wire_count = 0;
          loan_count = 0;
          owner = Page.No_owner;
          owner_offset = 0;
          queue = Page.Q_free;
          node = None;
          q_seq = 0;
          cached_cpu = -1;
          referenced = false;
          lstate = Page.L_free;
          l_birth = 0.0;
          l_fill = None;
          l_last_fault = -1.0;
          l_fa = -1;
          l_steps = 0;
          l_clusters = 0;
          l_reassigns = 0;
        })
  in
  let lifecycle =
    match lifecycle with Some l -> l | None -> Sim.Lifecycle.create ()
  in
  let t =
    {
      page_size;
      total_pages = npages;
      ncpus;
      clock;
      costs;
      stats;
      lifecycle;
      free = Array.init ncolors (fun _ -> Sim.Dlist.create ());
      active = Array.init ncolors (fun _ -> Sim.Dlist.create ());
      inactive = Array.init ncolors (fun _ -> Sim.Dlist.create ());
      caches =
        Array.init ncpus (fun cpu ->
            {
              cc_cpu = cpu;
              cc_pages = Array.make ncolors [];
              cc_count = 0;
              cc_pref = 0;
              cc_hits = 0;
              cc_misses = 0;
              cc_refills = 0;
              cc_drains = 0;
              cc_steals = 0;
            });
      cur_cpu = 0;
      seq = 0;
      pages;
      free_count = 0;
      qfree = 0;
      freemin = max 8 (npages / 32);
      freetarg = max 16 (npages / 16);
      reserve = max 4 (npages / 64);
      pagedaemon = None;
      daemon_running = false;
      oom_hook = None;
      violations = [];
      last_fill = -1.0;
      lockq = None;
      lookup =
        Array.init lookup_slots (fun _ ->
            {
              e_oid = -1;
              e_pgno = -1;
              e_page = None;
              e_owner = Page.No_owner;
              e_gen = 0;
            });
      oid_serial = 0;
    }
  in
  (* Stamp the boot free list in frame order so a 1-CPU machine allocates
     frames 0, 1, 2... exactly as the unsharded allocator did. *)
  Array.iter
    (fun page ->
      t.seq <- t.seq + 1;
      page.Page.q_seq <- t.seq;
      page.Page.node <-
        Some (Sim.Dlist.push_tail t.free.(page.Page.color) page);
      t.free_count <- t.free_count + 1;
      t.qfree <- t.qfree + 1)
    t.pages;
  t

let page_size t = t.page_size
let total_pages t = t.total_pages
let ncpus t = t.ncpus
let free_count t = t.free_count
let queue_free_count t = t.qfree

let sum_rings arr =
  Array.fold_left (fun n dl -> n + Sim.Dlist.length dl) 0 arr

let active_count t = sum_rings t.active
let inactive_count t = sum_rings t.inactive
let freemin t = t.freemin
let freetarg t = t.freetarg
let reserve t = t.reserve
let set_pagedaemon t f = t.pagedaemon <- Some f
let set_oom_hook t f = t.oom_hook <- f

let set_current_cpu t cpu =
  if cpu < 0 || cpu >= t.ncpus then
    invalid_arg "Physmem.set_current_cpu: no such CPU";
  t.cur_cpu <- cpu

let current_cpu t = t.cur_cpu

(* The per-CPU cache's fill target: enough pages that refills are
   batched, few enough that caches cannot strand a meaningful fraction
   of a small machine's RAM. *)
let cache_target t =
  if t.ncpus <= 1 then 0
  else min 16 (max 4 (t.total_pages / (32 * t.ncpus)))

let set_lockstat t reg =
  t.lockq <-
    Option.map
      (fun ls ->
        ( ls,
          Array.init ncolors (fun c ->
              Sim.Lockstat.register ls ~cls:"pagequeue"
                (Printf.sprintf "pagequeue.c%02d" c)) ))
      reg
let page_shortage t = t.free_count < t.freemin

let ring_of t kind color =
  match kind with
  | Page.Q_free -> Some t.free.(color)
  | Page.Q_active -> Some t.active.(color)
  | Page.Q_inactive -> Some t.inactive.(color)
  | Page.Q_none -> None

(* The queue-surgery leaves are the critical sections a real SMP kernel
   would guard with the page-queue lock, so they are what the observatory
   times: straight-line, exception-free, write-mode holds — of the
   page's color ring's own lock instance, so surgery on different colors
   never contends.  [enqueue] calls [unlink] on a page of the same color
   — the registry counts that as a recursive acquire of the same
   instance, one recorded hold. *)
let queue_lock t ~color =
  match t.lockq with
  | Some (ls, lk) ->
      Sim.Lockstat.acquire ls lk.(color) ~mode:Sim.Lockstat.Write
  | None -> ()

let queue_unlock t ~color =
  match t.lockq with
  | Some (ls, lk) -> Sim.Lockstat.release ls lk.(color)
  | None -> ()

(* Unlink [page] from whatever queue it is on.  Pages held by a per-CPU
   cache are never unlinked: they are off every ring ([node = None]) and
   only leave the cache through the allocator or a drain. *)
let unlink t (page : Page.t) =
  queue_lock t ~color:page.Page.color;
  (match (ring_of t page.queue page.Page.color, page.node) with
  | Some q, Some node ->
      Sim.Dlist.remove q node;
      if page.queue = Page.Q_free then begin
        t.free_count <- t.free_count - 1;
        t.qfree <- t.qfree - 1
      end;
      page.node <- None;
      page.queue <- Page.Q_none
  | None, _ -> ()
  | Some _, None -> assert false);
  queue_unlock t ~color:page.Page.color

let enqueue t (page : Page.t) kind =
  queue_lock t ~color:page.Page.color;
  unlink t page;
  (match ring_of t kind page.Page.color with
  | None -> ()
  | Some q ->
      t.seq <- t.seq + 1;
      page.Page.q_seq <- t.seq;
      page.Page.node <- Some (Sim.Dlist.push_tail q page);
      page.Page.queue <- kind;
      if kind = Page.Q_free then begin
        t.free_count <- t.free_count + 1;
        t.qfree <- t.qfree + 1
      end);
  queue_unlock t ~color:page.Page.color

(* ---- Per-CPU free caches -------------------------------------------- *)

(* Colors in the order this CPU's cache serves and refills them: its
   preferred partition first (rotating so the partition wears evenly),
   then everyone else's. *)
let color_order t cache =
  let np = min t.ncpus ncolors in
  let base = cache.cc_cpu mod np in
  let npref = ncolors / np in
  let pref =
    List.init npref (fun i -> base + (np * ((cache.cc_pref + i) mod npref)))
  in
  let rest =
    List.filter (fun c -> c mod np <> base) (List.init ncolors Fun.id)
  in
  pref @ rest

let cache_pop t cache =
  if cache.cc_count = 0 then None
  else begin
    let rec go = function
      | [] -> None
      | c :: rest -> (
          match cache.cc_pages.(c) with
          | [] -> go rest
          | page :: tl ->
              cache.cc_pages.(c) <- tl;
              cache.cc_count <- cache.cc_count - 1;
              t.free_count <- t.free_count - 1;
              page.Page.cached_cpu <- -1;
              page.Page.queue <- Page.Q_none;
              Some page)
    in
    go (color_order t cache)
  end

(* Pull a batch of pages from the colored queues into [cache], preferred
   colors first, never digging into the reserve (those frames stay on
   the global queues where privileged allocations can reach them).  One
   batched refill is one page-queue lock hold per color ring it drew
   from — the whole point of the per-CPU cache, and preferred colors
   make even that hold one no other CPU usually wants. *)
let refill_cache t cache =
  let target = cache_target t in
  let np = min t.ncpus ncolors in
  let base = cache.cc_cpu mod np in
  let moved = ref 0 in
  if target > cache.cc_count && t.qfree > t.reserve then begin
    List.iter
      (fun c ->
        if
          cache.cc_count < target && t.qfree > t.reserve
          && not (Sim.Dlist.is_empty t.free.(c))
        then begin
          queue_lock t ~color:c;
          let continue = ref true in
          while
            !continue && cache.cc_count < target && t.qfree > t.reserve
          do
            match Sim.Dlist.pop_head t.free.(c) with
            | Some page ->
                page.Page.node <- None;
                page.Page.cached_cpu <- cache.cc_cpu;
                cache.cc_pages.(c) <- page :: cache.cc_pages.(c);
                cache.cc_count <- cache.cc_count + 1;
                t.qfree <- t.qfree - 1;
                incr moved;
                if c mod np <> base then begin
                  cache.cc_steals <- cache.cc_steals + 1;
                  t.stats.Sim.Stats.cache_steals <-
                    t.stats.Sim.Stats.cache_steals + 1
                end
            | None -> continue := false
          done;
          queue_unlock t ~color:c
        end)
      (color_order t cache);
    cache.cc_pref <- (cache.cc_pref + 1) mod max 1 (ncolors / np)
  end;
  if !moved > 0 then begin
    cache.cc_refills <- cache.cc_refills + 1;
    t.stats.Sim.Stats.cache_refills <- t.stats.Sim.Stats.cache_refills + 1
  end;
  !moved > 0

(* Return every cached page to its color's free queue — under memory
   pressure the global queues (and the pagedaemon scanning them) must
   see all free frames. *)
let drain_caches t =
  Array.iter
    (fun cache ->
      if cache.cc_count > 0 then begin
        for c = 0 to ncolors - 1 do
          if cache.cc_pages.(c) <> [] then begin
            queue_lock t ~color:c;
            List.iter
              (fun (page : Page.t) ->
                page.Page.cached_cpu <- -1;
                t.seq <- t.seq + 1;
                page.Page.q_seq <- t.seq;
                page.Page.node <- Some (Sim.Dlist.push_tail t.free.(c) page);
                t.qfree <- t.qfree + 1)
              (List.rev cache.cc_pages.(c));
            cache.cc_pages.(c) <- [];
            queue_unlock t ~color:c
          end
        done;
        cache.cc_count <- 0;
        cache.cc_drains <- cache.cc_drains + 1;
        t.stats.Sim.Stats.cache_drains <- t.stats.Sim.Stats.cache_drains + 1
      end)
    t.caches

type cache_view = {
  cw_cpu : int;
  cw_held : int;
  cw_hits : int;
  cw_misses : int;
  cw_refills : int;
  cw_drains : int;
  cw_steals : int;
}

let cache_views t =
  Array.to_list
    (Array.map
       (fun c ->
         {
           cw_cpu = c.cc_cpu;
           cw_held = c.cc_count;
           cw_hits = c.cc_hits;
           cw_misses = c.cc_misses;
           cw_refills = c.cc_refills;
           cw_drains = c.cc_drains;
           cw_steals = c.cc_steals;
         })
       t.caches)

let run_pagedaemon t =
  match t.pagedaemon with
  | Some daemon when not t.daemon_running ->
      t.daemon_running <- true;
      Fun.protect ~finally:(fun () -> t.daemon_running <- false) daemon
  | Some _ | None -> ()

(* Pop the globally-oldest free frame: the head with the smallest
   enqueue stamp across the color rings.  On one CPU this is exactly the
   unsharded allocator's FIFO. *)
let pop_queue_min t =
  let best = ref (-1) in
  let best_seq = ref max_int in
  for c = 0 to ncolors - 1 do
    match Sim.Dlist.peek_head t.free.(c) with
    | Some p when p.Page.q_seq < !best_seq ->
        best := c;
        best_seq := p.Page.q_seq
    | _ -> ()
  done;
  if !best < 0 then None
  else begin
    queue_lock t ~color:!best;
    let got =
      match Sim.Dlist.pop_head t.free.(!best) with
      | Some page ->
          t.free_count <- t.free_count - 1;
          t.qfree <- t.qfree - 1;
          page.Page.node <- None;
          page.Page.queue <- Page.Q_none;
          Some page
      | None -> None
    in
    queue_unlock t ~color:!best;
    got
  end

let alloc t ?(zero = false) ?(privileged = false) ~owner ~offset () =
  if t.free_count <= t.freemin then begin
    (* Pressure: the pagedaemon (and the reserve logic below) must see
       every free frame, so the per-CPU caches drain first. *)
    if t.free_count > t.qfree then drain_caches t;
    run_pagedaemon t
  end;
  (* The bottom [reserve] frames of the free queues belong to the paths
     that make more memory: pagedaemon staging, drain migration, swap
     pagein.  Ordinary allocations stop above the reserve so those paths
     can always make forward progress at (nominally) zero free pages;
     cache refills stop there too, so the reserve is always on the
     global queues where privileged allocations can reach it. *)
  let grab () =
    if privileged then begin
      match pop_queue_min t with
      | Some page ->
          if t.free_count < t.reserve then
            t.stats.Sim.Stats.reserve_grabs <-
              t.stats.Sim.Stats.reserve_grabs + 1;
          Some page
      | None ->
          if t.free_count > 0 then begin
            (* Queues empty but caches hold frames: reclaim them. *)
            drain_caches t;
            pop_queue_min t
          end
          else None
    end
    else if t.free_count <= t.reserve then None
    else if t.ncpus > 1 then begin
      let cache = t.caches.(t.cur_cpu) in
      match cache_pop t cache with
      | Some page ->
          cache.cc_hits <- cache.cc_hits + 1;
          t.stats.Sim.Stats.cache_alloc_hits <-
            t.stats.Sim.Stats.cache_alloc_hits + 1;
          Some page
      | None ->
          cache.cc_misses <- cache.cc_misses + 1;
          t.stats.Sim.Stats.cache_alloc_misses <-
            t.stats.Sim.Stats.cache_alloc_misses + 1;
          if refill_cache t cache then begin
            match cache_pop t cache with
            | Some page -> Some page
            | None -> pop_queue_min t
          end
          else if t.qfree > t.reserve then pop_queue_min t
          else None
    end
    else pop_queue_min t
  in
  let page =
    match grab () with
    | Some page -> page
    | None ->
        (* VM_WAIT: the failing allocation waits on the pagedaemon and
           retries.  Several rounds, because the two-queue second-chance
           scan needs them — one pass clears reference bits on the active
           queue, the next deactivates, the one after reclaims — and a
           single pass may legitimately free nothing while reclaimable
           pages still exist. *)
        let rec wait_rounds n =
          run_pagedaemon t;
          match grab () with
          | Some page -> Some page
          | None -> if n > 1 then wait_rounds (n - 1) else None
        in
        (match wait_rounds 4 with
        | Some page -> page
        | None ->
            (* Paging alone cannot meet demand: hand the decision to the
               overload policy (process swapout, then OOM kill).  Each
               round that claims progress earns one more daemon pass and
               retry; the first round that does not ends in Out_of_pages. *)
            let rec last_resort () =
              match t.oom_hook with
              | Some hook when hook () -> (
                  run_pagedaemon t;
                  match grab () with
                  | Some page -> page
                  | None -> last_resort ())
              | Some _ | None -> raise Out_of_pages
            in
            last_resort ())
  in
  page.Page.owner <- owner;
  page.Page.owner_offset <- offset;
  page.Page.dirty <- false;
  page.Page.busy <- false;
  page.Page.referenced <- false;
  assert (page.Page.wire_count = 0);
  assert (page.Page.loan_count = 0);
  page.Page.l_steps <- 0;
  lstep t page ~op:"alloc" Page.L_detached;
  page.Page.l_birth <- Sim.Simclock.now t.clock;
  page.Page.l_fill <- None;
  page.Page.l_last_fault <- -1.0;
  page.Page.l_fa <- -1;
  page.Page.l_clusters <- 0;
  page.Page.l_reassigns <- 0;
  if zero then begin
    Bytes.fill page.Page.data 0 t.page_size '\000';
    Sim.Simclock.advance t.clock t.costs.Sim.Cost_model.page_zero;
    t.stats.Sim.Stats.pages_zeroed <- t.stats.Sim.Stats.pages_zeroed + 1
  end;
  page

(* Shared bookkeeping for a frame leaving service: resolve any dangling
   fault-ahead premap as wasted and log the frame's residency time. *)
let retire t (page : Page.t) =
  fa_resolve ~stats:t.stats ~lifecycle:t.lifecycle page ~used:false;
  Sim.Lifecycle.note_residency t.lifecycle
    (Sim.Simclock.now t.clock -. page.Page.l_birth)

let free_page t (page : Page.t) =
  if page.queue = Page.Q_free then
    invalid_arg "Physmem.free_page: page already free";
  if page.loan_count > 0 then begin
    (* The owner dropped the page while it is loaned out (possibly wired by
       the borrower): the borrower keeps using the frame; it is finally
       freed when the last loan is ended (uvm_loan handles that). *)
    page.owner <- Page.No_owner;
    page.owner_offset <- 0;
    unlink t page;
    lstep t page ~op:"free_loaned" Page.L_limbo
  end
  else if page.wire_count > 0 then
    invalid_arg "Physmem.free_page: page is wired"
  else begin
    page.owner <- Page.No_owner;
    page.owner_offset <- 0;
    page.dirty <- false;
    page.busy <- false;
    page.referenced <- false;
    retire t page;
    lstep t page ~op:"free" Page.L_free;
    enqueue t page Page.Q_free
  end

let activate t (page : Page.t) =
  if page.wire_count > 0 then begin
    lstep t page ~op:"activate_wired" Page.L_wired;
    unlink t page
  end
  else begin
    lstep t page ~op:"activate" Page.L_active;
    enqueue t page Page.Q_active
  end

let deactivate t (page : Page.t) =
  page.referenced <- false;
  (* Cooling off without ever being soft-touched resolves a pending
     fault-ahead premap as wasted. *)
  fa_resolve ~stats:t.stats ~lifecycle:t.lifecycle page ~used:false;
  if page.wire_count > 0 then begin
    lstep t page ~op:"deactivate_wired" Page.L_wired;
    unlink t page
  end
  else begin
    lstep t page ~op:"deactivate" Page.L_inactive;
    enqueue t page Page.Q_inactive
  end

let dequeue t page =
  lstep t page ~op:"dequeue" Page.L_detached;
  unlink t page

(* Snapshots merge the color rings back into one list ordered by enqueue
   stamp, so queue scans (pagedaemon LRU, audits) see exactly the order
   a single global ring would have produced. *)
let merge_rings arr =
  Array.fold_left
    (fun acc dl -> List.rev_append (Sim.Dlist.to_list dl) acc)
    [] arr
  |> List.sort (fun (a : Page.t) (b : Page.t) ->
         compare a.Page.q_seq b.Page.q_seq)

let inactive_pages t = merge_rings t.inactive
let active_pages t = merge_rings t.active

(* Cached pages are free pages: the snapshot appends them after the
   queued ones so [free_count = |free_pages|] and the ledger/queue
   audits hold without special-casing the caches. *)
let free_pages t =
  let cached =
    Array.fold_left
      (fun acc cache ->
        Array.fold_left
          (fun acc pages -> List.rev_append pages acc)
          acc cache.cc_pages)
      [] t.caches
  in
  merge_rings t.free @ cached

let free_pages_of_color t color =
  if color < 0 || color >= ncolors then
    invalid_arg "Physmem.free_pages_of_color: no such color";
  Sim.Dlist.to_list t.free.(color)

let iter_pages f t = Array.iter f t.pages

let wire t (page : Page.t) =
  page.wire_count <- page.wire_count + 1;
  if page.wire_count = 1 then begin
    (* A frame wired on behalf of a loan (uvm_loan wiring the borrower's
       reference) is ledgered separately from plain wirings. *)
    lstep t page ~op:"wire"
      (if page.loan_count > 0 then Page.L_loaned else Page.L_wired);
    unlink t page
  end

let unwire t (page : Page.t) =
  if page.wire_count <= 0 then invalid_arg "Physmem.unwire: page not wired";
  page.wire_count <- page.wire_count - 1;
  if page.wire_count = 0 then
    if page.owner = Page.No_owner && page.loan_count > 0 then
      (* Owner dropped the frame while it was loaned out: it stays in
         limbo (off-queue) until the last loan drains it to the free
         list. *)
      lstep t page ~op:"unwire_limbo" Page.L_limbo
    else begin
      lstep t page ~op:"unwire" Page.L_active;
      enqueue t page Page.Q_active
    end

let release_loan t (page : Page.t) =
  if page.loan_count <= 0 then
    invalid_arg "Physmem.release_loan: page not loaned";
  page.loan_count <- page.loan_count - 1;
  if page.loan_count = 0 && page.owner = Page.No_owner && page.wire_count = 0
  then begin
    page.dirty <- false;
    page.busy <- false;
    page.referenced <- false;
    retire t page;
    lstep t page ~op:"loan_free" Page.L_free;
    enqueue t page Page.Q_free
  end

(* ---- Lockless page lookup ------------------------------------------- *)

module Lookup = struct
  type pm = t

  type okey = { k_pm : pm; k_oid : int }

  let okey t =
    t.oid_serial <- t.oid_serial + 1;
    { k_pm = t; k_oid = t.oid_serial }

  let slot t ~oid ~pgno =
    let h = (oid * 0x9E3779B1) lxor (pgno * 0x85EBCA77) in
    (h lxor (h lsr 13)) land (Array.length t.lookup - 1)

  let publish k ~pgno (page : Page.t) =
    let t = k.k_pm in
    let e = t.lookup.(slot t ~oid:k.k_oid ~pgno) in
    e.e_gen <- e.e_gen + 1;
    e.e_oid <- k.k_oid;
    e.e_pgno <- pgno;
    e.e_page <- Some page;
    e.e_owner <- page.Page.owner;
    e.e_gen <- e.e_gen + 1

  let revoke k ~pgno =
    let t = k.k_pm in
    let e = t.lookup.(slot t ~oid:k.k_oid ~pgno) in
    if e.e_oid = k.k_oid && e.e_pgno = pgno then begin
      e.e_gen <- e.e_gen + 1;
      e.e_oid <- -1;
      e.e_pgno <- -1;
      e.e_page <- None;
      e.e_owner <- Page.No_owner;
      e.e_gen <- e.e_gen + 1
    end

  (* The unlocked read: snapshot the generation, read the slot, check the
     generation again.  A torn read (odd or changed generation) or any
     identity mismatch falls back to the locked path.  Owner identity is
     physical: every insert tags the page with a freshly-allocated owner
     block, so a slot published for a page that has since been freed,
     moved or collapsed into another object can never validate. *)
  let probe k ~pgno =
    let t = k.k_pm in
    let e = t.lookup.(slot t ~oid:k.k_oid ~pgno) in
    let g1 = e.e_gen in
    let hit =
      if e.e_oid = k.k_oid && e.e_pgno = pgno then
        match e.e_page with
        | Some page
          when page.Page.owner == e.e_owner
               && page.Page.owner_offset = pgno
               && (not page.Page.busy)
               && page.Page.queue <> Page.Q_free
               && page.Page.cached_cpu < 0 ->
            Some page
        | _ -> None
      else None
    in
    if g1 = e.e_gen && g1 land 1 = 0 then hit else None

  let find k ~pgno =
    let t = k.k_pm in
    Sim.Simclock.advance t.clock t.costs.Sim.Cost_model.hash_lookup;
    match probe k ~pgno with
    | Some page ->
        t.stats.Sim.Stats.lookup_fast_hits <-
          t.stats.Sim.Stats.lookup_fast_hits + 1;
        Some page
    | None ->
        t.stats.Sim.Stats.lookup_locked <-
          t.stats.Sim.Stats.lookup_locked + 1;
        None

  let peek k ~pgno = probe k ~pgno
end

(* ---- Ledger notes from the VM layers -------------------------------- *)

let lifecycle t = t.lifecycle
let ledger_violations t = t.violations

let note_fault_in t (page : Page.t) ~fill =
  let now = Sim.Simclock.now t.clock in
  if t.last_fill >= 0.0 then
    Sim.Lifecycle.note_interfault t.lifecycle (now -. t.last_fill);
  t.last_fill <- now;
  page.Page.l_last_fault <- now;
  page.Page.l_fill <- Some fill;
  Sim.Lifecycle.note_fill t.lifecycle fill;
  (* A demand fault resolving to a premapped frame means the premap did
     not prevent the fault: in vain. *)
  fa_resolve ~stats:t.stats ~lifecycle:t.lifecycle page ~used:false

let note_fault_ahead_mapped t (page : Page.t) ~madv =
  if page.Page.l_fa < 0 then begin
    page.Page.l_fa <- Sim.Lifecycle.madv_index madv;
    Sim.Lifecycle.note_fa_mapped t.lifecycle madv
  end

let note_soft_use ~stats ~lifecycle page =
  fa_resolve ~stats ~lifecycle page ~used:true

(* A demand fault landed on this frame: whatever premap it carried did not
   prevent the fault. *)
let note_demand_fault t page =
  fa_resolve ~stats:t.stats ~lifecycle:t.lifecycle page ~used:false

let note_unmapped ~stats ~lifecycle page =
  fa_resolve ~stats ~lifecycle page ~used:false

let note_cluster t ~pages ~runs =
  Sim.Lifecycle.note_cluster t.lifecycle ~size:(List.length pages) ~runs;
  List.iter
    (fun (p : Page.t) -> p.Page.l_clusters <- p.Page.l_clusters + 1)
    pages

let note_reassign t (page : Page.t) ~dist =
  page.Page.l_reassigns <- page.Page.l_reassigns + 1;
  Sim.Lifecycle.note_reassign t.lifecycle ~dist

let copy_data t ~(src : Page.t) ~(dst : Page.t) =
  Bytes.blit src.data 0 dst.data 0 t.page_size;
  Sim.Simclock.advance t.clock t.costs.Sim.Cost_model.page_copy;
  t.stats.Sim.Stats.pages_copied <- t.stats.Sim.Stats.pages_copied + 1

let zero_data t (page : Page.t) =
  Bytes.fill page.data 0 t.page_size '\000';
  Sim.Simclock.advance t.clock t.costs.Sim.Cost_model.page_zero;
  t.stats.Sim.Stats.pages_zeroed <- t.stats.Sim.Stats.pages_zeroed + 1

module Testhook = struct
  (* Deliberately link [page] onto a second paging queue without unlinking
     it from its current one, leaving the frame reachable from two rings at
     once — the classic queue-corruption bug the auditor must catch.  Only
     for tests; never called by the VM layers. *)
  let double_insert t (page : Page.t) =
    let second =
      match page.Page.queue with
      | Page.Q_inactive -> t.active.(page.Page.color)
      | _ -> t.inactive.(page.Page.color)
    in
    ignore (Sim.Dlist.push_tail second page)
end

type tag = ..
type tag += No_owner

type queue = Q_none | Q_free | Q_active | Q_inactive

type lstate =
  | L_free
  | L_detached
  | L_active
  | L_inactive
  | L_wired
  | L_loaned
  | L_limbo

type t = {
  id : int;
  color : int;
  data : bytes;
  mutable dirty : bool;
  mutable busy : bool;
  mutable wire_count : int;
  mutable loan_count : int;
  mutable owner : tag;
  mutable owner_offset : int;
  mutable queue : queue;
  mutable node : t Sim.Dlist.node option;
  mutable q_seq : int;  (* global enqueue stamp: FIFO order across colors *)
  mutable cached_cpu : int;  (* per-CPU free cache holding this page, -1 none *)
  mutable referenced : bool;
  (* Provenance ledger (DESIGN.md §10).  Mutated only through Physmem's
     transition function so that every move is checked for legality. *)
  mutable lstate : lstate;
  mutable l_birth : float;  (* sim time of the current allocation *)
  mutable l_fill : Sim.Lifecycle.fill option;  (* how contents arrived *)
  mutable l_last_fault : float;  (* last fault-in resolving to this frame *)
  mutable l_fa : int;  (* pending fault-ahead premap: madv index, -1 none *)
  mutable l_steps : int;  (* lifecycle transitions since alloc *)
  mutable l_clusters : int;  (* pageout-cluster memberships *)
  mutable l_reassigns : int;  (* swap-slot reassignments *)
}

let is_free t = t.queue = Q_free
let is_wired t = t.wire_count > 0
let is_loaned t = t.loan_count > 0

let queue_name = function
  | Q_none -> "none"
  | Q_free -> "free"
  | Q_active -> "active"
  | Q_inactive -> "inactive"

let lstate_name = function
  | L_free -> "free"
  | L_detached -> "detached"
  | L_active -> "active"
  | L_inactive -> "inactive"
  | L_wired -> "wired"
  | L_loaned -> "loaned"
  | L_limbo -> "limbo"

let pp ppf t =
  Format.fprintf ppf "page#%d{q=%s wire=%d loan=%d dirty=%b}" t.id
    (queue_name t.queue) t.wire_count t.loan_count t.dirty

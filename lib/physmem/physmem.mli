(** Physical memory: the page allocator and the paging queues.

    Simulates the machine's RAM as a fixed array of {!Page.t} frames plus
    the classic BSD free / active / inactive queues.  When the free list
    drops below [freemin] the registered pagedaemon callback is invoked —
    each VM system (UVM, BSD VM) installs its own pageout strategy, which is
    exactly the axis Figure 5 of the paper measures. *)

module Page = Page

exception Out_of_pages
(** Raised when an allocation cannot be satisfied even after running the
    pagedaemon — the simulated equivalent of a memory deadlock. *)

type t

type violation = {
  v_page : int;
  v_from : Page.lstate;
  v_to : Page.lstate;
  v_op : string;
}
(** An illegal ledger transition: the frame, the attempted move and the
    physmem operation that tried it (DESIGN.md §10). *)

val string_of_violation : violation -> string

val create :
  ?page_size:int ->
  ?lifecycle:Sim.Lifecycle.t ->
  npages:int ->
  clock:Sim.Simclock.t ->
  costs:Sim.Cost_model.t ->
  stats:Sim.Stats.t ->
  unit ->
  t
(** [create ~npages ...] boots a machine with [npages] frames of physical
    memory.  [page_size] defaults to 4096 bytes.  [lifecycle] is the
    efficacy accumulator the provenance ledger feeds (a private one is
    created when omitted). *)

val page_size : t -> int
val total_pages : t -> int
val free_count : t -> int
val active_count : t -> int
val inactive_count : t -> int

val freemin : t -> int
(** Free-page threshold below which the pagedaemon is kicked. *)

val freetarg : t -> int
(** Free-page count the pagedaemon aims for when it runs. *)

val reserve : t -> int
(** Frames held back from ordinary allocation for the paths that create
    free memory: pagedaemon staging, drain migration, swap pagein. *)

val set_pagedaemon : t -> (unit -> unit) -> unit
(** Install the VM system's pageout routine.  It is called by {!alloc} when
    free pages are scarce and must try to move clean/cleaned pages to the
    free list. *)

val set_lockstat : t -> Sim.Lockstat.t option -> unit
(** Register the page-queue lock with the machine's lock observatory:
    queue surgery (unlink/enqueue) is then recorded as write-mode holds
    of the ["pagequeue"] class. *)

val set_oom_hook : t -> (unit -> bool) option -> unit
(** Install (or clear) the last-resort overload policy.  When paging cannot
    satisfy an allocation, the hook is invoked; returning [true] means it
    freed memory (swapped a process out, reaped a victim) and the
    allocation should run the daemon and retry.  The first [false] — or no
    hook — turns the failure into {!Out_of_pages}. *)

val alloc :
  t -> ?zero:bool -> ?privileged:bool -> owner:Page.tag -> offset:int ->
  unit -> Page.t
(** Allocate a page frame for [owner] at page-index [offset] within it.
    If [zero] (default false) the page data is zero-filled and the zeroing
    cost is charged.  If [privileged] (default false) the allocation may
    dig into the kernel {!reserve} — for pagedaemon staging and swap
    pagein only, so reclaim always makes progress.  The returned page is
    on no queue ([Q_none]), not busy, clean, and unwired.
    @raise Out_of_pages if memory cannot be reclaimed. *)

val free_page : t -> Page.t -> unit
(** Return a frame to the free list, clearing ownership.  A loaned page
    ([loan_count > 0]) only drops ownership; the frame is actually freed
    when the last loan ends (see UVM loanout semantics, paper §7).
    @raise Invalid_argument if the page is wired or already free. *)

val activate : t -> Page.t -> unit
(** Put a page on the active queue (unlinking it from wherever it is). *)

val deactivate : t -> Page.t -> unit
(** Put a page on the inactive queue and clear its reference bit. *)

val dequeue : t -> Page.t -> unit
(** Remove a page from any paging queue (used when wiring or starting I/O). *)

val inactive_pages : t -> Page.t list
(** Snapshot of the inactive queue, LRU first (pagedaemon scan order). *)

val active_pages : t -> Page.t list

val free_pages : t -> Page.t list
(** Snapshot of the free list (invariant auditing). *)

val iter_pages : (Page.t -> unit) -> t -> unit
(** Visit every physical frame, allocated or not, in frame-number order —
    the auditor's walk over the whole of simulated RAM. *)

val wire : t -> Page.t -> unit
(** Increment the wire count; a newly-wired page leaves the paging queues. *)

val unwire : t -> Page.t -> unit
(** Decrement the wire count; when it reaches zero the page goes active. *)

val release_loan : t -> Page.t -> unit
(** End one loan on a page.  If the owner already dropped the page and no
    loans remain, the frame finally returns to the free list (paper §7's
    loanout lifetime rule). *)

val copy_data : t -> src:Page.t -> dst:Page.t -> unit
(** Copy page contents, charging the page-copy cost. *)

val zero_data : t -> Page.t -> unit
(** Zero page contents, charging the page-zero cost. *)

val page_shortage : t -> bool
(** True when the free list is below [freemin]. *)

(** {1 Provenance ledger}

    Every queue/wire/loan operation above already steps each frame's
    lifecycle record through a legal-transition state machine; illegal
    moves are recorded (and counted in {!Sim.Lifecycle}) for the
    auditor.  The notes below let the VM layers stamp the events physmem
    cannot see itself: fault-in kind, fault-ahead premaps and their
    resolution, pageout-cluster membership and swap-slot reassignment. *)

val lifecycle : t -> Sim.Lifecycle.t

val ledger_violations : t -> violation list
(** Illegal transitions seen so far (bounded; oldest first). *)

val note_fault_in : t -> Page.t -> fill:Sim.Lifecycle.fill -> unit
(** A fault resolved to this frame: records the fill kind and the
    inter-fault interval, and resolves a pending fault-ahead premap as
    wasted (the premap did not prevent this fault). *)

val note_fault_ahead_mapped : t -> Page.t -> madv:Sim.Lifecycle.madv -> unit
(** Fault-ahead premapped this resident frame under the given advice.
    No-op if a premap is already pending (first premap wins). *)

val note_demand_fault : t -> Page.t -> unit
(** A demand fault resolved to this frame (whether or not it was a fresh
    fill): any pending premap is resolved as wasted. *)

val note_soft_use :
  stats:Sim.Stats.t -> lifecycle:Sim.Lifecycle.t -> Page.t -> unit
(** The frame was touched through an existing translation: a pending
    fault-ahead premap is resolved as used (a fault was avoided).
    Takes the sinks explicitly so pmap can call it without a [t]. *)

val note_unmapped :
  stats:Sim.Stats.t -> lifecycle:Sim.Lifecycle.t -> Page.t -> unit
(** A translation to the frame was removed; a pending premap is wasted. *)

val note_cluster : t -> pages:Page.t list -> runs:int -> unit
(** The pages went out in one pageout cluster laid out in [runs]
    contiguous swap-slot runs (1 = fully contiguous, the paper's §6
    ideal; |pages| = one seek per page, the BSD baseline). *)

val note_reassign : t -> Page.t -> dist:int -> unit
(** The frame's swap slot moved [dist] slots away during clustering. *)

(** Deliberate state corruption for exercising the invariant auditor.
    Never called by the VM layers. *)
module Testhook : sig
  val double_insert : t -> Page.t -> unit
  (** Link [page] onto a second paging queue without removing it from its
      current one. *)
end

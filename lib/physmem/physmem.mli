(** Physical memory: the page allocator and the paging queues.

    Simulates the machine's RAM as a fixed array of {!Page.t} frames plus
    the classic BSD free / active / inactive queues.  When the free list
    drops below [freemin] the registered pagedaemon callback is invoked —
    each VM system (UVM, BSD VM) installs its own pageout strategy, which is
    exactly the axis Figure 5 of the paper measures.

    Under simulated SMP (DESIGN.md §16) the queues are sharded
    DragonFly-style: each queue is {!ncolors} rings indexed by page color
    ([frame mod ncolors]), every enqueue carries a global stamp so merged
    snapshots preserve the single-ring FIFO/LRU order, and machines booted
    with [ncpus > 1] get per-CPU free-page caches refilled in batches from
    (and drained back to) the colored queues.  A lockless (generation
    checked) page-lookup fast path lives in {!Lookup}. *)

module Page = Page

exception Out_of_pages
(** Raised when an allocation cannot be satisfied even after running the
    pagedaemon — the simulated equivalent of a memory deadlock. *)

type t

type violation = {
  v_page : int;
  v_from : Page.lstate;
  v_to : Page.lstate;
  v_op : string;
}
(** An illegal ledger transition: the frame, the attempted move and the
    physmem operation that tried it (DESIGN.md §10). *)

val string_of_violation : violation -> string

val create :
  ?page_size:int ->
  ?lifecycle:Sim.Lifecycle.t ->
  ?ncpus:int ->
  npages:int ->
  clock:Sim.Simclock.t ->
  costs:Sim.Cost_model.t ->
  stats:Sim.Stats.t ->
  unit ->
  t
(** [create ~npages ...] boots a machine with [npages] frames of physical
    memory.  [page_size] defaults to 4096 bytes.  [lifecycle] is the
    efficacy accumulator the provenance ledger feeds (a private one is
    created when omitted).  [ncpus] (default 1) sizes the per-CPU
    free-page caches; at 1 the caches are inert and allocation order is
    exactly the unsharded allocator's. *)

val ncolors : int
(** Number of page colors (queue shards): color = frame number mod this. *)

val page_size : t -> int
val total_pages : t -> int
val ncpus : t -> int

val free_count : t -> int
(** All free frames: colored free queues plus per-CPU caches. *)

val queue_free_count : t -> int
(** Free frames on the colored queues only (excludes per-CPU caches);
    never refilled below {!reserve}. *)

val active_count : t -> int
val inactive_count : t -> int

val set_current_cpu : t -> int -> unit
(** Select the CPU whose free cache serves subsequent allocations — the
    SMP scheduler calls this at every context switch.
    @raise Invalid_argument if the index is out of range. *)

val current_cpu : t -> int

val cache_target : t -> int
(** Per-CPU cache fill target (0 on a 1-CPU machine). *)

val drain_caches : t -> unit
(** Return every cached page to its color's free queue.  Runs implicitly
    when an allocation finds the machine under pressure. *)

type cache_view = {
  cw_cpu : int;
  cw_held : int;  (** pages currently in this CPU's cache *)
  cw_hits : int;  (** allocations served from the cache *)
  cw_misses : int;  (** allocations that missed (refill or global pop) *)
  cw_refills : int;  (** batched refills pulled from the queues *)
  cw_drains : int;  (** drains back to the queues *)
  cw_steals : int;  (** refill pages taken outside the preferred colors *)
}

val cache_views : t -> cache_view list
(** One view per CPU, in CPU order. *)

val free_pages_of_color : t -> int -> Page.t list
(** Snapshot of one colored free queue, FIFO order (tests).
    @raise Invalid_argument on a bad color. *)

val freemin : t -> int
(** Free-page threshold below which the pagedaemon is kicked. *)

val freetarg : t -> int
(** Free-page count the pagedaemon aims for when it runs. *)

val reserve : t -> int
(** Frames held back from ordinary allocation for the paths that create
    free memory: pagedaemon staging, drain migration, swap pagein. *)

val set_pagedaemon : t -> (unit -> unit) -> unit
(** Install the VM system's pageout routine.  It is called by {!alloc} when
    free pages are scarce and must try to move clean/cleaned pages to the
    free list. *)

val set_lockstat : t -> Sim.Lockstat.t option -> unit
(** Register the page-queue locks with the machine's lock observatory:
    queue surgery (unlink/enqueue/refill/drain) is then recorded as
    write-mode holds of the ["pagequeue"] class — one lock instance per
    color ring, so surgery on different colors never contends. *)

val set_oom_hook : t -> (unit -> bool) option -> unit
(** Install (or clear) the last-resort overload policy.  When paging cannot
    satisfy an allocation, the hook is invoked; returning [true] means it
    freed memory (swapped a process out, reaped a victim) and the
    allocation should run the daemon and retry.  The first [false] — or no
    hook — turns the failure into {!Out_of_pages}. *)

val alloc :
  t -> ?zero:bool -> ?privileged:bool -> owner:Page.tag -> offset:int ->
  unit -> Page.t
(** Allocate a page frame for [owner] at page-index [offset] within it.
    If [zero] (default false) the page data is zero-filled and the zeroing
    cost is charged.  If [privileged] (default false) the allocation may
    dig into the kernel {!reserve} — for pagedaemon staging and swap
    pagein only, so reclaim always makes progress.  The returned page is
    on no queue ([Q_none]), not busy, clean, and unwired.
    @raise Out_of_pages if memory cannot be reclaimed. *)

val free_page : t -> Page.t -> unit
(** Return a frame to the free list, clearing ownership.  A loaned page
    ([loan_count > 0]) only drops ownership; the frame is actually freed
    when the last loan ends (see UVM loanout semantics, paper §7).
    @raise Invalid_argument if the page is wired or already free. *)

val activate : t -> Page.t -> unit
(** Put a page on the active queue (unlinking it from wherever it is). *)

val deactivate : t -> Page.t -> unit
(** Put a page on the inactive queue and clear its reference bit. *)

val dequeue : t -> Page.t -> unit
(** Remove a page from any paging queue (used when wiring or starting I/O). *)

val inactive_pages : t -> Page.t list
(** Snapshot of the inactive queue, LRU first (pagedaemon scan order). *)

val active_pages : t -> Page.t list

val free_pages : t -> Page.t list
(** Snapshot of the free list (invariant auditing): the colored queues
    merged in enqueue order, then any pages held by per-CPU caches —
    [List.length (free_pages t) = free_count t] always. *)

val iter_pages : (Page.t -> unit) -> t -> unit
(** Visit every physical frame, allocated or not, in frame-number order —
    the auditor's walk over the whole of simulated RAM. *)

val wire : t -> Page.t -> unit
(** Increment the wire count; a newly-wired page leaves the paging queues. *)

val unwire : t -> Page.t -> unit
(** Decrement the wire count; when it reaches zero the page goes active. *)

val release_loan : t -> Page.t -> unit
(** End one loan on a page.  If the owner already dropped the page and no
    loans remain, the frame finally returns to the free list (paper §7's
    loanout lifetime rule). *)

val copy_data : t -> src:Page.t -> dst:Page.t -> unit
(** Copy page contents, charging the page-copy cost. *)

val zero_data : t -> Page.t -> unit
(** Zero page contents, charging the page-zero cost. *)

val page_shortage : t -> bool
(** True when the free list is below [freemin]. *)

(** {1 Lockless page lookup}

    A direct-mapped (object, offset) → page cache modelling DragonFly's
    heuristic page hash: reads are unlocked, guarded by a generation
    counter (seqlock protocol) plus identity validation against the live
    page, so a stale slot can only miss — never return a wrong page.
    Publishers are the object layers' [insert_page]/[remove_page]; the
    fault paths probe it before taking the object lock. *)
module Lookup : sig
  type okey
  (** A lookup identity for one memory object (UVM object, BSD VM
      object): allocate once at object creation. *)

  val okey : t -> okey

  val publish : okey -> pgno:int -> Page.t -> unit
  (** Publish [page] as the resident page at [pgno]; captures the page's
      current owner tag for later validation.  Call with the page's
      owner fields already set. *)

  val revoke : okey -> pgno:int -> unit
  (** Clear the slot if it still belongs to this (object, offset). *)

  val find : okey -> pgno:int -> Page.t option
  (** The fast path: an unlocked probe charging one [hash_lookup].
      [Some page] is a validated hit (never busy, never free) and counts
      toward [lookup_fast_hits]; [None] means the caller must take the
      locked path and counts toward [lookup_locked]. *)

  val peek : okey -> pgno:int -> Page.t option
  (** {!find} without costs or counters — the auditor's diff-check
      against the locked structures. *)
end

(** {1 Provenance ledger}

    Every queue/wire/loan operation above already steps each frame's
    lifecycle record through a legal-transition state machine; illegal
    moves are recorded (and counted in {!Sim.Lifecycle}) for the
    auditor.  The notes below let the VM layers stamp the events physmem
    cannot see itself: fault-in kind, fault-ahead premaps and their
    resolution, pageout-cluster membership and swap-slot reassignment. *)

val lifecycle : t -> Sim.Lifecycle.t

val ledger_violations : t -> violation list
(** Illegal transitions seen so far (bounded; oldest first). *)

val note_fault_in : t -> Page.t -> fill:Sim.Lifecycle.fill -> unit
(** A fault resolved to this frame: records the fill kind and the
    inter-fault interval, and resolves a pending fault-ahead premap as
    wasted (the premap did not prevent this fault). *)

val note_fault_ahead_mapped : t -> Page.t -> madv:Sim.Lifecycle.madv -> unit
(** Fault-ahead premapped this resident frame under the given advice.
    No-op if a premap is already pending (first premap wins). *)

val note_demand_fault : t -> Page.t -> unit
(** A demand fault resolved to this frame (whether or not it was a fresh
    fill): any pending premap is resolved as wasted. *)

val note_soft_use :
  stats:Sim.Stats.t -> lifecycle:Sim.Lifecycle.t -> Page.t -> unit
(** The frame was touched through an existing translation: a pending
    fault-ahead premap is resolved as used (a fault was avoided).
    Takes the sinks explicitly so pmap can call it without a [t]. *)

val note_unmapped :
  stats:Sim.Stats.t -> lifecycle:Sim.Lifecycle.t -> Page.t -> unit
(** A translation to the frame was removed; a pending premap is wasted. *)

val note_cluster : t -> pages:Page.t list -> runs:int -> unit
(** The pages went out in one pageout cluster laid out in [runs]
    contiguous swap-slot runs (1 = fully contiguous, the paper's §6
    ideal; |pages| = one seek per page, the BSD baseline). *)

val note_reassign : t -> Page.t -> dist:int -> unit
(** The frame's swap slot moved [dist] slots away during clustering. *)

(** Deliberate state corruption for exercising the invariant auditor.
    Never called by the VM layers. *)
module Testhook : sig
  val double_insert : t -> Page.t -> unit
  (** Link [page] onto a second paging queue without removing it from its
      current one. *)
end

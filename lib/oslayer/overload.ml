(** Overload policy shared by both kernels: per-process resource limits
    and the OOM badness score.

    The VM-independent half of the lifeboat.  Limits bound what one
    process may consume of each contended resource; the badness score
    ranks victims when paging and process swapout have both failed to
    meet demand.  The process manager that applies them lives in
    {!Procsim} (it needs the VM functor); this module is plain data so
    tests and the chaos scheduler can reason about policy without
    booting a kernel. *)

type rlimits = {
  rl_resident : int;  (** max resident pages *)
  rl_swap : int;  (** max swap slots reachable from the space *)
  rl_wired : int;  (** max wired pages (mlock + vslock) *)
  rl_backlog : int;  (** max queued bytes across owned IPC channels *)
}

let unlimited =
  {
    rl_resident = max_int;
    rl_swap = max_int;
    rl_wired = max_int;
    rl_backlog = max_int;
  }

exception Rlimit_exceeded of { pid : int; limit : string }
(** An allocation point refused to grow the process past a limit — the
    typed equivalent of EAGAIN/ENOMEM from a setrlimit'd kernel. *)

exception Killed of { pid : int }
(** Signal-style kill delivery: the OOM policy chose the currently
    running process, so the syscall it was in unwinds with this instead
    of returning — the simulated SIGKILL that lets the caller observe a
    clean mid-syscall death. *)

(* The victim score.  Footprint is what a kill frees (resident + swap);
   wired pages are discounted double since reaping cannot recycle them
   until the wiring drops and they signal kernel-entangled work; young
   processes carry a bonus so long-running work survives a fresh
   fork-bomb, the 4.4BSD bias. *)
let badness ~(usage : Vmiface.Vmtypes.usage) ~age =
  let footprint = usage.u_resident + usage.u_swap in
  let entangled = 2 * usage.u_wired in
  max 0 (footprint - entangled) + max 0 (16 - age)

let () =
  Printexc.register_printer (function
    | Rlimit_exceeded { pid; limit } ->
        Some (Printf.sprintf "Rlimit_exceeded(pid=%d, %s)" pid limit)
    | Killed { pid } -> Some (Printf.sprintf "Killed(pid=%d)" pid)
    | _ -> None)

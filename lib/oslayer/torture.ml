(** Seeded torture harness with a differential oracle.

    Generates a random but reproducible sequence of VM operations
    (mmap/munmap/mprotect/minherit/madvise/msync/fault/fork/exit/wire/
    pageout pressure) and runs the *same* sequence against UVM and the
    BSD VM
    baseline on identically configured machines, auditing both kernels'
    invariants ({!Vmiface.Vm_sig.VM_SYS.audit}) every K operations and
    comparing the observable outcome of every operation.

    Determinism is anchored in a shared placement model: the harness does
    its own first-fit address assignment and passes [fixed_at] to both
    systems, so a trace means the same thing to both kernels and to every
    replay.  The model also knows which ranges are wired and refuses to
    generate the few operation shapes whose semantics the two systems are
    *allowed* to diverge on (e.g. unmapping wired pages), keeping the
    differential oracle sound.

    On failure the harness writes a crash artifact (op trace as JSON, the
    structured failure, the event-ring dump and counter snapshot of both
    machines) and can delta-debug the trace down to a minimal failing
    sequence: ddmin over the op list, where a candidate subset reproduces
    iff a fresh replay fails with the same (system, subsystem, invariant)
    key.

    The {!corruption} hooks seed deliberate bugs (a leaked swap slot, an
    over-counted anon reference, a frame linked on two paging queues) so
    tests can prove the auditor catches each class and names the right
    subsystem. *)

module Vmtypes = Vmiface.Vmtypes
module Machine = Vmiface.Machine
module Prot = Pmap.Prot
open Vmtypes

(* -- harness shape ----------------------------------------------------- *)

let max_procs = 6
let max_regions = 12 (* region slots per process *)
let max_region_pages = 8
let nfiles = 3
let file_pages = 16
let va_base = 16
let va_limit = 4096
let max_chans = 4 (* global pipe slots (kernel objects, not per-proc) *)
let chan_cap_pages = 4
let max_kwires = 2 (* kernel wired-allocation slots (ustructs, ptps...) *)
let max_kwire_pages = 4

(* Pipe payload offsets/lengths are in bytes, so the placement model
   needs the page size to know which pages a transfer touches.  The
   harness always runs on default-sized pages. *)
let page_bytes = Machine.default_config.Machine.page_size

(* -- the op DSL --------------------------------------------------------- *)

(* Every operand is a small integer (slot indices, page offsets, table
   indices), so an op serializes to a flat JSON object and survives
   replay over any model state: ops that no longer make sense in a
   shrunken trace simply fail to resolve and are skipped. *)
type op =
  | Spawn of { p : int }
  | Exit of { p : int }
  | Fork of { parent : int; child : int }
  | Mmap of {
      p : int;
      r : int;
      npages : int;
      prot_ix : int;
      shared : bool;
      src_file : int;  (** 0 = zero-fill, 1..{!nfiles} = file *)
      fileoff : int;
    }
  | Munmap of { p : int; r : int; off : int; len : int }
  | Mprotect of { p : int; r : int; off : int; len : int; prot_ix : int }
  | Minherit of { p : int; r : int; inh_ix : int }
  | Madvise of { p : int; r : int; adv_ix : int }
  | Read of { p : int; r : int; page : int }
  | Write of { p : int; r : int; page : int; byte : int }
  | Mlock of { p : int; r : int; off : int; len : int }
  | Munlock of { p : int; r : int; off : int; len : int }
  | Msync of { p : int; r : int; off : int; len : int }
  | Pressure of { npages : int }
  | Pipe_open of { k : int }
  | Pipe_close of { k : int }
  | Pipe_write of {
      k : int;
      p : int;
      r : int;
      off : int;  (** byte offset within the region *)
      len : int;  (** byte count *)
      pol_ix : int;  (** index into {!Ipc.all_policies} *)
      vsl : bool;  (** wire the user buffer around the transfer *)
    }
  | Pipe_read of { k : int; p : int; r : int; off : int; len : int; vsl : bool }
  | Kwire of { k : int; npages : int }
      (** wired kernel allocation into global slot [k] (a user structure
          or page-table page standing in for §3.2's kernel wiring) *)
  | Kunwire of { k : int }
  | Vsl_grab of { p : int; r : int; off : int; len : int }
      (** vslock a page range and *hold* it across later ops (a long
          physio buffer), unlike the transient wiring of [Pipe_write] *)
  | Vsl_drop of { p : int }

(* Prot choices deliberately all include read: wiring faults pages in
   with a read access, and an unreadable wired range would make mlock
   outcomes depend on eviction timing. *)
let prots = [| Prot.rw; Prot.read; Prot.rwx; Prot.rx |]
let inhs = [| Inh_copy; Inh_shared; Inh_none |]
let advs = [| Adv_normal; Adv_random; Adv_sequential |]

let op_name = function
  | Spawn _ -> "spawn"
  | Exit _ -> "exit"
  | Fork _ -> "fork"
  | Mmap _ -> "mmap"
  | Munmap _ -> "munmap"
  | Mprotect _ -> "mprotect"
  | Minherit _ -> "minherit"
  | Madvise _ -> "madvise"
  | Read _ -> "read"
  | Write _ -> "write"
  | Mlock _ -> "mlock"
  | Munlock _ -> "munlock"
  | Msync _ -> "msync"
  | Pressure _ -> "pressure"
  | Pipe_open _ -> "pipe_open"
  | Pipe_close _ -> "pipe_close"
  | Pipe_write _ -> "pipe_write"
  | Pipe_read _ -> "pipe_read"
  | Kwire _ -> "kwire"
  | Kunwire _ -> "kunwire"
  | Vsl_grab _ -> "vsl_grab"
  | Vsl_drop _ -> "vsl_drop"

let op_fields = function
  | Spawn { p } | Exit { p } -> [ ("p", p) ]
  | Fork { parent; child } -> [ ("parent", parent); ("child", child) ]
  | Mmap { p; r; npages; prot_ix; shared; src_file; fileoff } ->
      [
        ("p", p);
        ("r", r);
        ("npages", npages);
        ("prot", prot_ix);
        ("shared", if shared then 1 else 0);
        ("src", src_file);
        ("fileoff", fileoff);
      ]
  | Munmap { p; r; off; len } | Mlock { p; r; off; len }
  | Munlock { p; r; off; len } | Msync { p; r; off; len } ->
      [ ("p", p); ("r", r); ("off", off); ("len", len) ]
  | Mprotect { p; r; off; len; prot_ix } ->
      [ ("p", p); ("r", r); ("off", off); ("len", len); ("prot", prot_ix) ]
  | Minherit { p; r; inh_ix } -> [ ("p", p); ("r", r); ("inh", inh_ix) ]
  | Madvise { p; r; adv_ix } -> [ ("p", p); ("r", r); ("adv", adv_ix) ]
  | Read { p; r; page } -> [ ("p", p); ("r", r); ("page", page) ]
  | Write { p; r; page; byte } ->
      [ ("p", p); ("r", r); ("page", page); ("byte", byte) ]
  | Pressure { npages } -> [ ("npages", npages) ]
  | Pipe_open { k } | Pipe_close { k } -> [ ("k", k) ]
  | Pipe_write { k; p; r; off; len; pol_ix; vsl } ->
      [
        ("k", k);
        ("p", p);
        ("r", r);
        ("off", off);
        ("len", len);
        ("pol", pol_ix);
        ("vsl", if vsl then 1 else 0);
      ]
  | Pipe_read { k; p; r; off; len; vsl } ->
      [
        ("k", k);
        ("p", p);
        ("r", r);
        ("off", off);
        ("len", len);
        ("vsl", if vsl then 1 else 0);
      ]
  | Kwire { k; npages } -> [ ("k", k); ("npages", npages) ]
  | Kunwire { k } -> [ ("k", k) ]
  | Vsl_grab { p; r; off; len } ->
      [ ("p", p); ("r", r); ("off", off); ("len", len) ]
  | Vsl_drop { p } -> [ ("p", p) ]

let op_to_string op =
  Printf.sprintf "%s(%s)" (op_name op)
    (String.concat ","
       (List.map (fun (k, v) -> k ^ "=" ^ string_of_int v) (op_fields op)))

(* -- the placement model ------------------------------------------------ *)

type region = {
  vpn : int;  (** harness-assigned first virtual page *)
  npages : int;
  src_file : int;
  fileoff : int;
  shared : bool;
  mapped : bool array;  (** per-page: not yet unmapped *)
  writable : bool array;  (** per-page: current prot includes write *)
  mutable inh : inherit_mode;
  mutable wired : (int * int) list;  (** (off, len) multiset, from mlock *)
  mutable lineage_cow : bool;  (** was on either side of an Inh_copy fork *)
  mutable lineage_shared : bool;  (** was on either side of an Inh_shared fork *)
  mutable loan_src : bool;
      (** ever the source of a zero-copy (Loan/Mexp) send; sticky, because
          the model does not track when the borrower drains the staging *)
}

type proc = {
  regions : region option array;
  mutable vsl : (int * int * int) option;
      (** held vslock'd buffer as (region slot, off, len), at most one *)
}

type model = {
  procs : proc option array;
  chans : bool array;  (** pipe slot open? — mirrors both executors *)
  kwires : int option array;  (** wired kernel allocation slots (npages) *)
  mutable total_wired : int;
  wired_cap : int;
  mutable pressure_until : int;
      (** op index through which Oom outcomes are expected: bumped by the
          ops that spike memory demand (Pressure) or shrink reclaimable
          RAM (Kwire, Vsl_grab).  Outside this window an Oom divergence
          is only excused while a kernel is measurably low on memory. *)
}

let fresh_model ~ram_pages =
  {
    procs = Array.make max_procs None;
    chans = Array.make max_chans false;
    kwires = Array.make max_kwires None;
    total_wired = 0;
    wired_cap = max 8 (ram_pages / 8);
    pressure_until = -1;
  }

let proc_at m p = if p < 0 || p >= max_procs then None else m.procs.(p)

let region_at m p r =
  match proc_at m p with
  | None -> None
  | Some pr -> if r < 0 || r >= max_regions then None else pr.regions.(r)

let live_spans pr =
  let spans = ref [] in
  Array.iter
    (function
      | Some rg -> spans := (rg.vpn, rg.npages) :: !spans | None -> ())
    pr.regions;
  List.sort compare !spans

(* First fit over the proc's live region spans.  Both kernels receive the
   result via [fixed_at], so placement never depends on either system's
   own find-space policy. *)
let find_place pr ~npages =
  let rec scan at = function
    | [] -> if at + npages <= va_limit then Some at else None
    | (v, n) :: rest ->
        if at + npages <= v then Some at else scan (max at (v + n)) rest
  in
  scan va_base (live_spans pr)

let ranges_overlap (ao, al) (bo, bl) = ao < bo + bl && bo < ao + al
let overlaps_wired rg ~off ~len =
  List.exists (ranges_overlap (off, len)) rg.wired

let overlaps_vsl pr ~r ~off ~len =
  match pr.vsl with
  | Some (vr, voff, vlen) -> vr = r && ranges_overlap (off, len) (voff, vlen)
  | None -> false

(* -- resolution: op -> executable action -------------------------------- *)

type action =
  | A_spawn of { p : int }
  | A_exit of { p : int; unlocks : (int * int) list }  (** absolute (vpn, n) *)
  | A_fork of { parent : int; child : int }
  | A_mmap of {
      p : int;
      at : int;
      npages : int;
      prot : Prot.t;
      share : share;
      src_file : int;
      fileoff : int;
    }
  | A_munmap of { p : int; vpn : int; npages : int }
  | A_mprotect of { p : int; vpn : int; npages : int; prot : Prot.t }
  | A_minherit of { p : int; vpn : int; npages : int; inh : inherit_mode }
  | A_madvise of { p : int; vpn : int; npages : int; adv : advice }
  | A_read of { p : int; vpn : int }
  | A_write of { p : int; vpn : int; byte : int }
  | A_mlock of { p : int; vpn : int; npages : int }
  | A_munlock of { p : int; vpn : int; npages : int }
  | A_msync of { p : int; vpn : int; npages : int }
  | A_pressure of { npages : int }
  | A_pipe_open of { k : int }
  | A_pipe_close of { k : int }
  | A_pipe_write of {
      k : int;
      p : int;
      vpn : int;  (** region base; the byte address is vpn*ps + boff *)
      boff : int;
      len : int;
      policy : Ipc.policy;
      vsl : bool;
    }
  | A_pipe_read of {
      k : int;
      p : int;
      vpn : int;
      boff : int;
      len : int;
      vsl : bool;
    }
  | A_kwire of { k : int; npages : int }
  | A_kunwire of { k : int }
  | A_vsl_grab of { p : int; vpn : int; npages : int }
  | A_vsl_drop of { p : int }

let action_name = function
  | A_spawn _ -> "spawn"
  | A_exit _ -> "exit"
  | A_fork _ -> "fork"
  | A_mmap _ -> "mmap"
  | A_munmap _ -> "munmap"
  | A_mprotect _ -> "mprotect"
  | A_minherit _ -> "minherit"
  | A_madvise _ -> "madvise"
  | A_read _ -> "read"
  | A_write _ -> "write"
  | A_mlock _ -> "mlock"
  | A_munlock _ -> "munlock"
  | A_msync _ -> "msync"
  | A_pressure _ -> "pressure"
  | A_pipe_open _ -> "pipe_open"
  | A_pipe_close _ -> "pipe_close"
  | A_pipe_write _ -> "pipe_write"
  | A_pipe_read _ -> "pipe_read"
  | A_kwire _ -> "kwire"
  | A_kunwire _ -> "kunwire"
  | A_vsl_grab _ -> "vsl_grab"
  | A_vsl_drop _ -> "vsl_drop"

(* Validate [op] against the model and compute absolute addresses.  Pure:
   generation probes candidates with it, and replay of a shrunken trace
   uses it to skip ops whose preconditions no longer hold.  The hazard
   rules live here: no munmap/mprotect across a wired range (the systems
   may legitimately diverge there), mlock only over fully mapped ranges
   (a mid-range fault would leave the two kernels half-wired) and only
   under the global wired-page cap. *)
let resolve m op : action option =
  match op with
  | Spawn { p } -> (
      match proc_at m p with
      | None when p >= 0 && p < max_procs -> Some (A_spawn { p })
      | _ -> None)
  | Exit { p } -> (
      match proc_at m p with
      | None -> None
      | Some pr ->
          let unlocks = ref [] in
          Array.iter
            (function
              | Some rg ->
                  List.iter
                    (fun (off, len) ->
                      unlocks := (rg.vpn + off, len) :: !unlocks)
                    rg.wired
              | None -> ())
            pr.regions;
          Some (A_exit { p; unlocks = !unlocks }))
  | Fork { parent; child } -> (
      match (proc_at m parent, child) with
      | Some pp, c
        when c >= 0 && c < max_procs && c <> parent
             && proc_at m c = None
             (* A process holding a vslock'd buffer is blocked inside the
                kernel (physio in flight) and cannot fork.  Forking here
                would also COW-protect the wired pages, and a later write
                would displace a frame whose wiring lives only in the
                vslock token — unrecoverable by design (§3.2). *)
             && pp.vsl = None ->
          Some (A_fork { parent; child })
      | _ -> None)
  | Mmap { p; r; npages; prot_ix; shared; src_file; fileoff } -> (
      match proc_at m p with
      | None -> None
      | Some pr ->
          if
            r < 0 || r >= max_regions
            || pr.regions.(r) <> None
            || npages < 1
            || npages > max_region_pages
            || prot_ix < 0
            || prot_ix >= Array.length prots
            || src_file < 0
            || src_file > nfiles
            || (src_file > 0 && (fileoff < 0 || fileoff + npages > file_pages))
          then None
          else
            (* File mappings are forced private: shared file writes would
               compare vnode-cache coherence policies, not invariants. *)
            let share =
              if src_file > 0 then Private
              else if shared then Shared
              else Private
            in
            (match find_place pr ~npages with
            | None -> None
            | Some at ->
                Some
                  (A_mmap
                     {
                       p;
                       at;
                       npages;
                       prot = prots.(prot_ix);
                       share;
                       src_file;
                       fileoff;
                     })))
  | Munmap { p; r; off; len } -> (
      match (proc_at m p, region_at m p r) with
      | Some pr, Some rg
        when off >= 0 && len >= 1
             && off + len <= rg.npages
             && (not (overlaps_wired rg ~off ~len))
             && not (overlaps_vsl pr ~r ~off ~len) ->
          Some (A_munmap { p; vpn = rg.vpn + off; npages = len })
      | _ -> None)
  | Mprotect { p; r; off; len; prot_ix } -> (
      (* Unlike munmap, mprotect across a wired range is fair game: every
         prot choice keeps read (so the wired pages stay accessible) and
         both kernels must preserve the wiring across the permission
         change — exactly the interaction worth generating. *)
      match region_at m p r with
      | Some rg
        when off >= 0 && len >= 1
             && off + len <= rg.npages
             && prot_ix >= 0
             && prot_ix < Array.length prots ->
          Some
            (A_mprotect
               { p; vpn = rg.vpn + off; npages = len; prot = prots.(prot_ix) })
      | _ -> None)
  | Minherit { p; r; inh_ix } -> (
      match region_at m p r with
      | Some rg when inh_ix >= 0 && inh_ix < Array.length inhs ->
          (* Mixing COW and shared inheritance on one region is where the
             two kernels legitimately diverge: 4.4BSD's object sharing
             cannot express "share a mapping that already carries deferred
             copies" (needs-copy sharers each grow a private shadow), while
             UVM's shared amaps stay coherent — the paper's §5.1 argument,
             not a bug.  Keep each region's sharing group homogeneous:
             shared inheritance only for anonymous regions never on a COW
             fork side, COW inheritance never for regions already shared. *)
          let inh = inhs.(inh_ix) in
          let allowed =
            match inh with
            | Inh_shared ->
                (* [not rg.loan_src]: a still-staged loan of this region's
                   frames must not gain co-sharers — their writes would
                   displace loaned frames whose wirings live in another
                   sharer's map entries (see the Pipe_write gate). *)
                rg.src_file = 0 && (not rg.lineage_cow) && not rg.loan_src
            | Inh_copy -> (not rg.shared) && not rg.lineage_shared
            | Inh_none -> true
          in
          if allowed then
            Some (A_minherit { p; vpn = rg.vpn; npages = rg.npages; inh })
          else None
      | _ -> None)
  | Madvise { p; r; adv_ix } -> (
      match region_at m p r with
      | Some rg when adv_ix >= 0 && adv_ix < Array.length advs ->
          Some
            (A_madvise
               { p; vpn = rg.vpn; npages = rg.npages; adv = advs.(adv_ix) })
      | _ -> None)
  | Read { p; r; page } -> (
      match region_at m p r with
      | Some rg when page >= 0 && page < rg.npages ->
          Some (A_read { p; vpn = rg.vpn + page })
      | _ -> None)
  | Write { p; r; page; byte } -> (
      match region_at m p r with
      | Some rg when page >= 0 && page < rg.npages && byte >= 0 && byte < 256
        ->
          Some (A_write { p; vpn = rg.vpn + page; byte })
      | _ -> None)
  | Mlock { p; r; off; len } -> (
      match region_at m p r with
      | Some rg
        when off >= 0 && len >= 1
             && off + len <= rg.npages
             && m.total_wired + len <= m.wired_cap ->
          let all_mapped = ref true in
          for i = off to off + len - 1 do
            if not rg.mapped.(i) then all_mapped := false
          done;
          if !all_mapped then Some (A_mlock { p; vpn = rg.vpn + off; npages = len })
          else None
      | _ -> None)
  | Munlock { p; r; off; len } -> (
      match region_at m p r with
      | Some rg when List.mem (off, len) rg.wired ->
          Some (A_munlock { p; vpn = rg.vpn + off; npages = len })
      | _ -> None)
  | Msync { p; r; off; len } -> (
      (* msync neither unmaps nor rewires, so wired overlap is fine; both
         kernels swallow write errors (failed pages just stay dirty), so
         the outcome is always Done and the oracle stays sound even under
         fault injection. *)
      match region_at m p r with
      | Some rg when off >= 0 && len >= 1 && off + len <= rg.npages ->
          Some (A_msync { p; vpn = rg.vpn + off; npages = len })
      | _ -> None)
  | Pressure { npages } ->
      if npages >= 1 && npages <= 64 then Some (A_pressure { npages })
      else None
  | Pipe_open { k } ->
      if k >= 0 && k < max_chans && not m.chans.(k) then
        Some (A_pipe_open { k })
      else None
  | Pipe_close { k } ->
      if k >= 0 && k < max_chans && m.chans.(k) then Some (A_pipe_close { k })
      else None
  | Pipe_write { k; p; r; off; len; pol_ix; vsl } -> (
      match region_at m p r with
      | Some rg
        when k >= 0 && k < max_chans && m.chans.(k)
             && pol_ix >= 0
             && pol_ix < List.length Ipc.all_policies
             && off >= 0 && len >= 1
             && off + len <= rg.npages * page_bytes
             (* Shared mappings are object-backed: sharers write the
                loaned frame in place, so a post-send write would reach
                the borrower under UVM but not under the copy baseline.
                Private mappings always COW away from loaned frames
                ([writable_in_place] checks the loan count), so they are
                the sound source set.  Shared-amap lineage is excluded
                for the same frame-sharing reason — and because a COW
                displacement of a loaned shared anon triggered by one
                sharer cannot see wirings another sharer's map entries
                carry on the displaced frame. *)
             && (not rg.shared)
             && not rg.lineage_shared ->
          let lo = off / page_bytes and hi = (off + len - 1) / page_bytes in
          let all_mapped = ref true in
          for i = lo to hi do
            if not rg.mapped.(i) then all_mapped := false
          done;
          (* A hole would fault mid-loan and leak the pages already wired,
             so sends need full source coverage. *)
          if !all_mapped then
            Some
              (A_pipe_write
                 {
                   k;
                   p;
                   vpn = rg.vpn;
                   boff = off;
                   len;
                   policy = List.nth Ipc.all_policies pol_ix;
                   vsl;
                 })
          else None
      | _ -> None)
  | Pipe_read { k; p; r; off; len; vsl } -> (
      match region_at m p r with
      | Some rg
        when k >= 0 && k < max_chans && m.chans.(k)
             && off >= 0 && len >= 1
             && off + len <= rg.npages * page_bytes ->
          (* Delivery must not fault mid-write: the queue pops before the
             copy-out, so a Segv there would leave the channel with bytes
             popped but not delivered.  Requiring a fully mapped writable
             destination keeps receives total. *)
          let lo = off / page_bytes and hi = (off + len - 1) / page_bytes in
          let ok = ref true in
          for i = lo to hi do
            if not (rg.mapped.(i) && rg.writable.(i)) then ok := false
          done;
          if !ok then
            Some (A_pipe_read { k; p; vpn = rg.vpn; boff = off; len; vsl })
          else None
      | _ -> None)
  | Kwire { k; npages } ->
      if
        k >= 0 && k < max_kwires
        && m.kwires.(k) = None
        && npages >= 1 && npages <= max_kwire_pages
        && m.total_wired + npages <= m.wired_cap
      then Some (A_kwire { k; npages })
      else None
  | Kunwire { k } ->
      if k >= 0 && k < max_kwires && m.kwires.(k) <> None then
        Some (A_kunwire { k })
      else None
  | Vsl_grab { p; r; off; len } -> (
      (* Like mlock, wiring faults the range in, so it must be fully
         mapped; and each proc holds at most one buffer (physio holds one
         at a time), which keeps Exit's implicit drop unambiguous.
         Restricted to anonymous regions with no deferred-copy lineage:
         vslock wiring lives only in the token (never the map), so a COW
         displacement under it — a private file page promoting on write,
         or a copy-inherited anon resolving — would strand the wire count
         on the old frame.  Real physio buffers are plain process memory
         faulted writable before the transfer, so the restriction loses
         nothing. *)
      match (proc_at m p, region_at m p r) with
      | Some pr, Some rg
        when pr.vsl = None
             && rg.src_file = 0
             && (not rg.lineage_cow)
             && off >= 0 && len >= 1
             && off + len <= rg.npages
             && m.total_wired + len <= m.wired_cap ->
          let all_mapped = ref true in
          for i = off to off + len - 1 do
            if not rg.mapped.(i) then all_mapped := false
          done;
          if !all_mapped then
            Some (A_vsl_grab { p; vpn = rg.vpn + off; npages = len })
          else None
      | _ -> None)
  | Vsl_drop { p } -> (
      match proc_at m p with
      | Some pr when pr.vsl <> None -> Some (A_vsl_drop { p })
      | _ -> None)

let rec remove_first x = function
  | [] -> []
  | y :: tl -> if x = y then tl else y :: remove_first x tl

(* Commit the resolved op to the model. *)
let apply m op a =
  match (op, a) with
  | Spawn _, A_spawn { p } ->
      m.procs.(p) <- Some { regions = Array.make max_regions None; vsl = None }
  | Fork _, A_fork { parent; child } ->
      let pp =
        match m.procs.(parent) with Some pr -> pr | None -> assert false
      in
      let regions =
        Array.map
          (function
            | Some rg when rg.inh <> Inh_none ->
                (* Inherited mappings keep their holes; wiring never
                   crosses fork (both kernels clear the child's counts).
                   Record the inheritance in both sides' lineage so
                   [resolve]'s minherit gates keep COW and shared sharing
                   groups disjoint from here on. *)
                (match rg.inh with
                | Inh_copy -> rg.lineage_cow <- true
                | Inh_shared -> rg.lineage_shared <- true
                | Inh_none -> ());
                Some
                  {
                    rg with
                    mapped = Array.copy rg.mapped;
                    writable = Array.copy rg.writable;
                    wired = [];
                  }
            | _ -> None)
          pp.regions
      in
      m.procs.(child) <- Some { regions; vsl = None }
  | Exit _, A_exit { p; unlocks } ->
      m.total_wired <-
        m.total_wired - List.fold_left (fun acc (_, l) -> acc + l) 0 unlocks;
      (* Exit implicitly drops a held vslock'd buffer (physio completes
         before the space dies); the executors mirror this. *)
      (match m.procs.(p) with
      | Some { vsl = Some (_, _, vlen); _ } ->
          m.total_wired <- m.total_wired - vlen
      | _ -> ());
      m.procs.(p) <- None
  | Mmap { r; _ }, A_mmap { p; at; npages; prot; share; src_file; fileoff; _ }
    ->
      let pr = match m.procs.(p) with Some pr -> pr | None -> assert false in
      pr.regions.(r) <-
        Some
          {
            vpn = at;
            npages;
            src_file;
            fileoff;
            shared = share = Shared;
            mapped = Array.make npages true;
            writable = Array.make npages prot.Prot.w;
            inh = (if share = Shared then Inh_shared else Inh_copy);
            wired = [];
            lineage_cow = false;
            lineage_shared = false;
            loan_src = false;
          }
  | Munmap { r; off; len; _ }, A_munmap { p; _ } ->
      let pr = match m.procs.(p) with Some pr -> pr | None -> assert false in
      let rg = match pr.regions.(r) with Some rg -> rg | None -> assert false in
      for i = off to off + len - 1 do
        rg.mapped.(i) <- false
      done;
      if Array.for_all (fun b -> not b) rg.mapped then pr.regions.(r) <- None
  | Minherit { r; _ }, A_minherit { p; inh; _ } -> (
      match region_at m p r with
      | Some rg -> rg.inh <- inh
      | None -> assert false)
  | Mlock { r; off; len; _ }, A_mlock { p; _ } -> (
      match region_at m p r with
      | Some rg ->
          rg.wired <- (off, len) :: rg.wired;
          m.total_wired <- m.total_wired + len
      | None -> assert false)
  | Munlock { r; off; len; _ }, A_munlock { p; _ } -> (
      match region_at m p r with
      | Some rg ->
          rg.wired <- remove_first (off, len) rg.wired;
          m.total_wired <- m.total_wired - len
      | None -> assert false)
  | Mprotect { r; off; len; _ }, A_mprotect { p; prot; _ } -> (
      match region_at m p r with
      | Some rg ->
          for i = off to off + len - 1 do
            rg.writable.(i) <- prot.Prot.w
          done
      | None -> assert false)
  | Pipe_open _, A_pipe_open { k } -> m.chans.(k) <- true
  | Pipe_close _, A_pipe_close { k } -> m.chans.(k) <- false
  | Kwire _, A_kwire { k; npages } ->
      m.kwires.(k) <- Some npages;
      m.total_wired <- m.total_wired + npages
  | Kunwire _, A_kunwire { k } -> (
      match m.kwires.(k) with
      | Some npages ->
          m.kwires.(k) <- None;
          m.total_wired <- m.total_wired - npages
      | None -> assert false)
  | Vsl_grab { r; off; len; _ }, A_vsl_grab { p; _ } -> (
      match proc_at m p with
      | Some pr ->
          pr.vsl <- Some (r, off, len);
          m.total_wired <- m.total_wired + len
      | None -> assert false)
  | Vsl_drop _, A_vsl_drop { p } -> (
      match proc_at m p with
      | Some pr -> (
          match pr.vsl with
          | Some (_, _, len) ->
              pr.vsl <- None;
              m.total_wired <- m.total_wired - len
          | None -> assert false)
      | None -> assert false)
  | Pipe_write { r; _ }, A_pipe_write { p; policy; _ } -> (
      match policy with
      | Ipc.Copy -> ()
      | Ipc.Loan | Ipc.Mexp -> (
          (* Zero-copy staging may hold the source frames until the reader
             drains the channel; mark the region so it is never offered to
             Inh_shared while a loan could be live. *)
          match region_at m p r with
          | Some rg -> rg.loan_src <- true
          | None -> assert false))
  | _ -> ()
  (* madvise/read/write/msync/pressure/pipe reads leave the model alone *)

(* -- outcomes ----------------------------------------------------------- *)

type outcome =
  | Done
  | Byte of int  (** result of a 1-byte read *)
  | Io of { n : int; sum : int }
      (** pipe transfer: bytes moved, and a positional checksum of the
          delivered data for reads *)
  | Fault of string  (** deterministic Segv (no-entry / prot / pager) *)
  | Oom  (** out of memory or swap — timing-dependent, compared as wildcard *)

let outcome_to_string = function
  | Done -> "done"
  | Byte b -> Printf.sprintf "byte:%d" b
  | Io { n; sum } -> Printf.sprintf "io:%d:%d" n sum
  | Fault s -> "fault:" ^ s
  | Oom -> "oom"

(* -- per-system executor ------------------------------------------------ *)

module Exec (V : Vmiface.Vm_sig.VM_SYS) = struct
  module I = Ipc.Make (V)

  type t = {
    sys : V.sys;
    procs : V.vmspace option array;
    chans : I.chan option array;
    kwires : (int * int) option array;  (** slot -> (kernel vpn, npages) *)
    vsls : V.wired_buffer option array;  (** per-proc held vslock token *)
    files : Vfs.Vnode.t array;
    page_size : int;
  }

  let boot ~config () =
    let sys = V.boot ~config () in
    let mach = V.machine sys in
    let files =
      Array.init nfiles (fun i ->
          Vfs.create_file mach.Machine.vfs
            ~name:(Printf.sprintf "torture.%d" i)
            ~size:(file_pages * Machine.page_size mach))
    in
    {
      sys;
      procs = Array.make max_procs None;
      chans = Array.make max_chans None;
      kwires = Array.make max_kwires None;
      vsls = Array.make max_procs None;
      files;
      page_size = Machine.page_size mach;
    }

  let name = V.name
  let audit t = V.audit t.sys
  let source t = (V.machine t.sys).Machine.trace_source

  (* Is this kernel measurably short on memory right now?  Free pages at
     or below the pagedaemon's target, or swap nearly exhausted — the
     states in which an allocation can legitimately fail.  Used to excuse
     Oom outcomes that fall outside the model's pressure window. *)
  let memory_tight t =
    let m = V.machine t.sys in
    let pm = m.Machine.physmem in
    Physmem.free_count pm <= Physmem.freetarg pm
    || Swap.Swaptier.slots_usable m.Machine.swap
         - Swap.Swaptier.slots_in_use m.Machine.swap
       < 64

  let proc t p =
    match t.procs.(p) with
    | Some vm -> vm
    | None -> invalid_arg "Torture.exec: op on dead proc (harness bug)"

  let chan t k =
    match t.chans.(k) with
    | Some ch -> ch
    | None -> invalid_arg "Torture.exec: op on closed pipe (harness bug)"

  (* Positional checksum of delivered bytes: catches both corruption and
     reordering in the received stream. *)
  let checksum data n =
    let sum = ref 0 in
    for i = 0 to n - 1 do
      sum := ((!sum * 31) + Char.code (Bytes.get data i)) land 0x3FFFFFFF
    done;
    !sum

  let fault_outcome = function
    | Out_of_memory | Out_of_swap -> Oom
    | e -> Fault (string_of_fault_error e)

  let exec_action t (a : action) : outcome =
    match a with
    | A_spawn { p } ->
        t.procs.(p) <- Some (V.new_vmspace t.sys);
        Done
    | A_fork { parent; child } ->
        t.procs.(child) <- Some (V.fork t.sys (proc t parent));
        Done
    | A_exit { p; unlocks } ->
        let vm = proc t p in
        (match t.vsls.(p) with
        | Some wb ->
            V.vsunlock t.sys vm wb;
            t.vsls.(p) <- None
        | None -> ());
        List.iter (fun (vpn, npages) -> V.munlock t.sys vm ~vpn ~npages) unlocks;
        V.destroy_vmspace t.sys vm;
        t.procs.(p) <- None;
        Done
    | A_mmap { p; at; npages; prot; share; src_file; fileoff } ->
        let src =
          if src_file = 0 then Zero
          else File (t.files.(src_file - 1), fileoff)
        in
        let (_ : int) =
          V.mmap t.sys (proc t p) ~fixed_at:at ~npages ~prot ~share src
        in
        Done
    | A_munmap { p; vpn; npages } ->
        V.munmap t.sys (proc t p) ~vpn ~npages;
        Done
    | A_mprotect { p; vpn; npages; prot } ->
        V.mprotect t.sys (proc t p) ~vpn ~npages prot;
        Done
    | A_minherit { p; vpn; npages; inh } ->
        V.minherit t.sys (proc t p) ~vpn ~npages inh;
        Done
    | A_madvise { p; vpn; npages; adv } ->
        V.madvise t.sys (proc t p) ~vpn ~npages adv;
        Done
    | A_read { p; vpn } -> (
        try
          let b =
            V.read_bytes t.sys (proc t p) ~addr:(vpn * t.page_size) ~len:1
          in
          Byte (Char.code (Bytes.get b 0))
        with
        | Segv { error; _ } -> fault_outcome error
        | Physmem.Out_of_pages -> Oom)
    | A_write { p; vpn; byte } -> (
        try
          V.write_bytes t.sys (proc t p) ~addr:(vpn * t.page_size)
            (Bytes.make 1 (Char.chr byte));
          Done
        with
        | Segv { error; _ } -> fault_outcome error
        | Physmem.Out_of_pages -> Oom)
    | A_mlock { p; vpn; npages } ->
        (* The model capped total wiring well below RAM, so a wiring
           fault here means the harness budget is wrong, not the kernel:
           fail loudly rather than leave the two systems half-wired. *)
        (try V.mlock t.sys (proc t p) ~vpn ~npages
         with Segv _ | Physmem.Out_of_pages ->
           failwith "Torture: out of memory while wiring; wired cap too high");
        Done
    | A_munlock { p; vpn; npages } ->
        V.munlock t.sys (proc t p) ~vpn ~npages;
        Done
    | A_msync { p; vpn; npages } ->
        V.msync t.sys (proc t p) ~vpn ~npages;
        Done
    | A_pressure { npages } ->
        (* A throwaway address space dirties fresh anonymous pages and
           exits, forcing page reclamation in whatever order the system's
           own pagedaemon picks. *)
        let vm = V.new_vmspace t.sys in
        let vpn = V.mmap t.sys vm ~npages ~prot:Prot.rw ~share:Private Zero in
        (try V.access_range t.sys vm ~vpn ~npages Write
         with Segv _ | Physmem.Out_of_pages -> ());
        V.destroy_vmspace t.sys vm;
        Done
    | A_pipe_open { k } ->
        t.chans.(k) <-
          Some (I.pipe t.sys ~cap_bytes:(chan_cap_pages * t.page_size) ());
        Done
    | A_pipe_close { k } ->
        I.close t.sys (chan t k);
        t.chans.(k) <- None;
        Done
    | A_pipe_write { k; p; vpn; boff; len; policy; vsl } -> (
        let addr = (vpn * t.page_size) + boff in
        try
          let n =
            I.send t.sys (proc t p) ~vslocked:vsl (chan t k) ~policy ~addr ~len
          in
          Io { n; sum = 0 }
        with
        | Segv { error; _ } -> fault_outcome error
        | Physmem.Out_of_pages -> Oom)
    | A_pipe_read { k; p; vpn; boff; len; vsl } -> (
        let addr = (vpn * t.page_size) + boff in
        let vm = proc t p in
        try
          match I.recv t.sys vm ~vslocked:vsl (chan t k) ~addr ~len with
          | I.Data n ->
              let data =
                if n > 0 then V.read_bytes t.sys vm ~addr ~len:n else Bytes.empty
              in
              Io { n; sum = checksum data n }
          | I.Mapped _ -> assert false (* never requested *)
        with
        | Segv { error; _ } -> fault_outcome error
        | Physmem.Out_of_pages -> Oom)
    | A_kwire { k; npages } ->
        (* The model budgets kernel wiring under the same cap as mlock,
           so an allocation failure here is a harness bug, not a kernel
           one: fail loudly rather than leave the slots out of sync. *)
        (try t.kwires.(k) <- Some (V.kernel_alloc_wired t.sys ~npages, npages)
         with Segv _ | Physmem.Out_of_pages ->
           failwith "Torture: out of memory in kernel_alloc_wired");
        Done
    | A_kunwire { k } ->
        (match t.kwires.(k) with
        | Some (vpn, npages) ->
            V.kernel_free_wired t.sys ~vpn ~npages;
            t.kwires.(k) <- None
        | None -> invalid_arg "Torture.exec: kunwire on empty slot (harness bug)");
        Done
    | A_vsl_grab { p; vpn; npages } ->
        (try t.vsls.(p) <- Some (V.vslock t.sys (proc t p) ~vpn ~npages)
         with Segv _ | Physmem.Out_of_pages ->
           failwith "Torture: out of memory in vslock");
        Done
    | A_vsl_drop { p } ->
        (match t.vsls.(p) with
        | Some wb ->
            V.vsunlock t.sys (proc t p) wb;
            t.vsls.(p) <- None
        | None ->
            invalid_arg "Torture.exec: vsl_drop with no held buffer (harness bug)");
        Done

  (* Each op runs under a root span, so everything the kernel did for it
     hangs off one tree.  A crash deliberately does NOT finish the span:
     the open stack at that instant is the active causal tree, and the
     artifact writer dumps it as-is. *)
  let exec t (a : action) : outcome =
    let m = V.machine t.sys in
    let spans = m.Machine.spans in
    let sp =
      Sim.Span.start spans ~subsys:"torture" ~ts:(Machine.now m)
        (action_name a)
    in
    let o = exec_action t a in
    Sim.Span.finish spans sp ~ts:(Machine.now m)
      ~detail:[ ("outcome", outcome_to_string o) ]
      ();
    o
end

module Exec_uvm = Exec (Uvm.Sys)
module Exec_bsd = Exec (Bsdvm.Sys)

(* -- seeded corruptions ------------------------------------------------- *)

type corruption =
  | Leak_swap_slot  (** allocate a swap slot no object will ever claim *)
  | Overref_anon  (** over-count some live anon's reference count *)
  | Queue_double_insert  (** link a frame on two paging queues at once *)
  | Leak_loan  (** bump a live page's loan count with no borrower *)
  | Leak_swapcache  (** swapcache claims a slot the allocator never gave it *)

let corruption_name = function
  | Leak_swap_slot -> "leak-swap-slot"
  | Overref_anon -> "overref-anon"
  | Queue_double_insert -> "queue-double-insert"
  | Leak_loan -> "leak-loan"
  | Leak_swapcache -> "leak-swapcache"

let corruption_of_string = function
  | "leak-swap-slot" -> Some Leak_swap_slot
  | "overref-anon" -> Some Overref_anon
  | "queue-double-insert" -> Some Queue_double_insert
  | "leak-loan" -> Some Leak_loan
  | "leak-swapcache" -> Some Leak_swapcache
  | _ -> None

(* Corruptions target the UVM instance (the machine-level ones could hit
   either; the anon one needs UVM internals).  Returns false when the
   needed state does not exist yet — the run then simply finds no bug. *)
let apply_corruption (eu : Exec_uvm.t) c : bool =
  let mach = Uvm.Sys.machine eu.Exec_uvm.sys in
  match c with
  | Leak_swap_slot -> (
      match Swap.Swaptier.alloc_slots mach.Machine.swap ~n:1 with
      | Some _ -> true
      | None -> false)
  | Leak_swapcache ->
      (* A cache entry charged against a slot the allocator never handed
         out — what a forgotten invalidate after a slot free looks like. *)
      Swap.Swaptier.Testhook.leak_cache_entry mach.Machine.swap
  | Queue_double_insert -> (
      let victim = ref None in
      Physmem.iter_pages
        (fun (pg : Physmem.Page.t) ->
          if Option.is_none !victim then
            match pg.Physmem.Page.queue with
            | Physmem.Page.Q_active | Physmem.Page.Q_inactive ->
                victim := Some pg
            | _ -> ())
        mach.Machine.physmem;
      match !victim with
      | Some pg ->
          Physmem.Testhook.double_insert mach.Machine.physmem pg;
          true
      | None -> false)
  | Leak_loan -> (
      (* An anon-owned frame whose loan count says "borrowed" while no
         kernel loan or borrowing anon exists: exactly what a lost
         uvm_unloan would leave behind. *)
      let victim = ref None in
      Physmem.iter_pages
        (fun (pg : Physmem.Page.t) ->
          if Option.is_none !victim then
            match (pg.Physmem.Page.queue, pg.Physmem.Page.owner) with
            | ( (Physmem.Page.Q_active | Physmem.Page.Q_inactive),
                Uvm.Anon.Anon_page _ ) ->
                victim := Some pg
            | _ -> ())
        mach.Machine.physmem;
      match !victim with
      | Some pg ->
          pg.Physmem.Page.loan_count <- pg.Physmem.Page.loan_count + 1;
          true
      | None -> false)
  | Overref_anon ->
      let hit = ref false in
      Hashtbl.iter
        (fun _ (vm : Uvm.Sys.vmspace) ->
          if not !hit then
            Uvm.Map.iter_entries
              (fun (e : Uvm.Map.entry) ->
                match e.Uvm.Map.amap with
                | Some am when not !hit ->
                    let n = e.Uvm.Map.epage - e.Uvm.Map.spage in
                    for d = 0 to n - 1 do
                      if not !hit then
                        match
                          Uvm.Amap.lookup am ~slot:(e.Uvm.Map.amapoff + d)
                        with
                        | Some (anon : Uvm.Anon.t) ->
                            anon.Uvm.Anon.refs <- anon.Uvm.Anon.refs + 1;
                            hit := true
                        | None -> ()
                    done
                | _ -> ())
              vm.Uvm.Sys.map)
        eu.Exec_uvm.sys.Uvm.Sys.vmspaces;
      !hit

(* -- failures ----------------------------------------------------------- *)

type bug =
  | Audit_bug of { op_index : int; f : Check.failure }
  | Mismatch of { op_index : int; op : op; uvm : outcome; bsd : outcome }
  | Crash of { op_index : int; op : op; system : string; exn : string }

(* The shrinker's notion of "the same bug": stable across replays even
   though op indices and incidental detail shift as the trace shrinks. *)
let bug_key = function
  | Audit_bug { f; _ } ->
      Printf.sprintf "audit:%s:%s:%s" f.Check.system
        (Check.subsystem_name f.Check.subsys)
        f.Check.invariant
  | Mismatch { op; _ } -> "mismatch:" ^ op_name op
  | Crash { system; exn; _ } -> Printf.sprintf "crash:%s:%s" system exn

let string_of_bug = function
  | Audit_bug { op_index; f } ->
      Printf.sprintf "audit failure after op %d: %s" op_index
        (Check.string_of_failure f)
  | Mismatch { op_index; op; uvm; bsd } ->
      Printf.sprintf "outcome mismatch at op %d %s: UVM=%s BSD VM=%s" op_index
        (op_to_string op) (outcome_to_string uvm) (outcome_to_string bsd)
  | Crash { op_index; op; system; exn } ->
      Printf.sprintf "crash at op %d %s in %s: %s" op_index (op_to_string op)
        system exn

(* -- generation --------------------------------------------------------- *)

let pick_list rng = function
  | [] -> None
  | l -> Some (List.nth l (Sim.Rng.int rng (List.length l)))

let live_proc_slots m =
  let out = ref [] in
  for p = max_procs - 1 downto 0 do
    if m.procs.(p) <> None then out := p :: !out
  done;
  !out

let free_proc_slots m =
  let out = ref [] in
  for p = max_procs - 1 downto 0 do
    if m.procs.(p) = None then out := p :: !out
  done;
  !out

let region_slots m p ~live =
  match proc_at m p with
  | None -> []
  | Some pr ->
      let out = ref [] in
      for r = max_regions - 1 downto 0 do
        if (pr.regions.(r) <> None) = live then out := r :: !out
      done;
      !out

(* Draw one op.  Candidates are sampled with field values that are
   usually valid for the current model and verified with {!resolve}; if
   nothing resolves after a bounded number of draws the fallback ladder
   (spawn a process, else apply pressure) always succeeds, so generation
   never stalls. *)
let gen rng m ~faults : op =
  let pick_live_region () =
    match pick_list rng (live_proc_slots m) with
    | None -> None
    | Some p -> (
        match pick_list rng (region_slots m p ~live:true) with
        | None -> None
        | Some r -> (
            match region_at m p r with
            | Some rg -> Some (p, r, rg)
            | None -> None))
  in
  let cand_read () =
    match pick_live_region () with
    | Some (p, r, rg) -> Some (Read { p; r; page = Sim.Rng.int rng rg.npages })
    | None -> None
  in
  let cand_write () =
    match pick_live_region () with
    | Some (p, r, rg) ->
        Some
          (Write
             {
               p;
               r;
               page = Sim.Rng.int rng rg.npages;
               byte = 1 + Sim.Rng.int rng 255;
             })
    | None -> None
  in
  let cand_mmap () =
    match pick_list rng (live_proc_slots m) with
    | None -> None
    | Some p -> (
        match pick_list rng (region_slots m p ~live:false) with
        | None -> None
        | Some r ->
            let npages = 1 + Sim.Rng.int rng max_region_pages in
            let prot_ix = Sim.Rng.pick rng [| 0; 0; 0; 0; 1; 2; 3 |] in
            let use_file = Sim.Rng.int rng 10 < 3 in
            let src_file = if use_file then 1 + Sim.Rng.int rng nfiles else 0 in
            let fileoff =
              if use_file then Sim.Rng.int rng (file_pages - npages + 1) else 0
            in
            let shared = (not use_file) && Sim.Rng.int rng 4 = 0 in
            Some (Mmap { p; r; npages; prot_ix; shared; src_file; fileoff }))
  in
  let cand_range mk =
    match pick_live_region () with
    | Some (p, r, rg) ->
        let off = Sim.Rng.int rng rg.npages in
        let len = 1 + Sim.Rng.int rng (rg.npages - off) in
        Some (mk p r off len)
    | None -> None
  in
  let cand_munmap () =
    cand_range (fun p r off len -> Munmap { p; r; off; len })
  in
  let cand_mprotect () =
    cand_range (fun p r off len ->
        Mprotect
          { p; r; off; len; prot_ix = Sim.Rng.int rng (Array.length prots) })
  in
  let cand_minherit () =
    match pick_live_region () with
    | Some (p, r, _) ->
        Some (Minherit { p; r; inh_ix = Sim.Rng.int rng (Array.length inhs) })
    | None -> None
  in
  let cand_madvise () =
    match pick_live_region () with
    | Some (p, r, _) ->
        Some (Madvise { p; r; adv_ix = Sim.Rng.int rng (Array.length advs) })
    | None -> None
  in
  let cand_mlock () =
    match pick_live_region () with
    | Some (p, r, rg) ->
        let off = Sim.Rng.int rng rg.npages in
        let len = 1 + Sim.Rng.int rng (min 4 (rg.npages - off)) in
        Some (Mlock { p; r; off; len })
    | None -> None
  in
  let cand_msync () =
    cand_range (fun p r off len -> Msync { p; r; off; len })
  in
  let cand_mprotect_wired () =
    (* Directed: flip permissions across a range that overlaps a wired
       run, so the wiring <-> protection interaction actually occurs. *)
    match pick_live_region () with
    | Some (p, r, rg) when rg.wired <> [] -> (
        match pick_list rng rg.wired with
        | Some (woff, wlen) ->
            let off = max 0 (woff - Sim.Rng.int rng 2) in
            let len = min (rg.npages - off) (wlen + Sim.Rng.int rng 3) in
            Some
              (Mprotect
                 {
                   p;
                   r;
                   off;
                   len;
                   prot_ix = Sim.Rng.int rng (Array.length prots);
                 })
        | None -> None)
    | _ -> None
  in
  let cand_mlock_shared () =
    (* Directed: wire a range of a region whose amap is shared with
       another process (Inh_shared fork lineage) — mlock meets shared
       amaps. *)
    let shared = ref [] in
    Array.iteri
      (fun p -> function
        | Some pr ->
            Array.iteri
              (fun r -> function
                | Some rg when rg.lineage_shared -> shared := (p, r, rg) :: !shared
                | _ -> ())
              pr.regions
        | None -> ())
      m.procs;
    match pick_list rng !shared with
    | Some (p, r, rg) ->
        let off = Sim.Rng.int rng rg.npages in
        let len = 1 + Sim.Rng.int rng (min 4 (rg.npages - off)) in
        Some (Mlock { p; r; off; len })
    | None -> None
  in
  let cand_munlock () =
    match pick_live_region () with
    | Some (p, r, rg) -> (
        match pick_list rng rg.wired with
        | Some (off, len) -> Some (Munlock { p; r; off; len })
        | None -> None)
    | None -> None
  in
  let cand_kwire () =
    let free = ref [] in
    Array.iteri (fun k h -> if h = None then free := k :: !free) m.kwires;
    match pick_list rng !free with
    | Some k -> Some (Kwire { k; npages = 1 + Sim.Rng.int rng max_kwire_pages })
    | None -> None
  in
  let cand_kunwire () =
    let held = ref [] in
    Array.iteri (fun k h -> if h <> None then held := k :: !held) m.kwires;
    match pick_list rng !held with
    | Some k -> Some (Kunwire { k })
    | None -> None
  in
  let cand_vsl_grab () =
    match pick_live_region () with
    | Some (p, r, rg) ->
        let off = Sim.Rng.int rng rg.npages in
        let len = 1 + Sim.Rng.int rng (min 4 (rg.npages - off)) in
        Some (Vsl_grab { p; r; off; len })
    | None -> None
  in
  let cand_vsl_drop () =
    let holders =
      List.filter
        (fun p ->
          match proc_at m p with
          | Some pr -> pr.vsl <> None
          | None -> false)
        (live_proc_slots m)
    in
    match pick_list rng holders with
    | Some p -> Some (Vsl_drop { p })
    | None -> None
  in
  let cand_fork () =
    match
      (pick_list rng (live_proc_slots m), pick_list rng (free_proc_slots m))
    with
    | Some parent, Some child -> Some (Fork { parent; child })
    | _ -> None
  in
  let cand_exit () =
    match pick_list rng (live_proc_slots m) with
    | Some p -> Some (Exit { p })
    | None -> None
  in
  let cand_spawn () =
    match pick_list rng (free_proc_slots m) with
    | Some p -> Some (Spawn { p })
    | None -> None
  in
  let cand_pressure () = Some (Pressure { npages = 8 + Sim.Rng.int rng 41 }) in
  let chan_slots ~live =
    let out = ref [] in
    for k = max_chans - 1 downto 0 do
      if m.chans.(k) = live then out := k :: !out
    done;
    !out
  in
  let cand_pipe_open () =
    match pick_list rng (chan_slots ~live:false) with
    | Some k -> Some (Pipe_open { k })
    | None -> None
  in
  let cand_pipe_close () =
    match pick_list rng (chan_slots ~live:true) with
    | Some k -> Some (Pipe_close { k })
    | None -> None
  in
  let pick_byte_range rg =
    (* Bias toward page alignment so mexp can actually pass map entries,
       with unaligned offsets and sub-page lengths in the mix. *)
    let total = rg.npages * page_bytes in
    let off =
      if Sim.Rng.int rng 2 = 0 then page_bytes * Sim.Rng.int rng rg.npages
      else Sim.Rng.int rng total
    in
    let room = total - off in
    let len =
      match Sim.Rng.int rng 3 with
      | 0 -> 1 + Sim.Rng.int rng (min 512 room)
      | 1 -> min room page_bytes
      | _ -> min room (page_bytes * (1 + Sim.Rng.int rng chan_cap_pages))
    in
    (off, len)
  in
  let cand_pipe_write () =
    match (pick_list rng (chan_slots ~live:true), pick_live_region ()) with
    | Some k, Some (p, r, rg) ->
        let off, len = pick_byte_range rg in
        (* Loaning faults source pages in one by one; an injected pagein
           error mid-range would leak the pages already wired, so
           fault-mode traces stick to copy and mexp (which stages whole
           map entries without touching the frames). *)
        let pol_ix =
          if faults then 2 * Sim.Rng.int rng 2
          else Sim.Rng.int rng (List.length Ipc.all_policies)
        in
        Some
          (Pipe_write
             { k; p; r; off; len; pol_ix; vsl = Sim.Rng.int rng 6 = 0 })
    | _ -> None
  in
  let cand_pipe_read () =
    match (pick_list rng (chan_slots ~live:true), pick_live_region ()) with
    | Some k, Some (p, r, rg) ->
        let off, len = pick_byte_range rg in
        Some (Pipe_read { k; p; r; off; len; vsl = Sim.Rng.int rng 6 = 0 })
    | _ -> None
  in
  let cands =
    [
      (18, cand_read);
      (26, cand_write);
      (14, cand_mmap);
      (7, cand_munmap);
      (6, cand_mprotect);
      (3, cand_minherit);
      (3, cand_madvise);
      (3, cand_msync);
      (6, cand_fork);
      (2, cand_exit);
      (2, cand_spawn);
      (4, cand_pressure);
      (3, cand_pipe_open);
      (1, cand_pipe_close);
      (12, cand_pipe_write);
      (12, cand_pipe_read);
    ]
    (* Under injected I/O errors wiring faults can fail mid-range, which
       would wedge the two kernels differently: keep wiring out of
       fault-mode traces. *)
    @ (if faults then []
       else
         [
           (5, cand_mlock);
           (4, cand_munlock);
           (3, cand_mprotect_wired);
           (3, cand_mlock_shared);
           (3, cand_kwire);
           (2, cand_kunwire);
           (4, cand_vsl_grab);
           (3, cand_vsl_drop);
         ])
  in
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 cands in
  let draw () =
    let roll = Sim.Rng.int rng total in
    let rec go acc = function
      | (w, c) :: rest -> if roll < acc + w then c () else go (acc + w) rest
      | [] -> assert false
    in
    go 0 cands
  in
  let rec attempt n =
    if n = 0 then
      match cand_spawn () with
      | Some op when Option.is_some (resolve m op) -> op
      | _ -> Pressure { npages = 8 + Sim.Rng.int rng 25 }
    else
      match draw () with
      | Some op when Option.is_some (resolve m op) -> op
      | _ -> attempt (n - 1)
  in
  attempt 40

(* -- the differential driver -------------------------------------------- *)

type cfg = {
  seed : int;
  nops : int;
  audit_every : int;
  faults : bool;
  shrink : bool;
  artifact_dir : string option;
  corrupt : (int * corruption) option;
      (** apply the corruption at the first op whose original index
          reaches the threshold (so shrunken replays still trigger it) *)
  ram_pages : int;
  swap_pages : int;
  trace_buf : int;
  tiers : bool;  (** boot on a fast+slow tier pair instead of one device *)
}

let default_cfg =
  {
    seed = 42;
    nops = 5000;
    audit_every = 100;
    faults = false;
    shrink = false;
    artifact_dir = None;
    corrupt = None;
    ram_pages = 256;
    swap_pages = 2048;
    trace_buf = 4096;
    tiers = false;
  }

let machine_config cfg =
  let base =
    {
      Machine.default_config with
      ram_pages = cfg.ram_pages;
      swap_pages = cfg.swap_pages;
      seed = cfg.seed;
      trace_buf = Some cfg.trace_buf;
      fault_plan =
        (if cfg.faults then
           Some
             (fun () ->
               Sim.Fault_plan.create ~seed:cfg.seed ~read_error_rate:0.005
                 ~write_error_rate:0.005 ())
         else None);
    }
  in
  if cfg.tiers then
    (* Same total slot budget, split across a fast and a slow device, so
       tiered runs see the identical out-of-swap pressure points. *)
    Machine.tiered ~fast_pages:(cfg.swap_pages / 4)
      ~slow_pages:(cfg.swap_pages - (cfg.swap_pages / 4))
      base
  else base

type drive_source = Fresh of int | Replay of (int * op) list

(* One full run: boot both systems, feed them the same resolved actions,
   audit every [audit_every] executed ops and once at the end.  Stops at
   the first bug.  Returns the trace actually fed (with original
   indices) and both machines' observability sources for artifacts. *)
let drive cfg src =
  let config = machine_config cfg in
  let eu = Exec_uvm.boot ~config () in
  let eb = Exec_bsd.boot ~config () in
  let m = fresh_model ~ram_pages:cfg.ram_pages in
  let rng = Sim.Rng.create ~seed:cfg.seed in
  let bug = ref None in
  let trace = ref [] in
  let pending = ref cfg.corrupt in
  let executed = ref 0 in
  let audit_one i run_audit =
    if !bug = None then
      try run_audit ()
      with Check.Audit_failure f -> bug := Some (Audit_bug { op_index = i; f })
  in
  let audit_both i =
    audit_one i (fun () -> Exec_uvm.audit eu);
    audit_one i (fun () -> Exec_bsd.audit eb)
  in
  let step (i, op) =
    (match !pending with
    | Some (n, c) when i >= n ->
        pending := None;
        ignore (apply_corruption eu c : bool)
    | _ -> ());
    match resolve m op with
    | None -> () (* stale op in a shrunken trace: skip *)
    | Some a ->
        apply m op a;
        (match op with
        | Pressure _ | Kwire _ | Vsl_grab _ ->
            m.pressure_until <- max m.pressure_until (i + 24)
        | _ -> ());
        let side name f =
          match f () with
          | o -> Ok o
          | exception e -> Error (name, Printexc.to_string e)
        in
        (match side Exec_uvm.name (fun () -> Exec_uvm.exec eu a) with
        | Error (system, exn) ->
            bug := Some (Crash { op_index = i; op; system; exn })
        | Ok ou -> (
            match side Exec_bsd.name (fun () -> Exec_bsd.exec eb a) with
            | Error (system, exn) ->
                bug := Some (Crash { op_index = i; op; system; exn })
            | Ok ob ->
                (* Eviction timing may legitimately differ between the
                   kernels, so Oom is compared as a wildcard — but only
                   while memory is plausibly short: inside the model's
                   pressure window, or while either kernel is measurably
                   low on pages or swap.  A lone Oom on a calm machine is
                   a real divergence.  Under fault injection retry counts
                   diverge, so outcomes are not compared at all — the
                   audits are the oracle there. *)
                if (not cfg.faults) && ou <> ob then begin
                  let oom_excused =
                    (ou = Oom || ob = Oom)
                    && (i <= m.pressure_until || Exec_uvm.memory_tight eu
                      || Exec_bsd.memory_tight eb)
                  in
                  if not oom_excused then
                    bug :=
                      Some (Mismatch { op_index = i; op; uvm = ou; bsd = ob })
                end));
        incr executed;
        if !bug = None && cfg.audit_every > 0 && !executed mod cfg.audit_every = 0
        then audit_both i
  in
  (match src with
  | Fresh n ->
      let i = ref 0 in
      while !bug = None && !i < n do
        let op = gen rng m ~faults:cfg.faults in
        trace := (!i, op) :: !trace;
        step (!i, op);
        incr i
      done;
      trace := List.rev !trace
  | Replay ops ->
      List.iter (fun iop -> if !bug = None then step iop) ops;
      trace := ops);
  if !bug = None then audit_both (max 0 (!executed - 1));
  (!bug, !trace, [ Exec_uvm.source eu; Exec_bsd.source eb ])

(* -- trace shrinking (ddmin) -------------------------------------------- *)

let split_chunks l n =
  let len = List.length l in
  let size = max 1 ((len + n - 1) / n) in
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: tl ->
        if k = size then go (List.rev cur :: acc) [ x ] 1 tl
        else go acc (x :: cur) (k + 1) tl
  in
  go [] [] 0 l

let ddmin ~test ops =
  let rec go ops n =
    let len = List.length ops in
    if len <= 1 then ops
    else
      let chunks = split_chunks ops n in
      let complements =
        List.mapi
          (fun k _ ->
            List.concat (List.filteri (fun j _ -> j <> k) chunks))
          chunks
      in
      match List.find_opt test complements with
      | Some smaller -> go smaller (max 2 (n - 1))
      | None -> if n < len then go ops (min len (2 * n)) else ops
  in
  if test ops then go ops 2 else ops

(* Shrink [trace] to a minimal subsequence whose replay fails with the
   same bug key.  Replays audit after every op so the failure is pinned
   to the earliest op that causes it. *)
let shrink_trace cfg trace bug0 =
  let rcfg = { cfg with audit_every = 1; shrink = false; artifact_dir = None } in
  let run_subset subset =
    let b, _, _ = drive rcfg (Replay subset) in
    b
  in
  let key =
    match run_subset trace with Some b -> bug_key b | None -> bug_key bug0
  in
  let test subset =
    match run_subset subset with
    | Some b -> String.equal (bug_key b) key
    | None -> false
  in
  ddmin ~test trace

(* -- crash artifacts ---------------------------------------------------- *)

let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let with_file name f =
  let oc = open_out name in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let op_json buf (i, op) =
  Buffer.add_string buf (Printf.sprintf "{\"i\":%d,\"op\":" i);
  Sim.Trace_export.json_string buf (op_name op);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf ",\"%s\":%d" k v))
    (op_fields op);
  Buffer.add_char buf '}'

let ops_json buf ops =
  Buffer.add_char buf '[';
  List.iteri
    (fun k iop ->
      if k > 0 then Buffer.add_char buf ',';
      op_json buf iop)
    ops;
  Buffer.add_char buf ']'

let bug_json buf = function
  | Audit_bug { op_index; f } ->
      Buffer.add_string buf
        (Printf.sprintf "{\"kind\":\"audit\",\"op_index\":%d,\"system\":"
           op_index);
      Sim.Trace_export.json_string buf f.Check.system;
      Buffer.add_string buf ",\"subsystem\":";
      Sim.Trace_export.json_string buf (Check.subsystem_name f.Check.subsys);
      Buffer.add_string buf ",\"invariant\":";
      Sim.Trace_export.json_string buf f.Check.invariant;
      Buffer.add_string buf ",\"detail\":";
      Sim.Trace_export.json_string buf f.Check.detail;
      Buffer.add_char buf '}'
  | Mismatch { op_index; op; uvm; bsd } ->
      Buffer.add_string buf
        (Printf.sprintf "{\"kind\":\"mismatch\",\"op_index\":%d,\"op\":"
           op_index);
      op_json buf (op_index, op);
      Buffer.add_string buf ",\"uvm\":";
      Sim.Trace_export.json_string buf (outcome_to_string uvm);
      Buffer.add_string buf ",\"bsd\":";
      Sim.Trace_export.json_string buf (outcome_to_string bsd);
      Buffer.add_char buf '}'
  | Crash { op_index; op; system; exn } ->
      Buffer.add_string buf
        (Printf.sprintf "{\"kind\":\"crash\",\"op_index\":%d,\"op\":" op_index);
      op_json buf (op_index, op);
      Buffer.add_string buf ",\"system\":";
      Sim.Trace_export.json_string buf system;
      Buffer.add_string buf ",\"exn\":";
      Sim.Trace_export.json_string buf exn;
      Buffer.add_char buf '}'

let crash_json ~cfg ~bug ~trace ~minimal =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\":\"uvm-sim-torture/1\",\"seed\":%d,\"nops\":%d,\"audit_every\":%d,\"faults\":%b"
       cfg.seed cfg.nops cfg.audit_every cfg.faults);
  (match cfg.corrupt with
  | Some (at, c) ->
      Buffer.add_string buf
        (Printf.sprintf ",\"corrupt\":{\"kind\":\"%s\",\"at\":%d}"
           (corruption_name c) at)
  | None -> ());
  Buffer.add_string buf ",\"failure\":";
  bug_json buf bug;
  Buffer.add_string buf ",\"trace\":";
  ops_json buf trace;
  (match minimal with
  | Some ops ->
      Buffer.add_string buf ",\"minimal\":";
      ops_json buf ops
  | None -> ());
  Buffer.add_string buf "}\n";
  buf

let write_artifacts ~dir ~cfg ~bug ~trace ~minimal ~sources =
  mkdirs dir;
  let path name = Filename.concat dir name in
  with_file (path "crash.json") (fun oc ->
      Buffer.output_buffer oc (crash_json ~cfg ~bug ~trace ~minimal));
  let chrome = Buffer.create 65536 in
  Sim.Trace_export.chrome_json chrome sources;
  with_file (path "trace.chrome.json") (fun oc ->
      Buffer.output_buffer oc chrome);
  let stats = Buffer.create 4096 in
  Sim.Trace_export.snapshot_json stats sources;
  with_file (path "stats.json") (fun oc -> Buffer.output_buffer oc stats);
  (* The causal view of the crash: finished span trees plus the span
     stack that was open when the op died, and the last stretch of
     periodic samples leading up to it. *)
  let spans = Buffer.create 16384 in
  Sim.Trace_export.spans_json spans sources;
  with_file (path "spans.json") (fun oc -> Buffer.output_buffer oc spans);
  let metrics = Buffer.create 16384 in
  Sim.Trace_export.metrics_json metrics sources;
  with_file (path "metrics.json") (fun oc -> Buffer.output_buffer oc metrics);
  (* The lock observatory at the moment of death: what was held, in what
     order classes were seen nested, and whether the order graph cycled. *)
  let locks = Buffer.create 16384 in
  Sim.Trace_export.lockstat_json locks sources;
  with_file (path "lockstat.json") (fun oc -> Buffer.output_buffer oc locks);
  with_file (path "events.txt") (fun oc ->
      let fmt = Format.formatter_of_out_channel oc in
      Sim.Trace_export.pp_dump fmt sources;
      Format.pp_print_flush fmt ())

(* -- entry point -------------------------------------------------------- *)

type result = {
  r_bug : bug option;
  r_trace : (int * op) list;
  r_minimal : (int * op) list option;
  r_artifacts : string option;  (** directory written, if any *)
}

let run cfg =
  let bug, trace, sources = drive cfg (Fresh cfg.nops) in
  let minimal =
    match bug with
    | Some b when cfg.shrink -> Some (shrink_trace cfg trace b)
    | _ -> None
  in
  let artifacts =
    match (cfg.artifact_dir, bug) with
    | Some dir, Some b ->
        write_artifacts ~dir ~cfg ~bug:b ~trace ~minimal ~sources;
        Some dir
    | _ -> None
  in
  { r_bug = bug; r_trace = trace; r_minimal = minimal; r_artifacts = artifacts }

(** Process-level simulation on top of a VM system.

    A functor over {!Vmiface.Vm_sig.VM_SYS}: the exact same process
    lifecycle — exec mapping text/data/bss/stack/heap and shared
    libraries, startup sysctl calls that temporarily wire buffers, the
    kernel-side user-structure and page-table allocations — runs against
    UVM and BSD VM, so differences in map-entry counts (Table 1) and fault
    counts (Table 2) come only from the VM system under test. *)

module Vmtypes = Vmiface.Vmtypes

module Make (V : Vmiface.Vm_sig.VM_SYS) = struct
  module I = Ipc.Make (V)

  type segment = { seg_vpn : int; seg_pages : int }

  type proc = {
    pid : int;
    vm : V.vmspace;
    prog : Programs.t;
    ustruct_vpn : int;
    ptp : V.ptp;
    text : segment;
    data : segment;
    bss : segment;
    stack : segment;
    heap : segment;
    lib_segs : (Programs.shared_lib * segment * segment * segment) list;
        (** text, data, bss per shared library *)
    mutable dead : bool;
  }

  let pid_counter = ref 0

  let ustruct_pages = 2
  let ptp_pages = 1
  let kernel_anchor_pages = 64

  (* Boot-time kernel allocation (kernel text/data/static tables).  Gives
     UVM's kernel-map merging an anchor entry, and models the always-wired
     kernel memory that UVM does not re-record in the map. *)
  let boot_kernel sys = ignore (V.kernel_alloc_wired sys ~npages:kernel_anchor_pages)

  let get_file sys name ~pages =
    let vfs = (V.machine sys).Vmiface.Machine.vfs in
    match Vfs.lookup vfs ~name with
    | vn -> vn
    | exception Not_found ->
        Vfs.create_file vfs ~name
          ~size:(pages * (V.machine sys).Vmiface.Machine.config.page_size)

  let map_image sys vm name ~text ~data ~bss =
    let vfs = (V.machine sys).Vmiface.Machine.vfs in
    let vn = get_file sys name ~pages:(text + data) in
    let text_vpn =
      V.mmap sys vm ~npages:text ~prot:Pmap.Prot.rx ~share:Vmtypes.Private
        (Vmtypes.File (vn, 0))
    in
    let data_vpn =
      if data > 0 then
        V.mmap sys vm ~npages:data ~prot:Pmap.Prot.rw ~share:Vmtypes.Private
          (Vmtypes.File (vn, text))
      else text_vpn
    in
    let bss_vpn =
      if bss > 0 then
        V.mmap sys vm ~npages:bss ~prot:Pmap.Prot.rw ~share:Vmtypes.Private
          Vmtypes.Zero
      else data_vpn
    in
    Vfs.vrele vfs vn;
    ( { seg_vpn = text_vpn; seg_pages = text },
      { seg_vpn = data_vpn; seg_pages = data },
      { seg_vpn = bss_vpn; seg_pages = bss } )

  (* Startup sysctl calls: each temporarily wires a one-page user buffer.
     Buffers land inside different segments, as crt0/ld.so/libc do. *)
  let run_startup_sysctls sys vm ~(stack : segment) ~(heap : segment) n =
    let spots =
      [|
        stack.seg_vpn + 1;
        heap.seg_vpn + 1;
        heap.seg_vpn + 2;
        stack.seg_vpn + 2;
      |]
    in
    for i = 0 to n - 1 do
      let buf = spots.(i mod Array.length spots) in
      let wb = V.vslock sys vm ~vpn:buf ~npages:1 in
      V.vsunlock sys vm wb
    done

  let exec sys vm (prog : Programs.t) =
    let text, data, bss =
      map_image sys vm prog.name ~text:prog.text_pages ~data:prog.data_pages
        ~bss:prog.bss_pages
    in
    let stack_vpn =
      V.mmap sys vm ~npages:prog.stack_pages ~prot:Pmap.Prot.rw
        ~share:Vmtypes.Private Vmtypes.Zero
    in
    let heap_npages = max prog.heap_pages prog.work_pages in
    let heap_vpn =
      V.mmap sys vm ~npages:heap_npages ~prot:Pmap.Prot.rw
        ~share:Vmtypes.Private Vmtypes.Zero
    in
    (* The ps_strings / signal-trampoline page at the top of the space. *)
    let _ps =
      V.mmap sys vm ~npages:1 ~prot:Pmap.Prot.rw ~share:Vmtypes.Private
        Vmtypes.Zero
    in
    let lib_segs =
      List.map
        (fun (lib : Programs.shared_lib) ->
          let t, d, b =
            map_image sys vm lib.lib_name ~text:lib.lib_text
              ~data:lib.lib_data ~bss:lib.lib_bss
          in
          (lib, t, d, b))
        prog.libs
    in
    let stack = { seg_vpn = stack_vpn; seg_pages = prog.stack_pages } in
    let heap = { seg_vpn = heap_vpn; seg_pages = heap_npages } in
    run_startup_sysctls sys vm ~stack ~heap prog.startup_sysctls;
    (text, data, bss, stack, heap, lib_segs)

  (* Spawn a fresh process running [prog] (fork+exec collapsed: the
     transient forked image is immediately replaced, as the paper notes
     needs-copy makes nearly free). *)
  let spawn sys (prog : Programs.t) =
    incr pid_counter;
    let ustruct_vpn = V.kernel_alloc_wired sys ~npages:ustruct_pages in
    let ptp = V.pmap_alloc_ptp sys ~npages:ptp_pages in
    let vm = V.new_vmspace sys in
    let text, data, bss, stack, heap, lib_segs = exec sys vm prog in
    {
      pid = !pid_counter;
      vm;
      prog;
      ustruct_vpn;
      ptp;
      text;
      data;
      bss;
      stack;
      heap;
      lib_segs;
      dead = false;
    }

  (* Swap a process out/in: its user structure is unwired while it cannot
     run (paper §3.2).  Under BSD this is kernel-map traffic; under UVM the
     state lives in the proc structure alone. *)
  let swapout_proc sys proc =
    V.swapout_ustruct sys ~vpn:proc.ustruct_vpn ~npages:ustruct_pages

  let swapin_proc sys proc =
    V.swapin_ustruct sys ~vpn:proc.ustruct_vpn ~npages:ustruct_pages

  let exit_proc sys proc =
    assert (not proc.dead);
    V.destroy_vmspace sys proc.vm;
    V.kernel_free_wired sys ~vpn:proc.ustruct_vpn ~npages:ustruct_pages;
    V.pmap_free_ptp sys proc.ptp;
    proc.dead <- true

  (* Total live map entries attributable to user processes plus the
     kernel map — the quantity Table 1 reports. *)
  let live_entries sys procs =
    V.map_entry_count (V.kernel_vmspace sys)
    + List.fold_left
        (fun acc proc -> if proc.dead then acc else acc + V.map_entry_count proc.vm)
        0 procs

  (* -- IPC syscalls (lib/ipc over this VM system) --------------------- *)

  let pipe sys ?cap_bytes () = I.pipe sys ?cap_bytes ()
  let socketpair sys ?cap_bytes () = I.socketpair sys ?cap_bytes ()

  let send sys proc ?vslocked ch ~policy ~addr ~len =
    I.send sys proc.vm ?vslocked ch ~policy ~addr ~len

  let recv sys proc ?vslocked ?accept_mapped ch ~addr ~len =
    I.recv sys proc.vm ?vslocked ?accept_mapped ch ~addr ~len

  let close_chan sys ch = I.close sys ch

  (* Replay an access trace (from {!Trace}) against a process. *)
  let replay sys proc trace =
    List.iter
      (fun (seg, page, access) ->
        let segment =
          match seg with
          | Trace.Seg_text -> proc.text
          | Trace.Seg_data -> proc.data
          | Trace.Seg_bss -> proc.bss
          | Trace.Seg_stack -> proc.stack
          | Trace.Seg_heap -> proc.heap
          | Trace.Seg_lib i ->
              let _, t, _, _ = List.nth proc.lib_segs i in
              t
        in
        if page < segment.seg_pages then
          V.touch sys proc.vm ~vpn:(segment.seg_vpn + page) access)
      trace
end

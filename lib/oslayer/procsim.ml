(** Process-level simulation on top of a VM system.

    A functor over {!Vmiface.Vm_sig.VM_SYS}: the exact same process
    lifecycle — exec mapping text/data/bss/stack/heap and shared
    libraries, startup sysctl calls that temporarily wire buffers, the
    kernel-side user-structure and page-table allocations — runs against
    UVM and BSD VM, so differences in map-entry counts (Table 1) and fault
    counts (Table 2) come only from the VM system under test. *)

module Vmtypes = Vmiface.Vmtypes

module Make (V : Vmiface.Vm_sig.VM_SYS) = struct
  module I = Ipc.Make (V)

  type segment = { seg_vpn : int; seg_pages : int }

  type proc = {
    pid : int;
    vm : V.vmspace;
    prog : Programs.t;
    ustruct_vpn : int;
    ptp : V.ptp;
    text : segment;
    data : segment;
    bss : segment;
    stack : segment;
    heap : segment;
    lib_segs : (Programs.shared_lib * segment * segment * segment) list;
        (** text, data, bss per shared library *)
    mutable dead : bool;
    mutable limits : Overload.rlimits;
    mutable swapped : bool;  (** whole process swapped out (4.4BSD-style) *)
    mutable pending_kill : bool;
        (** the OOM policy chose us while we were running: die at the
            next syscall boundary (signal-style delivery) *)
    born : int;  (** spawn sequence number, for the badness age bonus *)
    mutable owned_chans : I.chan list;  (** channels this proc receives on *)
  }

  let pid_counter = ref 0

  let ustruct_pages = 2
  let ptp_pages = 1
  let kernel_anchor_pages = 64

  (* Boot-time kernel allocation (kernel text/data/static tables).  Gives
     UVM's kernel-map merging an anchor entry, and models the always-wired
     kernel memory that UVM does not re-record in the map. *)
  let boot_kernel sys = ignore (V.kernel_alloc_wired sys ~npages:kernel_anchor_pages)

  let get_file sys name ~pages =
    let vfs = (V.machine sys).Vmiface.Machine.vfs in
    match Vfs.lookup vfs ~name with
    | vn -> vn
    | exception Not_found ->
        Vfs.create_file vfs ~name
          ~size:(pages * (V.machine sys).Vmiface.Machine.config.page_size)

  let map_image sys vm name ~text ~data ~bss =
    let vfs = (V.machine sys).Vmiface.Machine.vfs in
    let vn = get_file sys name ~pages:(text + data) in
    let text_vpn =
      V.mmap sys vm ~npages:text ~prot:Pmap.Prot.rx ~share:Vmtypes.Private
        (Vmtypes.File (vn, 0))
    in
    let data_vpn =
      if data > 0 then
        V.mmap sys vm ~npages:data ~prot:Pmap.Prot.rw ~share:Vmtypes.Private
          (Vmtypes.File (vn, text))
      else text_vpn
    in
    let bss_vpn =
      if bss > 0 then
        V.mmap sys vm ~npages:bss ~prot:Pmap.Prot.rw ~share:Vmtypes.Private
          Vmtypes.Zero
      else data_vpn
    in
    Vfs.vrele vfs vn;
    ( { seg_vpn = text_vpn; seg_pages = text },
      { seg_vpn = data_vpn; seg_pages = data },
      { seg_vpn = bss_vpn; seg_pages = bss } )

  (* Startup sysctl calls: each temporarily wires a one-page user buffer.
     Buffers land inside different segments, as crt0/ld.so/libc do. *)
  let run_startup_sysctls sys vm ~(stack : segment) ~(heap : segment) n =
    let spots =
      [|
        stack.seg_vpn + 1;
        heap.seg_vpn + 1;
        heap.seg_vpn + 2;
        stack.seg_vpn + 2;
      |]
    in
    for i = 0 to n - 1 do
      let buf = spots.(i mod Array.length spots) in
      let wb = V.vslock sys vm ~vpn:buf ~npages:1 in
      V.vsunlock sys vm wb
    done

  let exec sys vm (prog : Programs.t) =
    let text, data, bss =
      map_image sys vm prog.name ~text:prog.text_pages ~data:prog.data_pages
        ~bss:prog.bss_pages
    in
    let stack_vpn =
      V.mmap sys vm ~npages:prog.stack_pages ~prot:Pmap.Prot.rw
        ~share:Vmtypes.Private Vmtypes.Zero
    in
    let heap_npages = max prog.heap_pages prog.work_pages in
    let heap_vpn =
      V.mmap sys vm ~npages:heap_npages ~prot:Pmap.Prot.rw
        ~share:Vmtypes.Private Vmtypes.Zero
    in
    (* The ps_strings / signal-trampoline page at the top of the space. *)
    let _ps =
      V.mmap sys vm ~npages:1 ~prot:Pmap.Prot.rw ~share:Vmtypes.Private
        Vmtypes.Zero
    in
    let lib_segs =
      List.map
        (fun (lib : Programs.shared_lib) ->
          let t, d, b =
            map_image sys vm lib.lib_name ~text:lib.lib_text
              ~data:lib.lib_data ~bss:lib.lib_bss
          in
          (lib, t, d, b))
        prog.libs
    in
    let stack = { seg_vpn = stack_vpn; seg_pages = prog.stack_pages } in
    let heap = { seg_vpn = heap_vpn; seg_pages = heap_npages } in
    run_startup_sysctls sys vm ~stack ~heap prog.startup_sysctls;
    (text, data, bss, stack, heap, lib_segs)

  (* Spawn a fresh process running [prog] (fork+exec collapsed: the
     transient forked image is immediately replaced, as the paper notes
     needs-copy makes nearly free). *)
  let spawn sys (prog : Programs.t) =
    incr pid_counter;
    let ustruct_vpn = V.kernel_alloc_wired sys ~npages:ustruct_pages in
    let ptp = V.pmap_alloc_ptp sys ~npages:ptp_pages in
    let vm = V.new_vmspace sys in
    let text, data, bss, stack, heap, lib_segs = exec sys vm prog in
    {
      pid = !pid_counter;
      vm;
      prog;
      ustruct_vpn;
      ptp;
      text;
      data;
      bss;
      stack;
      heap;
      lib_segs;
      dead = false;
      limits = Overload.unlimited;
      swapped = false;
      pending_kill = false;
      born = !pid_counter;
      owned_chans = [];
    }

  (* Swap a process out/in: its user structure is unwired while it cannot
     run (paper §3.2).  Under BSD this is kernel-map traffic; under UVM the
     state lives in the proc structure alone. *)
  let swapout_proc sys proc =
    V.swapout_ustruct sys ~vpn:proc.ustruct_vpn ~npages:ustruct_pages

  let swapin_proc sys proc =
    V.swapin_ustruct sys ~vpn:proc.ustruct_vpn ~npages:ustruct_pages

  let exit_proc sys proc =
    assert (not proc.dead);
    V.destroy_vmspace sys proc.vm;
    V.kernel_free_wired sys ~vpn:proc.ustruct_vpn ~npages:ustruct_pages;
    V.pmap_free_ptp sys proc.ptp;
    proc.dead <- true

  (* Total live map entries attributable to user processes plus the
     kernel map — the quantity Table 1 reports. *)
  let live_entries sys procs =
    V.map_entry_count (V.kernel_vmspace sys)
    + List.fold_left
        (fun acc proc -> if proc.dead then acc else acc + V.map_entry_count proc.vm)
        0 procs

  (* -- IPC syscalls (lib/ipc over this VM system) --------------------- *)

  let pipe sys ?cap_bytes () = I.pipe sys ?cap_bytes ()
  let socketpair sys ?cap_bytes () = I.socketpair sys ?cap_bytes ()

  let send sys proc ?vslocked ch ~policy ~addr ~len =
    I.send sys proc.vm ?vslocked ch ~policy ~addr ~len

  let recv sys proc ?vslocked ?accept_mapped ch ~addr ~len =
    I.recv sys proc.vm ?vslocked ?accept_mapped ch ~addr ~len

  let close_chan sys ch = I.close sys ch

  (* -- overload manager: rlimits, OOM victim policy, process swapout --

     The lifeboat above the pagedaemon.  Registered processes get their
     resource limits enforced at allocation points; when paging cannot
     meet demand the physmem OOM hook lands here and escalates through
     the 4.4BSD ladder: swap an idle process out entirely, then reap the
     worst-badness victim, then (only when the victim is the running
     process itself) deliver a signal-style kill at the next syscall
     boundary. *)

  type mgr = {
    msys : V.sys;
    mutable procs : proc list;  (* registration order *)
    mutable current : proc option;  (* proc running a syscall right now *)
    chan_owner : (int, proc) Hashtbl.t;  (* chan id -> receiving proc *)
    mutable on_kill : (proc -> badness:int -> unit) option;
    mutable in_policy : bool;  (* the OOM hook must not recurse *)
  }

  let mstats mgr = (V.machine mgr.msys).Vmiface.Machine.stats

  let new_mgr sys =
    {
      msys = sys;
      procs = [];
      current = None;
      chan_owner = Hashtbl.create 16;
      on_kill = None;
      in_policy = false;
    }

  let set_on_kill mgr f = mgr.on_kill <- Some f
  let register mgr proc = mgr.procs <- mgr.procs @ [ proc ]
  let live mgr = List.filter (fun p -> not p.dead) mgr.procs
  let usage mgr proc = V.vmspace_usage mgr.msys proc.vm

  let proc_badness mgr proc =
    Overload.badness ~usage:(usage mgr proc) ~age:(!pid_counter - proc.born)

  let deny mgr proc limit =
    (mstats mgr).Sim.Stats.rlimit_denials <-
      (mstats mgr).Sim.Stats.rlimit_denials + 1;
    raise (Overload.Rlimit_exceeded { pid = proc.pid; limit })

  (* Cheap per-touch check: resident_count is a counter, no walk. *)
  let check_resident mgr proc ~extra =
    if V.resident_pages proc.vm + extra > proc.limits.Overload.rl_resident
    then deny mgr proc "resident"

  (* Walking checks, used at the rarer wire/map/epoch points. *)
  let check_wired mgr proc ~extra =
    if (usage mgr proc).Vmtypes.u_wired + extra > proc.limits.Overload.rl_wired
    then deny mgr proc "wired"

  let check_swap mgr proc =
    if (usage mgr proc).Vmtypes.u_swap > proc.limits.Overload.rl_swap then
      deny mgr proc "swap"

  let chan_backlog proc =
    List.fold_left
      (fun acc ch -> acc + I.queued_bytes ch)
      0 proc.owned_chans

  let set_chans proc st =
    List.iter (fun ch -> I.set_rx_state ch st) proc.owned_chans

  (* Whole-process swapout (paper-era 4.4BSD mechanism): evict the whole
     resident set to the inactive queue and unwire the user structure.
     Contents survive — the pagedaemon pages the dirty half out and the
     process' first fault after swapin brings pages back on demand. *)
  let swapout_whole mgr proc =
    let evicted = V.deactivate_resident mgr.msys proc.vm in
    swapout_proc mgr.msys proc;
    proc.swapped <- true;
    set_chans proc Ipc.Rx_swapped;
    (mstats mgr).Sim.Stats.proc_swapouts <-
      (mstats mgr).Sim.Stats.proc_swapouts + 1;
    evicted

  let swapin_whole mgr proc =
    if proc.swapped then begin
      swapin_proc mgr.msys proc;
      proc.swapped <- false;
      set_chans proc Ipc.Rx_alive;
      (mstats mgr).Sim.Stats.proc_swapins <-
        (mstats mgr).Sim.Stats.proc_swapins + 1
    end

  (* OOM teardown through the ordinary exit machinery — the audit must
     stay clean across a reap, so nothing here bypasses the map/amap/
     object paths.  A swapped-out victim gets its user structure rewired
     first so teardown unwinds the same way a normal exit does. *)
  let reap mgr ?badness proc =
    let b =
      match badness with Some b -> b | None -> proc_badness mgr proc
    in
    if proc.swapped then begin
      swapin_proc mgr.msys proc;
      proc.swapped <- false
    end;
    set_chans proc Ipc.Rx_dead;
    exit_proc mgr.msys proc;
    (mstats mgr).Sim.Stats.oom_kills <- (mstats mgr).Sim.Stats.oom_kills + 1;
    match mgr.on_kill with Some f -> f proc ~badness:b | None -> ()

  let deliver_kill mgr proc =
    proc.pending_kill <- false;
    if not proc.dead then reap mgr proc;
    raise (Overload.Killed { pid = proc.pid })

  (* The physmem last-resort hook.  Returns true iff it freed something
     worth retrying the failing allocation for. *)
  let oom_policy mgr () =
    (* Defer when the failing allocation holds the kernel map lock:
       victim teardown re-enters the kernel map (ustruct unwire, wired
       frees), so the only safe answer is to let the allocation fail and
       surface [Out_of_pages] to a caller that can cope. *)
    if mgr.in_policy || V.kernel_map_locked mgr.msys then false
    else begin
      mgr.in_policy <- true;
      (* The policy is a lockdep context break: in 4.4BSD this work is
         the swapper/reaper thread's, not the failing allocation's, so
         no order edges are drawn from the fault-path locks held outside
         (an allocation under an amap lock legally tears down a victim's
         map here). *)
      let ls = (V.machine mgr.msys).Vmiface.Machine.locks in
      let ol = Sim.Lockstat.instance ls ~cls:"oom" ~id:0 in
      Sim.Lockstat.acquire_root ls ol ~mode:Sim.Lockstat.Write;
      Fun.protect
        ~finally:(fun () ->
          Sim.Lockstat.release ls ol;
          mgr.in_policy <- false)
        (fun () ->
          let is_current p =
            match mgr.current with Some c -> c == p | None -> false
          in
          let idle =
            List.filter
              (fun p -> (not (is_current p)) && not p.swapped)
              (live mgr)
          in
          (* Stage 1: swap an idle process out whole, biggest resident
             set first (most relief per swapout), lowest pid on ties.
             Worth trying even with swap nearly full — clean file-backed
             pages reclaim without a slot — and the ladder escalates by
             itself: each round parks one more idle process, and once
             none are left stage 2 takes over. *)
          let swapout_candidate =
            List.fold_left
              (fun best p ->
                (* Even a fully paged-out process is worth swapping: it
                   still releases the wired user structure, which is
                   exactly the relief 4.4BSD's swapout rung buys when
                   paging alone has run out of road. *)
                let r = V.resident_pages p.vm in
                match best with
                | Some (_, br) when br >= r -> best
                | _ -> Some (p, r))
              None idle
          in
          match swapout_candidate with
          | Some (p, _) ->
              (* Progress either way: deactivated resident pages and/or
                 an unwired u-area for the next daemon pass to reclaim.
                 Escalation still happens — each round parks one more
                 idle process, and once none are left stage 2 reaps. *)
              ignore (swapout_whole mgr p : int);
              true
          | None -> (
              (* Stage 2: reap the worst-badness victim.  Swapped-out
                 processes are candidates too; the running process only
                 as a last resort, by deferred signal-style delivery. *)
              let victims =
                List.filter (fun p -> not (is_current p)) (live mgr)
              in
              let pick ps =
                List.fold_left
                  (fun best p ->
                    let b = proc_badness mgr p in
                    match best with
                    | Some (_, bb) when bb > b -> best
                    | Some (bp, bb) when bb = b && bp.pid > p.pid -> best
                    | _ -> Some (p, b))
                  None ps
              in
              match pick victims with
              | Some (p, b) ->
                  reap mgr ~badness:b p;
                  true
              | None -> (
                  match mgr.current with
                  | Some p ->
                      p.pending_kill <- true;
                      false
                  | None -> false)))
    end

  let install mgr =
    Physmem.set_oom_hook
      (V.machine mgr.msys).Vmiface.Machine.physmem
      (Some (fun () -> oom_policy mgr ()))

  let uninstall mgr =
    Physmem.set_oom_hook (V.machine mgr.msys).Vmiface.Machine.physmem None

  (* Syscall boundary: swap the process back in if it was parked
     (runnable transition), run the work with it marked current, and on
     any unwind with a pending kill die cleanly via {!Overload.Killed}. *)
  let run_as mgr proc f =
    if proc.dead then invalid_arg "Procsim.run_as: process is dead";
    if proc.pending_kill then deliver_kill mgr proc;
    if proc.swapped then swapin_whole mgr proc;
    let prev = mgr.current in
    mgr.current <- Some proc;
    let restore () = mgr.current <- prev in
    match f () with
    | v ->
        restore ();
        v
    | exception e ->
        restore ();
        if proc.pending_kill && not proc.dead then deliver_kill mgr proc
        else raise e

  (* Rlimit-enforcing syscall wrappers (the soak workload runs through
     these; experiments that predate the lifeboat keep the raw paths). *)
  let touch_r mgr proc ~vpn access =
    run_as mgr proc (fun () ->
        check_resident mgr proc ~extra:1;
        V.touch mgr.msys proc.vm ~vpn access)

  let mmap_r mgr proc ?fixed_at ~npages ~prot ~share source =
    run_as mgr proc (fun () ->
        check_resident mgr proc ~extra:0;
        check_swap mgr proc;
        V.mmap mgr.msys proc.vm ?fixed_at ~npages ~prot ~share source)

  let vslock_r mgr proc ~vpn ~npages =
    run_as mgr proc (fun () ->
        check_wired mgr proc ~extra:npages;
        V.vslock mgr.msys proc.vm ~vpn ~npages)

  let mlock_r mgr proc ~vpn ~npages =
    run_as mgr proc (fun () ->
        check_wired mgr proc ~extra:npages;
        V.mlock mgr.msys proc.vm ~vpn ~npages)

  (* Channel ownership: the receiving process' liveness drives the
     channel's backpressure state, and its backlog rlimit bounds what
     senders may queue on it. *)
  let own_chan mgr proc ch =
    proc.owned_chans <- ch :: proc.owned_chans;
    Hashtbl.replace mgr.chan_owner (I.(ch.id)) proc;
    I.set_rx_state ch
      (if proc.dead then Ipc.Rx_dead
       else if proc.swapped then Ipc.Rx_swapped
       else Ipc.Rx_alive)

  let pipe_owned mgr ~owner ?cap_bytes () =
    let ch = I.pipe mgr.msys ?cap_bytes () in
    own_chan mgr owner ch;
    ch

  let send_r mgr sender ?vslocked ch ~policy ~addr ~len =
    run_as mgr sender (fun () ->
        (match Hashtbl.find_opt mgr.chan_owner I.(ch.id) with
        | Some owner
          when (not owner.dead)
               && chan_backlog owner + len
                  > owner.limits.Overload.rl_backlog ->
            deny mgr owner "backlog"
        | Some _ | None -> ());
        I.send_checked mgr.msys sender.vm ?vslocked ch ~policy ~addr ~len)

  let recv_r mgr proc ?vslocked ?accept_mapped ch ~addr ~len =
    run_as mgr proc (fun () ->
        I.recv mgr.msys proc.vm ?vslocked ?accept_mapped ch ~addr ~len)

  (* Replay an access trace (from {!Trace}) against a process. *)
  let replay sys proc trace =
    List.iter
      (fun (seg, page, access) ->
        let segment =
          match seg with
          | Trace.Seg_text -> proc.text
          | Trace.Seg_data -> proc.data
          | Trace.Seg_bss -> proc.bss
          | Trace.Seg_stack -> proc.stack
          | Trace.Seg_heap -> proc.heap
          | Trace.Seg_lib i ->
              let _, t, _, _ = List.nth proc.lib_segs i in
              t
        in
        if page < segment.seg_pages then
          V.touch sys proc.vm ~vpn:(segment.seg_vpn + page) access)
      trace
end

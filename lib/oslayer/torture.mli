(** Seeded torture harness with a differential oracle and trace shrinking.

    Drives UVM and the BSD VM baseline through one randomly generated but
    fully reproducible operation sequence on identically configured small
    machines, runs both kernels' invariant auditors every K operations,
    and compares each operation's observable outcome.  A failure produces
    a structured {!bug}, a crash artifact on disk, and (optionally) a
    ddmin-minimized replay of the trace.

    Placement is decided by the harness itself (first fit over a shared
    model) and passed to both systems via [fixed_at], so a trace denotes
    the same address-space history under both kernels and under replay of
    any subsequence — the property the shrinker relies on. *)

(** One serializable operation.  All operands are small integers: process
    and region {e slots} rather than addresses, so a prefix- or
    subset-replay re-resolves them against the model and skips ops whose
    preconditions no longer hold. *)
type op =
  | Spawn of { p : int }
  | Exit of { p : int }
  | Fork of { parent : int; child : int }
  | Mmap of {
      p : int;
      r : int;
      npages : int;
      prot_ix : int;
      shared : bool;
      src_file : int;
      fileoff : int;
    }
  | Munmap of { p : int; r : int; off : int; len : int }
  | Mprotect of { p : int; r : int; off : int; len : int; prot_ix : int }
  | Minherit of { p : int; r : int; inh_ix : int }
  | Madvise of { p : int; r : int; adv_ix : int }
  | Read of { p : int; r : int; page : int }
  | Write of { p : int; r : int; page : int; byte : int }
  | Mlock of { p : int; r : int; off : int; len : int }
  | Munlock of { p : int; r : int; off : int; len : int }
  | Msync of { p : int; r : int; off : int; len : int }
  | Pressure of { npages : int }
  | Pipe_open of { k : int }
  | Pipe_close of { k : int }
  | Pipe_write of {
      k : int;
      p : int;
      r : int;
      off : int;  (** byte offset within the region *)
      len : int;  (** byte count *)
      pol_ix : int;  (** index into {!Ipc.all_policies} *)
      vsl : bool;  (** wire the user buffer around the transfer *)
    }
  | Pipe_read of { k : int; p : int; r : int; off : int; len : int; vsl : bool }
  | Kwire of { k : int; npages : int }
      (** wired kernel allocation into global slot [k] — the §3.2 kernel
          wiring cases (user structures, page-table pages) as first-class
          trace ops *)
  | Kunwire of { k : int }
  | Vsl_grab of { p : int; r : int; off : int; len : int }
      (** vslock a page range and hold it across later ops (a long physio
          buffer); at most one held buffer per process, dropped implicitly
          on [Exit] *)
  | Vsl_drop of { p : int }

val op_to_string : op -> string

(** Observable result of one operation, compared across the two systems.
    [Oom] is a {e conditional} wildcard: page-reclamation timing may
    legitimately differ between the kernels, so an out-of-memory outcome
    matches anything — but only while memory is plausibly short (within a
    window after a [Pressure]/[Kwire]/[Vsl_grab] op, or while either
    kernel's free-page or swap-slot count is measurably low).  An Oom
    divergence on a calm machine is reported as a {!Mismatch}. *)
type outcome =
  | Done
  | Byte of int
  | Io of { n : int; sum : int }
  | Fault of string
  | Oom

val outcome_to_string : outcome -> string

(** Deliberate state corruptions, applied mid-run to the UVM instance so
    tests can prove the auditor catches each class of bug and attributes
    it to the right subsystem. *)
type corruption =
  | Leak_swap_slot
  | Overref_anon
  | Queue_double_insert
  | Leak_loan
  | Leak_swapcache

val corruption_name : corruption -> string
val corruption_of_string : string -> corruption option

type bug =
  | Audit_bug of { op_index : int; f : Check.failure }
  | Mismatch of { op_index : int; op : op; uvm : outcome; bsd : outcome }
  | Crash of { op_index : int; op : op; system : string; exn : string }

val bug_key : bug -> string
(** Stable identity of a bug — (system, subsystem, invariant) for audit
    failures — used by the shrinker to decide whether a candidate subset
    reproduces {e the same} failure. *)

val string_of_bug : bug -> string

type cfg = {
  seed : int;
  nops : int;
  audit_every : int;  (** audit both kernels every K executed ops *)
  faults : bool;  (** inject transient disk I/O errors (audits only) *)
  shrink : bool;  (** ddmin the trace after a failure *)
  artifact_dir : string option;  (** write crash artifacts here on failure *)
  corrupt : (int * corruption) option;
      (** apply the corruption at the first op whose original trace index
          reaches the threshold *)
  ram_pages : int;
  swap_pages : int;
  trace_buf : int;  (** event-ring capacity per machine, for artifacts *)
  tiers : bool;
      (** boot both kernels on a fast+slow swap-tier pair (same total
          slot budget) so audits cover cross-tier accounting *)
}

val default_cfg : cfg
(** seed 42, 5000 ops, audit every 100, no faults, no shrinking, 256-page
    RAM and 2048-slot swap — small enough that paging starts quickly. *)

type result = {
  r_bug : bug option;  (** [None] = run completed with all audits clean *)
  r_trace : (int * op) list;
      (** ops actually fed, with original indices; ends at the failure *)
  r_minimal : (int * op) list option;  (** shrunken replay, if requested *)
  r_artifacts : string option;  (** artifact directory written, if any *)
}

val run : cfg -> result

type drive_source =
  | Fresh of int  (** generate this many ops from [cfg.seed] *)
  | Replay of (int * op) list  (** feed a recorded trace *)

val drive :
  cfg ->
  drive_source ->
  bug option * (int * op) list * Sim.Trace_export.source list
(** One run through fresh boots of both systems: [run] composes this with
    the shrinker and artifact writer; tests can use it directly to replay
    a shrunken repro. *)

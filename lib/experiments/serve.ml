(** Section 7 end-to-end: a request/response server under memory pressure.

    N client processes talk to one server over stream socketpairs through
    the Procsim syscall layer.  Each request is a small copied message;
    the response payload travels under one of the three IPC policies:

    - [Copy]  — bulk copy through kernel buffers, the only policy the BSD
      VM baseline can execute;
    - [Loan]  — uvm_loan read-only page loanout, unloaned as the client
      consumes the data;
    - [Mexp]  — map-entry passing of page-aligned payloads, delivered
      mapped when the client accepts that.

    The machine is booted small and shares its RAM with a resident memory
    hog, so the pagedaemon runs while loans are outstanding — the
    interaction the loan/ledger invariants guard.  Sub-page payloads
    demonstrate the crossover: staging setup costs more than copying a
    few hundred bytes, so Loan/Mexp only win past a payload size. *)

module Vmtypes = Vmiface.Vmtypes
module Machine = Vmiface.Machine

type row = {
  sv_system : string;
  sv_policy : string;
  sv_payload : int;  (** response bytes per request *)
  sv_requests : int;
  sv_total_us : float;
  sv_mb_s : float;  (** response payload throughput *)
  sv_p50_us : float;  (** request round-trip latency percentiles *)
  sv_p95_us : float;
  sv_p99_us : float;
  sv_p99_breakdown : (string * float) list;
      (** critical-path self time per subsystem for the p99 request;
          sums to [sv_p99_us] (the request's root span duration) *)
}

type cfg = {
  clients : int;
  per_client : int;  (** requests each client issues *)
  payloads : int list;  (** response sizes in bytes *)
  ram_pages : int;
  swap_pages : int;
  hog_pages : int;  (** resident working set competing for RAM *)
}

let full_cfg =
  {
    clients = 3;
    per_client = 8;
    payloads = [ 256; 1024; 4096; 16384; 65536; 262144 ];
    ram_pages = 1024;
    swap_pages = 4096;
    hog_pages = 320;
  }

let quick_cfg =
  {
    clients = 2;
    per_client = 3;
    payloads = [ 256; 4096; 65536 ];
    ram_pages = 768;
    swap_pages = 4096;
    hog_pages = 200;
  }

let request_bytes = 128

let rank n q = min (n - 1) (int_of_float ((q *. float_of_int (n - 1)) +. 0.5))

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(rank n q)

module Run (V : Vmiface.Vm_sig.VM_SYS) = struct
  module Ps = Oslayer.Procsim.Make (V)

  let measure cfg ~policy ~payload =
    let config =
      {
        Machine.default_config with
        Machine.ram_pages = cfg.ram_pages;
        swap_pages = cfg.swap_pages;
      }
    in
    let sys = V.boot ~config () in
    Ps.boot_kernel sys;
    let m = V.machine sys in
    (* Spans stay off for the setup phase (hog touch, mmaps) and on for
       the request loop: each request is a root span whose tree holds
       every fault, pagein, pageout and tier I/O it caused. *)
    let spans = m.Machine.spans in
    let ps = Machine.page_size m in
    let pl_pages = max 1 ((payload + ps - 1) / ps) in
    let server = Ps.spawn sys Oslayer.Programs.inetd in
    let clients =
      List.init cfg.clients (fun _ -> Ps.spawn sys Oslayer.Programs.cat)
    in
    (* The hog's written working set stays live for the whole run, so
       serving competes with it for frames and the pagedaemon fires. *)
    let hog = Ps.spawn sys Oslayer.Programs.sh in
    let hog_vpn =
      V.mmap sys hog.Ps.vm ~npages:cfg.hog_pages ~prot:Pmap.Prot.rw
        ~share:Vmtypes.Private Vmtypes.Zero
    in
    V.access_range sys hog.Ps.vm ~vpn:hog_vpn ~npages:cfg.hog_pages
      Vmtypes.Write;
    (* One duplex link and one receive buffer per client; the channel
       capacity holds a whole response so each request is one send. *)
    let cap = max (2 * payload) (4 * ps) in
    let links =
      List.map
        (fun c ->
          let c_end, s_end = Ps.socketpair sys ~cap_bytes:cap () in
          let buf =
            V.mmap sys c.Ps.vm ~npages:pl_pages ~prot:Pmap.Prot.rw
              ~share:Vmtypes.Private Vmtypes.Zero
          in
          (c, c_end, s_end, buf))
        clients
    in
    let req_vpn =
      V.mmap sys server.Ps.vm ~npages:1 ~prot:Pmap.Prot.rw
        ~share:Vmtypes.Private Vmtypes.Zero
    in
    (* Response source, reused across requests.  Both zero-copy stagings
       preserve the sender's view (loanout write-protects, mexp extracts
       copy-mode), so the server's rewrite for the next response resolves
       by COW — the steady-state cost a zero-copy server really pays. *)
    let src =
      V.mmap sys server.Ps.vm ~npages:pl_pages ~prot:Pmap.Prot.rw
        ~share:Vmtypes.Private Vmtypes.Zero
    in
    let response = Bytes.make payload 'r' in
    let latencies = ref [] in
    Sim.Span.set_enabled spans true;
    let t_start = Machine.now m in
    for _ = 1 to cfg.per_client do
      List.iter
        (fun (c, c_end, s_end, buf) ->
          (* Clearing per request keeps the whole tree in the ring even
             for requests that fault hundreds of pages in. *)
          Sim.Span.clear spans;
          let root =
            Sim.Span.start spans ~subsys:"serve" ~ts:(Machine.now m) "request"
          in
          let sent =
            Ps.send sys c c_end.Ps.I.tx ~policy:Ipc.Copy ~addr:(buf * ps)
              ~len:request_bytes
          in
          assert (sent = request_bytes);
          (match
             Ps.recv sys server s_end.Ps.I.rx ~addr:(req_vpn * ps)
               ~len:request_bytes
           with
          | Ps.I.Data n -> assert (n = request_bytes)
          | Ps.I.Mapped _ -> assert false);
          V.write_bytes sys server.Ps.vm ~addr:(src * ps) response;
          let sent = Ps.send sys server s_end.Ps.I.tx ~policy ~addr:(src * ps) ~len:payload in
          assert (sent = payload);
          (match
             Ps.recv sys c ~accept_mapped:true c_end.Ps.I.rx ~addr:(buf * ps)
               ~len:payload
           with
          | Ps.I.Data n -> assert (n = payload)
          | Ps.I.Mapped { vpn; npages; len } ->
              assert (len = payload);
              V.munmap sys c.Ps.vm ~vpn ~npages);
          Sim.Span.finish spans root ~ts:(Machine.now m) ();
          (* The root span's duration IS the request latency, and its
             trace decomposes it — so the breakdown of the p99 request
             sums to the reported p99 by construction. *)
          let tree = Sim.Span.take_trace spans ~trace:root.Sim.Span.strace in
          latencies := (root.Sim.Span.sdur, Sim.Span.self_times tree)
                       :: !latencies)
        links
    done;
    Sim.Span.set_enabled spans false;
    let total_us = Machine.now m -. t_start in
    let requests = cfg.clients * cfg.per_client in
    let lat = Array.of_list !latencies in
    Array.sort (fun (a, _) (b, _) -> compare a b) lat;
    let lat_only = Array.map fst lat in
    let p99_breakdown =
      if Array.length lat = 0 then [] else snd lat.(rank (Array.length lat) 0.99)
    in
    {
      sv_system = V.name;
      sv_policy = Ipc.policy_name policy;
      sv_payload = payload;
      sv_requests = requests;
      sv_total_us = total_us;
      sv_mb_s = float_of_int (payload * requests) /. total_us;
      sv_p50_us = percentile lat_only 0.50;
      sv_p95_us = percentile lat_only 0.95;
      sv_p99_us = percentile lat_only 0.99;
      sv_p99_breakdown = p99_breakdown;
    }

  let run cfg =
    List.concat_map
      (fun payload ->
        List.map
          (fun policy -> measure cfg ~policy ~payload)
          Ipc.all_policies)
      cfg.payloads
end

module Uvm_run = Run (Uvm.Sys)
module Bsd_run = Run (Bsdvm.Sys)

let run ?(quick = false) () =
  let cfg = if quick then quick_cfg else full_cfg in
  Bsd_run.run cfg @ Uvm_run.run cfg

(* Simulated-time gain of [r] over the same system's Copy row. *)
let gain rows r =
  if r.sv_policy = "copy" then "-"
  else
    match
      List.find_opt
        (fun c ->
          c.sv_system = r.sv_system
          && c.sv_payload = r.sv_payload
          && c.sv_policy = "copy")
        rows
    with
    | Some c when c.sv_total_us > 0.0 ->
        Printf.sprintf "%+.0f%%" (100.0 *. (1.0 -. (r.sv_total_us /. c.sv_total_us)))
    | Some _ | None -> "-"

(* "fault 61% | swap:slow 22% | map 9%" — the p99 request's critical
   path, largest contributors first. *)
let breakdown_string r =
  if r.sv_p99_us <= 0.0 then "-"
  else
    List.sort (fun (_, a) (_, b) -> compare b a) r.sv_p99_breakdown
    |> List.filter (fun (_, self) -> self > 0.0)
    |> List.map (fun (subsys, self) ->
           Printf.sprintf "%s %.0f%%" subsys (100.0 *. self /. r.sv_p99_us))
    |> String.concat " | "

let print_result rows =
  Report.title
    "Serve: N clients / 1 server under memory pressure (vs same-system copy)";
  Printf.printf "%-8s %-8s %10s %6s %12s %10s %10s %10s %10s %8s\n" "system"
    "policy" "payload" "reqs" "total" "MB/s" "p50" "p95" "p99" "gain";
  List.iter
    (fun r ->
      Printf.printf "%-8s %-8s %10d %6d %12s %10.1f %10s %10s %10s %8s\n"
        r.sv_system r.sv_policy r.sv_payload r.sv_requests
        (Report.micros r.sv_total_us)
        r.sv_mb_s
        (Report.micros r.sv_p50_us)
        (Report.micros r.sv_p95_us)
        (Report.micros r.sv_p99_us)
        (gain rows r);
      Printf.printf "%17s p99 = %s\n" "" (breakdown_string r))
    rows

let json buf rows =
  let js = Sim.Trace_export.json_string in
  Buffer.add_string buf "{\"schema\":\"uvm-sim-serve/1\",\"rows\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"system\":";
      js buf r.sv_system;
      Buffer.add_string buf ",\"policy\":";
      js buf r.sv_policy;
      Buffer.add_string buf
        (Printf.sprintf
           ",\"payload\":%d,\"requests\":%d,\"total_us\":%.3f,\"mb_s\":%.3f,\"p50_us\":%.3f,\"p95_us\":%.3f,\"p99_us\":%.3f,\"p99_breakdown\":["
           r.sv_payload r.sv_requests r.sv_total_us r.sv_mb_s r.sv_p50_us
           r.sv_p95_us r.sv_p99_us);
      List.iteri
        (fun j (subsys, self) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf "{\"subsys\":";
          js buf subsys;
          Buffer.add_string buf (Printf.sprintf ",\"self_us\":%.3f}" self))
        r.sv_p99_breakdown;
      Buffer.add_string buf "]}")
    rows;
  Buffer.add_string buf "]}"

let print () = print_result (run ())

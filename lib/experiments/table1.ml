(** Table 1 — allocated map entries for common operations.

    Paper (i386): cat (static) 11 vs 6; od (dynamic) 21 vs 12; single-user
    boot 50 vs 26; multi-user boot 400 vs 242; starting X11 (9 processes)
    275 vs 186.

    We boot an identical simulated machine under each VM system, run the
    same process workload, and count the live map entries attributable to
    it (user maps plus kernel map).  The BSD excess comes from its
    recorded wiring (user structures, page tables, sysctl buffers) and
    absent kernel-map entry merging. *)

module Make (V : Vmiface.Vm_sig.VM_SYS) = struct
  module P = Oslayer.Procsim.Make (V)

  let fresh () =
    let sys = V.boot () in
    P.boot_kernel sys;
    sys

  let one_program prog =
    let sys = fresh () in
    let base = P.live_entries sys [] in
    let proc = P.spawn sys prog in
    P.live_entries sys [ proc ] - base

  let spawn_all sys progs = List.map (fun p -> P.spawn sys p) progs

  let single_user_procs = Oslayer.Programs.[ init; sh ]

  let multi_user_procs =
    Oslayer.Programs.
      [
        init;
        rc_script;
        mount_prog;
        ifconfig;
        ifconfig;
        syslogd;
        inetd;
        cron;
        sendmail;
        nfsiod;
        nfsiod;
        nfsiod;
        nfsiod;
        update;
        getty;
        getty;
        getty;
        getty;
        sh;
        sendmail;
        inetd;
        cron;
      ]

  let x11_procs =
    Oslayer.Programs.[ xinit; xserver; twm; xterm; xterm; xterm; xterm; xclock; sh ]

  let boot_scenario progs =
    let sys = fresh () in
    let base = P.live_entries sys [] in
    let procs = spawn_all sys progs in
    P.live_entries sys procs - base

  let x11_scenario () =
    (* Start from a multi-user system, then measure the delta of starting
       the X session. *)
    let sys = fresh () in
    let mprocs = spawn_all sys multi_user_procs in
    let base = P.live_entries sys mprocs in
    let xprocs = spawn_all sys x11_procs in
    P.live_entries sys (mprocs @ xprocs) - base

  let run () =
    [
      ("cat (static link)", one_program Oslayer.Programs.cat);
      ("od (dynamic link)", one_program Oslayer.Programs.od);
      ("single-user boot", boot_scenario single_user_procs);
      ("multi-user boot (no logins)", boot_scenario multi_user_procs);
      ("starting X11 (9 processes)", x11_scenario ());
    ]
end

module B = Make (Bsdvm.Sys)
module U = Make (Uvm.Sys)

type result = (string * int * int) list

let run () : result =
  List.map2
    (fun (label, bsd) (_, uvm) -> (label, bsd, uvm))
    (B.run ()) (U.run ())

let paper = [ (11, 6); (21, 12); (50, 26); (400, 242); (275, 186) ]

let print_result (r : result) =
  Report.title "Table 1: allocated map entries (paper: BSD 11/21/50/400/275, UVM 6/12/26/242/186)";
  Report.row4 "Operation" "BSD VM" "UVM" "ratio";
  List.iter
    (fun (label, bsd, uvm) ->
      Report.row4 label (string_of_int bsd) (string_of_int uvm)
        (Report.ratio (float_of_int bsd) (float_of_int uvm)))
    r

let print () = print_result (run ())

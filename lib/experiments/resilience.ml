(** I/O-error resilience under paging pressure.

    Not a paper artifact: an evaluation of the failure model layered onto
    the reproduction.  The same anonymous-memory paging workload (Figure
    5's mechanism) runs under increasingly hostile disks, on both VM
    systems booted with identical fault plans:

    - a sweep of transient write-error rates, absorbed by the pagedaemon's
      retry-with-backoff;
    - a bad-media scenario: permanent write errors on a handful of swap
      slots, absorbed by blacklisting the slot and reassigning the cluster
      (UVM's swap-location reassignment doubling as recovery).

    In every cell the workload must complete with full data integrity;
    what varies is the recovery work (and simulated time) each system
    spends.  BSD VM issues one I/O per page, so at a fixed per-operation
    error rate it meets many more errors than UVM does for the same
    workload — clustering is also an exposure reducer. *)

module Vmtypes = Vmiface.Vmtypes

let rates = [ 0.0; 0.005; 0.02; 0.05 ]

module Make (V : Vmiface.Vm_sig.VM_SYS) = struct
  (* Fill 24 MB of anonymous memory on a 16 MB machine, then read it all
     back, verifying contents.  Returns (simulated seconds, stats). *)
  let run_under plan_factory =
    let config =
      {
        (Vmiface.Machine.config_mb ~ram_mb:16 ~swap_mb:64 ()) with
        fault_plan = Some plan_factory;
      }
    in
    let sys = V.boot ~config () in
    let mach = V.machine sys in
    let vm = V.new_vmspace sys in
    let npages = 24 * 256 in
    let clock = mach.Vmiface.Machine.clock in
    let t0 = Sim.Simclock.now clock in
    let vpn =
      V.mmap sys vm ~npages ~prot:Pmap.Prot.rw ~share:Vmtypes.Private
        Vmtypes.Zero
    in
    for i = 0 to npages - 1 do
      V.write_bytes sys vm ~addr:((vpn + i) * 4096)
        (Bytes.of_string (Printf.sprintf "pg%06d" i))
    done;
    for i = 0 to npages - 1 do
      let got = V.read_bytes sys vm ~addr:((vpn + i) * 4096) ~len:8 in
      if Bytes.to_string got <> Printf.sprintf "pg%06d" i then
        failwith (V.name ^ ": data corrupted under fault injection")
    done;
    let dt = Sim.Simclock.now clock -. t0 in
    V.destroy_vmspace sys vm;
    if V.swap_slots_in_use sys <> 0 then
      failwith (V.name ^ ": swap leaked under fault injection");
    (dt, mach.Vmiface.Machine.stats)

  let rate_row rate =
    run_under (fun () ->
        Sim.Fault_plan.create ~write_error_rate:rate
          ~rate_severity:Sim.Fault_plan.Transient ())

  let bad_media_row () =
    run_under (fun () ->
        let plan = Sim.Fault_plan.create () in
        (* Five scattered patches of bad media across the swap partition. *)
        List.iter
          (fun slot ->
            Sim.Fault_plan.fail_op plan ~slot Sim.Fault_plan.Write
              Sim.Fault_plan.Permanent)
          [ 1; 500; 1000; 5000; 10000 ];
        plan)
end

module U = Make (Uvm.Sys)
module B = Make (Bsdvm.Sys)

type cell = {
  sys : string;
  time_us : float;
  injected : int;
  retries : int;
  recovered : int;
  badslots : int;
}

type scenario = { scenario_name : string; cells : cell list }
type result = scenario list

(* The stats record is the booted machine's live one: copy the counters
   out while the measurement is fresh. *)
let cell sys (dt, (st : Sim.Stats.t)) =
  {
    sys;
    time_us = dt;
    injected = st.Sim.Stats.io_errors_injected;
    retries = st.Sim.Stats.pageout_retries;
    recovered = st.Sim.Stats.pageouts_recovered;
    badslots = st.Sim.Stats.bad_slots;
  }

let run () : result =
  List.map
    (fun rate ->
      {
        scenario_name = Printf.sprintf "werr=%.1f%%" (rate *. 100.0);
        cells = [ cell "UVM" (U.rate_row rate); cell "BSD VM" (B.rate_row rate) ];
      })
    rates
  @ [
      {
        scenario_name = "bad media";
        cells =
          [ cell "UVM" (U.bad_media_row ()); cell "BSD VM" (B.bad_media_row ()) ];
      };
    ]

let print_result (r : result) =
  Report.title
    "Resilience: 24MB paging workload, 16MB RAM, under injected disk errors (data verified each run)";
  Printf.printf "%-10s %-8s %12s %8s %8s %8s %8s\n" "scenario" "system" "time"
    "injected" "retries" "recover" "badslots";
  List.iter
    (fun s ->
      List.iteri
        (fun i c ->
          Printf.printf "%-10s " (if i = 0 then s.scenario_name else "");
          Printf.printf "%-8s %10.3f s %8d %8d %8d %8d\n" c.sys
            (c.time_us /. 1e6) c.injected c.retries c.recovered c.badslots)
        s.cells)
    r

let print () = print_result (run ())

(** Tier-failure resilience: fast-tier death mid-stream.

    Not a paper artifact: an evaluation of the tiered-swap failure model
    layered onto the reproduction (DESIGN.md §12).  Both VM systems boot
    the same two-tier machine — a fast/small NVMe-like swap device in
    front of a slow/large disk-like one — and run the same workload:

    1. an anonymous working set larger than RAM, paged out (mostly to the
       fast tier, which allocates first);
    2. a patterned file streamed through a small RAM, so the pagedaemon
       reclaims the clean vnode pages and spills them into the swapcache
       on the fast tier;
    3. a second streaming pass that re-faults from the swapcache — and
       halfway through that pass the fast tier dies.

    The workload then simply continues: the stream falls back to the
    vnode, new pageouts land on the slow tier, and the pagedaemon drains
    the dead device by migrating its surviving slots.  At the end every
    anonymous page and every file page is verified and the cross-tier
    invariant audit runs with a dead, drained device in the set.  The
    numbers to watch: [lost] must be 0 for both systems, the cache hit
    rate before death must be positive, and the per-page stream latency
    shows what the cache was buying. *)

module Vmtypes = Vmiface.Vmtypes
module Machine = Vmiface.Machine

type tier_row = {
  tr_name : string;
  tr_priority : int;
  tr_capacity : int;
  tr_in_use : int;
  tr_alive : bool;
  tr_draining : bool;
  tr_pageouts : int;
  tr_pageins : int;
  tr_migrated_out : int;
  tr_cache_slots : int;
}

type row = {
  rs_system : string;
  rs_survived : bool;  (** all data verified, audit clean *)
  rs_lost_pages : int;
  rs_migrations : int;
  rs_failovers : int;
  rs_devices_dead : int;
  rs_cache_fills : int;
  rs_cache_hits_before : int;  (** hits before the device died *)
  rs_cache_hits : int;
  rs_cache_evictions : int;
  rs_hit_rate_before : float;  (** hits / streamed pages before death *)
  rs_us_per_page_before : float;  (** stream latency, cache alive *)
  rs_us_per_page_after : float;  (** stream latency, cache gone *)
  rs_time_us : float;
  rs_tiers : tier_row list;
}

type cfg = {
  ram_pages : int;
  fast_pages : int;
  slow_pages : int;
  anon_pages : int;  (** anonymous working set, > RAM *)
  file_pages : int;  (** streamed file size *)
}

(* The anonymous set must exceed RAM (so it pages out) but stay well
   under the fast tier's capacity: the headroom left on the fast device
   is exactly the room the swapcache has to work with. *)
let full_cfg =
  {
    ram_pages = 512;
    fast_pages = 2048;
    slow_pages = 8192;
    anon_pages = 1024;
    file_pages = 1024;
  }

let quick_cfg =
  {
    ram_pages = 256;
    fast_pages = 1024;
    slow_pages = 4096;
    anon_pages = 512;
    file_pages = 384;
  }

let anon_tag i = Printf.sprintf "an%06d" i
let file_tag i = Printf.sprintf "fp%06d" i

module Make (V : Vmiface.Vm_sig.VM_SYS) = struct
  let measure cfg =
    let config =
      Machine.tiered ~fast_pages:cfg.fast_pages ~slow_pages:cfg.slow_pages
        { Machine.default_config with Machine.ram_pages = cfg.ram_pages }
    in
    let sys = V.boot ~config () in
    let mach = V.machine sys in
    let st = mach.Machine.stats in
    let swap = mach.Machine.swap in
    let ps = Machine.page_size mach in
    let vm = V.new_vmspace sys in
    let t_start = Machine.now mach in
    (* Anonymous working set larger than RAM: paged out, fast tier first. *)
    let anon =
      V.mmap sys vm ~npages:cfg.anon_pages ~prot:Pmap.Prot.rw
        ~share:Vmtypes.Private Vmtypes.Zero
    in
    for i = 0 to cfg.anon_pages - 1 do
      V.write_bytes sys vm
        ~addr:((anon + i) * ps)
        (Bytes.of_string (anon_tag i))
    done;
    (* A patterned file to stream. *)
    let vfs = mach.Machine.vfs in
    let vn =
      Vfs.create_file vfs ~name:"/data/stream" ~size:(cfg.file_pages * ps)
    in
    let w =
      V.mmap sys vm ~npages:cfg.file_pages ~prot:Pmap.Prot.rw
        ~share:Vmtypes.Shared
        (Vmtypes.File (vn, 0))
    in
    for i = 0 to cfg.file_pages - 1 do
      V.write_bytes sys vm ~addr:((w + i) * ps) (Bytes.of_string (file_tag i))
    done;
    V.msync sys vm ~vpn:w ~npages:cfg.file_pages;
    V.munmap sys vm ~vpn:w ~npages:cfg.file_pages;
    (* One whole-file verified pass over a fresh mapping.  [at_page], if
       given, runs mid-stream (the kill switch). *)
    let lost = ref 0 in
    let stream ?at_page ?(on_page = fun _ -> ()) () =
      let vpn =
        V.mmap sys vm ~npages:cfg.file_pages ~prot:Pmap.Prot.read
          ~share:Vmtypes.Shared
          (Vmtypes.File (vn, 0))
      in
      for i = 0 to cfg.file_pages - 1 do
        (match at_page with Some (p, f) when p = i -> f () | _ -> ());
        let got = V.read_bytes sys vm ~addr:((vpn + i) * ps) ~len:8 in
        if Bytes.to_string got <> file_tag i then incr lost;
        on_page i
      done;
      V.munmap sys vm ~vpn ~npages:cfg.file_pages
    in
    (* Pass 1: memory pressure reclaims the clean streamed pages; the
       pagedaemon spills them into the swapcache on the fast tier. *)
    stream ();
    (* Pass 2: the first half re-faults from the swapcache; at the
       midpoint the fast tier dies and the rest falls back to the vnode. *)
    let half = cfg.file_pages / 2 in
    let hits0 = st.Sim.Stats.swap_cache_hits in
    let t_half = ref 0.0 and t_done = ref 0.0 in
    let hits_before = ref 0 in
    let t0 = Machine.now mach in
    stream
      ~at_page:
        ( half,
          fun () ->
            t_half := Machine.now mach;
            hits_before := st.Sim.Stats.swap_cache_hits - hits0;
            Swap.Swaptier.kill_device swap ~name:"fast" )
      ~on_page:(fun i ->
        if i = cfg.file_pages - 1 then t_done := Machine.now mach)
      ();
    let us_before = (!t_half -. t0) /. float_of_int (max 1 half) in
    let us_after =
      (!t_done -. !t_half) /. float_of_int (max 1 (cfg.file_pages - half))
    in
    (* Life goes on: rewrite half the anonymous set (new pageouts must
       land on the slow tier; the pagedaemon's drain migrates the dead
       device's surviving slots), then verify every anonymous page and
       stream the file once more. *)
    for i = 0 to (cfg.anon_pages / 2) - 1 do
      V.write_bytes sys vm
        ~addr:((anon + i) * ps)
        (Bytes.of_string (anon_tag i))
    done;
    for i = 0 to cfg.anon_pages - 1 do
      let got = V.read_bytes sys vm ~addr:((anon + i) * ps) ~len:8 in
      if Bytes.to_string got <> anon_tag i then incr lost
    done;
    stream ();
    (* The cross-tier audit must hold with a dead, drained device in the
       set: every slot charged to exactly one owner, none on dead media. *)
    V.audit sys;
    let time_us = Machine.now mach -. t_start in
    let tiers =
      List.map
        (fun (ti : Swap.Swaptier.tier_info) ->
          {
            tr_name = ti.Swap.Swaptier.ti_name;
            tr_priority = ti.ti_priority;
            tr_capacity = ti.ti_capacity;
            tr_in_use = ti.ti_in_use;
            tr_alive = ti.ti_alive;
            tr_draining = ti.ti_draining;
            tr_pageouts = ti.ti_pageouts;
            tr_pageins = ti.ti_pageins;
            tr_migrated_out = ti.ti_migrated_out;
            tr_cache_slots = ti.ti_cache_slots;
          })
        (Swap.Swaptier.tiers swap)
    in
    Vfs.vrele vfs vn;
    {
      rs_system = V.name;
      rs_survived = !lost = 0;
      rs_lost_pages = !lost;
      rs_migrations = st.Sim.Stats.swap_migrations;
      rs_failovers = st.Sim.Stats.swap_failovers;
      rs_devices_dead = st.Sim.Stats.swap_devices_dead;
      rs_cache_fills = st.Sim.Stats.swap_cache_fills;
      rs_cache_hits_before = !hits_before;
      rs_cache_hits = st.Sim.Stats.swap_cache_hits;
      rs_cache_evictions = st.Sim.Stats.swap_cache_evictions;
      rs_hit_rate_before = float_of_int !hits_before /. float_of_int (max 1 half);
      rs_us_per_page_before = us_before;
      rs_us_per_page_after = us_after;
      rs_time_us = time_us;
      rs_tiers = tiers;
    }
end

module U = Make (Uvm.Sys)
module B = Make (Bsdvm.Sys)

type result = row list

let run ?(quick = false) () : result =
  let cfg = if quick then quick_cfg else full_cfg in
  [ B.measure cfg; U.measure cfg ]

let print_result (rows : result) =
  Report.title
    "Resilience: fast swap tier dies mid-stream (all data verified, audit run \
     post-mortem)";
  Printf.printf "%-8s %-9s %5s %7s %8s %7s %7s %9s %10s %10s %10s\n" "system"
    "survived" "lost" "migrate" "failover" "fills" "hits" "hit-rate" "us/pg-pre"
    "us/pg-post" "time";
  List.iter
    (fun r ->
      Printf.printf
        "%-8s %-9s %5d %7d %8d %7d %7d %8.1f%% %10.1f %10.1f %9.3fs\n"
        r.rs_system
        (if r.rs_survived then "yes" else "NO")
        r.rs_lost_pages r.rs_migrations r.rs_failovers r.rs_cache_fills
        r.rs_cache_hits
        (100.0 *. r.rs_hit_rate_before)
        r.rs_us_per_page_before r.rs_us_per_page_after (r.rs_time_us /. 1e6);
      List.iter
        (fun t ->
          Printf.printf
            "         tier %-6s prio=%d cap=%-6d in_use=%-5d %s%s out=%d \
             in=%d migrated=%d cache=%d\n"
            t.tr_name t.tr_priority t.tr_capacity t.tr_in_use
            (if t.tr_alive then "alive" else "dead ")
            (if t.tr_draining then " draining" else "")
            t.tr_pageouts t.tr_pageins t.tr_migrated_out t.tr_cache_slots)
        r.rs_tiers)
    rows

let json buf (rows : result) =
  let js = Sim.Trace_export.json_string in
  Buffer.add_string buf "{\"schema\":\"uvm-sim-resilience/1\",\"rows\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"system\":";
      js buf r.rs_system;
      Buffer.add_string buf
        (Printf.sprintf
           ",\"survived\":%b,\"lost_pages\":%d,\"migrations\":%d,\"failovers\":%d,\"devices_dead\":%d,\"cache_fills\":%d,\"cache_hits_before\":%d,\"cache_hits\":%d,\"cache_evictions\":%d,\"hit_rate_before\":%.4f,\"us_per_page_before\":%.3f,\"us_per_page_after\":%.3f,\"time_us\":%.3f,\"tiers\":["
           r.rs_survived r.rs_lost_pages r.rs_migrations r.rs_failovers
           r.rs_devices_dead r.rs_cache_fills r.rs_cache_hits_before
           r.rs_cache_hits r.rs_cache_evictions r.rs_hit_rate_before
           r.rs_us_per_page_before r.rs_us_per_page_after r.rs_time_us);
      List.iteri
        (fun j t ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf "{\"name\":";
          js buf t.tr_name;
          Buffer.add_string buf
            (Printf.sprintf
               ",\"priority\":%d,\"capacity\":%d,\"in_use\":%d,\"alive\":%b,\"draining\":%b,\"pageouts\":%d,\"pageins\":%d,\"migrated_out\":%d,\"cache_slots\":%d}"
               t.tr_priority t.tr_capacity t.tr_in_use t.tr_alive t.tr_draining
               t.tr_pageouts t.tr_pageins t.tr_migrated_out t.tr_cache_slots))
        r.rs_tiers;
      Buffer.add_string buf "]}")
    rows;
  Buffer.add_string buf "]}"

let print () = print_result (run ())

(** Simulated SMP (DESIGN.md §16): a parallel fault storm on N virtual
    CPUs, measured — not projected — lock contention.

    Each kernel boots with [ncpus] per-CPU page caches and runs the same
    storm twice: once on 1 CPU (the serial baseline) and once on N.  The
    storm forks [procs] workers off one parent address space; every
    worker, per scheduler quantum, writes a window of its private
    anonymous region (allocation pressure through the per-CPU caches),
    reads a slice of a shared file mapping (read-mode object locks, the
    lockless fast path's bread and butter) and writes one page of a
    shared anonymous scoreboard.  The scoreboard is where the kernels
    part ways: BSD VM backs it with one shared anonymous object whose
    lock every write-mode fault takes, while UVM resolves the same
    faults in the shared amap — so at 4 CPUs the BSD object class tops
    the measured wait table and UVM's does not, the measured counterpart
    of {!Sim.Lockstat.project}'s prediction.

    Mid-storm, every [audit_every] quanta, both kernels' full invariant
    audits run — including the sharding sums and the lockless-lookup
    diff check of {!Check.check_smp}/{!Check.check_lookup}. *)

module Vmtypes = Vmiface.Vmtypes
module Machine = Vmiface.Machine

type cfg = {
  ram_pages : int;
  swap_pages : int;
  procs : int;  (** storm workers (forked off one parent) *)
  steps : int;  (** scheduler quanta per worker *)
  anon_pages : int;  (** private anonymous region (COW off the parent) *)
  window : int;  (** private pages written per quantum *)
  file_pages : int;  (** shared file mapping, read by everyone *)
  file_stride : int;  (** file pages read per quantum *)
  shared_pages : int;  (** shared anonymous scoreboard *)
  audit_every : int;  (** quanta between mid-storm full audits *)
  seed : int;
}

let cfg ?(quick = false) ~cpus () =
  let procs = max 4 (2 * cpus) in
  if quick then
    {
      ram_pages = 448;
      swap_pages = 4096;
      procs;
      steps = 50;
      anon_pages = 224;
      window = 4;
      file_pages = 512;
      file_stride = 12;
      shared_pages = 8 * procs;
      audit_every = 200;
      seed = 42;
    }
  else
    {
      ram_pages = 640;
      swap_pages = 8192;
      procs;
      steps = 150;
      anon_pages = 640;
      window = 4;
      file_pages = 768;
      file_stride = 12;
      shared_pages = 8 * procs;
      audit_every = 500;
      seed = 42;
    }

(* -- results ------------------------------------------------------------ *)

type cpu_row = {
  sc_cpu : int;
  sc_now_us : float;  (** the CPU's virtual clock at storm end *)
  sc_quanta : int;
  sc_wait_us : float;
  sc_bounces : int;
  sc_wait_by_class : (string * float) list;
  sc_faults : int;  (** faults attributed to this CPU's quanta *)
  sc_cache_hits : int;
  sc_cache_misses : int;
  sc_refills : int;
  sc_steals : int;
}

type kernel_run = {
  kr_system : string;
  kr_cpus : int;
  kr_wall_us : float;  (** max per-CPU virtual clock *)
  kr_quanta : int;
  kr_total_wait_us : float;
  kr_total_bounces : int;
  kr_wait_by_class : (string * float) list;  (** largest first *)
  kr_fast_hits : int;
  kr_locked_lookups : int;
  kr_faults : int;
  kr_audits : int;  (** clean mid-storm + final audits *)
  kr_audit_failures : string list;
  kr_cpu_rows : cpu_row list;
}

let fast_rate r =
  let total = r.kr_fast_hits + r.kr_locked_lookups in
  if total = 0 then 0.0 else float_of_int r.kr_fast_hits /. float_of_int total

let top_wait r =
  match r.kr_wait_by_class with [] -> ("-", 0.0) | (c, w) :: _ -> (c, w)

type system_result = {
  ss_system : string;
  ss_base : kernel_run;  (** the 1-CPU serialization *)
  ss_par : kernel_run;  (** the N-CPU storm *)
}

let speedup s =
  if s.ss_par.kr_wall_us > 0.0 then
    s.ss_base.kr_wall_us /. s.ss_par.kr_wall_us
  else 0.0

type result = { sm_cpus : int; sm_seed : int; sm_systems : system_result list }

(* -- the storm ---------------------------------------------------------- *)

module Run (V : Vmiface.Vm_sig.VM_SYS) = struct
  let measure cfg ~cpus =
    let config =
      {
        Machine.default_config with
        Machine.ram_pages = cfg.ram_pages;
        swap_pages = cfg.swap_pages;
        ncpus = cpus;
        seed = cfg.seed;
        trace_buf = Some 16384 (* contention needs a recording registry *);
      }
    in
    let sys = V.boot ~config () in
    let m = V.machine sys in
    Machine.set_label m (Printf.sprintf "%s@%dcpu" V.name cpus);
    let ps = Machine.page_size m in
    let pm = m.Machine.physmem in
    let parent = V.new_vmspace sys in
    let vn =
      Vfs.create_file m.Machine.vfs ~name:"/data/smp"
        ~size:(cfg.file_pages * ps)
    in
    let fvpn =
      V.mmap sys parent ~npages:cfg.file_pages
        ~prot:{ Pmap.Prot.r = true; w = false; x = false }
        ~share:Vmtypes.Shared
        (Vmtypes.File (vn, 0))
    in
    let svpn =
      V.mmap sys parent ~npages:cfg.shared_pages ~prot:Pmap.Prot.rw
        ~share:Vmtypes.Shared Vmtypes.Zero
    in
    let avpn =
      V.mmap sys parent ~npages:cfg.anon_pages ~prot:Pmap.Prot.rw
        ~share:Vmtypes.Private Vmtypes.Zero
    in
    let workers = Array.init cfg.procs (fun _ -> V.fork sys parent) in
    let smp =
      Sim.Smp.create ~seed:cfg.seed ~cpus ~clock:m.Machine.clock
        ~costs:m.Machine.costs ~stats:m.Machine.stats ~locks:m.Machine.locks
        ()
    in
    Sim.Smp.set_on_dispatch smp (fun cpu -> Physmem.set_current_cpu pm cpu);
    Machine.set_runnable_probe m (Some (fun cpu -> Sim.Smp.runnable smp ~cpu));
    let audits = ref 0 in
    let failures = ref [] in
    let audit () =
      match V.audit sys with
      | () -> incr audits
      | exception Check.Audit_failure f ->
          failures := Check.string_of_failure f :: !failures
    in
    (* One quantum of worker [p].  Pure arithmetic striding — a run is a
       function of (cfg, cpus) only.  Three phases:
       - private-window writes: allocation through the per-CPU caches;
       - a shared-file streaming read, every worker in the SAME phase:
         the first toucher of a page takes the locked pagein, its seven
         siblings fast-hit the now-resident frame — the fast path's
         bread and butter, and the stream is bigger than RAM so it
         doubles as the eviction pressure;
       - one write into the worker's slice of the shared scoreboard.
         The slice goes cold for long enough to be evicted between
         revisits, so each revisit is a write-mode pagein — on BSD all
         slices live in ONE shared anonymous object, so these serialize
         on its lock across CPUs, while UVM spreads them over the shared
         amap.  That asymmetry is the measured headline. *)
    let slice = cfg.shared_pages / cfg.procs in
    let step p i =
      let vm = workers.(p) in
      let abase = i * cfg.window mod cfg.anon_pages in
      for k = 0 to cfg.window - 1 do
        V.touch sys vm
          ~vpn:(avpn + ((abase + k) mod cfg.anon_pages))
          Vmtypes.Write
      done;
      let fbase = i * cfg.file_stride mod cfg.file_pages in
      for k = 0 to cfg.file_stride - 1 do
        V.touch sys vm
          ~vpn:(fvpn + ((fbase + k) mod cfg.file_pages))
          Vmtypes.Read
      done;
      V.touch sys vm ~vpn:(svpn + (p * slice) + (i mod slice)) Vmtypes.Write;
      i + 1 < cfg.steps
    in
    for p = 0 to cfg.procs - 1 do
      Sim.Smp.add_task smp ~cpu:(p mod cpus)
        ~name:(Printf.sprintf "worker%d" p) (step p)
    done;
    Sim.Smp.run ~every:cfg.audit_every ~hook:audit smp;
    audit ();
    Machine.set_runnable_probe m None;
    let stats = m.Machine.stats in
    let caches = Physmem.cache_views pm in
    let rows =
      List.map
        (fun (cv : Sim.Smp.cpu_view) ->
          let cw = List.nth caches cv.Sim.Smp.cv_cpu in
          {
            sc_cpu = cv.Sim.Smp.cv_cpu;
            sc_now_us = cv.Sim.Smp.cv_now_us;
            sc_quanta = cv.Sim.Smp.cv_quanta;
            sc_wait_us = cv.Sim.Smp.cv_wait_us;
            sc_bounces = cv.Sim.Smp.cv_bounces;
            sc_wait_by_class = cv.Sim.Smp.cv_wait_by_class;
            sc_faults = cv.Sim.Smp.cv_stats.Sim.Stats.faults;
            sc_cache_hits = cw.Physmem.cw_hits;
            sc_cache_misses = cw.Physmem.cw_misses;
            sc_refills = cw.Physmem.cw_refills;
            sc_steals = cw.Physmem.cw_steals;
          })
        (Sim.Smp.cpu_views smp)
    in
    {
      kr_system = V.name;
      kr_cpus = cpus;
      kr_wall_us = Sim.Smp.wall_us smp;
      kr_quanta = Sim.Smp.quanta smp;
      kr_total_wait_us = Sim.Smp.total_wait_us smp;
      kr_total_bounces = Sim.Smp.total_bounces smp;
      kr_wait_by_class = Sim.Smp.wait_by_class smp;
      kr_fast_hits = stats.Sim.Stats.lookup_fast_hits;
      kr_locked_lookups = stats.Sim.Stats.lookup_locked;
      kr_faults = stats.Sim.Stats.faults;
      kr_audits = !audits;
      kr_audit_failures = List.rev !failures;
      kr_cpu_rows = rows;
    }
end

module Uvm_run = Run (Uvm.Sys)
module Bsd_run = Run (Bsdvm.Sys)

let run ?(quick = false) ?(cpus = 4) ?seed () =
  let c = cfg ~quick ~cpus () in
  let c = match seed with Some s -> { c with seed = s } | None -> c in
  Machine.reset_traced ();
  let sys_result measure =
    let base = measure c ~cpus:1 in
    let par = if cpus = 1 then base else measure c ~cpus in
    { ss_system = base.kr_system; ss_base = base; ss_par = par }
  in
  let uvm = sys_result Uvm_run.measure in
  let bsd = sys_result Bsd_run.measure in
  Machine.reset_traced ();
  { sm_cpus = cpus; sm_seed = c.seed; sm_systems = [ uvm; bsd ] }

(* -- exports ------------------------------------------------------------ *)

let jstr s = Printf.sprintf "%S" s

let jlist f xs = "[" ^ String.concat "," (List.map f xs) ^ "]"

let json_run (r : kernel_run) =
  Printf.sprintf
    "{\"cpus\":%d,\"wall_us\":%.3f,\"quanta\":%d,\"lock_wait_us\":%.3f,\"line_bounces\":%d,\"faults\":%d,\"lookup_fast_hits\":%d,\"lookup_locked\":%d,\"fast_hit_rate\":%.4f,\"audits\":%d,\"audit_failures\":%s,\"wait_by_class\":%s,\"cpus_detail\":%s}"
    r.kr_cpus r.kr_wall_us r.kr_quanta r.kr_total_wait_us r.kr_total_bounces
    r.kr_faults r.kr_fast_hits r.kr_locked_lookups (fast_rate r) r.kr_audits
    (jlist jstr r.kr_audit_failures)
    (jlist
       (fun (c, w) -> Printf.sprintf "{\"class\":%s,\"wait_us\":%.3f}" (jstr c) w)
       r.kr_wait_by_class)
    (jlist
       (fun row ->
         Printf.sprintf
           "{\"cpu\":%d,\"now_us\":%.3f,\"quanta\":%d,\"wait_us\":%.3f,\"bounces\":%d,\"faults\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\"refills\":%d,\"steals\":%d,\"wait_by_class\":%s}"
           row.sc_cpu row.sc_now_us row.sc_quanta row.sc_wait_us row.sc_bounces
           row.sc_faults row.sc_cache_hits row.sc_cache_misses row.sc_refills
           row.sc_steals
           (jlist
              (fun (c, w) ->
                Printf.sprintf "{\"class\":%s,\"wait_us\":%.3f}" (jstr c) w)
              row.sc_wait_by_class))
       r.kr_cpu_rows)

let json buf r =
  Buffer.add_string buf
    (Printf.sprintf "{\"schema\":\"uvm-sim-smp/1\",\"cpus\":%d,\"seed\":%d,\"systems\":"
       r.sm_cpus r.sm_seed);
  Buffer.add_string buf
    (jlist
       (fun s ->
         let top_cls, top_us = top_wait s.ss_par in
         Printf.sprintf
           "{\"system\":%s,\"speedup\":%.4f,\"top_wait_class\":%s,\"top_wait_us\":%.3f,\"fast_hit_rate\":%.4f,\"baseline\":%s,\"parallel\":%s}"
           (jstr s.ss_system) (speedup s) (jstr top_cls) top_us
           (fast_rate s.ss_par) (json_run s.ss_base) (json_run s.ss_par))
       r.sm_systems);
  Buffer.add_string buf "}\n"

(* Flat rows for the bench harness's regression gate. *)
type bench_row = {
  br_system : string;
  br_cpus : int;
  br_wall_us : float;
  br_wait_us : float;
  br_bounces : int;
  br_speedup : float;
  br_fast_hit_rate : float;
}

let bench_rows r =
  List.concat_map
    (fun s ->
      [
        {
          br_system = s.ss_system;
          br_cpus = 1;
          br_wall_us = s.ss_base.kr_wall_us;
          br_wait_us = s.ss_base.kr_total_wait_us;
          br_bounces = s.ss_base.kr_total_bounces;
          br_speedup = 1.0;
          br_fast_hit_rate = fast_rate s.ss_base;
        };
        {
          br_system = s.ss_system;
          br_cpus = s.ss_par.kr_cpus;
          br_wall_us = s.ss_par.kr_wall_us;
          br_wait_us = s.ss_par.kr_total_wait_us;
          br_bounces = s.ss_par.kr_total_bounces;
          br_speedup = speedup s;
          br_fast_hit_rate = fast_rate s.ss_par;
        };
      ])
    r.sm_systems

let print r =
  Report.title "Simulated SMP: measured contention at %d CPUs" r.sm_cpus;
  List.iter
    (fun s ->
      let p = s.ss_par in
      Printf.printf
        "\n%s: wall %.0f us on 1 cpu -> %.0f us on %d (speedup %.2fx)\n"
        s.ss_system s.ss_base.kr_wall_us p.kr_wall_us p.kr_cpus (speedup s);
      Printf.printf
        "  lock wait %.0f us, %d line bounces, %d faults, fast-path %.0f%% \
         (%d hits / %d locked), %d audits%s\n"
        p.kr_total_wait_us p.kr_total_bounces p.kr_faults
        (100.0 *. fast_rate p)
        p.kr_fast_hits p.kr_locked_lookups p.kr_audits
        (match p.kr_audit_failures with
        | [] -> ""
        | fs -> Printf.sprintf ", %d FAILED" (List.length fs));
      List.iter
        (fun f -> Printf.printf "  AUDIT FAILURE: %s\n" f)
        p.kr_audit_failures;
      if p.kr_wait_by_class <> [] then begin
        Printf.printf "  %-12s %14s\n" "class" "wait_us";
        List.iter
          (fun (c, w) -> Printf.printf "  %-12s %14.1f\n" c w)
          p.kr_wait_by_class
      end;
      Printf.printf "  %-5s %12s %8s %10s %8s %8s %8s %8s\n" "cpu" "now_us"
        "quanta" "wait_us" "bounce" "faults" "hits" "refill";
      List.iter
        (fun row ->
          Printf.printf "  %-5d %12.0f %8d %10.1f %8d %8d %8d %8d\n" row.sc_cpu
            row.sc_now_us row.sc_quanta row.sc_wait_us row.sc_bounces
            row.sc_faults row.sc_cache_hits row.sc_refills)
        p.kr_cpu_rows)
    r.sm_systems

(** Section 5.3 — the swap memory leak, reconstructed.

    The exact Figure 3 scenario: a process maps a three-page file
    copy-on-write and writes the middle page (first shadow object / first
    amap).  It forks; the parent writes the middle page again, the child
    writes the right-hand page.  Now BSD VM's first shadow object holds a
    middle-page copy that no lookup can reach — if the child exits it is
    still there, pinned by the surviving chain.  UVM's anon reference
    counts free it on the spot.  The [leaked_pages] audit in each facade
    counts exactly these unreachable anonymous pages. *)

module Vmtypes = Vmiface.Vmtypes

type step = { step_name : string; bsd_leak : int; uvm_leak : int }

module Scenario (V : Vmiface.Vm_sig.VM_SYS) = struct
  let run () =
    let sys = V.boot () in
    let vfs = (V.machine sys).Vmiface.Machine.vfs in
    let vn = Vfs.create_file vfs ~name:"/tmp/orig_file" ~size:(3 * 4096) in
    let parent = V.new_vmspace sys in
    let vpn =
      V.mmap sys parent ~npages:3 ~prot:Pmap.Prot.rw ~share:Vmtypes.Private
        (Vmtypes.File (vn, 0))
    in
    (* Establish + first write fault on the middle page. *)
    V.touch sys parent ~vpn:(vpn + 1) Vmtypes.Write;
    let l0 = V.leaked_pages sys in
    (* Fork; parent writes middle, child writes right-hand page. *)
    let child = V.fork sys parent in
    V.touch sys parent ~vpn:(vpn + 1) Vmtypes.Write;
    V.touch sys child ~vpn:(vpn + 2) Vmtypes.Write;
    let l1 = V.leaked_pages sys in
    (* Child exits: BSD frees the third shadow object but the chain's
       first shadow still holds the unreachable middle page. *)
    V.destroy_vmspace sys child;
    let l2 = V.leaked_pages sys in
    (* Child writing the middle page instead is the other leak the paper
       mentions; rebuild and measure that variant too. *)
    let child2 = V.fork sys parent in
    V.touch sys child2 ~vpn:(vpn + 1) Vmtypes.Write;
    let l3 = V.leaked_pages sys in
    V.destroy_vmspace sys child2;
    V.destroy_vmspace sys parent;
    let l4 = V.leaked_pages sys in
    [ l0; l1; l2; l3; l4 ]
end

module B = Scenario (Bsdvm.Sys)
module U = Scenario (Uvm.Sys)

let step_names =
  [
    "after first write fault";
    "after fork + both write faults";
    "after child exit";
    "after 2nd fork + child middle write";
    "after everything exits";
  ]

let run () =
  let b = B.run () and u = U.run () in
  List.map2
    (fun step_name (bsd_leak, uvm_leak) -> { step_name; bsd_leak; uvm_leak })
    step_names
    (List.combine b u)

let print_result steps =
  Report.title
    "Section 5.3: inaccessible anonymous pages in the Figure 3 scenario (BSD leaks, UVM cannot)";
  Report.row4 "Step" "BSD leak" "UVM leak" "";
  List.iter
    (fun s ->
      Report.row4 s.step_name (string_of_int s.bsd_leak)
        (string_of_int s.uvm_leak) "")
    steps

let print () = print_result (run ())

(** vmstat: the machine's paging state as a time-series table.

    A deliberately simple workload — an anonymous working set roughly
    twice RAM, swept sequentially several times — run on both kernels
    with the periodic sampler on, then rendered the way vmstat(8)
    renders /proc: gauge columns as levels, counter columns as
    per-second rates between the displayed rows.  The point is the
    *shape* over time (free pool sawtooth as the pagedaemon fires, swap
    filling monotonically, pagein rate once the sweep wraps), which no
    end-of-run counter table shows. *)

module Vmtypes = Vmiface.Vmtypes
module Machine = Vmiface.Machine

type cfg = {
  ram_pages : int;
  swap_pages : int;
  working_pages : int;  (** anonymous working set; > RAM forces paging *)
  sweeps : int;  (** sequential passes over the working set *)
  ncpus : int;  (** per-CPU page caches; sweep chunks rotate over them *)
}

let full_cfg =
  {
    ram_pages = 256;
    swap_pages = 2048;
    working_pages = 512;
    sweeps = 4;
    ncpus = 1;
  }

let quick_cfg =
  {
    ram_pages = 192;
    swap_pages = 1024;
    working_pages = 320;
    sweeps = 2;
    ncpus = 1;
  }

module Run (V : Vmiface.Vm_sig.VM_SYS) = struct
  let run cfg =
    let config =
      {
        Machine.default_config with
        Machine.ram_pages = cfg.ram_pages;
        swap_pages = cfg.swap_pages;
        ncpus = cfg.ncpus;
      }
    in
    let sys = V.boot ~config () in
    let vm = V.new_vmspace sys in
    let vpn =
      V.mmap sys vm ~npages:cfg.working_pages ~prot:Pmap.Prot.rw
        ~share:Vmtypes.Private Vmtypes.Zero
    in
    (* Each sweep walks the working set in [ncpus] chunks, rotating the
       allocating CPU so every per-CPU cache sees traffic and the
       cpuN:* sampler columns (and the cache_starved watchdog behind
       them) have something to show. *)
    let physmem = (V.machine sys).Machine.physmem in
    let chunk = (cfg.working_pages + cfg.ncpus - 1) / cfg.ncpus in
    for _ = 1 to cfg.sweeps do
      for c = 0 to cfg.ncpus - 1 do
        let base = c * chunk in
        let n = min chunk (cfg.working_pages - base) in
        if n > 0 then begin
          Physmem.set_current_cpu physmem c;
          V.access_range sys vm ~vpn:(vpn + base) ~npages:n Vmtypes.Write
        end
      done
    done;
    Physmem.set_current_cpu physmem 0;
    (* One last capture so the table's final row is the end state. *)
    let m = V.machine sys in
    Sim.Timeseries.sample_now m.Machine.series ~ts:(Machine.now m);
    V.destroy_vmspace sys vm
end

module Uvm_run = Run (Uvm.Sys)
module Bsd_run = Run (Bsdvm.Sys)

let run ?(quick = false) ?(cpus = 1) () =
  let cfg = { (if quick then quick_cfg else full_cfg) with ncpus = cpus } in
  Uvm_run.run cfg;
  Bsd_run.run cfg

(* -- rendering --------------------------------------------------------- *)

let max_rows = 24

(* Gauges print as levels; these counters print as per-second rates
   between consecutive displayed rows. *)
let gauge_cols =
  [
    ("free_pages", "free");
    ("active_pages", "act");
    ("inactive_pages", "inact");
    ("swap_slots_used", "swpd");
    ("swapcache_pages", "scache");
  ]

let rate_cols =
  [
    ("faults", "flt/s");
    ("pageins", "pi/s");
    ("pageouts", "po/s");
    ("swap_migrations", "mig/s");
    ("oom_kills", "oom/s");
    ("proc_swapouts", "so/s");
    ("proc_swapins", "si/s");
    ("lock_acquires", "lk/s");
  ]

let print_source (src : Sim.Trace_export.source) =
  let series = src.Sim.Trace_export.series in
  let samples = Array.of_list (Sim.Timeseries.samples series) in
  let n = Array.length samples in
  Printf.printf "\n== %s: %d samples (%d captured)\n" src.label n
    (Sim.Timeseries.recorded series);
  if n >= 2 then begin
    let idx name =
      match Sim.Timeseries.col_index series name with
      | Some i -> i
      | None -> invalid_arg ("vmstat: missing column " ^ name)
    in
    let gauges = List.map (fun (c, h) -> (idx c, h)) gauge_cols in
    let rates = List.map (fun (c, h) -> (idx c, h)) rate_cols in
    (* Lock observatory columns: the window-max hold gauge, plus the
       class whose cumulative held time grew most since the previous
       displayed row — vmstat's live "top contended class". *)
    let lk_max = idx "lock_maxhold_us" in
    let lk_held =
      List.map (fun c -> (c, idx ("lockheld:" ^ c))) Sim.Lockstat.known_classes
    in
    (* Per-CPU cache columns exist only on a machine booted with more
       than one CPU: runnable tasks (a level), steal rate, and the
       cache hit ratio as a percentage. *)
    let cpu_cols =
      let rec go k acc =
        match Sim.Timeseries.col_index series (Printf.sprintf "cpu%d:runnable" k)
        with
        | Some run ->
            let want name =
              match
                Sim.Timeseries.col_index series (Printf.sprintf "cpu%d:%s" k name)
              with
              | Some i -> i
              | None -> invalid_arg ("vmstat: missing column cpu" ^ name)
            in
            go (k + 1)
              ((k, run, want "steals", want "hit_rate") :: acc)
        | None -> List.rev acc
      in
      go 0 []
    in
    Printf.printf "%10s" "time_ms";
    List.iter (fun (_, h) -> Printf.printf " %8s" h) gauges;
    List.iter (fun (_, h) -> Printf.printf " %8s" h) rates;
    Printf.printf " %8s %-9s" "lkmax" "lkhot";
    List.iter
      (fun (k, _, _, _) ->
        Printf.printf " %6s %7s %7s"
          (Printf.sprintf "c%d:run" k)
          (Printf.sprintf "c%d:st/s" k)
          (Printf.sprintf "c%d:hit" k))
      cpu_cols;
    print_newline ();
    (* Decimate to at most [max_rows] evenly spaced rows, always ending
       on the newest sample; rates span the gap between displayed rows. *)
    let step = max 1 ((n + max_rows - 1) / max_rows) in
    let prev = ref samples.(0) in
    let row i =
      let s = samples.(i) in
      Printf.printf "%10.1f" (s.Sim.Timeseries.s_ts /. 1000.0);
      List.iter
        (fun (c, _) ->
          Printf.printf " %8.0f" s.Sim.Timeseries.s_values.(c))
        gauges;
      List.iter
        (fun (c, _) ->
          Printf.printf " %8.0f" (Sim.Timeseries.rate ~col:c !prev s))
        rates;
      let hot =
        List.fold_left
          (fun acc (cls, c) ->
            let d =
              s.Sim.Timeseries.s_values.(c)
              -. (!prev).Sim.Timeseries.s_values.(c)
            in
            match acc with
            | Some (_, best) when best >= d -> acc
            | _ when d > 0.0 -> Some (cls, d)
            | _ -> acc)
          None lk_held
      in
      Printf.printf " %8.0f %-9s"
        s.Sim.Timeseries.s_values.(lk_max)
        (match hot with Some (cls, _) -> cls | None -> "-");
      List.iter
        (fun (_, run, steals, hit) ->
          Printf.printf " %6.0f %7.0f %6.0f%%"
            s.Sim.Timeseries.s_values.(run)
            (Sim.Timeseries.rate ~col:steals !prev s)
            (100.0 *. s.Sim.Timeseries.s_values.(hit)))
        cpu_cols;
      print_newline ();
      prev := s
    in
    row 0;
    let i = ref step in
    while !i < n - 1 do
      row !i;
      i := !i + step
    done;
    row (n - 1)
  end;
  match Sim.Timeseries.warnings series with
  | [] -> ()
  | warns ->
      List.iter
        (fun (w : Sim.Timeseries.warning) ->
          Printf.printf "warning @%.1fms %s:%s\n"
            (w.Sim.Timeseries.w_ts /. 1000.0)
            w.Sim.Timeseries.w_rule
            (String.concat ""
               (List.map
                  (fun (k, v) -> Printf.sprintf " %s=%s" k v)
                  w.Sim.Timeseries.w_detail)))
        warns

let print_sources sources =
  Report.title "vmstat: periodic paging state over simulated time";
  List.iter print_source sources

(** Table 2 — page-fault counts for sample commands.

    Paper (i386, csh "time"): ls / 59 vs 33; finger chuck 128 vs 74;
    cc hello.c 1086 vs 590; man csh 114 vs 64; newaliases 229 vs 127.

    The same deterministic access trace (see {!Oslayer.Trace}) is replayed
    under both systems; UVM's fault-ahead window (4 ahead / 3 behind) maps
    resident neighbour pages on every fault, cutting the count roughly in
    half on the sequential portions of the trace. *)

module Make (V : Vmiface.Vm_sig.VM_SYS) = struct
  module P = Oslayer.Procsim.Make (V)

  let faults_for prog =
    let sys = V.boot () in
    P.boot_kernel sys;
    let stats = (V.machine sys).Vmiface.Machine.stats in
    let before = stats.Sim.Stats.faults in
    let proc = P.spawn sys prog in
    P.replay sys proc (Oslayer.Trace.command_trace prog);
    stats.Sim.Stats.faults - before

  let commands =
    [
      ("ls /", Oslayer.Programs.ls);
      ("finger chuck", Oslayer.Programs.finger);
      ("cc", Oslayer.Programs.cc);
      ("man csh", Oslayer.Programs.man);
      ("newaliases", Oslayer.Programs.newaliases);
    ]

  let run () = List.map (fun (label, prog) -> (label, faults_for prog)) commands
end

module B = Make (Bsdvm.Sys)
module U = Make (Uvm.Sys)

type result = (string * int * int) list

let run () : result =
  List.map2
    (fun (label, bsd) (_, uvm) -> (label, bsd, uvm))
    (B.run ()) (U.run ())

let paper = [ (59, 33); (128, 74); (1086, 590); (114, 64); (229, 127) ]

let print_result (r : result) =
  Report.title "Table 2: page fault counts (paper: BSD 59/128/1086/114/229, UVM 33/74/590/64/127)";
  Report.row4 "Command" "BSD VM" "UVM" "ratio";
  List.iter
    (fun (label, bsd, uvm) ->
      Report.row4 label (string_of_int bsd) (string_of_int uvm)
        (Report.ratio (float_of_int bsd) (float_of_int uvm)))
    r

let print () = print_result (run ())

(** The lock observatory's showcase: one workload that takes every
    registered lock class on both kernels, then exports the registry.

    A single address space works through an anonymous region larger than
    RAM (pressure -> pagedaemon -> swap -> page queues), re-reads a
    file-backed mapping (object locks), and streams bytes through a pipe
    (channel locks) — with each iteration wrapped in a root span, so the
    folded flamegraph's self times telescope to the measured wall time
    exactly, the same construction serve.ml uses for its p99 breakdown.

    Exports:
    - [uvm-sim-lockstat/1] JSON — per-class hold histograms (total and
      per-mode), per-subsystem attribution, the observed lock-order
      graph with any cycles, and the would-be contention projection at
      [cpus] simulated CPUs;
    - a folded-stack profile ("UVM;request;fault;lock:amap 12.5" lines,
      self-time weighted) ready for [flamegraph.pl]. *)

module Vmtypes = Vmiface.Vmtypes
module Machine = Vmiface.Machine

type result = {
  lk_requests : int;  (** iterations per system *)
  lk_wall_us : float;  (** sum of request root-span durations, both systems *)
  lk_folded_us : float;  (** sum of folded self times — equals the wall *)
  lk_folded : (string * float) list;  (** "system;span;...;lock:cls" lines *)
  lk_sources : Sim.Trace_export.source list;  (** one per system, boot order *)
}

type cfg = {
  ram_pages : int;
  swap_pages : int;
  anon_pages : int;  (** working set; > ram forces paging *)
  file_pages : int;
  requests : int;
}

let default_cfg =
  {
    ram_pages = 384;
    swap_pages = 2048;
    anon_pages = 512;
    file_pages = 48;
    requests = 24;
  }

module Run (V : Vmiface.Vm_sig.VM_SYS) = struct
  module I = Ipc.Make (V)

  (* Returns (per-request folded paths prefixed with the system name,
     wall = sum of root durations, this machine's trace source). *)
  let measure cfg =
    let config =
      {
        Machine.default_config with
        Machine.ram_pages = cfg.ram_pages;
        swap_pages = cfg.swap_pages;
        trace_buf = Some 16384;
      }
    in
    let sys = V.boot ~config () in
    let m = V.machine sys in
    Machine.set_label m V.name;
    let ps = Machine.page_size m in
    let spans = m.Machine.spans in
    let vm = V.new_vmspace sys in
    let vn =
      Vfs.create_file m.Machine.vfs ~name:"/data/lockstat"
        ~size:(cfg.file_pages * ps)
    in
    let fvpn =
      V.mmap sys vm ~npages:cfg.file_pages
        ~prot:{ Pmap.Prot.r = true; w = false; x = false }
        ~share:Vmtypes.Shared
        (Vmtypes.File (vn, 0))
    in
    let avpn =
      V.mmap sys vm ~npages:cfg.anon_pages ~prot:Pmap.Prot.rw
        ~share:Vmtypes.Private Vmtypes.Zero
    in
    let ch = I.pipe sys ~cap_bytes:(8 * ps) () in
    let payload = 2 * ps in
    let folded = Hashtbl.create 256 in
    let wall = ref 0.0 in
    (* The anonymous sweep strides a window per iteration; cycling
       through a region larger than RAM keeps the pagedaemon running and
       later windows faulting back in from swap. *)
    let window = max 1 (cfg.anon_pages / 8) in
    for req = 0 to cfg.requests - 1 do
      Sim.Span.clear spans;
      let root =
        Sim.Span.start spans ~subsys:"lockstat" ~ts:(Machine.now m) "request"
      in
      let base = avpn + req * window mod cfg.anon_pages in
      for i = 0 to window - 1 do
        let vpn = avpn + ((base - avpn + i) mod cfg.anon_pages) in
        V.touch sys vm ~vpn Vmtypes.Write
      done;
      for i = 0 to cfg.file_pages - 1 do
        V.touch sys vm ~vpn:(fvpn + i) Vmtypes.Read
      done;
      let sent = I.send sys vm ch ~policy:Ipc.Copy ~addr:(avpn * ps) ~len:payload in
      (match I.recv sys vm ch ~addr:((avpn + 2) * ps) ~len:sent with
      | I.Data _ | I.Mapped _ -> ());
      Sim.Span.finish spans root ~ts:(Machine.now m) ();
      wall := !wall +. root.Sim.Span.sdur;
      let tree = Sim.Span.take_trace spans ~trace:root.Sim.Span.strace in
      List.iter
        (fun (path, self) ->
          let line = V.name ^ ";" ^ path in
          match Hashtbl.find_opt folded line with
          | Some r -> r := !r +. self
          | None -> Hashtbl.replace folded line (ref self))
        (Sim.Span.fold_paths tree)
    done;
    (* The audit doubles as the lockdep gate: a cycle in the observed
       order graph fails the run, not just the export. *)
    V.audit sys;
    let lines =
      Hashtbl.fold (fun line r acc -> (line, !r) :: acc) folded []
    in
    (lines, !wall, m.Machine.trace_source)
end

module Uvm_run = Run (Uvm.Sys)
module Bsd_run = Run (Bsdvm.Sys)

let run ?(cfg = default_cfg) () =
  Machine.reset_traced ();
  let u_lines, u_wall, u_src = Uvm_run.measure cfg in
  let b_lines, b_wall, b_src = Bsd_run.measure cfg in
  Machine.reset_traced ();
  let folded =
    List.sort
      (fun (_, a) (_, b) -> compare (b : float) a)
      (u_lines @ b_lines)
  in
  {
    lk_requests = cfg.requests;
    lk_wall_us = u_wall +. b_wall;
    lk_folded_us = List.fold_left (fun a (_, s) -> a +. s) 0.0 folded;
    lk_folded = folded;
    lk_sources = [ u_src; b_src ];
  }

(* The folded-stack profile: one "path weight" line per stack, the
   format flamegraph.pl and speedscope ingest directly. *)
let folded_string r =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (line, self) -> Buffer.add_string buf (Printf.sprintf "%s %.3f\n" line self))
    r.lk_folded;
  Buffer.contents buf

(* uvm-sim-lockstat/1 with the profile's reconciliation totals on top:
   consumers can assert folded_total_us ~ wall_us without re-summing. *)
let json ?(cpus = 4) ?(seed = 42) buf r =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\":\"uvm-sim-lockstat/1\",\"cpus\":%d,\"requests\":%d,\"wall_us\":%.3f,\"folded_total_us\":%.3f,\"systems\":"
       cpus r.lk_requests r.lk_wall_us r.lk_folded_us);
  Sim.Trace_export.lockstat_systems buf ~cpus ~seed r.lk_sources;
  Buffer.add_string buf "}\n"

(* Flat per-(system, class) rows for the bench harness: the regression
   gate tracks hold times and projected contention across commits. *)
type bench_row = {
  br_system : string;
  br_cls : string;
  br_acquires : int;
  br_reads : int;
  br_writes : int;
  br_mean_hold_us : float;
  br_max_hold_us : float;
  br_mean_wait_us : float;  (** projected, at [cpus] CPUs *)
  br_utilization : float;
}

let bench_rows ?(cpus = 4) r =
  List.concat_map
    (fun (src : Sim.Trace_export.source) ->
      match src.Sim.Trace_export.locks with
      | None -> []
      | Some reg ->
          List.filter_map
            (fun (cv : Sim.Lockstat.class_view) ->
              if cv.Sim.Lockstat.cv_acquires = 0 then None
              else
                let wait, util =
                  match
                    Sim.Lockstat.project reg ~cls:cv.Sim.Lockstat.cv_cls ~cpus
                      ~seed:42
                  with
                  | Some pj ->
                      ( pj.Sim.Lockstat.pj_mean_wait_us,
                        pj.Sim.Lockstat.pj_utilization )
                  | None -> (0.0, 0.0)
                in
                Some
                  {
                    br_system = src.Sim.Trace_export.label;
                    br_cls = cv.Sim.Lockstat.cv_cls;
                    br_acquires = cv.Sim.Lockstat.cv_acquires;
                    br_reads = cv.Sim.Lockstat.cv_reads;
                    br_writes = cv.Sim.Lockstat.cv_writes;
                    br_mean_hold_us = Sim.Histogram.mean cv.Sim.Lockstat.cv_hold;
                    br_max_hold_us = cv.Sim.Lockstat.cv_max_hold_us;
                    br_mean_wait_us = wait;
                    br_utilization = util;
                  })
            (Sim.Lockstat.views reg))
    r.lk_sources

let print ?(cpus = 4) r =
  Report.title "Lock observatory: per-class holds and projected contention";
  Printf.printf "%d requests/system, wall %.0f us, folded %.0f us (%+.2f%%)\n"
    r.lk_requests r.lk_wall_us r.lk_folded_us
    (if r.lk_wall_us > 0.0 then
       100.0 *. (r.lk_folded_us -. r.lk_wall_us) /. r.lk_wall_us
     else 0.0);
  List.iter
    (fun (src : Sim.Trace_export.source) ->
      match src.Sim.Trace_export.locks with
      | None -> ()
      | Some reg ->
          Printf.printf "\n%s:\n" src.Sim.Trace_export.label;
          Printf.printf "  %-10s %10s %8s %8s %12s %12s %14s %10s\n" "class"
            "acq" "reads" "writes" "mean_hold" "max_hold" "mean_wait" "util";
          List.iter
            (fun (cv : Sim.Lockstat.class_view) ->
              if cv.Sim.Lockstat.cv_acquires > 0 then begin
                let wait, util =
                  match
                    Sim.Lockstat.project reg ~cls:cv.Sim.Lockstat.cv_cls ~cpus
                      ~seed:42
                  with
                  | Some pj ->
                      ( Printf.sprintf "%.1f" pj.Sim.Lockstat.pj_mean_wait_us,
                        Printf.sprintf "%.2f" pj.Sim.Lockstat.pj_utilization )
                  | None -> ("-", "-")
                in
                Printf.printf "  %-10s %10d %8d %8d %12.1f %12.1f %14s %10s\n"
                  cv.Sim.Lockstat.cv_cls cv.Sim.Lockstat.cv_acquires
                  cv.Sim.Lockstat.cv_reads cv.Sim.Lockstat.cv_writes
                  (Sim.Histogram.mean cv.Sim.Lockstat.cv_hold)
                  cv.Sim.Lockstat.cv_max_hold_us wait util
              end)
            (Sim.Lockstat.views reg);
          Printf.printf
            "  (mean_wait/util: would-be contention replayed at %d CPUs; \
             util > 1 means the class saturates)\n"
            cpus;
          (match Sim.Lockstat.cycles reg with
          | [] -> Printf.printf "  lock order: acyclic\n"
          | cycles ->
              List.iter
                (fun cyc ->
                  Printf.printf "  ORDER CYCLE: %s\n"
                    (String.concat " -> " (cyc @ [ List.hd cyc ])))
                cycles))
    r.lk_sources

(** Figure 5 — anonymous memory allocation time on a 32 MB machine.

    Allocate and touch M megabytes of zero-fill memory.  Once M exceeds
    physical memory the pagedaemon must push dirty anonymous pages to
    swap: UVM reassigns their swap locations into one contiguous run and
    writes multi-page clusters; BSD VM writes one page per I/O operation.
    The paper's plot: both flat and equal until ~28 MB, then BSD's curve
    climbs several times faster (at 50 MB roughly 45 s vs 15-20 s). *)

module Vmtypes = Vmiface.Vmtypes

let sizes_mb = [ 4; 8; 12; 16; 20; 24; 28; 32; 36; 40; 44; 48 ]

module Make (V : Vmiface.Vm_sig.VM_SYS) = struct
  let time_for mb =
    let config = Vmiface.Machine.config_mb ~ram_mb:32 ~swap_mb:128 () in
    let sys = V.boot ~config () in
    let mach = V.machine sys in
    let vm = V.new_vmspace sys in
    let npages = mb * 256 (* 4 KB pages per MB *) in
    let clock = mach.Vmiface.Machine.clock in
    let t0 = Sim.Simclock.now clock in
    let vpn =
      V.mmap sys vm ~npages ~prot:Pmap.Prot.rw ~share:Vmtypes.Private
        Vmtypes.Zero
    in
    V.access_range sys vm ~vpn ~npages Vmtypes.Write;
    Sim.Simclock.now clock -. t0

  let run () = List.map (fun mb -> (mb, time_for mb)) sizes_mb
end

module B = Make (Bsdvm.Sys)
module U = Make (Uvm.Sys)

type result = (int * float * float) list

let run () : result =
  List.map2 (fun (n, bsd) (_, uvm) -> (n, bsd, uvm)) (B.run ()) (U.run ())

let print_result (r : result) =
  Report.title
    "Figure 5: anonymous memory allocation time, 32MB RAM (paper: curves split past RAM size, BSD ~2.5-3x slower at 48MB)";
  Report.row4 "allocation (MB)" "BSD VM" "UVM" "ratio";
  List.iter
    (fun (mb, bsd, uvm) ->
      Report.row4 (string_of_int mb) (Report.seconds bsd) (Report.seconds uvm)
        (Report.ratio bsd uvm))
    r

let print () = print_result (run ())

(** Table 3 — single-page map / fault / unmap time (µs, paper):

    {v
    fault/mapping        BSD VM   UVM
    read/shared file         24    21
    read/private file        48    22
    write/shared file       113   100
    write/private file       80    67
    read/zero fill           60    49
    write/zero fill          60    48
    v}

    Warm micro-benchmark: map one page, touch it, unmap; averaged over
    many iterations with the file data already resident.  The BSD numbers
    carry the two-step mapping, the pager-structure/hash work and — for
    private read faults — the needless shadow-object allocation the paper
    calls out. *)

module Vmtypes = Vmiface.Vmtypes

type case = {
  case_name : string;
  share : Vmtypes.share;
  source_file : bool;
  access : Vmtypes.access;
}

let cases =
  [
    { case_name = "read/shared file"; share = Shared; source_file = true; access = Read };
    { case_name = "read/private file"; share = Private; source_file = true; access = Read };
    { case_name = "write/shared file"; share = Shared; source_file = true; access = Write };
    { case_name = "write/private file"; share = Private; source_file = true; access = Write };
    { case_name = "read/zero fill"; share = Private; source_file = false; access = Read };
    { case_name = "write/zero fill"; share = Private; source_file = false; access = Write };
  ]

module Make (V : Vmiface.Vm_sig.VM_SYS) = struct
  let iterations = 200

  let measure_case case =
    let sys = V.boot () in
    let mach = V.machine sys in
    let vfs = mach.Vmiface.Machine.vfs in
    let vn = Vfs.create_file vfs ~name:"/tmp/bench-file" ~size:8192 in
    let vm = V.new_vmspace sys in
    (* Warm the file pages into memory so the loop measures VM work, not
       disk I/O (the paper's numbers are warm too: 1M cycles averaged). *)
    let warm =
      V.mmap sys vm ~npages:1 ~prot:Pmap.Prot.read ~share:Vmtypes.Shared
        (Vmtypes.File (vn, 0))
    in
    V.touch sys vm ~vpn:warm Vmtypes.Read;
    V.munmap sys vm ~vpn:warm ~npages:1;
    let prot =
      match case.access with
      | Vmtypes.Read -> Pmap.Prot.read
      | Vmtypes.Write -> Pmap.Prot.rw
    in
    let source =
      if case.source_file then Vmtypes.File (vn, 0) else Vmtypes.Zero
    in
    let one () =
      let vpn =
        V.mmap sys vm ~npages:1 ~prot ~share:case.share source
      in
      V.touch sys vm ~vpn case.access;
      V.munmap sys vm ~vpn ~npages:1
    in
    (* A few warm-up rounds, then the measured ones. *)
    for _ = 1 to 10 do
      one ()
    done;
    let clock = mach.Vmiface.Machine.clock in
    let t0 = Sim.Simclock.now clock in
    for _ = 1 to iterations do
      one ()
    done;
    (Sim.Simclock.now clock -. t0) /. float_of_int iterations

  let run () = List.map (fun c -> (c.case_name, measure_case c)) cases
end

module B = Make (Bsdvm.Sys)
module U = Make (Uvm.Sys)

type result = (string * float * float) list

let run () : result =
  List.map2
    (fun (label, bsd) (_, uvm) -> (label, bsd, uvm))
    (B.run ()) (U.run ())

let paper =
  [ (24., 21.); (48., 22.); (113., 100.); (80., 67.); (60., 49.); (60., 48.) ]

let print_result (r : result) =
  Report.title "Table 3: single-page map-fault-unmap time (paper: see doc comment)";
  Report.row4 "Fault/mapping" "BSD VM" "UVM" "ratio";
  List.iter
    (fun (label, bsd, uvm) ->
      Report.row4 label (Report.micros bsd) (Report.micros uvm)
        (Report.ratio bsd uvm))
    r

let print () = print_result (run ())

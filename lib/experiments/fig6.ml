(** Figure 6 — fork-and-wait overhead vs. amount of anonymous memory.

    The parent allocates and touches M megabytes of anonymous memory, then
    repeatedly forks a child and waits for it.  In the upper pair of
    curves the child writes to its memory once (one copy-on-write fault)
    before exiting; in the lower pair it exits immediately.  The cost
    grows linearly with M — write-protecting the parent's resident pages
    and tearing down the child's address space are per-page — and BSD VM's
    line is steeper than UVM's at every size (paper: up to ~5000 µs at
    15 MB). *)

module Vmtypes = Vmiface.Vmtypes

let sizes_mb = [ 0; 1; 2; 4; 6; 8; 10; 12; 15 ]
let iterations = 20

module Make (V : Vmiface.Vm_sig.VM_SYS) = struct
  let time_for ~touch mb =
    let config = Vmiface.Machine.config_mb ~ram_mb:64 () in
    let sys = V.boot ~config () in
    let mach = V.machine sys in
    let vm = V.new_vmspace sys in
    let npages = max 1 (mb * 256) in
    let vpn =
      V.mmap sys vm ~npages ~prot:Pmap.Prot.rw ~share:Vmtypes.Private
        Vmtypes.Zero
    in
    (* Parent data is resident and dirty, as in the paper's benchmark. *)
    if mb > 0 then V.access_range sys vm ~vpn ~npages Vmtypes.Write;
    let cycle () =
      let child = V.fork sys vm in
      if touch then V.touch sys child ~vpn Vmtypes.Write;
      V.destroy_vmspace sys child
    in
    cycle () (* warm-up *);
    let clock = mach.Vmiface.Machine.clock in
    let t0 = Sim.Simclock.now clock in
    for _ = 1 to iterations do
      cycle ()
    done;
    (Sim.Simclock.now clock -. t0) /. float_of_int iterations

  let run ~touch = List.map (fun mb -> (mb, time_for ~touch mb)) sizes_mb
end

module B = Make (Bsdvm.Sys)
module U = Make (Uvm.Sys)

type result = {
  touched : (int * float * float) list;  (** MB, BSD µs, UVM µs *)
  untouched : (int * float * float) list;
}

let run () : result =
  let zip b u = List.map2 (fun (n, x) (_, y) -> (n, x, y)) b u in
  {
    touched = zip (B.run ~touch:true) (U.run ~touch:true);
    untouched = zip (B.run ~touch:false) (U.run ~touch:false);
  }

let print_result (r : result) =
  Report.title
    "Figure 6: fork+wait time vs anonymous memory (paper: linear, BSD above UVM, ~2000-5000us at 15MB)";
  print_endline "child writes once before exiting:";
  Report.row4 "anon memory (MB)" "BSD VM" "UVM" "ratio";
  List.iter
    (fun (mb, bsd, uvm) ->
      Report.row4 (string_of_int mb) (Report.micros bsd) (Report.micros uvm)
        (Report.ratio bsd uvm))
    r.touched;
  print_endline "child exits immediately:";
  Report.row4 "anon memory (MB)" "BSD VM" "UVM" "ratio";
  List.iter
    (fun (mb, bsd, uvm) ->
      Report.row4 (string_of_int mb) (Report.micros bsd) (Report.micros uvm)
        (Report.ratio bsd uvm))
    r.untouched

let print () = print_result (run ())

(** The comparative efficacy report — the provenance ledger's derived
    analytics (DESIGN.md §10) for UVM and BSD VM over one mixed workload.

    The workload runs on a deliberately small machine (2 MB RAM) so both
    kernels page, and exercises every ledger dimension: madvise-mode
    sweeps over a pre-warmed file (fault-ahead hit rates per advice), a
    strided pass that abandons its premaps (waste), anonymous pressure
    past RAM (pageout clusters, swap-slot reassignment, pageins on the
    return pass), a COW fork, wiring, msync-driven vnode writeback and
    map-entry churn.  The result is the two machines' trace sources;
    [Sim.Trace_export.print_report] / [report_json] render their merged
    ledgers side by side. *)

module Vmtypes = Vmiface.Vmtypes

module Make (V : Vmiface.Vm_sig.VM_SYS) = struct
  let run ~quick () =
    let scale n = if quick then max 1 (n / 4) else n in
    let file_pages = scale 128 in
    let config = Vmiface.Machine.config_mb ~ram_mb:2 ~swap_mb:16 () in
    let sys = V.boot ~config () in
    let mach = V.machine sys in
    Vmiface.Machine.set_label mach V.name;
    let vfs = mach.Vmiface.Machine.vfs in
    let vn =
      Vfs.create_file vfs ~name:"/data/corpus" ~size:(file_pages * 4096)
    in
    let vm = V.new_vmspace sys in
    let map_file ?(npages = file_pages) prot share =
      V.mmap sys vm ~npages ~prot ~share (Vmtypes.File (vn, 0))
    in
    (* Warm the file into the page cache so fault-ahead has resident
       neighbours to premap on the measured sweeps. *)
    let warm = map_file Pmap.Prot.read Vmtypes.Shared in
    V.access_range sys vm ~vpn:warm ~npages:file_pages Vmtypes.Read;
    V.munmap sys vm ~vpn:warm ~npages:file_pages;
    (* Sequential sweep under each advice: premaps resolve as used when
       the sweep reaches them, the remainder as wasted at munmap. *)
    List.iter
      (fun advice ->
        let vpn = map_file Pmap.Prot.read Vmtypes.Shared in
        V.madvise sys vm ~vpn ~npages:file_pages advice;
        V.access_range sys vm ~vpn ~npages:file_pages Vmtypes.Read;
        V.munmap sys vm ~vpn ~npages:file_pages)
      [ Vmtypes.Adv_normal; Vmtypes.Adv_sequential; Vmtypes.Adv_random ];
    (* Strided pass: touch every 8th page and abandon the rest, so most
       premapped neighbours die unused. *)
    let vpn = map_file Pmap.Prot.read Vmtypes.Shared in
    let i = ref 0 in
    while !i < file_pages do
      V.touch sys vm ~vpn:(vpn + !i) Vmtypes.Read;
      i := !i + 8
    done;
    V.munmap sys vm ~vpn ~npages:file_pages;
    (* Dirty a shared file window and msync it: vnode pageout, clustered
       under UVM, page-at-a-time under BSD VM. *)
    let wpages = scale 32 in
    let wr = map_file ~npages:wpages Pmap.Prot.rw Vmtypes.Shared in
    V.access_range sys vm ~vpn:wr ~npages:wpages Vmtypes.Write;
    V.msync sys vm ~vpn:wr ~npages:wpages;
    V.munmap sys vm ~vpn:wr ~npages:wpages;
    (* COW fork: the child's writes promote every inherited page. *)
    let cow_pages = scale 32 in
    let cvpn =
      V.mmap sys vm ~npages:cow_pages ~prot:Pmap.Prot.rw
        ~share:Vmtypes.Private Vmtypes.Zero
    in
    V.access_range sys vm ~vpn:cvpn ~npages:cow_pages Vmtypes.Write;
    let child = V.fork sys vm in
    V.access_range sys child ~vpn:cvpn ~npages:cow_pages Vmtypes.Write;
    V.destroy_vmspace sys child;
    (* Wire a corner of it (mlock), then release everything. *)
    V.mlock sys vm ~vpn:cvpn ~npages:(min 8 cow_pages);
    V.munlock sys vm ~vpn:cvpn ~npages:(min 8 cow_pages);
    V.munmap sys vm ~vpn:cvpn ~npages:cow_pages;
    (* Anonymous pressure past RAM: the write pass forces pageout, the
       read pass pages everything back in (residency + inter-fault
       samples on both sides of the trip). *)
    let big = config.Vmiface.Machine.ram_pages + scale 512 in
    let avpn =
      V.mmap sys vm ~npages:big ~prot:Pmap.Prot.rw ~share:Vmtypes.Private
        Vmtypes.Zero
    in
    V.access_range sys vm ~vpn:avpn ~npages:big Vmtypes.Write;
    V.access_range sys vm ~vpn:avpn ~npages:big Vmtypes.Read;
    (* Dirty everything again: the next pageout re-clusters pages that
       already hold swap slots, so UVM's dynamic reassignment (§6) shows
       up in the distance distribution while BSD VM's fixed slots yield
       no samples. *)
    V.access_range sys vm ~vpn:avpn ~npages:big Vmtypes.Write;
    V.access_range sys vm ~vpn:avpn ~npages:big Vmtypes.Read;
    V.munmap sys vm ~vpn:avpn ~npages:big;
    (* Map-entry churn, with a vslock/vsunlock inside each iteration —
       the wired-buffer case that fragments the BSD map (§3.2) and shows
       up in the live-entry census. *)
    for _ = 1 to scale 64 do
      let v =
        V.mmap sys vm ~npages:4 ~prot:Pmap.Prot.rw ~share:Vmtypes.Private
          Vmtypes.Zero
      in
      V.touch sys vm ~vpn:v Vmtypes.Write;
      let buf = V.vslock sys vm ~vpn:v ~npages:2 in
      V.vsunlock sys vm buf;
      V.munmap sys vm ~vpn:v ~npages:4
    done;
    V.destroy_vmspace sys vm;
    Vfs.vrele vfs vn;
    mach.Vmiface.Machine.trace_source
end

module B = Make (Bsdvm.Sys)
module U = Make (Uvm.Sys)

type result = Sim.Trace_export.source list

let run ?(quick = false) () : result = [ U.run ~quick (); B.run ~quick () ]
let print_result (r : result) = Sim.Trace_export.print_report r
let print () = print_result (run ())

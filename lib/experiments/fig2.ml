(** Figure 2 — BSD VM object cache effect on file access.

    An Apache-like server memory-maps each of N 64 KB files and reads
    every byte, over and over.  Under BSD VM the object cache holds at
    most one hundred unreferenced objects: past 100 files, every pass
    throws away file data that is still resident and re-reads it from
    disk, even though memory is plentiful.  UVM has no second cache — the
    data persists exactly as long as the vnode does — so its pass time
    stays flat across the whole range (paper's log-scale plot jumps from
    ~0.03 s to seconds at the 100-file cliff). *)

module Vmtypes = Vmiface.Vmtypes

let file_pages = 16 (* 64 KB files *)
let counts = [ 25; 50; 75; 100; 125; 150; 200; 300; 400; 500 ]

module Make (V : Vmiface.Vm_sig.VM_SYS) = struct
  let pass sys vm nfiles =
    let vfs = (V.machine sys).Vmiface.Machine.vfs in
    for i = 0 to nfiles - 1 do
      let vn = Vfs.lookup vfs ~name:(Printf.sprintf "/www/doc-%03d" i) in
      let vpn =
        V.mmap sys vm ~npages:file_pages ~prot:Pmap.Prot.read
          ~share:Vmtypes.Shared
          (Vmtypes.File (vn, 0))
      in
      V.access_range sys vm ~vpn ~npages:file_pages Vmtypes.Read;
      V.munmap sys vm ~vpn ~npages:file_pages;
      Vfs.vrele vfs vn
    done

  let time_for nfiles =
    (* 64 MB of RAM: memory is plentiful; the effect is purely the cache. *)
    let config = Vmiface.Machine.config_mb ~ram_mb:64 () in
    let sys = V.boot ~config () in
    let mach = V.machine sys in
    let vfs = mach.Vmiface.Machine.vfs in
    for i = 0 to nfiles - 1 do
      let vn =
        Vfs.create_file vfs
          ~name:(Printf.sprintf "/www/doc-%03d" i)
          ~size:(file_pages * 4096)
      in
      Vfs.vrele vfs vn
    done;
    let vm = V.new_vmspace sys in
    (* Warm pass to populate caches, then the measured steady-state pass. *)
    pass sys vm nfiles;
    let clock = mach.Vmiface.Machine.clock in
    let t0 = Sim.Simclock.now clock in
    pass sys vm nfiles;
    Sim.Simclock.now clock -. t0

  let run () = List.map (fun n -> (n, time_for n)) counts
end

module B = Make (Bsdvm.Sys)
module U = Make (Uvm.Sys)

type result = (int * float * float) list

let run () : result =
  List.map2
    (fun (n, bsd) (_, uvm) -> (n, bsd, uvm))
    (B.run ()) (U.run ())

let print_result (r : result) =
  Report.title
    "Figure 2: time to mmap+read N 64KB files (paper: BSD jumps ~100x past 100 files; UVM flat)";
  Report.row4 "# of 64KB files" "BSD VM" "UVM" "ratio";
  List.iter
    (fun (n, bsd, uvm) ->
      Report.row4 (string_of_int n) (Report.seconds bsd) (Report.seconds uvm)
        (Report.ratio bsd uvm))
    r

let print () = print_result (run ())

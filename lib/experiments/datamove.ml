(** Section 7 — VM-based data movement vs. copying.

    Paper: a single-page loanout to the networking subsystem took 26% less
    time than copying; a 256-page loanout took 78% less.  We time a
    simulated socket send of n pages under three mechanisms:
    - bulk copy into kernel buffers (the baseline);
    - page loanout (wire + write-protect, zero copies);
    - page transfer into a second process (loan-as-anons + amap import);
    - map-entry passing of the same range (cheapest per page, but
      fragments maps when used on small ranges).

    These are UVM-only mechanisms; BSD VM has no equivalent (paper §1.1),
    which is why this experiment has no BSD column. *)

module Vmtypes = Vmiface.Vmtypes
module S = Uvm.Sys

let sizes = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

type row = {
  npages : int;
  copy_us : float;
  loan_us : float;
  transfer_us : float;
  mexp_us : float;
}

let iterations = 50

let setup npages =
  let sys = S.boot () in
  let vm = S.new_vmspace sys in
  let vpn =
    S.mmap sys vm ~npages ~prot:Pmap.Prot.rw ~share:Vmtypes.Private
      Vmtypes.Zero
  in
  S.access_range sys vm ~vpn ~npages Vmtypes.Write;
  (sys, vm, vpn)

let timed sys ~warmup f =
  let clock = (S.machine sys).Vmiface.Machine.clock in
  for _ = 1 to warmup do
    f ()
  done;
  let t0 = Sim.Simclock.now clock in
  for _ = 1 to iterations do
    f ()
  done;
  (Sim.Simclock.now clock -. t0) /. float_of_int iterations

let measure npages =
  let sys, vm, vpn = setup npages in
  let copy_us =
    timed sys ~warmup:2 (fun () ->
        let kpages = Uvm.copy_to_kernel sys vm ~vpn ~npages in
        Uvm.copy_finish sys kpages)
  in
  let loan_us =
    timed sys ~warmup:2 (fun () ->
        let loan = Uvm.loan_to_kernel vm ~vpn ~npages in
        Uvm.loan_finish sys loan)
  in
  (* Transfer and map-entry passing move the pages to a receiver process;
     the receiver unmaps what it received each round. *)
  let receiver = S.new_vmspace sys in
  let transfer_us =
    timed sys ~warmup:2 (fun () ->
        let dst_vpn =
          Uvm.page_transfer vm ~vpn ~npages ~dst:receiver ~prot:Pmap.Prot.rw
        in
        S.munmap sys receiver ~vpn:dst_vpn ~npages)
  in
  let mexp_us =
    timed sys ~warmup:2 (fun () ->
        let dst_vpn =
          Uvm.mexp_extract vm ~vpn ~npages ~dst:receiver Uvm.Mexp.Share
        in
        S.munmap sys receiver ~vpn:dst_vpn ~npages)
  in
  { npages; copy_us; loan_us; transfer_us; mexp_us }

let run () = List.map measure sizes

let improvement copy other = 100.0 *. (1.0 -. (other /. copy))

let print_result rows =
  Report.title
    "Section 7: data movement, n-page send (paper: loanout 26%% less than copy at 1 page, 78%% less at 256)";
  Printf.printf "%-8s %12s %12s %12s %12s %10s\n" "pages" "copy" "loanout"
    "transfer" "mexp" "loan gain";
  List.iter
    (fun r ->
      Printf.printf "%-8d %12s %12s %12s %12s %9.0f%%\n" r.npages
        (Report.micros r.copy_us) (Report.micros r.loan_us)
        (Report.micros r.transfer_us) (Report.micros r.mexp_us)
        (improvement r.copy_us r.loan_us))
    rows

let print () = print_result (run ())

(** Chaos soak: the overload lifeboat under composed failures.

    Not a paper artifact: the robustness harness for DESIGN.md §14.  A
    seeded {!Sim.Chaos} scenario schedules overlapping fault phases —
    fork/exit churn, a transient I/O error storm, a memory-pressure
    spike that overcommits RAM+swap, a swap-device death and a
    resource-limit squeeze — over several simulated seconds, on both
    kernels.  Worker processes run their syscalls through the
    {!Oslayer.Procsim} overload manager, so the full ladder is
    exercised: rlimit denials, whole-process swapout/swapin, OOM victim
    selection, signal-style kills, and IPC backpressure against parked
    or reaped receivers.

    Every epoch the full invariant audit runs; every OOM kill is stamped
    with the phases active when it happened.  The run is gated on SLOs:
    zero audit failures, zero lost (tag-verified) pages, bounded p99
    fault latency, and zero unattributed kills. *)

module Vmtypes = Vmiface.Vmtypes
module Machine = Vmiface.Machine
module Chaos = Sim.Chaos

type cfg = {
  ram_pages : int;
  fast_pages : int;
  slow_pages : int;
  len_us : float;  (** simulated span the scenario covers *)
  epoch_us : float;  (** idle time charged per epoch on top of op costs *)
  workers : int;  (** long-lived tag-verified processes *)
  worker_pages : int;  (** private working set per worker *)
  spike_pages : int;  (** pressure-phase working set (overcommits swap) *)
  p99_bound_us : float;  (** SLO: worker fault latency p99 must stay under *)
}

(* Sized so the spike's full working set overcommits RAM + swap with a
   couple of epochs' touching to spare: exhaustion (and so the OOM
   ladder) must happen *inside* the pressure window, while the I/O storm
   is still degrading pageout. *)
let full_cfg =
  {
    ram_pages = 128;
    fast_pages = 64;
    slow_pages = 192;
    len_us = 12_000_000.0;
    epoch_us = 10_000.0;
    workers = 3;
    worker_pages = 32;
    spike_pages = 320;
    p99_bound_us = 100_000.0;
  }

let quick_cfg =
  {
    full_cfg with
    ram_pages = 96;
    fast_pages = 48;
    slow_pages = 144;
    len_us = 4_000_000.0;
    worker_pages = 24;
    spike_pages = 240;
  }

type phase_row = {
  pr_name : string;
  pr_start_us : float;
  pr_len_us : float;
  pr_modes : Chaos.mode list;
  mutable pr_epochs : int;
  mutable pr_oom_kills : int;
  mutable pr_rlimit_denials : int;
  mutable pr_faults : int;
  mutable pr_pageouts : int;
  mutable pr_swapouts : int;
  mutable pr_audit_failures : int;
}

type kill_row = { kr_pid : int; kr_badness : int; kr_phase : string }

type row = {
  so_system : string;
  so_passed : bool;
  so_epochs : int;
  so_time_us : float;
  so_audit_failures : int;
  so_lost_pages : int;
  so_p99_fault_us : float;
  so_p99_bound_us : float;
  so_oom_kills : int;
  so_unattributed_ooms : int;
  so_rlimit_denials : int;
  so_proc_swapouts : int;
  so_proc_swapins : int;
  so_reserve_grabs : int;
  so_send_timeouts : int;
  so_send_peer_dead : int;
  so_kills : kill_row list;
  so_phases : phase_row list;
}

let worker_tag pid i = Printf.sprintf "%08x" ((pid * 8191) + i)

module Make (V : Vmiface.Vm_sig.VM_SYS) = struct
  module Ps = Oslayer.Procsim.Make (V)
  module Overload = Oslayer.Overload

  type worker = { w_proc : Ps.proc; w_vpn : int; w_pages : int }

  let measure cfg ~seed =
    let config =
      Machine.tiered ~fast_pages:cfg.fast_pages ~slow_pages:cfg.slow_pages
        { Machine.default_config with Machine.ram_pages = cfg.ram_pages; seed }
    in
    let sys = V.boot ~config () in
    let mach = V.machine sys in
    let st = mach.Machine.stats in
    let swap = mach.Machine.swap in
    let ps = Machine.page_size mach in
    let mgr = Ps.new_mgr sys in
    Ps.install mgr;
    let scenario =
      Chaos.generate ~seed ~len_us:cfg.len_us ~pressure_pages:cfg.spike_pages
    in
    let phase_rows =
      List.map
        (fun (p : Chaos.phase) ->
          {
            pr_name = p.Chaos.ph_name;
            pr_start_us = p.ph_start_us;
            pr_len_us = p.ph_len_us;
            pr_modes = p.ph_modes;
            pr_epochs = 0;
            pr_oom_kills = 0;
            pr_rlimit_denials = 0;
            pr_faults = 0;
            pr_pageouts = 0;
            pr_swapouts = 0;
            pr_audit_failures = 0;
          })
        scenario.Chaos.sc_phases
    in
    let row_of name = List.find (fun r -> r.pr_name = name) phase_rows in
    (* The scenario clock advances one [epoch_us] tick per epoch,
       independent of how much simulated time the epoch's ops consumed.
       Charged op time balloons exactly when the machine is thrashing —
       the moment chaos must keep pushing — so pacing phases by the
       charged clock would starve the overload phases of epochs.  The
       virtual clock guarantees every phase its share of epochs; the
       charged clock still prices every operation. *)
    let n_epochs = int_of_float (cfg.len_us /. cfg.epoch_us) in
    let vnow = ref 0.0 in
    let active_names () = Chaos.phase_names_at scenario ~now_us:!vnow in
    (* Kill attribution: the OOM policy stamps each victim with the
       phases active at the moment of death. *)
    let kills = ref [] in
    Ps.set_on_kill mgr (fun proc ~badness ->
        let names = active_names () in
        let phase =
          match names with [] -> "unattributed" | ns -> String.concat "+" ns
        in
        List.iter
          (fun n -> (row_of n).pr_oom_kills <- (row_of n).pr_oom_kills + 1)
          names;
        kills :=
          { kr_pid = proc.Ps.pid; kr_badness = badness; kr_phase = phase }
          :: !kills);
    (* Long-lived workers: a private tag-verified working set each, plus
       one IPC pair whose receiver's backlog and liveness get squeezed. *)
    let fresh_worker () =
      let proc = Ps.spawn sys Oslayer.Programs.cat in
      Ps.register mgr proc;
      let vpn =
        V.mmap sys proc.Ps.vm ~npages:cfg.worker_pages ~prot:Pmap.Prot.rw
          ~share:Vmtypes.Private Vmtypes.Zero
      in
      for i = 0 to cfg.worker_pages - 1 do
        V.write_bytes sys proc.Ps.vm
          ~addr:((vpn + i) * ps)
          (Bytes.of_string (worker_tag proc.Ps.pid i))
      done;
      { w_proc = proc; w_vpn = vpn; w_pages = cfg.worker_pages }
    in
    let workers = ref (List.init cfg.workers (fun _ -> fresh_worker ())) in
    let spawn_proc () =
      let proc = Ps.spawn sys Oslayer.Programs.cat in
      Ps.register mgr proc;
      proc
    in
    let sender = ref (spawn_proc ()) in
    let receiver = ref (spawn_proc ()) in
    let chan = ref (Ps.pipe_owned mgr ~owner:!receiver ~cap_bytes:ps ()) in
    let send_timeouts = ref 0 and send_peer_dead = ref 0 in
    (* Fault-latency SLO histogram: simulated wall time of worker page
       touches (includes pageins, retries, swapins — the user-visible
       latency the lifeboat must keep bounded). *)
    let fault_hist = Sim.Histogram.create () in
    let audit_failures = ref 0 in
    (* Mutable chaos state driven by phase transitions. *)
    let storm_plan = ref None in
    let spike : (V.vmspace * int * int) option ref = ref None in
    let dead_devices = ref [] in
    let squeeze = ref None in
    let all_disks () = Vfs.disk mach.Machine.vfs :: Swap.Swaptier.disks swap in
    let set_plan plan =
      List.iter (fun d -> Sim.Disk.set_fault_plan d plan) (all_disks ())
    in
    let phase_spans = Hashtbl.create 8 in
    let enter_phase (p : Chaos.phase) =
      Hashtbl.replace phase_spans p.Chaos.ph_name
        (Sim.Span.start mach.Machine.spans ~subsys:"chaos"
           ~ts:(Machine.now mach) p.Chaos.ph_name);
      List.iter
        (fun mode ->
          match mode with
          | Chaos.Io_storm { read_rate; write_rate } ->
              let plan =
                Sim.Fault_plan.create ~seed:(seed lxor 0x10)
                  ~read_error_rate:read_rate ~write_error_rate:write_rate
                  ~rate_severity:Sim.Fault_plan.Transient ()
              in
              storm_plan := Some plan;
              set_plan (Some plan)
          | Chaos.Device_death { dev_name } ->
              if not (List.mem dev_name !dead_devices) then begin
                dead_devices := dev_name :: !dead_devices;
                Swap.Swaptier.kill_device swap ~name:dev_name
              end
          | Chaos.Pressure_spike { spike_pages } ->
              let vm = V.new_vmspace sys in
              let vpn =
                V.mmap sys vm ~npages:spike_pages ~prot:Pmap.Prot.rw
                  ~share:Vmtypes.Private Vmtypes.Zero
              in
              spike := Some (vm, vpn, spike_pages)
          | Chaos.Rlimit_squeeze { squeeze_resident } ->
              squeeze := Some squeeze_resident;
              List.iter
                (fun w ->
                  w.w_proc.Ps.limits <-
                    {
                      Overload.unlimited with
                      Overload.rl_resident = squeeze_resident;
                      rl_wired = max 2 (squeeze_resident / 4);
                    })
                !workers;
              (* Squeeze the receiver's IPC backlog too, so senders see
                 rlimit denials on the channel path. *)
              (!receiver).Ps.limits <-
                { Overload.unlimited with Overload.rl_backlog = ps / 2 }
          | Chaos.Fork_churn _ -> ())
        p.Chaos.ph_modes
    in
    let exit_phase (p : Chaos.phase) =
      (match Hashtbl.find_opt phase_spans p.Chaos.ph_name with
      | Some sp ->
          Sim.Span.finish mach.Machine.spans sp ~ts:(Machine.now mach)
            ~detail:
              (List.concat_map
                 (fun m -> (("mode", Chaos.mode_name m) :: Chaos.mode_detail m))
                 p.Chaos.ph_modes)
            ();
          Hashtbl.remove phase_spans p.Chaos.ph_name
      | None -> ());
      List.iter
        (fun mode ->
          match mode with
          | Chaos.Io_storm _ ->
              storm_plan := None;
              set_plan None
          | Chaos.Pressure_spike _ -> (
              match !spike with
              | Some (vm, vpn, n) ->
                  V.munmap sys vm ~vpn ~npages:n;
                  V.destroy_vmspace sys vm;
                  spike := None
              | None -> ())
          | Chaos.Rlimit_squeeze _ ->
              squeeze := None;
              List.iter
                (fun w -> w.w_proc.Ps.limits <- Overload.unlimited)
                !workers;
              (!receiver).Ps.limits <- Overload.unlimited
          | Chaos.Device_death _ | Chaos.Fork_churn _ -> ())
        p.Chaos.ph_modes
    in
    (* One epoch of foreground work for every live worker, under limits. *)
    let worker_slice epoch w =
      let proc = w.w_proc in
      if not proc.Ps.dead then
        try
          for k = 0 to 7 do
            let i = ((epoch * 8) + k) * 13 mod w.w_pages in
            let t0 = Machine.now mach in
            Ps.touch_r mgr proc ~vpn:(w.w_vpn + i)
              (if k land 1 = 0 then Vmtypes.Read else Vmtypes.Write);
            Sim.Histogram.observe fault_hist (Machine.now mach -. t0)
          done;
          if epoch land 3 = 0 then begin
            let wb = Ps.vslock_r mgr proc ~vpn:w.w_vpn ~npages:1 in
            V.vsunlock sys proc.Ps.vm wb
          end
        with
        | Overload.Rlimit_exceeded _ ->
            List.iter
              (fun n ->
                (row_of n).pr_rlimit_denials <-
                  (row_of n).pr_rlimit_denials + 1)
              (active_names ())
        | Overload.Killed _ -> ()
        | Vmtypes.Segv _ | Physmem.Out_of_pages -> ()
    in
    let churn_slice n =
      for _ = 1 to n do
        match Ps.spawn sys Oslayer.Programs.cat with
        | proc -> (
            Ps.register mgr proc;
            try
              Ps.run_as mgr proc (fun () ->
                  V.access_range sys proc.Ps.vm
                    ~vpn:proc.Ps.heap.Ps.seg_vpn ~npages:2 Vmtypes.Write);
              if not proc.Ps.dead then Ps.exit_proc sys proc
            with
            | Overload.Killed _ -> ()
            | Vmtypes.Segv _ | Physmem.Out_of_pages ->
                if not proc.Ps.dead then Ps.exit_proc sys proc)
        | exception (Vmtypes.Segv _ | Physmem.Out_of_pages) -> ()
      done
    in
    let spike_slice epoch =
      match !spike with
      | None -> ()
      | Some (vm, vpn, n) -> (
          try
            (* March a window through the spike set so it keeps competing
               for frames (and swap) instead of settling. *)
            for k = 0 to 31 do
              let i = ((epoch * 32) + k) mod n in
              V.touch sys vm ~vpn:(vpn + i) Vmtypes.Write
            done
          with Vmtypes.Segv _ | Physmem.Out_of_pages -> ())
    in
    let ipc_slice epoch =
      (let s = !sender in
       if not s.Ps.dead then
         let addr = s.Ps.heap.Ps.seg_vpn * ps in
         try
           match
             Ps.send_r mgr s !chan ~policy:Ipc.Copy ~addr ~len:(ps / 2)
           with
           | Ok _ -> ()
           | Error Ipc.Timed_out -> incr send_timeouts
           | Error Ipc.Peer_dead -> incr send_peer_dead
         with
         | Overload.Rlimit_exceeded _ -> ()
         | Overload.Killed _ | Vmtypes.Segv _ | Physmem.Out_of_pages -> ());
      let r = !receiver in
      if epoch mod 3 = 0 && not r.Ps.dead then
        let addr = r.Ps.heap.Ps.seg_vpn * ps in
        try
          ignore
            (Ps.recv_r mgr r !chan ~addr ~len:(2 * ps) : Ps.I.delivery)
        with Overload.Killed _ | Vmtypes.Segv _ | Physmem.Out_of_pages -> ()
    in
    (* Main epoch loop. *)
    let t_start = Machine.now mach in
    let epoch = ref 0 in
    let prev_active = ref [] in
    while !epoch < n_epochs do
      let e = !epoch in
      vnow := (float_of_int e +. 0.5) /. float_of_int n_epochs *. cfg.len_us;
      let names = active_names () in
      (* Phase transitions. *)
      List.iter
        (fun (p : Chaos.phase) ->
          let active = List.mem p.Chaos.ph_name names in
          let was = List.mem p.Chaos.ph_name !prev_active in
          if active && not was then enter_phase p;
          if was && not active then exit_phase p)
        scenario.Chaos.sc_phases;
      prev_active := names;
      List.iter (fun n -> (row_of n).pr_epochs <- (row_of n).pr_epochs + 1) names;
      (* Per-phase stats deltas for the epoch. *)
      let before = Sim.Stats.snapshot st in
      (* Foreground work. *)
      List.iter (worker_slice e) !workers;
      ipc_slice e;
      spike_slice e;
      List.iter
        (fun (p : Chaos.phase) ->
          if List.mem p.Chaos.ph_name names then
            List.iter
              (function
                | Chaos.Fork_churn { churn_procs } -> churn_slice churn_procs
                | _ -> ())
              p.Chaos.ph_modes)
        scenario.Chaos.sc_phases;
      (* Replace workers lost to the OOM policy once the spike is off, so
         verification always has survivors to check.  Replacements born
         during a squeeze inherit the squeezed limits. *)
      if Option.is_none !spike then
        workers :=
          List.map
            (fun w ->
              if w.w_proc.Ps.dead then (
                try
                  let fresh = fresh_worker () in
                  (match !squeeze with
                  | Some squeeze_resident ->
                      fresh.w_proc.Ps.limits <-
                        {
                          Overload.unlimited with
                          Overload.rl_resident = squeeze_resident;
                          rl_wired = max 2 (squeeze_resident / 4);
                        }
                  | None -> ());
                  fresh
                with Physmem.Out_of_pages | Vmtypes.Segv _ -> w)
              else w)
            !workers;
      (* The sender respawns even mid-pressure — its sends to the dead
         receiver's channel are how [Peer_dead] backpressure shows up.
         The receiver (and a fresh channel) only come back once the
         spike is off. *)
      (try
         if (!sender).Ps.dead then sender := spawn_proc ();
         if (!receiver).Ps.dead && Option.is_none !spike then begin
           receiver := spawn_proc ();
           chan := Ps.pipe_owned mgr ~owner:!receiver ~cap_bytes:ps ()
         end
       with Physmem.Out_of_pages | Vmtypes.Segv _ -> ());
      (* Epoch audit: the invariants must hold mid-chaos, every epoch. *)
      (try V.audit sys
       with Check.Audit_failure _ ->
         incr audit_failures;
         List.iter
           (fun n ->
             (row_of n).pr_audit_failures <- (row_of n).pr_audit_failures + 1)
           names);
      let d = Sim.Stats.diff ~after:st ~before in
      List.iter
        (fun n ->
          let r = row_of n in
          r.pr_faults <- r.pr_faults + d.Sim.Stats.faults;
          r.pr_pageouts <- r.pr_pageouts + d.Sim.Stats.pageouts;
          r.pr_swapouts <- r.pr_swapouts + d.Sim.Stats.proc_swapouts)
        names;
      Machine.charge mach cfg.epoch_us;
      incr epoch
    done;
    (* Cooldown teardown: close any still-open phase, then verify. *)
    List.iter
      (fun (p : Chaos.phase) ->
        if List.mem p.Chaos.ph_name !prev_active then exit_phase p)
      scenario.Chaos.sc_phases;
    let lost = ref 0 in
    List.iter
      (fun w ->
        let proc = w.w_proc in
        if not proc.Ps.dead then begin
          Ps.swapin_whole mgr proc;
          for i = 0 to w.w_pages - 1 do
            match
              V.read_bytes sys proc.Ps.vm ~addr:((w.w_vpn + i) * ps) ~len:8
            with
            | got ->
                if Bytes.to_string got <> worker_tag proc.Ps.pid i then
                  incr lost
            | exception Vmtypes.Segv _ -> incr lost
          done
        end)
      !workers;
    (* Post-mortem audit with dead devices, reaped processes and drained
       queues all in the final state. *)
    (try V.audit sys with Check.Audit_failure _ -> incr audit_failures);
    Ps.uninstall mgr;
    let p99 = Sim.Histogram.p99 fault_hist in
    let unattributed =
      List.length (List.filter (fun k -> k.kr_phase = "unattributed") !kills)
    in
    {
      so_system = V.name;
      so_passed =
        !audit_failures = 0 && !lost = 0
        && p99 <= cfg.p99_bound_us
        && unattributed = 0;
      so_epochs = !epoch;
      so_time_us = Machine.now mach -. t_start;
      so_audit_failures = !audit_failures;
      so_lost_pages = !lost;
      so_p99_fault_us = p99;
      so_p99_bound_us = cfg.p99_bound_us;
      so_oom_kills = st.Sim.Stats.oom_kills;
      so_unattributed_ooms = unattributed;
      so_rlimit_denials = st.Sim.Stats.rlimit_denials;
      so_proc_swapouts = st.Sim.Stats.proc_swapouts;
      so_proc_swapins = st.Sim.Stats.proc_swapins;
      so_reserve_grabs = st.Sim.Stats.reserve_grabs;
      so_send_timeouts = !send_timeouts;
      so_send_peer_dead = !send_peer_dead;
      so_kills = List.rev !kills;
      so_phases = phase_rows;
    }
end

module U = Make (Uvm.Sys)
module B = Make (Bsdvm.Sys)

type result = { seed : int; len_us : float; rows : row list }

let run ?(quick = false) ?(seed = 42) () : result =
  let cfg = if quick then quick_cfg else full_cfg in
  {
    seed;
    len_us = cfg.len_us;
    rows = [ B.measure cfg ~seed; U.measure cfg ~seed ];
  }

let print_result (r : result) =
  Report.title
    "Chaos soak: %.1fs simulated, seed %d (device death + I/O storm + \
     pressure + rlimit squeeze + churn)"
    (r.len_us /. 1e6) r.seed;
  Printf.printf "%-8s %-6s %6s %5s %5s %9s %5s %7s %7s %7s %8s %8s %9s\n"
    "system" "passed" "epochs" "audit" "lost" "p99_us" "kills" "denials"
    "swapout" "swapin" "reserve" "timeout" "peer_dead";
  List.iter
    (fun s ->
      Printf.printf
        "%-8s %-6s %6d %5d %5d %9.1f %5d %7d %7d %7d %8d %8d %9d\n"
        s.so_system
        (if s.so_passed then "yes" else "NO")
        s.so_epochs s.so_audit_failures s.so_lost_pages s.so_p99_fault_us
        s.so_oom_kills s.so_rlimit_denials s.so_proc_swapouts s.so_proc_swapins
        s.so_reserve_grabs s.so_send_timeouts s.so_send_peer_dead;
      List.iter
        (fun k ->
          Printf.printf "         kill pid=%d badness=%d phase=%s\n" k.kr_pid
            k.kr_badness k.kr_phase)
        s.so_kills;
      List.iter
        (fun p ->
          if p.pr_epochs > 0 then
            Printf.printf
              "         phase %-12s epochs=%-4d kills=%d denials=%d \
               faults=%d pageouts=%d swapouts=%d audit_fail=%d\n"
              p.pr_name p.pr_epochs p.pr_oom_kills p.pr_rlimit_denials
              p.pr_faults p.pr_pageouts p.pr_swapouts p.pr_audit_failures)
        s.so_phases)
    r.rows

let json buf (r : result) =
  let js = Sim.Trace_export.json_string in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema\":\"uvm-sim-soak/1\",\"seed\":%d,\"len_us\":%.1f,\"systems\":["
       r.seed r.len_us);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"label\":";
      js buf s.so_system;
      Buffer.add_string buf
        (Printf.sprintf
           ",\"passed\":%b,\"epochs\":%d,\"time_us\":%.1f,\"slo\":{\"audit_failures\":%d,\"lost_pages\":%d,\"p99_fault_us\":%.3f,\"p99_bound_us\":%.1f,\"oom_kills\":%d,\"unattributed_ooms\":%d},\"counters\":{\"oom_kills\":%d,\"rlimit_denials\":%d,\"proc_swapouts\":%d,\"proc_swapins\":%d,\"reserve_grabs\":%d,\"send_timeouts\":%d,\"send_peer_dead\":%d},\"kills\":["
           s.so_passed s.so_epochs s.so_time_us s.so_audit_failures
           s.so_lost_pages s.so_p99_fault_us s.so_p99_bound_us s.so_oom_kills
           s.so_unattributed_ooms s.so_oom_kills s.so_rlimit_denials
           s.so_proc_swapouts s.so_proc_swapins s.so_reserve_grabs
           s.so_send_timeouts s.so_send_peer_dead);
      List.iteri
        (fun j k ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "{\"pid\":%d,\"badness\":%d,\"phase\":" k.kr_pid
               k.kr_badness);
          js buf k.kr_phase;
          Buffer.add_char buf '}')
        s.so_kills;
      Buffer.add_string buf "],\"phases\":[";
      List.iteri
        (fun j p ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf "{\"name\":";
          js buf p.pr_name;
          Buffer.add_string buf
            (Printf.sprintf
               ",\"start_us\":%.1f,\"len_us\":%.1f,\"modes\":[%s],\"epochs\":%d,\"oom_kills\":%d,\"rlimit_denials\":%d,\"faults\":%d,\"pageouts\":%d,\"proc_swapouts\":%d,\"audit_failures\":%d}"
               p.pr_start_us p.pr_len_us
               (String.concat ","
                  (List.map
                     (fun m ->
                       let b = Buffer.create 16 in
                       js b (Chaos.mode_name m);
                       Buffer.contents b)
                     p.pr_modes))
               p.pr_epochs p.pr_oom_kills p.pr_rlimit_denials p.pr_faults
               p.pr_pageouts p.pr_swapouts p.pr_audit_failures))
        s.so_phases;
      Buffer.add_string buf "]}")
    r.rows;
  Buffer.add_string buf "]}"

let print () = print_result (run ())

(* vmstat-style periodic sampler over simulated time.

   A probe closure captures the machine's gauges and counters into a
   float array once per [interval] of simulated microseconds, driven by
   the clock's on-advance hook — no workload cooperation needed.
   Threshold rules watch a sliding window of samples and surface
   structured warnings (pagedaemon thrash, drain stall) once per
   episode. *)

type sample = { s_ts : float; s_values : float array }

type warning = {
  w_ts : float;
  w_rule : string;
  w_detail : (string * string) list;
}

type rule = {
  r_name : string;
  r_window : int;
  r_check : sample array -> (string * string) list option;
  mutable r_firing : bool;  (* suppress repeats until the condition clears *)
}

type t = {
  interval : float;
  mutable columns : string array;
  mutable probe : (unit -> float array) option;
  buf : sample option array;  (* ring, newest at (next-1) *)
  mutable next : int;
  mutable count : int;
  mutable total : int;
  mutable next_due : float;
  mutable rules : rule list;
  mutable warns : warning list;  (* newest first *)
}

let create ~interval ?(capacity = 1024) () =
  if not (Float.is_finite interval) || interval <= 0.0 then
    invalid_arg "Timeseries.create: interval must be positive";
  if capacity < 2 then invalid_arg "Timeseries.create: capacity must be >= 2";
  {
    interval;
    columns = [||];
    probe = None;
    buf = Array.make capacity None;
    next = 0;
    count = 0;
    total = 0;
    next_due = 0.0;
    rules = [];
    warns = [];
  }

let set_probe t ~columns probe =
  t.columns <- Array.of_list columns;
  t.probe <- Some probe

let columns t = Array.to_list t.columns

let col_index t name =
  let rec find i =
    if i >= Array.length t.columns then None
    else if t.columns.(i) = name then Some i
    else find (i + 1)
  in
  find 0

let add_rule t ~name ~window check =
  if window < 1 then invalid_arg "Timeseries.add_rule: window must be >= 1";
  t.rules <-
    t.rules @ [ { r_name = name; r_window = window; r_check = check; r_firing = false } ]

(* Newest [n] samples, oldest first. *)
let last t n =
  let n = min n t.count in
  let cap = Array.length t.buf in
  let first = (t.next - n + cap) mod cap in
  List.init n (fun i ->
      match t.buf.((first + i) mod cap) with
      | Some s -> s
      | None -> assert false)

let samples t = last t t.count
let recorded t = t.total
let warnings t = List.rev t.warns

let run_rules t ts =
  List.iter
    (fun r ->
      if t.count >= r.r_window then begin
        let window = Array.of_list (last t r.r_window) in
        match r.r_check window with
        | Some detail when not r.r_firing ->
            r.r_firing <- true;
            t.warns <- { w_ts = ts; w_rule = r.r_name; w_detail = detail } :: t.warns
        | Some _ -> ()  (* still in the same episode *)
        | None -> r.r_firing <- false
      end)
    t.rules

let record_sample t ts values =
  let cap = Array.length t.buf in
  t.buf.(t.next) <- Some { s_ts = ts; s_values = values };
  t.next <- (t.next + 1) mod cap;
  if t.count < cap then t.count <- t.count + 1;
  t.total <- t.total + 1;
  run_rules t ts

let sample_now t ~ts =
  match t.probe with
  | None -> ()
  | Some probe -> record_sample t ts (probe ())

(* Clock hook: sample when a due time has been crossed.  One sample per
   crossing — a single huge advance (e.g. a long disk wait) yields one
   sample at the current time, not a backfilled burst, and the next due
   time restarts from now.  Timestamps are therefore strictly
   increasing and at least [interval] apart. *)
let tick t clock =
  let now = Simclock.now clock in
  if now >= t.next_due && t.probe <> None then begin
    sample_now t ~ts:now;
    t.next_due <- now +. t.interval
  end

let attach t clock =
  t.next_due <- Simclock.now clock +. t.interval;
  (* Baseline sample at attach time so rate math has a left endpoint. *)
  sample_now t ~ts:(Simclock.now clock);
  Simclock.set_on_advance clock (fun () -> tick t clock)

(* Per-simulated-second rate of column [col] between two samples. *)
let rate ~col a b =
  let dt_s = (b.s_ts -. a.s_ts) /. 1e6 in
  if dt_s <= 0.0 then 0.0 else (b.s_values.(col) -. a.s_values.(col)) /. dt_s

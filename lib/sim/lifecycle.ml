(* Ledger-derived efficacy analytics.  The physical-page provenance ledger
   (lib/physmem) records per-page lifecycle events; this accumulator turns
   them into the distributions the paper argues about: fault-ahead
   hit/waste per madvise mode (§7), pageout cluster shape and swap-slot
   reassignment distance (§6), page residency and re-fault intervals, and
   a census of live map entries over time (§5).  It lives in [sim] so that
   physmem (which sits below the VM layers) can feed it directly. *)

type madv = Madv_normal | Madv_random | Madv_sequential

let nmadv = 3

let madv_index = function
  | Madv_normal -> 0
  | Madv_random -> 1
  | Madv_sequential -> 2

let madv_of_index = function
  | 0 -> Madv_normal
  | 1 -> Madv_random
  | _ -> Madv_sequential

let madv_name = function
  | Madv_normal -> "normal"
  | Madv_random -> "random"
  | Madv_sequential -> "sequential"

type fill = Fill_zero | Fill_file | Fill_pagein | Fill_cow | Fill_wire

let nfill = 5

let fill_index = function
  | Fill_zero -> 0
  | Fill_file -> 1
  | Fill_pagein -> 2
  | Fill_cow -> 3
  | Fill_wire -> 4

let fill_of_index = function
  | 0 -> Fill_zero
  | 1 -> Fill_file
  | 2 -> Fill_pagein
  | 3 -> Fill_cow
  | _ -> Fill_wire

let fill_name = function
  | Fill_zero -> "demand_zero"
  | Fill_file -> "file_read"
  | Fill_pagein -> "pagein"
  | Fill_cow -> "cow_promote"
  | Fill_wire -> "wire"

type t = {
  fa_mapped : int array;  (* per madv: neighbours mapped by fault-ahead *)
  fa_used : int array;  (* per madv: touched through the mapping *)
  fa_wasted : int array;  (* per madv: evicted/refaulted untouched *)
  fills : int array;  (* per fill kind: fault-in resolutions *)
  cluster_size : Histogram.t;  (* pages per pageout cluster write *)
  cluster_runs : Histogram.t;  (* contiguous slot runs per cluster *)
  reassign_dist : Histogram.t;  (* |new slot - old slot| on reassignment *)
  residency_us : Histogram.t;  (* alloc -> free lifetime of a frame *)
  interfault_us : Histogram.t;  (* time between fault-ins of one frame *)
  frag_entries : Histogram.t;  (* live map entries, sampled per alloc/free *)
  mutable frag_live : int;
  mutable frag_peak : int;
  mutable illegal_transitions : int;  (* ledger state-machine violations *)
}

let create () =
  {
    fa_mapped = Array.make nmadv 0;
    fa_used = Array.make nmadv 0;
    fa_wasted = Array.make nmadv 0;
    fills = Array.make nfill 0;
    cluster_size = Histogram.create ();
    cluster_runs = Histogram.create ();
    reassign_dist = Histogram.create ();
    residency_us = Histogram.create ();
    interfault_us = Histogram.create ();
    frag_entries = Histogram.create ();
    frag_live = 0;
    frag_peak = 0;
    illegal_transitions = 0;
  }

let note_fa_mapped t m = t.fa_mapped.(madv_index m) <- t.fa_mapped.(madv_index m) + 1
let note_fa_used t m = t.fa_used.(madv_index m) <- t.fa_used.(madv_index m) + 1
let note_fa_wasted t m = t.fa_wasted.(madv_index m) <- t.fa_wasted.(madv_index m) + 1
let note_fill t k = t.fills.(fill_index k) <- t.fills.(fill_index k) + 1

let note_cluster t ~size ~runs =
  Histogram.observe t.cluster_size (float_of_int size);
  Histogram.observe t.cluster_runs (float_of_int runs)

let note_reassign t ~dist = Histogram.observe t.reassign_dist (float_of_int (abs dist))
let note_residency t us = Histogram.observe t.residency_us us
let note_interfault t us = Histogram.observe t.interfault_us us

let note_entry_alloc t =
  t.frag_live <- t.frag_live + 1;
  if t.frag_live > t.frag_peak then t.frag_peak <- t.frag_live;
  Histogram.observe t.frag_entries (float_of_int t.frag_live)

let note_entry_free t =
  t.frag_live <- max 0 (t.frag_live - 1);
  Histogram.observe t.frag_entries (float_of_int t.frag_live)

let note_illegal t = t.illegal_transitions <- t.illegal_transitions + 1

let fa_mapped t m = t.fa_mapped.(madv_index m)
let fa_used t m = t.fa_used.(madv_index m)
let fa_wasted t m = t.fa_wasted.(madv_index m)
let fill_count t k = t.fills.(fill_index k)
let frag_live t = t.frag_live
let frag_peak t = t.frag_peak
let illegal_transitions t = t.illegal_transitions

let hist_rows t =
  [
    ("cluster_size_pages", t.cluster_size);
    ("cluster_slot_runs", t.cluster_runs);
    ("reassign_distance_slots", t.reassign_dist);
    ("residency_us", t.residency_us);
    ("interfault_us", t.interfault_us);
    ("live_map_entries", t.frag_entries);
  ]

let merge ~into src =
  for i = 0 to nmadv - 1 do
    into.fa_mapped.(i) <- into.fa_mapped.(i) + src.fa_mapped.(i);
    into.fa_used.(i) <- into.fa_used.(i) + src.fa_used.(i);
    into.fa_wasted.(i) <- into.fa_wasted.(i) + src.fa_wasted.(i)
  done;
  for i = 0 to nfill - 1 do
    into.fills.(i) <- into.fills.(i) + src.fills.(i)
  done;
  List.iter2
    (fun (_, a) (_, b) -> Histogram.merge ~into:a b)
    (hist_rows into) (hist_rows src);
  (* frag_live is an instantaneous gauge; summing gauges across machines is
     the only meaningful aggregate for a fleet snapshot. *)
  into.frag_live <- into.frag_live + src.frag_live;
  into.frag_peak <- max into.frag_peak src.frag_peak;
  into.illegal_transitions <- into.illegal_transitions + src.illegal_transitions

(** Discrete simulated clock.

    All durations and timestamps are in microseconds, matching the units the
    paper reports (Tables 3, Figure 6).  Every VM operation in the simulator
    charges time here via {!advance}; experiments read elapsed time with
    {!now} deltas.  The clock is strictly monotone. *)

type t

val create : unit -> t
(** A fresh clock at time 0. *)

val now : t -> float
(** Current simulated time in microseconds. *)

val advance : t -> float -> unit
(** [advance t us] moves the clock forward by [us] microseconds.
    @raise Invalid_argument if [us] is negative or not finite. *)

val set_on_advance : t -> (unit -> unit) -> unit
(** Install a hook run after every {!advance} (replacing any previous
    one).  Used by {!Timeseries.attach} to sample on time passing; the
    hook must not advance the clock itself. *)

val elapsed_since : t -> float -> float
(** [elapsed_since t t0] is [now t -. t0]. *)

val pp_duration : Format.formatter -> float -> unit
(** Pretty-print a duration, choosing µs / ms / s units. *)

(** Log-bucketed latency histograms.

    Fault-path, lock-hold and pager I/O latencies in the simulator span
    several orders of magnitude (a soft fault is ~10 µs, a clustered
    pageout tens of milliseconds), so buckets grow geometrically: four
    per octave, giving ~19% worst-case relative error on any reported
    percentile.  Values are simulated microseconds but the structure is
    unit-agnostic. *)

type t

val create : unit -> t

val observe : t -> float -> unit
(** Record one sample.  Negative and non-finite samples are ignored. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
(** 0 when empty. *)

val min_value : t -> float
val max_value : t -> float
(** Exact extremes of the observed samples; 0 when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0,100]: a representative value from the
    bucket containing the p-th percentile sample, clamped to the exact
    observed [min,max].  0 when empty. *)

val p50 : t -> float
val p95 : t -> float
val p99 : t -> float

val merge : into:t -> t -> unit
(** Accumulate a second histogram's samples into [into]. *)

(** {1 Named collections}

    A machine keeps one [set] and call sites look up their series by
    name ("fault_us", "pagein_us", ...), creating it on first use. *)

type set

val create_set : unit -> set
val get : set -> string -> t
val rows : set -> (string * t) list
(** Non-empty series sorted by name. *)

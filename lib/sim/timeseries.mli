(** vmstat-style periodic sampler over simulated time.

    A probe closure captures a machine's gauges and counters into a
    float array once per [interval] of simulated microseconds, driven
    from {!Simclock.set_on_advance} — workloads never cooperate, the
    clock itself triggers sampling.  Consumers derive rates between
    samples ({!rate}) and threshold rules watch a sliding window,
    surfacing structured warnings once per episode. *)

type sample = {
  s_ts : float;  (** simulated microseconds at capture *)
  s_values : float array;  (** one slot per column, in column order *)
}

type warning = {
  w_ts : float;
  w_rule : string;
  w_detail : (string * string) list;
}

type t

val create : interval:float -> ?capacity:int -> unit -> t
(** Sampler with a period of [interval] simulated microseconds keeping
    the newest [capacity] samples (default 1024).  Inert until
    {!set_probe} and {!attach}. *)

val set_probe : t -> columns:string list -> (unit -> float array) -> unit
(** Install the capture closure; it must return one value per column.
    Separate from {!create} so the sampler can be handed out (e.g. on a
    trace source) before the machine it probes is fully built. *)

val attach : t -> Simclock.t -> unit
(** Record a baseline sample now and hook the clock so future advances
    sample automatically.  Replaces any previous on-advance hook. *)

val add_rule :
  t ->
  name:string ->
  window:int ->
  (sample array -> (string * string) list option) ->
  unit
(** [check] sees the newest [window] samples (oldest first) after each
    capture, once at least [window] exist.  Returning [Some detail]
    raises a warning; the rule then stays silent until it returns
    [None] once (re-arming), so one episode yields one warning. *)

val columns : t -> string list
val col_index : t -> string -> int option

val samples : t -> sample list
(** Retained samples, oldest first. *)

val last : t -> int -> sample list
(** Newest [n] samples, oldest first. *)

val recorded : t -> int
(** Samples ever captured, including ones lost to the ring. *)

val warnings : t -> warning list
(** Warnings in the order raised. *)

val sample_now : t -> ts:float -> unit
(** Force an immediate capture (used for a final sample at report
    time).  No-op before {!set_probe}. *)

val rate : col:int -> sample -> sample -> float
(** Per-simulated-second rate of one column between two samples
    ([0.] if they coincide). *)

type t = { mutable now : float; mutable tick : (unit -> unit) option }

let create () = { now = 0.0; tick = None }
let now t = t.now

let advance t us =
  if not (Float.is_finite us) || us < 0.0 then
    invalid_arg "Simclock.advance: negative or non-finite duration";
  t.now <- t.now +. us;
  match t.tick with None -> () | Some f -> f ()

let set_on_advance t f = t.tick <- Some f
let elapsed_since t t0 = t.now -. t0

let pp_duration ppf us =
  if us < 1_000.0 then Format.fprintf ppf "%.1fus" us
  else if us < 1_000_000.0 then Format.fprintf ppf "%.2fms" (us /. 1e3)
  else Format.fprintf ppf "%.3fs" (us /. 1e6)

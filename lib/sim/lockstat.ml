type mode = Read | Write

let known_classes =
  [ "map"; "amap"; "object"; "pagequeue"; "swap"; "ipc"; "pdaemon"; "oom" ]

(* A completed hold, kept (bounded) for the contention replay. *)
type interval = {
  iv_inst : int;
  iv_mode : mode;
  iv_start : float;
  iv_dur : float;
}

(* The replay ring grows on demand up to this many intervals per class;
   past it the oldest recordings are overwritten (recent behaviour is
   what the projection should model). *)
let interval_cap = 4096

type cls_stats = {
  c_name : string;
  c_spanned : bool;  (** emit "lock:<cls>" spans for holds of this class *)
  mutable c_instances : int;
  mutable c_acquires : int;
  mutable c_reads : int;
  mutable c_writes : int;
  c_hold : Histogram.t;
  c_read_hold : Histogram.t;
  c_write_hold : Histogram.t;
  c_by_subsys : (string, int ref * float ref) Hashtbl.t;
  mutable c_hold_total : float;
  mutable c_max_hold : float;
  mutable c_iv : interval array;
  mutable c_iv_len : int;  (** live entries *)
  mutable c_iv_next : int;  (** next write position once at capacity *)
}

type lock = {
  l_cls : cls_stats;
  l_name : string;
  l_inst : int;  (** instance id within the class *)
  mutable l_depth : int;
  mutable l_mode : mode;
  mutable l_since : float;
  mutable l_subsys : string;
  mutable l_span : Span.span option;
  mutable l_recorded : bool;  (** pushed on the held stack at acquire *)
  mutable l_observed : bool;  (** announced to the contention observer *)
  mutable l_root : bool;  (** last acquire was a thread-context root *)
}

(* Contention observer events (the simulated-SMP hook): fired on the
   outermost acquire of an instance — before the hold's start timestamp
   is taken, so any wait the observer charges to the clock lands before
   the hold — and on the matching outermost release. *)
type contention_event =
  | Acquired of { cls : string; inst : int; mode : mode; root : bool }
  | Released of { cls : string; inst : int; mode : mode; root : bool }

(* The held stack mixes locks with context-break markers: an
   [acquire_root] pushes its entry with [h_barrier] set, and order edges
   are only drawn from the stack segment at or above the innermost
   barrier (the barrier entry itself included — the root lock legally
   orders before everything acquired under it). *)
type held_entry = { h_lock : lock; h_barrier : bool }

type t = {
  now : unit -> float;
  mutable enabled : bool;
  mutable spans : Span.t option;
  mutable hist : Hist.t option;
  mutable latencies : Histogram.set option;
  classes : (string, cls_stats) Hashtbl.t;
  mutable class_order : string list;  (** registration order, reversed *)
  insts : (string * int, lock) Hashtbl.t;
  mutable held_stack : held_entry list;  (** innermost first *)
  edges : (string * string, int ref) Hashtbl.t;
  mutable window_max : float;
  mutable observer : (contention_event -> unit) option;
}

let create ?(enabled = false) ~now () =
  {
    now;
    enabled;
    spans = None;
    hist = None;
    latencies = None;
    classes = Hashtbl.create 8;
    class_order = [];
    insts = Hashtbl.create 64;
    held_stack = [];
    edges = Hashtbl.create 16;
    window_max = 0.0;
    observer = None;
  }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v
let set_spans t v = t.spans <- v
let set_hist t v = t.hist <- v
let set_latencies t v = t.latencies <- v
let set_observer t v = t.observer <- v

let spans_on t =
  match t.spans with Some s -> Span.enabled s | None -> false

let active t = t.enabled || spans_on t

let get_class t cls =
  match Hashtbl.find_opt t.classes cls with
  | Some c -> c
  | None ->
      let c =
        {
          c_name = cls;
          (* The page queues are manipulated once or more per page op;
             spanning those leaf holds would flood the ring with
             zero-duration entries and evict the spans that matter. *)
          c_spanned = cls <> "pagequeue";
          c_instances = 0;
          c_acquires = 0;
          c_reads = 0;
          c_writes = 0;
          c_hold = Histogram.create ();
          c_read_hold = Histogram.create ();
          c_write_hold = Histogram.create ();
          c_by_subsys = Hashtbl.create 8;
          c_hold_total = 0.0;
          c_max_hold = 0.0;
          c_iv = [||];
          c_iv_len = 0;
          c_iv_next = 0;
        }
      in
      Hashtbl.replace t.classes cls c;
      t.class_order <- cls :: t.class_order;
      c

let register t ~cls name =
  let c = get_class t cls in
  c.c_instances <- c.c_instances + 1;
  {
    l_cls = c;
    l_name = name;
    l_inst = c.c_instances;
    l_depth = 0;
    l_mode = Write;
    l_since = 0.0;
    l_subsys = "none";
    l_span = None;
    l_recorded = false;
    l_observed = false;
    l_root = false;
  }

let instance t ~cls ~id =
  match Hashtbl.find_opt t.insts (cls, id) with
  | Some l -> l
  | None ->
      let l = register t ~cls (cls ^ "#" ^ string_of_int id) in
      Hashtbl.replace t.insts (cls, id) l;
      l

(* Spans opened for lock holds are named "lock:<class>"; the attribution
   walk skips them so a hold is charged to the innermost *kernel* work
   (fault, pdaemon, send...), not to another lock. *)
let lock_span_prefix = "lock:"

let is_lock_span (sp : Span.span) =
  let n = sp.Span.sname in
  String.length n >= 5 && String.sub n 0 5 = lock_span_prefix

let attribution t =
  match t.spans with
  | None -> "none"
  | Some sp -> (
      match Span.innermost sp ~skip:is_lock_span () with
      | Some s -> s.Span.ssubsys
      | None -> "none")

let bump_edge t ~from ~onto =
  if from <> onto then
    match Hashtbl.find_opt t.edges (from, onto) with
    | Some r -> incr r
    | None -> Hashtbl.replace t.edges (from, onto) (ref 1)

(* Draw held-class -> new-class edges from the current context segment:
   every entry down to and including the innermost barrier. *)
let record_edges t lock =
  let onto = lock.l_cls.c_name in
  let rec go = function
    | [] -> ()
    | { h_lock; h_barrier } :: rest ->
        bump_edge t ~from:h_lock.l_cls.c_name ~onto;
        if not h_barrier then go rest
  in
  go t.held_stack

let do_acquire t lock ~mode ~root =
  if lock.l_depth > 0 then lock.l_depth <- lock.l_depth + 1
  else if active t then begin
    lock.l_depth <- 1;
    lock.l_mode <- mode;
    lock.l_root <- root;
    (* The observer fires before the hold timestamp is taken: contention
       wait it charges to the clock extends the wait, not the hold. *)
    (match t.observer with
    | Some f ->
        lock.l_observed <- true;
        f
          (Acquired
             { cls = lock.l_cls.c_name; inst = lock.l_inst; mode; root })
    | None -> lock.l_observed <- false);
    lock.l_since <- t.now ();
    lock.l_subsys <- (if t.enabled then attribution t else "none");
    (match t.spans with
    | Some sp when lock.l_cls.c_spanned ->
        lock.l_span <-
          Some
            (Span.start sp ~subsys:lock.l_cls.c_name ~ts:lock.l_since
               (lock_span_prefix ^ lock.l_cls.c_name))
    | _ -> lock.l_span <- None);
    if t.enabled then begin
      if not root then record_edges t lock;
      t.held_stack <- { h_lock = lock; h_barrier = root } :: t.held_stack;
      lock.l_recorded <- true;
      let c = lock.l_cls in
      c.c_acquires <- c.c_acquires + 1;
      match mode with
      | Read -> c.c_reads <- c.c_reads + 1
      | Write -> c.c_writes <- c.c_writes + 1
    end
    else lock.l_recorded <- false
  end

let acquire t lock ~mode = do_acquire t lock ~mode ~root:false
let acquire_root t lock ~mode = do_acquire t lock ~mode ~root:true

let remove_held t lock =
  let rec go = function
    | [] -> []
    | e :: rest -> if e.h_lock == lock then rest else e :: go rest
  in
  t.held_stack <- go t.held_stack

let push_interval c iv =
  let cap = Array.length c.c_iv in
  if c.c_iv_len < cap then begin
    c.c_iv.(c.c_iv_len) <- iv;
    c.c_iv_len <- c.c_iv_len + 1
  end
  else if cap = 0 then begin
    c.c_iv <- Array.make 64 iv;
    c.c_iv_len <- 1
  end
  else if cap < interval_cap then begin
    let bigger = Array.make (min interval_cap (2 * cap)) iv in
    Array.blit c.c_iv 0 bigger 0 cap;
    c.c_iv <- bigger;
    c.c_iv_len <- cap + 1
  end
  else begin
    c.c_iv.(c.c_iv_next) <- iv;
    c.c_iv_next <- (c.c_iv_next + 1) mod cap
  end

let release t lock =
  if lock.l_depth > 1 then lock.l_depth <- lock.l_depth - 1
  else if lock.l_depth = 1 then begin
    lock.l_depth <- 0;
    let now = t.now () in
    let held_us = now -. lock.l_since in
    if lock.l_observed then begin
      lock.l_observed <- false;
      match t.observer with
      | Some f ->
          f
            (Released
               {
                 cls = lock.l_cls.c_name;
                 inst = lock.l_inst;
                 mode = lock.l_mode;
                 root = lock.l_root;
               })
      | None -> ()
    end;
    (match lock.l_span with
    | Some sp ->
        lock.l_span <- None;
        (match t.spans with
        | Some spc ->
            Span.finish spc sp ~ts:now
              ~detail:
                [
                  ("class", lock.l_cls.c_name); ("instance", lock.l_name);
                ]
              ()
        | None -> ())
    | None -> ());
    if lock.l_recorded then begin
      lock.l_recorded <- false;
      remove_held t lock;
      let c = lock.l_cls in
      Histogram.observe c.c_hold held_us;
      (match lock.l_mode with
      | Read -> Histogram.observe c.c_read_hold held_us
      | Write -> Histogram.observe c.c_write_hold held_us);
      c.c_hold_total <- c.c_hold_total +. held_us;
      if held_us > c.c_max_hold then c.c_max_hold <- held_us;
      if held_us > t.window_max then t.window_max <- held_us;
      (match Hashtbl.find_opt c.c_by_subsys lock.l_subsys with
      | Some (n, tot) ->
          incr n;
          tot := !tot +. held_us
      | None ->
          Hashtbl.replace c.c_by_subsys lock.l_subsys (ref 1, ref held_us));
      push_interval c
        {
          iv_inst = lock.l_inst;
          iv_mode = lock.l_mode;
          iv_start = lock.l_since;
          iv_dur = held_us;
        };
      (* Legacy map-lock trace shape: the Hist.Map event and the
         "map_lock_us" series predate the registry and stay byte-for-byte
         so existing consumers (tests, dashboards) keep working. *)
      if c.c_name = "map" then begin
        (match t.hist with
        | Some h when Hist.enabled h ->
            Hist.record h ~subsys:Hist.Map ~ts:lock.l_since ~dur:held_us
              ~detail:[ ("instance", lock.l_name) ]
              "map_lock"
        | _ -> ());
        match t.latencies with
        | Some set -> Histogram.observe (Histogram.get set "map_lock_us") held_us
        | None -> ()
      end
    end
  end

let held t =
  List.map
    (fun e -> (e.h_lock.l_cls.c_name, e.h_lock.l_name))
    t.held_stack

(* {1 Aggregated views} *)

type class_view = {
  cv_cls : string;
  cv_instances : int;
  cv_acquires : int;
  cv_reads : int;
  cv_writes : int;
  cv_hold : Histogram.t;
  cv_read_hold : Histogram.t;
  cv_write_hold : Histogram.t;
  cv_by_subsys : (string * int * float) list;
  cv_max_hold_us : float;
}

let classes_in_order t =
  let registered = List.rev t.class_order in
  let canonical = List.filter (fun c -> List.mem c registered) known_classes in
  let extra = List.filter (fun c -> not (List.mem c known_classes)) registered in
  canonical @ extra

let view_class c =
  {
    cv_cls = c.c_name;
    cv_instances = c.c_instances;
    cv_acquires = c.c_acquires;
    cv_reads = c.c_reads;
    cv_writes = c.c_writes;
    cv_hold = c.c_hold;
    cv_read_hold = c.c_read_hold;
    cv_write_hold = c.c_write_hold;
    cv_by_subsys =
      Hashtbl.fold
        (fun subsys (n, tot) acc -> (subsys, !n, !tot) :: acc)
        c.c_by_subsys []
      |> List.sort compare;
    cv_max_hold_us = c.c_max_hold;
  }

let views t =
  List.map (fun cls -> view_class (Hashtbl.find t.classes cls))
    (classes_in_order t)

let total_acquires t =
  Hashtbl.fold (fun _ c acc -> acc + c.c_acquires) t.classes 0

let class_hold_us t cls =
  match Hashtbl.find_opt t.classes cls with
  | Some c -> c.c_hold_total
  | None -> 0.0

let take_window_max_us t =
  let v = t.window_max in
  t.window_max <- 0.0;
  v

let top_class t =
  Hashtbl.fold
    (fun _ c best ->
      if c.c_hold_total <= 0.0 then best
      else
        match best with
        | Some (_, tot) when tot >= c.c_hold_total -> best
        | _ -> Some (c.c_name, c.c_hold_total))
    t.classes None

(* {1 Lock-order auditing} *)

let order_edges t =
  Hashtbl.fold (fun (a, b) n acc -> (a, b, !n) :: acc) t.edges []
  |> List.sort compare

let cycles t =
  let adj = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (a, b) _ ->
      let cur = try Hashtbl.find adj a with Not_found -> [] in
      Hashtbl.replace adj a (b :: cur))
    t.edges;
  let found = Hashtbl.create 8 in
  let out = ref [] in
  (* DFS bounded by the path-uniqueness cut: class graphs are tiny. *)
  let rec dfs path node =
    (* [path] is innermost-first and includes [node]. *)
    let next = try Hashtbl.find adj node with Not_found -> [] in
    List.iter
      (fun succ ->
        if List.mem succ path then begin
          (* Cycle: succ -> ... -> node -> succ.  Recover the segment in
             traversal order from the reversed path. *)
          let rec after = function
            | [] -> []
            | x :: rest -> if x = succ then x :: rest else after rest
          in
          let cyc = after (List.rev path) in
          let n = List.length cyc in
          let arr = Array.of_list cyc in
          let best = ref 0 in
          for i = 1 to n - 1 do
            if arr.(i) < arr.(!best) then best := i
          done;
          let norm = List.init n (fun i -> arr.((!best + i) mod n)) in
          let key = String.concat ";" norm in
          if not (Hashtbl.mem found key) then begin
            Hashtbl.replace found key ();
            out := norm :: !out
          end
        end
        else dfs (succ :: path) succ)
      next
  in
  Hashtbl.iter (fun node _ -> dfs [ node ] node) adj;
  List.sort compare !out

(* {1 Would-be-contention model} *)

type projection = {
  pj_cpus : int;
  pj_events : int;
  pj_wait_us : float;
  pj_mean_wait_us : float;
  pj_max_wait_us : float;
  pj_bounces : int;
  pj_utilization : float;
}

(* Chronological copy of a class's interval ring. *)
let intervals_of c =
  let n = c.c_iv_len in
  if n = 0 then [||]
  else begin
    let cap = Array.length c.c_iv in
    let out =
      if n < cap || c.c_iv_next = 0 then Array.sub c.c_iv 0 n
      else
        Array.append
          (Array.sub c.c_iv c.c_iv_next (cap - c.c_iv_next))
          (Array.sub c.c_iv 0 c.c_iv_next)
    in
    Array.sort (fun a b -> compare a.iv_start b.iv_start) out;
    out
  end

type ev = { e_arr : float; e_dur : float; e_mode : mode; e_inst : int; e_cpu : int }

let project t ~cls ~cpus ~seed =
  match Hashtbl.find_opt t.classes cls with
  | None -> None
  | Some c ->
      let ivs = intervals_of c in
      let n = Array.length ivs in
      if n = 0 || cpus < 1 then None
      else begin
        let gaps =
          if n < 2 then [| 1.0 |]
          else
            Array.init (n - 1) (fun i ->
                Float.max 0.0 (ivs.(i + 1).iv_start -. ivs.(i).iv_start))
        in
        let rng = Rng.create ~seed in
        let events = ref [] in
        (* CPU 0 replays the recording verbatim. *)
        Array.iter
          (fun iv ->
            events :=
              {
                e_arr = iv.iv_start;
                e_dur = iv.iv_dur;
                e_mode = iv.iv_mode;
                e_inst = iv.iv_inst;
                e_cpu = 0;
              }
              :: !events)
          ivs;
        (* Every further CPU resamples the recorded arrival process and
           (instance, mode, duration) triples: the same workload shape,
           phase-shifted — a fault storm from another core. *)
        let mean_gap =
          Array.fold_left ( +. ) 0.0 gaps /. float_of_int (Array.length gaps)
        in
        for cpu = 1 to cpus - 1 do
          let arr = ref (ivs.(0).iv_start +. Rng.float rng (Float.max mean_gap 1.0)) in
          for _ = 1 to n do
            let src = ivs.(Rng.int rng n) in
            events :=
              {
                e_arr = !arr;
                e_dur = src.iv_dur;
                e_mode = src.iv_mode;
                e_inst = src.iv_inst;
                e_cpu = cpu;
              }
              :: !events;
            arr := !arr +. gaps.(Rng.int rng (Array.length gaps))
          done
        done;
        let evs = List.sort (fun a b -> compare a.e_arr b.e_arr) !events in
        (* Per-instance reader/writer replay. *)
        let state = Hashtbl.create 16 in
        let wait_total = ref 0.0 in
        let wait_max = ref 0.0 in
        let bounces = ref 0 in
        let busy = ref 0.0 in
        let t_lo = ref infinity in
        let t_hi = ref neg_infinity in
        let nev = ref 0 in
        List.iter
          (fun e ->
            incr nev;
            let write_until, read_until, last_cpu =
              match Hashtbl.find_opt state e.e_inst with
              | Some s -> s
              | None ->
                  let s = (ref 0.0, ref 0.0, ref (-1)) in
                  Hashtbl.replace state e.e_inst s;
                  s
            in
            let start =
              match e.e_mode with
              | Read -> Float.max e.e_arr !write_until
              | Write -> Float.max e.e_arr (Float.max !write_until !read_until)
            in
            let fin = start +. e.e_dur in
            (match e.e_mode with
            | Read -> read_until := Float.max !read_until fin
            | Write -> write_until := fin);
            let wait = start -. e.e_arr in
            wait_total := !wait_total +. wait;
            if wait > !wait_max then wait_max := wait;
            if !last_cpu >= 0 && !last_cpu <> e.e_cpu then incr bounces;
            last_cpu := e.e_cpu;
            busy := !busy +. e.e_dur;
            if e.e_arr < !t_lo then t_lo := e.e_arr;
            if fin > !t_hi then t_hi := fin)
          evs;
        let elapsed = Float.max (!t_hi -. !t_lo) 1e-9 in
        Some
          {
            pj_cpus = cpus;
            pj_events = !nev;
            pj_wait_us = !wait_total;
            pj_mean_wait_us = !wait_total /. float_of_int (max 1 !nev);
            pj_max_wait_us = !wait_max;
            pj_bounces = !bounces;
            pj_utilization = !busy /. elapsed;
          }
      end

let merge ~into src =
  Hashtbl.iter
    (fun cls c ->
      let d = get_class into cls in
      d.c_instances <- d.c_instances + c.c_instances;
      d.c_acquires <- d.c_acquires + c.c_acquires;
      d.c_reads <- d.c_reads + c.c_reads;
      d.c_writes <- d.c_writes + c.c_writes;
      Histogram.merge ~into:d.c_hold c.c_hold;
      Histogram.merge ~into:d.c_read_hold c.c_read_hold;
      Histogram.merge ~into:d.c_write_hold c.c_write_hold;
      Hashtbl.iter
        (fun subsys (n, tot) ->
          match Hashtbl.find_opt d.c_by_subsys subsys with
          | Some (dn, dtot) ->
              dn := !dn + !n;
              dtot := !dtot +. !tot
          | None -> Hashtbl.replace d.c_by_subsys subsys (ref !n, ref !tot))
        c.c_by_subsys;
      d.c_hold_total <- d.c_hold_total +. c.c_hold_total;
      if c.c_max_hold > d.c_max_hold then d.c_max_hold <- c.c_max_hold;
      Array.iter (fun iv -> push_interval d iv) (intervals_of c))
    src.classes;
  Hashtbl.iter
    (fun (a, b) n ->
      match Hashtbl.find_opt into.edges (a, b) with
      | Some r -> r := !r + !n
      | None -> Hashtbl.replace into.edges (a, b) (ref !n))
    src.edges

(** Efficacy analytics derived from the page-provenance ledger.

    [lib/physmem] stamps every physical frame with a compact lifecycle
    record (see DESIGN.md §10); the hooks below fold those events into the
    distributions the paper's quantitative claims are about: fault-ahead
    hit/waste rates split by [madvise] mode (§7), pageout cluster
    size/contiguity and swap-slot reassignment distances (§6), frame
    residency-time and inter-fault histograms, and a live map-entry
    census over time (§5).  One [t] per simulated machine, merged per
    label for reporting by {!Trace_export}. *)

type madv = Madv_normal | Madv_random | Madv_sequential
(** Mirror of [Vmiface.Vmtypes.advice]; duplicated here because [sim]
    sits below the VM interface layer. *)

val nmadv : int
val madv_index : madv -> int
val madv_of_index : int -> madv
val madv_name : madv -> string

(** How a frame's current contents arrived (the ledger's fault-in kind). *)
type fill = Fill_zero | Fill_file | Fill_pagein | Fill_cow | Fill_wire

val nfill : int
val fill_index : fill -> int
val fill_of_index : int -> fill
val fill_name : fill -> string

type t

val create : unit -> t

val note_fa_mapped : t -> madv -> unit
(** A resident neighbour was premapped by fault-ahead under this advice. *)

val note_fa_used : t -> madv -> unit
(** A premapped neighbour was touched through the mapping (fault avoided). *)

val note_fa_wasted : t -> madv -> unit
(** A premapped neighbour was unmapped, evicted, freed or demand-faulted
    without ever being soft-touched: the mapping was in vain. *)

val note_fill : t -> fill -> unit
val note_cluster : t -> size:int -> runs:int -> unit
val note_reassign : t -> dist:int -> unit
val note_residency : t -> float -> unit
val note_interfault : t -> float -> unit
val note_entry_alloc : t -> unit
val note_entry_free : t -> unit
val note_illegal : t -> unit

val fa_mapped : t -> madv -> int
val fa_used : t -> madv -> int
val fa_wasted : t -> madv -> int
val fill_count : t -> fill -> int
val frag_live : t -> int
val frag_peak : t -> int
val illegal_transitions : t -> int

val hist_rows : t -> (string * Histogram.t) list
(** The distribution series, in a fixed order (also the JSON order). *)

val merge : into:t -> t -> unit
(** Accumulate a second machine's ledger analytics (per-label
    aggregation, like [Trace_export.aggregate]). *)

(** Event counters shared by every layer of the simulator.

    A single [Stats.t] is threaded through a simulated system; the
    experiments read counters (page faults for Table 2, map entries for
    Table 1, disk operations for Figures 2/5, ...) and tests assert
    accounting invariants against them. *)

type t = {
  mutable faults : int;  (** page faults taken *)
  mutable fault_ahead_mapped : int;  (** resident neighbours mapped by fault-ahead *)
  mutable fault_ahead_used : int;  (** fault-ahead pages touched before eviction *)
  mutable fault_ahead_wasted : int;  (** fault-ahead pages evicted/refaulted untouched *)
  mutable pageins : int;  (** pages read from backing store *)
  mutable pageouts : int;  (** pages written to backing store *)
  mutable disk_read_ops : int;
  mutable disk_write_ops : int;
  mutable disk_pages_read : int;
  mutable disk_pages_written : int;
  mutable pages_copied : int;
  mutable pages_zeroed : int;
  mutable map_entries_allocated : int;
  mutable map_entries_freed : int;
  mutable objects_allocated : int;
  mutable pager_structs_allocated : int;
  mutable hash_lookups : int;
  mutable collapse_attempts : int;
  mutable collapse_successes : int;
  mutable anons_allocated : int;
  mutable anons_freed : int;
  mutable amaps_allocated : int;
  mutable amaps_freed : int;
  mutable shadow_objects_allocated : int;
  mutable obj_cache_hits : int;
  mutable obj_cache_misses : int;
  mutable obj_cache_evictions : int;
  mutable vnode_recycles : int;
  mutable cow_copies : int;  (** COW faults resolved by copying *)
  mutable cow_reuses : int;  (** COW faults resolved in place (refs = 1) *)
  mutable loanouts : int;
  mutable pages_loaned : int;
  mutable page_transfers : int;
  mutable swap_slots_allocated : int;
  mutable swap_slots_freed : int;
  mutable pmap_enters : int;
  mutable pmap_removes : int;
  mutable pmap_protects : int;
  mutable lock_acquisitions : int;
  mutable map_lock_held_us : float;  (** total simulated time map locks were held *)
  mutable io_errors_injected : int;  (** disk transfers failed by the fault plan *)
  mutable pageout_retries : int;  (** pageout attempts repeated after a transient error *)
  mutable pageouts_recovered : int;  (** pageouts that succeeded after retry/reassignment *)
  mutable pageins_failed : int;  (** pageins abandoned after exhausting retries *)
  mutable bad_slots : int;  (** swap slots blacklisted as bad media *)
  mutable swap_full_events : int;  (** times slot allocation failed: swap exhausted *)
  mutable ipc_sends : int;  (** IPC send syscalls accepted *)
  mutable ipc_recvs : int;  (** IPC recv syscalls that returned data *)
  mutable ipc_bytes_copied : int;  (** IPC payload bytes moved by copying *)
  mutable ipc_bytes_loaned : int;  (** IPC payload bytes moved by page loanout *)
  mutable ipc_bytes_mapped : int;  (** IPC payload bytes moved by map-entry passing *)
  mutable vslock_ios : int;  (** physio-style transfers over a vslock'd buffer *)
  mutable swap_devices_dead : int;  (** whole swap devices declared dead *)
  mutable swap_failovers : int;  (** pageout reassignments that crossed devices *)
  mutable swap_migrations : int;  (** slots drained from a dying device to a healthy one *)
  mutable swap_cache_fills : int;  (** clean vnode pages spilled into the swapcache *)
  mutable swap_cache_hits : int;  (** refaults served from the swapcache *)
  mutable swap_cache_evictions : int;  (** cache entries shed (pressure, death, invalidation) *)
  mutable oom_kills : int;  (** processes reaped by the OOM victim policy *)
  mutable rlimit_denials : int;  (** allocations refused by a per-process resource limit *)
  mutable proc_swapouts : int;  (** whole processes swapped out under sustained shortage *)
  mutable proc_swapins : int;  (** swapped-out processes brought back in *)
  mutable reserve_grabs : int;  (** privileged allocations served from the kernel reserve *)
  mutable lookup_fast_hits : int;  (** page lookups served by the lockless fast path *)
  mutable lookup_locked : int;  (** page lookups that took the locked path *)
  mutable cache_alloc_hits : int;  (** page allocations served from a per-CPU free cache *)
  mutable cache_alloc_misses : int;  (** allocations that fell through to the colored queues *)
  mutable cache_refills : int;  (** per-CPU cache refill batches pulled from the queues *)
  mutable cache_drains : int;  (** per-CPU cache drains back to the colored queues *)
  mutable cache_steals : int;  (** cache fills served outside the CPU's preferred colors *)
  mutable line_bounces : int;  (** cross-CPU lock-line transfers charged by the SMP model *)
  mutable lock_wait_us : float;  (** simulated time spent waiting on contended locks *)
  mutable free_pages : int;  (** gauge: free-list depth at last sync *)
  mutable active_pages : int;  (** gauge: active-queue depth at last sync *)
  mutable inactive_pages : int;  (** gauge: inactive-queue depth at last sync *)
  mutable swap_slots_used : int;  (** gauge: slots in use across all tiers *)
  mutable swapcache_pages : int;  (** gauge: swapcache entries held *)
}

val create : unit -> t
val reset : t -> unit

val snapshot : t -> t
(** An independent copy (for before/after deltas in experiments). *)

val diff : after:t -> before:t -> t
(** Field-wise subtraction. *)

val add : into:t -> t -> unit
(** Accumulate a delta (typically a {!diff} over one scheduler quantum)
    into a per-CPU shard: counters and durations sum, gauges take the
    delta's value (levels, not flows). *)

val to_rows : t -> (string * float) list
(** All counters as printable rows, in declaration order. *)

val pp : Format.formatter -> t -> unit
(** Print the non-zero counters, one per line. *)

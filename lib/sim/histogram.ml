(* Four buckets per octave: bucket 0 holds [0,1) and bucket i >= 1 holds
   [lambda^(i-1), lambda^i) with lambda = 2^(1/4).  200 buckets reach
   ~1e15 us, far beyond any simulated run; larger samples clamp into the
   last bucket. *)

let lambda = Float.pow 2.0 0.25
let log_lambda = Float.log lambda
let nbuckets = 200

type t = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  buckets : int array;
}

let create () =
  { count = 0; sum = 0.0; vmin = infinity; vmax = neg_infinity;
    buckets = Array.make nbuckets 0 }

let bucket_of v =
  if v < 1.0 then 0
  else min (nbuckets - 1) (1 + int_of_float (Float.log v /. log_lambda))

(* Geometric mean of a bucket's bounds: the representative reported for
   any percentile landing in it. *)
let bucket_mid i =
  if i = 0 then 0.5
  else Float.pow lambda (float_of_int i -. 0.5)

let observe t v =
  if Float.is_finite v && v >= 0.0 then begin
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v;
    let i = bucket_of v in
    t.buckets.(i) <- t.buckets.(i) + 1
  end

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0.0 else t.vmin
let max_value t = if t.count = 0 then 0.0 else t.vmax

let percentile t p =
  if t.count = 0 then 0.0
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    (* Rank of the percentile sample, 1-based, ceiling convention. *)
    let rank =
      max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.count)))
    in
    let i = ref 0 and seen = ref 0 in
    while !seen < rank && !i < nbuckets do
      seen := !seen + t.buckets.(!i);
      incr i
    done;
    let v = bucket_mid (!i - 1) in
    Float.max t.vmin (Float.min t.vmax v)
  end

let p50 t = percentile t 50.0
let p95 t = percentile t 95.0
let p99 t = percentile t 99.0

let merge ~into src =
  if src.count > 0 then begin
    into.count <- into.count + src.count;
    into.sum <- into.sum +. src.sum;
    if src.vmin < into.vmin then into.vmin <- src.vmin;
    if src.vmax > into.vmax then into.vmax <- src.vmax;
    Array.iteri (fun i n -> into.buckets.(i) <- into.buckets.(i) + n) src.buckets
  end

type set = (string, t) Hashtbl.t

let create_set () : set = Hashtbl.create 8

let get set name =
  match Hashtbl.find_opt set name with
  | Some h -> h
  | None ->
      let h = create () in
      Hashtbl.add set name h;
      h

let rows set =
  Hashtbl.fold (fun name h acc -> if h.count > 0 then (name, h) :: acc else acc)
    set []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Deterministic, seedable I/O fault injection for {!Disk}.

    Real disks fail; UVM's pager API and swap-location reassignment exist
    because of that (paper §6–7).  A fault plan decides, per simulated disk
    operation, whether the transfer fails and how:

    - {b rate-based}: every read (or write) op fails independently with a
      configured probability, driven by the plan's own {!Rng} so runs are
      reproducible from the seed;
    - {b scripted}: explicit rules match an operation direction and
      optionally a specific device slot, fire after a configurable number
      of matching operations, and fire a configurable number of times.

    A [Transient] error models a recoverable condition (bus reset,
    timeout): retrying the same operation may succeed.  A [Permanent]
    error models bad media: every further access to the same slot keeps
    failing, and the caller must stop using that location. *)

type op = Read | Write

type severity = Transient | Permanent

type error = {
  failed_op : op;
  severity : severity;
  bad_slot : int option;  (** the offending device slot, when known *)
}

val string_of_error : error -> string

type t

val create :
  ?seed:int ->
  ?read_error_rate:float ->
  ?write_error_rate:float ->
  ?rate_severity:severity ->
  unit ->
  t
(** A fresh plan.  With no optional arguments it never injects anything.
    @raise Invalid_argument if an error rate is outside [0, 1]. *)

val fail_op :
  t -> ?slot:int -> ?after:int -> ?count:int -> op -> severity -> unit
(** Script a failure: the next matching operation fails — or the one after
    [after] matching operations pass — and the rule keeps firing [count]
    times (default: once for transients, forever for permanent errors;
    bad media does not heal).  With [slot], only operations touching that
    device slot match. *)

val check : t -> op:op -> slots:int list -> error option
(** Decide the fate of one operation touching [slots] (empty for slotless
    devices, e.g. file-system transfers).  Scripted rules are consulted in
    declaration order; the rate check runs only when no rule fires, and its
    RNG-stream position depends solely on prior rate checks, so scripted
    rules do not perturb rate-based decisions. *)

(** Rotating-disk cost model.

    An I/O operation costs a fixed latency (seek + rotational delay) plus a
    per-page transfer time.  This captures the property the paper's Figure 5
    depends on: writing n scattered pages as n single-page operations costs
    [n * (latency + transfer)], while one clustered operation costs
    [latency + n * transfer].

    Transfers are fallible: when a {!Fault_plan} is installed, any
    operation may return [Error].  A failed operation still charges the
    clock and counts as an issued op — the time was spent before the
    device reported the error — but transfers no pages. *)

type t

val create : clock:Simclock.t -> costs:Cost_model.t -> stats:Stats.t -> t

val set_fault_plan : t -> Fault_plan.t option -> unit
(** Install (or clear) the fault plan consulted on every transfer. *)

val fault_plan : t -> Fault_plan.t option

val read :
  ?sequential:bool ->
  ?slots:int list ->
  t ->
  npages:int ->
  (unit, Fault_plan.error) result
(** One read operation transferring [npages] contiguous pages; advances the
    simulated clock and counts the op.  With [sequential:true] the fixed
    per-operation latency is waived — the filesystem's read-ahead already
    has the head positioned (UFS-style streaming).  [~slots] names the
    device slots touched, so per-slot scripted faults can target them.
    [npages] must be >= 1. *)

val write : ?slots:int list -> t -> npages:int -> (unit, Fault_plan.error) result
(** One write operation transferring [npages] contiguous pages. *)

val read_ops : t -> int
val write_ops : t -> int
val pages_read : t -> int
val pages_written : t -> int

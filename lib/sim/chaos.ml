(* Chaos scenarios are pure data: the soak harness interprets phases
   against a booted kernel, this module only generates and locates them.
   Keeping it data-only (seeded RNG in, schedule out) is what makes a
   soak reproducible — the same seed yields the same phases on both
   kernels, so divergence is always the kernel's fault. *)

type mode =
  | Device_death of { dev_name : string }
  | Io_storm of { read_rate : float; write_rate : float }
  | Pressure_spike of { spike_pages : int }
  | Rlimit_squeeze of { squeeze_resident : int }
  | Fork_churn of { churn_procs : int }

type phase = {
  ph_name : string;
  ph_start_us : float;
  ph_len_us : float;
  ph_modes : mode list;
}

type scenario = {
  sc_seed : int;
  sc_len_us : float;
  sc_phases : phase list;
}

let mode_name = function
  | Device_death _ -> "device_death"
  | Io_storm _ -> "io_storm"
  | Pressure_spike _ -> "pressure_spike"
  | Rlimit_squeeze _ -> "rlimit_squeeze"
  | Fork_churn _ -> "fork_churn"

let mode_detail = function
  | Device_death { dev_name } -> [ ("device", dev_name) ]
  | Io_storm { read_rate; write_rate } ->
      [
        ("read_rate", Printf.sprintf "%.3f" read_rate);
        ("write_rate", Printf.sprintf "%.3f" write_rate);
      ]
  | Pressure_spike { spike_pages } ->
      [ ("pages", string_of_int spike_pages) ]
  | Rlimit_squeeze { squeeze_resident } ->
      [ ("resident_limit", string_of_int squeeze_resident) ]
  | Fork_churn { churn_procs } -> [ ("procs", string_of_int churn_procs) ]

let phases_at sc ~now_us =
  List.filter
    (fun ph -> ph.ph_start_us <= now_us && now_us < ph.ph_start_us +. ph.ph_len_us)
    sc.sc_phases

let phase_names_at sc ~now_us =
  List.map (fun ph -> ph.ph_name) (phases_at sc ~now_us)

(* The canonical soak schedule: a calm warm-up, then overlapping fault
   phases covering every mode at least once — the acceptance criterion
   wants device death, an I/O error storm and an rlimit squeeze composed
   in one run.  Magnitudes jitter with the seed; the phase structure
   (names, order, which modes compose) is fixed so SLO attribution is
   stable run to run. *)
let generate ~seed ~len_us ~pressure_pages =
  let rng = Rng.create ~seed in
  let jitter lo hi = lo + Rng.int rng (max 1 (hi - lo)) in
  let frac f = len_us *. f in
  let phases =
    [
      {
        ph_name = "warmup";
        ph_start_us = 0.0;
        ph_len_us = frac 0.15;
        ph_modes = [];
      };
      {
        ph_name = "churn";
        ph_start_us = frac 0.10;
        ph_len_us = frac 0.35;
        ph_modes = [ Fork_churn { churn_procs = jitter 2 4 } ];
      };
      {
        ph_name = "io_storm";
        ph_start_us = frac 0.20;
        ph_len_us = frac 0.25;
        ph_modes =
          [
            Io_storm
              {
                read_rate = 0.02 +. (0.02 *. Rng.float rng 1.0);
                write_rate = 0.05 +. (0.05 *. Rng.float rng 1.0);
              };
          ];
      };
      {
        ph_name = "pressure";
        ph_start_us = frac 0.30;
        ph_len_us = frac 0.30;
        ph_modes =
          [
            Pressure_spike
              {
                spike_pages =
                  pressure_pages + jitter 0 (max 1 (pressure_pages / 4));
              };
          ];
      };
      {
        ph_name = "device_death";
        ph_start_us = frac 0.45;
        ph_len_us = frac 0.20;
        ph_modes = [ Device_death { dev_name = "fast" } ];
      };
      {
        ph_name = "squeeze";
        ph_start_us = frac 0.60;
        ph_len_us = frac 0.25;
        ph_modes =
          [
            Rlimit_squeeze { squeeze_resident = jitter 12 24 };
            Fork_churn { churn_procs = jitter 1 3 };
          ];
      };
      {
        ph_name = "cooldown";
        ph_start_us = frac 0.85;
        ph_len_us = frac 0.15;
        ph_modes = [];
      };
    ]
  in
  { sc_seed = seed; sc_len_us = len_us; sc_phases = phases }

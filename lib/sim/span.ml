(* Causal spans: request-scoped trace trees over simulated time.

   The simulator is sequential, so span activation is strictly LIFO: a
   fault span opens, the pagein it triggers opens inside it, the drain
   the pagein's allocation forces opens inside that.  A plain stack is
   therefore enough to reconstruct the whole causal tree — no context
   threading through the kernels, just [start]/[finish] pairs at the
   places that already trace Hist events. *)

type span = {
  sid : int;  (* unique per collector, > 0; the dummy is 0 *)
  strace : int;  (* root request id shared by the whole tree *)
  sparent : int;  (* 0 = root *)
  sname : string;
  ssubsys : string;
  sts : float;
  mutable sdur : float;  (* -1.0 while open *)
  mutable sdetail : (string * string) list;
}

let dummy_span =
  {
    sid = 0;
    strace = 0;
    sparent = 0;
    sname = "";
    ssubsys = "";
    sts = 0.0;
    sdur = 0.0;
    sdetail = [];
  }

type t = {
  mutable on : bool;
  mutable next_id : int;
  mutable next_trace : int;
  mutable stack : span list;  (* innermost (most recently started) first *)
  buf : span array;  (* finished spans, ring *)
  mutable next : int;
  mutable count : int;
  mutable total : int;
}

let create ?(capacity = 4096) ?(enabled = false) () =
  if capacity < 1 then invalid_arg "Span.create: capacity must be >= 1";
  {
    on = enabled;
    next_id = 1;
    next_trace = 1;
    stack = [];
    buf = Array.make capacity dummy_span;
    next = 0;
    count = 0;
    total = 0;
  }

let enabled t = t.on
let set_enabled t b = t.on <- b

let start t ~subsys ~ts name =
  if not t.on then dummy_span
  else begin
    let sid = t.next_id in
    t.next_id <- sid + 1;
    let strace, sparent =
      match t.stack with
      | parent :: _ -> (parent.strace, parent.sid)
      | [] ->
          (* A root span begins a fresh trace: every request (or bare
             fault, when nothing wraps it) gets its own trace id. *)
          let tr = t.next_trace in
          t.next_trace <- tr + 1;
          (tr, 0)
    in
    let sp =
      {
        sid;
        strace;
        sparent;
        sname = name;
        ssubsys = subsys;
        sts = ts;
        sdur = -1.0;
        sdetail = [];
      }
    in
    t.stack <- sp :: t.stack;
    sp
  end

let push_finished t sp =
  let cap = Array.length t.buf in
  t.buf.(t.next) <- sp;
  t.next <- (t.next + 1) mod cap;
  if t.count < cap then t.count <- t.count + 1;
  t.total <- t.total + 1

let close sp ~ts ~detail =
  sp.sdur <- ts -. sp.sts;
  if detail <> [] then sp.sdetail <- detail

(* Finishing a span that is not the innermost open one means some
   intermediate scope leaked (an exception skipped a [finish]).  Rather
   than corrupt the tree, close the intermediates at the same
   timestamp: their durations stay truthful up to the point control
   left them. *)
let finish t sp ~ts ?(detail = []) () =
  if sp != dummy_span && sp.sdur < 0.0 then begin
    let rec pop = function
      | [] -> []  (* [clear] ran between start and finish: drop it *)
      | top :: rest when top == sp ->
          close sp ~ts ~detail;
          push_finished t sp;
          rest
      | top :: rest ->
          close top ~ts ~detail:[];
          push_finished t top;
          pop rest
    in
    t.stack <- pop t.stack
  end

let spans t =
  let cap = Array.length t.buf in
  let first = (t.next - t.count + cap) mod cap in
  List.init t.count (fun i -> t.buf.((first + i) mod cap))

let open_spans t = List.rev t.stack

let innermost t ?(skip = fun _ -> false) () =
  let rec go = function
    | [] -> None
    | sp :: rest -> if skip sp then go rest else Some sp
  in
  go t.stack
let take_trace t ~trace = List.filter (fun sp -> sp.strace = trace) (spans t)
let recorded t = t.total
let dropped t = t.total - t.count

let clear t =
  t.stack <- [];
  t.next <- 0;
  t.count <- 0;
  t.total <- 0

(* Critical-path decomposition: each span's self time is its duration
   minus the time covered by its direct children, attributed to the
   span's subsystem.  Summed over one trace the children's durations
   telescope away, so the per-subsystem contributions add up to exactly
   the root's duration — the property the serve breakdown relies on. *)
let self_times spans =
  let child_time = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      if sp.sparent <> 0 && sp.sdur >= 0.0 then
        let prev =
          Option.value (Hashtbl.find_opt child_time sp.sparent) ~default:0.0
        in
        Hashtbl.replace child_time sp.sparent (prev +. sp.sdur))
    spans;
  let acc = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun sp ->
      if sp.sdur >= 0.0 then begin
        let covered =
          Option.value (Hashtbl.find_opt child_time sp.sid) ~default:0.0
        in
        let self = Float.max 0.0 (sp.sdur -. covered) in
        (match Hashtbl.find_opt acc sp.ssubsys with
        | None ->
            order := sp.ssubsys :: !order;
            Hashtbl.add acc sp.ssubsys self
        | Some prev -> Hashtbl.replace acc sp.ssubsys (prev +. self))
      end)
    spans;
  List.rev_map (fun k -> (k, Hashtbl.find acc k)) !order

(* Folded-stack flamegraph lines: one "root;child;leaf" path per span,
   weighted by self time.  Because every span contributes exactly its
   duration minus its children's, the values over a complete trace sum
   to the root's duration — the telescoping CI checks rely on it. *)
let fold_paths spans =
  let by_id = Hashtbl.create 64 in
  List.iter (fun sp -> Hashtbl.replace by_id sp.sid sp) spans;
  let child_time = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      if sp.sparent <> 0 && sp.sdur >= 0.0 then
        let prev =
          Option.value (Hashtbl.find_opt child_time sp.sparent) ~default:0.0
        in
        Hashtbl.replace child_time sp.sparent (prev +. sp.sdur))
    spans;
  let acc = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      if sp.sdur >= 0.0 then begin
        let covered =
          Option.value (Hashtbl.find_opt child_time sp.sid) ~default:0.0
        in
        let self = Float.max 0.0 (sp.sdur -. covered) in
        if self > 0.0 then begin
          let rec path sp tail =
            let tail = sp.sname :: tail in
            if sp.sparent = 0 then tail
            else
              match Hashtbl.find_opt by_id sp.sparent with
              | Some p -> path p tail
              | None -> tail  (* parent lost to ring wraparound *)
          in
          let key = String.concat ";" (path sp []) in
          let prev = Option.value (Hashtbl.find_opt acc key) ~default:0.0 in
          Hashtbl.replace acc key (prev +. self)
        end
      end)
    spans;
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc [] |> List.sort compare

(** Causal spans: request-scoped trace trees over simulated time.

    Where {!Hist} answers "what happened", spans answer "why was this
    request slow": every span records which open span caused it, and all
    spans triggered by one root share a trace id.  The simulator is
    sequential, so activation is strictly LIFO and the collector needs
    only a stack — kernels call [start]/[finish] at the same places they
    record Hist events, with no context threading.

    Like {!Hist}, a disabled collector costs one boolean check per
    [start] and allocates nothing (a shared dummy span is returned and
    [finish] ignores it). *)

type span = {
  sid : int;  (** unique span id, > 0 ([0] only on the dummy) *)
  strace : int;  (** trace (root request) id shared by the tree *)
  sparent : int;  (** parent span id; [0] marks a root *)
  sname : string;
  ssubsys : string;  (** attribution key for {!self_times} *)
  sts : float;  (** simulated microseconds at [start] *)
  mutable sdur : float;  (** duration; [-1.0] while still open *)
  mutable sdetail : (string * string) list;
}

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** [capacity] bounds the ring of finished spans (default 4096).
    Disabled collectors ([enabled:false], the default) record nothing. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val start : t -> subsys:string -> ts:float -> string -> span
(** Open a span as a child of the innermost open span, or as the root
    of a fresh trace when none is open.  Returns a shared dummy when
    the collector is disabled. *)

val finish : t -> span -> ts:float -> ?detail:(string * string) list -> unit -> unit
(** Close [span] and append it to the finished ring.  If inner spans
    were left open (an exception skipped their [finish]), they are
    closed at the same timestamp first so the tree stays well-formed.
    A no-op on the dummy span or an already-finished span. *)

val spans : t -> span list
(** Finished spans, oldest first (bounded by [capacity]). *)

val open_spans : t -> span list
(** Currently open spans, outermost first — the active causal tree,
    dumped into crash artifacts. *)

val innermost : t -> ?skip:(span -> bool) -> unit -> span option
(** Innermost open span not rejected by [skip] — used to attribute
    work recorded outside the span tree (lock holds) to the active
    causal context. *)

val take_trace : t -> trace:int -> span list
(** Finished spans belonging to one trace, oldest first. *)

val recorded : t -> int
(** Finished spans ever recorded, including overwritten ones. *)

val dropped : t -> int
(** Finished spans lost to ring wraparound. *)

val clear : t -> unit

val self_times : span list -> (string * float) list
(** Critical-path decomposition: per-subsystem self time (duration
    minus time covered by direct children), in first-seen order.  For a
    complete single-root trace the values sum to exactly the root span's
    duration. *)

val fold_paths : span list -> (string * float) list
(** Folded-stack flamegraph lines: each finished span's
    [";"]-joined root-to-span name path mapped to its accumulated self
    time, sorted by path.  Zero-self paths are omitted; over complete
    traces the values sum to the root durations (telescoping). *)

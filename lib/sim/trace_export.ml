(** Exporters for the observability layer.

    A {!source} bundles one traced machine's event history, counters and
    latency histograms under a display label ("UVM", "BSD VM").  The
    exporters consume a list of sources so one run of an experiment —
    which boots both VM systems, possibly several times — lands in a
    single artifact:

    - {!chrome_json}: Chrome trace-event JSON, loadable in Perfetto or
      [chrome://tracing].  Each source becomes a process, each subsystem
      a thread; spans are complete ("X") events, instants are "i".
    - {!snapshot_json}: counters + histogram summaries, machine-readable.
    - {!pp_dump}: flat human-readable event listing.
    - {!print_stats}: the per-label counter/percentile tables behind the
      CLI's [--stats] flag.

    JSON is emitted by hand: the toolchain deliberately has no JSON
    dependency, and the two fixed schemas here do not justify one. *)

type source = {
  mutable label : string;
  hist : Hist.t;
  stats : Stats.t;
  latencies : Histogram.set;
  lifecycle : Lifecycle.t;
  spans : Span.t;
  series : Timeseries.t;
  locks : Lockstat.t option;  (* the machine's lock registry *)
  mutable sync : unit -> unit;
      (* refresh the gauge fields of [stats] from the live machine;
         installed by Machine.boot, called before any counter export *)
}

(* -- JSON primitives --------------------------------------------------- *)

let json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let json_float buf v =
  if Float.is_finite v then
    (* %.17g round-trips but is noisy; microsecond values need no more
       than nanosecond precision. *)
    Buffer.add_string buf (Printf.sprintf "%.3f" v)
  else Buffer.add_string buf "0"

let json_sep buf first = if !first then first := false else Buffer.add_char buf ','

(* -- Chrome trace-event format ----------------------------------------- *)

let subsys_tid s =
  let rec idx i = function
    | [] -> 1
    | x :: _ when x = s -> i
    | _ :: tl -> idx (i + 1) tl
  in
  idx 1 Hist.all_subsystems

let chrome_event buf ~pid (e : Hist.event) =
  Buffer.add_string buf "{\"name\":";
  json_string buf e.name;
  Buffer.add_string buf ",\"cat\":";
  json_string buf (Hist.subsystem_name e.subsys);
  Buffer.add_string buf (Printf.sprintf ",\"pid\":%d,\"tid\":%d,\"ts\":" pid
                           (subsys_tid e.subsys));
  json_float buf e.ts;
  if e.dur > 0.0 then begin
    Buffer.add_string buf ",\"ph\":\"X\",\"dur\":";
    json_float buf e.dur
  end
  else Buffer.add_string buf ",\"ph\":\"i\",\"s\":\"t\"";
  Buffer.add_string buf ",\"args\":{";
  let first = ref true in
  List.iter
    (fun (k, v) ->
      json_sep buf first;
      json_string buf k;
      Buffer.add_char buf ':';
      json_string buf v)
    e.detail;
  Buffer.add_string buf "}}"

let chrome_metadata buf ~pid ~tid ~name ~value =
  Buffer.add_string buf
    (Printf.sprintf "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":" pid tid);
  json_string buf name;
  Buffer.add_string buf ",\"args\":{\"name\":";
  json_string buf value;
  Buffer.add_string buf "}}"

(* Spans land on their own tracks, one per span subsystem, numbered
   from 100 to stay clear of the Hist subsystem tids.  Flow arrows
   ("s"/"f" pairs keyed by the child's span id) link each child back to
   its parent so Perfetto draws the causal tree across tracks. *)
let chrome_flow buf ~pid ~tid ~id ~ts ~ph =
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"cause\",\"cat\":\"span\",\"ph\":\"%s\"%s" ph
       (if ph = "f" then ",\"bp\":\"e\"" else ""));
  Buffer.add_string buf (Printf.sprintf ",\"id\":%d,\"pid\":%d,\"tid\":%d,\"ts\":" id pid tid);
  json_float buf ts;
  Buffer.add_string buf ",\"args\":{}}"

let chrome_spans buf ~pid ~first spans =
  let tracks =
    List.fold_left
      (fun acc (sp : Span.span) ->
        if List.mem sp.ssubsys acc then acc else acc @ [ sp.ssubsys ])
      [] spans
  in
  let track_tid s =
    let rec idx i = function
      | [] -> 100
      | x :: _ when x = s -> i
      | _ :: tl -> idx (i + 1) tl
    in
    idx 100 tracks
  in
  List.iter
    (fun s ->
      json_sep buf first;
      chrome_metadata buf ~pid ~tid:(track_tid s) ~name:"thread_name"
        ~value:("span:" ^ s))
    tracks;
  let by_id = Hashtbl.create 64 in
  List.iter (fun (sp : Span.span) -> Hashtbl.replace by_id sp.sid sp) spans;
  List.iter
    (fun (sp : Span.span) ->
      json_sep buf first;
      Buffer.add_string buf "{\"name\":";
      json_string buf sp.sname;
      Buffer.add_string buf ",\"cat\":\"span\"";
      Buffer.add_string buf
        (Printf.sprintf ",\"pid\":%d,\"tid\":%d,\"ts\":" pid
           (track_tid sp.ssubsys));
      json_float buf sp.sts;
      Buffer.add_string buf ",\"ph\":\"X\",\"dur\":";
      json_float buf (Float.max sp.sdur 0.0);
      Buffer.add_string buf
        (Printf.sprintf ",\"args\":{\"trace\":%d,\"span\":%d,\"parent\":%d"
           sp.strace sp.sid sp.sparent);
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ',';
          json_string buf k;
          Buffer.add_char buf ':';
          json_string buf v)
        sp.sdetail;
      Buffer.add_string buf "}}";
      match Hashtbl.find_opt by_id sp.sparent with
      | None -> ()  (* root, or the parent was overwritten in the ring *)
      | Some parent ->
          json_sep buf first;
          chrome_flow buf ~pid ~tid:(track_tid parent.ssubsys) ~id:sp.sid
            ~ts:sp.sts ~ph:"s";
          json_sep buf first;
          chrome_flow buf ~pid ~tid:(track_tid sp.ssubsys) ~id:sp.sid
            ~ts:sp.sts ~ph:"f")
    spans

let chrome_json buf sources =
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  List.iteri
    (fun i src ->
      let pid = i + 1 in
      json_sep buf first;
      chrome_metadata buf ~pid ~tid:0 ~name:"process_name" ~value:src.label;
      List.iter
        (fun s ->
          json_sep buf first;
          chrome_metadata buf ~pid ~tid:(subsys_tid s) ~name:"thread_name"
            ~value:(Hist.subsystem_name s))
        Hist.all_subsystems;
      List.iter
        (fun e ->
          json_sep buf first;
          chrome_event buf ~pid e)
        (Hist.events src.hist);
      chrome_spans buf ~pid ~first (Span.spans src.spans))
    sources;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n"

(* -- per-label aggregation --------------------------------------------- *)

(* Several boots of the same system (a sweep experiment) share a label;
   exporters fold them into one logical system. *)
type agg = {
  agg_label : string;
  counters : (string * float) list;  (* declaration order, summed *)
  hists : (string * Histogram.t) list;  (* merged, sorted by name *)
  agg_life : Lifecycle.t;  (* merged ledger analytics *)
  agg_recorded : int;
  agg_dropped : int;
}

let aggregate sources =
  List.iter (fun s -> s.sync ()) sources;
  let labels =
    List.fold_left
      (fun acc s -> if List.mem s.label acc then acc else acc @ [ s.label ])
      [] sources
  in
  List.map
    (fun label ->
      let group = List.filter (fun s -> s.label = label) sources in
      let counters =
        match group with
        | [] -> []
        | first :: rest ->
            List.fold_left
              (fun acc s ->
                List.map2
                  (fun (name, v) (name', v') ->
                    assert (name = name');
                    (name, v +. v'))
                  acc
                  (Stats.to_rows s.stats))
              (Stats.to_rows first.stats) rest
      in
      let hset = Histogram.create_set () in
      List.iter
        (fun s ->
          List.iter
            (fun (name, h) -> Histogram.merge ~into:(Histogram.get hset name) h)
            (Histogram.rows s.latencies))
        group;
      let life = Lifecycle.create () in
      List.iter (fun s -> Lifecycle.merge ~into:life s.lifecycle) group;
      {
        agg_label = label;
        counters;
        hists = Histogram.rows hset;
        agg_life = life;
        agg_recorded =
          List.fold_left (fun n s -> n + Hist.recorded s.hist) 0 group;
        agg_dropped = List.fold_left (fun n s -> n + Hist.dropped s.hist) 0 group;
      })
    labels

(* -- stats/histogram snapshot ------------------------------------------ *)

let json_hist buf h =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"count\":%d,\"sum\":%.3f,\"mean\":%.3f,\"min\":%.3f,\
        \"max\":%.3f,\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f}"
       (Histogram.count h) (Histogram.sum h) (Histogram.mean h)
       (Histogram.min_value h) (Histogram.max_value h) (Histogram.p50 h)
       (Histogram.p95 h) (Histogram.p99 h))

let snapshot_json buf sources =
  Buffer.add_string buf "{\"schema\":\"uvm-sim-stats/1\",\"systems\":[";
  let first_sys = ref true in
  List.iter
    (fun a ->
      json_sep buf first_sys;
      Buffer.add_string buf "{\"label\":";
      json_string buf a.agg_label;
      Buffer.add_string buf ",\"counters\":{";
      let first = ref true in
      List.iter
        (fun (name, v) ->
          if v <> 0.0 then begin
            json_sep buf first;
            json_string buf name;
            Buffer.add_char buf ':';
            json_float buf v
          end)
        a.counters;
      Buffer.add_string buf "},\"histograms\":{";
      let first = ref true in
      List.iter
        (fun (name, h) ->
          json_sep buf first;
          json_string buf name;
          Buffer.add_char buf ':';
          json_hist buf h)
        a.hists;
      Buffer.add_string buf
        (Printf.sprintf "},\"trace\":{\"recorded\":%d,\"dropped\":%d}}"
           a.agg_recorded a.agg_dropped))
    (aggregate sources);
  Buffer.add_string buf "]}\n"

(* -- span export -------------------------------------------------------- *)

let json_span buf (sp : Span.span) =
  Buffer.add_string buf
    (Printf.sprintf "{\"span\":%d,\"trace\":%d,\"parent\":%d,\"name\":" sp.sid
       sp.strace sp.sparent);
  json_string buf sp.sname;
  Buffer.add_string buf ",\"subsys\":";
  json_string buf sp.ssubsys;
  Buffer.add_string buf ",\"ts\":";
  json_float buf sp.sts;
  if sp.sdur >= 0.0 then begin
    Buffer.add_string buf ",\"dur\":";
    json_float buf sp.sdur
  end;
  Buffer.add_string buf ",\"detail\":{";
  let first = ref true in
  List.iter
    (fun (k, v) ->
      json_sep buf first;
      json_string buf k;
      Buffer.add_char buf ':';
      json_string buf v)
    sp.sdetail;
  Buffer.add_string buf "}}"

(* Spans are exported per source, not folded per label: span and trace
   ids are only unique within one collector, so merging sweeps under a
   label would alias unrelated trees. *)
let spans_json buf sources =
  Buffer.add_string buf "{\"schema\":\"uvm-sim-spans/1\",\"systems\":[";
  let first_sys = ref true in
  List.iter
    (fun src ->
      json_sep buf first_sys;
      Buffer.add_string buf "{\"label\":";
      json_string buf src.label;
      Buffer.add_string buf ",\"spans\":[";
      let first = ref true in
      List.iter
        (fun sp ->
          json_sep buf first;
          json_span buf sp)
        (Span.spans src.spans);
      (* Spans still open at export time: the active causal tree,
         outermost first (what a crash artifact wants). *)
      Buffer.add_string buf "],\"open\":[";
      let first = ref true in
      List.iter
        (fun sp ->
          json_sep buf first;
          json_span buf sp)
        (Span.open_spans src.spans);
      Buffer.add_string buf
        (Printf.sprintf "],\"recorded\":%d,\"dropped\":%d}"
           (Span.recorded src.spans) (Span.dropped src.spans)))
    sources;
  Buffer.add_string buf "]}\n"

(* -- lock observatory export -------------------------------------------- *)

let json_lock_class buf ~cpus ~seed reg (cv : Lockstat.class_view) =
  Buffer.add_string buf "{\"class\":";
  json_string buf cv.Lockstat.cv_cls;
  Buffer.add_string buf
    (Printf.sprintf
       ",\"instances\":%d,\"acquires\":%d,\"reads\":%d,\"writes\":%d"
       cv.Lockstat.cv_instances cv.Lockstat.cv_acquires cv.Lockstat.cv_reads
       cv.Lockstat.cv_writes);
  Buffer.add_string buf ",\"hold_us\":";
  json_hist buf cv.Lockstat.cv_hold;
  Buffer.add_string buf ",\"read_hold_us\":";
  json_hist buf cv.Lockstat.cv_read_hold;
  Buffer.add_string buf ",\"write_hold_us\":";
  json_hist buf cv.Lockstat.cv_write_hold;
  Buffer.add_string buf ",\"max_hold_us\":";
  json_float buf cv.Lockstat.cv_max_hold_us;
  Buffer.add_string buf ",\"by_subsys\":[";
  let first = ref true in
  List.iter
    (fun (subsys, holds, total) ->
      json_sep buf first;
      Buffer.add_string buf "{\"subsys\":";
      json_string buf subsys;
      Buffer.add_string buf (Printf.sprintf ",\"holds\":%d,\"total_us\":" holds);
      json_float buf total;
      Buffer.add_string buf "}")
    cv.Lockstat.cv_by_subsys;
  Buffer.add_string buf "],\"contention\":";
  (match Lockstat.project reg ~cls:cv.Lockstat.cv_cls ~cpus ~seed with
  | None -> Buffer.add_string buf "null"
  | Some p ->
      Buffer.add_string buf
        (Printf.sprintf "{\"cpus\":%d,\"events\":%d,\"wait_us\":"
           p.Lockstat.pj_cpus p.Lockstat.pj_events);
      json_float buf p.Lockstat.pj_wait_us;
      Buffer.add_string buf ",\"mean_wait_us\":";
      json_float buf p.Lockstat.pj_mean_wait_us;
      Buffer.add_string buf ",\"max_wait_us\":";
      json_float buf p.Lockstat.pj_max_wait_us;
      Buffer.add_string buf (Printf.sprintf ",\"bounces\":%d,\"utilization\":"
                               p.Lockstat.pj_bounces);
      json_float buf p.Lockstat.pj_utilization;
      Buffer.add_string buf "}");
  Buffer.add_string buf "}"

(* The "systems" array of the uvm-sim-lockstat/1 schema: sources sharing
   a label (several boots of one system in a sweep) are merged into one
   registry — histograms, attribution and order edges sum; the
   contention replay then models all recorded streams hitting one
   machine. *)
let lockstat_systems buf ?(cpus = 4) ?(seed = 42) sources =
  let labels =
    List.fold_left
      (fun acc s -> if List.mem s.label acc then acc else acc @ [ s.label ])
      [] sources
  in
  Buffer.add_char buf '[';
  let first_sys = ref true in
  List.iter
    (fun label ->
      let group = List.filter (fun s -> s.label = label) sources in
      let regs = List.filter_map (fun s -> s.locks) group in
      let merged = Lockstat.create ~now:(fun () -> 0.0) () in
      List.iter (fun r -> Lockstat.merge ~into:merged r) regs;
      json_sep buf first_sys;
      Buffer.add_string buf "{\"label\":";
      json_string buf label;
      Buffer.add_string buf ",\"classes\":[";
      let first = ref true in
      List.iter
        (fun cv ->
          json_sep buf first;
          json_lock_class buf ~cpus ~seed merged cv)
        (Lockstat.views merged);
      Buffer.add_string buf "],\"order_edges\":[";
      let first = ref true in
      List.iter
        (fun (a, b, n) ->
          json_sep buf first;
          Buffer.add_string buf "{\"from\":";
          json_string buf a;
          Buffer.add_string buf ",\"to\":";
          json_string buf b;
          Buffer.add_string buf (Printf.sprintf ",\"count\":%d}" n))
        (Lockstat.order_edges merged);
      Buffer.add_string buf "],\"cycles\":[";
      let first = ref true in
      List.iter
        (fun cyc ->
          json_sep buf first;
          Buffer.add_char buf '[';
          let fc = ref true in
          List.iter
            (fun cls ->
              json_sep buf fc;
              json_string buf cls)
            cyc;
          Buffer.add_char buf ']')
        (Lockstat.cycles merged);
      (* Locks still held right now (crash artifacts): per live
         registry, innermost first — merge does not carry hold state. *)
      Buffer.add_string buf "],\"held\":[";
      let first = ref true in
      List.iter
        (fun reg ->
          List.iter
            (fun (cls, name) ->
              json_sep buf first;
              Buffer.add_string buf "{\"class\":";
              json_string buf cls;
              Buffer.add_string buf ",\"instance\":";
              json_string buf name;
              Buffer.add_string buf "}")
            (Lockstat.held reg))
        regs;
      Buffer.add_string buf "]}")
    labels;
  Buffer.add_char buf ']'

let lockstat_json buf ?(cpus = 4) ?(seed = 42) sources =
  Buffer.add_string buf
    (Printf.sprintf "{\"schema\":\"uvm-sim-lockstat/1\",\"cpus\":%d,\"systems\":"
       cpus);
  lockstat_systems buf ~cpus ~seed sources;
  Buffer.add_string buf "}\n"

(* -- time-series export ------------------------------------------------- *)

let metrics_json buf sources =
  List.iter (fun s -> s.sync ()) sources;
  Buffer.add_string buf "{\"schema\":\"uvm-sim-metrics/1\",\"systems\":[";
  let first_sys = ref true in
  List.iter
    (fun src ->
      json_sep buf first_sys;
      Buffer.add_string buf "{\"label\":";
      json_string buf src.label;
      Buffer.add_string buf ",\"columns\":[";
      let first = ref true in
      List.iter
        (fun c ->
          json_sep buf first;
          json_string buf c)
        (Timeseries.columns src.series);
      Buffer.add_string buf "],\"samples\":[";
      let first = ref true in
      List.iter
        (fun (s : Timeseries.sample) ->
          json_sep buf first;
          Buffer.add_string buf "{\"ts\":";
          json_float buf s.s_ts;
          Buffer.add_string buf ",\"values\":[";
          let fv = ref true in
          Array.iter
            (fun v ->
              json_sep buf fv;
              json_float buf v)
            s.s_values;
          Buffer.add_string buf "]}")
        (Timeseries.samples src.series);
      Buffer.add_string buf "],\"warnings\":[";
      let first = ref true in
      List.iter
        (fun (w : Timeseries.warning) ->
          json_sep buf first;
          Buffer.add_string buf "{\"ts\":";
          json_float buf w.w_ts;
          Buffer.add_string buf ",\"rule\":";
          json_string buf w.w_rule;
          Buffer.add_string buf ",\"detail\":{";
          let fd = ref true in
          List.iter
            (fun (k, v) ->
              json_sep buf fd;
              json_string buf k;
              Buffer.add_char buf ':';
              json_string buf v)
            w.w_detail;
          Buffer.add_string buf "}}")
        (Timeseries.warnings src.series);
      Buffer.add_string buf "]}")
    sources;
  Buffer.add_string buf "]}\n"

(* -- human-readable ----------------------------------------------------- *)

let pp_dump fmt sources =
  List.iter
    (fun src ->
      Format.fprintf fmt "=== %s: %d events (%d dropped) ===@." src.label
        (Hist.retained src.hist) (Hist.dropped src.hist);
      List.iter
        (fun (e : Hist.event) ->
          Format.fprintf fmt "%12.1f us  %-8s %-16s" e.ts
            (Hist.subsystem_name e.subsys) e.name;
          if e.dur > 0.0 then Format.fprintf fmt " dur=%.1fus" e.dur;
          List.iter (fun (k, v) -> Format.fprintf fmt " %s=%s" k v) e.detail;
          Format.fprintf fmt "@.")
        (Hist.events src.hist))
    sources

let print_stats sources =
  List.iter
    (fun a ->
      Printf.printf "\n== %s: counters ==\n" a.agg_label;
      List.iter
        (fun (name, v) ->
          if v <> 0.0 then
            if Float.is_integer v then
              Printf.printf "  %-26s %12.0f\n" name v
            else Printf.printf "  %-26s %12.1f\n" name v)
        a.counters;
      if a.hists <> [] then begin
        Printf.printf "== %s: latency percentiles (simulated us) ==\n"
          a.agg_label;
        Printf.printf "  %-22s %8s %10s %10s %10s %10s %10s\n" "series" "count"
          "mean" "p50" "p95" "p99" "max";
        List.iter
          (fun (name, h) ->
            Printf.printf "  %-22s %8d %10.1f %10.1f %10.1f %10.1f %10.1f\n"
              name (Histogram.count h) (Histogram.mean h) (Histogram.p50 h)
              (Histogram.p95 h) (Histogram.p99 h) (Histogram.max_value h))
          a.hists
      end;
      if a.agg_recorded > 0 then
        Printf.printf "== %s: trace: %d events recorded, %d dropped ==\n"
          a.agg_label a.agg_recorded a.agg_dropped)
    (aggregate sources)

(* -- efficacy report (ledger-derived) ----------------------------------- *)

let all_madv =
  [ Lifecycle.Madv_normal; Lifecycle.Madv_random; Lifecycle.Madv_sequential ]

let all_fills =
  [
    Lifecycle.Fill_zero;
    Lifecycle.Fill_file;
    Lifecycle.Fill_pagein;
    Lifecycle.Fill_cow;
    Lifecycle.Fill_wire;
  ]

let hit_rate used wasted =
  let resolved = used + wasted in
  if resolved = 0 then 0.0
  else 100.0 *. float_of_int used /. float_of_int resolved

let report_json buf sources =
  Buffer.add_string buf "{\"schema\":\"uvm-sim-report/1\",\"systems\":[";
  let first_sys = ref true in
  List.iter
    (fun a ->
      let life = a.agg_life in
      json_sep buf first_sys;
      Buffer.add_string buf "{\"label\":";
      json_string buf a.agg_label;
      Buffer.add_string buf ",\"fault_ahead\":{";
      let first = ref true in
      List.iter
        (fun m ->
          json_sep buf first;
          json_string buf (Lifecycle.madv_name m);
          let used = Lifecycle.fa_used life m
          and wasted = Lifecycle.fa_wasted life m in
          Buffer.add_string buf
            (Printf.sprintf
               ":{\"mapped\":%d,\"used\":%d,\"wasted\":%d,\"hit_rate\":%.1f}"
               (Lifecycle.fa_mapped life m) used wasted (hit_rate used wasted)))
        all_madv;
      Buffer.add_string buf "},\"fills\":{";
      let first = ref true in
      List.iter
        (fun k ->
          json_sep buf first;
          json_string buf (Lifecycle.fill_name k);
          Buffer.add_string buf
            (Printf.sprintf ":%d" (Lifecycle.fill_count life k)))
        all_fills;
      Buffer.add_string buf "},\"distributions\":{";
      let first = ref true in
      List.iter
        (fun (name, h) ->
          json_sep buf first;
          json_string buf name;
          Buffer.add_char buf ':';
          json_hist buf h)
        (Lifecycle.hist_rows life);
      Buffer.add_string buf
        (Printf.sprintf
           "},\"fragmentation\":{\"live_entries\":%d,\"peak_entries\":%d}"
           (Lifecycle.frag_live life) (Lifecycle.frag_peak life));
      Buffer.add_string buf
        (Printf.sprintf ",\"ledger\":{\"illegal_transitions\":%d}}"
           (Lifecycle.illegal_transitions life)))
    (aggregate sources);
  Buffer.add_string buf "]}\n"

(* Side-by-side human tables: one column per aggregated label. *)
let print_report sources =
  let aggs = aggregate sources in
  if aggs <> [] then begin
    let col v = Printf.sprintf "%14s" v in
    let header title =
      Printf.printf "\n== %s ==\n%-34s" title "";
      List.iter (fun a -> print_string (col a.agg_label)) aggs;
      print_newline ()
    in
    let row name value =
      Printf.printf "%-34s" name;
      List.iter (fun a -> print_string (col (value a.agg_life))) aggs;
      print_newline ()
    in
    let int_row name value = row name (fun l -> string_of_int (value l)) in
    header "fault-ahead efficacy (per madvise mode)";
    List.iter
      (fun m ->
        let n = Lifecycle.madv_name m in
        int_row
          (Printf.sprintf "%s: neighbours premapped" n)
          (fun l -> Lifecycle.fa_mapped l m);
        int_row
          (Printf.sprintf "%s: used (fault avoided)" n)
          (fun l -> Lifecycle.fa_used l m);
        int_row
          (Printf.sprintf "%s: wasted (mapped in vain)" n)
          (fun l -> Lifecycle.fa_wasted l m);
        row
          (Printf.sprintf "%s: hit rate" n)
          (fun l ->
            Printf.sprintf "%.1f%%"
              (hit_rate (Lifecycle.fa_used l m) (Lifecycle.fa_wasted l m))))
      all_madv;
    header "fault-in kinds (ledger fills)";
    List.iter
      (fun k ->
        int_row (Lifecycle.fill_name k) (fun l -> Lifecycle.fill_count l k))
      all_fills;
    let dist (name, title) =
      let h l = List.assoc name (Lifecycle.hist_rows l) in
      header title;
      int_row "samples" (fun l -> Histogram.count (h l));
      row "mean" (fun l -> Printf.sprintf "%.1f" (Histogram.mean (h l)));
      List.iter
        (fun (pname, p) ->
          row pname (fun l ->
              Printf.sprintf "%.1f" (Histogram.percentile (h l) p)))
        [ ("p50", 50.0); ("p95", 95.0); ("p99", 99.0) ];
      row "max" (fun l -> Printf.sprintf "%.1f" (Histogram.max_value (h l)))
    in
    dist ("cluster_size_pages", "pageout cluster size (pages/write)");
    dist ("cluster_slot_runs", "pageout cluster contiguity (slot runs)");
    dist ("reassign_distance_slots", "swap-slot reassignment distance");
    dist ("residency_us", "frame residency time (us)");
    dist ("interfault_us", "per-frame inter-fault interval (us)");
    dist ("live_map_entries", "map-entry fragmentation census");
    header "map entries / ledger";
    int_row "live entries now" Lifecycle.frag_live;
    int_row "peak live entries" Lifecycle.frag_peak;
    int_row "illegal ledger transitions" Lifecycle.illegal_transitions
  end

(** UVMHIST-style event history.

    The real UVM artifact ships UVMHIST: per-subsystem bounded ring
    buffers of timestamped kernel events, cheap enough to leave compiled
    in and gathered per machine.  This is its simulator counterpart: a
    [Hist.t] lives next to {!Stats.t} on a simulated machine, each
    subsystem writes typed events stamped with simulated time, and old
    events are overwritten once a subsystem's ring is full.

    Recording is gated on a single [enabled] flag so an untraced run
    pays one boolean check per call site and allocates nothing. *)

type subsystem = Fault | Map | Pdaemon | Pager | Swap | Ipc

val all_subsystems : subsystem list
(** In a fixed order, used by exporters for stable numbering. *)

val subsystem_name : subsystem -> string

type event = {
  seq : int;  (** global record order, breaks timestamp ties *)
  ts : float;  (** simulated microseconds at the event (span start) *)
  dur : float;  (** span length in simulated microseconds; 0 = instant *)
  subsys : subsystem;
  name : string;
  detail : (string * string) list;  (** free-form key/value arguments *)
}

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** [capacity] bounds each subsystem's ring (default 4096 events).
    Disabled histories ([enabled:false], the default) record nothing. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record :
  t ->
  subsys:subsystem ->
  ts:float ->
  ?dur:float ->
  ?detail:(string * string) list ->
  string ->
  unit
(** [record t ~subsys ~ts ~dur ~detail name] appends an event to the
    subsystem's ring, overwriting the oldest once full.  A no-op when
    the history is disabled. *)

val events : t -> event list
(** All retained events across subsystems, sorted by simulated
    timestamp (sequence number breaking ties). *)

val events_of : t -> subsystem -> event list
(** One subsystem's retained events in record order. *)

val recorded : t -> int
(** Total events ever recorded, including overwritten ones. *)

val retained : t -> int
(** Events currently held in the rings. *)

val dropped : t -> int
(** [recorded - retained]: events lost to ring wraparound. *)

val clear : t -> unit

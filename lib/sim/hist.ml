type subsystem = Fault | Map | Pdaemon | Pager | Swap | Ipc

let all_subsystems = [ Fault; Map; Pdaemon; Pager; Swap; Ipc ]

let subsystem_name = function
  | Fault -> "fault"
  | Map -> "map"
  | Pdaemon -> "pdaemon"
  | Pager -> "pager"
  | Swap -> "swap"
  | Ipc -> "ipc"

type event = {
  seq : int;
  ts : float;
  dur : float;
  subsys : subsystem;
  name : string;
  detail : (string * string) list;
}

(* One fixed-capacity ring per subsystem, as in UVMHIST where each
   subsystem declares its own history of a compile-time size. *)
type ring = {
  buf : event array;
  mutable next : int;  (* slot the next event lands in *)
  mutable count : int;  (* live events, <= capacity *)
  mutable total : int;  (* events ever written to this ring *)
}

type t = {
  mutable on : bool;
  mutable seq : int;
  rings : ring array;  (* indexed by subsystem *)
}

let subsys_index = function
  | Fault -> 0
  | Map -> 1
  | Pdaemon -> 2
  | Pager -> 3
  | Swap -> 4
  | Ipc -> 5

let dummy_event =
  { seq = -1; ts = 0.0; dur = 0.0; subsys = Fault; name = ""; detail = [] }

let create ?(capacity = 4096) ?(enabled = false) () =
  if capacity < 1 then invalid_arg "Hist.create: capacity must be >= 1";
  {
    on = enabled;
    seq = 0;
    rings =
      Array.init (List.length all_subsystems) (fun _ ->
          { buf = Array.make capacity dummy_event; next = 0; count = 0; total = 0 });
  }

let enabled t = t.on
let set_enabled t b = t.on <- b

let record t ~subsys ~ts ?(dur = 0.0) ?(detail = []) name =
  if t.on then begin
    let r = t.rings.(subsys_index subsys) in
    let seq = t.seq in
    t.seq <- seq + 1;
    let cap = Array.length r.buf in
    r.buf.(r.next) <- { seq; ts; dur; subsys; name; detail };
    r.next <- (r.next + 1) mod cap;
    if r.count < cap then r.count <- r.count + 1;
    r.total <- r.total + 1
  end

(* Oldest-first walk of one ring. *)
let ring_events r =
  let cap = Array.length r.buf in
  let first = (r.next - r.count + cap) mod cap in
  List.init r.count (fun i -> r.buf.((first + i) mod cap))

let events_of t subsys = ring_events t.rings.(subsys_index subsys)

let events t =
  Array.to_list t.rings
  |> List.concat_map ring_events
  |> List.sort (fun a b ->
         match compare a.ts b.ts with 0 -> compare a.seq b.seq | c -> c)

let recorded t = Array.fold_left (fun acc r -> acc + r.total) 0 t.rings
let retained t = Array.fold_left (fun acc r -> acc + r.count) 0 t.rings
let dropped t = recorded t - retained t

let clear t =
  t.seq <- 0;
  Array.iter
    (fun r ->
      r.next <- 0;
      r.count <- 0;
      r.total <- 0)
    t.rings

type t = {
  mem_access : float;
  page_copy : float;
  page_zero : float;
  struct_alloc : float;
  object_alloc : float;
  hash_lookup : float;
  lock_acquire : float;
  map_entry_search : float;
  map_insert : float;
  map_remove : float;
  fault_entry : float;
  object_search : float;
  pmap_enter : float;
  pmap_remove : float;
  pmap_protect : float;
  disk_op_latency : float;
  disk_page_transfer : float;
  loan_page : float;
  proc_overhead : float;
  syscall_overhead : float;
  line_bounce : float;
}

let default =
  {
    mem_access = 0.05;
    page_copy = 22.0;
    page_zero = 20.0;
    struct_alloc = 1.5;
    object_alloc = 4.0;
    hash_lookup = 1.0;
    lock_acquire = 0.8;
    map_entry_search = 0.4;
    map_insert = 2.0;
    map_remove = 1.5;
    fault_entry = 9.0;
    object_search = 1.0;
    pmap_enter = 2.0;
    pmap_remove = 1.2;
    pmap_protect = 0.9;
    disk_op_latency = 10_000.0;
    disk_page_transfer = 400.0;
    loan_page = 4.0;
    proc_overhead = 250.0;
    syscall_overhead = 20.0;
    line_bounce = 0.4;
  }

let zero =
  {
    mem_access = 0.0;
    page_copy = 0.0;
    page_zero = 0.0;
    struct_alloc = 0.0;
    object_alloc = 0.0;
    hash_lookup = 0.0;
    lock_acquire = 0.0;
    map_entry_search = 0.0;
    map_insert = 0.0;
    map_remove = 0.0;
    fault_entry = 0.0;
    object_search = 0.0;
    pmap_enter = 0.0;
    pmap_remove = 0.0;
    pmap_protect = 0.0;
    disk_op_latency = 0.0;
    disk_page_transfer = 0.0;
    loan_page = 0.0;
    proc_overhead = 0.0;
    syscall_overhead = 0.0;
    line_bounce = 0.0;
  }

let fast_disk t =
  {
    t with
    disk_op_latency = t.disk_op_latency /. 100.0;
    disk_page_transfer = t.disk_page_transfer /. 100.0;
  }

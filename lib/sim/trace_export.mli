(** Exporters for the observability layer.

    A {!source} bundles one traced machine's event history, counters and
    latency histograms under a display label ("UVM", "BSD VM").  The
    exporters consume a list of sources so one run of an experiment —
    which boots both VM systems, possibly several times — lands in a
    single artifact.  Sources sharing a label (several boots in a sweep)
    are folded into one logical system by the aggregating exporters.

    JSON is emitted by hand: the toolchain deliberately has no JSON
    dependency, and the fixed schemas here do not justify one. *)

type source = {
  mutable label : string;
  hist : Hist.t;
  stats : Stats.t;
  latencies : Histogram.set;
  lifecycle : Lifecycle.t;  (** ledger-derived efficacy analytics *)
  spans : Span.t;  (** causal span collector *)
  series : Timeseries.t;  (** vmstat-style periodic samples *)
  locks : Lockstat.t option;  (** the machine's lock registry *)
  mutable sync : unit -> unit;
      (** refresh the gauge fields of [stats] from the live machine;
          installed by the machine, called before any counter export *)
}

val json_string : Buffer.t -> string -> unit
(** Append a JSON string literal, escaping as required. *)

val json_float : Buffer.t -> float -> unit
(** Append a finite float with millisecond-grade precision; non-finite
    values become [0]. *)

val chrome_json : Buffer.t -> source list -> unit
(** Chrome trace-event JSON, loadable in Perfetto or [chrome://tracing].
    Each source becomes a process, each Hist subsystem a thread; timed
    events are complete ("X") events, instants are "i".  Causal spans
    get their own per-subsystem tracks (tids from 100, named
    ["span:<subsys>"]) with flow arrows ("s"/"f" pairs keyed by the
    child's span id) linking each child span to its parent. *)

val spans_json : Buffer.t -> source list -> unit
(** Causal span trees (schema ["uvm-sim-spans/1"]): per source (not
    label-folded — span ids are collector-local), the finished spans
    oldest first, the still-open span stack, and ring accounting. *)

val lockstat_systems : Buffer.t -> ?cpus:int -> ?seed:int -> source list -> unit
(** The ["systems"] array of the lockstat schema: per label (sweeps
    merged via {!Lockstat.merge}), every class's acquire counts, hold
    histograms (total/read/write), per-subsystem attribution, the
    would-be-contention projection at [cpus] simulated CPUs, the
    observed lock-order edges, any order cycles, and the locks held at
    export time. *)

val lockstat_json : Buffer.t -> ?cpus:int -> ?seed:int -> source list -> unit
(** The full lock-observatory artifact
    (schema ["uvm-sim-lockstat/1"]). *)

val metrics_json : Buffer.t -> source list -> unit
(** Time-series telemetry (schema ["uvm-sim-metrics/1"]): per source,
    the sampler's column names, retained samples and watchdog
    warnings. *)

val snapshot_json : Buffer.t -> source list -> unit
(** Counters + histogram summaries, machine-readable
    (schema ["uvm-sim-stats/1"]). *)

val pp_dump : Format.formatter -> source list -> unit
(** Flat human-readable event listing. *)

val print_stats : source list -> unit
(** The per-label counter/percentile tables behind the CLI's [--stats]
    flag, on stdout. *)

val report_json : Buffer.t -> source list -> unit
(** The comparative efficacy report (schema ["uvm-sim-report/1"]):
    per aggregated label, fault-ahead hit/waste per madvise mode,
    fault-in kind counts, pageout cluster size/contiguity and
    reassignment-distance distributions, residency and inter-fault
    histograms, the map-entry fragmentation census, and the count of
    illegal ledger transitions. *)

val print_report : source list -> unit
(** Human rendering of {!report_json}: side-by-side tables with one
    column per aggregated label ("UVM" vs "BSD VM"), on stdout. *)

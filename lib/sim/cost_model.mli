(** Cost model: how many simulated microseconds each primitive operation
    takes.

    Both VM systems (UVM and the BSD VM baseline) charge costs from the same
    model, so any difference in measured time comes only from algorithmic
    differences (extra allocations, object-chain walks, per-page I/O
    operations, lock phases) — mirroring the paper's methodology of running
    both systems on the same 333 MHz Pentium-II.

    The defaults are calibrated so the reproduced tables/figures land in the
    paper's order of magnitude (see EXPERIMENTS.md). *)

type t = {
  (* -- CPU / memory ------------------------------------------------- *)
  mem_access : float;  (** touching an already-mapped page (TLB-hit path) *)
  page_copy : float;  (** copying one page of data (COW resolution, bulk copy) *)
  page_zero : float;  (** zero-filling a fresh page *)
  struct_alloc : float;  (** allocating a small kernel structure (anon, entry, pager) *)
  object_alloc : float;  (** allocating a memory-object structure *)
  hash_lookup : float;  (** one hash-table probe (BSD pager hash) *)
  lock_acquire : float;  (** acquiring a sleep lock (map lock etc.) *)
  (* -- map operations ----------------------------------------------- *)
  map_entry_search : float;  (** examining one map entry during lookup *)
  map_insert : float;  (** linking an entry into a map *)
  map_remove : float;  (** unlinking an entry from a map *)
  (* -- fault handling ------------------------------------------------ *)
  fault_entry : float;  (** trap entry/exit + fault-routine fixed overhead *)
  object_search : float;  (** examining one memory object for a page *)
  (* -- pmap (MMU) ---------------------------------------------------- *)
  pmap_enter : float;  (** installing one translation *)
  pmap_remove : float;  (** removing one translation *)
  pmap_protect : float;  (** changing protection of one translation *)
  (* -- devices -------------------------------------------------------- *)
  disk_op_latency : float;  (** fixed per-I/O-operation cost (seek + rotation) *)
  disk_page_transfer : float;  (** per-page transfer time *)
  (* -- data movement --------------------------------------------------- *)
  loan_page : float;  (** per-page loanout bookkeeping (pv walk, counters) *)
  (* -- process bookkeeping ------------------------------------------- *)
  proc_overhead : float;  (** non-VM part of fork+exit+wait *)
  syscall_overhead : float;  (** fixed syscall entry/exit cost *)
  (* -- simulated SMP --------------------------------------------------- *)
  line_bounce : float;
      (** transferring a dirty cache line when a lock instance last held
          on another simulated CPU is acquired here (DESIGN.md §16) *)
}

val default : t
(** Calibrated to 1999-era hardware: ~10 ms disk ops, ~400 µs 4 KB
    transfers, ~22 µs page copies, ~20 µs page zeroing. *)

val zero : t
(** All costs zero — for tests that check pure semantics. *)

val fast_disk : t -> t
(** Same CPU costs but a 100x faster disk; for tests that exercise paging
    paths without caring about I/O magnitudes. *)

(** Deterministic, seedable I/O fault injection for {!Disk}.

    Real disks fail; UVM's pager API and swap-location reassignment exist
    because of that (paper §6–7).  A fault plan decides, per simulated disk
    operation, whether the transfer fails and how:

    - {b rate-based}: every read (or write) op fails independently with a
      configured probability, driven by the plan's own {!Rng} so runs are
      reproducible from the seed;
    - {b scripted}: explicit rules match an operation direction and
      optionally a specific device slot, fire after a configurable number
      of matching operations, and fire a configurable number of times.

    A [Transient] error models a recoverable condition (bus reset,
    timeout): retrying the same operation may succeed.  A [Permanent]
    error models bad media: every further access to the same slot keeps
    failing, and the caller must stop using that location. *)

type op = Read | Write

type severity = Transient | Permanent

type error = {
  failed_op : op;
  severity : severity;
  bad_slot : int option;  (** the offending device slot, when known *)
}

let string_of_error e =
  Printf.sprintf "%s %s error%s"
    (match e.severity with Transient -> "transient" | Permanent -> "permanent")
    (match e.failed_op with Read -> "read" | Write -> "write")
    (match e.bad_slot with
    | Some s -> Printf.sprintf " at slot %d" s
    | None -> "")

type rule = {
  rule_op : op option;  (** [None] matches both directions *)
  rule_slot : int option;  (** [None] matches any (or no) slot *)
  rule_severity : severity;
  mutable skip : int;  (** matching ops to let through before firing *)
  mutable remaining : int;  (** times left to fire; [max_int] = forever *)
}

type t = {
  rng : Rng.t;
  mutable read_error_rate : float;
  mutable write_error_rate : float;
  mutable rate_severity : severity;
  mutable rules : rule list;  (** in declaration order *)
}

let create ?(seed = 0xFA17) ?(read_error_rate = 0.0) ?(write_error_rate = 0.0)
    ?(rate_severity = Transient) () =
  if read_error_rate < 0.0 || read_error_rate > 1.0 then
    invalid_arg "Fault_plan.create: read_error_rate out of [0,1]";
  if write_error_rate < 0.0 || write_error_rate > 1.0 then
    invalid_arg "Fault_plan.create: write_error_rate out of [0,1]";
  {
    rng = Rng.create ~seed;
    read_error_rate;
    write_error_rate;
    rate_severity;
    rules = [];
  }

(* Script a failure.  [after] matching operations pass before the rule
   fires; it then fires [count] times (default: once for transients,
   forever for permanent errors — bad media does not heal). *)
let fail_op t ?slot ?(after = 0) ?count op severity =
  let remaining =
    match (count, severity) with
    | Some c, _ -> c
    | None, Transient -> 1
    | None, Permanent -> max_int
  in
  t.rules <-
    t.rules
    @ [ { rule_op = Some op; rule_slot = slot; rule_severity = severity;
          skip = after; remaining } ]

let rule_matches rule ~op ~slots =
  (match rule.rule_op with Some o -> o = op | None -> true)
  && match rule.rule_slot with
     | Some s -> List.mem s slots
     | None -> true

(* Decide the fate of one operation touching [slots] (empty for slotless
   devices, e.g. file-system transfers).  Scripted rules are consulted in
   order; the rate check runs only if no rule fires, and always draws from
   the RNG-stream position determined solely by prior rate checks, so
   scripted rules do not perturb rate-based decisions. *)
let check t ~op ~slots =
  let fired = ref None in
  List.iter
    (fun rule ->
      if !fired = None && rule.remaining > 0 && rule_matches rule ~op ~slots
      then
        if rule.skip > 0 then rule.skip <- rule.skip - 1
        else begin
          if rule.remaining <> max_int then
            rule.remaining <- rule.remaining - 1;
          fired :=
            Some
              {
                failed_op = op;
                severity = rule.rule_severity;
                bad_slot = rule.rule_slot;
              }
        end)
    t.rules;
  match !fired with
  | Some _ as e -> e
  | None ->
      let rate =
        match op with
        | Read -> t.read_error_rate
        | Write -> t.write_error_rate
      in
      if rate > 0.0 && Rng.float t.rng 1.0 < rate then
        (* Blame the first slot so permanent rate errors are recoverable
           by the same blacklist-and-reassign path as scripted ones. *)
        let bad_slot = match slots with [] -> None | s :: _ -> Some s in
        Some { failed_op = op; severity = t.rate_severity; bad_slot }
      else None

(** The simulated disk: a cost model (per-operation latency plus per-page
    transfer time) and an optional {!Fault_plan} making transfers fallible.

    Every transfer returns [(unit, Fault_plan.error) result].  A failed
    operation still charges the clock — the bus time and the seek were
    spent before the device reported the error — and still counts as an
    issued operation, but transfers no pages.  Callers that know which
    device slots an operation touches pass them via [~slots] so scripted
    per-slot faults (bad media) can target them. *)

type t = {
  clock : Simclock.t;
  costs : Cost_model.t;
  stats : Stats.t;
  mutable plan : Fault_plan.t option;
  mutable read_ops : int;
  mutable write_ops : int;
  mutable pages_read : int;
  mutable pages_written : int;
}

let create ~clock ~costs ~stats =
  {
    clock;
    costs;
    stats;
    plan = None;
    read_ops = 0;
    write_ops = 0;
    pages_read = 0;
    pages_written = 0;
  }

let set_fault_plan t plan = t.plan <- plan
let fault_plan t = t.plan

let transfer_cost ?(sequential = false) t npages =
  (if sequential then 0.0 else t.costs.Cost_model.disk_op_latency)
  +. (float_of_int npages *. t.costs.Cost_model.disk_page_transfer)

let inject t ~op ~slots =
  match t.plan with
  | None -> None
  | Some plan -> (
      match Fault_plan.check plan ~op ~slots with
      | Some _ as e ->
          t.stats.Stats.io_errors_injected <-
            t.stats.Stats.io_errors_injected + 1;
          e
      | None -> None)

let read ?sequential ?(slots = []) t ~npages =
  if npages < 1 then invalid_arg "Disk.read: npages must be >= 1";
  Simclock.advance t.clock (transfer_cost ?sequential t npages);
  t.read_ops <- t.read_ops + 1;
  t.stats.Stats.disk_read_ops <- t.stats.Stats.disk_read_ops + 1;
  match inject t ~op:Fault_plan.Read ~slots with
  | Some e -> Error e
  | None ->
      t.pages_read <- t.pages_read + npages;
      t.stats.Stats.disk_pages_read <- t.stats.Stats.disk_pages_read + npages;
      Ok ()

let write ?(slots = []) t ~npages =
  if npages < 1 then invalid_arg "Disk.write: npages must be >= 1";
  Simclock.advance t.clock (transfer_cost t npages);
  t.write_ops <- t.write_ops + 1;
  t.stats.Stats.disk_write_ops <- t.stats.Stats.disk_write_ops + 1;
  match inject t ~op:Fault_plan.Write ~slots with
  | Some e -> Error e
  | None ->
      t.pages_written <- t.pages_written + npages;
      t.stats.Stats.disk_pages_written <-
        t.stats.Stats.disk_pages_written + npages;
      Ok ()

let read_ops t = t.read_ops
let write_ops t = t.write_ops
let pages_read t = t.pages_read
let pages_written t = t.pages_written

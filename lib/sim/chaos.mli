(** Seeded chaos scenarios for the soak harness.

    A scenario is a deterministic schedule of overlapping fault phases
    over a span of simulated time.  This module is pure data — the soak
    experiment interprets the modes against a booted kernel (killing
    devices, installing fault plans, squeezing rlimits, churning
    processes) and attributes every OOM kill and SLO breach to the
    phases active when it happened. *)

type mode =
  | Device_death of { dev_name : string }
      (** kill a named swap device mid-run (drain + failover must cope) *)
  | Io_storm of { read_rate : float; write_rate : float }
      (** rate-based transient I/O errors on every disk *)
  | Pressure_spike of { spike_pages : int }
      (** an extra anonymous working set touched repeatedly *)
  | Rlimit_squeeze of { squeeze_resident : int }
      (** clamp every process' resident-page limit *)
  | Fork_churn of { churn_procs : int }
      (** spawn/exit this many extra short-lived processes per epoch *)

type phase = {
  ph_name : string;
  ph_start_us : float;
  ph_len_us : float;
  ph_modes : mode list;
}

type scenario = {
  sc_seed : int;
  sc_len_us : float;
  sc_phases : phase list;
}

val mode_name : mode -> string
val mode_detail : mode -> (string * string) list

val phases_at : scenario -> now_us:float -> phase list
(** Phases active at [now_us], in schedule order. *)

val phase_names_at : scenario -> now_us:float -> string list

val generate : seed:int -> len_us:float -> pressure_pages:int -> scenario
(** The canonical soak schedule: warm-up, fork/exit churn, an I/O error
    storm, a memory-pressure spike, a swap-device death and an rlimit
    squeeze, overlapping so ≥3 fault modes compose, then a cool-down.
    Deterministic in [seed]; [pressure_pages] scales the spike to the
    machine. *)

type t = {
  mutable faults : int;
  mutable fault_ahead_mapped : int;
  mutable fault_ahead_used : int;
  mutable fault_ahead_wasted : int;
  mutable pageins : int;
  mutable pageouts : int;
  mutable disk_read_ops : int;
  mutable disk_write_ops : int;
  mutable disk_pages_read : int;
  mutable disk_pages_written : int;
  mutable pages_copied : int;
  mutable pages_zeroed : int;
  mutable map_entries_allocated : int;
  mutable map_entries_freed : int;
  mutable objects_allocated : int;
  mutable pager_structs_allocated : int;
  mutable hash_lookups : int;
  mutable collapse_attempts : int;
  mutable collapse_successes : int;
  mutable anons_allocated : int;
  mutable anons_freed : int;
  mutable amaps_allocated : int;
  mutable amaps_freed : int;
  mutable shadow_objects_allocated : int;
  mutable obj_cache_hits : int;
  mutable obj_cache_misses : int;
  mutable obj_cache_evictions : int;
  mutable vnode_recycles : int;
  mutable cow_copies : int;
  mutable cow_reuses : int;
  mutable loanouts : int;
  mutable pages_loaned : int;
  mutable page_transfers : int;
  mutable swap_slots_allocated : int;
  mutable swap_slots_freed : int;
  mutable pmap_enters : int;
  mutable pmap_removes : int;
  mutable pmap_protects : int;
  mutable lock_acquisitions : int;
  mutable map_lock_held_us : float;
  mutable io_errors_injected : int;
  mutable pageout_retries : int;
  mutable pageouts_recovered : int;
  mutable pageins_failed : int;
  mutable bad_slots : int;
  mutable swap_full_events : int;
  mutable ipc_sends : int;
  mutable ipc_recvs : int;
  mutable ipc_bytes_copied : int;
  mutable ipc_bytes_loaned : int;
  mutable ipc_bytes_mapped : int;
  mutable vslock_ios : int;
}

let create () =
  {
    faults = 0;
    fault_ahead_mapped = 0;
    fault_ahead_used = 0;
    fault_ahead_wasted = 0;
    pageins = 0;
    pageouts = 0;
    disk_read_ops = 0;
    disk_write_ops = 0;
    disk_pages_read = 0;
    disk_pages_written = 0;
    pages_copied = 0;
    pages_zeroed = 0;
    map_entries_allocated = 0;
    map_entries_freed = 0;
    objects_allocated = 0;
    pager_structs_allocated = 0;
    hash_lookups = 0;
    collapse_attempts = 0;
    collapse_successes = 0;
    anons_allocated = 0;
    anons_freed = 0;
    amaps_allocated = 0;
    amaps_freed = 0;
    shadow_objects_allocated = 0;
    obj_cache_hits = 0;
    obj_cache_misses = 0;
    obj_cache_evictions = 0;
    vnode_recycles = 0;
    cow_copies = 0;
    cow_reuses = 0;
    loanouts = 0;
    pages_loaned = 0;
    page_transfers = 0;
    swap_slots_allocated = 0;
    swap_slots_freed = 0;
    pmap_enters = 0;
    pmap_removes = 0;
    pmap_protects = 0;
    lock_acquisitions = 0;
    map_lock_held_us = 0.0;
    io_errors_injected = 0;
    pageout_retries = 0;
    pageouts_recovered = 0;
    pageins_failed = 0;
    bad_slots = 0;
    swap_full_events = 0;
    ipc_sends = 0;
    ipc_recvs = 0;
    ipc_bytes_copied = 0;
    ipc_bytes_loaned = 0;
    ipc_bytes_mapped = 0;
    vslock_ios = 0;
  }

let reset t =
  t.faults <- 0;
  t.fault_ahead_mapped <- 0;
  t.fault_ahead_used <- 0;
  t.fault_ahead_wasted <- 0;
  t.pageins <- 0;
  t.pageouts <- 0;
  t.disk_read_ops <- 0;
  t.disk_write_ops <- 0;
  t.disk_pages_read <- 0;
  t.disk_pages_written <- 0;
  t.pages_copied <- 0;
  t.pages_zeroed <- 0;
  t.map_entries_allocated <- 0;
  t.map_entries_freed <- 0;
  t.objects_allocated <- 0;
  t.pager_structs_allocated <- 0;
  t.hash_lookups <- 0;
  t.collapse_attempts <- 0;
  t.collapse_successes <- 0;
  t.anons_allocated <- 0;
  t.anons_freed <- 0;
  t.amaps_allocated <- 0;
  t.amaps_freed <- 0;
  t.shadow_objects_allocated <- 0;
  t.obj_cache_hits <- 0;
  t.obj_cache_misses <- 0;
  t.obj_cache_evictions <- 0;
  t.vnode_recycles <- 0;
  t.cow_copies <- 0;
  t.cow_reuses <- 0;
  t.loanouts <- 0;
  t.pages_loaned <- 0;
  t.page_transfers <- 0;
  t.swap_slots_allocated <- 0;
  t.swap_slots_freed <- 0;
  t.pmap_enters <- 0;
  t.pmap_removes <- 0;
  t.pmap_protects <- 0;
  t.lock_acquisitions <- 0;
  t.map_lock_held_us <- 0.0;
  t.io_errors_injected <- 0;
  t.pageout_retries <- 0;
  t.pageouts_recovered <- 0;
  t.pageins_failed <- 0;
  t.bad_slots <- 0;
  t.swap_full_events <- 0;
  t.ipc_sends <- 0;
  t.ipc_recvs <- 0;
  t.ipc_bytes_copied <- 0;
  t.ipc_bytes_loaned <- 0;
  t.ipc_bytes_mapped <- 0;
  t.vslock_ios <- 0

let snapshot t = { t with faults = t.faults }

let diff ~after ~before =
  {
    faults = after.faults - before.faults;
    fault_ahead_mapped = after.fault_ahead_mapped - before.fault_ahead_mapped;
    fault_ahead_used = after.fault_ahead_used - before.fault_ahead_used;
    fault_ahead_wasted = after.fault_ahead_wasted - before.fault_ahead_wasted;
    pageins = after.pageins - before.pageins;
    pageouts = after.pageouts - before.pageouts;
    disk_read_ops = after.disk_read_ops - before.disk_read_ops;
    disk_write_ops = after.disk_write_ops - before.disk_write_ops;
    disk_pages_read = after.disk_pages_read - before.disk_pages_read;
    disk_pages_written = after.disk_pages_written - before.disk_pages_written;
    pages_copied = after.pages_copied - before.pages_copied;
    pages_zeroed = after.pages_zeroed - before.pages_zeroed;
    map_entries_allocated =
      after.map_entries_allocated - before.map_entries_allocated;
    map_entries_freed = after.map_entries_freed - before.map_entries_freed;
    objects_allocated = after.objects_allocated - before.objects_allocated;
    pager_structs_allocated =
      after.pager_structs_allocated - before.pager_structs_allocated;
    hash_lookups = after.hash_lookups - before.hash_lookups;
    collapse_attempts = after.collapse_attempts - before.collapse_attempts;
    collapse_successes = after.collapse_successes - before.collapse_successes;
    anons_allocated = after.anons_allocated - before.anons_allocated;
    anons_freed = after.anons_freed - before.anons_freed;
    amaps_allocated = after.amaps_allocated - before.amaps_allocated;
    amaps_freed = after.amaps_freed - before.amaps_freed;
    shadow_objects_allocated =
      after.shadow_objects_allocated - before.shadow_objects_allocated;
    obj_cache_hits = after.obj_cache_hits - before.obj_cache_hits;
    obj_cache_misses = after.obj_cache_misses - before.obj_cache_misses;
    obj_cache_evictions = after.obj_cache_evictions - before.obj_cache_evictions;
    vnode_recycles = after.vnode_recycles - before.vnode_recycles;
    cow_copies = after.cow_copies - before.cow_copies;
    cow_reuses = after.cow_reuses - before.cow_reuses;
    loanouts = after.loanouts - before.loanouts;
    pages_loaned = after.pages_loaned - before.pages_loaned;
    page_transfers = after.page_transfers - before.page_transfers;
    swap_slots_allocated =
      after.swap_slots_allocated - before.swap_slots_allocated;
    swap_slots_freed = after.swap_slots_freed - before.swap_slots_freed;
    pmap_enters = after.pmap_enters - before.pmap_enters;
    pmap_removes = after.pmap_removes - before.pmap_removes;
    pmap_protects = after.pmap_protects - before.pmap_protects;
    lock_acquisitions = after.lock_acquisitions - before.lock_acquisitions;
    map_lock_held_us = after.map_lock_held_us -. before.map_lock_held_us;
    io_errors_injected = after.io_errors_injected - before.io_errors_injected;
    pageout_retries = after.pageout_retries - before.pageout_retries;
    pageouts_recovered = after.pageouts_recovered - before.pageouts_recovered;
    pageins_failed = after.pageins_failed - before.pageins_failed;
    bad_slots = after.bad_slots - before.bad_slots;
    swap_full_events = after.swap_full_events - before.swap_full_events;
    ipc_sends = after.ipc_sends - before.ipc_sends;
    ipc_recvs = after.ipc_recvs - before.ipc_recvs;
    ipc_bytes_copied = after.ipc_bytes_copied - before.ipc_bytes_copied;
    ipc_bytes_loaned = after.ipc_bytes_loaned - before.ipc_bytes_loaned;
    ipc_bytes_mapped = after.ipc_bytes_mapped - before.ipc_bytes_mapped;
    vslock_ios = after.vslock_ios - before.vslock_ios;
  }

let to_rows t =
  [
    ("faults", float_of_int t.faults);
    ("fault_ahead_mapped", float_of_int t.fault_ahead_mapped);
    ("fault_ahead_used", float_of_int t.fault_ahead_used);
    ("fault_ahead_wasted", float_of_int t.fault_ahead_wasted);
    ("pageins", float_of_int t.pageins);
    ("pageouts", float_of_int t.pageouts);
    ("disk_read_ops", float_of_int t.disk_read_ops);
    ("disk_write_ops", float_of_int t.disk_write_ops);
    ("disk_pages_read", float_of_int t.disk_pages_read);
    ("disk_pages_written", float_of_int t.disk_pages_written);
    ("pages_copied", float_of_int t.pages_copied);
    ("pages_zeroed", float_of_int t.pages_zeroed);
    ("map_entries_allocated", float_of_int t.map_entries_allocated);
    ("map_entries_freed", float_of_int t.map_entries_freed);
    ("objects_allocated", float_of_int t.objects_allocated);
    ("pager_structs_allocated", float_of_int t.pager_structs_allocated);
    ("hash_lookups", float_of_int t.hash_lookups);
    ("collapse_attempts", float_of_int t.collapse_attempts);
    ("collapse_successes", float_of_int t.collapse_successes);
    ("anons_allocated", float_of_int t.anons_allocated);
    ("anons_freed", float_of_int t.anons_freed);
    ("amaps_allocated", float_of_int t.amaps_allocated);
    ("amaps_freed", float_of_int t.amaps_freed);
    ("shadow_objects_allocated", float_of_int t.shadow_objects_allocated);
    ("obj_cache_hits", float_of_int t.obj_cache_hits);
    ("obj_cache_misses", float_of_int t.obj_cache_misses);
    ("obj_cache_evictions", float_of_int t.obj_cache_evictions);
    ("vnode_recycles", float_of_int t.vnode_recycles);
    ("cow_copies", float_of_int t.cow_copies);
    ("cow_reuses", float_of_int t.cow_reuses);
    ("loanouts", float_of_int t.loanouts);
    ("pages_loaned", float_of_int t.pages_loaned);
    ("page_transfers", float_of_int t.page_transfers);
    ("swap_slots_allocated", float_of_int t.swap_slots_allocated);
    ("swap_slots_freed", float_of_int t.swap_slots_freed);
    ("pmap_enters", float_of_int t.pmap_enters);
    ("pmap_removes", float_of_int t.pmap_removes);
    ("pmap_protects", float_of_int t.pmap_protects);
    ("lock_acquisitions", float_of_int t.lock_acquisitions);
    ("map_lock_held_us", t.map_lock_held_us);
    ("io_errors_injected", float_of_int t.io_errors_injected);
    ("pageout_retries", float_of_int t.pageout_retries);
    ("pageouts_recovered", float_of_int t.pageouts_recovered);
    ("pageins_failed", float_of_int t.pageins_failed);
    ("bad_slots", float_of_int t.bad_slots);
    ("swap_full_events", float_of_int t.swap_full_events);
    ("ipc_sends", float_of_int t.ipc_sends);
    ("ipc_recvs", float_of_int t.ipc_recvs);
    ("ipc_bytes_copied", float_of_int t.ipc_bytes_copied);
    ("ipc_bytes_loaned", float_of_int t.ipc_bytes_loaned);
    ("ipc_bytes_mapped", float_of_int t.ipc_bytes_mapped);
    ("vslock_ios", float_of_int t.vslock_ios);
  ]

let pp ppf t =
  List.iter
    (fun (name, v) ->
      if v <> 0.0 then Format.fprintf ppf "%-28s %12.1f@." name v)
    (to_rows t)

(** The lock observatory (DESIGN.md §15).

    Both kernels are sequential today, but every structure they guard —
    maps, amaps, objects, the paging queues, the swap tier, IPC channels,
    the pagedaemon — will become a real lock under simulated SMP.  This
    module gives each of them a registered lock {e now}: one instrumented
    acquire/release API that records per-class hold-time histograms
    (split by read/write mode and by the holding subsystem, attributed
    via the active {!Span}), a dynamic class-level lock-order graph with
    cycle detection (the lockdep analogue, consumed by [Check.Lock]
    audits), and per-instance hold intervals that a would-be-contention
    model replays against N simulated CPUs.

    A registry is cheap when inactive: acquire/release on a machine
    booted without tracing is a couple of field tests and no
    allocation. *)

type mode = Read | Write

type t
(** A per-machine lock registry. *)

type lock
(** One registered lock instance.  Acquires may nest recursively on the
    same instance (a depth count; only the outermost pair records). *)

val known_classes : string list
(** The kernel lock classes in canonical order:
    map, amap, object, pagequeue, swap, ipc, pdaemon, oom. *)

val create : ?enabled:bool -> now:(unit -> float) -> unit -> t
(** [now] supplies simulated-time timestamps (the machine clock). *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val set_spans : t -> Span.t option -> unit
(** Span sink: each recorded hold opens a ["lock:<class>"] span (subsys =
    class) so lock time shows up in critical-path decompositions, and the
    innermost non-lock open span attributes the hold to a subsystem.
    The pagequeue class is exempt (its leaf operations would flood the
    ring with zero-duration spans). *)

val set_hist : t -> Hist.t option -> unit
(** Event-ring sink, used for the legacy ["map_lock"] {!Hist.Map} events
    so the map class keeps exactly the trace shape it had before the
    registry existed. *)

val set_latencies : t -> Histogram.set option -> unit
(** Latency-set sink for the legacy ["map_lock_us"] series. *)

val active : t -> bool
(** True when acquires record anything: the registry is enabled, or its
    span sink is currently collecting. *)

(** {1 Contention observer (the simulated-SMP hook)} *)

type contention_event =
  | Acquired of { cls : string; inst : int; mode : mode; root : bool }
      (** fired on the outermost acquire of an instance, {e before} the
          hold's start timestamp is read — wait time the observer charges
          to the machine clock extends the wait, not the hold.  [root]
          marks an {!acquire_root}: a thread-context marker (pagedaemon,
          OOM reaper) that no fault path ever blocks on, which a
          contention model should ignore *)
  | Released of { cls : string; inst : int; mode : mode; root : bool }
      (** fired on the matching outermost release, after the hold end
          timestamp is read *)

val set_observer : t -> (contention_event -> unit) option -> unit
(** Install the contention observer ({!Smp} wires one per scheduler run).
    Events fire only while the registry is {!active} — an SMP run needs a
    traced machine.  Acquire/release pairs are balanced even if the
    observer is swapped mid-hold (a hold announced at acquire is always
    announced at release). *)

val register : t -> cls:string -> string -> lock
(** A fresh lock instance of class [cls].  [cls] need not be in
    {!known_classes} (tests register synthetic classes). *)

val instance : t -> cls:string -> id:int -> lock
(** Memoised registration keyed by [(cls, id)] — for locks living in
    structures the registry shouldn't invade (amaps, objects), looked up
    on the fault path without allocating on repeat visits. *)

val acquire : t -> lock -> mode:mode -> unit
(** Record an acquire: nesting edges are drawn from every lock held in
    the current context to this one's class (same-class edges are
    ignored — instances of a class may nest). *)

val acquire_root : t -> lock -> mode:mode -> unit
(** Acquire as a context break: no edges are drawn from the locks held
    outside, and locks acquired while this one is held draw edges only
    back to it.  Models entry into a logically-separate thread — the
    pagedaemon running from inside an allocation that holds fault-path
    locks. *)

val release : t -> lock -> unit
(** Close the hold: observes the class histograms (total and per-mode),
    attributes the hold to the subsystem captured at acquire, appends
    the interval to the class's bounded replay ring and finishes the
    lock span.  Balanced with {!acquire} even across {!active} flips. *)

val held : t -> (string * string) list
(** Currently held (class, instance-name) pairs, innermost first — the
    lock analogue of {!Span.open_spans}, dumped into crash artifacts. *)

(** {1 Aggregated views} *)

type class_view = {
  cv_cls : string;
  cv_instances : int;  (** registered instances *)
  cv_acquires : int;  (** outermost acquires (recursion not re-counted) *)
  cv_reads : int;
  cv_writes : int;
  cv_hold : Histogram.t;  (** hold time, µs, all modes *)
  cv_read_hold : Histogram.t;
  cv_write_hold : Histogram.t;
  cv_by_subsys : (string * int * float) list;
      (** (subsystem, holds, total µs) attributed via the span stack *)
  cv_max_hold_us : float;
}

val views : t -> class_view list
(** One view per class with at least one registered instance, in
    {!known_classes} order (unknown classes after, in registration
    order).  The histograms are live — snapshot before mutating. *)

val total_acquires : t -> int
val class_hold_us : t -> string -> float
(** Cumulative recorded hold time of one class (0 if unknown). *)

val take_window_max_us : t -> float
(** Largest single hold recorded since the previous call, then reset —
    the vmstat "max hold this window" gauge. *)

val top_class : t -> (string * float) option
(** The class with the most cumulative hold time, if any recorded. *)

(** {1 Lock-order auditing} *)

val order_edges : t -> (string * string * int) list
(** Observed class-level nesting edges (held-class, acquired-class,
    count), sorted. *)

val cycles : t -> string list list
(** Elementary cycles in the order graph, each as the class sequence
    [c1 -> c2 -> ... -> c1] (the closing edge implied), normalised to
    start at the lexicographically-smallest class and deduplicated.
    Empty means lock-order clean. *)

(** {1 Would-be-contention model} *)

type projection = {
  pj_cpus : int;
  pj_events : int;  (** replayed acquires across all simulated CPUs *)
  pj_wait_us : float;  (** projected total wait *)
  pj_mean_wait_us : float;
  pj_max_wait_us : float;
  pj_bounces : int;  (** consecutive holds by different CPUs *)
  pj_utilization : float;  (** hold time / replay window *)
}

val project : t -> cls:string -> cpus:int -> seed:int -> projection option
(** Replay the class's recorded per-instance hold intervals against
    [cpus] simulated CPUs: CPU 0 replays the recording verbatim; each
    further CPU replays a stream with the same length whose arrivals
    resample the recorded inter-arrival gaps and whose holds resample
    the recorded (instance, mode, duration) triples, all from a
    [seed]-deterministic generator.  Merged arrivals then queue on a
    per-instance reader/writer lock: readers admit concurrently, writers
    exclusively.  [None] when the class recorded no intervals. *)

val merge : into:t -> t -> unit
(** Fold a registry's recorded data (counts, histograms, attribution,
    intervals, order edges) into [into] — label-level aggregation across
    several boots of the same system. *)

(* Simulated SMP (DESIGN.md §16).

   N virtual CPUs over one sequential simulation: each CPU owns a
   virtual clock, the scheduler interleaves runnable tasks (Procsim
   processes, storm workers) deterministically at step boundaries, and a
   contention model charges lock waits and cache-line bounces into the
   machine clock while the quantum runs — so the costs land inside the
   hold/fault being simulated, not as an afterthought.

   Scheduling rule (the determinism contract): among CPUs with runnable
   tasks, run the one with the smallest virtual clock (ties: lowest CPU
   index); within a CPU, tasks round-robin.  One quantum is one task
   step.  Machine-clock time consumed by the step advances that CPU's
   virtual clock, so CPUs progress in lockstep with their own work, and
   a run is a pure function of (tasks, seed). *)

type task = { t_name : string; t_step : int -> bool; mutable t_steps : int }

type cpu = {
  c_idx : int;
  mutable c_now : float;  (* virtual clock, µs *)
  mutable c_quanta : int;
  c_stats : Stats.t;  (* per-CPU shard: quantum deltas accumulated *)
  mutable c_wait_us : float;
  mutable c_bounces : int;
  c_wait_by : (string, float ref) Hashtbl.t;  (* lock class -> wait µs *)
  c_bounce_by : (string, int ref) Hashtbl.t;
  c_tasks : task Queue.t;
}

(* Per lock instance: which CPU touched it last (bounce detection) and,
   for its last read/write holds, when they end in virtual time and how
   long they were (wait model: readers admit concurrently, writers
   exclude everyone; a waiter never waits longer than the blocking hold
   itself lasted). *)
type inst_state = {
  mutable i_last_cpu : int;
  mutable i_w_end : float;
  mutable i_r_end : float;
  mutable i_w_dur : float;
  mutable i_r_dur : float;
  mutable i_acq_v : float;  (* virtual time of the in-flight acquire *)
}

type t = {
  clock : Simclock.t;
  costs : Cost_model.t;
  stats : Stats.t;  (* the machine's global counters *)
  locks : Lockstat.t option;
  rng : Rng.t;
  cpus : cpu array;
  insts : (string * int, inst_state) Hashtbl.t;
  mutable running : int;  (* CPU of the quantum in flight, -1 between *)
  mutable q_m0 : float;  (* machine clock at quantum start *)
  mutable q_v0 : float;  (* running CPU's virtual clock at quantum start *)
  mutable quanta : int;
  mutable on_dispatch : (int -> unit) option;
}

let create ?(seed = 1) ~cpus ~clock ~costs ~stats ?locks () =
  if cpus < 1 then invalid_arg "Smp.create: need at least one CPU";
  {
    clock;
    costs;
    stats;
    locks;
    rng = Rng.create ~seed;
    cpus =
      Array.init cpus (fun i ->
          {
            c_idx = i;
            c_now = 0.0;
            c_quanta = 0;
            c_stats = Stats.create ();
            c_wait_us = 0.0;
            c_bounces = 0;
            c_wait_by = Hashtbl.create 8;
            c_bounce_by = Hashtbl.create 8;
            c_tasks = Queue.create ();
          });
    insts = Hashtbl.create 64;
    running = -1;
    q_m0 = 0.0;
    q_v0 = 0.0;
    quanta = 0;
    on_dispatch = None;
  }

let ncpus t = Array.length t.cpus
let set_on_dispatch t f = t.on_dispatch <- Some f
let current_cpu t = t.running
let runnable t ~cpu = Queue.length t.cpus.(cpu).c_tasks

let add_task t ?cpu ~name step =
  let c =
    match cpu with
    | Some i ->
        if i < 0 || i >= ncpus t then invalid_arg "Smp.add_task: no such CPU";
        i
    | None -> Rng.int t.rng (ncpus t)
  in
  Queue.add { t_name = name; t_step = step; t_steps = 0 } t.cpus.(c).c_tasks

(* ---- The contention model (Lockstat observer) ----------------------- *)

let inst_state t ~cls ~inst =
  match Hashtbl.find_opt t.insts (cls, inst) with
  | Some s -> s
  | None ->
      let s =
        {
          i_last_cpu = -1;
          i_w_end = 0.0;
          i_r_end = 0.0;
          i_w_dur = 0.0;
          i_r_dur = 0.0;
          i_acq_v = 0.0;
        }
      in
      Hashtbl.replace t.insts (cls, inst) s;
      s

let bump_f tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r +. v
  | None -> Hashtbl.replace tbl key (ref v)

let bump_i tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.replace tbl key (ref 1)

(* Virtual time on the running CPU right now: its clock at quantum start
   plus the machine time the quantum has consumed so far. *)
let vnow t = t.q_v0 +. (Simclock.now t.clock -. t.q_m0)

let observe t (ev : Lockstat.contention_event) =
  if t.running >= 0 then
    match ev with
    (* Root acquires are thread-context markers (pagedaemon, OOM reaper):
       no fault path blocks on them in a real kernel, so the contention
       model is blind to them. *)
    | Lockstat.Acquired { root = true; _ } | Lockstat.Released { root = true; _ }
      ->
        ()
    | Lockstat.Acquired { cls; inst; mode; root = _ } ->
        let cpu = t.cpus.(t.running) in
        let st = inst_state t ~cls ~inst in
        (* Cross-CPU handoff: the lock word's cache line migrates. *)
        if st.i_last_cpu >= 0 && st.i_last_cpu <> t.running then begin
          Simclock.advance t.clock t.costs.Cost_model.line_bounce;
          cpu.c_bounces <- cpu.c_bounces + 1;
          bump_i cpu.c_bounce_by cls;
          t.stats.Stats.line_bounces <- t.stats.Stats.line_bounces + 1
        end;
        let v = vnow t in
        (* Raw overlap is end-of-blocking-hold minus now; but the CPUs'
           clocks only meet at quantum boundaries, so raw overlap also
           contains up to a quantum of clock skew.  A waiter physically
           cannot wait longer than the holder held, so the charge is
           capped by the blocking hold's own duration — which is what
           lets micro-held locks (queue surgery) stay cheap while holds
           spanning pagein I/O contend for real. *)
        let wait =
          match mode with
          | Lockstat.Read -> Float.min (st.i_w_end -. v) st.i_w_dur
          | Lockstat.Write ->
              if st.i_w_end >= st.i_r_end then
                Float.min (st.i_w_end -. v) st.i_w_dur
              else Float.min (st.i_r_end -. v) st.i_r_dur
        in
        if wait > 0.0 then begin
          (* Charged before Lockstat stamps the hold start, so the wait
             extends the fault being simulated but not the hold. *)
          Simclock.advance t.clock wait;
          cpu.c_wait_us <- cpu.c_wait_us +. wait;
          bump_f cpu.c_wait_by cls wait;
          t.stats.Stats.lock_wait_us <- t.stats.Stats.lock_wait_us +. wait
        end;
        st.i_acq_v <- vnow t
    | Lockstat.Released { cls; inst; mode; root = _ } ->
        let st = inst_state t ~cls ~inst in
        let v_end = vnow t in
        let dur = Float.max 0.0 (v_end -. st.i_acq_v) in
        (match mode with
        | Lockstat.Read ->
            st.i_r_end <- Float.max st.i_r_end v_end;
            st.i_r_dur <- dur
        | Lockstat.Write ->
            st.i_w_end <- Float.max st.i_w_end v_end;
            st.i_w_dur <- dur);
        st.i_last_cpu <- t.running

(* ---- The scheduler -------------------------------------------------- *)

let pick_cpu t =
  let best = ref (-1) in
  Array.iter
    (fun c ->
      if not (Queue.is_empty c.c_tasks) then
        match !best with
        | -1 -> best := c.c_idx
        | b when t.cpus.(b).c_now > c.c_now -> best := c.c_idx
        | _ -> ())
    t.cpus;
  !best

let run_quantum t cpu_idx =
  let cpu = t.cpus.(cpu_idx) in
  let task = Queue.pop cpu.c_tasks in
  (match t.on_dispatch with Some f -> f cpu_idx | None -> ());
  t.running <- cpu_idx;
  t.q_m0 <- Simclock.now t.clock;
  t.q_v0 <- cpu.c_now;
  let before = Stats.snapshot t.stats in
  let alive =
    Fun.protect
      ~finally:(fun () ->
        t.running <- -1;
        cpu.c_now <- cpu.c_now +. (Simclock.now t.clock -. t.q_m0);
        cpu.c_quanta <- cpu.c_quanta + 1;
        t.quanta <- t.quanta + 1;
        Stats.add ~into:cpu.c_stats
          (Stats.diff ~after:(Stats.snapshot t.stats) ~before))
      (fun () -> task.t_step task.t_steps)
  in
  task.t_steps <- task.t_steps + 1;
  if alive then Queue.add task cpu.c_tasks

let run ?(every = 0) ?hook t =
  (match t.locks with
  | Some ls -> Lockstat.set_observer ls (Some (observe t))
  | None -> ());
  Fun.protect
    ~finally:(fun () ->
      match t.locks with
      | Some ls -> Lockstat.set_observer ls None
      | None -> ())
    (fun () ->
      let rec loop () =
        match pick_cpu t with
        | -1 -> ()
        | cpu ->
            run_quantum t cpu;
            (match hook with
            | Some f when every > 0 && t.quanta mod every = 0 -> f ()
            | _ -> ());
            loop ()
      in
      loop ())

(* ---- Results -------------------------------------------------------- *)

let wall_us t = Array.fold_left (fun w c -> Float.max w c.c_now) 0.0 t.cpus
let quanta t = t.quanta

type cpu_view = {
  cv_cpu : int;
  cv_now_us : float;
  cv_quanta : int;
  cv_stats : Stats.t;
  cv_wait_us : float;
  cv_bounces : int;
  cv_wait_by_class : (string * float) list;
  cv_bounce_by_class : (string * int) list;
}

let cpu_views t =
  Array.to_list
    (Array.map
       (fun c ->
         {
           cv_cpu = c.c_idx;
           cv_now_us = c.c_now;
           cv_quanta = c.c_quanta;
           cv_stats = c.c_stats;
           cv_wait_us = c.c_wait_us;
           cv_bounces = c.c_bounces;
           cv_wait_by_class =
             Hashtbl.fold (fun k v acc -> (k, !v) :: acc) c.c_wait_by []
             |> List.sort compare;
           cv_bounce_by_class =
             Hashtbl.fold (fun k v acc -> (k, !v) :: acc) c.c_bounce_by []
             |> List.sort compare;
         })
       t.cpus)

let total_wait_us t =
  Array.fold_left (fun acc c -> acc +. c.c_wait_us) 0.0 t.cpus

let total_bounces t =
  Array.fold_left (fun acc c -> acc + c.c_bounces) 0 t.cpus

let wait_by_class t =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun c -> Hashtbl.iter (fun k v -> bump_f tbl k !v) c.c_wait_by)
    t.cpus;
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

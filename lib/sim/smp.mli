(** Simulated SMP: virtual CPUs, a deterministic scheduler and the lock
    contention cost model (DESIGN.md §16).

    The simulation stays sequential — one OCaml thread, one machine
    clock — but work is divided into {e quanta} attributed to N virtual
    CPUs, each owning a virtual clock.  The scheduler always runs the
    CPU whose virtual clock is furthest behind (ties: lowest index;
    round-robin within a CPU), so a run is a pure function of the task
    list and the seed: seed-stable and replayable.

    While a quantum runs, a {!Lockstat.set_observer} hook charges the
    machine clock for contention: acquiring an instance whose previous
    holds (in virtual time) still cover this CPU's present waits out the
    remainder — readers admit concurrently, writers exclude everyone —
    and acquiring an instance last held by another CPU pays
    {!Cost_model.t.line_bounce} for the cache-line transfer.  Machine
    time a quantum consumes (including those charges) advances the
    running CPU's virtual clock; wall time is the maximum virtual clock,
    which is how a parallel fault storm can finish in less wall time
    than its single-CPU serialization. *)

type t

val create :
  ?seed:int ->
  cpus:int ->
  clock:Simclock.t ->
  costs:Cost_model.t ->
  stats:Stats.t ->
  ?locks:Lockstat.t ->
  unit ->
  t
(** A scheduler over [cpus] virtual CPUs.  [stats] is the machine's
    global counter block: per-quantum deltas of it are accumulated into
    per-CPU shards (see {!cpu_views}).  [locks] is the machine's lock
    registry; without it (or with tracing off) no contention is
    modelled.  [seed] drives unpinned task placement. *)

val ncpus : t -> int

val add_task : t -> ?cpu:int -> name:string -> (int -> bool) -> unit
(** Enqueue a task: the step function is called with the number of steps
    already taken and returns [true] while it has more work.  One call =
    one scheduler quantum (a syscall/fault boundary).  [cpu] pins the
    task; unpinned tasks are placed seed-deterministically. *)

val set_on_dispatch : t -> (int -> unit) -> unit
(** Called with the CPU index at every context switch, before the
    quantum runs — the experiment points [Physmem.set_current_cpu]
    here so per-CPU page caches track the scheduler. *)

val run : ?every:int -> ?hook:(unit -> unit) -> t -> unit
(** Run quanta until every task finishes.  [hook] (with [every] > 0)
    runs between quanta each time the global quantum count is a multiple
    of [every] — audits mid-storm.  The contention observer is installed
    for the duration of the run and removed on exit, even on raise. *)

val current_cpu : t -> int
(** CPU of the quantum in flight, [-1] between quanta. *)

val runnable : t -> cpu:int -> int
(** Tasks currently queued on one CPU (the vmstat per-CPU gauge). *)

val wall_us : t -> float
(** Simulated wall time of the run: the maximum per-CPU virtual clock. *)

val quanta : t -> int

(** {1 Per-CPU results} *)

type cpu_view = {
  cv_cpu : int;
  cv_now_us : float;  (** the CPU's virtual clock *)
  cv_quanta : int;
  cv_stats : Stats.t;  (** shard: quantum deltas of the machine counters *)
  cv_wait_us : float;  (** contention wait charged on this CPU *)
  cv_bounces : int;  (** cache-line bounces charged on this CPU *)
  cv_wait_by_class : (string * float) list;  (** lock class → wait µs *)
  cv_bounce_by_class : (string * int) list;
}

val cpu_views : t -> cpu_view list
(** One view per CPU, in CPU order. *)

val total_wait_us : t -> float
val total_bounces : t -> int

val wait_by_class : t -> (string * float) list
(** Contention wait per lock class summed over CPUs, largest first —
    the measured replacement for {!Lockstat.project}'s numbers. *)

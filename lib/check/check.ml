type subsystem =
  | Physmem
  | Swap
  | Map
  | Amap
  | Anon
  | Object
  | Pmap
  | Loan
  | Ledger
  | Lock
  | Smp

let subsystem_name = function
  | Physmem -> "physmem"
  | Swap -> "swap"
  | Map -> "map"
  | Amap -> "amap"
  | Anon -> "anon"
  | Object -> "object"
  | Pmap -> "pmap"
  | Loan -> "loan"
  | Ledger -> "ledger"
  | Lock -> "lock"
  | Smp -> "smp"

type failure = {
  system : string;
  subsys : subsystem;
  invariant : string;
  detail : string;
}

exception Audit_failure of failure

let string_of_failure f =
  Printf.sprintf "[%s] %s/%s: %s" f.system (subsystem_name f.subsys)
    f.invariant f.detail

let () =
  Printexc.register_printer (function
    | Audit_failure f -> Some ("Audit_failure " ^ string_of_failure f)
    | _ -> None)

let fail ~system ~subsys ~invariant detail =
  raise (Audit_failure { system; subsys; invariant; detail })

(* -- physical memory ---------------------------------------------------- *)

let queue_name = function
  | Physmem.Page.Q_none -> "none"
  | Physmem.Page.Q_free -> "free"
  | Physmem.Page.Q_active -> "active"
  | Physmem.Page.Q_inactive -> "inactive"

(* -- provenance ledger --------------------------------------------------- *)

let check_ledger ~system pm =
  let fail invariant detail = fail ~system ~subsys:Ledger ~invariant detail in
  (* Any illegal transition physmem recorded is already a verdict. *)
  (match Physmem.ledger_violations pm with
  | [] -> ()
  | v :: _ ->
      fail "illegal_transition" (Physmem.string_of_violation v));
  (* The ledger state must agree with where the frame is physically
     reachable from.  This runs BEFORE the queue walks of
     [check_physmem]: a frame reachable from a ring its ledger never
     moved it to (the double-insert corruption) is first and foremost a
     lifecycle violation. *)
  let expect ring_name want pages =
    List.iter
      (fun (p : Physmem.Page.t) ->
        if p.Physmem.Page.lstate <> want then
          fail "queue_state"
            (Printf.sprintf
               "page %d reachable from %s ring but ledger says %s (step %d)"
               p.Physmem.Page.id ring_name
               (Physmem.Page.lstate_name p.Physmem.Page.lstate)
               p.Physmem.Page.l_steps))
      pages
  in
  expect "free" Physmem.Page.L_free (Physmem.free_pages pm);
  expect "active" Physmem.Page.L_active (Physmem.active_pages pm);
  expect "inactive" Physmem.Page.L_inactive (Physmem.inactive_pages pm);
  (* Off-queue frames must be in an off-queue ledger state. *)
  Physmem.iter_pages
    (fun (p : Physmem.Page.t) ->
      if p.Physmem.Page.queue = Physmem.Page.Q_none then
        match p.Physmem.Page.lstate with
        | Physmem.Page.L_detached | Physmem.Page.L_wired
        | Physmem.Page.L_loaned | Physmem.Page.L_limbo ->
            ()
        | s ->
            fail "queue_state"
              (Printf.sprintf "page %d is off-queue but ledger says %s"
                 p.Physmem.Page.id (Physmem.Page.lstate_name s)))
    pm

let check_physmem ~system pm =
  let fail invariant detail = fail ~system ~subsys:Physmem ~invariant detail in
  (* Walk each queue: membership must be exclusive (a frame reached from
     two rings is the double-insert corruption) and must agree with the
     frame's own [queue] tag. *)
  let seen : (int, Physmem.Page.queue) Hashtbl.t = Hashtbl.create 256 in
  let walk kind pages =
    List.iter
      (fun (p : Physmem.Page.t) ->
        (match Hashtbl.find_opt seen p.id with
        | Some prev ->
            fail "queue_exclusive"
              (Printf.sprintf "page %d reached from both %s and %s queues"
                 p.id (queue_name prev) (queue_name kind))
        | None -> Hashtbl.replace seen p.id kind);
        if p.queue <> kind then
          fail "queue_tag"
            (Printf.sprintf "page %d on %s queue but tagged %s" p.id
               (queue_name kind) (queue_name p.queue)))
      pages
  in
  walk Physmem.Page.Q_free (Physmem.free_pages pm);
  walk Physmem.Page.Q_active (Physmem.active_pages pm);
  walk Physmem.Page.Q_inactive (Physmem.inactive_pages pm);
  (* Accounting: free + active + inactive + unqueued = total, with the
     counter caches agreeing with the rings. *)
  let nfree = List.length (Physmem.free_pages pm) in
  if Physmem.free_count pm <> nfree then
    fail "free_count"
      (Printf.sprintf "free_count=%d but free list holds %d"
         (Physmem.free_count pm) nfree);
  let queued = Hashtbl.length seen in
  let unqueued = ref 0 in
  Physmem.iter_pages
    (fun (p : Physmem.Page.t) ->
      (match Hashtbl.find_opt seen p.id with
      | Some _ -> ()
      | None ->
          incr unqueued;
          if p.queue <> Physmem.Page.Q_none then
            fail "queue_tag"
              (Printf.sprintf "page %d tagged %s but on no queue" p.id
                 (queue_name p.queue));
          (* An unqueued frame must have a reason to be off the queues. *)
          if
            p.wire_count = 0 && (not p.busy)
            && not (p.owner = Physmem.Page.No_owner && p.loan_count > 0)
          then
            fail "unqueued_unaccounted"
              (Printf.sprintf
                 "page %d is on no queue yet unwired, not busy, not an \
                  owner-dropped loan"
                 p.id));
      if p.wire_count < 0 then
        fail "wire_count" (Printf.sprintf "page %d wire_count < 0" p.id);
      if p.loan_count < 0 then
        raise
          (Audit_failure
             {
               system;
               subsys = Loan;
               invariant = "loan_count";
               detail = Printf.sprintf "page %d loan_count < 0" p.id;
             });
      match p.queue with
      | Physmem.Page.Q_free ->
          if p.owner <> Physmem.Page.No_owner then
            fail "free_owned" (Printf.sprintf "free page %d has an owner" p.id);
          if p.wire_count > 0 then
            fail "free_wired" (Printf.sprintf "free page %d is wired" p.id);
          if p.dirty then
            fail "free_dirty" (Printf.sprintf "free page %d is dirty" p.id)
      | _ -> ())
    pm;
  if queued + !unqueued <> Physmem.total_pages pm then
    fail "page_count"
      (Printf.sprintf "%d queued + %d unqueued <> %d total" queued !unqueued
         (Physmem.total_pages pm))

(* -- swap accounting ---------------------------------------------------- *)

let check_swap ~system swap ~claims =
  let fail invariant detail = fail ~system ~subsys:Swap ~invariant detail in
  (* The swapcache's entries are slot owners too, checked first under
     their own invariant names so cache corruption is distinguishable
     from a VM-structure leak, then merged into the general census (a
     slot charged to both an anon/object and the cache is slot_shared). *)
  let cache_claims =
    List.map
      (fun ((vid, pgno), slot) ->
        let who = Printf.sprintf "swapcache@%d:%d" vid pgno in
        if not (Swap.Swaptier.is_allocated_slot swap ~slot) then
          fail "cache_slot_unallocated"
            (Printf.sprintf "%s holds slot %d which is not allocated" who slot);
        if Swap.Swaptier.slot_on_dead_device swap ~slot then
          fail "cache_dead_device"
            (Printf.sprintf "%s holds slot %d on a dead device" who slot);
        (who, slot))
      (Swap.Swaptier.cache_claims swap)
  in
  (* A device that finished draining owns nothing, forever. *)
  (match Swap.Swaptier.undrained_violation swap with
  | Some name ->
      fail "dead_device_owns"
        (Printf.sprintf "drained device %s owns slots again" name)
  | None -> ());
  let claims = claims @ cache_claims in
  let owners : (int, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (who, slot) ->
      if slot < 1 || slot > Swap.Swaptier.capacity swap then
        fail "slot_range"
          (Printf.sprintf "%s claims out-of-range slot %d" who slot);
      if not (Swap.Swaptier.is_allocated_slot swap ~slot) then
        fail "slot_unallocated"
          (Printf.sprintf "%s claims slot %d which is not allocated" who slot);
      (match Hashtbl.find_opt owners slot with
      | Some other ->
          fail "slot_shared"
            (Printf.sprintf "slot %d claimed by both %s and %s" slot other who)
      | None -> ());
      Hashtbl.replace owners slot who)
    claims;
  let claimed = Hashtbl.length owners in
  let in_use = Swap.Swaptier.slots_in_use swap in
  if claimed <> in_use then begin
    (* Name a leaked slot to make the report actionable. *)
    let leaked = ref None in
    for slot = Swap.Swaptier.capacity swap downto 1 do
      if
        Swap.Swaptier.is_allocated_slot swap ~slot
        && not (Hashtbl.mem owners slot)
      then leaked := Some slot
    done;
    fail "slot_leak"
      (Printf.sprintf "%d slots allocated but only %d reachable%s" in_use
         claimed
         (match !leaked with
         | Some s -> Printf.sprintf " (e.g. slot %d unclaimed)" s
         | None -> ""))
  end

(* -- loan census --------------------------------------------------------- *)

let check_loans ~system pm ~claims =
  let fail invariant detail = fail ~system ~subsys:Loan ~invariant detail in
  let borrows : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let holders : (int, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (who, id) ->
      if id < 0 || id >= Physmem.total_pages pm then
        fail "loan_range"
          (Printf.sprintf "%s claims out-of-range frame %d" who id);
      Hashtbl.replace borrows id
        (1 + Option.value ~default:0 (Hashtbl.find_opt borrows id));
      Hashtbl.replace holders id who)
    claims;
  Physmem.iter_pages
    (fun (p : Physmem.Page.t) ->
      if p.queue = Physmem.Page.Q_free && p.loan_count > 0 then
        fail "loan_freed"
          (Printf.sprintf "free page %d still carries loan_count %d" p.id
             p.loan_count);
      let claimed =
        Option.value ~default:0 (Hashtbl.find_opt borrows p.id)
      in
      if claimed <> p.loan_count then
        fail "loan_census"
          (Printf.sprintf "page %d loan_count=%d but %d live borrower(s)%s"
             p.id p.loan_count claimed
             (match Hashtbl.find_opt holders p.id with
             | Some who -> Printf.sprintf " (e.g. %s)" who
             | None -> "")))
    pm

(* -- pv-list symmetry ---------------------------------------------------- *)

let check_pv ~system ctx pm =
  let fail invariant detail = fail ~system ~subsys:Pmap ~invariant detail in
  Physmem.iter_pages
    (fun (p : Physmem.Page.t) ->
      let mappings = Pmap.mappings_of_page ctx p in
      if p.queue = Physmem.Page.Q_free && mappings <> [] then
        fail "free_mapped"
          (Printf.sprintf "free page %d still has %d translations" p.id
             (List.length mappings));
      List.iter
        (fun (pmap, vpn) ->
          match Pmap.lookup pmap ~vpn with
          | Some pte when pte.Pmap.page == p -> ()
          | Some _ ->
              fail "pv_stale"
                (Printf.sprintf
                   "pv entry (vpn %d) for page %d maps a different frame" vpn
                   p.id)
          | None ->
              fail "pv_dangling"
                (Printf.sprintf "pv entry (vpn %d) for page %d has no pte" vpn
                   p.id))
        mappings)
    pm

(* -- SMP sharding -------------------------------------------------------- *)

let check_smp ~system pm =
  let fail invariant detail = fail ~system ~subsys:Smp ~invariant detail in
  (* Sharded free accounting: the colored queues plus every per-CPU
     cache must add up to the global free count — a page neither on a
     ring nor in a cache (or in two places) breaks the sum. *)
  let cached =
    List.fold_left
      (fun acc (cw : Physmem.cache_view) -> acc + cw.Physmem.cw_held)
      0 (Physmem.cache_views pm)
  in
  let qfree = Physmem.queue_free_count pm in
  if qfree + cached <> Physmem.free_count pm then
    fail "free_sum"
      (Printf.sprintf "queues %d + caches %d <> free_count %d" qfree cached
         (Physmem.free_count pm));
  (* Color tags: a page on color ring c must have color c. *)
  for c = 0 to Physmem.ncolors - 1 do
    List.iter
      (fun (p : Physmem.Page.t) ->
        if p.Physmem.Page.color <> c then
          fail "color_tag"
            (Printf.sprintf "page %d (color %d) on color-%d free ring" p.id
               p.Physmem.Page.color c);
        if p.Physmem.Page.cached_cpu >= 0 then
          fail "queued_cached"
            (Printf.sprintf "page %d on a free ring yet tagged cached on CPU %d"
               p.id p.Physmem.Page.cached_cpu))
      (Physmem.free_pages_of_color pm c)
  done;
  (* Cached frames: free in every observable way, and exactly as many as
     the caches account for. *)
  let tagged = ref 0 in
  Physmem.iter_pages
    (fun (p : Physmem.Page.t) ->
      if p.Physmem.Page.cached_cpu >= 0 then begin
        incr tagged;
        if p.Physmem.Page.cached_cpu >= Physmem.ncpus pm then
          fail "cache_cpu"
            (Printf.sprintf "page %d cached on CPU %d of %d" p.id
               p.Physmem.Page.cached_cpu (Physmem.ncpus pm));
        if p.Physmem.Page.queue <> Physmem.Page.Q_free then
          fail "cached_state"
            (Printf.sprintf "cached page %d tagged %s, not free" p.id
               (queue_name p.Physmem.Page.queue));
        if p.Physmem.Page.owner <> Physmem.Page.No_owner then
          fail "cached_state"
            (Printf.sprintf "cached page %d has an owner" p.id);
        if p.Physmem.Page.node <> None then
          fail "cached_state"
            (Printf.sprintf "cached page %d still linked on a ring" p.id)
      end)
    pm;
  if !tagged <> cached then
    fail "cache_census"
      (Printf.sprintf "%d frames tagged cached but caches hold %d" !tagged
         cached)

let check_lookup ~system ~okey ~resident =
  (* The lockless fast path must agree with the locked structures: for
     every resident (pgno, page) of an object, an unlocked peek either
     misses (stale slots only miss) or returns that very frame. *)
  List.iter
    (fun (pgno, (page : Physmem.Page.t)) ->
      match Physmem.Lookup.peek okey ~pgno with
      | None -> ()
      | Some hit when hit == page -> ()
      | Some hit ->
          fail ~system ~subsys:Smp ~invariant:"lookup_divergence"
            (Printf.sprintf
               "lockless lookup returns frame %d at pgno %d where the locked \
                path has frame %d"
               hit.Physmem.Page.id pgno page.Physmem.Page.id))
    resident

(* -- lock-order auditing ------------------------------------------------- *)

let check_lock_order ~system locks =
  match Sim.Lockstat.cycles locks with
  | [] -> ()
  | cyc :: _ ->
      fail ~system ~subsys:Lock ~invariant:"order_cycle"
        (Printf.sprintf "lock-order cycle: %s"
           (String.concat " -> " (cyc @ [ List.hd cyc ])))

(** The kernel invariant auditor's common machinery.

    Real BSD kernels back their VM systems with always-on consistency
    assertions (KASSERT under [DIAGNOSTIC]); this library is the simulator's
    equivalent, shared by both VM systems.  A violated invariant raises
    {!Audit_failure} carrying a structured {!failure}: which system, which
    subsystem, which invariant, and the offending identifiers — enough for
    the torture harness to write a crash artifact and for tests to assert
    the auditor fired for the right reason.

    The machine-level checks that do not depend on a particular VM system
    (physical page queues, swap-slot accounting, pv-list symmetry) live
    here; each VM system's [audit] adds its own walks (amap/anon reference
    counts, object chains, map/pmap agreement) on top. *)

type subsystem =
  | Physmem  (** page queues and frame states *)
  | Swap  (** swap-slot allocation vs. reachable owners *)
  | Map  (** map-entry structure *)
  | Amap  (** amap reference counts and slot coverage *)
  | Anon  (** anon reference counts and residency *)
  | Object  (** memory objects (UVM objects / BSD object chains) *)
  | Pmap  (** translations vs. resident pages *)
  | Loan  (** page loanout accounting *)
  | Ledger  (** per-page lifecycle provenance (DESIGN.md §10) *)
  | Lock  (** lock-order graph (DESIGN.md §15) *)
  | Smp  (** sharded queues, per-CPU caches, lockless lookup (§16) *)

val subsystem_name : subsystem -> string

type failure = {
  system : string;  (** "UVM" or "BSD VM" *)
  subsys : subsystem;
  invariant : string;  (** short stable name, e.g. ["queue_exclusive"] *)
  detail : string;  (** offending identifiers, free-form *)
}

exception Audit_failure of failure

val string_of_failure : failure -> string

val fail : system:string -> subsys:subsystem -> invariant:string -> string -> 'a
(** Raise {!Audit_failure}. *)

val check_ledger : system:string -> Physmem.t -> unit
(** Provenance-ledger audit, run before {!check_physmem} so lifecycle
    corruption is attributed to the ledger class: fails on any recorded
    illegal transition, on a frame reachable from a paging queue whose
    ledger state disagrees with that queue (the double-insert bug), and
    on an off-queue frame whose ledger state is a queued one. *)

val check_physmem : system:string -> Physmem.t -> unit
(** Whole-RAM audit: every frame is on exactly the queue its [queue] field
    claims (no frame on two queues, none missing), queue counts add up to
    the total frame count, the free-page counter matches the free list,
    free frames carry no owner/dirt/wiring, and an unqueued frame is
    accounted for by wiring, business, or an owner-dropped loan. *)

val check_swap :
  system:string ->
  Swap.Swaptier.t ->
  claims:(string * int) list ->
  unit
(** Swap-leak oracle, across tiers.  [claims] lists every swap slot
    reachable from a live anon or memory object, with a description of
    the owner; the swapcache's entries are appended as owners in their
    own right.  Verifies that each claimed slot is really allocated, that
    no slot is claimed by two owners (an anon/object and the cache
    sharing a slot is [slot_shared]), that every allocated slot is
    claimed — an allocated but unclaimed slot is precisely a swap leak
    (paper §5.3) — and, for the tier failure model, that no cache entry
    sits on an unallocated slot or a dead device and that a fully-drained
    device never owns slots again. *)

val check_loans :
  system:string ->
  Physmem.t ->
  claims:(string * int) list ->
  unit
(** Loan-count census.  [claims] lists every live borrowed reference to a
    frame — kernel loans held by mbuf chains plus anons borrowing a frame
    they do not own — as [(holder description, frame id)] pairs, one pair
    per outstanding borrow.  Verifies that each frame's [loan_count]
    equals its number of claimed borrowers, and that no free frame still
    carries a loan. *)

val check_pv : system:string -> Pmap.ctx -> Physmem.t -> unit
(** pv-list symmetry: every (pmap, vpn) entry on a page's pv list must be a
    live translation of that very page, and no free page may have
    translations. *)

val check_smp : system:string -> Physmem.t -> unit
(** Sharding audit (DESIGN.md §16): colored free queues plus per-CPU
    cache holdings sum to the global free count, every page on a color
    ring carries that color and no cached tag, and every cached frame is
    free in all observable ways (free-tagged, unowned, unlinked, on a
    valid CPU) with the census matching the caches' own counts.  Valid
    on a 1-CPU machine too, where the caches are empty. *)

val check_lookup :
  system:string ->
  okey:Physmem.Lookup.okey ->
  resident:(int * Physmem.Page.t) list ->
  unit
(** Lockless-lookup diff check: for each resident (pgno, page) of the
    object behind [okey], an unlocked {!Physmem.Lookup.peek} must either
    miss or return that very frame — a different frame means the seqlock
    validation is broken. *)

val check_lock_order : system:string -> Sim.Lockstat.t -> unit
(** Lockdep analogue: fails on any cycle in the machine's observed
    class-level lock-order graph, naming the classes on the cycle.
    Clean on a registry that recorded nothing (tracing off). *)

(** The UVM page-fault routine (paper §5.4).

    A single general-purpose handler — unlike SunOS, where each segment
    driver resolves its own faults, and unlike BSD VM, whose handler is
    mostly object-chain management.  Resolution is a simple two-level
    lookup: the mapping's amap layer first, then the backing-object layer;
    there are no chains to walk and no collapse to attempt.

    The routine also implements fault-ahead: resident pages around the
    faulting address (default 4 ahead / 3 behind, tuned by [madvise]) are
    mapped in read-only, cutting future fault counts (paper Table 2). *)

val amap_copy_entry : Uvm_sys.t -> Uvm_map.entry -> unit
(** Clear the entry's needs-copy deferral: allocate an empty amap if the
    entry never faulted, or build a private amap aliasing the shared one's
    anons.  The fault routine calls this lazily; [fork_map] calls it
    eagerly when a needs-copy entry is inherited shared, since sharing
    requires a concrete amap both sides reference. *)

val fault :
  Uvm_map.t ->
  vpn:int ->
  access:Vmiface.Vmtypes.access ->
  wire:bool ->
  (unit, Vmiface.Vmtypes.fault_error) result
(** Resolve a fault at virtual page [vpn].  With [wire:true] the resolved
    page is additionally wired (and copy-on-write is resolved eagerly if
    the mapping is writable, so later writes cannot replace a wired
    page). *)

val window : Uvm_sys.t -> Vmiface.Vmtypes.advice -> int * int
(** [(behind, ahead)] fault-ahead window for the given advice. *)

(** UVM memory objects ([uvm_object], paper §4).

    In UVM the object structure is a {e secondary} structure meant to be
    embedded inside whatever kernel abstraction supplies the data (a vnode,
    an anonymous-object record, a device).  It carries only the reference
    count, the set of resident pages, and a pointer to the pager
    operations; everything else belongs to the embedding subsystem and is
    reached through the pager functions. *)

type t = {
  id : int;
  mutable refs : int;
  pages : (int, Physmem.Page.t) Hashtbl.t;  (** page offset -> resident page *)
  mutable pgops : pager_ops;
  okey : Physmem.Lookup.okey;
      (** lockless-lookup identity: [insert_page]/[remove_page]
          publish/revoke through it, the fault path probes it *)
}

(** The pager API (paper §6).  Unlike BSD VM, [pgo_get] allocates pages
    itself, giving the pager full control over which page frames receive
    the data. *)
and pager_ops = {
  pgo_name : string;
  pgo_get :
    center:int ->
    lo:int ->
    hi:int ->
    ((int * Physmem.Page.t) list, Vmiface.Vmtypes.fault_error) result;
      (** Make the page at offset [center] resident (reading a cluster from
          backing store if the pager chooses) and report every resident
          page in [lo, hi) for the fault routine's fault-ahead window.
          [Error Pager_error] when backing store I/O fails beyond the
          retry budget; no half-filled pages are left behind. *)
  pgo_put : Physmem.Page.t list -> (unit, Vmiface.Vmtypes.fault_error) result;
      (** Write the given dirty pages of this object back to backing store,
          clustering as the pager sees fit.  On [Error] the unwritten pages
          stay dirty. *)
  pgo_cache_spill : Physmem.Page.t -> unit;
      (** The pagedaemon is about to reclaim this clean page: the pager may
          spill a copy into the swapcache so a re-fault is served from the
          fast swap tier instead of backing store.  The vnode pager does;
          pagers whose store is already swap (aobj) do nothing. *)
  pgo_reference : unit -> unit;  (** add a reference *)
  pgo_detach : unit -> unit;  (** drop a reference *)
}

type Physmem.Page.tag += Uobj_page of t

val make : Uvm_sys.t -> (t -> pager_ops) -> t
(** [make sys mk_ops] builds an object whose pager closes over the object
    itself (refs starts at 1). *)

val find_page : t -> pgno:int -> Physmem.Page.t option
val insert_page : Uvm_sys.t -> t -> pgno:int -> Physmem.Page.t -> unit
val remove_page : t -> pgno:int -> unit
val resident_count : t -> int
val resident : t -> (int * Physmem.Page.t) list
val dirty_pages : t -> Physmem.Page.t list

val free_all_pages : Uvm_sys.t -> t -> unit
(** Unmap and free every resident page (object termination). *)

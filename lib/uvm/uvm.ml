(** UVM: the paper's virtual memory system, assembled.

    [Uvm.Sys] implements {!Vmiface.Vm_sig.VM_SYS} so the workload and
    experiment layers can run identical code against UVM and the BSD VM
    baseline.  The submodule aliases expose the building blocks for tests
    and for programs that want UVM-only features (loanout, page transfer,
    map-entry passing). *)

module Anon = Uvm_anon
module Amap = Uvm_amap
module Object = Uvm_object
module Vnode_pager = Uvm_vnode
module Aobj = Uvm_aobj
module Map = Uvm_map
module Fault = Uvm_fault
module Pdaemon = Uvm_pdaemon
module Loan = Uvm_loan
module Device = Uvm_device
module Mexp = Uvm_mexp
module Fork = Uvm_fork
module State = Uvm_sys
module Machine = Vmiface.Machine
module Vmtypes = Vmiface.Vmtypes
open Vmtypes

(* Virtual address layout, in pages: a 4 GB address space. *)
let va_lo = 16
let va_hi = 1 lsl 20

module Sys = struct
  let name = "UVM"

  type vmspace = { vid : int; map : Uvm_map.t; pmap : Pmap.t }

  type sys = {
    usys : Uvm_sys.t;
    kernel : vmspace;
    vmspaces : (int, vmspace) Hashtbl.t;  (** live address spaces *)
  }

  let machine sys = sys.usys.Uvm_sys.mach
  let kernel_vmspace sys = sys.kernel

  let make_vmspace sys ~kernel =
    let usys = sys.usys in
    let pmap = Pmap.create (Uvm_sys.pmap_ctx usys) in
    let vm =
      {
        vid = Uvm_sys.fresh_id usys;
        map = Uvm_map.create usys ~pmap ~lo:va_lo ~hi:va_hi ~kernel;
        pmap;
      }
    in
    Hashtbl.replace sys.vmspaces vm.vid vm;
    vm

  (* Tier drain: move every swap slot living on an offline device to a
     healthy tier.  Invoked by the pagedaemon through the swap layer's
     drain hook; walks exactly what the swap audit walks, so a passing
     audit after a drain means the device really owns nothing. *)
  let drain_swap sys =
    let swap = Uvm_sys.swapdev sys.usys in
    let seen_anon = Hashtbl.create 64 in
    let seen_obj = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ vm ->
        Uvm_map.iter_entries
          (fun e ->
            (match e.Uvm_map.amap with
            | Some am ->
                for i = 0 to Uvm_map.entry_npages e - 1 do
                  match Uvm_amap.lookup am ~slot:(e.Uvm_map.amapoff + i) with
                  | Some anon when not (Hashtbl.mem seen_anon anon.Uvm_anon.id)
                    ->
                      Hashtbl.replace seen_anon anon.Uvm_anon.id ();
                      let slot = anon.Uvm_anon.swslot in
                      if
                        slot <> 0
                        && Swap.Swaptier.slot_needs_drain swap ~slot
                      then (
                        match Swap.Swaptier.migrate_slot swap ~slot with
                        | Some fresh ->
                            (* set_swslot frees the vacated slot. *)
                            Uvm_anon.set_swslot sys.usys anon fresh
                        | None -> ())
                  | _ -> ()
                done
            | None -> ());
            match e.Uvm_map.obj with
            | Some o when not (Hashtbl.mem seen_obj o.Uvm_object.id) ->
                Hashtbl.replace seen_obj o.Uvm_object.id ();
                List.iter
                  (fun (pgno, slot) ->
                    if Swap.Swaptier.slot_needs_drain swap ~slot then
                      match Swap.Swaptier.migrate_slot swap ~slot with
                      | Some fresh ->
                          Uvm_aobj.rebind_slot o ~pgno ~slot:fresh;
                          Swap.Swaptier.free_slots swap ~slot ~n:1
                      | None -> ())
                  (Uvm_aobj.swslots o)
            | _ -> ())
          vm.map)
      sys.vmspaces

  let boot ?config () =
    let mach = Machine.boot ?config () in
    Machine.set_label mach name;
    let usys = Uvm_sys.create mach in
    Uvm_pdaemon.install usys;
    Uvm_vnode.install_recycle_hook usys;
    let kpmap = Pmap.create (Uvm_sys.pmap_ctx usys) in
    let kernel =
      {
        vid = Uvm_sys.fresh_id usys;
        map = Uvm_map.create usys ~pmap:kpmap ~lo:va_lo ~hi:va_hi ~kernel:true;
        pmap = kpmap;
      }
    in
    let sys = { usys; kernel; vmspaces = Hashtbl.create 32 } in
    Hashtbl.replace sys.vmspaces kernel.vid kernel;
    Swap.Swaptier.set_drain_hook (Uvm_sys.swapdev usys)
      (Some (fun () -> drain_swap sys));
    sys

  let new_vmspace sys = make_vmspace sys ~kernel:false

  let fork sys parent =
    let usys = sys.usys in
    Uvm_sys.charge usys (Uvm_sys.costs usys).Sim.Cost_model.proc_overhead;
    let pmap = Pmap.create (Uvm_sys.pmap_ctx usys) in
    let map = Uvm_fork.fork_map parent.map ~child_pmap:pmap in
    let vm = { vid = Uvm_sys.fresh_id usys; map; pmap } in
    Hashtbl.replace sys.vmspaces vm.vid vm;
    vm

  let destroy_vmspace sys vm =
    Uvm_map.destroy vm.map;
    Pmap.destroy vm.pmap;
    Hashtbl.remove sys.vmspaces vm.vid

  let map_entry_count vm = Uvm_map.entry_count vm.map
  let resident_pages vm = Pmap.resident_count vm.pmap

  (* Overload-policy census of one address space: resident and wired
     translation counts straight from the pmap, swap slots by walking the
     two UVM layers this space's entries reach (anons in amaps, then any
     aobj backing).  Shared backing counts toward every sharer — the
     badness score wants "how much does killing this free", and a shared
     page's best estimate is its full footprint. *)
  let vmspace_usage sys vm =
    let resident = Pmap.resident_count vm.pmap in
    let wired =
      List.fold_left
        (fun acc (_, pte) -> if pte.Pmap.wired then acc + 1 else acc)
        0
        (Pmap.translations vm.pmap)
    in
    let swap = ref 0 in
    let seen_anon = Hashtbl.create 32 in
    let seen_obj = Hashtbl.create 8 in
    Uvm_map.iter_entries
      (fun e ->
        (match e.Uvm_map.amap with
        | Some am ->
            for i = 0 to Uvm_map.entry_npages e - 1 do
              match Uvm_amap.lookup am ~slot:(e.Uvm_map.amapoff + i) with
              | Some anon when not (Hashtbl.mem seen_anon anon.Uvm_anon.id) ->
                  Hashtbl.replace seen_anon anon.Uvm_anon.id ();
                  if anon.Uvm_anon.swslot <> 0 then incr swap
              | _ -> ()
            done
        | None -> ());
        match e.Uvm_map.obj with
        | Some o when not (Hashtbl.mem seen_obj o.Uvm_object.id) ->
            Hashtbl.replace seen_obj o.Uvm_object.id ();
            swap := !swap + List.length (Uvm_aobj.swslots o)
        | _ -> ())
      vm.map;
    ignore sys;
    { u_resident = resident; u_swap = !swap; u_wired = wired }

  (* Whole-process swapout, eviction half: push every reclaimable resident
     page onto the inactive queue with its translations gone, so the next
     pagedaemon pass swaps the dirty ones out and frees the rest. *)
  let kernel_map_locked sys = Uvm_map.is_locked sys.kernel.map

  let deactivate_resident sys vm =
    let physmem = Uvm_sys.physmem sys.usys in
    let ctx = Uvm_sys.pmap_ctx sys.usys in
    let count = ref 0 in
    List.iter
      (fun (_, (pte : Pmap.pte)) ->
        let page = pte.Pmap.page in
        if
          (not pte.Pmap.wired)
          && (not page.Physmem.Page.busy)
          && page.Physmem.Page.wire_count = 0
          && page.Physmem.Page.loan_count = 0
        then begin
          Pmap.page_remove_all ctx page;
          Physmem.deactivate physmem page;
          incr count
        end)
      (Pmap.translations vm.pmap);
    !count

  let default_inherit = function Private -> Inh_copy | Shared -> Inh_shared

  let mmap sys vm ?fixed_at ~npages ~prot ~share source =
    let usys = sys.usys in
    let spage =
      match fixed_at with
      | Some vpn -> vpn
      | None -> Uvm_map.find_space vm.map ~npages
    in
    let obj, objoff, cow, needs_copy =
      match (source, share) with
      (* Kernel zero-fill mappings are never forked, so needs-copy is
         moot; leaving it clear keeps them mergeable (paper §3.2). *)
      | Zero, Private -> (None, 0, true, not vm.map.Uvm_map.kernel)
      | Zero, Shared -> (Some (Uvm_aobj.create usys), 0, false, false)
      | File (vn, off), Shared -> (Some (Uvm_vnode.attach usys vn), off, false, false)
      | File (vn, off), Private -> (Some (Uvm_vnode.attach usys vn), off, true, true)
    in
    (* The single-step uvm_map: every attribute goes in under one lock. *)
    let _entry =
      Uvm_map.insert vm.map ~spage ~npages ~obj ~objoff ~prot
        ~maxprot:Pmap.Prot.rwx ~inh:(default_inherit share)
        ~advice:Adv_normal ~cow ~needs_copy ~merge:vm.map.Uvm_map.kernel
    in
    spage

  let munmap _sys vm ~vpn ~npages = Uvm_map.unmap vm.map ~spage:vpn ~npages

  let mprotect _sys vm ~vpn ~npages prot =
    Uvm_map.protect vm.map ~spage:vpn ~npages ~prot

  let minherit _sys vm ~vpn ~npages inh =
    Uvm_map.set_inherit vm.map ~spage:vpn ~npages inh

  let madvise _sys vm ~vpn ~npages advice =
    Uvm_map.set_advice vm.map ~spage:vpn ~npages advice

  let fault_or_segv vm ~vpn ~access ~wire =
    match Uvm_fault.fault vm.map ~vpn ~access ~wire with
    | Ok () -> ()
    | Error error -> raise (Segv { vpn; error })

  let wire_pages vm ~vpn ~npages =
    for v = vpn to vpn + npages - 1 do
      fault_or_segv vm ~vpn:v ~access:Read ~wire:true
    done

  let unwire_pages sys vm ~vpn ~npages =
    let physmem = Uvm_sys.physmem sys.usys in
    for v = vpn to vpn + npages - 1 do
      match Pmap.lookup vm.pmap ~vpn:v with
      | Some pte -> Physmem.unwire physmem pte.Pmap.page
      | None -> ()
    done

  (* mlock: the one wiring case whose state has no home other than the map
     (paper §3.2), so it clips entries under UVM too.  The faults run
     before the mark so that, while a wire fault is in flight,
     [entry.wired] counts exactly the wirings already carried by mapped
     frames — the set a COW displacement must move to the new frame. *)
  let mlock sys vm ~vpn ~npages =
    wire_pages vm ~vpn ~npages;
    Uvm_map.mark_wired vm.map ~spage:vpn ~npages;
    ignore sys

  let munlock sys vm ~vpn ~npages =
    Uvm_map.mark_unwired vm.map ~spage:vpn ~npages;
    unwire_pages sys vm ~vpn ~npages

  type wired_buffer = { wb_vpn : int; wb_npages : int }

  (* sysctl/physio buffer wiring: the wired state lives in this token (the
     "process kernel stack"), never in the map — no fragmentation. *)
  let vslock sys vm ~vpn ~npages =
    ignore sys;
    wire_pages vm ~vpn ~npages;
    { wb_vpn = vpn; wb_npages = npages }

  let vsunlock sys vm wb =
    unwire_pages sys vm ~vpn:wb.wb_vpn ~npages:wb.wb_npages

  let wanted_prot = function
    | Read -> { Pmap.Prot.r = true; w = false; x = false }
    | Write -> Pmap.Prot.rw

  let touch sys vm ~vpn access =
    let usys = sys.usys in
    Uvm_sys.charge usys (Uvm_sys.costs usys).Sim.Cost_model.mem_access;
    let ok () =
      match Pmap.lookup vm.pmap ~vpn with
      | Some pte -> Pmap.Prot.subsumes pte.Pmap.prot (wanted_prot access)
      | None -> false
    in
    if not (ok ()) then fault_or_segv vm ~vpn ~access ~wire:false;
    Pmap.mark_access vm.pmap ~vpn ~write:(access = Write)

  let access_range sys vm ~vpn ~npages access =
    for v = vpn to vpn + npages - 1 do
      touch sys vm ~vpn:v access
    done

  let page_of sys vm ~vpn access =
    touch sys vm ~vpn access;
    match Pmap.lookup vm.pmap ~vpn with
    | Some pte -> pte.Pmap.page
    | None -> assert false

  let read_bytes sys vm ~addr ~len =
    let page_size = Machine.page_size (machine sys) in
    let out = Bytes.create len in
    let copied = ref 0 in
    while !copied < len do
      let a = addr + !copied in
      let vpn = a / page_size and off = a mod page_size in
      let n = min (len - !copied) (page_size - off) in
      let page = page_of sys vm ~vpn Read in
      Bytes.blit page.Physmem.Page.data off out !copied n;
      copied := !copied + n
    done;
    out

  let write_bytes sys vm ~addr data =
    let page_size = Machine.page_size (machine sys) in
    let len = Bytes.length data in
    let copied = ref 0 in
    while !copied < len do
      let a = addr + !copied in
      let vpn = a / page_size and off = a mod page_size in
      let n = min (len - !copied) (page_size - off) in
      let page = page_of sys vm ~vpn Write in
      Bytes.blit data !copied page.Physmem.Page.data off n;
      page.Physmem.Page.dirty <- true;
      copied := !copied + n
    done

  (* ---- IPC data staging (paper §7) ----------------------------------- *)

  type stage =
    | St_loan of Uvm_loan.t
    | St_mexp of { kvpn : int; npages : int }

  let stage_loan _sys vm ~vpn ~npages =
    Some (St_loan (Uvm_loan.to_kernel vm.map ~vpn ~npages))

  (* The extraction raises on unmapped holes; probe first so a bad source
     range declines to the copy path and faults exactly like the
     baseline kernel would.  Shared amaps also decline: the COW snapshot
     marks the source needs-copy, which would detach the sender from an
     amap its sharers expect to keep seeing writes through. *)
  let mexp_range_ok vm ~vpn ~npages =
    let entries = Uvm_map.entries vm.map in
    let covered v =
      List.exists
        (fun (e : Uvm_map.entry) ->
          e.Uvm_map.spage <= v && v < e.Uvm_map.epage
          && e.Uvm_map.prot.Pmap.Prot.r
          &&
          match e.Uvm_map.amap with
          | Some am -> not am.Uvm_amap.shared
          | None -> true)
        entries
    in
    let ok = ref true in
    for v = vpn to vpn + npages - 1 do
      if not (covered v) then ok := false
    done;
    !ok

  let stage_mexp sys vm ~vpn ~npages =
    if not (mexp_range_ok vm ~vpn ~npages) then None
    else
      let kvpn =
        Uvm_mexp.extract ~src:vm.map ~spage:vpn ~npages ~dst:sys.kernel.map
          Uvm_mexp.Copy
      in
      Some (St_mexp { kvpn; npages })

  let stage_read sys stage ~off ~len =
    let page_size = Machine.page_size (machine sys) in
    match stage with
    | St_loan loan ->
        (* Loaned frames are wired: read straight out of them. *)
        let pages = Array.of_list (Uvm_loan.pages loan) in
        let out = Bytes.create len in
        let copied = ref 0 in
        while !copied < len do
          let o = off + !copied in
          let i = o / page_size and po = o mod page_size in
          let n = min (len - !copied) (page_size - po) in
          Bytes.blit pages.(i).Physmem.Page.data po out !copied n;
          copied := !copied + n
        done;
        out
    | St_mexp { kvpn; _ } ->
        (* Through the kernel mapping: pages that were paged out since
           staging fault back in here. *)
        read_bytes sys sys.kernel ~addr:((kvpn * page_size) + off) ~len

  let stage_map sys dst = function
    | St_loan _ -> None
    | St_mexp { kvpn; npages } ->
        Some
          (Uvm_mexp.extract ~src:sys.kernel.map ~spage:kvpn ~npages
             ~dst:dst.map Uvm_mexp.Donate)

  let stage_free sys = function
    | St_loan loan -> Uvm_loan.finish sys.usys loan
    | St_mexp { kvpn; npages } ->
        Uvm_map.unmap sys.kernel.map ~spage:kvpn ~npages

  let msync sys vm ~vpn ~npages =
    let usys = sys.usys in
    List.iter
      (fun (e : Uvm_map.entry) ->
        match e.Uvm_map.obj with
        | Some obj ->
            let lo = e.Uvm_map.objoff + (max vpn e.Uvm_map.spage - e.Uvm_map.spage)
            and hi =
              e.Uvm_map.objoff
              + (min (vpn + npages) e.Uvm_map.epage - e.Uvm_map.spage)
            in
            let dirty =
              List.filter
                (fun (p : Physmem.Page.t) ->
                  p.owner_offset >= lo && p.owner_offset < hi)
                (Uvm_object.dirty_pages obj)
            in
            if dirty <> [] then
              (* msync has no error channel here; failed pages stay dirty
                 and a later sync or pageout retries them. *)
              (match obj.Uvm_object.pgops.Uvm_object.pgo_put dirty with
              | Ok () | Error _ -> ())
        | None -> ())
      (List.filter
         (fun (e : Uvm_map.entry) ->
           e.Uvm_map.spage < vpn + npages && vpn < e.Uvm_map.epage)
         (Uvm_map.entries vm.map));
    ignore usys

  (* Kernel wired allocations (user structures, page tables): UVM allocates
     from the kernel map with entry merging and records the wiring only in
     the page frames — the kernel map stays compact (paper §3.2). *)
  let kernel_alloc_wired sys ~npages =
    let vpn =
      mmap sys sys.kernel ~npages ~prot:Pmap.Prot.rw ~share:Private Zero
    in
    wire_pages sys.kernel ~vpn ~npages;
    vpn

  let kernel_free_wired sys ~vpn ~npages =
    unwire_pages sys sys.kernel ~vpn ~npages;
    munmap sys sys.kernel ~vpn ~npages

  (* i386 page-table pages: UVM stores the wired state only inside the
     pmap layer — raw wired frames, no kernel-map entry at all. *)
  type ptp = Physmem.Page.t list

  let pmap_alloc_ptp sys ~npages =
    let physmem = Uvm_sys.physmem sys.usys in
    List.init npages (fun _ ->
        let page =
          Physmem.alloc physmem ~zero:true ~owner:Physmem.Page.No_owner
            ~offset:0 ()
        in
        Physmem.wire physmem page;
        page)

  let pmap_free_ptp sys pages =
    let physmem = Uvm_sys.physmem sys.usys in
    List.iter
      (fun page ->
        Physmem.unwire physmem page;
        Physmem.dequeue physmem page;
        page.Physmem.Page.owner <- Physmem.Page.No_owner;
        Physmem.free_page physmem page)
      pages

  (* Process swapout: the user structure's wired state lives in the proc
     structure, so unwiring it never touches the kernel map (paper §3.2,
     second wiring case). *)
  let swapout_ustruct sys ~vpn ~npages = unwire_pages sys sys.kernel ~vpn ~npages

  let swapin_ustruct sys ~vpn ~npages = wire_pages sys.kernel ~vpn ~npages

  let swap_slots_in_use sys = Swap.Swaptier.slots_in_use (Uvm_sys.swapdev sys.usys)

  (* ---- invariant auditor (DIAGNOSTIC-style, paper §5.3's oracle) ------ *)

  (* Census of the two UVM layers as seen from the maps: for every amap the
     number of referencing entries and how many entries cover each slot;
     for every object the number of referencing entries.  Everything else
     the auditor needs hangs off these. *)
  let audit_census sys =
    let amaps = Hashtbl.create 32 in
    let objs = Hashtbl.create 32 in
    Hashtbl.iter
      (fun _ vm ->
        (match Uvm_map.check_invariants vm.map with
        | Ok () -> ()
        | Error msg ->
            Check.fail ~system:name ~subsys:Check.Map ~invariant:"map_structure"
              (Printf.sprintf "vmspace %d: %s" vm.vid msg));
        Uvm_map.iter_entries
          (fun e ->
            (match e.Uvm_map.amap with
            | Some am ->
                let _, refs, cover =
                  match Hashtbl.find_opt amaps am.Uvm_amap.id with
                  | Some c -> c
                  | None ->
                      let c = (am, ref 0, Array.make am.Uvm_amap.nslots 0) in
                      Hashtbl.replace amaps am.Uvm_amap.id c;
                      c
                in
                incr refs;
                for i = 0 to Uvm_map.entry_npages e - 1 do
                  let s = e.Uvm_map.amapoff + i in
                  if s >= 0 && s < Array.length cover then
                    cover.(s) <- cover.(s) + 1
                done
            | None -> ());
            match e.Uvm_map.obj with
            | Some o ->
                let _, refs =
                  match Hashtbl.find_opt objs o.Uvm_object.id with
                  | Some c -> c
                  | None ->
                      let c = (o, ref 0) in
                      Hashtbl.replace objs o.Uvm_object.id c;
                      c
                in
                incr refs
            | None -> ())
          vm.map)
      sys.vmspaces;
    (amaps, objs)

  let audit_amaps amaps =
    (* anon id -> (anon, number of amap slots holding it) *)
    let anons = Hashtbl.create 64 in
    Hashtbl.iter
      (fun _ ((am : Uvm_amap.t), refs, cover) ->
        let fail invariant detail =
          Check.fail ~system:name ~subsys:Check.Amap ~invariant
            (Printf.sprintf "amap %d: %s" am.Uvm_amap.id detail)
        in
        (match Uvm_amap.check_invariants am with
        | Ok () -> ()
        | Error msg -> fail "amap_structure" msg);
        if am.Uvm_amap.refs <> !refs then
          fail "amap_refs"
            (Printf.sprintf "refcount %d but %d map entries reference it"
               am.Uvm_amap.refs !refs);
        (match am.Uvm_amap.ppref with
        | Some pp ->
            Array.iteri
              (fun i c ->
                if c <> cover.(i) then
                  fail "amap_ppref"
                    (Printf.sprintf
                       "slot %d: per-page refcount %d but %d entries cover it"
                       i c cover.(i)))
              pp
        | None ->
            (* No ppref array means every reference covers every slot. *)
            Array.iteri
              (fun i c ->
                if c <> !refs then
                  fail "amap_coverage"
                    (Printf.sprintf
                       "no ppref yet slot %d covered by %d of %d references" i
                       c !refs))
              cover);
        Array.iter
          (function
            | Some (anon : Uvm_anon.t) ->
                let _, slots =
                  match Hashtbl.find_opt anons anon.Uvm_anon.id with
                  | Some c -> c
                  | None ->
                      let c = (anon, ref 0) in
                      Hashtbl.replace anons anon.Uvm_anon.id c;
                      c
                in
                incr slots
            | None -> ())
          am.Uvm_amap.anons)
      amaps;
    anons

  let audit_anons anons =
    Hashtbl.iter
      (fun _ ((anon : Uvm_anon.t), slots) ->
        let fail invariant detail =
          Check.fail ~system:name ~subsys:Check.Anon ~invariant
            (Printf.sprintf "anon %d: %s" anon.Uvm_anon.id detail)
        in
        if anon.Uvm_anon.refs <> !slots then
          fail "anon_refs"
            (Printf.sprintf "refcount %d but %d amap slots reference it"
               anon.Uvm_anon.refs !slots);
        match anon.Uvm_anon.page with
        | Some p -> (
            if p.Physmem.Page.queue = Physmem.Page.Q_free then
              fail "anon_page_free"
                (Printf.sprintf "page %d is on the free list" p.Physmem.Page.id);
            match p.Physmem.Page.owner with
            | Uvm_anon.Anon_page a when a == anon -> ()
            | _ when p.Physmem.Page.loan_count > 0 ->
                (* A borrowed frame (O->A loanout): owned elsewhere. *)
                ()
            | _ ->
                fail "anon_page_owner"
                  (Printf.sprintf "page %d is not owned by this anon"
                     p.Physmem.Page.id))
        | None ->
            if anon.Uvm_anon.swslot = 0 then
              fail "anon_no_data" "neither resident nor on swap")
      anons

  let audit_objects objs =
    Hashtbl.iter
      (fun _ ((o : Uvm_object.t), refs) ->
        let fail invariant detail =
          Check.fail ~system:name ~subsys:Check.Object ~invariant
            (Printf.sprintf "object %d (%s): %s" o.Uvm_object.id
               o.Uvm_object.pgops.Uvm_object.pgo_name detail)
        in
        if o.Uvm_object.refs <> !refs then
          fail "object_refs"
            (Printf.sprintf "refcount %d but %d map entries reference it"
               o.Uvm_object.refs !refs);
        Hashtbl.iter
          (fun pgno (p : Physmem.Page.t) ->
            (match p.owner with
            | Uvm_object.Uobj_page o' when o' == o -> ()
            | _ ->
                fail "object_page_owner"
                  (Printf.sprintf "resident page %d at offset %d owned elsewhere"
                     p.id pgno));
            if p.owner_offset <> pgno then
              fail "object_page_offset"
                (Printf.sprintf "page %d thinks offset %d, object says %d" p.id
                   p.owner_offset pgno);
            if p.queue = Physmem.Page.Q_free then
              fail "object_page_free"
                (Printf.sprintf "resident page %d is on the free list" p.id))
          o.Uvm_object.pages;
        (* Diff-check the lockless fast path against this locked walk. *)
        Check.check_lookup ~system:name ~okey:o.Uvm_object.okey
          ~resident:(Uvm_object.resident o))
      objs

  (* Every allocated swap slot must be claimed by exactly one anon or one
     aobj page — an allocated-but-unclaimed slot is the §5.3 swap leak. *)
  let audit_swap sys anons objs =
    let claims = ref [] in
    Hashtbl.iter
      (fun _ ((anon : Uvm_anon.t), _) ->
        if anon.Uvm_anon.swslot <> 0 then
          claims :=
            ( Printf.sprintf "anon#%d" anon.Uvm_anon.id,
              anon.Uvm_anon.swslot )
            :: !claims)
      anons;
    Hashtbl.iter
      (fun _ ((o : Uvm_object.t), _) ->
        List.iter
          (fun (pgno, slot) ->
            claims :=
              (Printf.sprintf "aobj#%d@%d" o.Uvm_object.id pgno, slot)
              :: !claims)
          (Uvm_aobj.swslots o))
      objs;
    Check.check_swap ~system:name (Uvm_sys.swapdev sys.usys) ~claims:!claims

  (* Every live translation must agree with the two-layer lookup the fault
     routine would perform: anon layer first, then the backing object. *)
  let audit_pmap sys =
    Hashtbl.iter
      (fun _ vm ->
        let entries = Uvm_map.entries vm.map in
        List.iter
          (fun (vpn, (pte : Pmap.pte)) ->
            let fail invariant detail =
              Check.fail ~system:name ~subsys:Check.Pmap ~invariant
                (Printf.sprintf "vmspace %d vpn %d: %s" vm.vid vpn detail)
            in
            match
              List.find_opt
                (fun (e : Uvm_map.entry) ->
                  e.Uvm_map.spage <= vpn && vpn < e.Uvm_map.epage)
                entries
            with
            | None -> fail "pmap_unmapped" "translation outside any map entry"
            | Some e -> (
                if not (Pmap.Prot.subsumes e.Uvm_map.prot pte.Pmap.prot) then
                  fail "pmap_prot" "translation grants more than the entry";
                let d = vpn - e.Uvm_map.spage in
                let anon =
                  match e.Uvm_map.amap with
                  | Some am ->
                      Uvm_amap.lookup am ~slot:(e.Uvm_map.amapoff + d)
                  | None -> None
                in
                match anon with
                | Some a ->
                    if
                      not
                        (match a.Uvm_anon.page with
                        | Some p -> p == pte.Pmap.page
                        | None -> false)
                    then
                      fail "pmap_vs_anon"
                        (Printf.sprintf
                           "maps frame %d but anon %d holds %s"
                           pte.Pmap.page.Physmem.Page.id a.Uvm_anon.id
                           (match a.Uvm_anon.page with
                           | Some p -> Printf.sprintf "frame %d" p.id
                           | None -> "no page"))
                | None -> (
                    match e.Uvm_map.obj with
                    | Some o ->
                        if
                          not
                            (match
                               Uvm_object.find_page o
                                 ~pgno:(e.Uvm_map.objoff + d)
                             with
                            | Some p -> p == pte.Pmap.page
                            | None -> false)
                        then
                          fail "pmap_vs_object"
                            (Printf.sprintf
                               "maps frame %d but object %d offset %d disagrees"
                               pte.Pmap.page.Physmem.Page.id o.Uvm_object.id
                               (e.Uvm_map.objoff + d))
                    | None ->
                        fail "pmap_unbacked"
                          "translation for a zero-fill range with no anon")))
          (Pmap.translations vm.pmap))
      sys.vmspaces

  (* Loan census: every page's loan_count must equal its live borrowed
     references — outstanding kernel loans (mbuf chains, physio) plus
     anons holding a frame they do not own (O->A page transfer). *)
  let audit_loans sys anons =
    let physmem = Uvm_sys.physmem sys.usys in
    let claims = ref (Uvm_sys.kernel_loan_claims sys.usys) in
    Hashtbl.iter
      (fun _ ((anon : Uvm_anon.t), _) ->
        match anon.Uvm_anon.page with
        | Some p -> (
            match p.Physmem.Page.owner with
            | Uvm_anon.Anon_page a when a == anon -> ()
            | _ ->
                claims :=
                  ( Printf.sprintf "anon#%d-borrow" anon.Uvm_anon.id,
                    p.Physmem.Page.id )
                  :: !claims)
        | None -> ())
      anons;
    Check.check_loans ~system:name physmem ~claims:!claims

  let audit sys =
    let physmem = Uvm_sys.physmem sys.usys in
    Check.check_ledger ~system:name physmem;
    Check.check_physmem ~system:name physmem;
    Check.check_smp ~system:name physmem;
    Check.check_pv ~system:name (Uvm_sys.pmap_ctx sys.usys) physmem;
    let amaps, objs = audit_census sys in
    let anons = audit_amaps amaps in
    audit_anons anons;
    audit_loans sys anons;
    audit_objects objs;
    audit_swap sys anons objs;
    audit_pmap sys;
    Check.check_lock_order ~system:name (Uvm_sys.locks sys.usys)

  (* Audit: anonymous pages unreachable from any live address space.  UVM's
     reference counting frees anons eagerly, so this is always 0 — the test
     suite checks the audit agrees. *)
  let leaked_pages sys =
    let reachable = Hashtbl.create 256 in
    Hashtbl.iter
      (fun _ vm ->
        Uvm_map.iter_entries
          (fun e ->
            match e.Uvm_map.amap with
            | Some am ->
                let n = Uvm_map.entry_npages e in
                for i = 0 to n - 1 do
                  match Uvm_amap.lookup am ~slot:(e.Uvm_map.amapoff + i) with
                  | Some anon -> Hashtbl.replace reachable anon.Uvm_anon.id ()
                  | None -> ()
                done
            | None -> ())
          vm.map)
      sys.vmspaces;
    let physmem = Uvm_sys.physmem sys.usys in
    let leaked = ref 0 in
    List.iter
      (fun (page : Physmem.Page.t) ->
        match page.owner with
        | Uvm_anon.Anon_page anon
          when not (Hashtbl.mem reachable anon.Uvm_anon.id) ->
            incr leaked
        | _ -> ())
      (Physmem.active_pages physmem @ Physmem.inactive_pages physmem);
    !leaked
end

(* ------------------------------------------------------------------ *)
(* Mapping arbitrary memory objects (device pager, §6).                 *)

(** Map a memory object (e.g. a ROM from {!Device}) into an address
    space; consumes one reference on [obj]. *)
let map_object (_sys : Sys.sys) (vm : Sys.vmspace) ~obj ~npages ~prot
    ~(share : Vmtypes.share) =
  let spage = Uvm_map.find_space vm.Sys.map ~npages in
  let cow = share = Vmtypes.Private in
  ignore
    (Uvm_map.insert vm.Sys.map ~spage ~npages ~obj:(Some obj) ~objoff:0 ~prot
       ~maxprot:Pmap.Prot.rwx
       ~inh:(match share with Vmtypes.Private -> Vmtypes.Inh_copy | Vmtypes.Shared -> Vmtypes.Inh_shared)
       ~advice:Vmtypes.Adv_normal ~cow ~needs_copy:cow ~merge:false);
  spage

(* ------------------------------------------------------------------ *)
(* UVM-only data movement entry points (paper §7), on [Sys]'s types.   *)

(** Loan pages to the kernel (e.g. a zero-copy socket send). *)
let loan_to_kernel (vm : Sys.vmspace) ~vpn ~npages =
  Uvm_loan.to_kernel vm.Sys.map ~vpn ~npages

let loan_finish (sys : Sys.sys) loan = Uvm_loan.finish sys.Sys.usys loan

(** Page transfer: move [npages] pages from [src] into [dst] without
    copying; returns the receiving virtual page. *)
let page_transfer (src : Sys.vmspace) ~vpn ~npages ~(dst : Sys.vmspace)
    ~prot =
  let anons = Uvm_loan.to_anons src.Sys.map ~vpn ~npages in
  Uvm_mexp.import_anons ~dst:dst.Sys.map ~anons ~prot

(** Map-entry passing: share/copy/donate a range of address space. *)
let mexp_extract (src : Sys.vmspace) ~vpn ~npages ~(dst : Sys.vmspace) mode =
  Uvm_mexp.extract ~src:src.Sys.map ~spage:vpn ~npages ~dst:dst.Sys.map mode

(** The copying baseline the paper compares loanout against: a simulated
    copy-based kernel transfer of [npages] pages. *)
let copy_to_kernel (sys : Sys.sys) (vm : Sys.vmspace) ~vpn ~npages =
  let usys = sys.Sys.usys in
  let costs = Uvm_sys.costs usys in
  let physmem = Uvm_sys.physmem usys in
  Uvm_sys.charge usys costs.Sim.Cost_model.syscall_overhead;
  List.init npages (fun i ->
      let vpn = vpn + i in
      Sys.touch sys vm ~vpn Vmiface.Vmtypes.Read;
      match Pmap.lookup vm.Sys.pmap ~vpn with
      | Some pte ->
          let kpage =
            Physmem.alloc physmem ~owner:Physmem.Page.No_owner ~offset:0 ()
          in
          Physmem.copy_data physmem ~src:pte.Pmap.page ~dst:kpage;
          kpage
      | None -> assert false)

let copy_finish (sys : Sys.sys) kpages =
  let physmem = Uvm_sys.physmem sys.Sys.usys in
  List.iter (fun page -> Physmem.free_page physmem page) kpages

(** Anons: one page of anonymous memory (paper §5.2).

    An anon tracks where its data currently lives — in a physical page, on
    a swap slot, or both (a clean page with a valid swap copy).  An anon
    with a single reference is writable in place; anons referenced by more
    than one amap are copy-on-write.  Reference counting is what frees
    UVM from BSD VM's object chains, collapse operation and swap leaks. *)

type t = {
  id : int;
  mutable refs : int;
  mutable page : Physmem.Page.t option;
  mutable swslot : int;  (** 0 = no swap location assigned *)
}

type Physmem.Page.tag += Anon_page of t

val alloc : Uvm_sys.t -> zero:bool -> t
(** A fresh anon (refs = 1) with a resident page; charges the structure
    allocation and, when [zero], the page-zeroing cost. *)

val alloc_empty : Uvm_sys.t -> t
(** A fresh anon with no page and no swap — used by page transfer/loanout
    import paths that install an existing page afterwards. *)

val ref_ : t -> unit
(** Add a reference (amap copy sharing this anon). *)

val unref : Uvm_sys.t -> t -> unit
(** Drop a reference; on the last one the page (if any, honouring loans)
    and the swap slot (if any) are released.  Because anons free eagerly on
    last-unref, anonymous memory can never leak — the invariant §5.3 says
    BSD VM lacks. *)

val set_swslot : Uvm_sys.t -> t -> int -> unit
(** Assign (or, with 0, clear) the swap location, releasing any previous
    slot — this is the dynamic reassignment that enables UVM's aggressive
    pageout clustering. *)

val ensure_resident :
  Uvm_sys.t -> t -> (Physmem.Page.t, Vmiface.Vmtypes.fault_error) result
(** Make the anon's data resident, paging it in from swap if needed, and
    return the page.  The page is put on the active queue.
    [Error Pager_error] when the swap read fails beyond the retry budget;
    the freshly-allocated frame is returned to the free list and the anon
    keeps its swap slot. *)

val is_resident : t -> bool

val writable_in_place : t -> bool
(** True when a write fault may write straight into the existing page:
    exactly one reference and no outstanding loans (paper §5.3's "middle
    page" optimisation). *)

val pp : Format.formatter -> t -> unit

(* Reclaim a page whose data is safe elsewhere (or nowhere needed). *)
let reclaim sys (page : Physmem.Page.t) =
  Pmap.page_remove_all (Uvm_sys.pmap_ctx sys) page;
  (match page.owner with
  | Uvm_anon.Anon_page anon -> anon.Uvm_anon.page <- None
  | Uvm_object.Uobj_page obj -> Uvm_object.remove_page obj ~pgno:page.owner_offset
  | _ -> ());
  Physmem.free_page (Uvm_sys.physmem sys) page

(* Push a batch of dirty anonymous pages to swap.  UVM mode: reassign all
   their swap locations to one contiguous run and write a single cluster.

   Failure handling: writes go through [Swapdev.write_resilient], so
   transient disk errors are retried with backoff and a bad slot moves the
   whole cluster to a fresh range (the paper's reassignment machinery
   doubling as recovery).  If the write still fails — or swap is full —
   the pages simply stay dirty and in core: the reclaim pass below only
   frees pages the device confirmed clean, so degradation to clean-page
   reclaim is automatic and nothing leaks.

   Returns the number of pages that could NOT be cleaned, so the scan
   loop can stop counting them toward its reclaim quota and keep looking
   for clean pages instead. *)
let flush_anon_batch sys batch =
  match batch with
  | [] -> 0
  | _ ->
      let swapdev = Uvm_sys.swapdev sys in
      let stats = Uvm_sys.stats sys in
      let physmem = Uvm_sys.physmem sys in
      let n = List.length batch in
      let span = Uvm_sys.span_start sys ~subsys:"pdaemon" "pageout" in
      let t0 = Sim.Simclock.now (Uvm_sys.clock sys) in
      let write_at ~slot ~assign ~pages =
        match
          Swap.Swaptier.write_resilient swapdev ~retries:sys.Uvm_sys.io_retries
            ~backoff_us:sys.Uvm_sys.io_backoff_us ~slot ~assign ~pages
        with
        | Swap.Swaptier.Written | Swap.Swaptier.Reassigned _
        | Swap.Swaptier.No_space _ | Swap.Swaptier.Failed _ ->
            ()
      in
      let clustered =
        if sys.Uvm_sys.aggressive_clustering then
          Swap.Swaptier.alloc_slots swapdev ~n
        else None
      in
      (match clustered with
      | Some base ->
          (* Dynamic swap-location reassignment at page granularity; also
             invoked by write_resilient if bad media forces a move. *)
          let assign base =
            List.iteri
              (fun i (anon, page) ->
                let old = anon.Uvm_anon.swslot in
                if old <> 0 && old <> base + i then
                  Physmem.note_reassign physmem page
                    ~dist:(abs (base + i - old));
                Uvm_anon.set_swslot sys anon (base + i))
              batch
          in
          Physmem.note_cluster physmem ~pages:(List.map snd batch) ~runs:1;
          assign base;
          write_at ~slot:base ~assign ~pages:(List.map snd batch)
      | None ->
          (if sys.Uvm_sys.aggressive_clustering then
             (* Wanted one contiguous run of n and could not get it. *)
             stats.Sim.Stats.swap_full_events <-
               stats.Sim.Stats.swap_full_events + 1);
          (* BSD-style (or swap-fragmented) path: one I/O per page. *)
          Physmem.note_cluster physmem ~pages:(List.map snd batch) ~runs:n;
          List.iter
            (fun (anon, page) ->
              let slot =
                if anon.Uvm_anon.swslot <> 0 then Some anon.Uvm_anon.swslot
                else Swap.Swaptier.alloc_slots swapdev ~n:1
              in
              match slot with
              | Some slot ->
                  if anon.Uvm_anon.swslot = 0 then anon.Uvm_anon.swslot <- slot;
                  write_at ~slot
                    ~assign:(fun fresh ->
                      let old = anon.Uvm_anon.swslot in
                      if old <> 0 && old <> fresh then
                        Physmem.note_reassign physmem page
                          ~dist:(abs (fresh - old));
                      Uvm_anon.set_swslot sys anon fresh)
                    ~pages:[ page ]
              | None ->
                  (* Swap full: the page cannot be cleaned, keep it in
                     core and fall back to reclaiming clean pages. *)
                  stats.Sim.Stats.swap_full_events <-
                    stats.Sim.Stats.swap_full_events + 1)
            batch);
      Uvm_sys.span_finish sys span
        ~detail:
          [
            ("pages", string_of_int n);
            ("clustered", string_of_bool (clustered <> None));
          ]
        ();
      (if Uvm_sys.tracing sys then begin
         let dur = Sim.Simclock.now (Uvm_sys.clock sys) -. t0 in
         Uvm_sys.trace sys ~subsys:Sim.Hist.Pdaemon ~ts:t0 ~dur
           ~detail:
             [
               ("pages", string_of_int n);
               ("clustered", string_of_bool (clustered <> None));
             ]
           "pageout_cluster";
         Uvm_sys.observe sys "pageout_cluster_io_us" dur
       end);
      (* Pages that now have a swap copy are clean and reclaimable.  Pages
         that could not be cleaned (swap full, dead media) go back to the
         active queue: leaving them on the inactive queue would make its
         depth lie to the deactivation heuristic, starving the scan of
         the clean pages it could still reclaim. *)
      List.fold_left
        (fun stuck ((anon : Uvm_anon.t), (page : Physmem.Page.t)) ->
          if (not page.dirty) && anon.swslot <> 0 then begin
            reclaim sys page;
            stuck
          end
          else begin
            if page.queue = Physmem.Page.Q_inactive then
              Physmem.activate physmem page;
            stuck + 1
          end)
        0 batch

let flush_object_batches sys batches =
  let physmem = Uvm_sys.physmem sys in
  let ls = Uvm_sys.locks sys in
  Hashtbl.iter
    (fun _ (obj, pages) ->
      (* The pager already applied the retry/reassignment policy; whatever
         failed stays dirty and is reactivated below so it stops clogging
         the inactive queue. *)
      let l = Sim.Lockstat.instance ls ~cls:"object" ~id:obj.Uvm_object.id in
      Sim.Lockstat.acquire ls l ~mode:Sim.Lockstat.Write;
      (match
         Fun.protect
           ~finally:(fun () -> Sim.Lockstat.release ls l)
           (fun () -> obj.Uvm_object.pgops.Uvm_object.pgo_put pages)
       with
      | Ok () | Error _ -> ());
      List.iter
        (fun (page : Physmem.Page.t) ->
          if not page.dirty then reclaim sys page
          else if page.queue = Physmem.Page.Q_inactive then
            Physmem.activate physmem page)
        pages)
    batches

let run sys =
  (* The pagedaemon is logically its own thread: its lock is acquired as
     a root so the registry does not draw order edges from whatever the
     faulting context held when the allocator kicked the daemon. *)
  let ls = Uvm_sys.locks sys in
  let dl = Sim.Lockstat.instance ls ~cls:"pdaemon" ~id:0 in
  Sim.Lockstat.acquire_root ls dl ~mode:Sim.Lockstat.Write;
  Fun.protect ~finally:(fun () -> Sim.Lockstat.release ls dl) @@ fun () ->
  (* The scan span opens before the drain pass so device-death migration
     shows up as time attributed to the pagedaemon on the critical path. *)
  let scan_span = Uvm_sys.span_start sys ~subsys:"pdaemon" "scan" in
  (* A dying or swapped-off device drains through the pagedaemon: migrate
     its readable slots to healthy tiers before reclaiming anything new. *)
  Swap.Swaptier.run_drain (Uvm_sys.swapdev sys);
  let physmem = Uvm_sys.physmem sys in
  let target = Physmem.freetarg physmem in
  let t0 = Sim.Simclock.now (Uvm_sys.clock sys) in
  let free0 = Physmem.free_count physmem in
  let anon_batch = ref [] in
  let obj_batches : (int, Uvm_object.t * Physmem.Page.t list) Hashtbl.t =
    Hashtbl.create 8
  in
  let batched = ref 0 in
  let scan (page : Physmem.Page.t) =
    if Physmem.free_count physmem + !batched < target then
      if page.busy || page.wire_count > 0 || page.loan_count > 0 then ()
      else if page.referenced then
        (* Second chance: recently used, give it another lap. *)
        Physmem.activate physmem page
      else
        match page.owner with
        | Uvm_anon.Anon_page anon ->
            if page.dirty || anon.Uvm_anon.swslot = 0 then begin
              anon_batch := (anon, page) :: !anon_batch;
              incr batched;
              page.dirty <- true;
              if List.length !anon_batch >= sys.Uvm_sys.pageout_cluster then begin
                (* Pages that failed to clean (swap full, bad media) no
                   longer count toward the quota: keep scanning for clean
                   pages to reclaim instead. *)
                let stuck = flush_anon_batch sys (List.rev !anon_batch) in
                batched := !batched - stuck;
                anon_batch := []
              end
            end
            else reclaim sys page
        | Uvm_object.Uobj_page obj ->
            if page.dirty then begin
              let prev =
                match Hashtbl.find_opt obj_batches obj.Uvm_object.id with
                | Some (_, pages) -> pages
                | None -> []
              in
              Hashtbl.replace obj_batches obj.Uvm_object.id (obj, page :: prev);
              incr batched
            end
            else begin
              (* About to drop a clean object page: let the pager spill a
                 copy to the swapcache so a re-fault is a fast-tier read. *)
              obj.Uvm_object.pgops.Uvm_object.pgo_cache_spill page;
              reclaim sys page
            end
        | _ ->
            (* Unowned pages on the inactive queue should not happen. *)
            assert false
  in
  List.iter scan (Physmem.inactive_pages physmem);
  ignore (flush_anon_batch sys (List.rev !anon_batch) : int);
  flush_object_batches sys obj_batches;
  (* Still short: migrate cold active pages to the inactive queue so the
     next pass can reclaim them.  Their translations are removed so reuse
     refaults and reactivates. *)
  if Physmem.free_count physmem < target then begin
    let need =
      2 * (target - Physmem.free_count physmem)
      - Physmem.inactive_count physmem
    in
    let moved = ref 0 in
    List.iter
      (fun (page : Physmem.Page.t) ->
        if
          !moved < need && (not page.busy) && page.wire_count = 0
          && page.loan_count = 0
        then begin
          if page.referenced then page.referenced <- false
          else begin
            Pmap.page_remove_all (Uvm_sys.pmap_ctx sys) page;
            Physmem.deactivate physmem page;
            incr moved
          end
        end)
      (Physmem.active_pages physmem)
  end;
  Uvm_sys.span_finish sys scan_span
    ~detail:
      [
        ("free_before", string_of_int free0);
        ("free_after", string_of_int (Physmem.free_count physmem));
      ]
    ();
  if Uvm_sys.tracing sys then
    Uvm_sys.trace sys ~subsys:Sim.Hist.Pdaemon ~ts:t0
      ~dur:(Sim.Simclock.now (Uvm_sys.clock sys) -. t0)
      ~detail:
        [
          ("free_before", string_of_int free0);
          ("free_after", string_of_int (Physmem.free_count physmem));
          ("target", string_of_int target);
        ]
      "scan"

let install sys = Physmem.set_pagedaemon (Uvm_sys.physmem sys) (fun () -> run sys)

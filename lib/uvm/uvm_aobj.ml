(* State of an anonymous object, reached through the closures of its pager
   operations.  [swslots] maps page offsets to swap slots holding paged-out
   data. *)
type state = { swslots : (int, int) Hashtbl.t }

let registry : (int, state) Hashtbl.t = Hashtbl.create 16
(* Object id -> aobj state.  Keyed by id so that non-aobj objects simply
   miss; entries are removed when the aobj dies. *)

let free_slots sys st =
  Hashtbl.iter
    (fun _ slot -> Swap.Swaptier.free_slots (Uvm_sys.swapdev sys) ~slot ~n:1)
    st.swslots;
  Hashtbl.reset st.swslots

let make_ops sys st obj =
  let physmem = Uvm_sys.physmem sys in
  let swapdev = Uvm_sys.swapdev sys in
  let stats = Uvm_sys.stats sys in
  let pgo_get ~center ~lo ~hi =
    let status = ref (Ok ()) in
    (if Uvm_object.find_page obj ~pgno:center = None then begin
       let from_swap = Hashtbl.mem st.swslots center in
       (* A swap pagein may draw on the kernel reserve: it is the path that
          turns swap slots back into reclaimable frames. *)
       let page =
         Physmem.alloc physmem ~privileged:from_swap
           ~owner:(Uvm_object.Uobj_page obj) ~offset:center ()
       in
       let filled =
         match Hashtbl.find_opt st.swslots center with
         | Some slot ->
             let span = Uvm_sys.span_start sys ~subsys:"pager" "pagein" in
             let t0 = Sim.Simclock.now (Uvm_sys.clock sys) in
             let r =
               Swap.Swaptier.read_resilient swapdev
                 ~retries:sys.Uvm_sys.io_retries
                 ~backoff_us:sys.Uvm_sys.io_backoff_us ~slot ~dst:page
             in
             Uvm_sys.span_finish sys span
               ~detail:
                 [
                   ("pager", "aobj");
                   ("result", match r with Ok () -> "ok" | Error _ -> "error");
                 ]
               ();
             (if Uvm_sys.tracing sys then begin
                let dur = Sim.Simclock.now (Uvm_sys.clock sys) -. t0 in
                Uvm_sys.trace sys ~subsys:Sim.Hist.Pager ~ts:t0 ~dur
                  ~detail:
                    [
                      ("pager", "aobj");
                      ("pages", "1");
                      ( "result",
                        match r with Ok () -> "ok" | Error _ -> "error" );
                    ]
                  "pagein";
                Uvm_sys.observe sys "pagein_us" dur
              end);
             r
         | None ->
             Physmem.zero_data physmem page;
             Ok ()
       in
       match filled with
       | Ok () ->
           Physmem.note_fault_in physmem page
             ~fill:
               (if from_swap then Sim.Lifecycle.Fill_pagein
                else Sim.Lifecycle.Fill_zero);
           Uvm_object.insert_page sys obj ~pgno:center page;
           Physmem.activate physmem page
       | Error _ ->
           Physmem.free_page physmem page;
           stats.Sim.Stats.pageins_failed <- stats.Sim.Stats.pageins_failed + 1;
           status := Error Vmiface.Vmtypes.Pager_error
     end);
    match !status with
    | Error _ as e -> e
    | Ok () ->
        Ok
          (List.filter
             (fun (pgno, _) -> pgno >= lo && pgno < hi)
             (Uvm_object.resident obj))
  in
  (* Rebind the batch's pages to consecutive slots from [base], releasing
     any previous bindings.  Used both for the initial clustered
     assignment and by [write_resilient] when a bad slot forces the
     cluster elsewhere (freeing the old binding retires the bad slot). *)
  let rebind_cluster pages base =
    List.iteri
      (fun i (page : Physmem.Page.t) ->
        let pgno = page.owner_offset in
        (match Hashtbl.find_opt st.swslots pgno with
        | Some old when old <> base + i ->
            Swap.Swaptier.free_slots swapdev ~slot:old ~n:1;
            Physmem.note_reassign physmem page ~dist:(abs (base + i - old))
        | Some _ | None -> ());
        Hashtbl.replace st.swslots pgno (base + i))
      pages
  in
  let write_batch_at pages base =
    let span = Uvm_sys.span_start sys ~subsys:"pager" "pageout" in
    let t0 = Sim.Simclock.now (Uvm_sys.clock sys) in
    let r =
      match
        Swap.Swaptier.write_resilient swapdev ~retries:sys.Uvm_sys.io_retries
          ~backoff_us:sys.Uvm_sys.io_backoff_us ~slot:base
          ~assign:(rebind_cluster pages) ~pages
      with
      | Swap.Swaptier.Written | Swap.Swaptier.Reassigned _ -> Ok ()
      | Swap.Swaptier.No_space _ -> Error Vmiface.Vmtypes.Out_of_swap
      | Swap.Swaptier.Failed _ -> Error Vmiface.Vmtypes.Pager_error
    in
    Uvm_sys.span_finish sys span
      ~detail:
        [
          ("pager", "aobj");
          ("result", match r with Ok () -> "ok" | Error _ -> "error");
        ]
      ();
    (if Uvm_sys.tracing sys then begin
       let dur = Sim.Simclock.now (Uvm_sys.clock sys) -. t0 in
       Uvm_sys.trace sys ~subsys:Sim.Hist.Pager ~ts:t0 ~dur
         ~detail:
           [
             ("pager", "aobj");
             ("pages", string_of_int (List.length pages));
             ("result", match r with Ok () -> "ok" | Error _ -> "error");
           ]
         "pageout";
       Uvm_sys.observe sys "pageout_cluster_io_us" dur
     end);
    r
  in
  (* One page into its existing slot, or a freshly allocated one.  [None]
     from the allocator means swap is full: the page simply stays dirty
     and in core (graceful degradation — the pagedaemon will look for
     clean pages instead). *)
  let write_single (page : Physmem.Page.t) =
    let pgno = page.owner_offset in
    let slot =
      match Hashtbl.find_opt st.swslots pgno with
      | Some slot -> Some slot
      | None -> Swap.Swaptier.alloc_slots swapdev ~n:1
    in
    match slot with
    | Some slot ->
        Hashtbl.replace st.swslots pgno slot;
        write_batch_at [ page ] slot
    | None ->
        stats.Sim.Stats.swap_full_events <-
          stats.Sim.Stats.swap_full_events + 1;
        Error Vmiface.Vmtypes.Out_of_swap
  in
  let combine acc r =
    match (acc, r) with Error _, _ -> acc | Ok (), r -> r
  in
  let pgo_put pages =
    match pages with
    | [] -> Ok ()
    | _ when sys.Uvm_sys.aggressive_clustering -> (
        (* Reassign swap locations so the whole batch is one contiguous
           write (paper §6). *)
        let n = List.length pages in
        match Swap.Swaptier.alloc_slots swapdev ~n with
        | Some base ->
            Physmem.note_cluster physmem ~pages ~runs:1;
            rebind_cluster pages base;
            write_batch_at pages base
        | None ->
            (* No contiguous run of n; write page-at-a-time into whatever
               slots remain. *)
            Physmem.note_cluster physmem ~pages ~runs:n;
            List.fold_left
              (fun acc page -> combine acc (write_single page))
              (Ok ()) pages)
    | _ ->
        (* Ablation mode: BSD-style fixed slots, one I/O per page. *)
        Physmem.note_cluster physmem ~pages ~runs:(List.length pages);
        List.fold_left
          (fun acc page -> combine acc (write_single page))
          (Ok ()) pages
  in
  let pgo_reference () = obj.Uvm_object.refs <- obj.Uvm_object.refs + 1 in
  let pgo_detach () =
    assert (obj.Uvm_object.refs > 0);
    obj.Uvm_object.refs <- obj.Uvm_object.refs - 1;
    if obj.Uvm_object.refs = 0 then begin
      (* Anonymous memory dies with its last reference. *)
      Uvm_object.free_all_pages sys obj;
      free_slots sys st;
      Hashtbl.remove registry obj.Uvm_object.id
    end
  in
  {
    Uvm_object.pgo_name = "aobj";
    pgo_get;
    pgo_put;
    (* aobj pages already live on swap; nothing to gain from the cache. *)
    pgo_cache_spill = (fun _ -> ());
    pgo_reference;
    pgo_detach;
  }

let create sys =
  let st = { swslots = Hashtbl.create 8 } in
  let obj = Uvm_object.make sys (make_ops sys st) in
  Hashtbl.replace registry obj.Uvm_object.id st;
  (Uvm_sys.stats sys).Sim.Stats.objects_allocated <-
    (Uvm_sys.stats sys).Sim.Stats.objects_allocated + 1;
  Uvm_sys.charge_struct_alloc sys;
  obj

let swslot_count obj =
  match Hashtbl.find_opt registry obj.Uvm_object.id with
  | Some st -> Hashtbl.length st.swslots
  | None -> 0

let swslots obj =
  match Hashtbl.find_opt registry obj.Uvm_object.id with
  | Some st -> Hashtbl.fold (fun pgno slot acc -> (pgno, slot) :: acc) st.swslots []
  | None -> []

let rebind_slot obj ~pgno ~slot =
  match Hashtbl.find_opt registry obj.Uvm_object.id with
  | Some st when Hashtbl.mem st.swslots pgno ->
      Hashtbl.replace st.swslots pgno slot
  | Some _ | None -> invalid_arg "Uvm_aobj.rebind_slot: no such binding"

(** The UVM vnode pager: the memory object is {e embedded} in the vnode.

    The paper's Figure 4 contrast: BSD VM needs a [vm_object], a
    [vm_pager], a [vn_pager] and a pager hash-table entry to map a file;
    UVM needs nothing beyond the structure already riding inside the
    vnode, and its object points directly at the pager operations.

    Cache behaviour (paper §4): the uvn holds a vnode reference only while
    the object is mapped.  When the last mapping goes away the pages
    {e stay} in the object and the vnode moves to the vnode system's own
    free LRU — a single level of caching.  When the vnode subsystem decides
    to recycle the vnode it calls {!terminate} through the hook installed
    by {!install_recycle_hook}, which frees the pages. *)

type uvn = {
  obj : Uvm_object.t;
  vnode : Vfs.Vnode.t;
  mutable has_vref : bool;
}

type Vfs.Vnode.vm_private += Uvn of uvn

val attach : Uvm_sys.t -> Vfs.Vnode.t -> Uvm_object.t
(** Get the vnode's embedded memory object with a new reference, creating
    it on first mapping.  No hash lookup and no separate allocations. *)

val uvn_of_vnode : Vfs.Vnode.t -> uvn option

val terminate : Uvm_sys.t -> Vfs.Vnode.t -> unit
(** Drop the vnode's in-core VM state (called when the vnode is recycled);
    requires that no mappings remain. *)

val flush :
  Uvm_sys.t -> Uvm_object.t -> (unit, Vmiface.Vmtypes.fault_error) result
(** Write all dirty pages back to the file (msync), clustered.  On [Error]
    at least one run could not be written and its pages stay dirty. *)

val install_recycle_hook : Uvm_sys.t -> unit
(** Register {!terminate} with the vfs layer; called once at boot. *)

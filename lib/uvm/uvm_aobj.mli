(** Anonymous UVM objects ([uvm_aobj]): shared zero-fill memory.

    Backs shared anonymous mappings (System V shared memory, pageable
    kernel memory).  Data lives in the object's pages and, when paged out,
    in per-page swap slots.  Like all anonymous memory it is freed the
    moment the last reference is dropped.  Pageout uses the same
    swap-location reassignment trick as anons, so scattered dirty pages
    still leave in one clustered I/O when aggressive clustering is on. *)

val create : Uvm_sys.t -> Uvm_object.t
(** A fresh anonymous object with one reference. *)

val swslot_count : Uvm_object.t -> int
(** Swap slots currently held by this aobj (0 for non-aobj objects). *)

val swslots : Uvm_object.t -> (int * int) list
(** The aobj's [(page offset, swap slot)] bindings, unordered — the
    invariant auditor's view of which slots this object claims. *)

val rebind_slot : Uvm_object.t -> pgno:int -> slot:int -> unit
(** Point an existing [(pgno, slot)] binding at a new slot without
    touching the old one — tier-drain migration, where the caller frees
    the vacated slot itself.  Raises on an unknown binding. *)

module Vmtypes = Vmiface.Vmtypes
open Uvm_map

type mode = Share | Copy | Donate

let clone_entry_at t (e : entry) ~spage ~cow ~needs_copy =
  let npgs = entry_npages e in
  (Uvm_sys.stats t.sys).Sim.Stats.map_entries_allocated <-
    (Uvm_sys.stats t.sys).Sim.Stats.map_entries_allocated + 1;
  Sim.Lifecycle.note_entry_alloc (Physmem.lifecycle (Uvm_sys.physmem t.sys));
  Uvm_sys.charge_struct_alloc t.sys;
  {
    spage;
    epage = spage + npgs;
    obj = e.obj;
    objoff = e.objoff;
    amap = e.amap;
    amapoff = e.amapoff;
    prot = e.prot;
    maxprot = e.maxprot;
    inh = e.inh;
    advice = e.advice;
    wired = 0;
    cow;
    needs_copy;
    prev = None;
    next = None;
  }

let extract ~src ~spage ~npages ~dst mode =
  let sys = src.sys in
  let epage = spage + npages in
  Uvm_map.lock src;
  Uvm_map.clip_range src ~spage ~epage;
  let picked = Uvm_map.entries_in_range src ~spage ~epage in
  let covered = List.fold_left (fun n e -> n + entry_npages e) 0 picked in
  if covered <> npages then begin
    Uvm_map.unlock src;
    invalid_arg "Uvm_mexp.extract: source range has unmapped holes"
  end;
  let dst_base = Uvm_map.find_space dst ~npages in
  let place (e : entry) =
    let at = dst_base + (e.spage - spage) in
    match mode with
    | Share ->
        (match e.amap with
        | Some am ->
            Uvm_amap.ref_range am ~slotoff:e.amapoff ~len:(entry_npages e);
            am.Uvm_amap.shared <- true
        | None -> ());
        (match e.obj with
        | Some o -> o.Uvm_object.pgops.Uvm_object.pgo_reference ()
        | None -> ());
        let fresh =
          clone_entry_at dst e ~spage:at ~cow:e.cow ~needs_copy:e.needs_copy
        in
        Uvm_map.insert_entry_raw dst fresh
    | Copy ->
        (match e.amap with
        | Some am ->
            Uvm_amap.ref_range am ~slotoff:e.amapoff ~len:(entry_npages e)
        | None -> ());
        (match e.obj with
        | Some o -> o.Uvm_object.pgops.Uvm_object.pgo_reference ()
        | None -> ());
        (* COW snapshot both ways: write-protect the source's resident
           pages and mark both sides needs-copy (same dance as fork). *)
        if e.amap <> None then e.needs_copy <- true;
        Pmap.restrict_range src.pmap ~lo:e.spage ~hi:e.epage
          ~prot:(Pmap.Prot.remove_write Pmap.Prot.rwx);
        let fresh = clone_entry_at dst e ~spage:at ~cow:true ~needs_copy:true in
        Uvm_map.insert_entry_raw dst fresh
    | Donate ->
        (* Unlinking happens below, once, for all picked entries. *)
        ()
  in
  List.iter place picked;
  (match mode with
  | Donate ->
      List.iter
        (fun (e : entry) ->
          let at = dst_base + (e.spage - spage) in
          Uvm_map.unlink src e;
          Pmap.remove_range src.pmap ~lo:e.spage ~hi:e.epage;
          let npgs = entry_npages e in
          e.spage <- at;
          e.epage <- at + npgs;
          e.wired <- 0;
          Uvm_map.insert_entry_raw dst e)
        picked
  | Share | Copy -> ());
  Uvm_map.unlock src;
  (Uvm_sys.stats sys).Sim.Stats.page_transfers <-
    (Uvm_sys.stats sys).Sim.Stats.page_transfers + 1;
  dst_base

let import_anons ~dst ~anons ~prot =
  let sys = dst.sys in
  let npages = List.length anons in
  if npages = 0 then invalid_arg "Uvm_mexp.import_anons: no anons";
  let spage = Uvm_map.find_space dst ~npages in
  let entry =
    Uvm_map.insert dst ~spage ~npages ~obj:None ~objoff:0 ~prot
      ~maxprot:Pmap.Prot.rwx ~inh:Vmtypes.Inh_copy ~advice:Vmtypes.Adv_normal
      ~cow:true ~needs_copy:false ~merge:false
  in
  let am = Uvm_amap.create sys ~nslots:npages in
  List.iteri (fun i anon -> Uvm_amap.add sys am ~slot:i anon) anons;
  entry.amap <- Some am;
  entry.amapoff <- 0;
  (Uvm_sys.stats sys).Sim.Stats.page_transfers <-
    (Uvm_sys.stats sys).Sim.Stats.page_transfers + 1;
  spage

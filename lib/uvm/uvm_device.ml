(** The device pager: memory objects over device-owned page frames.

    Paper §6's illustration of why UVM's pager API lets the pager allocate
    pages itself: "consider a pager that wants to allow a process to map
    in code directly from pages in a ROM".  A device object's frames are
    fixed at creation (wired, never paged, never freed by the pagedaemon);
    [pgo_get] hands out those exact frames instead of allocating fresh
    ones — something BSD VM's fill-this-page API cannot express. *)

type device = {
  dev_name : string;
  frames : Physmem.Page.t array;  (** the device's own page frames *)
}

(* Build a read-only device (e.g. a boot ROM) whose contents live in
   dedicated wired frames. *)
let create_rom sys ~name ~contents =
  let physmem = Uvm_sys.physmem sys in
  let page_size = Physmem.page_size physmem in
  let npages = (Bytes.length contents + page_size - 1) / page_size in
  if npages = 0 then invalid_arg "Uvm_device.create_rom: empty contents";
  let frames =
    Array.init npages (fun i ->
        let page =
          Physmem.alloc physmem ~zero:true ~owner:Physmem.Page.No_owner
            ~offset:i ()
        in
        let off = i * page_size in
        let n = min page_size (Bytes.length contents - off) in
        Bytes.blit contents off page.Physmem.Page.data 0 n;
        Physmem.wire physmem page;
        page)
  in
  { dev_name = name; frames }

let npages dev = Array.length dev.frames

(* The embedded memory object for a device, as a vnode embeds its uvn. *)
let attach sys dev =
  let obj =
    Uvm_object.make sys (fun obj ->
        let pgo_get ~center ~lo ~hi =
          (* Hand out the device's own frame — no allocation, no I/O. *)
          (if
             center >= 0
             && center < Array.length dev.frames
             && Uvm_object.find_page obj ~pgno:center = None
           then
             let page = dev.frames.(center) in
             page.Physmem.Page.owner <- Uvm_object.Uobj_page obj;
             page.Physmem.Page.owner_offset <- center;
             Hashtbl.replace obj.Uvm_object.pages center page);
          Ok
            (List.filter
               (fun (pgno, _) -> pgno >= lo && pgno < hi)
               (Uvm_object.resident obj))
        in
        let pgo_put _pages =
          (* ROM: nothing to write back. *)
          Ok ()
        in
        let pgo_reference () =
          obj.Uvm_object.refs <- obj.Uvm_object.refs + 1
        in
        let pgo_detach () =
          assert (obj.Uvm_object.refs > 0);
          obj.Uvm_object.refs <- obj.Uvm_object.refs - 1;
          if obj.Uvm_object.refs = 0 then
            (* Mappings gone; the frames belong to the device and stay.
               Just forget the object's page index. *)
            Hashtbl.reset obj.Uvm_object.pages
        in
        {
          Uvm_object.pgo_name = "udv";
          pgo_get;
          pgo_put;
          pgo_cache_spill = (fun _ -> ());
          pgo_reference;
          pgo_detach;
        })
  in
  obj

module Vmtypes = Vmiface.Vmtypes
open Uvm_map

let clone_entry t (e : entry) =
  (Uvm_sys.stats t.sys).Sim.Stats.map_entries_allocated <-
    (Uvm_sys.stats t.sys).Sim.Stats.map_entries_allocated + 1;
  Sim.Lifecycle.note_entry_alloc (Physmem.lifecycle (Uvm_sys.physmem t.sys));
  Uvm_sys.charge_struct_alloc t.sys;
  {
    spage = e.spage;
    epage = e.epage;
    obj = e.obj;
    objoff = e.objoff;
    amap = e.amap;
    amapoff = e.amapoff;
    prot = e.prot;
    maxprot = e.maxprot;
    inh = e.inh;
    advice = e.advice;
    wired = 0;
    cow = e.cow;
    needs_copy = e.needs_copy;
    prev = None;
    next = None;
  }

let fork_shared sys child (e : entry) =
  (* Sharing needs a concrete amap both entries can reference: clear a
     deferred needs-copy now (allocating the amap if the entry has never
     faulted), as uvm_map_fork does before cloning a shared entry.
     Otherwise each side's first fault would build a private amap and the
     "shared" mapping would silently diverge. *)
  if e.needs_copy then Uvm_fault.amap_copy_entry sys e;
  (match e.amap with
  | Some am ->
      Uvm_amap.ref_range am ~slotoff:e.amapoff ~len:(entry_npages e);
      am.Uvm_amap.shared <- true
  | None -> ());
  (match e.obj with
  | Some o -> o.Uvm_object.pgops.Uvm_object.pgo_reference ()
  | None -> ());
  Uvm_map.insert_entry_raw child (clone_entry child e)

(* amap_cow_now: a wired entry's copy may never be deferred.  Deferral
   write-protects the parent, so the parent's next write would COW-resolve
   by swapping a fresh anon into its amap slot — stranding the *wired*
   frame (and its wire count) on the child's side, where teardown later
   frees a still-wired page.  Instead the child gets its own amap with
   every page copied at fork time.  No I/O can be needed: wiring faulted
   every page of the range in, and wired pages sit on no paging queue, so
   each one is resident — in an anon, or (never-written object ranges)
   reachable through the parent's wired translation.  The parent keeps
   writing in place: no needs-copy, no write-protect. *)
let fork_copy_wired sys parent (e : entry) (fresh : entry) =
  let physmem = Uvm_sys.physmem sys in
  let stats = Uvm_sys.stats sys in
  let len = entry_npages e in
  let copy =
    match e.amap with
    | Some am -> Uvm_amap.copy sys am ~slotoff:e.amapoff ~len
    | None -> Uvm_amap.create sys ~nslots:len
  in
  let copy_into_fresh_anon src =
    let anon = Uvm_anon.alloc sys ~zero:false in
    let dst = Option.get anon.Uvm_anon.page in
    Physmem.copy_data physmem ~src ~dst;
    stats.Sim.Stats.cow_copies <- stats.Sim.Stats.cow_copies + 1;
    dst.Physmem.Page.dirty <- true;
    Physmem.activate physmem dst;
    anon
  in
  for slot = 0 to len - 1 do
    match Uvm_amap.lookup copy ~slot with
    | Some anon when anon.Uvm_anon.refs > 1 ->
        let src =
          match anon.Uvm_anon.page with
          | Some p -> p
          | None -> invalid_arg "uvm_fork: wired anon not resident"
        in
        Uvm_amap.replace sys copy ~slot (copy_into_fresh_anon src)
    | Some _ -> ()
    | None -> (
        (* Empty slot: the wired translation maps an object page. *)
        match Pmap.lookup parent.pmap ~vpn:(e.spage + slot) with
        | Some pte -> Uvm_amap.add sys copy ~slot (copy_into_fresh_anon pte.Pmap.page)
        | None -> invalid_arg "uvm_fork: wired page not mapped")
  done;
  fresh.amap <- Some copy;
  fresh.amapoff <- 0;
  fresh.needs_copy <- false

let fork_copy sys parent child (e : entry) =
  let fresh = clone_entry child e in
  fresh.cow <- true;
  (match e.obj with
  | Some o -> o.Uvm_object.pgops.Uvm_object.pgo_reference ()
  | None -> ());
  (match e.amap with
  | _ when e.wired > 0 -> fork_copy_wired sys parent e fresh
  | None ->
      (* Nothing anonymous yet: pure needs-copy deferral. *)
      fresh.needs_copy <- true
  | Some am when am.Uvm_amap.shared ->
      (* amap_cow_now: a shared amap's in-place writes would leak into a
         deferred copy, so snapshot it at fork time. *)
      fresh.amap <-
        Some (Uvm_amap.copy sys am ~slotoff:e.amapoff ~len:(entry_npages e));
      fresh.amapoff <- 0;
      fresh.needs_copy <- false;
      Pmap.restrict_range parent.pmap ~lo:e.spage ~hi:e.epage
        ~prot:(Pmap.Prot.remove_write Pmap.Prot.rwx)
  | Some am ->
      (* Figure 3: share the amap, set needs-copy on both sides, and
         write-protect the parent's view so either side's first write
         faults. *)
      Uvm_amap.ref_range am ~slotoff:e.amapoff ~len:(entry_npages e);
      fresh.needs_copy <- true;
      e.needs_copy <- true;
      Pmap.restrict_range parent.pmap ~lo:e.spage ~hi:e.epage
        ~prot:(Pmap.Prot.remove_write Pmap.Prot.rwx));
  Uvm_map.insert_entry_raw child fresh

let fork_map parent ~child_pmap =
  let sys = parent.sys in
  let child =
    Uvm_map.create sys ~pmap:child_pmap ~lo:parent.lo ~hi:parent.hi
      ~kernel:false
  in
  Uvm_map.lock parent;
  Uvm_map.iter_entries
    (fun e ->
      match e.inh with
      | Vmtypes.Inh_none -> ()
      | Vmtypes.Inh_shared -> fork_shared sys child e
      | Vmtypes.Inh_copy -> fork_copy sys parent child e)
    parent;
  Uvm_map.unlock parent;
  child

type t = {
  id : int;
  mutable refs : int;
  mutable page : Physmem.Page.t option;
  mutable swslot : int;
}

type Physmem.Page.tag += Anon_page of t

let alloc sys ~zero =
  let stats = Uvm_sys.stats sys in
  stats.Sim.Stats.anons_allocated <- stats.Sim.Stats.anons_allocated + 1;
  Uvm_sys.charge_struct_alloc sys;
  let anon = { id = Uvm_sys.fresh_id sys; refs = 1; page = None; swslot = 0 } in
  let page =
    Physmem.alloc (Uvm_sys.physmem sys) ~zero ~owner:(Anon_page anon)
      ~offset:0 ()
  in
  Physmem.activate (Uvm_sys.physmem sys) page;
  anon.page <- Some page;
  anon

let alloc_empty sys =
  let stats = Uvm_sys.stats sys in
  stats.Sim.Stats.anons_allocated <- stats.Sim.Stats.anons_allocated + 1;
  Uvm_sys.charge_struct_alloc sys;
  { id = Uvm_sys.fresh_id sys; refs = 1; page = None; swslot = 0 }

let ref_ t = t.refs <- t.refs + 1

let set_swslot sys t slot =
  if t.swslot <> 0 then
    Swap.Swaptier.free_slots (Uvm_sys.swapdev sys) ~slot:t.swslot ~n:1;
  t.swslot <- slot

let unref sys t =
  if t.refs <= 0 then invalid_arg "Uvm_anon.unref: no references";
  t.refs <- t.refs - 1;
  if t.refs = 0 then begin
    (match t.page with
    | Some page ->
        let owns =
          match page.Physmem.Page.owner with
          | Anon_page a -> a == t
          | _ -> false
        in
        if owns then begin
          Pmap.page_remove_all (Uvm_sys.pmap_ctx sys) page;
          if
            page.Physmem.Page.wire_count > 0
            && page.Physmem.Page.loan_count = 0
          then
            (* Wired anon pages are unwired by whoever wired them before the
               final unref; hitting this is a bug in the caller.  (A page
               wired *by a borrower* is fine: free_page just drops the
               ownership.) *)
            invalid_arg "Uvm_anon.unref: freeing wired page";
          Physmem.free_page (Uvm_sys.physmem sys) page
        end
        else
          (* The anon was borrowing this page via loanout: just end the
             loan; the owner's mappings are untouched. *)
          Physmem.release_loan (Uvm_sys.physmem sys) page
    | None -> ());
    t.page <- None;
    set_swslot sys t 0;
    let stats = Uvm_sys.stats sys in
    stats.Sim.Stats.anons_freed <- stats.Sim.Stats.anons_freed + 1
  end

let is_resident t = t.page <> None

let ensure_resident sys t =
  match t.page with
  | Some page -> Ok page
  | None -> (
      if t.swslot = 0 then
        invalid_arg "Uvm_anon.ensure_resident: anon has neither page nor swap";
      (* Swap pagein creates free memory (the slot's frame can be reclaimed
         once clean), so it may draw on the kernel reserve. *)
      let page =
        Physmem.alloc (Uvm_sys.physmem sys) ~privileged:true
          ~owner:(Anon_page t) ~offset:0 ()
      in
      let span = Uvm_sys.span_start sys ~subsys:"pager" "pagein" in
      let t0 = Sim.Simclock.now (Uvm_sys.clock sys) in
      let r =
        Swap.Swaptier.read_resilient (Uvm_sys.swapdev sys)
          ~retries:sys.Uvm_sys.io_retries ~backoff_us:sys.Uvm_sys.io_backoff_us
          ~slot:t.swslot ~dst:page
      in
      Uvm_sys.span_finish sys span
        ~detail:
          [
            ("pager", "anon");
            ("result", match r with Ok () -> "ok" | Error _ -> "error");
          ]
        ();
      (if Uvm_sys.tracing sys then begin
         let dur = Sim.Simclock.now (Uvm_sys.clock sys) -. t0 in
         Uvm_sys.trace sys ~subsys:Sim.Hist.Pager ~ts:t0 ~dur
           ~detail:
             [
               ("pager", "anon");
               ("pages", "1");
               ("result", match r with Ok () -> "ok" | Error _ -> "error");
             ]
           "pagein";
         Uvm_sys.observe sys "pagein_us" dur
       end);
      match r with
      | Ok () ->
          Physmem.note_fault_in (Uvm_sys.physmem sys) page
            ~fill:Sim.Lifecycle.Fill_pagein;
          Physmem.activate (Uvm_sys.physmem sys) page;
          t.page <- Some page;
          Ok page
      | Error _ ->
          (* The pagein failed for good; give the frame back.  The anon
             keeps its swslot — the data (possibly unreadable) is still
             nominally there, and a later access may be retried. *)
          Physmem.free_page (Uvm_sys.physmem sys) page;
          let stats = Uvm_sys.stats sys in
          stats.Sim.Stats.pageins_failed <- stats.Sim.Stats.pageins_failed + 1;
          Error Vmiface.Vmtypes.Pager_error)

let writable_in_place t =
  t.refs = 1
  && match t.page with Some p -> p.Physmem.Page.loan_count = 0 | None -> true

let pp ppf t =
  Format.fprintf ppf "anon#%d{refs=%d res=%b swslot=%d}" t.id t.refs
    (is_resident t) t.swslot

type t = {
  id : int;
  mutable refs : int;
  pages : (int, Physmem.Page.t) Hashtbl.t;
  mutable pgops : pager_ops;
  okey : Physmem.Lookup.okey;
}

and pager_ops = {
  pgo_name : string;
  pgo_get :
    center:int ->
    lo:int ->
    hi:int ->
    ((int * Physmem.Page.t) list, Vmiface.Vmtypes.fault_error) result;
  pgo_put : Physmem.Page.t list -> (unit, Vmiface.Vmtypes.fault_error) result;
  pgo_cache_spill : Physmem.Page.t -> unit;
  pgo_reference : unit -> unit;
  pgo_detach : unit -> unit;
}

type Physmem.Page.tag += Uobj_page of t

let dummy_ops =
  {
    pgo_name = "uninitialized";
    pgo_get = (fun ~center:_ ~lo:_ ~hi:_ -> assert false);
    pgo_put = (fun _ -> assert false);
    pgo_cache_spill = (fun _ -> assert false);
    pgo_reference = (fun () -> assert false);
    pgo_detach = (fun () -> assert false);
  }

let make sys mk_ops =
  let t =
    {
      id = Uvm_sys.fresh_id sys;
      refs = 1;
      pages = Hashtbl.create 16;
      pgops = dummy_ops;
      okey = Physmem.Lookup.okey (Uvm_sys.physmem sys);
    }
  in
  t.pgops <- mk_ops t;
  t

let find_page t ~pgno = Hashtbl.find_opt t.pages pgno

let insert_page _sys t ~pgno (page : Physmem.Page.t) =
  assert (not (Hashtbl.mem t.pages pgno));
  page.owner <- Uobj_page t;
  page.owner_offset <- pgno;
  Hashtbl.replace t.pages pgno page;
  Physmem.Lookup.publish t.okey ~pgno page

let remove_page t ~pgno =
  Physmem.Lookup.revoke t.okey ~pgno;
  Hashtbl.remove t.pages pgno
let resident_count t = Hashtbl.length t.pages
let resident t = Hashtbl.fold (fun pgno page acc -> (pgno, page) :: acc) t.pages []

let dirty_pages t =
  Hashtbl.fold
    (fun _ (page : Physmem.Page.t) acc -> if page.dirty then page :: acc else acc)
    t.pages []

let free_all_pages sys t =
  let physmem = Uvm_sys.physmem sys in
  let ctx = Uvm_sys.pmap_ctx sys in
  Hashtbl.iter
    (fun pgno (page : Physmem.Page.t) ->
      Physmem.Lookup.revoke t.okey ~pgno;
      Pmap.page_remove_all ctx page;
      Physmem.free_page physmem page)
    t.pages;
  Hashtbl.reset t.pages

(** Global UVM state: the machine plus UVM's tunables.

    The tunables expose the paper's design knobs so the ablation benchmarks
    can turn individual UVM improvements off:
    - [fault_ahead]/[fault_behind]: the fault routine's window for mapping
      resident neighbour pages (paper default: 4 ahead, 3 behind);
    - [pageout_cluster]: how many dirty anonymous pages the pagedaemon
      groups into one reassigned-swap I/O (§6);
    - [io_cluster]: pager read clustering;
    - [aggressive_clustering]: disable to fall back to BSD-style one-page
      pageout while keeping the rest of UVM;
    - [io_retries]/[io_backoff_us]: the resilience policy — how many times
      a transient I/O error is retried and the base exponential-backoff
      delay charged to the simulated clock between attempts. *)

module Machine = Vmiface.Machine

type t = {
  mach : Machine.t;
  fault_ahead : int;
  fault_behind : int;
  pageout_cluster : int;
  io_cluster : int;
  aggressive_clustering : bool;
  io_retries : int;
  io_backoff_us : float;
  mutable next_id : int;
  (* Outstanding kernel loans (uvm_loan.to_kernel), keyed by token, so the
     auditor can census every page's loan_count against live borrowers. *)
  mutable kernel_loans : (int * Physmem.Page.t list) list;
}

let create ?(fault_ahead = 4) ?(fault_behind = 3) ?(pageout_cluster = 4)
    ?(io_cluster = 4) ?(aggressive_clustering = true) ?(io_retries = 3)
    ?(io_backoff_us = 200.0) mach =
  {
    mach;
    fault_ahead;
    fault_behind;
    pageout_cluster;
    io_cluster;
    aggressive_clustering;
    io_retries;
    io_backoff_us;
    next_id = 0;
    kernel_loans = [];
  }

(* Ids are unique process-wide (not just per system) so they can key
   registries shared by several booted systems (e.g. in tests that compare
   two kernels side by side). *)
let id_counter = ref 0

let fresh_id t =
  incr id_counter;
  t.next_id <- t.next_id + 1;
  !id_counter

let register_kernel_loan t pages =
  let token = fresh_id t in
  t.kernel_loans <- (token, pages) :: t.kernel_loans;
  token

let unregister_kernel_loan t token =
  t.kernel_loans <- List.filter (fun (id, _) -> id <> token) t.kernel_loans

(* One (holder, frame) claim per outstanding borrowed reference, in the
   shape Check.check_loans consumes. *)
let kernel_loan_claims t =
  List.concat_map
    (fun (token, pages) ->
      List.map
        (fun (p : Physmem.Page.t) ->
          (Printf.sprintf "kernel-loan#%d" token, p.Physmem.Page.id))
        pages)
    t.kernel_loans

let clock t = t.mach.Machine.clock
let costs t = t.mach.Machine.costs
let stats t = t.mach.Machine.stats
let physmem t = t.mach.Machine.physmem
let locks t = t.mach.Machine.locks
let swapdev t = t.mach.Machine.swap
let vfs t = t.mach.Machine.vfs
let pmap_ctx t = t.mach.Machine.pmap_ctx
let charge t us = Sim.Simclock.advance (clock t) us
let charge_struct_alloc t = charge t (costs t).Sim.Cost_model.struct_alloc

(* Observability (see Sim.Hist / Sim.Histogram).  Call sites guard on
   [tracing] so a normal run pays one boolean check and no allocation. *)
let hist t = t.mach.Machine.hist
let latencies t = t.mach.Machine.latencies
let tracing t = Sim.Hist.enabled (hist t)

let trace t ~subsys ~ts ?dur ?detail name =
  Sim.Hist.record (hist t) ~subsys ~ts ?dur ?detail name

let observe t name v =
  if tracing t then
    Sim.Histogram.observe (Sim.Histogram.get (latencies t) name) v

let spans t = t.mach.Machine.spans

let span_start t ~subsys name =
  Sim.Span.start (spans t) ~subsys ~ts:(Sim.Simclock.now (clock t)) name

let span_finish t sp ?detail () =
  Sim.Span.finish (spans t) sp ~ts:(Sim.Simclock.now (clock t)) ?detail ()

(* Run a fallible I/O action under the system's retry policy: transient
   errors are retried up to [io_retries] times with exponential backoff
   charged to the simulated clock; permanent errors (and exhaustion of the
   budget) surface to the caller. *)
let retry_transient t f =
  let rec go attempt =
    match f () with
    | Ok _ as ok -> ok
    | Error e -> (
        match e.Sim.Fault_plan.severity with
        | Sim.Fault_plan.Transient when attempt < t.io_retries ->
            charge t (t.io_backoff_us *. (2.0 ** float_of_int attempt));
            go (attempt + 1)
        | _ -> Error e)
  in
  go 0

module Vmtypes = Vmiface.Vmtypes
open Uvm_map

let window sys = function
  | Vmtypes.Adv_normal -> (sys.Uvm_sys.fault_behind, sys.Uvm_sys.fault_ahead)
  | Vmtypes.Adv_random -> (0, 0)
  | Vmtypes.Adv_sequential -> (0, 2 * sys.Uvm_sys.fault_ahead)

(* Clear the needs-copy flag of [entry] (paper Figure 3, lower row).  When
   the entry holds the only reference to its amap no copying is needed at
   all; otherwise a new amap aliasing the same anons is built and write
   faults resolve at anon granularity later. *)
let amap_copy_entry sys entry =
  let npgs = entry_npages entry in
  (match entry.amap with
  | None ->
      entry.amap <- Some (Uvm_amap.create sys ~nslots:npgs);
      entry.amapoff <- 0
  | Some am ->
      if not (am.Uvm_amap.refs = 1 && not am.Uvm_amap.shared) then begin
        let fresh = Uvm_amap.copy sys am ~slotoff:entry.amapoff ~len:npgs in
        Uvm_amap.unref_range sys am ~slotoff:entry.amapoff ~len:npgs;
        entry.amap <- Some fresh;
        entry.amapoff <- 0
      end);
  entry.needs_copy <- false

(* Map a resident neighbour page read-only; never does I/O. *)
let map_neighbour map entry vpn =
  let sys = map.sys in
  match Pmap.lookup map.pmap ~vpn with
  | Some _ -> ()
  | None ->
      let page =
        match entry.amap with
        | Some am -> (
            match
              Uvm_amap.lookup am ~slot:(entry.amapoff + (vpn - entry.spage))
            with
            | Some anon -> anon.Uvm_anon.page
            | None -> (
                match entry.obj with
                | Some obj ->
                    Uvm_object.find_page obj
                      ~pgno:(entry.objoff + (vpn - entry.spage))
                | None -> None))
        | None -> (
            match entry.obj with
            | Some obj ->
                Uvm_object.find_page obj
                  ~pgno:(entry.objoff + (vpn - entry.spage))
            | None -> None)
      in
      (match page with
      | Some page when not page.Physmem.Page.busy ->
          Pmap.enter map.pmap ~vpn ~page
            ~prot:(Pmap.Prot.remove_write entry.prot)
            ~wired:false;
          (Uvm_sys.stats sys).Sim.Stats.fault_ahead_mapped <-
            (Uvm_sys.stats sys).Sim.Stats.fault_ahead_mapped + 1;
          Physmem.note_fault_ahead_mapped (Uvm_sys.physmem sys) page
            ~madv:(Vmtypes.lifecycle_madv entry.advice)
      | Some _ | None -> ())

let fault_ahead map entry ~vpn =
  let sys = map.sys in
  let behind, ahead = window sys entry.advice in
  if behind > 0 || ahead > 0 then
    for v = vpn - behind to vpn + ahead do
      if v <> vpn && v >= entry.spage && v < entry.epage then
        map_neighbour map entry v
    done

(* Install a resolved translation while keeping the mapping's wire
   accounting attached to the frame the pmap actually maps.  mlock
   wirings are recorded in [entry.wired] and carried by the mapped
   frame's wire count; when resolution yields a different frame (COW,
   loan displacement, shared-amap replacement) those wirings must move
   with the translation, or a later munlock would unwire a frame that no
   longer carries them.  Re-entering the same frame must preserve an
   existing wired flag even on a plain fault, or the wirings would
   become invisible to the next displacement. *)
(* Snapshot of the translation a fault is about to displace, taken
   before any anon/amap surgery: unref of a displaced anon tears down
   all its translations, ours included. *)
let pte_snapshot map ~vpn =
  match Pmap.lookup map.pmap ~vpn with
  | Some pte -> Some (pte.Pmap.page, pte.Pmap.wired)
  | None -> None

(* How many of this mapping's wirings must move from the displaced frame
   to [page].  mlock wirings are recorded in [entry.wired] and carried by
   the mapped frame's wire count, so when resolution yields a different
   frame (COW, loan displacement, shared-amap replacement) they travel
   with the translation — or a later munlock would unwire a frame that no
   longer carries them.  mlock marks the entry only after its wire faults
   complete, so during any wire fault [entry.wired] counts exactly the
   established wirings — the wiring the fault itself is creating is
   applied to the resolved frame afterwards, never moved. *)
let wirings_to_move entry ~prev ~page ~wire =
  ignore wire;
  match prev with
  | Some (old_page, true) when old_page != page -> max 0 entry.wired
  | Some _ | None -> 0

(* Detach the moving wirings from the displaced frame.  Must run before
   the amap surgery of a COW replacement: dropping the displaced anon's
   last reference frees its page, which must not still carry the
   mapping's wirings (and tears down its translations, so the snapshot
   has to be taken earlier still). *)
let unwire_displaced map ~prev ~transfer =
  match prev with
  | Some (old_page, _) ->
      for _ = 1 to transfer do
        Physmem.unwire (Uvm_sys.physmem map.sys) old_page
      done
  | None -> ()

(* Install a resolved translation, re-applying the moved wirings to the
   new frame and preserving an existing wired flag on a same-frame
   re-enter even when the fault itself is not a wiring one — otherwise
   the wirings would become invisible to the next displacement. *)
let enter_resolved map ~vpn ~page ~prot ~wire ~prev ~transfer =
  let keep =
    match prev with
    | Some (old_page, wired) -> wired && old_page == page
    | None -> false
  in
  Pmap.enter map.pmap ~vpn ~page ~prot ~wired:(wire || keep || transfer > 0);
  for _ = 1 to transfer do
    Physmem.wire (Uvm_sys.physmem map.sys) page
  done

let resolve_anon_fault map entry ~vpn ~write ~wire anon =
  let sys = map.sys in
  let physmem = Uvm_sys.physmem sys in
  let stats = Uvm_sys.stats sys in
  let am = Option.get entry.amap in
  let slot = entry.amapoff + (vpn - entry.spage) in
  match Uvm_anon.ensure_resident sys anon with
  | Error _ as e -> e
  | Ok page ->
      let prev = pte_snapshot map ~vpn in
      if write then
        if Uvm_anon.writable_in_place anon then begin
          (* Sole reference, no loans: write straight into the page — the
             optimisation BSD VM's chains cannot express (paper §5.3). *)
          stats.Sim.Stats.cow_reuses <- stats.Sim.Stats.cow_reuses + 1;
          page.Physmem.Page.dirty <- true;
          Physmem.activate physmem page;
          let transfer = wirings_to_move entry ~prev ~page ~wire in
          unwire_displaced map ~prev ~transfer;
          enter_resolved map ~vpn ~page ~prot:entry.prot ~wire ~prev ~transfer;
          Ok page
        end
        else begin
          (* Copy-on-write at anon granularity: copy into a fresh anon and
             drop one reference on the old one. *)
          let fresh = Uvm_anon.alloc sys ~zero:false in
          let fresh_page = Option.get fresh.Uvm_anon.page in
          Physmem.copy_data physmem ~src:page ~dst:fresh_page;
          Physmem.note_fault_in physmem fresh_page
            ~fill:Sim.Lifecycle.Fill_cow;
          stats.Sim.Stats.cow_copies <- stats.Sim.Stats.cow_copies + 1;
          let transfer = wirings_to_move entry ~prev ~page:fresh_page ~wire in
          unwire_displaced map ~prev ~transfer;
          (* Replacing an anon in a *shared* amap: other sharers still map the
             displaced page — shoot those translations down so they refault
             and find the new anon.  Wired translations are skipped: they
             carry the page's wire count, and their owner's entry may well
             still resolve the displaced anon through a different amap. *)
          if am.Uvm_amap.shared then
            Pmap.page_remove_unwired (Uvm_sys.pmap_ctx sys) page;
          Uvm_amap.replace sys am ~slot fresh;
          fresh_page.Physmem.Page.dirty <- true;
          Physmem.activate physmem fresh_page;
          enter_resolved map ~vpn ~page:fresh_page ~prot:entry.prot ~wire ~prev
            ~transfer;
          Ok fresh_page
        end
      else begin
        let prot =
          if Uvm_anon.writable_in_place anon && not entry.needs_copy then
            entry.prot
          else Pmap.Prot.remove_write entry.prot
        in
        Physmem.activate physmem page;
        let transfer = wirings_to_move entry ~prev ~page ~wire in
        unwire_displaced map ~prev ~transfer;
        enter_resolved map ~vpn ~page ~prot ~wire ~prev ~transfer;
        Ok page
      end

let resolve_object_fault map entry ~vpn ~write ~wire obj =
  let sys = map.sys in
  let physmem = Uvm_sys.physmem sys in
  let stats = Uvm_sys.stats sys in
  let pgno = entry.objoff + (vpn - entry.spage) in
  Uvm_sys.charge sys (Uvm_sys.costs sys).Sim.Cost_model.object_search;
  match
    obj.Uvm_object.pgops.Uvm_object.pgo_get ~center:pgno ~lo:entry.objoff
      ~hi:(entry.objoff + entry_npages entry)
  with
  | Error _ as e -> e
  | Ok resident -> (
      let page =
        match List.assoc_opt pgno resident with
        | Some page -> Some page
        | None ->
            (* pgo_get guarantees the centre page; re-check directly in case
               the pager reported a narrower window. *)
            Uvm_object.find_page obj ~pgno
      in
      match page with
      | None ->
          (* A pager that reports success but supplies no centre page is
             indistinguishable from failed backing store; deliver the typed
             error rather than panicking the kernel. *)
          Error Vmtypes.Pager_error
      | Some page ->
          let prev = pte_snapshot map ~vpn in
          if write && entry.cow then begin
            (* Promote: anonymise the page so the object stays unmodified. *)
            let am = Option.get entry.amap in
            let slot = entry.amapoff + (vpn - entry.spage) in
            let anon = Uvm_anon.alloc sys ~zero:false in
            let anon_page = Option.get anon.Uvm_anon.page in
            Physmem.copy_data physmem ~src:page ~dst:anon_page;
            Physmem.note_fault_in physmem anon_page
              ~fill:Sim.Lifecycle.Fill_cow;
            stats.Sim.Stats.cow_copies <- stats.Sim.Stats.cow_copies + 1;
            let transfer = wirings_to_move entry ~prev ~page:anon_page ~wire in
            unwire_displaced map ~prev ~transfer;
            (* Promoting into a *shared* amap changes what every sharer's
               entry resolves at this slot: sharers still mapping the
               object's page read-only would keep reading it and miss all
               writes through the new anon.  Shoot their translations down
               so they refault and find the anon. *)
            if am.Uvm_amap.shared then
              Pmap.page_remove_unwired (Uvm_sys.pmap_ctx sys) page;
            Uvm_amap.add sys am ~slot anon;
            anon_page.Physmem.Page.dirty <- true;
            Physmem.activate physmem anon_page;
            enter_resolved map ~vpn ~page:anon_page ~prot:entry.prot ~wire ~prev
              ~transfer;
            Ok anon_page
          end
          else begin
            if write then page.Physmem.Page.dirty <- true;
            let prot =
              if entry.cow then Pmap.Prot.remove_write entry.prot
              else entry.prot
            in
            Physmem.activate physmem page;
            (* Re-publish: a direct-mapped collision may have evicted
               this page's slot since insert; the locked path is where
               the hash heals. *)
            Physmem.Lookup.publish obj.Uvm_object.okey ~pgno page;
            let transfer = wirings_to_move entry ~prev ~page ~wire in
            unwire_displaced map ~prev ~transfer;
            enter_resolved map ~vpn ~page ~prot ~wire ~prev ~transfer;
            Ok page
          end)

let resolve_zero_fill map entry ~vpn ~write ~wire =
  let sys = map.sys in
  let physmem = Uvm_sys.physmem sys in
  let am = Option.get entry.amap in
  let slot = entry.amapoff + (vpn - entry.spage) in
  let anon = Uvm_anon.alloc sys ~zero:true in
  let page = Option.get anon.Uvm_anon.page in
  Physmem.note_fault_in physmem page ~fill:Sim.Lifecycle.Fill_zero;
  Uvm_amap.add sys am ~slot anon;
  if write then page.Physmem.Page.dirty <- true;
  Physmem.activate physmem page;
  let prev = pte_snapshot map ~vpn in
  let transfer = wirings_to_move entry ~prev ~page ~wire in
  unwire_displaced map ~prev ~transfer;
  enter_resolved map ~vpn ~page ~prot:entry.prot ~wire ~prev ~transfer;
  Ok page

let fault map ~vpn ~access ~wire =
  let sys = map.sys in
  let stats = Uvm_sys.stats sys in
  let costs = Uvm_sys.costs sys in
  let t0 = Sim.Simclock.now (Uvm_sys.clock sys) in
  Uvm_sys.charge sys costs.Sim.Cost_model.fault_entry;
  stats.Sim.Stats.faults <- stats.Sim.Stats.faults + 1;
  let span = Uvm_sys.span_start sys ~subsys:"fault" "fault" in
  Uvm_map.lock map;
  (* Every exit goes through [finish], which is therefore the one place
     the fault-path span and latency are recorded. *)
  let finish r =
    Uvm_map.unlock map;
    let result =
      match r with
      | Ok () -> "ok"
      | Error e -> Vmtypes.string_of_fault_error e
    in
    Uvm_sys.span_finish sys span
      ~detail:[ ("vpn", string_of_int vpn); ("result", result) ]
      ();
    if Uvm_sys.tracing sys then begin
      let dur = Sim.Simclock.now (Uvm_sys.clock sys) -. t0 in
      Uvm_sys.trace sys ~subsys:Sim.Hist.Fault ~ts:t0 ~dur
        ~detail:
          [
            ("vpn", string_of_int vpn);
            ( "access",
              match access with Vmtypes.Read -> "read" | Vmtypes.Write -> "write"
            );
            ("result", result);
          ]
        "fault";
      Uvm_sys.observe sys "fault_us" dur
    end;
    r
  in
  match Uvm_map.lookup map ~vpn with
  | None -> finish (Error Vmtypes.No_entry)
  | Some entry ->
      (* Wiring a writable COW mapping must resolve the copy now, or a
         later write fault would swap out the wired page for a copy. *)
      let write =
        access = Vmtypes.Write || (wire && entry.prot.Pmap.Prot.w && entry.cow)
      in
      (* Same reasoning one layer down: wiring a writable mapping whose
         anon cannot be written in place (shared with another amap or
         loaned out) must displace the private copy now — vslock-style
         wirings live only on the frame, so a later write fault's
         displacement would strand them on the old frame and vsunlock
         would unwire a frame that never carried them. *)
      let write =
        write
        || wire
           && entry.prot.Pmap.Prot.w
           &&
           match entry.amap with
           | Some am -> (
               match
                 Uvm_amap.lookup am ~slot:(entry.amapoff + (vpn - entry.spage))
               with
               | Some anon -> not (Uvm_anon.writable_in_place anon)
               | None -> false)
           | None -> false
      in
      let wanted =
        if write then Pmap.Prot.rw
        else { Pmap.Prot.r = true; w = false; x = false }
      in
      if not (Pmap.Prot.subsumes entry.prot wanted) then
        finish (Error Vmtypes.Prot_denied)
      else begin
        (* Step 1: anonymous-layer setup. *)
        if entry.needs_copy && (write || entry.obj = None) then
          amap_copy_entry sys entry;
        if entry.amap = None && entry.obj = None then begin
          (* Zero-fill mapping faulted for the first time. *)
          entry.amap <- Some (Uvm_amap.create sys ~nslots:(entry_npages entry));
          entry.amapoff <- 0
        end;
        if write && entry.cow && entry.amap = None then begin
          (* Private object mapping about to be written: it needs an
             anonymous layer to hold the promoted page. *)
          entry.amap <- Some (Uvm_amap.create sys ~nslots:(entry_npages entry));
          entry.amapoff <- 0
        end;
        (* Step 2: two-level lookup — amap first, then object. *)
        let anon =
          match entry.amap with
          | Some am ->
              Uvm_amap.lookup am ~slot:(entry.amapoff + (vpn - entry.spage))
          | None -> None
        in
        (* The per-structure data lock (amap or uvm_object) is held
           around the resolution step, nested inside the map lock —
           exactly the two-level locking of paper §4; the registry
           learns the map -> amap/object order from this nesting. *)
        let locked ~cls ~id ~mode f =
          let ls = Uvm_sys.locks sys in
          let l = Sim.Lockstat.instance ls ~cls ~id in
          Sim.Lockstat.acquire ls l ~mode;
          Fun.protect ~finally:(fun () -> Sim.Lockstat.release ls l) f
        in
        let amap_mode =
          if write then Sim.Lockstat.Write else Sim.Lockstat.Read
        in
        let resolution =
          (* RAM exhaustion anywhere below (page allocation for pagein,
             COW copy, zero fill) is a typed failure, not a crash. *)
          try
            match anon with
            | Some anon ->
                let am = Option.get entry.amap in
                locked ~cls:"amap" ~id:am.Uvm_amap.id ~mode:amap_mode
                  (fun () -> resolve_anon_fault map entry ~vpn ~write ~wire anon)
            | None -> (
                match entry.obj with
                | Some obj -> (
                    (* Lockless fast path (DESIGN.md §16): a validated
                       hit on the heuristic page hash resolves the fault
                       without taking the object lock or entering the
                       pager.  Wire faults and COW promotions still need
                       the locked path's surgery. *)
                    let pgno = entry.objoff + (vpn - entry.spage) in
                    let fast =
                      if wire || (write && entry.cow) then None
                      else Physmem.Lookup.find obj.Uvm_object.okey ~pgno
                    in
                    match fast with
                    | Some page ->
                        let physmem = Uvm_sys.physmem sys in
                        let prev = pte_snapshot map ~vpn in
                        if write then page.Physmem.Page.dirty <- true;
                        let prot =
                          if entry.cow then Pmap.Prot.remove_write entry.prot
                          else entry.prot
                        in
                        Physmem.activate physmem page;
                        let transfer =
                          wirings_to_move entry ~prev ~page ~wire
                        in
                        unwire_displaced map ~prev ~transfer;
                        enter_resolved map ~vpn ~page ~prot ~wire ~prev
                          ~transfer;
                        Ok page
                    | None ->
                        locked ~cls:"object" ~id:obj.Uvm_object.id
                          ~mode:Sim.Lockstat.Read (fun () ->
                            resolve_object_fault map entry ~vpn ~write ~wire
                              obj))
                | None ->
                    let am = Option.get entry.amap in
                    locked ~cls:"amap" ~id:am.Uvm_amap.id
                      ~mode:Sim.Lockstat.Write (fun () ->
                        resolve_zero_fill map entry ~vpn ~write ~wire))
          with Physmem.Out_of_pages -> Error Vmtypes.Out_of_memory
        in
        match resolution with
        | Error e -> finish (Error e)
        | Ok page ->
            Physmem.note_demand_fault (Uvm_sys.physmem sys) page;
            if wire then begin
              Sim.Lifecycle.note_fill
                (Physmem.lifecycle (Uvm_sys.physmem sys))
                Sim.Lifecycle.Fill_wire;
              Physmem.wire (Uvm_sys.physmem sys) page
            end;
            page.Physmem.Page.referenced <- true;
            (* Step 3: opportunistically map resident neighbours. *)
            if not wire then fault_ahead map entry ~vpn;
            finish (Ok ())
      end

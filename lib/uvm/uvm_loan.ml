module Vmtypes = Vmiface.Vmtypes

type t = { token : int; loaned : Physmem.Page.t list }

(* Fault the page at [vpn] in for read and return the backing frame. *)
let resolve_page map ~vpn =
  (match Pmap.lookup map.Uvm_map.pmap ~vpn with
  | Some _ -> ()
  | None -> (
      match Uvm_fault.fault map ~vpn ~access:Vmtypes.Read ~wire:false with
      | Ok () -> ()
      | Error error -> raise (Vmtypes.Segv { vpn; error })));
  match Pmap.lookup map.Uvm_map.pmap ~vpn with
  | Some pte -> pte.Pmap.page
  | None -> assert false

(* Is this frame owned by an anon (as opposed to a memory object)? *)
let anon_owner (page : Physmem.Page.t) =
  match page.owner with Uvm_anon.Anon_page anon -> Some anon | _ -> None

let loan_one map ~vpn ~wire =
  let sys = map.Uvm_map.sys in
  let page = resolve_page map ~vpn in
  Uvm_sys.charge sys (Uvm_sys.costs sys).Sim.Cost_model.loan_page;
  page.Physmem.Page.loan_count <- page.Physmem.Page.loan_count + 1;
  (* Preserve COW: the owner's next write must fault and copy, not write
     through to the borrowed frame. *)
  if anon_owner page <> None then
    Pmap.page_protect_all (Uvm_sys.pmap_ctx sys) page
      ~prot:(Pmap.Prot.remove_write Pmap.Prot.rwx);
  if wire then Physmem.wire (Uvm_sys.physmem sys) page;
  let stats = Uvm_sys.stats sys in
  stats.Sim.Stats.pages_loaned <- stats.Sim.Stats.pages_loaned + 1;
  page

let to_kernel map ~vpn ~npages =
  let sys = map.Uvm_map.sys in
  let stats = Uvm_sys.stats sys in
  stats.Sim.Stats.loanouts <- stats.Sim.Stats.loanouts + 1;
  (* Loan setup: syscall entry plus anon/object layer preparation. *)
  Uvm_sys.charge sys
    ((Uvm_sys.costs sys).Sim.Cost_model.syscall_overhead
    +. (1.5 *. (Uvm_sys.costs sys).Sim.Cost_model.loan_page));
  let loaned =
    List.init npages (fun i -> loan_one map ~vpn:(vpn + i) ~wire:true)
  in
  (* Register with the auditor's loan census: each outstanding kernel
     loan must account for exactly one loan_count on each of its pages. *)
  { token = Uvm_sys.register_kernel_loan sys loaned; loaned }

let pages t = t.loaned

let finish sys t =
  Uvm_sys.unregister_kernel_loan sys t.token;
  let physmem = Uvm_sys.physmem sys in
  List.iter
    (fun (page : Physmem.Page.t) ->
      Physmem.unwire physmem page;
      Physmem.release_loan physmem page)
    t.loaned

let to_anons map ~vpn ~npages =
  let sys = map.Uvm_map.sys in
  let stats = Uvm_sys.stats sys in
  stats.Sim.Stats.loanouts <- stats.Sim.Stats.loanouts + 1;
  List.init npages (fun i ->
      let vpn = vpn + i in
      let page = resolve_page map ~vpn in
      match anon_owner page with
      | Some anon ->
          (* A->A: share the anon itself; anon-level COW does the rest. *)
          Uvm_anon.ref_ anon;
          (* Both sides must now fault before writing in place. *)
          Pmap.page_protect_all (Uvm_sys.pmap_ctx sys) page
            ~prot:(Pmap.Prot.remove_write Pmap.Prot.rwx);
          anon
      | None ->
          (* O->A: wrap the object's page in a borrowing anon. *)
          let anon = Uvm_anon.alloc_empty sys in
          page.Physmem.Page.loan_count <- page.Physmem.Page.loan_count + 1;
          stats.Sim.Stats.pages_loaned <- stats.Sim.Stats.pages_loaned + 1;
          anon.Uvm_anon.page <- Some page;
          anon)

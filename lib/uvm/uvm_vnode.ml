type uvn = {
  obj : Uvm_object.t;
  vnode : Vfs.Vnode.t;
  mutable has_vref : bool;
}

type Vfs.Vnode.vm_private += Uvn of uvn

let uvn_of_vnode (vn : Vfs.Vnode.t) =
  match vn.vm_private with Uvn u -> Some u | _ -> None

(* Group pages into runs of consecutive object offsets so each run is one
   clustered I/O operation. *)
let runs_of_pages pages =
  let sorted =
    List.sort
      (fun (a : Physmem.Page.t) (b : Physmem.Page.t) ->
        compare a.owner_offset b.owner_offset)
      pages
  in
  let rec go acc current = function
    | [] -> List.rev (match current with [] -> acc | c -> List.rev c :: acc)
    | (p : Physmem.Page.t) :: rest -> (
        match current with
        | [] -> go acc [ p ] rest
        | (last : Physmem.Page.t) :: _ when p.owner_offset = last.owner_offset + 1
          ->
            go acc (p :: current) rest
        | _ -> go (List.rev current :: acc) [ p ] rest)
  in
  go [] [] sorted

let make_ops sys (vnode : Vfs.Vnode.t) (uvn_ref : uvn option ref) obj =
  let physmem = Uvm_sys.physmem sys in
  let vfs = Uvm_sys.vfs sys in
  let swap = Uvm_sys.swapdev sys in
  let read_from_vnode ~center ~status =
    begin
       (* Clustered read: the run of non-resident pages starting at the
          center, capped by the io_cluster tunable. *)
       let max_run = max 1 sys.Uvm_sys.io_cluster in
       let rec run_len k =
         if k >= max_run then k
         else if Uvm_object.find_page obj ~pgno:(center + k) <> None then k
         else run_len (k + 1)
       in
       let n = max 1 (run_len 0) in
       let pages =
         List.init n (fun i ->
             Physmem.alloc physmem ~owner:(Uvm_object.Uobj_page obj)
               ~offset:(center + i) ())
       in
       let span = Uvm_sys.span_start sys ~subsys:"pager" "pagein" in
       let t0 = Sim.Simclock.now (Uvm_sys.clock sys) in
       (match
          Uvm_sys.retry_transient sys (fun () ->
              Vfs.read_pages vfs vnode ~start_page:center ~dsts:pages)
        with
       | Ok () ->
           List.iteri
             (fun i page ->
               Physmem.note_fault_in physmem page
                 ~fill:Sim.Lifecycle.Fill_file;
               Uvm_object.insert_page sys obj ~pgno:(center + i) page;
               Physmem.activate physmem page)
             pages
       | Error _ ->
           (* Read failed for good: return the untouched frames and report
              the typed error — the faulting process gets its SIGBUS, the
              kernel does not panic. *)
           List.iter (fun page -> Physmem.free_page physmem page) pages;
           let stats = Uvm_sys.stats sys in
           stats.Sim.Stats.pageins_failed <- stats.Sim.Stats.pageins_failed + 1;
           status := Error Vmiface.Vmtypes.Pager_error);
       Uvm_sys.span_finish sys span
         ~detail:
           [
             ("pager", "vnode");
             ("result", match !status with Ok () -> "ok" | Error _ -> "error");
           ]
         ();
       if Uvm_sys.tracing sys then begin
         let dur = Sim.Simclock.now (Uvm_sys.clock sys) -. t0 in
         Uvm_sys.trace sys ~subsys:Sim.Hist.Pager ~ts:t0 ~dur
           ~detail:
             [
               ("pager", "vnode");
               ("pages", string_of_int n);
               ("result", match !status with Ok () -> "ok" | Error _ -> "error");
             ]
           "pagein";
         Uvm_sys.observe sys "pagein_us" dur
       end
     end
  in
  let pgo_get ~center ~lo ~hi =
    let status = ref (Ok ()) in
    (if Uvm_object.find_page obj ~pgno:center = None then begin
       (* Swapcache first: a clean copy spilled to the fast swap tier at
          reclaim time serves the re-fault without touching the vnode. *)
       let page =
         Physmem.alloc physmem ~owner:(Uvm_object.Uobj_page obj) ~offset:center
           ()
       in
       if Swap.Swaptier.cache_lookup swap ~vid:vnode.vid ~pgno:center ~dst:page
       then begin
         Physmem.note_fault_in physmem page ~fill:Sim.Lifecycle.Fill_pagein;
         Uvm_object.insert_page sys obj ~pgno:center page;
         Physmem.activate physmem page
       end
       else begin
         Physmem.free_page physmem page;
         read_from_vnode ~center ~status
       end
     end);
    match !status with
    | Error _ as e -> e
    | Ok () ->
        Ok
          (List.filter
             (fun (pgno, _) -> pgno >= lo && pgno < hi)
             (Uvm_object.resident obj))
  in
  let pgo_put pages =
    (* Attempt every run even if one fails — maximise what gets cleaned —
       then report the first failure.  Failed runs stay dirty. *)
    let runs = runs_of_pages pages in
    if pages <> [] then
      Physmem.note_cluster physmem ~pages ~runs:(List.length runs);
    List.fold_left
      (fun acc run ->
        match run with
        | [] -> acc
        | (first : Physmem.Page.t) :: _ ->
            let span = Uvm_sys.span_start sys ~subsys:"pager" "pageout" in
            let t0 = Sim.Simclock.now (Uvm_sys.clock sys) in
            let r =
              Uvm_sys.retry_transient sys (fun () ->
                  Vfs.write_pages vfs vnode ~start_page:first.owner_offset
                    ~srcs:run)
            in
            Uvm_sys.span_finish sys span
              ~detail:
                [
                  ("pager", "vnode");
                  ("result", match r with Ok () -> "ok" | Error _ -> "error");
                ]
              ();
            (if Uvm_sys.tracing sys then begin
               let dur = Sim.Simclock.now (Uvm_sys.clock sys) -. t0 in
               Uvm_sys.trace sys ~subsys:Sim.Hist.Pager ~ts:t0 ~dur
                 ~detail:
                   [
                     ("pager", "vnode");
                     ("pages", string_of_int (List.length run));
                     ("result", match r with Ok () -> "ok" | Error _ -> "error");
                   ]
                 "pageout";
               Uvm_sys.observe sys "pageout_cluster_io_us" dur
             end);
            (match r with
            | Ok () ->
                (* The file just changed under any swapcache copies of
                   these pages: they are stale now. *)
                List.iter
                  (fun (p : Physmem.Page.t) ->
                    Swap.Swaptier.cache_invalidate swap ~vid:vnode.vid
                      ~pgno:p.owner_offset)
                  run;
                acc
            | Error _ -> (
                match acc with
                | Error _ -> acc
                | Ok () -> Error Vmiface.Vmtypes.Pager_error)))
      (Ok ()) runs
  in
  (* Reclaim-time spill: a clean vnode page copied to the fast swap tier
     means the next fault on it is a cheap swap read, not a vnode read. *)
  let pgo_cache_spill (page : Physmem.Page.t) =
    if not page.Physmem.Page.dirty then
      Swap.Swaptier.cache_put swap ~vid:vnode.vid ~pgno:page.owner_offset ~page
  in
  let pgo_reference () = obj.Uvm_object.refs <- obj.Uvm_object.refs + 1 in
  let pgo_detach () =
    assert (obj.Uvm_object.refs > 0);
    obj.Uvm_object.refs <- obj.Uvm_object.refs - 1;
    if obj.Uvm_object.refs = 0 then
      (* Last mapping gone: drop the uvn's vnode reference so the vnode can
         migrate to the free LRU.  The pages stay — this *is* the unified
         cache: data persists exactly as long as the vnode does. *)
      match !uvn_ref with
      | Some uvn when uvn.has_vref ->
          uvn.has_vref <- false;
          Vfs.vrele vfs vnode
      | Some _ | None -> ()
  in
  {
    Uvm_object.pgo_name = "uvn";
    pgo_get;
    pgo_put;
    pgo_cache_spill;
    pgo_reference;
    pgo_detach;
  }

let attach sys (vnode : Vfs.Vnode.t) =
  match vnode.vm_private with
  | Uvn uvn ->
      let obj = uvn.obj in
      obj.Uvm_object.refs <- obj.Uvm_object.refs + 1;
      if not uvn.has_vref then begin
        (* Reviving a cached (unreferenced but in-core) object. *)
        Vfs.vref (Uvm_sys.vfs sys) vnode;
        uvn.has_vref <- true;
        (Uvm_sys.stats sys).Sim.Stats.obj_cache_hits <-
          (Uvm_sys.stats sys).Sim.Stats.obj_cache_hits + 1
      end;
      obj
  | _ ->
      (* First mapping of this vnode: the object is "allocated" as part of
         the vnode itself — no pager structures, no hash table entry
         (paper Figure 4). *)
      let uvn_ref = ref None in
      let obj = Uvm_object.make sys (make_ops sys vnode uvn_ref) in
      let uvn = { obj; vnode; has_vref = true } in
      uvn_ref := Some uvn;
      Vfs.vref (Uvm_sys.vfs sys) vnode;
      vnode.vm_private <- Uvn uvn;
      (Uvm_sys.stats sys).Sim.Stats.obj_cache_misses <-
        (Uvm_sys.stats sys).Sim.Stats.obj_cache_misses + 1;
      obj

let flush _sys obj =
  match Uvm_object.dirty_pages obj with
  | [] -> Ok ()
  | dirty -> obj.Uvm_object.pgops.Uvm_object.pgo_put dirty

let terminate sys (vnode : Vfs.Vnode.t) =
  match vnode.vm_private with
  | Uvn uvn ->
      assert (uvn.obj.Uvm_object.refs = 0);
      (* Best-effort writeback at teardown: an I/O error here cannot be
         reported to anyone, the data is simply lost (as when a real
         kernel's vnode flush hits EIO at reclaim time). *)
      (match flush sys uvn.obj with Ok () | Error _ -> ());
      Uvm_object.free_all_pages sys uvn.obj;
      Swap.Swaptier.cache_invalidate_obj (Uvm_sys.swapdev sys) ~vid:vnode.vid;
      vnode.vm_private <- Vfs.Vnode.No_vm
  | _ -> ()

let install_recycle_hook sys =
  Vfs.register_recycle_hook (Uvm_sys.vfs sys) (fun vnode -> terminate sys vnode)

(** Memory maps (paper §3).

    A map is a sorted doubly-linked list of entries, each recording one
    mapping: an address range, the backing object and/or amap, and the
    mapping attributes.  Addresses are in page units (virtual page
    numbers).

    UVM-specific behaviours implemented here:
    - {!insert}: the single-step [uvm_map] that establishes a mapping with
      all its attributes under one lock acquisition — no two-step
      insert-then-protect, no read-write security window;
    - {!unmap}: the two-phase unmap — entries are unlinked under the map
      lock, but object/amap references are dropped only after the lock is
      released (reference drops can trigger long I/O);
    - entry merging for object-less kernel allocations, and wiring that
      does not fragment entries unless the map really is the only place to
      record it (paper §3.2);
    - lock-hold accounting, so the two-phase-unmap claim is measurable. *)

type entry = {
  mutable spage : int;  (** first virtual page *)
  mutable epage : int;  (** one past the last virtual page *)
  mutable obj : Uvm_object.t option;  (** backing object layer *)
  mutable objoff : int;  (** object page offset corresponding to [spage] *)
  mutable amap : Uvm_amap.t option;  (** anonymous layer *)
  mutable amapoff : int;  (** amap slot corresponding to [spage] *)
  mutable prot : Pmap.Prot.t;
  mutable maxprot : Pmap.Prot.t;
  mutable inh : Vmiface.Vmtypes.inherit_mode;
  mutable advice : Vmiface.Vmtypes.advice;
  mutable wired : int;  (** user wire count (mlock) *)
  mutable cow : bool;  (** copy-on-write (private) mapping *)
  mutable needs_copy : bool;  (** amap must be copied before first write *)
  mutable prev : entry option;
  mutable next : entry option;
}

type t = {
  sys : Uvm_sys.t;
  pmap : Pmap.t;
  lo : int;
  hi : int;
  kernel : bool;
  mutable first : entry option;
  mutable nentries : int;
  mutable hint : entry option;
  mutable locked_since : float option;
  mutable lockh : Sim.Lockstat.lock option;
      (** lock-observatory handle, registered on first {!lock} *)
}

val create : Uvm_sys.t -> pmap:Pmap.t -> lo:int -> hi:int -> kernel:bool -> t

val lock : t -> unit
(** Acquire the map lock (charges lock cost, starts hold-time clock). *)

val unlock : t -> unit

val is_locked : t -> bool
(** True while some operation holds the map lock.  The OOM policy checks
    this before tearing a victim down: teardown re-enters the kernel
    map, so it must defer when the failing allocation already holds it. *)

val entry_npages : entry -> int
val entry_count : t -> int
val iter_entries : (entry -> unit) -> t -> unit
val entries : t -> entry list

val lookup : t -> vpn:int -> entry option
(** Find the entry mapping [vpn], charging per examined entry; maintains a
    lookup hint like the real implementation. *)

val find_space : t -> npages:int -> int
(** First-fit free virtual range of [npages] pages.
    @raise Not_found if the address space is exhausted. *)

val range_free : t -> spage:int -> npages:int -> bool

val insert :
  t ->
  spage:int ->
  npages:int ->
  obj:Uvm_object.t option ->
  objoff:int ->
  prot:Pmap.Prot.t ->
  maxprot:Pmap.Prot.t ->
  inh:Vmiface.Vmtypes.inherit_mode ->
  advice:Vmiface.Vmtypes.advice ->
  cow:bool ->
  needs_copy:bool ->
  merge:bool ->
  entry
(** The single-step mapping function.  The caller passes a reference to
    [obj] (already counted); on a successful merge the reference would be
    redundant, but merging is only done for object-less entries.
    @raise Invalid_argument if the range is not free or out of bounds. *)

val insert_entry_raw : t -> entry -> unit
(** Link a fully-built entry (map-entry passing / fork import).  The range
    must be free. *)

val unlink : t -> entry -> unit
(** Remove an entry from the map's list without dropping its references
    (donate-style map-entry passing; unmap uses this internally). *)

val clip_range : t -> spage:int -> epage:int -> unit
(** Split entries so that no entry straddles [spage] or [epage]. *)

val entries_in_range : t -> spage:int -> epage:int -> entry list

val unmap : t -> spage:int -> npages:int -> unit
(** The two-phase unmap: unlink + pmap-remove under the lock, reference
    drops after unlock. *)

val protect : t -> spage:int -> npages:int -> prot:Pmap.Prot.t -> unit
(** Change protection; restricts existing translations, never widens them
    (widening happens through faults). *)

val set_inherit :
  t -> spage:int -> npages:int -> Vmiface.Vmtypes.inherit_mode -> unit

val set_advice : t -> spage:int -> npages:int -> Vmiface.Vmtypes.advice -> unit

val mark_wired : t -> spage:int -> npages:int -> unit
(** Record a user wiring (mlock) in the map: clips and increments entry
    wire counts.  Faulting the pages in and wiring the frames is done by
    the caller (the facade), since it needs the fault routine. *)

val mark_unwired : t -> spage:int -> npages:int -> unit

val destroy : t -> unit
(** Unmap everything (process exit). *)

val check_invariants : t -> (unit, string) result
(** Sorted, non-overlapping, in-bounds entries; amap ranges within their
    amaps; entry count consistent. *)

val pp : Format.formatter -> t -> unit

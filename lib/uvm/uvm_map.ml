module Vmtypes = Vmiface.Vmtypes

type entry = {
  mutable spage : int;
  mutable epage : int;
  mutable obj : Uvm_object.t option;
  mutable objoff : int;
  mutable amap : Uvm_amap.t option;
  mutable amapoff : int;
  mutable prot : Pmap.Prot.t;
  mutable maxprot : Pmap.Prot.t;
  mutable inh : Vmtypes.inherit_mode;
  mutable advice : Vmtypes.advice;
  mutable wired : int;
  mutable cow : bool;
  mutable needs_copy : bool;
  mutable prev : entry option;
  mutable next : entry option;
}

type t = {
  sys : Uvm_sys.t;
  pmap : Pmap.t;
  lo : int;
  hi : int;
  kernel : bool;
  mutable first : entry option;
  mutable nentries : int;
  mutable hint : entry option;
  mutable locked_since : float option;
  mutable lockh : Sim.Lockstat.lock option;
}

let create sys ~pmap ~lo ~hi ~kernel =
  if lo < 0 || hi <= lo then invalid_arg "Uvm_map.create: bad bounds";
  {
    sys;
    pmap;
    lo;
    hi;
    kernel;
    first = None;
    nentries = 0;
    hint = None;
    locked_since = None;
    lockh = None;
  }

let stats t = Uvm_sys.stats t.sys
let costs t = Uvm_sys.costs t.sys
let charge t us = Uvm_sys.charge t.sys us
let lifecycle t = Physmem.lifecycle (Uvm_sys.physmem t.sys)

(* The map's entry in the lock observatory, registered on first lock.
   The registry renders the lock:map span and the legacy map_lock
   event/latency series; the cost charge and the Stats counters stay
   here because they predate tracing and are always on. *)
let lock_handle t =
  match t.lockh with
  | Some l -> l
  | None ->
      let l =
        Sim.Lockstat.register (Uvm_sys.locks t.sys) ~cls:"map"
          (if t.kernel then "kernel_map" else "user_map")
      in
      t.lockh <- Some l;
      l

let lock t =
  assert (t.locked_since = None);
  charge t (costs t).Sim.Cost_model.lock_acquire;
  (stats t).Sim.Stats.lock_acquisitions <-
    (stats t).Sim.Stats.lock_acquisitions + 1;
  Sim.Lockstat.acquire (Uvm_sys.locks t.sys) (lock_handle t)
    ~mode:Sim.Lockstat.Write;
  t.locked_since <- Some (Sim.Simclock.now (Uvm_sys.clock t.sys))

let is_locked t = t.locked_since <> None

let unlock t =
  match t.locked_since with
  | None -> invalid_arg "Uvm_map.unlock: not locked"
  | Some since ->
      let held = Sim.Simclock.now (Uvm_sys.clock t.sys) -. since in
      (stats t).Sim.Stats.map_lock_held_us <-
        (stats t).Sim.Stats.map_lock_held_us +. held;
      t.locked_since <- None;
      Sim.Lockstat.release (Uvm_sys.locks t.sys) (lock_handle t)

let entry_npages e = e.epage - e.spage
let entry_count t = t.nentries

let iter_entries f t =
  let rec go = function
    | None -> ()
    | Some e ->
        let nxt = e.next in
        f e;
        go nxt
  in
  go t.first

let entries t =
  let acc = ref [] in
  iter_entries (fun e -> acc := e :: !acc) t;
  List.rev !acc

let alloc_entry t ~spage ~epage ~obj ~objoff ~amap ~amapoff ~prot ~maxprot ~inh
    ~advice ~wired ~cow ~needs_copy =
  (stats t).Sim.Stats.map_entries_allocated <-
    (stats t).Sim.Stats.map_entries_allocated + 1;
  Sim.Lifecycle.note_entry_alloc (lifecycle t);
  charge t (costs t).Sim.Cost_model.struct_alloc;
  {
    spage;
    epage;
    obj;
    objoff;
    amap;
    amapoff;
    prot;
    maxprot;
    inh;
    advice;
    wired;
    cow;
    needs_copy;
    prev = None;
    next = None;
  }

let free_entry t (_e : entry) =
  (stats t).Sim.Stats.map_entries_freed <-
    (stats t).Sim.Stats.map_entries_freed + 1;
  Sim.Lifecycle.note_entry_free (lifecycle t)

(* Link [e] after [prev] (or at the head when [prev] is None). *)
let link_after t prev e =
  (match prev with
  | None ->
      e.next <- t.first;
      e.prev <- None;
      (match t.first with Some f -> f.prev <- Some e | None -> ());
      t.first <- Some e
  | Some p ->
      e.next <- p.next;
      e.prev <- Some p;
      (match p.next with Some n -> n.prev <- Some e | None -> ());
      p.next <- Some e);
  t.nentries <- t.nentries + 1

let unlink t e =
  (match e.prev with
  | Some p -> p.next <- e.next
  | None -> t.first <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> ());
  e.prev <- None;
  e.next <- None;
  (match t.hint with Some h when h == e -> t.hint <- None | _ -> ());
  t.nentries <- t.nentries - 1

(* Walk from an entry (or the head), charging per entry examined, to find
   the entry containing [vpn].  Also returns the last entry with
   [spage <= vpn] so callers can use it as an insertion point. *)
let search t ~from ~vpn =
  let search_cost = (costs t).Sim.Cost_model.map_entry_search in
  let rec go prev = function
    | None -> (prev, None)
    | Some e ->
        charge t search_cost;
        if vpn < e.spage then (prev, None)
        else if vpn < e.epage then (prev, Some e)
        else go (Some e) e.next
  in
  go None from

let lookup t ~vpn =
  let start =
    match t.hint with
    | Some h when h.spage <= vpn && h.prev <> None -> Some h
    | _ -> t.first
  in
  (* If the hint overshoots, fall back to a full scan from the head. *)
  let start = match start with Some h when h.spage > vpn -> t.first | s -> s in
  let _, found = search t ~from:start ~vpn in
  (match found with Some e -> t.hint <- Some e | None -> ());
  found

let range_free t ~spage ~npages =
  let epage = spage + npages in
  spage >= t.lo && epage <= t.hi
  && not
       (List.exists
          (fun e -> e.spage < epage && spage < e.epage)
          (entries t))

let find_space t ~npages =
  let rec go pos = function
    | None -> if pos + npages <= t.hi then pos else raise Not_found
    | Some e ->
        if e.spage - pos >= npages then pos
        else go (max pos e.epage) e.next
  in
  go t.lo t.first

(* Can [e] absorb an adjacent allocation with these attributes?  Only
   object-less, amap-less entries merge: they carry no offsets that could
   go out of sync (this is the kernel-map merging that keeps UVM's kernel
   entry count low, §3.2). *)
let can_merge e ~prot ~maxprot ~inh ~advice ~cow ~needs_copy =
  e.obj = None
  && (match e.amap with
     | None -> true
     | Some am ->
         (* The entry's slice must be extendable in place (amap_extend). *)
         am.Uvm_amap.refs = 1 && (not am.Uvm_amap.shared)
         && am.Uvm_amap.ppref = None
         && e.amapoff + entry_npages e = am.Uvm_amap.nslots)
  && Pmap.Prot.equal e.prot prot
  && Pmap.Prot.equal e.maxprot maxprot
  && e.inh = inh && e.advice = advice && e.wired = 0 && e.cow = cow
  && e.needs_copy = needs_copy

let insert t ~spage ~npages ~obj ~objoff ~prot ~maxprot ~inh ~advice ~cow
    ~needs_copy ~merge =
  if npages < 1 then invalid_arg "Uvm_map.insert: npages must be >= 1";
  lock t;
  let epage = spage + npages in
  if spage < t.lo || epage > t.hi then begin
    unlock t;
    invalid_arg "Uvm_map.insert: out of map bounds"
  end;
  (* Find the insertion point and check for overlap in one walk. *)
  let prev, overlapping = search t ~from:t.first ~vpn:spage in
  let overlaps =
    overlapping <> None
    ||
    match prev with
    | Some p when p.epage > spage -> true
    | _ -> (
        let nxt = match prev with Some p -> p.next | None -> t.first in
        match nxt with Some n -> n.spage < epage | None -> false)
  in
  if overlaps then begin
    unlock t;
    invalid_arg "Uvm_map.insert: range not free"
  end;
  charge t (costs t).Sim.Cost_model.map_insert;
  let merged =
    match (merge, obj, prev) with
    | true, None, Some p
      when p.epage = spage
           && can_merge p ~prot ~maxprot ~inh ~advice ~cow ~needs_copy ->
        (match p.amap with
        | Some am -> Uvm_amap.extend am ~by:npages
        | None -> ());
        p.epage <- epage;
        Some p
    | _ -> None
  in
  let e =
    match merged with
    | Some p -> p
    | None ->
        let e =
          alloc_entry t ~spage ~epage ~obj ~objoff ~amap:None ~amapoff:0 ~prot
            ~maxprot ~inh ~advice ~wired:0 ~cow ~needs_copy
        in
        link_after t prev e;
        e
  in
  t.hint <- Some e;
  unlock t;
  e

let insert_entry_raw t e =
  lock t;
  if not (range_free t ~spage:e.spage ~npages:(entry_npages e)) then begin
    unlock t;
    invalid_arg "Uvm_map.insert_entry_raw: range not free"
  end;
  charge t (costs t).Sim.Cost_model.map_insert;
  let prev, _ = search t ~from:t.first ~vpn:e.spage in
  link_after t prev e;
  unlock t

(* Split [e] at [vpn] (strictly inside it), producing the tail entry. *)
let clip t e vpn =
  assert (vpn > e.spage && vpn < e.epage);
  let delta = vpn - e.spage in
  let tail =
    alloc_entry t ~spage:vpn ~epage:e.epage ~obj:e.obj
      ~objoff:(e.objoff + delta) ~amap:e.amap ~amapoff:(e.amapoff + delta)
      ~prot:e.prot ~maxprot:e.maxprot ~inh:e.inh ~advice:e.advice
      ~wired:e.wired ~cow:e.cow ~needs_copy:e.needs_copy
  in
  e.epage <- vpn;
  (match e.obj with
  | Some o -> o.Uvm_object.pgops.Uvm_object.pgo_reference ()
  | None -> ());
  (match e.amap with Some am -> Uvm_amap.splitref am | None -> ());
  link_after t (Some e) tail

let clip_range t ~spage ~epage =
  iter_entries
    (fun e ->
      if e.spage < spage && spage < e.epage then clip t e spage)
    t;
  iter_entries
    (fun e ->
      if e.spage < epage && epage < e.epage then clip t e epage)
    t

let entries_in_range t ~spage ~epage =
  List.filter (fun e -> e.spage >= spage && e.epage <= epage) (entries t)

let overlapping_entries t ~spage ~epage =
  List.filter (fun e -> e.spage < epage && spage < e.epage) (entries t)

(* Drop an unlinked entry's references to its backing structures.  This is
   unmap phase 2 and runs with the map unlocked. *)
let drop_entry_refs t e =
  (match e.amap with
  | Some am ->
      Uvm_amap.unref_range t.sys am ~slotoff:e.amapoff ~len:(entry_npages e)
  | None -> ());
  (match e.obj with
  | Some o -> o.Uvm_object.pgops.Uvm_object.pgo_detach ()
  | None -> ());
  free_entry t e

let unmap t ~spage ~npages =
  let epage = spage + npages in
  (* Phase 1: under the lock, unlink entries and invalidate translations. *)
  lock t;
  clip_range t ~spage ~epage;
  let doomed = entries_in_range t ~spage ~epage in
  List.iter
    (fun e ->
      charge t (costs t).Sim.Cost_model.map_remove;
      unlink t e)
    doomed;
  Pmap.remove_range t.pmap ~lo:spage ~hi:epage;
  unlock t;
  (* Phase 2: reference drops (possibly long I/O) without the lock. *)
  List.iter (drop_entry_refs t) doomed

let apply_in_range t ~spage ~npages f =
  let epage = spage + npages in
  lock t;
  clip_range t ~spage ~epage;
  List.iter f (entries_in_range t ~spage ~epage);
  unlock t

let protect t ~spage ~npages ~prot =
  apply_in_range t ~spage ~npages (fun e ->
      if not (Pmap.Prot.subsumes e.maxprot prot) then
        invalid_arg "Uvm_map.protect: exceeds maxprot";
      e.prot <- prot;
      Pmap.restrict_range t.pmap ~lo:e.spage ~hi:e.epage ~prot)

let set_inherit t ~spage ~npages inh =
  apply_in_range t ~spage ~npages (fun e -> e.inh <- inh)

let set_advice t ~spage ~npages advice =
  apply_in_range t ~spage ~npages (fun e -> e.advice <- advice)

let mark_wired t ~spage ~npages =
  apply_in_range t ~spage ~npages (fun e -> e.wired <- e.wired + 1)

let mark_unwired t ~spage ~npages =
  apply_in_range t ~spage ~npages (fun e ->
      if e.wired <= 0 then invalid_arg "Uvm_map.mark_unwired: not wired";
      e.wired <- e.wired - 1)

let destroy t =
  match overlapping_entries t ~spage:t.lo ~epage:t.hi with
  | [] -> ()
  | _ -> unmap t ~spage:t.lo ~npages:(t.hi - t.lo)

let check_invariants t =
  let rec go count pos = function
    | None ->
        if count <> t.nentries then
          Error (Printf.sprintf "nentries=%d but %d linked" t.nentries count)
        else Ok ()
    | Some e ->
        if e.spage < pos then Error "entries overlap or unsorted"
        else if e.spage >= e.epage then Error "empty entry"
        else if e.spage < t.lo || e.epage > t.hi then Error "entry out of bounds"
        else begin
          match e.amap with
          | Some am
            when e.amapoff < 0
                 || e.amapoff + entry_npages e > am.Uvm_amap.nslots ->
              Error "amap range exceeds amap"
          | _ -> go (count + 1) e.epage e.next
        end
  in
  go 0 t.lo t.first

let pp ppf t =
  Format.fprintf ppf "map[%d,%d) %d entries@." t.lo t.hi t.nentries;
  iter_entries
    (fun e ->
      Format.fprintf ppf "  [%6d,%6d) %a%s%s obj=%s amap=%s wired=%d@."
        e.spage e.epage Pmap.Prot.pp e.prot
        (if e.cow then " cow" else "")
        (if e.needs_copy then " nc" else "")
        (match e.obj with Some o -> string_of_int o.Uvm_object.id | None -> "-")
        (match e.amap with
        | Some a -> string_of_int a.Uvm_amap.id
        | None -> "-")
        e.wired)
    t

(** The machine-dependent layer: a software MMU.

    One {!t} exists per address space (process or kernel) and holds the
    virtual-page-number -> frame translations with their protections, exactly
    the role of a pmap module in BSD (paper §2).  The paper's point that UVM
    *reuses* the BSD/Mach pmap layer is preserved here: both the [uvm] and
    [bsdvm] libraries drive this same module.

    A per-machine {!ctx} additionally maintains pv entries (reverse
    mappings from physical page to the pmaps mapping it), which the VM layers
    need to write-protect or unmap a page everywhere (COW fork, pageout,
    loanout). *)

module Prot = Prot

type ctx
(** Per-machine pmap context (pv table + cost accounting). *)

type t
(** One address space's MMU state. *)

type pte = {
  mutable page : Physmem.Page.t;
  mutable prot : Prot.t;
  mutable wired : bool;
}

val create_ctx :
  ?lifecycle:Sim.Lifecycle.t ->
  clock:Sim.Simclock.t ->
  costs:Sim.Cost_model.t ->
  stats:Sim.Stats.t ->
  unit ->
  ctx
(** [lifecycle] is the ledger-analytics sink shared with {!Physmem}
    (fault-ahead premaps resolve on {!mark_access}/{!remove_one}); a
    private one is created when omitted. *)

val create : ctx -> t
(** A fresh, empty address-space pmap. *)

val destroy : t -> unit
(** Drop every translation (process exit). *)

val enter :
  t -> vpn:int -> page:Physmem.Page.t -> prot:Prot.t -> wired:bool -> unit
(** Install (or replace) the translation for virtual page [vpn]. *)

val remove_one : t -> vpn:int -> unit
(** Remove the translation for [vpn] if present. *)

val remove_range : t -> lo:int -> hi:int -> unit
(** Remove all translations with [lo <= vpn < hi]. *)

val protect_range : t -> lo:int -> hi:int -> prot:Prot.t -> unit
(** Change protection of all translations in [lo, hi).  Translations whose
    protection would become {!Prot.none} are removed. *)

val restrict_range : t -> lo:int -> hi:int -> prot:Prot.t -> unit
(** Intersect the protection of all translations in [lo, hi) with [prot]
    (an mprotect that must not grant rights the fault path hasn't
    validated, e.g. re-enabling write on a COW page). *)

val lookup : t -> vpn:int -> pte option
(** Query a translation without charging any cost (the fault path charges
    its own costs). *)

val resident_count : t -> int
(** Number of valid translations (the process' resident set size). *)

val translations : t -> (int * pte) list
(** Every [(vpn, pte)] translation, sorted by vpn.  Charges no cost: this
    is the invariant auditor's read-only walk, not a simulated MMU op. *)

val page_remove_all : ctx -> Physmem.Page.t -> unit
(** Remove every translation of a physical page, in every pmap
    (pageout path). *)

val page_remove_unwired : ctx -> Physmem.Page.t -> unit
(** Remove every {e unwired} translation of a physical page.  The COW
    shootdown paths use this instead of {!page_remove_all}: a wired
    translation records which page holds the wire count, so dropping it
    would strand the count until teardown trips over a still-wired frame.
    A wired translation left behind is either still valid (its own map
    entry resolves the same page) or an incoherence the invariant auditor
    reports. *)

val page_protect_all : ctx -> Physmem.Page.t -> prot:Prot.t -> unit
(** Restrict every translation of a physical page (loanout write-protect). *)

val mappings_of_page : ctx -> Physmem.Page.t -> (t * int) list
(** The pv list: every (pmap, vpn) currently mapping the page. *)

val is_referenced : Physmem.Page.t -> bool
val clear_reference : ctx -> Physmem.Page.t -> unit

val mark_access : t -> vpn:int -> write:bool -> unit
(** Software emulation of the MMU reference/modified bits: called on each
    simulated memory access that hits a valid translation. *)

module Prot = Prot

type pte = {
  mutable page : Physmem.Page.t;
  mutable prot : Prot.t;
  mutable wired : bool;
}

type ctx = {
  clock : Sim.Simclock.t;
  costs : Sim.Cost_model.t;
  stats : Sim.Stats.t;
  lifecycle : Sim.Lifecycle.t;
  pv : (int, (t * int) list ref) Hashtbl.t;
  mutable next_id : int;
}

and t = { ctx : ctx; id : int; ptes : (int, pte) Hashtbl.t }

let create_ctx ?lifecycle ~clock ~costs ~stats () =
  let lifecycle =
    match lifecycle with Some l -> l | None -> Sim.Lifecycle.create ()
  in
  { clock; costs; stats; lifecycle; pv = Hashtbl.create 1024; next_id = 0 }

let create ctx =
  let id = ctx.next_id in
  ctx.next_id <- id + 1;
  { ctx; id; ptes = Hashtbl.create 64 }

let charge t cost =
  Sim.Simclock.advance t.ctx.clock cost

let pv_list ctx (page : Physmem.Page.t) =
  match Hashtbl.find_opt ctx.pv page.id with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace ctx.pv page.id l;
      l

let pv_add ctx page pmap vpn =
  let l = pv_list ctx page in
  l := (pmap, vpn) :: !l

let pv_remove ctx (page : Physmem.Page.t) pmap vpn =
  match Hashtbl.find_opt ctx.pv page.id with
  | None -> ()
  | Some l ->
      l := List.filter (fun (m, v) -> not (m == pmap && v = vpn)) !l;
      if !l = [] then Hashtbl.remove ctx.pv page.id

let remove_one t ~vpn =
  match Hashtbl.find_opt t.ptes vpn with
  | None -> ()
  | Some pte ->
      (* Dropping a translation to a frame whose fault-ahead premap was
         never touched resolves the premap as wasted. *)
      Physmem.note_unmapped ~stats:t.ctx.stats ~lifecycle:t.ctx.lifecycle
        pte.page;
      pv_remove t.ctx pte.page t vpn;
      Hashtbl.remove t.ptes vpn;
      charge t t.ctx.costs.Sim.Cost_model.pmap_remove;
      t.ctx.stats.Sim.Stats.pmap_removes <-
        t.ctx.stats.Sim.Stats.pmap_removes + 1

let enter t ~vpn ~page ~prot ~wired =
  (match Hashtbl.find_opt t.ptes vpn with
  | Some old when not (old.page == page) -> remove_one t ~vpn
  | Some _ | None -> ());
  (match Hashtbl.find_opt t.ptes vpn with
  | Some pte ->
      pte.prot <- prot;
      pte.wired <- wired
  | None ->
      Hashtbl.replace t.ptes vpn { page; prot; wired };
      pv_add t.ctx page t vpn);
  charge t t.ctx.costs.Sim.Cost_model.pmap_enter;
  t.ctx.stats.Sim.Stats.pmap_enters <- t.ctx.stats.Sim.Stats.pmap_enters + 1

let remove_range t ~lo ~hi =
  (* Collect first: removing mutates the table we would be iterating. *)
  let doomed =
    Hashtbl.fold (fun vpn _ acc -> if vpn >= lo && vpn < hi then vpn :: acc else acc)
      t.ptes []
  in
  List.iter (fun vpn -> remove_one t ~vpn) doomed

let protect_range t ~lo ~hi ~prot =
  if Prot.equal prot Prot.none then remove_range t ~lo ~hi
  else
    Hashtbl.iter
      (fun vpn pte ->
        if vpn >= lo && vpn < hi then begin
          pte.prot <- prot;
          charge t t.ctx.costs.Sim.Cost_model.pmap_protect;
          t.ctx.stats.Sim.Stats.pmap_protects <-
            t.ctx.stats.Sim.Stats.pmap_protects + 1
        end)
      t.ptes

let restrict_range t ~lo ~hi ~prot =
  Hashtbl.iter
    (fun vpn pte ->
      if vpn >= lo && vpn < hi then begin
        pte.prot <- Prot.intersect pte.prot prot;
        charge t t.ctx.costs.Sim.Cost_model.pmap_protect;
        t.ctx.stats.Sim.Stats.pmap_protects <-
          t.ctx.stats.Sim.Stats.pmap_protects + 1
      end)
    t.ptes

let lookup t ~vpn = Hashtbl.find_opt t.ptes vpn
let resident_count t = Hashtbl.length t.ptes

let translations t =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun vpn pte acc -> (vpn, pte) :: acc) t.ptes [])

let destroy t =
  let all = Hashtbl.fold (fun vpn _ acc -> vpn :: acc) t.ptes [] in
  List.iter (fun vpn -> remove_one t ~vpn) all

let mappings_of_page ctx (page : Physmem.Page.t) =
  match Hashtbl.find_opt ctx.pv page.id with Some l -> !l | None -> []

let page_remove_all ctx page =
  List.iter (fun (pmap, vpn) -> remove_one pmap ~vpn) (mappings_of_page ctx page)

let page_remove_unwired ctx page =
  List.iter
    (fun (pmap, vpn) ->
      match Hashtbl.find_opt pmap.ptes vpn with
      | Some pte when not pte.wired -> remove_one pmap ~vpn
      | Some _ | None -> ())
    (mappings_of_page ctx page)

let page_protect_all ctx page ~prot =
  List.iter
    (fun (pmap, vpn) ->
      match Hashtbl.find_opt pmap.ptes vpn with
      | None -> ()
      | Some pte ->
          pte.prot <- Prot.intersect pte.prot prot;
          Sim.Simclock.advance ctx.clock ctx.costs.Sim.Cost_model.pmap_protect;
          ctx.stats.Sim.Stats.pmap_protects <-
            ctx.stats.Sim.Stats.pmap_protects + 1)
    (mappings_of_page ctx page)

let is_referenced (page : Physmem.Page.t) = page.referenced
let clear_reference _ctx (page : Physmem.Page.t) = page.referenced <- false

let mark_access t ~vpn ~write =
  match Hashtbl.find_opt t.ptes vpn with
  | None -> ()
  | Some pte ->
      (* A touch through an existing translation: if the frame was
         premapped by fault-ahead this is precisely a fault avoided. *)
      Physmem.note_soft_use ~stats:t.ctx.stats ~lifecycle:t.ctx.lifecycle
        pte.page;
      pte.page.Physmem.Page.referenced <- true;
      if write then pte.page.Physmem.Page.dirty <- true

(** The simulated machine: every hardware/kernel substrate bundled together.

    Both VM systems are booted on an identical machine (same clock, cost
    model, RAM, swap, disk, filesystem), mirroring the paper's methodology
    of measuring BSD VM and UVM on the same 333 MHz Pentium-II. *)

type config = {
  ram_pages : int;  (** physical memory size in pages *)
  swap_pages : int;  (** swap partition size in pages *)
  swap_tiers : Swap.Swaptier.spec list option;
      (** explicit swap device tiers; [None] boots one default-priority
          device of [swap_pages] slots (the classic single-device setup) *)
  page_size : int;  (** bytes per page *)
  max_vnodes : int;  (** in-core vnode limit *)
  costs : Sim.Cost_model.t;
  seed : int;  (** workload RNG seed *)
  fault_plan : (unit -> Sim.Fault_plan.t) option;
      (** I/O fault plan factory, invoked once per boot and installed on
          both the swap and filesystem disks *)
  trace_buf : int option;
      (** when set, boot with event tracing enabled, each subsystem ring
          holding this many events *)
  ncpus : int;
      (** virtual CPUs (default 1): sizes physmem's per-CPU free-page
          caches and adds per-CPU vmstat columns; the interleaving itself
          is driven by {!Sim.Smp} (DESIGN.md §16) *)
}

val default_config : config
(** 32 MB of RAM and 128 MB of swap with 4 KB pages — the machine used for
    the paper's Figure 5. *)

val set_default_fault_plan : (unit -> Sim.Fault_plan.t) option -> unit
(** Process-wide fallback used by [boot] when the config carries no plan;
    set from CLI flags so existing experiments run under faults without
    config plumbing.  A factory, so every boot gets a fresh
    identically-seeded plan (fair UVM-vs-BSD comparisons). *)

val set_default_trace : int option -> unit
(** Process-wide tracing fallback, same contract as
    {!set_default_fault_plan}: when a config carries no [trace_buf],
    [boot] uses this ring capacity (and [None] disables tracing). *)

val traced : unit -> Sim.Trace_export.source list
(** Observability state (label, event history, counters, latency
    histograms) of every machine booted with tracing on since the last
    {!reset_traced}, in boot order.  Sources are lightweight: holding
    them does not keep the machines' simulated memory alive. *)

val reset_traced : unit -> unit

val config_mb : ?ram_mb:int -> ?swap_mb:int -> unit -> config
(** Convenience: sizes in megabytes on top of {!default_config}. *)

val tiered : fast_pages:int -> slow_pages:int -> config -> config
(** Two-tier swap on top of [config]: a fast/small NVMe-like device
    ("fast", priority 0, 100x disk speed) in front of a slow/large
    disk-like one ("slow", priority 1, the machine's cost model). *)

type t = {
  config : config;
  clock : Sim.Simclock.t;
  costs : Sim.Cost_model.t;
  stats : Sim.Stats.t;
  rng : Sim.Rng.t;
  physmem : Physmem.t;
  pmap_ctx : Pmap.ctx;
  swap : Swap.Swaptier.t;
  vfs : Vfs.t;
  hist : Sim.Hist.t;  (** per-machine event history (disabled by default) *)
  latencies : Sim.Histogram.set;  (** per-machine latency histograms *)
  lifecycle : Sim.Lifecycle.t;
      (** ledger-derived efficacy analytics, shared by physmem and pmap *)
  spans : Sim.Span.t;
      (** causal span collector (enabled together with [hist]) *)
  series : Sim.Timeseries.t;
      (** vmstat-style sampler, clock-driven while tracing is on *)
  locks : Sim.Lockstat.t;
      (** the lock observatory registry (recording while tracing is on;
          its span sink is live whenever [spans] is) *)
  trace_source : Sim.Trace_export.source;
  mutable runnable_probe : (int -> int) option;
      (** per-CPU runnable count read by the vmstat sampler's
          [cpuK:runnable] columns; installed via {!set_runnable_probe} *)
}

val boot : ?config:config -> unit -> t

val set_runnable_probe : t -> (int -> int) option -> unit
(** Feed the sampler a per-CPU runnable count (the SMP scheduler's
    {!Sim.Smp.runnable}); [None] reads as zero. *)

val page_size : t -> int
val now : t -> float
val charge : t -> float -> unit
(** Advance the simulated clock. *)

val set_label : t -> string -> unit
(** Name this machine in trace exports ("UVM", "BSD VM"). *)

(** Types shared by both virtual memory systems (UVM and the BSD VM
    baseline) and by the OS / workload layers above them. *)

(** Mapping sharing mode, as in [mmap(2)]. *)
type share = Private | Shared

(** What backs a mapping. *)
type source =
  | File of Vfs.Vnode.t * int  (** vnode and starting page offset within it *)
  | Zero  (** zero-fill (anonymous) memory *)

(** Per-mapping inheritance across [fork], settable with [minherit(2)]
    (paper §5.4). *)
type inherit_mode = Inh_none | Inh_shared | Inh_copy

(** Memory usage advice, settable with [madvise(2)]; controls UVM's
    fault-ahead window (paper §5.4). *)
type advice = Adv_normal | Adv_random | Adv_sequential

(** The provenance ledger (below the VM interface) keys fault-ahead
    efficacy by its own mirror of [advice]. *)
let lifecycle_madv = function
  | Adv_normal -> Sim.Lifecycle.Madv_normal
  | Adv_random -> Sim.Lifecycle.Madv_random
  | Adv_sequential -> Sim.Lifecycle.Madv_sequential

(** Kind of memory access. *)
type access = Read | Write

(** Memory footprint of one address space, as seen by the overload policy
    (OOM badness scoring and whole-process swapout). *)
type usage = {
  u_resident : int;  (** resident pages (pmap translations) *)
  u_swap : int;  (** swap slots reachable from this space's mappings *)
  u_wired : int;  (** wired translations — discounted by the badness score *)
}

(** Why a fault could not be resolved. *)
type fault_error =
  | No_entry  (** nothing mapped at the faulting address *)
  | Prot_denied  (** mapping exists but forbids this access *)
  | Out_of_memory
  | Pager_error
      (** the backing store could not supply or accept the page — an I/O
          error survived every retry (the kernel's SIGBUS-on-EIO case) *)
  | Out_of_swap  (** no swap slot could be allocated for a pageout *)

exception Segv of { vpn : int; error : fault_error }
(** Raised by the access paths when a fault cannot be resolved — the
    simulated equivalent of delivering SIGSEGV. *)

let string_of_fault_error = function
  | No_entry -> "no entry"
  | Prot_denied -> "protection denied"
  | Out_of_memory -> "out of memory"
  | Pager_error -> "pager error"
  | Out_of_swap -> "out of swap"

let () =
  Printexc.register_printer (function
    | Segv { vpn; error } ->
        Some
          (Printf.sprintf "Segv(vpn=%d, %s)" vpn (string_of_fault_error error))
    | _ -> None)

(** The common signature both virtual memory systems implement.

    Workload generators ([oslayer]) and the experiment harness
    ([experiments]) are functors over [VM_SYS], so every table and figure of
    the paper runs the *same* workload code against UVM and the BSD VM
    baseline — only the VM system under test changes. *)

open Vmtypes

module type VM_SYS = sig
  val name : string
  (** "UVM" or "BSD VM". *)

  type sys
  (** A booted kernel: machine substrates plus this VM system's global
      state (object cache, pagedaemon configuration, kernel map...). *)

  type vmspace
  (** One virtual address space (a process, or the kernel). *)

  val boot : ?config:Machine.config -> unit -> sys
  val machine : sys -> Machine.t
  val kernel_vmspace : sys -> vmspace

  (* -- address spaces ---------------------------------------------- *)

  val new_vmspace : sys -> vmspace
  val fork : sys -> vmspace -> vmspace
  (** Duplicate an address space honouring each mapping's inheritance
      (the paper's §5 copy-on-write machinery). *)

  val destroy_vmspace : sys -> vmspace -> unit
  (** Tear down all mappings and the pmap (process exit). *)

  val map_entry_count : vmspace -> int
  (** Live map entries — the quantity Table 1 compares. *)

  val resident_pages : vmspace -> int

  val vmspace_usage : sys -> vmspace -> usage
  (** Memory footprint for the overload policy: resident and wired
      translation counts plus the swap slots reachable from this space's
      mappings (shared backing may be counted toward every sharer). *)

  val kernel_map_locked : sys -> bool
  (** True while an operation holds the kernel map's lock.  OOM victim
      teardown (reap, whole-process swapout/swapin) re-enters the kernel
      map to unwire user structures and free wired allocations, so the
      policy must defer — returning the allocation failure to the caller
      — when the failing allocation itself holds that lock. *)

  val deactivate_resident : sys -> vmspace -> int
  (** Whole-process swapout's eviction half: remove every unwired,
      unbusy, unloaned resident page's translations and move the frames
      to the inactive queue so the next pagedaemon pass reclaims them.
      Returns the number of pages deactivated.  Contents are preserved —
      reclaim pages them out through the normal machinery and later
      faults page them back in. *)

  (* -- mapping operations ------------------------------------------- *)

  val mmap :
    sys ->
    vmspace ->
    ?fixed_at:int ->
    npages:int ->
    prot:Pmap.Prot.t ->
    share:share ->
    source ->
    int
  (** Establish a mapping of [npages] pages and return its first virtual
      page number.  Atomic single-step under UVM; the BSD baseline performs
      the historical two-step insert-then-protect when attributes are not
      the defaults.
      @raise Invalid_argument if [fixed_at] overlaps an existing mapping. *)

  val munmap : sys -> vmspace -> vpn:int -> npages:int -> unit
  val mprotect : sys -> vmspace -> vpn:int -> npages:int -> Pmap.Prot.t -> unit
  val minherit : sys -> vmspace -> vpn:int -> npages:int -> inherit_mode -> unit
  val madvise : sys -> vmspace -> vpn:int -> npages:int -> advice -> unit

  val mlock : sys -> vmspace -> vpn:int -> npages:int -> unit
  (** Wire a range on behalf of the user ([mlock(2)]): recorded in the map
      under both systems (the one wiring case where UVM has no other home
      for the state). *)

  val munlock : sys -> vmspace -> vpn:int -> npages:int -> unit

  type wired_buffer
  (** Token for a temporarily wired user buffer (sysctl / physio).  UVM
      keeps the wiring on the "kernel stack" (inside the token) without
      touching the map; BSD VM fragments the map (paper §3.2). *)

  val vslock : sys -> vmspace -> vpn:int -> npages:int -> wired_buffer
  val vsunlock : sys -> vmspace -> wired_buffer -> unit

  (* -- IPC data staging (zero-copy movement, paper §7) ---------------- *)

  type stage
  (** A kernel-held reference to [npages] of a process' data staged for
      an IPC transfer without copying: loaned frames ([uvm_loan]) or a
      kernel-map extraction ([uvm_mexp]).  The BSD baseline has neither
      mechanism, so its staging constructors always decline and the IPC
      layer falls back to copying. *)

  val stage_loan : sys -> vmspace -> vpn:int -> npages:int -> stage option
  (** Loan the pages backing the range to the kernel: frames are wired
      and write-protected in the owner, preserving COW (the owner's
      next write faults into a fresh page, leaving the borrower's view
      intact).  [None] if this VM system cannot loan (BSD VM).
      @raise Vmtypes.Segv if the range is not readable. *)

  val stage_mexp : sys -> vmspace -> vpn:int -> npages:int -> stage option
  (** Stage the range by map-entry passing into the kernel map
      (copy-mode extraction: the sender keeps its view; writes on
      either side resolve by COW).  [None] if unsupported (BSD VM) or
      the range is not fully mapped readable — callers then fall back
      to the copy path so both kernels fail identically on bad
      ranges. *)

  val stage_read : sys -> stage -> off:int -> len:int -> bytes
  (** Copy [len] bytes starting at byte offset [off] out of the staged
      data: the receive-side delivery copy.  May fault staged pages
      back in (a mexp stage's pages can be paged out mid-transfer). *)

  val stage_map : sys -> vmspace -> stage -> int option
  (** Deliver the whole stage by donating its map entries into the
      receiving address space; returns the receiving vpn and consumes
      the stage.  [None] when the stage cannot be delivered by mapping
      (loan stages, BSD VM) — the caller then delivers by copy and
      frees the stage itself. *)

  val stage_free : sys -> stage -> unit
  (** Drop the staged reference: unwire and unloan loaned frames, or
      unmap the kernel-map extraction. *)

  (* -- memory access ------------------------------------------------- *)

  val touch : sys -> vmspace -> vpn:int -> access -> unit
  (** Access one byte on page [vpn], faulting if needed.
      @raise Vmtypes.Segv on unresolvable faults. *)

  val read_bytes : sys -> vmspace -> addr:int -> len:int -> bytes
  (** Byte-addressed read through the mapping (faults as needed); used by
      tests to verify mapping contents. *)

  val write_bytes : sys -> vmspace -> addr:int -> bytes -> unit

  val access_range : sys -> vmspace -> vpn:int -> npages:int -> access -> unit
  (** Touch every page in the range once. *)

  val msync : sys -> vmspace -> vpn:int -> npages:int -> unit
  (** Flush dirty file-backed pages in the range to their vnode. *)

  (* -- kernel-side wiring cases for Table 1 -------------------------- *)

  val kernel_alloc_wired : sys -> npages:int -> int
  (** Allocate wired kernel memory (user structures, page tables...).
      Returns the kernel vpn.  BSD VM records the wiring in the kernel map
      (fragmenting it); UVM does not. *)

  val kernel_free_wired : sys -> vpn:int -> npages:int -> unit

  val swapout_ustruct : sys -> vpn:int -> npages:int -> unit
  (** Unwire a swapped-out process' user structure.  UVM keeps the wired
      state in the proc structure; BSD VM also updates the kernel map
      (§3.2, second wiring case). *)

  val swapin_ustruct : sys -> vpn:int -> npages:int -> unit

  type ptp
  (** Hardware page-table pages (the i386 wiring case of §3.2).  BSD VM
      allocates them through the kernel map, recording the wiring there as
      well as in the pmap; UVM keeps the state only in the pmap layer, so
      no kernel map entries are consumed. *)

  val pmap_alloc_ptp : sys -> npages:int -> ptp
  val pmap_free_ptp : sys -> ptp -> unit

  (* -- introspection -------------------------------------------------- *)

  val audit : sys -> unit
  (** Walk the whole machine state and verify the cross-layer invariants
      this VM system promises: exclusive page-queue membership with
      matching counts, every allocated swap slot reachable from exactly
      one anon/object, reference counts equal to the referencing
      entries/slots, sorted non-overlapping map entries, and pmap
      translations agreeing with resident pages.  Read-only: charges no
      simulated time and perturbs nothing, so it can run mid-workload.
      @raise Check.Audit_failure naming the violated invariant. *)

  val swap_slots_in_use : sys -> int
  val leaked_pages : sys -> int
  (** Pages of anonymous memory that are allocated but no longer reachable
      from any map — the swap-leak pathology of §5.3.  Always 0 under UVM;
      can be positive under BSD VM's object chains. *)
end

type config = {
  ram_pages : int;
  swap_pages : int;
  page_size : int;
  max_vnodes : int;
  costs : Sim.Cost_model.t;
  seed : int;
  fault_plan : (unit -> Sim.Fault_plan.t) option;
}

let default_config =
  {
    ram_pages = 8192 (* 32 MB of 4 KB pages *);
    swap_pages = 32768 (* 128 MB *);
    page_size = 4096;
    max_vnodes = 2048;
    costs = Sim.Cost_model.default;
    seed = 0xB5D;
    fault_plan = None;
  }

(* Process-wide default, set by CLI flags: lets any experiment run under a
   fault plan without plumbing config through every call site.  A factory
   rather than a plan so each boot (e.g. the UVM and BSD sides of a
   comparison) gets its own fresh, identically-seeded plan. *)
let default_fault_plan : (unit -> Sim.Fault_plan.t) option ref = ref None
let set_default_fault_plan f = default_fault_plan := f

let config_mb ?(ram_mb = 32) ?(swap_mb = 128) () =
  {
    default_config with
    ram_pages = ram_mb * 1024 * 1024 / default_config.page_size;
    swap_pages = swap_mb * 1024 * 1024 / default_config.page_size;
  }

type t = {
  config : config;
  clock : Sim.Simclock.t;
  costs : Sim.Cost_model.t;
  stats : Sim.Stats.t;
  rng : Sim.Rng.t;
  physmem : Physmem.t;
  pmap_ctx : Pmap.ctx;
  swap : Swap.Swapdev.t;
  vfs : Vfs.t;
}

let boot ?(config = default_config) () =
  let clock = Sim.Simclock.create () in
  let costs = config.costs in
  let stats = Sim.Stats.create () in
  let t =
    {
      config;
      clock;
      costs;
      stats;
      rng = Sim.Rng.create ~seed:config.seed;
      physmem =
        Physmem.create ~page_size:config.page_size ~npages:config.ram_pages
          ~clock ~costs ~stats ();
      pmap_ctx = Pmap.create_ctx ~clock ~costs ~stats;
      swap =
        Swap.Swapdev.create ~nslots:config.swap_pages
          ~page_size:config.page_size ~clock ~costs ~stats;
      vfs =
        Vfs.create ~max_vnodes:config.max_vnodes ~page_size:config.page_size
          ~clock ~costs ~stats ();
    }
  in
  (match
     match config.fault_plan with
     | Some _ as f -> f
     | None -> !default_fault_plan
   with
  | None -> ()
  | Some factory ->
      (* One plan shared by both disks: its RNG stream and scripted rules
         see the machine's I/O in global order, like a shared controller. *)
      let plan = Some (factory ()) in
      Sim.Disk.set_fault_plan (Swap.Swapdev.disk t.swap) plan;
      Sim.Disk.set_fault_plan (Vfs.disk t.vfs) plan);
  t

let page_size t = t.config.page_size
let now t = Sim.Simclock.now t.clock
let charge t us = Sim.Simclock.advance t.clock us

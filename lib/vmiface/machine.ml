type config = {
  ram_pages : int;
  swap_pages : int;
  swap_tiers : Swap.Swaptier.spec list option;
  page_size : int;
  max_vnodes : int;
  costs : Sim.Cost_model.t;
  seed : int;
  fault_plan : (unit -> Sim.Fault_plan.t) option;
  trace_buf : int option;
}

let default_config =
  {
    ram_pages = 8192 (* 32 MB of 4 KB pages *);
    swap_pages = 32768 (* 128 MB *);
    swap_tiers = None;
    page_size = 4096;
    max_vnodes = 2048;
    costs = Sim.Cost_model.default;
    seed = 0xB5D;
    fault_plan = None;
    trace_buf = None;
  }

(* Process-wide default, set by CLI flags: lets any experiment run under a
   fault plan without plumbing config through every call site.  A factory
   rather than a plan so each boot (e.g. the UVM and BSD sides of a
   comparison) gets its own fresh, identically-seeded plan. *)
let default_fault_plan : (unit -> Sim.Fault_plan.t) option ref = ref None
let set_default_fault_plan f = default_fault_plan := f

(* Same pattern for tracing: the CLI turns it on process-wide and every
   machine booted by the experiment collects events.  The registry keeps
   only the lightweight observability state of each traced boot — never
   the machine itself, which would pin its simulated RAM. *)
let default_trace_buf : int option ref = ref None
let set_default_trace n = default_trace_buf := n
let traced_sources : Sim.Trace_export.source list ref = ref []
let traced () = List.rev !traced_sources
let reset_traced () = traced_sources := []

let config_mb ?(ram_mb = 32) ?(swap_mb = 128) () =
  {
    default_config with
    ram_pages = ram_mb * 1024 * 1024 / default_config.page_size;
    swap_pages = swap_mb * 1024 * 1024 / default_config.page_size;
  }

(* Two-tier swap on top of any config: a fast/small NVMe-like device
   (priority 0, 100x disk speed) in front of a slow/large disk-like one.
   [swap_pages] is kept at the combined capacity so size-based reasoning
   about the config stays valid. *)
let tiered ~fast_pages ~slow_pages config =
  {
    config with
    swap_pages = fast_pages + slow_pages;
    swap_tiers =
      Some
        [
          {
            Swap.Swaptier.tier_name = "fast";
            tier_pages = fast_pages;
            tier_priority = 0;
            tier_costs = Some (Sim.Cost_model.fast_disk config.costs);
          };
          {
            Swap.Swaptier.tier_name = "slow";
            tier_pages = slow_pages;
            tier_priority = 1;
            tier_costs = None;
          };
        ];
  }

type t = {
  config : config;
  clock : Sim.Simclock.t;
  costs : Sim.Cost_model.t;
  stats : Sim.Stats.t;
  rng : Sim.Rng.t;
  physmem : Physmem.t;
  pmap_ctx : Pmap.ctx;
  swap : Swap.Swaptier.t;
  vfs : Vfs.t;
  hist : Sim.Hist.t;
  latencies : Sim.Histogram.set;
  lifecycle : Sim.Lifecycle.t;
  trace_source : Sim.Trace_export.source;
}

let boot ?(config = default_config) () =
  let clock = Sim.Simclock.create () in
  let costs = config.costs in
  let stats = Sim.Stats.create () in
  let lifecycle = Sim.Lifecycle.create () in
  let trace_buf =
    match config.trace_buf with Some _ as n -> n | None -> !default_trace_buf
  in
  let hist =
    match trace_buf with
    | Some capacity -> Sim.Hist.create ~capacity ~enabled:true ()
    | None -> Sim.Hist.create ~enabled:false ()
  in
  let latencies = Sim.Histogram.create_set () in
  let trace_source =
    { Sim.Trace_export.label = "vm"; hist; stats; latencies; lifecycle }
  in
  let t =
    {
      config;
      clock;
      costs;
      stats;
      rng = Sim.Rng.create ~seed:config.seed;
      physmem =
        Physmem.create ~page_size:config.page_size ~lifecycle
          ~npages:config.ram_pages ~clock ~costs ~stats ();
      pmap_ctx = Pmap.create_ctx ~lifecycle ~clock ~costs ~stats ();
      swap =
        (let specs =
           match config.swap_tiers with
           | Some specs -> specs
           | None ->
               [
                 {
                   Swap.Swaptier.tier_name = "swap0";
                   tier_pages = config.swap_pages;
                   tier_priority = 0;
                   tier_costs = None;
                 };
               ]
         in
         Swap.Swaptier.create ~specs ~page_size:config.page_size ~clock ~costs
           ~stats);
      vfs =
        Vfs.create ~max_vnodes:config.max_vnodes ~page_size:config.page_size
          ~clock ~costs ~stats ();
      hist;
      latencies;
      lifecycle;
      trace_source;
    }
  in
  if Sim.Hist.enabled hist then begin
    Swap.Swaptier.set_hist t.swap (Some hist);
    traced_sources := trace_source :: !traced_sources
  end;
  (match
     match config.fault_plan with
     | Some _ as f -> f
     | None -> !default_fault_plan
   with
  | None -> ()
  | Some factory ->
      (* One plan shared by every disk: its RNG stream and scripted rules
         see the machine's I/O in global order, like a shared controller. *)
      let plan = Some (factory ()) in
      List.iter
        (fun disk -> Sim.Disk.set_fault_plan disk plan)
        (Swap.Swaptier.disks t.swap);
      Sim.Disk.set_fault_plan (Vfs.disk t.vfs) plan);
  t

let page_size t = t.config.page_size
let now t = Sim.Simclock.now t.clock
let charge t us = Sim.Simclock.advance t.clock us
let set_label t label = t.trace_source.Sim.Trace_export.label <- label

type config = {
  ram_pages : int;
  swap_pages : int;
  swap_tiers : Swap.Swaptier.spec list option;
  page_size : int;
  max_vnodes : int;
  costs : Sim.Cost_model.t;
  seed : int;
  fault_plan : (unit -> Sim.Fault_plan.t) option;
  trace_buf : int option;
  ncpus : int;  (* virtual CPUs: sizes physmem's per-CPU page caches *)
}

let default_config =
  {
    ram_pages = 8192 (* 32 MB of 4 KB pages *);
    swap_pages = 32768 (* 128 MB *);
    swap_tiers = None;
    page_size = 4096;
    max_vnodes = 2048;
    costs = Sim.Cost_model.default;
    seed = 0xB5D;
    fault_plan = None;
    trace_buf = None;
    ncpus = 1;
  }

(* Process-wide default, set by CLI flags: lets any experiment run under a
   fault plan without plumbing config through every call site.  A factory
   rather than a plan so each boot (e.g. the UVM and BSD sides of a
   comparison) gets its own fresh, identically-seeded plan. *)
let default_fault_plan : (unit -> Sim.Fault_plan.t) option ref = ref None
let set_default_fault_plan f = default_fault_plan := f

(* Same pattern for tracing: the CLI turns it on process-wide and every
   machine booted by the experiment collects events.  The registry keeps
   only the lightweight observability state of each traced boot — never
   the machine itself, which would pin its simulated RAM. *)
let default_trace_buf : int option ref = ref None
let set_default_trace n = default_trace_buf := n
let traced_sources : Sim.Trace_export.source list ref = ref []
let traced () = List.rev !traced_sources
let reset_traced () = traced_sources := []

let config_mb ?(ram_mb = 32) ?(swap_mb = 128) () =
  {
    default_config with
    ram_pages = ram_mb * 1024 * 1024 / default_config.page_size;
    swap_pages = swap_mb * 1024 * 1024 / default_config.page_size;
  }

(* Two-tier swap on top of any config: a fast/small NVMe-like device
   (priority 0, 100x disk speed) in front of a slow/large disk-like one.
   [swap_pages] is kept at the combined capacity so size-based reasoning
   about the config stays valid. *)
let tiered ~fast_pages ~slow_pages config =
  {
    config with
    swap_pages = fast_pages + slow_pages;
    swap_tiers =
      Some
        [
          {
            Swap.Swaptier.tier_name = "fast";
            tier_pages = fast_pages;
            tier_priority = 0;
            tier_costs = Some (Sim.Cost_model.fast_disk config.costs);
          };
          {
            Swap.Swaptier.tier_name = "slow";
            tier_pages = slow_pages;
            tier_priority = 1;
            tier_costs = None;
          };
        ];
  }

type t = {
  config : config;
  clock : Sim.Simclock.t;
  costs : Sim.Cost_model.t;
  stats : Sim.Stats.t;
  rng : Sim.Rng.t;
  physmem : Physmem.t;
  pmap_ctx : Pmap.ctx;
  swap : Swap.Swaptier.t;
  vfs : Vfs.t;
  hist : Sim.Hist.t;
  latencies : Sim.Histogram.set;
  lifecycle : Sim.Lifecycle.t;
  spans : Sim.Span.t;
  series : Sim.Timeseries.t;
  locks : Sim.Lockstat.t;
  trace_source : Sim.Trace_export.source;
  mutable runnable_probe : (int -> int) option;
      (* per-CPU runnable count for the sampler; the SMP scheduler
         installs [Smp.runnable] here so vmstat's cpuK:runnable column
         reflects the storm in flight *)
}

(* Sampling period of the vmstat-style time series, in simulated
   microseconds.  1 ms gives ~1000 samples per simulated second, well
   within the sampler's ring. *)
let sample_interval_us = 1_000.0

let boot ?(config = default_config) () =
  let clock = Sim.Simclock.create () in
  let costs = config.costs in
  let stats = Sim.Stats.create () in
  let lifecycle = Sim.Lifecycle.create () in
  let trace_buf =
    match config.trace_buf with Some _ as n -> n | None -> !default_trace_buf
  in
  let hist =
    match trace_buf with
    | Some capacity -> Sim.Hist.create ~capacity ~enabled:true ()
    | None -> Sim.Hist.create ~enabled:false ()
  in
  let latencies = Sim.Histogram.create_set () in
  let spans =
    match trace_buf with
    | Some capacity -> Sim.Span.create ~capacity ~enabled:true ()
    | None -> Sim.Span.create ~enabled:false ()
  in
  let series = Sim.Timeseries.create ~interval:sample_interval_us () in
  (* The lock registry records when tracing is on; its span sink stays
     wired regardless so an experiment that flips spans on per machine
     (serve) still sees lock:<class> spans in its critical paths. *)
  let locks =
    Sim.Lockstat.create
      ~enabled:(trace_buf <> None)
      ~now:(fun () -> Sim.Simclock.now clock)
      ()
  in
  Sim.Lockstat.set_spans locks (Some spans);
  Sim.Lockstat.set_hist locks (Some hist);
  Sim.Lockstat.set_latencies locks (Some latencies);
  let trace_source =
    {
      Sim.Trace_export.label = "vm";
      hist;
      stats;
      latencies;
      lifecycle;
      spans;
      series;
      locks = Some locks;
      sync = (fun () -> ());
    }
  in
  let t =
    {
      config;
      clock;
      costs;
      stats;
      rng = Sim.Rng.create ~seed:config.seed;
      physmem =
        Physmem.create ~page_size:config.page_size ~lifecycle
          ~ncpus:config.ncpus ~npages:config.ram_pages ~clock ~costs ~stats ();
      pmap_ctx = Pmap.create_ctx ~lifecycle ~clock ~costs ~stats ();
      swap =
        (let specs =
           match config.swap_tiers with
           | Some specs -> specs
           | None ->
               [
                 {
                   Swap.Swaptier.tier_name = "swap0";
                   tier_pages = config.swap_pages;
                   tier_priority = 0;
                   tier_costs = None;
                 };
               ]
         in
         Swap.Swaptier.create ~specs ~page_size:config.page_size ~clock ~costs
           ~stats);
      vfs =
        Vfs.create ~max_vnodes:config.max_vnodes ~page_size:config.page_size
          ~clock ~costs ~stats ();
      hist;
      latencies;
      lifecycle;
      spans;
      series;
      locks;
      trace_source;
      runnable_probe = None;
    }
  in
  (* Span, gauge-sync and sampler wiring is installed unconditionally:
     the collector itself is disabled unless tracing is on, but an
     experiment (serve) can flip it on per machine and get the full
     causal tree, swap tiers included.  Only the clock hook and the
     traced-source registration stay gated on tracing. *)
  Swap.Swaptier.set_spans t.swap (Some spans);
  Swap.Swaptier.set_lockstat t.swap (Some locks);
  Physmem.set_lockstat t.physmem (Some locks);
  (* One source of truth for the instantaneous gauges: both the stats
     export and the sampler read them through this closure. *)
  (let sync () =
      stats.Sim.Stats.free_pages <- Physmem.free_count t.physmem;
      stats.Sim.Stats.active_pages <- Physmem.active_count t.physmem;
      stats.Sim.Stats.inactive_pages <- Physmem.inactive_count t.physmem;
      stats.Sim.Stats.swap_slots_used <- Swap.Swaptier.slots_in_use t.swap;
      stats.Sim.Stats.swapcache_pages <- Swap.Swaptier.cache_slots t.swap
    in
    trace_source.Sim.Trace_export.sync <- sync;
    let tier_names =
      List.map (fun ti -> ti.Swap.Swaptier.ti_name) (Swap.Swaptier.tiers t.swap)
    in
    let columns =
      [
        "free_pages";
        "active_pages";
        "inactive_pages";
        "swap_slots_used";
        "swapcache_pages";
        "drain_pending";
        "faults";
        "pageins";
        "pageouts";
        "disk_pages_read";
        "disk_pages_written";
        "swap_migrations";
        "oom_kills";
        "rlimit_denials";
        "proc_swapouts";
        "proc_swapins";
      ]
      @ List.map (fun n -> "tier:" ^ n) tier_names
      @ [ "lock_acquires"; "lock_maxhold_us" ]
      @ List.map (fun c -> "lockheld:" ^ c) Sim.Lockstat.known_classes
      @ (if config.ncpus <= 1 then []
         else
           List.concat_map
             (fun k ->
               let p = Printf.sprintf "cpu%d:" k in
               [ p ^ "runnable"; p ^ "steals"; p ^ "hit_rate"; p ^ "refills" ])
             (List.init config.ncpus Fun.id))
    in
    let probe () =
      sync ();
      let fixed =
        [
          float_of_int stats.Sim.Stats.free_pages;
          float_of_int stats.Sim.Stats.active_pages;
          float_of_int stats.Sim.Stats.inactive_pages;
          float_of_int stats.Sim.Stats.swap_slots_used;
          float_of_int stats.Sim.Stats.swapcache_pages;
          (if Swap.Swaptier.drain_pending t.swap then 1.0 else 0.0);
          float_of_int stats.Sim.Stats.faults;
          float_of_int stats.Sim.Stats.pageins;
          float_of_int stats.Sim.Stats.pageouts;
          float_of_int stats.Sim.Stats.disk_pages_read;
          float_of_int stats.Sim.Stats.disk_pages_written;
          float_of_int stats.Sim.Stats.swap_migrations;
          float_of_int stats.Sim.Stats.oom_kills;
          float_of_int stats.Sim.Stats.rlimit_denials;
          float_of_int stats.Sim.Stats.proc_swapouts;
          float_of_int stats.Sim.Stats.proc_swapins;
        ]
      in
      let tiers =
        List.map
          (fun ti -> float_of_int ti.Swap.Swaptier.ti_in_use)
          (Swap.Swaptier.tiers t.swap)
      in
      let lock_cols =
        float_of_int (Sim.Lockstat.total_acquires locks)
        :: Sim.Lockstat.take_window_max_us locks
        :: List.map
             (fun c -> Sim.Lockstat.class_hold_us locks c)
             Sim.Lockstat.known_classes
      in
      let cpu_cols =
        if config.ncpus <= 1 then []
        else
          List.concat_map
            (fun (cw : Physmem.cache_view) ->
              let runnable =
                match t.runnable_probe with
                | Some f -> float_of_int (f cw.Physmem.cw_cpu)
                | None -> 0.0
              in
              let tries = cw.Physmem.cw_hits + cw.Physmem.cw_misses in
              let hit_rate =
                if tries = 0 then 0.0
                else float_of_int cw.Physmem.cw_hits /. float_of_int tries
              in
              [
                runnable;
                float_of_int cw.Physmem.cw_steals;
                hit_rate;
                float_of_int cw.Physmem.cw_refills;
              ])
            (Physmem.cache_views t.physmem)
      in
      Array.of_list (fixed @ tiers @ lock_cols @ cpu_cols)
    in
    Sim.Timeseries.set_probe series ~columns probe;
    (* Watchdogs over a 4-sample window.  Column indexes match the
       [columns] list above. *)
    let c_free = 0 and c_drain = 5 and c_pageouts = 8 and c_migrations = 11 in
    let c_swapouts = 14 and c_swapins = 15 in
    let delta (w : Sim.Timeseries.sample array) col =
      let n = Array.length w in
      w.(n - 1).Sim.Timeseries.s_values.(col)
      -. w.(0).Sim.Timeseries.s_values.(col)
    in
    Sim.Timeseries.add_rule series ~name:"pdaemon_thrash" ~window:4 (fun w ->
        let freemin = float_of_int (Physmem.freemin t.physmem) in
        let starved =
          Array.for_all
            (fun (s : Sim.Timeseries.sample) -> s.s_values.(c_free) < freemin)
            w
        in
        let pageouts = delta w c_pageouts in
        if starved && pageouts > 0.0 then
          Some
            [
              ( "free_pages",
                Printf.sprintf "%.0f"
                  w.(Array.length w - 1).Sim.Timeseries.s_values.(c_free) );
              ("freemin", Printf.sprintf "%.0f" freemin);
              ("pageouts_in_window", Printf.sprintf "%.0f" pageouts);
            ]
        else None);
    Sim.Timeseries.add_rule series ~name:"drain_stall" ~window:4 (fun w ->
        let draining =
          Array.for_all
            (fun (s : Sim.Timeseries.sample) -> s.s_values.(c_drain) > 0.0)
            w
        in
        if draining && delta w c_migrations <= 0.0 then
          Some
            [ ("drain_pending", "true"); ("migrations_in_window", "0") ]
        else None);
    (* Swapping a process out and another back in within the same short
       window means the overload policy is churning the same memory —
       the 4.3BSD thrash signature process swapping was meant to damp. *)
    Sim.Timeseries.add_rule series ~name:"proc_thrash" ~window:4 (fun w ->
        let souts = delta w c_swapouts and sins = delta w c_swapins in
        if souts > 0.0 && sins > 0.0 then
          Some
            [
              ("swapouts_in_window", Printf.sprintf "%.0f" souts);
              ("swapins_in_window", Printf.sprintf "%.0f" sins);
            ]
        else None);
    (* One lock class soaking up most of the window's simulated time is
       the serialization the SMP sharding work must break; surface it as
       it happens rather than waiting for the post-run profile. *)
    let c_lockheld0 = 18 + List.length tier_names in
    let lock_hog_share = 0.9 in
    Sim.Timeseries.add_rule series ~name:"lock_hog" ~window:4 (fun w ->
        let wall =
          w.(Array.length w - 1).Sim.Timeseries.s_ts
          -. w.(0).Sim.Timeseries.s_ts
        in
        if wall <= 0.0 then None
        else
          let hog = ref None in
          List.iteri
            (fun i cls ->
              let held = delta w (c_lockheld0 + i) in
              let share = held /. wall in
              if share > lock_hog_share then
                match !hog with
                | Some (_, _, best) when best >= share -> ()
                | _ -> hog := Some (cls, held, share))
            Sim.Lockstat.known_classes;
          match !hog with
          | Some (cls, held, share) ->
              Some
                [
                  ("class", cls);
                  ("held_in_window_us", Printf.sprintf "%.0f" held);
                  ("share", Printf.sprintf "%.2f" share);
                ]
          | None -> None);
    (* A CPU whose free cache keeps refilling inside one window is
       starved: its batches are being consumed (or stolen) faster than
       the target refill cadence — the cache is too small or the colored
       queues too empty for the access pattern. *)
    if config.ncpus > 1 then begin
      let c_cpu0 =
        c_lockheld0 + List.length Sim.Lockstat.known_classes
      in
      let starve_refills = 8.0 in
      Sim.Timeseries.add_rule series ~name:"cache_starved" ~window:4 (fun w ->
          let worst = ref None in
          for k = 0 to config.ncpus - 1 do
            let refills = delta w (c_cpu0 + (4 * k) + 3) in
            if refills > starve_refills then
              match !worst with
              | Some (_, best) when best >= refills -> ()
              | _ -> worst := Some (k, refills)
          done;
          match !worst with
          | Some (k, refills) ->
              Some
                [
                  ("cpu", string_of_int k);
                  ("refills_in_window", Printf.sprintf "%.0f" refills);
                  ("limit", Printf.sprintf "%.0f" starve_refills);
                ]
          | None -> None)
    end);
  if Sim.Hist.enabled hist then begin
    Swap.Swaptier.set_hist t.swap (Some hist);
    Sim.Timeseries.attach series clock;
    traced_sources := trace_source :: !traced_sources
  end;
  (match
     match config.fault_plan with
     | Some _ as f -> f
     | None -> !default_fault_plan
   with
  | None -> ()
  | Some factory ->
      (* One plan shared by every disk: its RNG stream and scripted rules
         see the machine's I/O in global order, like a shared controller. *)
      let plan = Some (factory ()) in
      List.iter
        (fun disk -> Sim.Disk.set_fault_plan disk plan)
        (Swap.Swaptier.disks t.swap);
      Sim.Disk.set_fault_plan (Vfs.disk t.vfs) plan);
  t

let page_size t = t.config.page_size
let set_runnable_probe t f = t.runnable_probe <- f
let now t = Sim.Simclock.now t.clock
let charge t us = Sim.Simclock.advance t.clock us
let set_label t label = t.trace_source.Sim.Trace_export.label <- label

(** Simulated kernel IPC: pipes and stream sockets over mbuf chains.

    The paper's §6 motivates loanout, page transfer and map-entry passing
    as the mechanisms that move IPC data from process to kernel to
    process without copying.  This layer is their kernel client: a
    unidirectional channel queues mbuf-style segments, and the sender
    picks one of three data-movement policies per call:

    - [Copy]: the baseline (and the only policy the BSD VM supports).
      Bytes are copied user->kernel on send and kernel->user on recv —
      two copies per byte.
    - [Loan]: the sender's pages are loaned read-only into the chain
      ([uvm_loan]); the receive side pays a single delivery copy and the
      loan is returned when the segment is consumed.  COW is preserved:
      a sender write after send faults into a fresh page, and a loaned
      page whose owner is paged out or exits survives in limbo until
      unloaned.
    - [Mexp]: page-aligned payloads travel as whole map entries
      ([uvm_mexp]); a receiver that accepts mapped delivery gets the
      pages mapped into its own space with no copy at all.

    Policies only change how bytes move, never how many are accepted:
    acceptance depends on queue capacity alone, so a Copy run on the BSD
    baseline and a Loan/Mexp run on UVM produce byte-identical streams —
    the property the torture oracle compares.  On a VM system without
    the zero-copy hooks, Loan and Mexp degrade to Copy.

    A physio-style path ([vslocked:true]) wires the user buffer with
    [vslock] around the transfer, exercising the §3.2 buffer-wiring
    cases on both kernels. *)

type policy = Copy | Loan | Mexp

let policy_name = function Copy -> "copy" | Loan -> "loan" | Mexp -> "mexp"

let policy_of_string = function
  | "copy" -> Some Copy
  | "loan" -> Some Loan
  | "mexp" -> Some Mexp
  | _ -> None

let all_policies = [ Copy; Loan; Mexp ]

(** Receiver liveness as the channel sees it, maintained by the process
    layer: sends keep their historical semantics while the receiver is
    [Rx_alive], gain deadline semantics when it is [Rx_swapped] (a
    swapped-out process drains its queue only after swapin) and fail fast
    once it is [Rx_dead] (reaped by the OOM policy, or exited). *)
type rx_state = Rx_alive | Rx_swapped | Rx_dead

(** Why a checked send moved no bytes (overload backpressure, §4.4BSD
    process swapping composed with bounded queues). *)
type send_error = Timed_out | Peer_dead

let send_error_name = function
  | Timed_out -> "timed_out"
  | Peer_dead -> "peer_dead"

module Machine = Vmiface.Machine

module Make (V : Vmiface.Vm_sig.VM_SYS) = struct
  (* One mbuf: either bytes copied into the kernel, or an external
     segment referencing staged (loaned / extracted) pages. *)
  type segment =
    | S_bytes of { data : bytes; mutable off : int }
    | S_stage of {
        stage : V.stage;
        start : int;  (* byte offset of the payload within the stage *)
        len : int;  (* payload bytes *)
        mutable off : int;  (* bytes already consumed *)
      }

  let seg_remaining = function
    | S_bytes s -> Bytes.length s.data - s.off
    | S_stage s -> s.len - s.off

  type chan = {
    id : int;
    cap : int;  (* byte capacity: the socket buffer high-water mark *)
    q : segment Queue.t;
    mutable q_len : int;  (* queued payload bytes *)
    mutable closed : bool;
    mutable rx_state : rx_state;  (* receiver liveness, set by the OS layer *)
  }

  type endpoint = { tx : chan; rx : chan }

  type delivery = Data of int | Mapped of { vpn : int; npages : int; len : int }

  let chan_ids = ref 0

  let pipe sys ?cap_bytes () =
    let m = V.machine sys in
    let cap =
      match cap_bytes with Some c -> c | None -> 16 * Machine.page_size m
    in
    if cap < 1 then invalid_arg "Ipc.pipe: capacity must be positive";
    incr chan_ids;
    {
      id = !chan_ids;
      cap;
      q = Queue.create ();
      q_len = 0;
      closed = false;
      rx_state = Rx_alive;
    }

  let socketpair sys ?cap_bytes () =
    let a = pipe sys ?cap_bytes () and b = pipe sys ?cap_bytes () in
    ({ tx = a; rx = b }, { tx = b; rx = a })

  let capacity ch = ch.cap
  let queued_bytes ch = ch.q_len
  let closed ch = ch.closed
  let set_rx_state ch st = ch.rx_state <- st
  let rx_state ch = ch.rx_state

  let free_seg sys = function
    | S_bytes _ -> ()
    | S_stage s -> V.stage_free sys s.stage

  let close sys ch =
    if not ch.closed then begin
      ch.closed <- true;
      Queue.iter (free_seg sys) ch.q;
      Queue.clear ch.q;
      ch.q_len <- 0
    end

  (* -- accounting helpers ------------------------------------------------ *)

  let charge sys us = Machine.charge (V.machine sys) us

  (* The memory-bus cost of moving [n] payload bytes by copy, scaled from
     the cost model's per-page copy charge. *)
  let charge_copy sys n =
    let m = V.machine sys in
    charge sys
      (m.Machine.costs.Sim.Cost_model.page_copy
      *. float_of_int n
      /. float_of_int (Machine.page_size m))

  let span_start sys name =
    let m = V.machine sys in
    Sim.Span.start m.Machine.spans ~subsys:"ipc" ~ts:(Machine.now m) name

  let span_finish sys sp ~detail =
    let m = V.machine sys in
    Sim.Span.finish m.Machine.spans sp ~ts:(Machine.now m) ~detail ()

  let record sys ~ts name ~how ~bytes ~chan =
    let m = V.machine sys in
    if Sim.Hist.enabled m.Machine.hist then begin
      let dur = Machine.now m -. ts in
      Sim.Hist.record m.Machine.hist ~subsys:Sim.Hist.Ipc ~ts ~dur
        ~detail:
          [
            ("how", how);
            ("bytes", string_of_int bytes);
            ("chan", string_of_int chan);
          ]
        name;
      Sim.Histogram.observe
        (Sim.Histogram.get m.Machine.latencies ("ipc_" ^ name ^ "_us"))
        dur
    end

  (* Wire the user buffer for a physio-style transfer. *)
  let with_vslock sys vm ~addr ~len f =
    if len <= 0 then f ()
    else begin
      let m = V.machine sys in
      let ps = Machine.page_size m in
      m.Machine.stats.Sim.Stats.vslock_ios <-
        m.Machine.stats.Sim.Stats.vslock_ios + 1;
      let vpn = addr / ps in
      let npages = ((addr + len - 1) / ps) - vpn + 1 in
      let wb = V.vslock sys vm ~vpn ~npages in
      Fun.protect ~finally:(fun () -> V.vsunlock sys vm wb) f
    end

  (* -- send -------------------------------------------------------------- *)

  let enqueue ch seg n =
    Queue.push seg ch.q;
    ch.q_len <- ch.q_len + n

  let send_copy sys vm ch ~addr ~n =
    let m = V.machine sys in
    let data = V.read_bytes sys vm ~addr ~len:n in
    charge_copy sys n;
    m.Machine.stats.Sim.Stats.ipc_bytes_copied <-
      m.Machine.stats.Sim.Stats.ipc_bytes_copied + n;
    enqueue ch (S_bytes { data; off = 0 }) n

  let send_loan sys vm ch ~addr ~n =
    let m = V.machine sys in
    let ps = Machine.page_size m in
    let vpn = addr / ps in
    let npages = ((addr + n - 1) / ps) - vpn + 1 in
    match V.stage_loan sys vm ~vpn ~npages with
    | None -> send_copy sys vm ch ~addr ~n
    | Some stage ->
        m.Machine.stats.Sim.Stats.ipc_bytes_loaned <-
          m.Machine.stats.Sim.Stats.ipc_bytes_loaned + n;
        enqueue ch (S_stage { stage; start = addr mod ps; len = n; off = 0 }) n

  let send_mexp sys vm ch ~addr ~n =
    let m = V.machine sys in
    let ps = Machine.page_size m in
    if addr mod ps <> 0 || n mod ps <> 0 then
      (* Map-entry passing moves whole pages; sub-page payloads copy. *)
      send_copy sys vm ch ~addr ~n
    else
      match V.stage_mexp sys vm ~vpn:(addr / ps) ~npages:(n / ps) with
      | None -> send_copy sys vm ch ~addr ~n
      | Some stage ->
          m.Machine.stats.Sim.Stats.ipc_bytes_mapped <-
            m.Machine.stats.Sim.Stats.ipc_bytes_mapped + n;
          enqueue ch (S_stage { stage; start = 0; len = n; off = 0 }) n

  let send sys vm ?(vslocked = false) ch ~policy ~addr ~len =
    if ch.closed then invalid_arg "Ipc.send: channel is closed";
    if len < 0 then invalid_arg "Ipc.send: negative length";
    let m = V.machine sys in
    let span = span_start sys "send" in
    let t0 = Machine.now m in
    charge sys m.Machine.costs.Sim.Cost_model.syscall_overhead;
    (* The channel lock covers admission and the data move.  Zero-copy
       staging faults the sender's pages under it, so the registry sees
       the ipc -> map nesting order. *)
    let ls = m.Machine.locks in
    let cl = Sim.Lockstat.instance ls ~cls:"ipc" ~id:ch.id in
    Sim.Lockstat.acquire ls cl ~mode:Sim.Lockstat.Write;
    let n =
      Fun.protect ~finally:(fun () -> Sim.Lockstat.release ls cl)
      @@ fun () ->
      (* Acceptance is policy- and kernel-independent: capacity alone
         decides, so every kernel accepts identical byte counts. *)
      let n = min len (ch.cap - ch.q_len) in
      let n = max n 0 in
      if n > 0 then begin
        let move () =
          match policy with
          | Copy -> send_copy sys vm ch ~addr ~n
          | Loan -> send_loan sys vm ch ~addr ~n
          | Mexp -> send_mexp sys vm ch ~addr ~n
        in
        if vslocked then with_vslock sys vm ~addr ~len move else move ();
        m.Machine.stats.Sim.Stats.ipc_sends <-
          m.Machine.stats.Sim.Stats.ipc_sends + 1
      end;
      n
    in
    span_finish sys span
      ~detail:
        [ ("how", policy_name policy); ("bytes", string_of_int n) ];
    record sys ~ts:t0 "send" ~how:(policy_name policy) ~bytes:n ~chan:ch.id;
    n

  (* Deadline semantics for overloaded receivers.  [send] keeps its
     historical partial-write behaviour (the torture oracle depends on it
     being capacity-only); [send_checked] layers receiver liveness on
     top.  A reaped peer fails every send immediately; a swapped-out peer
     whose queue is full cannot drain before the deadline, so the caller
     is charged the deadline wait and told so, instead of blocking on a
     receiver the swap policy already parked. *)
  let deadline_wait_us = 1_000.0

  let send_checked sys vm ?vslocked ch ~policy ~addr ~len =
    match ch.rx_state with
    | Rx_dead -> Error Peer_dead
    | Rx_swapped when len > 0 && ch.cap - ch.q_len <= 0 ->
        charge sys deadline_wait_us;
        record sys
          ~ts:(Machine.now (V.machine sys))
          "send" ~how:"timed_out" ~bytes:0 ~chan:ch.id;
        Error Timed_out
    | Rx_alive | Rx_swapped ->
        Ok (send sys vm ?vslocked ch ~policy ~addr ~len)

  (* -- recv -------------------------------------------------------------- *)

  (* Whole-segment mapped delivery: the head segment is a complete
     page-aligned stage no bigger than the receiver's buffer, and the VM
     system can donate its entries into the receiver. *)
  let try_mapped_delivery sys vm ch ~len =
    let ps = Machine.page_size (V.machine sys) in
    match Queue.peek_opt ch.q with
    | Some (S_stage s)
      when s.off = 0 && s.start = 0 && s.len mod ps = 0 && s.len <= len -> (
        match V.stage_map sys vm s.stage with
        | Some vpn ->
            ignore (Queue.pop ch.q);
            ch.q_len <- ch.q_len - s.len;
            Some (Mapped { vpn; npages = s.len / ps; len = s.len })
        | None -> None)
    | _ -> None

  let recv sys vm ?(vslocked = false) ?(accept_mapped = false) ch ~addr ~len =
    let m = V.machine sys in
    let span = span_start sys "recv" in
    let t0 = Machine.now m in
    charge sys m.Machine.costs.Sim.Cost_model.syscall_overhead;
    let ls = m.Machine.locks in
    let cl = Sim.Lockstat.instance ls ~cls:"ipc" ~id:ch.id in
    Sim.Lockstat.acquire ls cl ~mode:Sim.Lockstat.Write;
    let result =
      Fun.protect ~finally:(fun () -> Sim.Lockstat.release ls cl)
      @@ fun () ->
      let mapped =
        if accept_mapped then try_mapped_delivery sys vm ch ~len else None
      in
      match mapped with
      | Some d -> d
      | None ->
          let buf = Bytes.create (max len 0) in
          let got = ref 0 in
          while !got < len && not (Queue.is_empty ch.q) do
            let seg = Queue.peek ch.q in
            let n = min (seg_remaining seg) (len - !got) in
            (match seg with
            | S_bytes s ->
                Bytes.blit s.data s.off buf !got n;
                s.off <- s.off + n
            | S_stage s ->
                let part =
                  V.stage_read sys s.stage ~off:(s.start + s.off) ~len:n
                in
                Bytes.blit part 0 buf !got n;
                s.off <- s.off + n);
            got := !got + n;
            if seg_remaining seg = 0 then begin
              ignore (Queue.pop ch.q);
              free_seg sys seg
            end
          done;
          if !got > 0 then begin
            let deliver () =
              V.write_bytes sys vm ~addr (Bytes.sub buf 0 !got)
            in
            if vslocked then with_vslock sys vm ~addr ~len deliver
            else deliver ();
            charge_copy sys !got;
            m.Machine.stats.Sim.Stats.ipc_bytes_copied <-
              m.Machine.stats.Sim.Stats.ipc_bytes_copied + !got;
            ch.q_len <- ch.q_len - !got
          end;
          Data !got
    in
    (match result with
    | Data 0 -> ()
    | Data _ | Mapped _ ->
        m.Machine.stats.Sim.Stats.ipc_recvs <-
          m.Machine.stats.Sim.Stats.ipc_recvs + 1);
    span_finish sys span
      ~detail:
        [
          ("how", match result with Data _ -> "data" | Mapped _ -> "mapped");
          ( "bytes",
            string_of_int (match result with Data n -> n | Mapped d -> d.len)
          );
        ];
    record sys ~ts:t0 "recv"
      ~how:(match result with Data _ -> "data" | Mapped _ -> "mapped")
      ~bytes:(match result with Data n -> n | Mapped d -> d.len)
      ~chan:ch.id;
    result
end

(** Global state of the BSD VM baseline (the 4.4BSD / Mach-derived system
    the paper replaces).

    [obj_cache_limit] is the famous one-hundred-object cap on the VM
    object cache (paper §4, Figure 2).  [two_step_probe], when set, is
    invoked between the two steps of the historical insert-then-protect
    mapping path, letting tests observe the read-write security window
    (paper §3.1). *)

module Machine = Vmiface.Machine

type t = {
  mach : Machine.t;
  obj_cache_limit : int;
  uid : int;  (** distinguishes objects of different booted systems *)
  io_retries : int;  (** transient I/O error retry budget *)
  io_backoff_us : float;  (** base exponential-backoff delay *)
  mutable two_step_probe : (int -> unit) option;
  mutable next_id : int;
}

let uid_counter = ref 0

let create ?(obj_cache_limit = 100) ?(io_retries = 3) ?(io_backoff_us = 200.0)
    mach =
  incr uid_counter;
  {
    mach;
    obj_cache_limit;
    uid = !uid_counter;
    io_retries;
    io_backoff_us;
    two_step_probe = None;
    next_id = 0;
  }

let id_counter = ref 0

let fresh_id t =
  incr id_counter;
  t.next_id <- t.next_id + 1;
  !id_counter

let clock t = t.mach.Machine.clock
let costs t = t.mach.Machine.costs
let stats t = t.mach.Machine.stats
let physmem t = t.mach.Machine.physmem
let locks t = t.mach.Machine.locks
let swapdev t = t.mach.Machine.swap
let vfs t = t.mach.Machine.vfs
let pmap_ctx t = t.mach.Machine.pmap_ctx
let charge t us = Sim.Simclock.advance (clock t) us
let charge_struct_alloc t = charge t (costs t).Sim.Cost_model.struct_alloc

(* Observability, mirroring Uvm_sys: the same series names and event
   taxonomy so traces from the two systems compare side by side. *)
let hist t = t.mach.Machine.hist
let latencies t = t.mach.Machine.latencies
let tracing t = Sim.Hist.enabled (hist t)

let trace t ~subsys ~ts ?dur ?detail name =
  Sim.Hist.record (hist t) ~subsys ~ts ?dur ?detail name

let observe t name v =
  if tracing t then
    Sim.Histogram.observe (Sim.Histogram.get (latencies t) name) v

let spans t = t.mach.Machine.spans

let span_start t ~subsys name =
  Sim.Span.start (spans t) ~subsys ~ts:(Sim.Simclock.now (clock t)) name

let span_finish t sp ?detail () =
  Sim.Span.finish (spans t) sp ~ts:(Sim.Simclock.now (clock t)) ?detail ()

(* Same transient-retry policy as UVM's, so the error handling stays
   apples-to-apples between the two systems under a shared fault plan. *)
let retry_transient t f =
  let rec go attempt =
    match f () with
    | Ok _ as ok -> ok
    | Error e -> (
        match e.Sim.Fault_plan.severity with
        | Sim.Fault_plan.Transient when attempt < t.io_retries ->
            charge t (t.io_backoff_us *. (2.0 ** float_of_int attempt));
            go (attempt + 1)
        | _ -> Error e)
  in
  go 0

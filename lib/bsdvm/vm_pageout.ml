(** The BSD VM pageout daemon.

    Same queue discipline as UVM's (second-chance over the inactive list,
    refill from the active list) — that part predates UVM — but every dirty
    page goes to backing store as its own I/O operation: anonymous pages
    keep fixed per-object swap slots (no reassignment, so scattered dirty
    pages cannot be clustered), and vnode pages are written one at a time
    (paper §1.1, §6; Figure 5 measures the consequence). *)

let reclaim sys (page : Physmem.Page.t) =
  Pmap.page_remove_all (Bsd_sys.pmap_ctx sys) page;
  (match page.owner with
  | Vm_object.Obj_page obj -> Vm_object.remove_page obj ~pgno:page.owner_offset
  | _ -> ());
  Physmem.free_page (Bsd_sys.physmem sys) page

(* Returns true when the page was written and may be reclaimed.  Failed
   writes (after the shared retry/blacklist-reassign policy) leave the
   page dirty in core — the daemon degrades to reclaiming clean pages. *)
let pageout_one sys (obj : Vm_object.t) (page : Physmem.Page.t) =
  (* The object's lock is held across the write-out, nested inside the
     pagedaemon lock — the registry's pdaemon -> object -> swap chain. *)
  let ls = Bsd_sys.locks sys in
  let ol = Sim.Lockstat.instance ls ~cls:"object" ~id:obj.Vm_object.id in
  Sim.Lockstat.acquire ls ol ~mode:Sim.Lockstat.Write;
  Fun.protect ~finally:(fun () -> Sim.Lockstat.release ls ol) @@ fun () ->
  (* Every BSD pageout is a singleton cluster — the ledger records the
     size-1 distribution Figure 5 contrasts with UVM's. *)
  Physmem.note_cluster (Bsd_sys.physmem sys) ~pages:[ page ] ~runs:1;
  let span = Bsd_sys.span_start sys ~subsys:"pdaemon" "pageout" in
  let t0 = Sim.Simclock.now (Bsd_sys.clock sys) in
  let trace_pageout cleaned =
    Bsd_sys.span_finish sys span
      ~detail:
        [ ("pages", "1"); ("result", if cleaned then "ok" else "error") ]
      ();
    if Bsd_sys.tracing sys then begin
      let dur = Sim.Simclock.now (Bsd_sys.clock sys) -. t0 in
      (* Always one page per I/O here — the contrast with UVM's clustered
         pageout is exactly what the trace should show. *)
      Bsd_sys.trace sys ~subsys:Sim.Hist.Pdaemon ~ts:t0 ~dur
        ~detail:
          [ ("pages", "1"); ("result", if cleaned then "ok" else "error") ]
        "pageout_cluster";
      Bsd_sys.observe sys "pageout_cluster_io_us" dur
    end;
    cleaned
  in
  trace_pageout
  @@
  match obj.Vm_object.kind with
  | Vm_object.Vnode vn -> (
      match
        Bsd_sys.retry_transient sys (fun () ->
            Vfs.write_pages (Bsd_sys.vfs sys) vn ~start_page:page.owner_offset
              ~srcs:[ page ])
      with
      | Ok () ->
          (* The file just changed under any swapcache copy of this page. *)
          Swap.Swaptier.cache_invalidate (Bsd_sys.swapdev sys)
            ~vid:vn.Vfs.Vnode.vid ~pgno:page.owner_offset;
          true
      | Error _ -> false)
  | Vm_object.Anon -> (
      let swapdev = Bsd_sys.swapdev sys in
      let stats = Bsd_sys.stats sys in
      let pgno = page.owner_offset in
      let slot =
        match Hashtbl.find_opt obj.Vm_object.swslots pgno with
        | Some slot -> Some slot
        | None ->
            let fresh = Swap.Swaptier.alloc_slots swapdev ~n:1 in
            (match fresh with
            | Some slot -> Hashtbl.replace obj.Vm_object.swslots pgno slot
            | None -> ());
            fresh
      in
      match slot with
      | Some slot -> (
          (* BSD VM keeps fixed slots, but bad media still forces a move:
             [assign] rebinds this page's slot when write_resilient
             blacklists the old one. *)
          let assign fresh =
            (match Hashtbl.find_opt obj.Vm_object.swslots pgno with
            | Some old when old <> fresh ->
                Swap.Swaptier.free_slots swapdev ~slot:old ~n:1;
                Physmem.note_reassign (Bsd_sys.physmem sys) page
                  ~dist:(abs (fresh - old))
            | Some _ | None -> ());
            Hashtbl.replace obj.Vm_object.swslots pgno fresh
          in
          match
            Swap.Swaptier.write_resilient swapdev
              ~retries:sys.Bsd_sys.io_retries
              ~backoff_us:sys.Bsd_sys.io_backoff_us ~slot ~assign
              ~pages:[ page ]
          with
          | Swap.Swaptier.Written | Swap.Swaptier.Reassigned _ -> true
          | Swap.Swaptier.No_space _ | Swap.Swaptier.Failed _ -> false)
      | None ->
          stats.Sim.Stats.swap_full_events <-
            stats.Sim.Stats.swap_full_events + 1;
          false (* swap exhausted *))

let run sys =
  (* The pagedaemon is logically its own thread: its lock is acquired as
     a root so the registry does not draw order edges from whatever the
     faulting context held when the allocator kicked the daemon. *)
  let ls = Bsd_sys.locks sys in
  let dl = Sim.Lockstat.instance ls ~cls:"pdaemon" ~id:0 in
  Sim.Lockstat.acquire_root ls dl ~mode:Sim.Lockstat.Write;
  Fun.protect ~finally:(fun () -> Sim.Lockstat.release ls dl) @@ fun () ->
  (* The scan span opens before the drain pass so device-death migration
     shows up as time attributed to the pagedaemon on the critical path. *)
  let scan_span = Bsd_sys.span_start sys ~subsys:"pdaemon" "scan" in
  (* A dying or swapped-off device drains through the pagedaemon: migrate
     its readable slots to healthy tiers before reclaiming anything new. *)
  Swap.Swaptier.run_drain (Bsd_sys.swapdev sys);
  let physmem = Bsd_sys.physmem sys in
  let target = Physmem.freetarg physmem in
  let t0 = Sim.Simclock.now (Bsd_sys.clock sys) in
  let free0 = Physmem.free_count physmem in
  let scan (page : Physmem.Page.t) =
    if Physmem.free_count physmem < target then
      if page.busy || page.wire_count > 0 || page.loan_count > 0 then ()
      else if page.referenced then Physmem.activate physmem page
      else
        match page.owner with
        | Vm_object.Obj_page obj ->
            let has_backing_copy =
              match obj.Vm_object.kind with
              | Vm_object.Vnode _ -> not page.dirty
              | Vm_object.Anon ->
                  (not page.dirty)
                  && Hashtbl.mem obj.Vm_object.swslots page.owner_offset
            in
            if has_backing_copy then begin
              (* Clean vnode page about to be dropped: spill a copy to
                 the swapcache so a re-fault is a fast-tier read. *)
              (match obj.Vm_object.kind with
              | Vm_object.Vnode vn when not page.dirty ->
                  Swap.Swaptier.cache_put (Bsd_sys.swapdev sys)
                    ~vid:vn.Vfs.Vnode.vid ~pgno:page.owner_offset ~page
              | _ -> ());
              reclaim sys page
            end
            else if pageout_one sys obj page then reclaim sys page
            else
              (* Could not be cleaned (swap full, dead media): back to the
                 active queue so the inactive queue's depth keeps meaning
                 "reclaimable" to the deactivation heuristic. *)
              Physmem.activate physmem page
        | _ -> assert false
  in
  List.iter scan (Physmem.inactive_pages physmem);
  if Physmem.free_count physmem < target then begin
    let need =
      2 * (target - Physmem.free_count physmem) - Physmem.inactive_count physmem
    in
    let moved = ref 0 in
    List.iter
      (fun (page : Physmem.Page.t) ->
        if
          !moved < need && (not page.busy) && page.wire_count = 0
          && page.loan_count = 0
        then begin
          if page.referenced then page.referenced <- false
          else begin
            Pmap.page_remove_all (Bsd_sys.pmap_ctx sys) page;
            Physmem.deactivate physmem page;
            incr moved
          end
        end)
      (Physmem.active_pages physmem)
  end;
  Bsd_sys.span_finish sys scan_span
    ~detail:
      [
        ("free_before", string_of_int free0);
        ("free_after", string_of_int (Physmem.free_count physmem));
      ]
    ();
  if Bsd_sys.tracing sys then
    Bsd_sys.trace sys ~subsys:Sim.Hist.Pdaemon ~ts:t0
      ~dur:(Sim.Simclock.now (Bsd_sys.clock sys) -. t0)
      ~detail:
        [
          ("free_before", string_of_int free0);
          ("free_after", string_of_int (Physmem.free_count physmem));
          ("target", string_of_int target);
        ]
      "scan"

let install sys = Physmem.set_pagedaemon (Bsd_sys.physmem sys) (fun () -> run sys)

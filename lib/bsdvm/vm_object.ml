(** BSD VM memory objects, with shadow-object chains (paper §5.1).

    A stand-alone structure owned by the VM system.  Copy-on-write is
    expressed by {e shadow objects}: anonymous objects holding the modified
    pages of the object they shadow.  Page lookup walks the chain; the
    complex {!collapse} operation tries to shorten chains and reclaim
    redundant pages after the fact — it cannot prevent the leaks from
    forming (§5.3), which the leak audit in the facade demonstrates.

    A vnode-backed object additionally drags along the separately-allocated
    pager structures ([vm_pager] + [vn_pager]) and a pager hash-table entry
    (paper Figure 4); we charge those allocations and probes. *)

type kind = Vnode of Vfs.Vnode.t | Anon

type t = {
  id : int;
  mutable refs : int;  (** map references + references from shadowing objects *)
  pages : (int, Physmem.Page.t) Hashtbl.t;
  mutable shadow : t option;  (** the object this one shadows *)
  mutable shadow_offset : int;  (** our offset o maps to shadow offset o + shadow_offset *)
  mutable shadow_count : int;  (** number of objects directly shadowing us *)
  kind : kind;
  mutable cached : bool;  (** resting in the VM object cache *)
  swslots : (int, int) Hashtbl.t;  (** page offset -> swap slot (anonymous paging) *)
  mutable has_vref : bool;
  mutable lru_node : t Sim.Dlist.node option;
  mutable dead : bool;
  sys_uid : int;
  okey : Physmem.Lookup.okey;
      (* lockless-lookup identity; insert/remove publish/revoke through it *)
}

type Physmem.Page.tag += Obj_page of t

(* Every live anonymous object, for the swap-leak audit.  Keyed by the
   globally-unique object id; filtered per system via [sys_uid]. *)
let anon_registry : (int, t) Hashtbl.t = Hashtbl.create 64

let live_anon_objects ~sys_uid =
  Hashtbl.fold
    (fun _ o acc -> if o.sys_uid = sys_uid then o :: acc else acc)
    anon_registry []

let alloc_bare sys kind =
  let stats = Bsd_sys.stats sys in
  stats.Sim.Stats.objects_allocated <- stats.Sim.Stats.objects_allocated + 1;
  Bsd_sys.charge sys (Bsd_sys.costs sys).Sim.Cost_model.object_alloc;
  let obj =
    {
      id = Bsd_sys.fresh_id sys;
      refs = 1;
      pages = Hashtbl.create 8;
      shadow = None;
      shadow_offset = 0;
      shadow_count = 0;
      kind;
      cached = false;
      swslots = Hashtbl.create 8;
      has_vref = false;
      lru_node = None;
      dead = false;
      sys_uid = sys.Bsd_sys.uid;
      okey = Physmem.Lookup.okey (Bsd_sys.physmem sys);
    }
  in
  (match kind with
  | Anon -> Hashtbl.replace anon_registry obj.id obj
  | Vnode _ -> ());
  obj

(* A vnode object also needs a vm_pager, a vn_pager and a pager-hash
   insertion — three allocations plus a hash operation where UVM needs
   none (paper Figure 4). *)
let alloc_vnode_object sys vn =
  let obj = alloc_bare sys (Vnode vn) in
  let stats = Bsd_sys.stats sys in
  stats.Sim.Stats.pager_structs_allocated <-
    stats.Sim.Stats.pager_structs_allocated + 2;
  Bsd_sys.charge_struct_alloc sys;
  Bsd_sys.charge_struct_alloc sys;
  stats.Sim.Stats.hash_lookups <- stats.Sim.Stats.hash_lookups + 1;
  Bsd_sys.charge sys (Bsd_sys.costs sys).Sim.Cost_model.hash_lookup;
  Vfs.vref (Bsd_sys.vfs sys) vn;
  obj.has_vref <- true;
  obj

let alloc_anon_object sys = alloc_bare sys Anon

(* Allocate a shadow object on top of [backing]; takes over the caller's
   reference on [backing]. *)
let alloc_shadow sys ~backing ~offset =
  let obj = alloc_bare sys Anon in
  (* Interposing a shadow object is far more than a bare allocation:
     copy-object bookkeeping, queue insertion, pager preparation (the gap
     between the paper's 48us private and 24us shared read faults). *)
  Bsd_sys.charge sys (3.0 *. (Bsd_sys.costs sys).Sim.Cost_model.object_alloc);
  let stats = Bsd_sys.stats sys in
  stats.Sim.Stats.shadow_objects_allocated <-
    stats.Sim.Stats.shadow_objects_allocated + 1;
  obj.shadow <- Some backing;
  obj.shadow_offset <- offset;
  backing.shadow_count <- backing.shadow_count + 1;
  obj

let reference obj = obj.refs <- obj.refs + 1

let find_page obj ~pgno = Hashtbl.find_opt obj.pages pgno

let insert_page obj ~pgno (page : Physmem.Page.t) =
  assert (not (Hashtbl.mem obj.pages pgno));
  page.owner <- Obj_page obj;
  page.owner_offset <- pgno;
  Hashtbl.replace obj.pages pgno page;
  Physmem.Lookup.publish obj.okey ~pgno page

let remove_page obj ~pgno =
  Physmem.Lookup.revoke obj.okey ~pgno;
  Hashtbl.remove obj.pages pgno
let resident_count obj = Hashtbl.length obj.pages

let dirty_pages obj =
  Hashtbl.fold
    (fun _ (p : Physmem.Page.t) acc -> if p.dirty then p :: acc else acc)
    obj.pages []

let chain_length obj =
  let rec go n = function None -> n | Some o -> go (n + 1) o.shadow in
  go 1 obj.shadow

(* Release every resource the object holds except its shadow reference
   (the caller handles chain unreferencing). *)
let free_resources sys obj =
  let physmem = Bsd_sys.physmem sys in
  let ctx = Bsd_sys.pmap_ctx sys in
  Hashtbl.iter
    (fun pgno (page : Physmem.Page.t) ->
      Physmem.Lookup.revoke obj.okey ~pgno;
      Pmap.page_remove_all ctx page;
      if page.wire_count > 0 then invalid_arg "Vm_object: freeing wired page";
      Physmem.free_page physmem page)
    obj.pages;
  Hashtbl.reset obj.pages;
  Hashtbl.iter
    (fun _ slot -> Swap.Swaptier.free_slots (Bsd_sys.swapdev sys) ~slot ~n:1)
    obj.swslots;
  Hashtbl.reset obj.swslots;
  (match obj.kind with
  | Vnode vn ->
      Swap.Swaptier.cache_invalidate_obj (Bsd_sys.swapdev sys)
        ~vid:vn.Vfs.Vnode.vid;
      if obj.has_vref then begin
        obj.has_vref <- false;
        Vfs.vrele (Bsd_sys.vfs sys) vn
      end
  | Anon -> ());
  Hashtbl.remove anon_registry obj.id;
  obj.dead <- true

(* Walk the shadow chain looking for the page at [off] (offset within
   [obj]).  Pages on swap are brought in (one I/O each — BSD VM does not
   cluster).  Returns the owning object, the offset within it, the page,
   and the chain depth at which it was found; [Error Pager_error] when the
   pagein fails beyond the retry budget. *)
let rec find_in_chain sys obj ~off ~depth =
  Bsd_sys.charge sys (Bsd_sys.costs sys).Sim.Cost_model.object_search;
  let fail_pagein page =
    Physmem.free_page (Bsd_sys.physmem sys) page;
    let stats = Bsd_sys.stats sys in
    stats.Sim.Stats.pageins_failed <- stats.Sim.Stats.pageins_failed + 1;
    Error Vmiface.Vmtypes.Pager_error
  in
  (* Every pagein here moves exactly one page; [pager] says which backing
     store it came from, mirroring UVM's pagein events. *)
  let trace_pagein ~span ~t0 ~pager ok =
    Bsd_sys.span_finish sys span
      ~detail:[ ("pager", pager); ("result", if ok then "ok" else "error") ]
      ();
    if Bsd_sys.tracing sys then begin
      let dur = Sim.Simclock.now (Bsd_sys.clock sys) -. t0 in
      Bsd_sys.trace sys ~subsys:Sim.Hist.Pager ~ts:t0 ~dur
        ~detail:
          [
            ("pager", pager);
            ("pages", "1");
            ("result", if ok then "ok" else "error");
          ]
        "pagein";
      Bsd_sys.observe sys "pagein_us" dur
    end
  in
  match find_page obj ~pgno:off with
  | Some page -> Ok (Some (obj, off, page, depth))
  | None -> (
      match Hashtbl.find_opt obj.swslots off with
      | Some slot -> (
          (* Swap pagein may draw on the kernel reserve: it is the path
             that turns swap slots back into reclaimable frames. *)
          let page =
            Physmem.alloc (Bsd_sys.physmem sys) ~privileged:true
              ~owner:(Obj_page obj) ~offset:off ()
          in
          (* The frame allocation may have driven the pagedaemon, whose
             tier drain can migrate this very slot to a healthy device
             and free the old one: re-read the binding before the I/O. *)
          let slot =
            match Hashtbl.find_opt obj.swslots off with
            | Some s -> s
            | None -> slot
          in
          let span = Bsd_sys.span_start sys ~subsys:"pager" "pagein" in
          let t0 = Sim.Simclock.now (Bsd_sys.clock sys) in
          let r =
            Swap.Swaptier.read_resilient (Bsd_sys.swapdev sys)
              ~retries:sys.Bsd_sys.io_retries
              ~backoff_us:sys.Bsd_sys.io_backoff_us ~slot ~dst:page
          in
          trace_pagein ~span ~t0 ~pager:"swap" (Result.is_ok r);
          match r with
          | Ok () ->
              Physmem.note_fault_in (Bsd_sys.physmem sys) page
                ~fill:Sim.Lifecycle.Fill_pagein;
              insert_page obj ~pgno:off page;
              Physmem.activate (Bsd_sys.physmem sys) page;
              Ok (Some (obj, off, page, depth))
          | Error _ -> fail_pagein page)
      | None -> (
          match obj.kind with
          | Vnode vn -> (
              (* Bottom of a file chain: read exactly one page (paper §1.1:
                 BSD VM I/O is one page at a time).  A swapcache copy
                 spilled at reclaim time serves the re-fault from the fast
                 swap tier instead. *)
              let page =
                Physmem.alloc (Bsd_sys.physmem sys) ~owner:(Obj_page obj)
                  ~offset:off ()
              in
              if
                Swap.Swaptier.cache_lookup (Bsd_sys.swapdev sys)
                  ~vid:vn.Vfs.Vnode.vid ~pgno:off ~dst:page
              then begin
                Physmem.note_fault_in (Bsd_sys.physmem sys) page
                  ~fill:Sim.Lifecycle.Fill_pagein;
                insert_page obj ~pgno:off page;
                Physmem.activate (Bsd_sys.physmem sys) page;
                Ok (Some (obj, off, page, depth))
              end
              else
                let span = Bsd_sys.span_start sys ~subsys:"pager" "pagein" in
                let t0 = Sim.Simclock.now (Bsd_sys.clock sys) in
                let r =
                  Bsd_sys.retry_transient sys (fun () ->
                      Vfs.read_pages (Bsd_sys.vfs sys) vn ~start_page:off
                        ~dsts:[ page ])
                in
                trace_pagein ~span ~t0 ~pager:"vnode" (Result.is_ok r);
                match r with
                | Ok () ->
                    Physmem.note_fault_in (Bsd_sys.physmem sys) page
                      ~fill:Sim.Lifecycle.Fill_file;
                    insert_page obj ~pgno:off page;
                    Physmem.activate (Bsd_sys.physmem sys) page;
                    Ok (Some (obj, off, page, depth))
                | Error _ -> fail_pagein page)
          | Anon -> (
              match obj.shadow with
              | Some backing ->
                  find_in_chain sys backing ~off:(off + obj.shadow_offset)
                    ~depth:(depth + 1)
              | None -> Ok None)))

(* The collapse operation (paper §5.1): try to merge or bypass [obj]'s
   backing object.  Runs in a loop, charging per attempt; succeeds only
   when the backing object is an unshared anonymous object. *)
let rec collapse sys obj =
  let stats = Bsd_sys.stats sys in
  match obj.shadow with
  | None -> ()
  | Some backing ->
      stats.Sim.Stats.collapse_attempts <- stats.Sim.Stats.collapse_attempts + 1;
      (* Scanning the backing object's pages costs time proportional to
         its residency. *)
      Bsd_sys.charge sys
        ((Bsd_sys.costs sys).Sim.Cost_model.object_search
        *. float_of_int (1 + resident_count backing));
      if backing.kind <> Anon then ()
      else if backing.refs = 1 && backing.shadow_count = 1 then begin
        (* Merge: pull the backing object's pages and swap slots up,
           discarding the ones we already obscure (redundant copies — the
           after-the-fact leak repair). *)
        let physmem = Bsd_sys.physmem sys in
        let ctx = Bsd_sys.pmap_ctx sys in
        let moved = ref [] in
        Hashtbl.iter
          (fun boff (page : Physmem.Page.t) ->
            let our_off = boff - obj.shadow_offset in
            if our_off >= 0 && find_page obj ~pgno:our_off = None then
              moved := (boff, our_off, page) :: !moved
            else begin
              Pmap.page_remove_all ctx page;
              Physmem.free_page physmem page
            end)
          backing.pages;
        Hashtbl.reset backing.pages;
        List.iter
          (fun (_boff, our_off, page) -> insert_page obj ~pgno:our_off page)
          !moved;
        let slot_moves = ref [] in
        Hashtbl.iter
          (fun boff slot ->
            let our_off = boff - obj.shadow_offset in
            if
              our_off >= 0
              && find_page obj ~pgno:our_off = None
              && not (Hashtbl.mem obj.swslots our_off)
            then slot_moves := (our_off, slot) :: !slot_moves
            else Swap.Swaptier.free_slots (Bsd_sys.swapdev sys) ~slot ~n:1)
          backing.swslots;
        Hashtbl.reset backing.swslots;
        List.iter
          (fun (our_off, slot) -> Hashtbl.replace obj.swslots our_off slot)
          !slot_moves;
        obj.shadow <- backing.shadow;
        obj.shadow_offset <- obj.shadow_offset + backing.shadow_offset;
        backing.shadow <- None;
        backing.dead <- true;
        Hashtbl.remove anon_registry backing.id;
        stats.Sim.Stats.collapse_successes <-
          stats.Sim.Stats.collapse_successes + 1;
        collapse sys obj
      end
      else if
        backing.refs > 1 && resident_count backing = 0
        && Hashtbl.length backing.swslots = 0
      then begin
        (* Bypass an empty intermediate object. *)
        (match backing.shadow with
        | Some grand ->
            grand.refs <- grand.refs + 1;
            grand.shadow_count <- grand.shadow_count + 1;
            obj.shadow <- Some grand;
            obj.shadow_offset <- obj.shadow_offset + backing.shadow_offset
        | None -> obj.shadow <- None);
        backing.shadow_count <- backing.shadow_count - 1;
        backing.refs <- backing.refs - 1;
        stats.Sim.Stats.collapse_successes <-
          stats.Sim.Stats.collapse_successes + 1;
        collapse sys obj
      end

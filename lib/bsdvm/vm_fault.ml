(** The BSD VM page-fault routine.

    Most of its work is object-chain management (paper §5.4): allocate a
    shadow object when needs-copy is set — even on read faults of private
    mappings, where it is unnecessary (paper Table 3 note) — then walk the
    shadow chain for the page, copy it up on write, and attempt a collapse.
    There is no fault-ahead: exactly one page is mapped per fault
    (paper Table 2). *)

module Vmtypes = Vmiface.Vmtypes
open Vm_map

(* Clear needs-copy by interposing a shadow object between the entry and
   its current object (paper Figure 3, upper row). *)
let clear_needs_copy sys entry =
  let backing =
    match entry.obj with
    | Some o -> o
    | None -> invalid_arg "vm_fault: needs-copy entry without object"
  in
  let shadow = Vm_object.alloc_shadow sys ~backing ~offset:entry.objoff in
  entry.obj <- Some shadow;
  entry.objoff <- 0;
  entry.needs_copy <- false

(* mlock wirings are recorded in [entry.wired] and carried by the mapped
   frame's wire count.  When a fault resolves to a different frame than
   the one currently mapped (COW copy-up, replacement after reclaim),
   those wirings must travel with the translation — or a later munlock
   unwires a frame that no longer carries them.  Same discipline as
   UVM's fault routine. *)
let pte_snapshot map ~vpn =
  match Pmap.lookup map.Vm_map.pmap ~vpn with
  | Some pte -> Some (pte.Pmap.page, pte.Pmap.wired)
  | None -> None

(* [entry.wired] also counts the wiring this very fault establishes when
   it is a wire-fault (mark_wired runs before wire_pages), but that one
   has not been applied to any frame yet: only previously established
   wirings move. *)
let wirings_to_move (entry : Vm_map.entry) ~prev ~page ~wire =
  match prev with
  | Some (old_page, true) when old_page != page ->
      max 0 (entry.Vm_map.wired - if wire then 1 else 0)
  | Some _ | None -> 0

let unwire_displaced sys ~prev ~transfer =
  match prev with
  | Some (old_page, _) ->
      for _ = 1 to transfer do
        Physmem.unwire (Bsd_sys.physmem sys) old_page
      done
  | None -> ()

(* Install a resolved translation, re-applying moved wirings to the new
   frame and preserving an existing wired flag on a same-frame re-enter
   even when the fault itself is not a wiring one. *)
let enter_resolved map ~vpn ~page ~prot ~wire ~prev ~transfer =
  let keep =
    match prev with
    | Some (old_page, wired) -> wired && old_page == page
    | None -> false
  in
  Pmap.enter map.Vm_map.pmap ~vpn ~page ~prot
    ~wired:(wire || keep || transfer > 0);
  for _ = 1 to transfer do
    Physmem.wire (Bsd_sys.physmem map.Vm_map.sys) page
  done

let fault map ~vpn ~access ~wire =
  let sys = map.sys in
  let stats = Bsd_sys.stats sys in
  let costs = Bsd_sys.costs sys in
  let t0 = Sim.Simclock.now (Bsd_sys.clock sys) in
  Bsd_sys.charge sys costs.Sim.Cost_model.fault_entry;
  stats.Sim.Stats.faults <- stats.Sim.Stats.faults + 1;
  let span = Bsd_sys.span_start sys ~subsys:"fault" "fault" in
  Vm_map.lock map;
  (* Every exit goes through [finish]: one place to record the fault-path
     span, with the same event shape as UVM's so traces compare. *)
  let finish r =
    Vm_map.unlock map;
    let result =
      match r with
      | Ok () -> "ok"
      | Error e -> Vmtypes.string_of_fault_error e
    in
    Bsd_sys.span_finish sys span
      ~detail:[ ("vpn", string_of_int vpn); ("result", result) ]
      ();
    if Bsd_sys.tracing sys then begin
      let dur = Sim.Simclock.now (Bsd_sys.clock sys) -. t0 in
      Bsd_sys.trace sys ~subsys:Sim.Hist.Fault ~ts:t0 ~dur
        ~detail:
          [
            ("vpn", string_of_int vpn);
            ( "access",
              match access with Vmtypes.Read -> "read" | Vmtypes.Write -> "write"
            );
            ("result", result);
          ]
        "fault";
      Bsd_sys.observe sys "fault_us" dur
    end;
    r
  in
  match Vm_map.lookup map ~vpn with
  | None -> finish (Error Vmtypes.No_entry)
  | Some entry ->
      let write =
        access = Vmtypes.Write || (wire && entry.prot.Pmap.Prot.w && entry.cow)
      in
      let wanted =
        if write then Pmap.Prot.rw
        else { Pmap.Prot.r = true; w = false; x = false }
      in
      if not (Pmap.Prot.subsumes entry.prot wanted) then
        finish (Error Vmtypes.Prot_denied)
      else begin
        (* BSD clears needs-copy on *any* fault of a COW mapping, paying
           for a shadow object even when only reading. *)
        if entry.cow && entry.needs_copy then clear_needs_copy sys entry;
        let first_obj =
          match entry.obj with
          | Some o -> o
          | None -> invalid_arg "vm_fault: BSD entry without object"
        in
        let off = entry.objoff + (vpn - entry.spage) in
        let physmem = Bsd_sys.physmem sys in
        (* Taken before resolution: a wired translation survives any
           pageout the resolution's allocations may trigger, and only
           wired previous frames matter to the transfer logic. *)
        let prev = pte_snapshot map ~vpn in
        (* The top object's lock is held across chain resolution, nested
           inside the map lock — the registry learns the map -> object
           order (and object -> pagequeue/swap below it) from this. *)
        let locked f =
          let ls = Bsd_sys.locks sys in
          let l =
            Sim.Lockstat.instance ls ~cls:"object" ~id:first_obj.Vm_object.id
          in
          Sim.Lockstat.acquire ls l
            ~mode:(if write then Sim.Lockstat.Write else Sim.Lockstat.Read);
          Fun.protect ~finally:(fun () -> Sim.Lockstat.release ls l) f
        in
        let resolution =
          (* Both pagein I/O errors and RAM exhaustion surface as typed
             failures, mirroring UVM's fault routine. *)
          try
            (* Lockless fast path (DESIGN.md §16): a validated hit on
               the heuristic page hash is exactly the depth-0 resident
               case — the page lives in the top object, where write
               access needs no copy-up — so the object lock and the
               chain walk are skipped.  Wire faults keep the locked
               path. *)
            match
              if wire then None
              else Physmem.Lookup.find first_obj.Vm_object.okey ~pgno:off
            with
            | Some page ->
                if write then page.Physmem.Page.dirty <- true;
                Physmem.activate physmem page;
                let transfer = wirings_to_move entry ~prev ~page ~wire in
                unwire_displaced sys ~prev ~transfer;
                enter_resolved map ~vpn ~page ~prot:entry.prot ~wire ~prev
                  ~transfer;
                Ok page
            | None -> (
            locked @@ fun () ->
            match Vm_object.find_in_chain sys first_obj ~off ~depth:0 with
            | Error _ as e -> e
            | Ok (Some (owner, _, page, depth)) ->
                if depth = 0 then begin
                  (* Page already in the top object: ours to use.
                     Re-publish in case a direct-mapped collision
                     evicted its lookup slot since insert. *)
                  if write then page.Physmem.Page.dirty <- true;
                  Physmem.activate physmem page;
                  Physmem.Lookup.publish first_obj.Vm_object.okey ~pgno:off
                    page;
                  let transfer = wirings_to_move entry ~prev ~page ~wire in
                  unwire_displaced sys ~prev ~transfer;
                  enter_resolved map ~vpn ~page ~prot:entry.prot ~wire ~prev
                    ~transfer;
                  Ok page
                end
                else if write then begin
                  (* Copy the page up to the first object, then try to
                     collapse the chain (extra work on every COW fault). *)
                  let fresh =
                    Physmem.alloc physmem
                      ~owner:(Vm_object.Obj_page first_obj) ~offset:off ()
                  in
                  Physmem.copy_data physmem ~src:page ~dst:fresh;
                  Physmem.note_fault_in physmem fresh
                    ~fill:Sim.Lifecycle.Fill_cow;
                  stats.Sim.Stats.cow_copies <- stats.Sim.Stats.cow_copies + 1;
                  (* The copy-up changes what any map entry whose chain
                     starts at [first_obj] resolves for this offset.  Other
                     processes sharing [first_obj] may still map the deeper
                     page — remove those translations so they refault and
                     find the copy.  Unrelated mappers of the deeper page
                     just refault and re-resolve the same page; wired
                     translations are skipped (they carry the wire count
                     and their own chains still resolve the deeper page). *)
                  Pmap.page_remove_unwired (Bsd_sys.pmap_ctx sys) page;
                  Vm_object.insert_page first_obj ~pgno:off fresh;
                  fresh.Physmem.Page.dirty <- true;
                  Physmem.activate physmem fresh;
                  let transfer =
                    wirings_to_move entry ~prev ~page:fresh ~wire
                  in
                  unwire_displaced sys ~prev ~transfer;
                  enter_resolved map ~vpn ~page:fresh ~prot:entry.prot ~wire
                    ~prev ~transfer;
                  Vm_object.collapse sys first_obj;
                  ignore owner;
                  Ok fresh
                end
                else begin
                  (* Read from an underlying object: map read-only so a later
                     write still faults. *)
                  Physmem.activate physmem page;
                  let transfer = wirings_to_move entry ~prev ~page ~wire in
                  unwire_displaced sys ~prev ~transfer;
                  enter_resolved map ~vpn ~page
                    ~prot:(Pmap.Prot.remove_write entry.prot)
                    ~wire ~prev ~transfer;
                  Ok page
                end
            | Ok None ->
                (* Chain exhausted: zero-fill in the first object. *)
                let fresh =
                  Physmem.alloc physmem ~zero:true
                    ~owner:(Vm_object.Obj_page first_obj) ~offset:off ()
                in
                Physmem.note_fault_in physmem fresh
                  ~fill:Sim.Lifecycle.Fill_zero;
                Vm_object.insert_page first_obj ~pgno:off fresh;
                if write then fresh.Physmem.Page.dirty <- true;
                Physmem.activate physmem fresh;
                let transfer = wirings_to_move entry ~prev ~page:fresh ~wire in
                unwire_displaced sys ~prev ~transfer;
                enter_resolved map ~vpn ~page:fresh ~prot:entry.prot ~wire
                  ~prev ~transfer;
                Ok fresh)
          with Physmem.Out_of_pages -> Error Vmtypes.Out_of_memory
        in
        match resolution with
        | Error e -> finish (Error e)
        | Ok page ->
            Physmem.note_demand_fault physmem page;
            if wire then begin
              Sim.Lifecycle.note_fill
                (Physmem.lifecycle physmem)
                Sim.Lifecycle.Fill_wire;
              Physmem.wire physmem page
            end;
            page.Physmem.Page.referenced <- true;
            finish (Ok ())
      end

(** The BSD VM baseline, assembled.

    [Bsdvm.Sys] implements {!Vmiface.Vm_sig.VM_SYS} with the 4.4BSD
    behaviours the paper measures against: two-step mapping with its
    security window, single-phase unmap, shadow-object chains with
    collapse, the hundred-object cache, per-page I/O, map-fragmenting
    wiring, and no fault-ahead. *)

module Object = Vm_object
module Objcache = Vm_objcache
module Map = Vm_map
module Fault = Vm_fault
module Pageout = Vm_pageout
module State = Bsd_sys
module Machine = Vmiface.Machine
module Vmtypes = Vmiface.Vmtypes
open Vmtypes

let va_lo = 16
let va_hi = 1 lsl 20

module Sys = struct
  let name = "BSD VM"

  type vmspace = { vid : int; map : Vm_map.t; pmap : Pmap.t }

  type sys = {
    bsys : Bsd_sys.t;
    cache : Vm_objcache.t;
    kernel : vmspace;
    vmspaces : (int, vmspace) Hashtbl.t;
  }

  let machine sys = sys.bsys.Bsd_sys.mach
  let kernel_vmspace sys = sys.kernel

  let make_vmspace sys ~kernel =
    let bsys = sys.bsys in
    let pmap = Pmap.create (Bsd_sys.pmap_ctx bsys) in
    let vm =
      {
        vid = Bsd_sys.fresh_id bsys;
        map =
          Vm_map.create bsys ~cache:sys.cache ~pmap ~lo:va_lo ~hi:va_hi ~kernel;
        pmap;
      }
    in
    Hashtbl.replace sys.vmspaces vm.vid vm;
    vm

  (* Tier drain: move every swap slot living on an offline device to a
     healthy tier.  Only anonymous objects hold swap slots in BSD VM, and
     all of them — shadows included — are in the anon registry. *)
  let drain_swap bsys =
    let swap = Bsd_sys.swapdev bsys in
    List.iter
      (fun (obj : Vm_object.t) ->
        let moves =
          Hashtbl.fold
            (fun pgno slot acc ->
              if Swap.Swaptier.slot_needs_drain swap ~slot then
                (pgno, slot) :: acc
              else acc)
            obj.Vm_object.swslots []
        in
        List.iter
          (fun (pgno, slot) ->
            match Swap.Swaptier.migrate_slot swap ~slot with
            | Some fresh ->
                Hashtbl.replace obj.Vm_object.swslots pgno fresh;
                Swap.Swaptier.free_slots swap ~slot ~n:1
            | None -> ())
          moves)
      (Vm_object.live_anon_objects ~sys_uid:bsys.Bsd_sys.uid)

  let boot ?config () =
    let mach = Machine.boot ?config () in
    Machine.set_label mach name;
    let bsys = Bsd_sys.create mach in
    Swap.Swaptier.set_drain_hook (Bsd_sys.swapdev bsys)
      (Some (fun () -> drain_swap bsys));
    Vm_pageout.install bsys;
    let cache = Vm_objcache.create bsys in
    let kpmap = Pmap.create (Bsd_sys.pmap_ctx bsys) in
    let kernel =
      {
        vid = Bsd_sys.fresh_id bsys;
        map = Vm_map.create bsys ~cache ~pmap:kpmap ~lo:va_lo ~hi:va_hi ~kernel:true;
        pmap = kpmap;
      }
    in
    let sys = { bsys; cache; kernel; vmspaces = Hashtbl.create 32 } in
    Hashtbl.replace sys.vmspaces kernel.vid kernel;
    sys

  let new_vmspace sys = make_vmspace sys ~kernel:false

  let clone_entry bsys map (e : Vm_map.entry) =
    (Bsd_sys.stats bsys).Sim.Stats.map_entries_allocated <-
      (Bsd_sys.stats bsys).Sim.Stats.map_entries_allocated + 1;
    Sim.Lifecycle.note_entry_alloc
      (Physmem.lifecycle (Bsd_sys.physmem bsys));
    Bsd_sys.charge_struct_alloc bsys;
    ignore map;
    {
      Vm_map.spage = e.Vm_map.spage;
      epage = e.Vm_map.epage;
      obj = e.Vm_map.obj;
      objoff = e.Vm_map.objoff;
      prot = e.Vm_map.prot;
      maxprot = e.Vm_map.maxprot;
      inh = e.Vm_map.inh;
      advice = e.Vm_map.advice;
      wired = 0;
      cow = e.Vm_map.cow;
      needs_copy = e.Vm_map.needs_copy;
      prev = None;
      next = None;
    }

  let fork sys parent =
    let bsys = sys.bsys in
    Bsd_sys.charge bsys (Bsd_sys.costs bsys).Sim.Cost_model.proc_overhead;
    let pmap = Pmap.create (Bsd_sys.pmap_ctx bsys) in
    let child =
      {
        vid = Bsd_sys.fresh_id bsys;
        map =
          Vm_map.create bsys ~cache:sys.cache ~pmap ~lo:va_lo ~hi:va_hi
            ~kernel:false;
        pmap;
      }
    in
    Vm_map.lock parent.map;
    Vm_map.iter_entries
      (fun e ->
        match e.Vm_map.inh with
        | Inh_none -> ()
        | Inh_shared ->
            (match e.Vm_map.obj with
            | Some o -> Vm_object.reference o
            | None -> ());
            Vm_map.insert_entry_raw child.map (clone_entry bsys child.map e)
        | Inh_copy when e.Vm_map.wired > 0 ->
            (* A wired entry's copy may never be deferred: write-protecting
               the parent would make its next write COW the wired frame into
               a shadow object and remap the parent, stranding the wire
               count on the original page until teardown frees a still-wired
               frame.  Copy the range into a private object for the child
               now — wiring faulted every page in and keeps it off the
               paging queues, so each translation is present and resident —
               and leave the parent untouched. *)
            let physmem = Bsd_sys.physmem bsys in
            let obj = Vm_object.alloc_anon_object bsys in
            let npages = e.Vm_map.epage - e.Vm_map.spage in
            for i = 0 to npages - 1 do
              match Pmap.lookup parent.pmap ~vpn:(e.Vm_map.spage + i) with
              | None -> invalid_arg "vm_fork: wired page not mapped"
              | Some pte ->
                  let fresh_page =
                    Physmem.alloc physmem
                      ~owner:(Vm_object.Obj_page obj) ~offset:i ()
                  in
                  Physmem.copy_data physmem ~src:pte.Pmap.page ~dst:fresh_page;
                  (Bsd_sys.stats bsys).Sim.Stats.cow_copies <-
                    (Bsd_sys.stats bsys).Sim.Stats.cow_copies + 1;
                  Vm_object.insert_page obj ~pgno:i fresh_page;
                  fresh_page.Physmem.Page.dirty <- true;
                  Physmem.activate physmem fresh_page
            done;
            let fresh = clone_entry bsys child.map e in
            fresh.Vm_map.obj <- Some obj;
            fresh.Vm_map.objoff <- 0;
            fresh.Vm_map.cow <- false;
            fresh.Vm_map.needs_copy <- false;
            Vm_map.insert_entry_raw child.map fresh
        | Inh_copy ->
            (* Figure 3 upper row: share the object, set needs-copy on both
               sides, write-protect the parent's view. *)
            (match e.Vm_map.obj with
            | Some o -> Vm_object.reference o
            | None -> ());
            let fresh = clone_entry bsys child.map e in
            fresh.Vm_map.cow <- true;
            fresh.Vm_map.needs_copy <- true;
            e.Vm_map.cow <- true;
            e.Vm_map.needs_copy <- true;
            Pmap.restrict_range parent.pmap ~lo:e.Vm_map.spage
              ~hi:e.Vm_map.epage
              ~prot:(Pmap.Prot.remove_write Pmap.Prot.rwx);
            Vm_map.insert_entry_raw child.map fresh)
      parent.map;
    Vm_map.unlock parent.map;
    Hashtbl.replace sys.vmspaces child.vid child;
    child

  let destroy_vmspace sys vm =
    Vm_map.destroy vm.map;
    Pmap.destroy vm.pmap;
    Hashtbl.remove sys.vmspaces vm.vid

  let map_entry_count vm = Vm_map.entry_count vm.map
  let resident_pages vm = Pmap.resident_count vm.pmap

  (* Overload-policy census of one address space: resident/wired counts
     from the pmap; swap slots by walking every shadow chain this space's
     entries reach (all anonymous swap lives in object swslots tables).
     Shared chains count toward every sharer — the badness score wants
     the footprint a kill could free, and shared backing's best estimate
     is its full size. *)
  let vmspace_usage sys vm =
    let resident = Pmap.resident_count vm.pmap in
    let wired =
      List.fold_left
        (fun acc (_, pte) -> if pte.Pmap.wired then acc + 1 else acc)
        0
        (Pmap.translations vm.pmap)
    in
    let swap = ref 0 in
    let seen = Hashtbl.create 16 in
    let rec chain (obj : Vm_object.t) =
      if not (Hashtbl.mem seen obj.Vm_object.id) then begin
        Hashtbl.replace seen obj.Vm_object.id ();
        swap := !swap + Hashtbl.length obj.Vm_object.swslots;
        match obj.Vm_object.shadow with
        | Some backing -> chain backing
        | None -> ()
      end
    in
    Vm_map.iter_entries
      (fun e -> match e.Vm_map.obj with Some o -> chain o | None -> ())
      vm.map;
    ignore sys;
    { u_resident = resident; u_swap = !swap; u_wired = wired }

  (* Whole-process swapout, eviction half: push every reclaimable resident
     page onto the inactive queue with its translations gone, so the next
     pageout pass swaps the dirty ones out and frees the rest. *)
  let kernel_map_locked sys = Vm_map.is_locked sys.kernel.map

  let deactivate_resident sys vm =
    let physmem = Bsd_sys.physmem sys.bsys in
    let ctx = Bsd_sys.pmap_ctx sys.bsys in
    let count = ref 0 in
    List.iter
      (fun (_, (pte : Pmap.pte)) ->
        let page = pte.Pmap.page in
        if
          (not pte.Pmap.wired)
          && (not page.Physmem.Page.busy)
          && page.Physmem.Page.wire_count = 0
          && page.Physmem.Page.loan_count = 0
        then begin
          Pmap.page_remove_all ctx page;
          Physmem.deactivate physmem page;
          incr count
        end)
      (Pmap.translations vm.pmap);
    !count

  (* The historical two-step mapping: establish with default attributes
     (read-write!), then relock and adjust each non-default attribute.
     Between the steps a read-only mapping is briefly writable — the
     security window of paper §3.1, observable via the probe. *)
  let mmap sys vm ?fixed_at ~npages ~prot ~share source =
    let bsys = sys.bsys in
    let spage =
      match fixed_at with
      | Some vpn -> vpn
      | None -> Vm_map.find_space vm.map ~npages
    in
    let obj, objoff, cow, needs_copy =
      match (source, share) with
      | Zero, Private -> (Vm_object.alloc_anon_object bsys, 0, false, false)
      | Zero, Shared -> (Vm_object.alloc_anon_object bsys, 0, false, false)
      | File (vn, off), Shared ->
          (Vm_objcache.vnode_object bsys sys.cache vn, off, false, false)
      | File (vn, off), Private ->
          (Vm_objcache.vnode_object bsys sys.cache vn, off, true, true)
    in
    let _e =
      Vm_map.insert_default vm.map ~spage ~npages ~obj:(Some obj) ~objoff ~cow
        ~needs_copy
    in
    (match bsys.Bsd_sys.two_step_probe with
    | Some probe -> probe spage
    | None -> ());
    if not (Pmap.Prot.equal prot Pmap.Prot.rw) then
      Vm_map.protect vm.map ~spage ~npages ~prot;
    (match share with
    | Shared -> Vm_map.set_inherit vm.map ~spage ~npages Inh_shared
    | Private -> ());
    spage

  let munmap _sys vm ~vpn ~npages = Vm_map.unmap vm.map ~spage:vpn ~npages

  let mprotect _sys vm ~vpn ~npages prot =
    Vm_map.protect vm.map ~spage:vpn ~npages ~prot

  let minherit _sys vm ~vpn ~npages inh =
    Vm_map.set_inherit vm.map ~spage:vpn ~npages inh

  let madvise _sys vm ~vpn ~npages advice =
    Vm_map.set_advice vm.map ~spage:vpn ~npages advice

  let fault_or_segv vm ~vpn ~access ~wire =
    match Vm_fault.fault vm.map ~vpn ~access ~wire with
    | Ok () -> ()
    | Error error -> raise (Segv { vpn; error })

  let wire_pages vm ~vpn ~npages =
    for v = vpn to vpn + npages - 1 do
      fault_or_segv vm ~vpn:v ~access:Read ~wire:true
    done

  let unwire_pages sys vm ~vpn ~npages =
    let physmem = Bsd_sys.physmem sys.bsys in
    for v = vpn to vpn + npages - 1 do
      match Pmap.lookup vm.pmap ~vpn:v with
      | Some pte -> Physmem.unwire physmem pte.Pmap.page
      | None -> ()
    done

  let mlock _sys vm ~vpn ~npages =
    Vm_map.mark_wired vm.map ~spage:vpn ~npages;
    wire_pages vm ~vpn ~npages

  let munlock sys vm ~vpn ~npages =
    Vm_map.mark_unwired vm.map ~spage:vpn ~npages;
    unwire_pages sys vm ~vpn ~npages

  type wired_buffer = { wb_vpn : int; wb_npages : int }

  (* BSD records sysctl/physio buffer wiring in the process map: the range
     is clipped out of its entry, and the fragmentation persists after
     unwiring (paper §3.2 — the map-entry demand Table 1 measures). *)
  let vslock _sys vm ~vpn ~npages =
    Vm_map.mark_wired vm.map ~spage:vpn ~npages;
    wire_pages vm ~vpn ~npages;
    { wb_vpn = vpn; wb_npages = npages }

  let vsunlock sys vm wb =
    Vm_map.mark_unwired vm.map ~spage:wb.wb_vpn ~npages:wb.wb_npages;
    unwire_pages sys vm ~vpn:wb.wb_vpn ~npages:wb.wb_npages

  (* BSD VM has neither page loanout nor map-entry passing: IPC staging
     always declines and the IPC layer copies (the paper's baseline). *)
  type stage = unit

  let stage_loan _sys _vm ~vpn:_ ~npages:_ = None
  let stage_mexp _sys _vm ~vpn:_ ~npages:_ = None
  let stage_read _sys () ~off:_ ~len:_ = assert false
  let stage_map _sys _vm () = None
  let stage_free _sys () = ()

  let wanted_prot = function
    | Read -> { Pmap.Prot.r = true; w = false; x = false }
    | Write -> Pmap.Prot.rw

  let touch sys vm ~vpn access =
    let bsys = sys.bsys in
    Bsd_sys.charge bsys (Bsd_sys.costs bsys).Sim.Cost_model.mem_access;
    let ok () =
      match Pmap.lookup vm.pmap ~vpn with
      | Some pte -> Pmap.Prot.subsumes pte.Pmap.prot (wanted_prot access)
      | None -> false
    in
    if not (ok ()) then fault_or_segv vm ~vpn ~access ~wire:false;
    Pmap.mark_access vm.pmap ~vpn ~write:(access = Write)

  let access_range sys vm ~vpn ~npages access =
    for v = vpn to vpn + npages - 1 do
      touch sys vm ~vpn:v access
    done

  let page_of sys vm ~vpn access =
    touch sys vm ~vpn access;
    match Pmap.lookup vm.pmap ~vpn with
    | Some pte -> pte.Pmap.page
    | None -> assert false

  let read_bytes sys vm ~addr ~len =
    let page_size = Machine.page_size (machine sys) in
    let out = Bytes.create len in
    let copied = ref 0 in
    while !copied < len do
      let a = addr + !copied in
      let vpn = a / page_size and off = a mod page_size in
      let n = min (len - !copied) (page_size - off) in
      let page = page_of sys vm ~vpn Read in
      Bytes.blit page.Physmem.Page.data off out !copied n;
      copied := !copied + n
    done;
    out

  let write_bytes sys vm ~addr data =
    let page_size = Machine.page_size (machine sys) in
    let len = Bytes.length data in
    let copied = ref 0 in
    while !copied < len do
      let a = addr + !copied in
      let vpn = a / page_size and off = a mod page_size in
      let n = min (len - !copied) (page_size - off) in
      let page = page_of sys vm ~vpn Write in
      Bytes.blit data !copied page.Physmem.Page.data off n;
      page.Physmem.Page.dirty <- true;
      copied := !copied + n
    done

  let msync sys vm ~vpn ~npages =
    let bsys = sys.bsys in
    List.iter
      (fun (e : Vm_map.entry) ->
        match e.Vm_map.obj with
        | Some obj -> (
            match obj.Vm_object.kind with
            | Vm_object.Vnode vn ->
                let lo =
                  e.Vm_map.objoff + (max vpn e.Vm_map.spage - e.Vm_map.spage)
                and hi =
                  e.Vm_map.objoff
                  + (min (vpn + npages) e.Vm_map.epage - e.Vm_map.spage)
                in
                List.iter
                  (fun (p : Physmem.Page.t) ->
                    if p.owner_offset >= lo && p.owner_offset < hi then
                      (* One write per page, as ever.  A failed page stays
                         dirty for a later sync or pageout to retry. *)
                      match
                        Bsd_sys.retry_transient bsys (fun () ->
                            Vfs.write_pages (Bsd_sys.vfs bsys) vn
                              ~start_page:p.owner_offset ~srcs:[ p ])
                      with
                      | Ok () ->
                          (* Any swapcache copy of this page is stale now. *)
                          Swap.Swaptier.cache_invalidate (Bsd_sys.swapdev bsys)
                            ~vid:vn.Vfs.Vnode.vid ~pgno:p.owner_offset
                      | Error _ -> ())
                  (Vm_object.dirty_pages obj)
            | Vm_object.Anon -> ())
        | None -> ())
      (List.filter
         (fun (e : Vm_map.entry) ->
           e.Vm_map.spage < vpn + npages && vpn < e.Vm_map.epage)
         (Vm_map.entries vm.map))

  (* Kernel wired allocations: BSD creates a map entry per allocation and
     records the wiring in the kernel map — two kernel entries per process
     (user structure + page tables), paper §3.2. *)
  let kernel_alloc_wired sys ~npages =
    let vpn =
      mmap sys sys.kernel ~npages ~prot:Pmap.Prot.rw ~share:Private Zero
    in
    Vm_map.mark_wired sys.kernel.map ~spage:vpn ~npages;
    wire_pages sys.kernel ~vpn ~npages;
    vpn

  let kernel_free_wired sys ~vpn ~npages =
    Vm_map.mark_unwired sys.kernel.map ~spage:vpn ~npages;
    unwire_pages sys sys.kernel ~vpn ~npages;
    munmap sys sys.kernel ~vpn ~npages

  (* BSD records the user structure's wiring in the kernel map too, so a
     process swapout/swapin pays map lock/lookup/clip traffic that UVM
     avoids. *)
  let swapout_ustruct sys ~vpn ~npages =
    Vm_map.mark_unwired sys.kernel.map ~spage:vpn ~npages;
    unwire_pages sys sys.kernel ~vpn ~npages

  let swapin_ustruct sys ~vpn ~npages =
    Vm_map.mark_wired sys.kernel.map ~spage:vpn ~npages;
    wire_pages sys.kernel ~vpn ~npages

  (* i386 page-table pages: BSD allocates them from the kernel map and
     records the wiring there too — one more kernel entry per process. *)
  type ptp = { ptp_vpn : int; ptp_npages : int }

  let pmap_alloc_ptp sys ~npages =
    { ptp_vpn = kernel_alloc_wired sys ~npages; ptp_npages = npages }

  let pmap_free_ptp sys ptp =
    kernel_free_wired sys ~vpn:ptp.ptp_vpn ~npages:ptp.ptp_npages

  let swap_slots_in_use sys = Swap.Swaptier.slots_in_use (Bsd_sys.swapdev sys.bsys)

  (* ---- invariant auditor ---------------------------------------------- *)

  (* Gather every object the system can still reach — through map entries,
     down shadow chains, the live-anon registry, and the vnode cache — with
     the number of map entries directly referencing each. *)
  let audit_census sys =
    let objs = Hashtbl.create 64 in
    let rec note (o : Vm_object.t) =
      match Hashtbl.find_opt objs o.Vm_object.id with
      | Some c -> c
      | None ->
          let c = (o, ref 0) in
          Hashtbl.replace objs o.Vm_object.id c;
          (match o.Vm_object.shadow with
          | Some b -> ignore (note b)
          | None -> ());
          c
    in
    Hashtbl.iter
      (fun _ vm ->
        (match Vm_map.check_invariants vm.map with
        | Ok () -> ()
        | Error msg ->
            Check.fail ~system:name ~subsys:Check.Map ~invariant:"map_structure"
              (Printf.sprintf "vmspace %d: %s" vm.vid msg));
        Vm_map.iter_entries
          (fun e ->
            match e.Vm_map.obj with
            | Some o ->
                let _, refs = note o in
                incr refs
            | None ->
                Check.fail ~system:name ~subsys:Check.Map
                  ~invariant:"entry_unbacked"
                  (Printf.sprintf "vmspace %d: entry at %d has no object"
                     vm.vid e.Vm_map.spage))
          vm.map)
      sys.vmspaces;
    List.iter
      (fun o -> ignore (note o))
      (Vm_objcache.anon_objects sys.cache);
    Hashtbl.iter
      (fun _ o -> ignore (note o))
      sys.cache.Vm_objcache.by_vnode;
    objs

  let audit_objects objs =
    (* How many live objects actually shadow each object, to check the
       cached [shadow_count] and the reference counts against. *)
    let shadowers = Hashtbl.create 64 in
    Hashtbl.iter
      (fun _ ((o : Vm_object.t), _) ->
        match o.Vm_object.shadow with
        | Some b ->
            Hashtbl.replace shadowers b.Vm_object.id
              (1
              + Option.value ~default:0
                  (Hashtbl.find_opt shadowers b.Vm_object.id))
        | None -> ())
      objs;
    Hashtbl.iter
      (fun _ ((o : Vm_object.t), entry_refs) ->
        let fail invariant detail =
          Check.fail ~system:name ~subsys:Check.Object ~invariant
            (Printf.sprintf "object %d: %s" o.Vm_object.id detail)
        in
        if o.Vm_object.dead then fail "object_dead" "reachable but dead";
        let nshadowers =
          Option.value ~default:0 (Hashtbl.find_opt shadowers o.Vm_object.id)
        in
        if o.Vm_object.shadow_count <> nshadowers then
          fail "shadow_count"
            (Printf.sprintf "shadow_count=%d but %d live objects shadow it"
               o.Vm_object.shadow_count nshadowers);
        (* Each direct map reference and each shadowing object holds one
           reference; nothing else may. *)
        if o.Vm_object.refs <> !entry_refs + nshadowers then
          fail "object_refs"
            (Printf.sprintf
               "refcount %d but %d map entries + %d shadowers reference it"
               o.Vm_object.refs !entry_refs nshadowers);
        if o.Vm_object.cached then begin
          if o.Vm_object.refs <> 0 then
            fail "cached_referenced"
              (Printf.sprintf "in the object cache with %d references"
                 o.Vm_object.refs);
          match o.Vm_object.kind with
          | Vm_object.Anon -> fail "cached_anon" "anonymous object in the cache"
          | Vm_object.Vnode _ -> ()
        end
        else if o.Vm_object.refs = 0 then
          fail "object_unreferenced" "alive with no references, not cached";
        Hashtbl.iter
          (fun pgno (p : Physmem.Page.t) ->
            (match p.owner with
            | Vm_object.Obj_page o' when o' == o -> ()
            | _ ->
                fail "object_page_owner"
                  (Printf.sprintf "resident page %d at offset %d owned elsewhere"
                     p.id pgno));
            if p.owner_offset <> pgno then
              fail "object_page_offset"
                (Printf.sprintf "page %d thinks offset %d, object says %d" p.id
                   p.owner_offset pgno);
            if p.queue = Physmem.Page.Q_free then
              fail "object_page_free"
                (Printf.sprintf "resident page %d is on the free list" p.id))
          o.Vm_object.pages;
        (* Diff-check the lockless fast path against this locked walk. *)
        Check.check_lookup ~system:name ~okey:o.Vm_object.okey
          ~resident:
            (Hashtbl.fold
               (fun pgno p acc -> (pgno, p) :: acc)
               o.Vm_object.pages []))
      objs

  let audit_swap sys objs =
    let claims = ref [] in
    Hashtbl.iter
      (fun _ ((o : Vm_object.t), _) ->
        Hashtbl.iter
          (fun pgno slot ->
            claims :=
              (Printf.sprintf "obj#%d@%d" o.Vm_object.id pgno, slot) :: !claims)
          o.Vm_object.swslots)
      objs;
    Check.check_swap ~system:name (Bsd_sys.swapdev sys.bsys) ~claims:!claims

  (* A translation must map exactly the frame the fault routine would find:
     the first resident page down the shadow chain, provided no shallower
     copy sits on swap (pageout removes the translations of what it
     evicts). *)
  let audit_pmap sys =
    let rec first_resident (o : Vm_object.t) off =
      match Vm_object.find_page o ~pgno:off with
      | Some p -> Some p
      | None ->
          if Hashtbl.mem o.Vm_object.swslots off then None
          else (
            match o.Vm_object.shadow with
            | Some b -> first_resident b (off + o.Vm_object.shadow_offset)
            | None -> None)
    in
    Hashtbl.iter
      (fun _ vm ->
        let entries = Vm_map.entries vm.map in
        List.iter
          (fun (vpn, (pte : Pmap.pte)) ->
            let fail invariant detail =
              Check.fail ~system:name ~subsys:Check.Pmap ~invariant
                (Printf.sprintf "vmspace %d vpn %d: %s" vm.vid vpn detail)
            in
            match
              List.find_opt
                (fun (e : Vm_map.entry) ->
                  e.Vm_map.spage <= vpn && vpn < e.Vm_map.epage)
                entries
            with
            | None -> fail "pmap_unmapped" "translation outside any map entry"
            | Some e -> (
                if not (Pmap.Prot.subsumes e.Vm_map.prot pte.Pmap.prot) then
                  fail "pmap_prot" "translation grants more than the entry";
                match e.Vm_map.obj with
                | None -> fail "pmap_unbacked" "translation without an object"
                | Some o -> (
                    let off = e.Vm_map.objoff + (vpn - e.Vm_map.spage) in
                    match first_resident o off with
                    | Some p when p == pte.Pmap.page -> ()
                    | Some p ->
                        fail "pmap_vs_object"
                          (Printf.sprintf
                             "maps frame %d but the chain resolves frame %d"
                             pte.Pmap.page.Physmem.Page.id p.Physmem.Page.id)
                    | None ->
                        fail "pmap_stale"
                          (Printf.sprintf
                             "maps frame %d but the chain holds no resident page"
                             pte.Pmap.page.Physmem.Page.id))))
          (Pmap.translations vm.pmap))
      sys.vmspaces

  let audit sys =
    let physmem = Bsd_sys.physmem sys.bsys in
    Check.check_ledger ~system:name physmem;
    Check.check_physmem ~system:name physmem;
    Check.check_smp ~system:name physmem;
    (* No loanout on BSD VM: every frame's loan_count must be zero. *)
    Check.check_loans ~system:name physmem ~claims:[];
    Check.check_pv ~system:name (Bsd_sys.pmap_ctx sys.bsys) physmem;
    let objs = audit_census sys in
    audit_objects objs;
    audit_swap sys objs;
    audit_pmap sys;
    Check.check_lock_order ~system:name (Bsd_sys.locks sys.bsys)

  (* Audit anonymous pages that no lookup path can reach any more — the
     swap-leak pathology of paper §5.3.  For every mapped offset we walk
     the chain exactly as the fault routine would; the first hit is
     reachable, deeper copies of the same offset are not. *)
  let leaked_pages sys =
    let reachable : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
    let rec walk obj off =
      if Hashtbl.mem obj.Vm_object.pages off then
        Hashtbl.replace reachable (obj.Vm_object.id, off) ()
      else
        match obj.Vm_object.shadow with
        | Some backing -> walk backing (off + obj.Vm_object.shadow_offset)
        | None -> ()
    in
    Hashtbl.iter
      (fun _ vm ->
        Vm_map.iter_entries
          (fun e ->
            match e.Vm_map.obj with
            | Some obj ->
                for i = 0 to Vm_map.entry_npages e - 1 do
                  walk obj (e.Vm_map.objoff + i)
                done
            | None -> ())
          vm.map)
      sys.vmspaces;
    let leaked = ref 0 in
    List.iter
      (fun (obj : Vm_object.t) ->
        if not obj.Vm_object.dead then
          Hashtbl.iter
            (fun off (_ : Physmem.Page.t) ->
              if not (Hashtbl.mem reachable (obj.Vm_object.id, off)) then
                incr leaked)
            obj.Vm_object.pages)
      (Vm_objcache.anon_objects sys.cache);
    !leaked
end

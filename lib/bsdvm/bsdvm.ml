(** The BSD VM baseline, assembled.

    [Bsdvm.Sys] implements {!Vmiface.Vm_sig.VM_SYS} with the 4.4BSD
    behaviours the paper measures against: two-step mapping with its
    security window, single-phase unmap, shadow-object chains with
    collapse, the hundred-object cache, per-page I/O, map-fragmenting
    wiring, and no fault-ahead. *)

module Object = Vm_object
module Objcache = Vm_objcache
module Map = Vm_map
module Fault = Vm_fault
module Pageout = Vm_pageout
module State = Bsd_sys
module Machine = Vmiface.Machine
module Vmtypes = Vmiface.Vmtypes
open Vmtypes

let va_lo = 16
let va_hi = 1 lsl 20

module Sys = struct
  let name = "BSD VM"

  type vmspace = { vid : int; map : Vm_map.t; pmap : Pmap.t }

  type sys = {
    bsys : Bsd_sys.t;
    cache : Vm_objcache.t;
    kernel : vmspace;
    vmspaces : (int, vmspace) Hashtbl.t;
  }

  let machine sys = sys.bsys.Bsd_sys.mach
  let kernel_vmspace sys = sys.kernel

  let make_vmspace sys ~kernel =
    let bsys = sys.bsys in
    let pmap = Pmap.create (Bsd_sys.pmap_ctx bsys) in
    let vm =
      {
        vid = Bsd_sys.fresh_id bsys;
        map =
          Vm_map.create bsys ~cache:sys.cache ~pmap ~lo:va_lo ~hi:va_hi ~kernel;
        pmap;
      }
    in
    Hashtbl.replace sys.vmspaces vm.vid vm;
    vm

  let boot ?config () =
    let mach = Machine.boot ?config () in
    Machine.set_label mach name;
    let bsys = Bsd_sys.create mach in
    Vm_pageout.install bsys;
    let cache = Vm_objcache.create bsys in
    let kpmap = Pmap.create (Bsd_sys.pmap_ctx bsys) in
    let kernel =
      {
        vid = Bsd_sys.fresh_id bsys;
        map = Vm_map.create bsys ~cache ~pmap:kpmap ~lo:va_lo ~hi:va_hi ~kernel:true;
        pmap = kpmap;
      }
    in
    let sys = { bsys; cache; kernel; vmspaces = Hashtbl.create 32 } in
    Hashtbl.replace sys.vmspaces kernel.vid kernel;
    sys

  let new_vmspace sys = make_vmspace sys ~kernel:false

  let clone_entry bsys map (e : Vm_map.entry) =
    (Bsd_sys.stats bsys).Sim.Stats.map_entries_allocated <-
      (Bsd_sys.stats bsys).Sim.Stats.map_entries_allocated + 1;
    Bsd_sys.charge_struct_alloc bsys;
    ignore map;
    {
      Vm_map.spage = e.Vm_map.spage;
      epage = e.Vm_map.epage;
      obj = e.Vm_map.obj;
      objoff = e.Vm_map.objoff;
      prot = e.Vm_map.prot;
      maxprot = e.Vm_map.maxprot;
      inh = e.Vm_map.inh;
      advice = e.Vm_map.advice;
      wired = 0;
      cow = e.Vm_map.cow;
      needs_copy = e.Vm_map.needs_copy;
      prev = None;
      next = None;
    }

  let fork sys parent =
    let bsys = sys.bsys in
    Bsd_sys.charge bsys (Bsd_sys.costs bsys).Sim.Cost_model.proc_overhead;
    let pmap = Pmap.create (Bsd_sys.pmap_ctx bsys) in
    let child =
      {
        vid = Bsd_sys.fresh_id bsys;
        map =
          Vm_map.create bsys ~cache:sys.cache ~pmap ~lo:va_lo ~hi:va_hi
            ~kernel:false;
        pmap;
      }
    in
    Vm_map.lock parent.map;
    Vm_map.iter_entries
      (fun e ->
        match e.Vm_map.inh with
        | Inh_none -> ()
        | Inh_shared ->
            (match e.Vm_map.obj with
            | Some o -> Vm_object.reference o
            | None -> ());
            Vm_map.insert_entry_raw child.map (clone_entry bsys child.map e)
        | Inh_copy ->
            (* Figure 3 upper row: share the object, set needs-copy on both
               sides, write-protect the parent's view. *)
            (match e.Vm_map.obj with
            | Some o -> Vm_object.reference o
            | None -> ());
            let fresh = clone_entry bsys child.map e in
            fresh.Vm_map.cow <- true;
            fresh.Vm_map.needs_copy <- true;
            e.Vm_map.cow <- true;
            e.Vm_map.needs_copy <- true;
            Pmap.restrict_range parent.pmap ~lo:e.Vm_map.spage
              ~hi:e.Vm_map.epage
              ~prot:(Pmap.Prot.remove_write Pmap.Prot.rwx);
            Vm_map.insert_entry_raw child.map fresh)
      parent.map;
    Vm_map.unlock parent.map;
    Hashtbl.replace sys.vmspaces child.vid child;
    child

  let destroy_vmspace sys vm =
    Vm_map.destroy vm.map;
    Pmap.destroy vm.pmap;
    Hashtbl.remove sys.vmspaces vm.vid

  let map_entry_count vm = Vm_map.entry_count vm.map
  let resident_pages vm = Pmap.resident_count vm.pmap

  (* The historical two-step mapping: establish with default attributes
     (read-write!), then relock and adjust each non-default attribute.
     Between the steps a read-only mapping is briefly writable — the
     security window of paper §3.1, observable via the probe. *)
  let mmap sys vm ?fixed_at ~npages ~prot ~share source =
    let bsys = sys.bsys in
    let spage =
      match fixed_at with
      | Some vpn -> vpn
      | None -> Vm_map.find_space vm.map ~npages
    in
    let obj, objoff, cow, needs_copy =
      match (source, share) with
      | Zero, Private -> (Vm_object.alloc_anon_object bsys, 0, false, false)
      | Zero, Shared -> (Vm_object.alloc_anon_object bsys, 0, false, false)
      | File (vn, off), Shared ->
          (Vm_objcache.vnode_object bsys sys.cache vn, off, false, false)
      | File (vn, off), Private ->
          (Vm_objcache.vnode_object bsys sys.cache vn, off, true, true)
    in
    let _e =
      Vm_map.insert_default vm.map ~spage ~npages ~obj:(Some obj) ~objoff ~cow
        ~needs_copy
    in
    (match bsys.Bsd_sys.two_step_probe with
    | Some probe -> probe spage
    | None -> ());
    if not (Pmap.Prot.equal prot Pmap.Prot.rw) then
      Vm_map.protect vm.map ~spage ~npages ~prot;
    (match share with
    | Shared -> Vm_map.set_inherit vm.map ~spage ~npages Inh_shared
    | Private -> ());
    spage

  let munmap _sys vm ~vpn ~npages = Vm_map.unmap vm.map ~spage:vpn ~npages

  let mprotect _sys vm ~vpn ~npages prot =
    Vm_map.protect vm.map ~spage:vpn ~npages ~prot

  let minherit _sys vm ~vpn ~npages inh =
    Vm_map.set_inherit vm.map ~spage:vpn ~npages inh

  let madvise _sys vm ~vpn ~npages advice =
    Vm_map.set_advice vm.map ~spage:vpn ~npages advice

  let fault_or_segv vm ~vpn ~access ~wire =
    match Vm_fault.fault vm.map ~vpn ~access ~wire with
    | Ok () -> ()
    | Error error -> raise (Segv { vpn; error })

  let wire_pages vm ~vpn ~npages =
    for v = vpn to vpn + npages - 1 do
      fault_or_segv vm ~vpn:v ~access:Read ~wire:true
    done

  let unwire_pages sys vm ~vpn ~npages =
    let physmem = Bsd_sys.physmem sys.bsys in
    for v = vpn to vpn + npages - 1 do
      match Pmap.lookup vm.pmap ~vpn:v with
      | Some pte -> Physmem.unwire physmem pte.Pmap.page
      | None -> ()
    done

  let mlock _sys vm ~vpn ~npages =
    Vm_map.mark_wired vm.map ~spage:vpn ~npages;
    wire_pages vm ~vpn ~npages

  let munlock sys vm ~vpn ~npages =
    Vm_map.mark_unwired vm.map ~spage:vpn ~npages;
    unwire_pages sys vm ~vpn ~npages

  type wired_buffer = { wb_vpn : int; wb_npages : int }

  (* BSD records sysctl/physio buffer wiring in the process map: the range
     is clipped out of its entry, and the fragmentation persists after
     unwiring (paper §3.2 — the map-entry demand Table 1 measures). *)
  let vslock _sys vm ~vpn ~npages =
    Vm_map.mark_wired vm.map ~spage:vpn ~npages;
    wire_pages vm ~vpn ~npages;
    { wb_vpn = vpn; wb_npages = npages }

  let vsunlock sys vm wb =
    Vm_map.mark_unwired vm.map ~spage:wb.wb_vpn ~npages:wb.wb_npages;
    unwire_pages sys vm ~vpn:wb.wb_vpn ~npages:wb.wb_npages

  let wanted_prot = function
    | Read -> { Pmap.Prot.r = true; w = false; x = false }
    | Write -> Pmap.Prot.rw

  let touch sys vm ~vpn access =
    let bsys = sys.bsys in
    Bsd_sys.charge bsys (Bsd_sys.costs bsys).Sim.Cost_model.mem_access;
    let ok () =
      match Pmap.lookup vm.pmap ~vpn with
      | Some pte -> Pmap.Prot.subsumes pte.Pmap.prot (wanted_prot access)
      | None -> false
    in
    if not (ok ()) then fault_or_segv vm ~vpn ~access ~wire:false;
    Pmap.mark_access vm.pmap ~vpn ~write:(access = Write)

  let access_range sys vm ~vpn ~npages access =
    for v = vpn to vpn + npages - 1 do
      touch sys vm ~vpn:v access
    done

  let page_of sys vm ~vpn access =
    touch sys vm ~vpn access;
    match Pmap.lookup vm.pmap ~vpn with
    | Some pte -> pte.Pmap.page
    | None -> assert false

  let read_bytes sys vm ~addr ~len =
    let page_size = Machine.page_size (machine sys) in
    let out = Bytes.create len in
    let copied = ref 0 in
    while !copied < len do
      let a = addr + !copied in
      let vpn = a / page_size and off = a mod page_size in
      let n = min (len - !copied) (page_size - off) in
      let page = page_of sys vm ~vpn Read in
      Bytes.blit page.Physmem.Page.data off out !copied n;
      copied := !copied + n
    done;
    out

  let write_bytes sys vm ~addr data =
    let page_size = Machine.page_size (machine sys) in
    let len = Bytes.length data in
    let copied = ref 0 in
    while !copied < len do
      let a = addr + !copied in
      let vpn = a / page_size and off = a mod page_size in
      let n = min (len - !copied) (page_size - off) in
      let page = page_of sys vm ~vpn Write in
      Bytes.blit data !copied page.Physmem.Page.data off n;
      page.Physmem.Page.dirty <- true;
      copied := !copied + n
    done

  let msync sys vm ~vpn ~npages =
    let bsys = sys.bsys in
    List.iter
      (fun (e : Vm_map.entry) ->
        match e.Vm_map.obj with
        | Some obj -> (
            match obj.Vm_object.kind with
            | Vm_object.Vnode vn ->
                let lo =
                  e.Vm_map.objoff + (max vpn e.Vm_map.spage - e.Vm_map.spage)
                and hi =
                  e.Vm_map.objoff
                  + (min (vpn + npages) e.Vm_map.epage - e.Vm_map.spage)
                in
                List.iter
                  (fun (p : Physmem.Page.t) ->
                    if p.owner_offset >= lo && p.owner_offset < hi then
                      (* One write per page, as ever.  A failed page stays
                         dirty for a later sync or pageout to retry. *)
                      match
                        Bsd_sys.retry_transient bsys (fun () ->
                            Vfs.write_pages (Bsd_sys.vfs bsys) vn
                              ~start_page:p.owner_offset ~srcs:[ p ])
                      with
                      | Ok () | Error _ -> ())
                  (Vm_object.dirty_pages obj)
            | Vm_object.Anon -> ())
        | None -> ())
      (List.filter
         (fun (e : Vm_map.entry) ->
           e.Vm_map.spage < vpn + npages && vpn < e.Vm_map.epage)
         (Vm_map.entries vm.map))

  (* Kernel wired allocations: BSD creates a map entry per allocation and
     records the wiring in the kernel map — two kernel entries per process
     (user structure + page tables), paper §3.2. *)
  let kernel_alloc_wired sys ~npages =
    let vpn =
      mmap sys sys.kernel ~npages ~prot:Pmap.Prot.rw ~share:Private Zero
    in
    Vm_map.mark_wired sys.kernel.map ~spage:vpn ~npages;
    wire_pages sys.kernel ~vpn ~npages;
    vpn

  let kernel_free_wired sys ~vpn ~npages =
    Vm_map.mark_unwired sys.kernel.map ~spage:vpn ~npages;
    unwire_pages sys sys.kernel ~vpn ~npages;
    munmap sys sys.kernel ~vpn ~npages

  (* BSD records the user structure's wiring in the kernel map too, so a
     process swapout/swapin pays map lock/lookup/clip traffic that UVM
     avoids. *)
  let swapout_ustruct sys ~vpn ~npages =
    Vm_map.mark_unwired sys.kernel.map ~spage:vpn ~npages;
    unwire_pages sys sys.kernel ~vpn ~npages

  let swapin_ustruct sys ~vpn ~npages =
    Vm_map.mark_wired sys.kernel.map ~spage:vpn ~npages;
    wire_pages sys.kernel ~vpn ~npages

  (* i386 page-table pages: BSD allocates them from the kernel map and
     records the wiring there too — one more kernel entry per process. *)
  type ptp = { ptp_vpn : int; ptp_npages : int }

  let pmap_alloc_ptp sys ~npages =
    { ptp_vpn = kernel_alloc_wired sys ~npages; ptp_npages = npages }

  let pmap_free_ptp sys ptp =
    kernel_free_wired sys ~vpn:ptp.ptp_vpn ~npages:ptp.ptp_npages

  let swap_slots_in_use sys = Swap.Swapdev.slots_in_use (Bsd_sys.swapdev sys.bsys)

  (* Audit anonymous pages that no lookup path can reach any more — the
     swap-leak pathology of paper §5.3.  For every mapped offset we walk
     the chain exactly as the fault routine would; the first hit is
     reachable, deeper copies of the same offset are not. *)
  let leaked_pages sys =
    let reachable : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
    let rec walk obj off =
      if Hashtbl.mem obj.Vm_object.pages off then
        Hashtbl.replace reachable (obj.Vm_object.id, off) ()
      else
        match obj.Vm_object.shadow with
        | Some backing -> walk backing (off + obj.Vm_object.shadow_offset)
        | None -> ()
    in
    Hashtbl.iter
      (fun _ vm ->
        Vm_map.iter_entries
          (fun e ->
            match e.Vm_map.obj with
            | Some obj ->
                for i = 0 to Vm_map.entry_npages e - 1 do
                  walk obj (e.Vm_map.objoff + i)
                done
            | None -> ())
          vm.map)
      sys.vmspaces;
    let leaked = ref 0 in
    List.iter
      (fun (obj : Vm_object.t) ->
        if not obj.Vm_object.dead then
          Hashtbl.iter
            (fun off (_ : Physmem.Page.t) ->
              if not (Hashtbl.mem reachable (obj.Vm_object.id, off)) then
                incr leaked)
            obj.Vm_object.pages)
      (Vm_objcache.anon_objects sys.cache);
    !leaked
end

(** The BSD VM object cache and object dereferencing (paper §4).

    BSD VM keeps up to [obj_cache_limit] (historically one hundred)
    unreferenced vnode-backed objects alive, each pinning its vnode with an
    extra reference — a second cache layered redundantly on the vnode
    system's own, with the pathologies Figure 2 measures: beyond one
    hundred files the LRU object is discarded even when memory is plentiful,
    and pinned vnodes distort the vnode system's LRU choice. *)

type t = {
  limit : int;
  lru : Vm_object.t Sim.Dlist.t;  (** unreferenced cached objects, LRU first *)
  by_vnode : (int, Vm_object.t) Hashtbl.t;  (** vnode id -> its VM object *)
  sys_uid : int;
}

let create sys =
  {
    limit = sys.Bsd_sys.obj_cache_limit;
    lru = Sim.Dlist.create ();
    by_vnode = Hashtbl.create 64;
    sys_uid = sys.Bsd_sys.uid;
  }

let cached_count t = Sim.Dlist.length t.lru

(* Find the VM object for a vnode via the pager hash table (a probe BSD
   pays and UVM doesn't). *)
let lookup_vnode sys t vn =
  let stats = Bsd_sys.stats sys in
  stats.Sim.Stats.hash_lookups <- stats.Sim.Stats.hash_lookups + 1;
  Bsd_sys.charge sys (Bsd_sys.costs sys).Sim.Cost_model.hash_lookup;
  Hashtbl.find_opt t.by_vnode vn.Vfs.Vnode.vid

let anon_objects t = Vm_object.live_anon_objects ~sys_uid:t.sys_uid

(* Fully tear an object down, writing dirty file pages back first. *)
let terminate sys t obj =
  (match obj.Vm_object.kind with
  | Vm_object.Vnode vn ->
      (match Vm_object.dirty_pages obj with
      | [] -> ()
      | dirty ->
          (* One I/O per page: BSD VM does not cluster.  Termination is
             best-effort: a page whose write fails is lost with the
             object, as when a real kernel hits EIO at reclaim time. *)
          List.iter
            (fun (p : Physmem.Page.t) ->
              match
                Bsd_sys.retry_transient sys (fun () ->
                    Vfs.write_pages (Bsd_sys.vfs sys) vn
                      ~start_page:p.owner_offset ~srcs:[ p ])
              with
              | Ok () | Error _ -> ())
            dirty);
      Hashtbl.remove t.by_vnode vn.Vfs.Vnode.vid
  | Vm_object.Anon -> ());
  Vm_object.free_resources sys obj

(* Drop one reference; objects reaching zero either persist in the object
   cache (vnode-backed) or die, recursively releasing their chain. *)
let rec deref sys t obj =
  if obj.Vm_object.refs <= 0 then invalid_arg "Vm_objcache.deref: no refs";
  obj.Vm_object.refs <- obj.Vm_object.refs - 1;
  if obj.Vm_object.refs = 0 then
    match obj.Vm_object.kind with
    | Vm_object.Vnode _ ->
        obj.Vm_object.cached <- true;
        obj.Vm_object.lru_node <- Some (Sim.Dlist.push_tail t.lru obj);
        if Sim.Dlist.length t.lru > t.limit then begin
          (* Cache full: discard the least recently used object even if
             memory is plentiful (Figure 2's cliff). *)
          match Sim.Dlist.pop_head t.lru with
          | Some victim ->
              victim.Vm_object.cached <- false;
              victim.Vm_object.lru_node <- None;
              (Bsd_sys.stats sys).Sim.Stats.obj_cache_evictions <-
                (Bsd_sys.stats sys).Sim.Stats.obj_cache_evictions + 1;
              terminate sys t victim
          | None -> ()
        end
    | Vm_object.Anon ->
        let backing = obj.Vm_object.shadow in
        terminate sys t obj;
        (match backing with
        | Some b ->
            b.Vm_object.shadow_count <- b.Vm_object.shadow_count - 1;
            deref sys t b
        | None -> ())

(* Take a reference for a new mapping, reviving the object from the cache
   if it was resting there. *)
let reference_for_mapping sys t obj =
  if obj.Vm_object.cached then begin
    obj.Vm_object.cached <- false;
    (match obj.Vm_object.lru_node with
    | Some node ->
        Sim.Dlist.remove t.lru node;
        obj.Vm_object.lru_node <- None
    | None -> ());
    obj.Vm_object.refs <- 1;
    (Bsd_sys.stats sys).Sim.Stats.obj_cache_hits <-
      (Bsd_sys.stats sys).Sim.Stats.obj_cache_hits + 1
  end
  else Vm_object.reference obj

(* The mmap path: find or create the vnode's VM object. *)
let vnode_object sys t vn =
  match lookup_vnode sys t vn with
  | Some obj ->
      reference_for_mapping sys t obj;
      obj
  | None ->
      let obj = Vm_object.alloc_vnode_object sys vn in
      Hashtbl.replace t.by_vnode vn.Vfs.Vnode.vid obj;
      (Bsd_sys.stats sys).Sim.Stats.obj_cache_misses <-
        (Bsd_sys.stats sys).Sim.Stats.obj_cache_misses + 1;
      obj

(** BSD VM memory maps.

    Structurally like UVM's (a sorted entry list — UVM retained this part
    of the design, paper §1.2) but with the baseline's behaviours the paper
    criticises: no entry merging, every wiring recorded by clipping map
    entries, and a single-phase unmap that holds the map lock through
    object deallocation — including any I/O it triggers (paper §3.1). *)

module Vmtypes = Vmiface.Vmtypes

type entry = {
  mutable spage : int;
  mutable epage : int;
  mutable obj : Vm_object.t option;
  mutable objoff : int;
  mutable prot : Pmap.Prot.t;
  mutable maxprot : Pmap.Prot.t;
  mutable inh : Vmtypes.inherit_mode;
  mutable advice : Vmtypes.advice;
  mutable wired : int;
  mutable cow : bool;
  mutable needs_copy : bool;
  mutable prev : entry option;
  mutable next : entry option;
}

type t = {
  sys : Bsd_sys.t;
  cache : Vm_objcache.t;
  pmap : Pmap.t;
  lo : int;
  hi : int;
  kernel : bool;
  mutable first : entry option;
  mutable nentries : int;
  mutable hint : entry option;
  mutable locked_since : float option;
  mutable lockh : Sim.Lockstat.lock option;
}

let create sys ~cache ~pmap ~lo ~hi ~kernel =
  {
    sys;
    cache;
    pmap;
    lo;
    hi;
    kernel;
    first = None;
    nentries = 0;
    hint = None;
    locked_since = None;
    lockh = None;
  }

let stats t = Bsd_sys.stats t.sys
let costs t = Bsd_sys.costs t.sys
let charge t us = Bsd_sys.charge t.sys us
let lifecycle t = Physmem.lifecycle (Bsd_sys.physmem t.sys)

(* Lock-observatory handle, registered on first lock; the registry
   renders the lock:map span and the legacy map_lock event/latency
   series, while the cost charge and Stats counters stay here. *)
let lock_handle t =
  match t.lockh with
  | Some l -> l
  | None ->
      let l =
        Sim.Lockstat.register (Bsd_sys.locks t.sys) ~cls:"map"
          (if t.kernel then "kernel_map" else "user_map")
      in
      t.lockh <- Some l;
      l

let lock t =
  assert (t.locked_since = None);
  charge t (costs t).Sim.Cost_model.lock_acquire;
  (stats t).Sim.Stats.lock_acquisitions <-
    (stats t).Sim.Stats.lock_acquisitions + 1;
  Sim.Lockstat.acquire (Bsd_sys.locks t.sys) (lock_handle t)
    ~mode:Sim.Lockstat.Write;
  t.locked_since <- Some (Sim.Simclock.now (Bsd_sys.clock t.sys))

let is_locked t = t.locked_since <> None

let unlock t =
  match t.locked_since with
  | None -> invalid_arg "Vm_map.unlock: not locked"
  | Some since ->
      let held = Sim.Simclock.now (Bsd_sys.clock t.sys) -. since in
      (stats t).Sim.Stats.map_lock_held_us <-
        (stats t).Sim.Stats.map_lock_held_us +. held;
      t.locked_since <- None;
      Sim.Lockstat.release (Bsd_sys.locks t.sys) (lock_handle t)

let entry_npages e = e.epage - e.spage
let entry_count t = t.nentries

let iter_entries f t =
  let rec go = function
    | None -> ()
    | Some e ->
        let nxt = e.next in
        f e;
        go nxt
  in
  go t.first

let entries t =
  let acc = ref [] in
  iter_entries (fun e -> acc := e :: !acc) t;
  List.rev !acc

let alloc_entry t ~spage ~epage ~obj ~objoff ~prot ~maxprot ~inh ~advice
    ~wired ~cow ~needs_copy =
  (stats t).Sim.Stats.map_entries_allocated <-
    (stats t).Sim.Stats.map_entries_allocated + 1;
  Sim.Lifecycle.note_entry_alloc (lifecycle t);
  charge t (costs t).Sim.Cost_model.struct_alloc;
  {
    spage;
    epage;
    obj;
    objoff;
    prot;
    maxprot;
    inh;
    advice;
    wired;
    cow;
    needs_copy;
    prev = None;
    next = None;
  }

let free_entry t (_e : entry) =
  (stats t).Sim.Stats.map_entries_freed <-
    (stats t).Sim.Stats.map_entries_freed + 1;
  Sim.Lifecycle.note_entry_free (lifecycle t)

let link_after t prev e =
  (match prev with
  | None ->
      e.next <- t.first;
      e.prev <- None;
      (match t.first with Some f -> f.prev <- Some e | None -> ());
      t.first <- Some e
  | Some p ->
      e.next <- p.next;
      e.prev <- Some p;
      (match p.next with Some n -> n.prev <- Some e | None -> ());
      p.next <- Some e);
  t.nentries <- t.nentries + 1

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.first <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> ());
  e.prev <- None;
  e.next <- None;
  (match t.hint with Some h when h == e -> t.hint <- None | _ -> ());
  t.nentries <- t.nentries - 1

let search t ~from ~vpn =
  let search_cost = (costs t).Sim.Cost_model.map_entry_search in
  let rec go prev = function
    | None -> (prev, None)
    | Some e ->
        charge t search_cost;
        if vpn < e.spage then (prev, None)
        else if vpn < e.epage then (prev, Some e)
        else go (Some e) e.next
  in
  go None from

let lookup t ~vpn =
  let start =
    match t.hint with Some h when h.spage <= vpn -> Some h | _ -> t.first
  in
  let start = match start with Some h when h.spage > vpn -> t.first | s -> s in
  let _, found = search t ~from:start ~vpn in
  (match found with Some e -> t.hint <- Some e | None -> ());
  found

let range_free t ~spage ~npages =
  let epage = spage + npages in
  spage >= t.lo && epage <= t.hi
  && not (List.exists (fun e -> e.spage < epage && spage < e.epage) (entries t))

let find_space t ~npages =
  let rec go pos = function
    | None -> if pos + npages <= t.hi then pos else raise Not_found
    | Some e ->
        if e.spage - pos >= npages then pos else go (max pos e.epage) e.next
  in
  go t.lo t.first

(* vm_map_find: insert with *default* attributes — the first step of the
   baseline's two-step mapping (paper §3.1).  Non-default attributes
   require separate relock-and-change calls. *)
let insert_default t ~spage ~npages ~obj ~objoff ~cow ~needs_copy =
  if npages < 1 then invalid_arg "Vm_map.insert_default: npages must be >= 1";
  lock t;
  if not (range_free t ~spage ~npages) then begin
    unlock t;
    invalid_arg "Vm_map.insert_default: range not free"
  end;
  charge t (costs t).Sim.Cost_model.map_insert;
  let e =
    alloc_entry t ~spage ~epage:(spage + npages) ~obj ~objoff
      ~prot:Pmap.Prot.rw ~maxprot:Pmap.Prot.rwx ~inh:Vmtypes.Inh_copy
      ~advice:Vmtypes.Adv_normal ~wired:0 ~cow ~needs_copy
  in
  let prev, _ = search t ~from:t.first ~vpn:spage in
  link_after t prev e;
  t.hint <- Some e;
  unlock t;
  e

let clip t e vpn =
  assert (vpn > e.spage && vpn < e.epage);
  let delta = vpn - e.spage in
  let tail =
    alloc_entry t ~spage:vpn ~epage:e.epage ~obj:e.obj
      ~objoff:(e.objoff + delta) ~prot:e.prot ~maxprot:e.maxprot ~inh:e.inh
      ~advice:e.advice ~wired:e.wired ~cow:e.cow ~needs_copy:e.needs_copy
  in
  e.epage <- vpn;
  (match e.obj with Some o -> Vm_object.reference o | None -> ());
  link_after t (Some e) tail

let clip_range t ~spage ~epage =
  iter_entries (fun e -> if e.spage < spage && spage < e.epage then clip t e spage) t;
  iter_entries (fun e -> if e.spage < epage && epage < e.epage then clip t e epage) t

let entries_in_range t ~spage ~epage =
  List.filter (fun e -> e.spage >= spage && e.epage <= epage) (entries t)

(* Single-phase unmap: the reference drops — and any I/O they trigger —
   happen while the map lock is still held, blocking other threads
   (the inefficiency UVM's two-phase unmap removes). *)
let unmap t ~spage ~npages =
  let epage = spage + npages in
  lock t;
  clip_range t ~spage ~epage;
  let doomed = entries_in_range t ~spage ~epage in
  List.iter
    (fun e ->
      charge t (costs t).Sim.Cost_model.map_remove;
      unlink t e)
    doomed;
  Pmap.remove_range t.pmap ~lo:spage ~hi:epage;
  List.iter
    (fun e ->
      (match e.obj with
      | Some o -> Vm_objcache.deref t.sys t.cache o
      | None -> ());
      free_entry t e)
    doomed;
  unlock t

(* Attribute changes re-lock the map and search for the range again — the
   second step of two-step mapping. *)
let apply_in_range t ~spage ~npages f =
  let epage = spage + npages in
  lock t;
  (* The relookup cost: find the range again. *)
  ignore (lookup t ~vpn:spage);
  clip_range t ~spage ~epage;
  List.iter f (entries_in_range t ~spage ~epage);
  unlock t

let protect t ~spage ~npages ~prot =
  apply_in_range t ~spage ~npages (fun e ->
      if not (Pmap.Prot.subsumes e.maxprot prot) then
        invalid_arg "Vm_map.protect: exceeds maxprot";
      e.prot <- prot;
      Pmap.restrict_range t.pmap ~lo:e.spage ~hi:e.epage ~prot)

let set_inherit t ~spage ~npages inh =
  apply_in_range t ~spage ~npages (fun e -> e.inh <- inh)

let set_advice t ~spage ~npages advice =
  apply_in_range t ~spage ~npages (fun e -> e.advice <- advice)

let mark_wired t ~spage ~npages =
  apply_in_range t ~spage ~npages (fun e -> e.wired <- e.wired + 1)

let mark_unwired t ~spage ~npages =
  apply_in_range t ~spage ~npages (fun e ->
      if e.wired <= 0 then invalid_arg "Vm_map.mark_unwired: not wired";
      e.wired <- e.wired - 1)

let insert_entry_raw t e =
  lock t;
  if not (range_free t ~spage:e.spage ~npages:(entry_npages e)) then begin
    unlock t;
    invalid_arg "Vm_map.insert_entry_raw: range not free"
  end;
  charge t (costs t).Sim.Cost_model.map_insert;
  let prev, _ = search t ~from:t.first ~vpn:e.spage in
  link_after t prev e;
  unlock t

let destroy t =
  if t.nentries > 0 then unmap t ~spage:t.lo ~npages:(t.hi - t.lo)

let check_invariants t =
  let rec go count pos = function
    | None ->
        if count <> t.nentries then Error "nentries mismatch" else Ok ()
    | Some e ->
        if e.spage < pos then Error "entries overlap or unsorted"
        else if e.spage >= e.epage then Error "empty entry"
        else if e.spage < t.lo || e.epage > t.hi then Error "out of bounds"
        else go (count + 1) e.epage e.next
  in
  go 0 t.lo t.first

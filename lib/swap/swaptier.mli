(** Tiered swap: several {!Swapdev} devices behind one slot namespace.

    The paper treats swap as a single uniform device; real systems spread
    it over heterogeneous media — a fast/small NVMe-like tier and a
    slow/large disk-like tier.  Each device here gets a priority, its own
    capacity and its own cost model (and, via {!disks}, its own fault
    plan).  Allocation is priority-ordered with round-robin striping
    inside an equal-priority band, and slots live in one global integer
    namespace (device-local slots offset by the device's base), so an
    [an_swslot]-style handle stays a single int and slot 0 still means
    "none".  Contiguous clusters never span devices.

    On top of the tier set sit the robustness mechanisms:

    - {b device death} ({!kill_device}): the media rejects all further
      writes, the device leaves the allocation pool, and its cache
      entries are shed — but reads still work, which is what lets the
      pagedaemon-driven drain ({!run_drain}/{!migrate_slot}) move the
      surviving slots to healthy tiers.  {!swapoff} is the administrative
      variant: same drain, media still healthy.
    - {b failover}: {!write_resilient} recovers from a permanent error by
      reallocating anywhere in the healthy tier set; a reassignment that
      crosses devices counts as a failover.
    - {b swapcache} ({!cache_put}/{!cache_lookup}): clean vnode pages
      spilled to a strictly-faster tier so re-faults hit cheap swap
      instead of the slow vnode pager.  Cache entries are the first
      sacrifice under slot pressure, and the cache stays inert on
      single-tier boots (no faster tier exists).

    All counters feed the machine-global {!Sim.Stats} record; tier events
    (device_dead, failover, migrate, cache_fill/cache_hit/cache_evict,
    swapoff, drain_complete) are recorded in the [Swap] history. *)

type spec = {
  tier_name : string;
  tier_pages : int;  (** device capacity in slots *)
  tier_priority : int;  (** lower allocates first *)
  tier_costs : Sim.Cost_model.t option;  (** [None]: the machine's model *)
}

type t

val create :
  specs:spec list ->
  page_size:int ->
  clock:Sim.Simclock.t ->
  costs:Sim.Cost_model.t ->
  stats:Sim.Stats.t ->
  t
(** @raise Invalid_argument on an empty spec list or an empty device. *)

(* -- the Swapdev surface, over the global namespace ------------------- *)

val capacity : t -> int
val slots_in_use : t -> int

val slots_usable : t -> int
(** Allocatable capacity: healthy in-pool devices net of blacklisted
    slots; dead or swapped-off devices contribute nothing. *)

val bad_slot_count : t -> int
val is_bad_slot : t -> slot:int -> bool
(** Per-slot blacklist, or the whole device is dead. *)

val is_allocated_slot : t -> slot:int -> bool

val alloc_slots : t -> n:int -> int option
(** Reserve [n] contiguous slots on the best willing device (priority
    order, striped within a band).  Under slot pressure the swapcache is
    shed entry by entry until the allocation fits — the first rung of the
    degradation ladder. *)

val free_slots : t -> slot:int -> n:int -> unit
val mark_bad : t -> slot:int -> unit

val write_cluster :
  t ->
  slot:int ->
  pages:Physmem.Page.t list ->
  (unit, Sim.Fault_plan.error) result
(** Fails permanently (without touching the media) when the device is
    dead. *)

val read_slot :
  t -> slot:int -> dst:Physmem.Page.t -> (unit, Sim.Fault_plan.error) result
(** Reads are served even from a dead device (dying media rejects writes
    but stays readable — the drain window). *)

val read_cluster :
  t ->
  slot:int ->
  dsts:Physmem.Page.t list ->
  (unit, Sim.Fault_plan.error) result

val read_resilient :
  t ->
  retries:int ->
  backoff_us:float ->
  slot:int ->
  dst:Physmem.Page.t ->
  (unit, Sim.Fault_plan.error) result

type write_outcome = Swapdev.write_outcome =
  | Written
  | Reassigned of int
  | No_space of Sim.Fault_plan.error
  | Failed of Sim.Fault_plan.error

val write_resilient :
  t ->
  retries:int ->
  backoff_us:float ->
  slot:int ->
  assign:(int -> unit) ->
  pages:Physmem.Page.t list ->
  write_outcome
(** {!Swapdev.write_resilient} lifted across tiers: the replacement range
    may land on any healthy device (priority order).  A cross-device
    reassignment counts into [Stats.swap_failovers] and records a
    [failover] event. *)

val disk : t -> Sim.Disk.t
(** The first device's disk (single-tier compatibility). *)

val disks : t -> Sim.Disk.t list
(** Every device's disk, in creation order — for fault-plan install. *)

val set_hist : t -> Sim.Hist.t option -> unit

val set_spans : t -> Sim.Span.t option -> unit
(** Causal span collector for device I/O, drain and migration.  Device
    reads/writes open spans under ["swap:<tier>"] so critical-path
    breakdowns attribute tail latency to the tier that caused it. *)

val set_lockstat : t -> Sim.Lockstat.t option -> unit
(** Register the swap-tier lock with the machine's lock observatory:
    every public entry point (slot alloc/free, paging I/O, drain,
    migration, swapcache) then records a hold of the ["swap"] class,
    read-mode for lookups and reads, write-mode otherwise. *)

(* -- device death, swapoff, drain ------------------------------------ *)

val kill_device : t -> name:string -> unit
(** Whole-device permanent failure: every further write fails, the device
    leaves the allocation pool, its swapcache entries are shed, and it is
    marked draining so the pagedaemon migrates the surviving slots away.
    Idempotent.  @raise Invalid_argument on an unknown name. *)

val swapoff : t -> name:string -> unit
(** Administrative removal: like death but the media stays readable and
    healthy; runs one synchronous drain pass before returning. *)

val device_alive : t -> name:string -> bool

val drain_pending : t -> bool
(** Some offline device still owns slots. *)

val set_drain_hook : t -> (unit -> unit) option -> unit
(** The VM system's migration walk: called by {!run_drain}, it must visit
    every owner of a slot for which {!slot_needs_drain} holds, call
    {!migrate_slot}, rebind its bookkeeping to the fresh slot and free
    the old one. *)

val run_drain : t -> unit
(** Invoke the drain hook if a drain is pending, then retire devices that
    finished draining.  Called by both pagedaemons on every run. *)

val slot_needs_drain : t -> slot:int -> bool

val migrate_slot : t -> slot:int -> int option
(** Copy one slot's bytes to a healthy device (both transfers charged);
    returns the fresh global slot — the caller rebinds and frees the old
    slot.  [None] when nothing was stored, the read failed, or no healthy
    device has room even after shedding the cache. *)

(* -- swapcache ------------------------------------------------------- *)

val cache_put : t -> vid:int -> pgno:int -> page:Physmem.Page.t -> unit
(** Spill a clean vnode page ([vid] = vnode id) to the fastest healthy
    tier that is strictly faster than the slowest — on a single-tier boot
    this never fires.  Fills keep a small per-device reserve free and are
    dropped silently when space or the write fails. *)

val cache_lookup : t -> vid:int -> pgno:int -> dst:Physmem.Page.t -> bool
(** Serve a re-fault from the cache: true on a hit (page data filled,
    marked clean, charged at the caching tier's speed).  An unreadable
    entry is dropped and the caller falls back to the vnode. *)

val cache_contains : t -> vid:int -> pgno:int -> bool

val cache_invalidate : t -> vid:int -> pgno:int -> unit
(** The file page changed (or is being written back): the cached copy is
    stale, drop it. *)

val cache_invalidate_obj : t -> vid:int -> unit
(** Object teardown: drop every cache entry of the vnode. *)

val cache_slots : t -> int
(** Live cache entries (= slots charged to the cache). *)

(* -- introspection and audit support --------------------------------- *)

type tier_info = {
  ti_name : string;
  ti_priority : int;
  ti_capacity : int;
  ti_in_use : int;
  ti_usable : int;
  ti_alive : bool;
  ti_draining : bool;
  ti_pageouts : int;
  ti_pageins : int;
  ti_migrated_out : int;
  ti_cache_slots : int;
}

val tiers : t -> tier_info list
(** Per-device accounting, in creation order. *)

val cache_claims : t -> ((int * int) * int) list
(** [((vid, pgno), slot)] for every cache entry, sorted by slot — the
    swapcache's side of the slot-ownership audit. *)

val slot_on_dead_device : t -> slot:int -> bool

val undrained_violation : t -> string option
(** A device that finished draining but owns slots again — allocator
    handed out slots on retired media.  [None] when the invariant
    holds. *)

module Testhook : sig
  val leak_cache_entry : t -> bool
  (** Seeded corruption: register a swapcache entry over a slot that was
      freed underneath it, so the audit sees the cache claiming media it
      does not own.  False if swap is completely full. *)
end

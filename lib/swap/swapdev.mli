(** The swap device: slot allocation plus actual paging I/O.

    Page contents written out are retained per-slot, so a later pagein
    restores the exact bytes — pageout/pagein is validated for data
    correctness, not just accounting.

    All transfers are fallible (see {!Sim.Fault_plan}); a failed write
    leaves the pages dirty and the stored bytes untouched, so callers can
    retry or reassign without losing data.  The [_resilient] entry points
    package the standard recovery policy: bounded exponential-backoff
    retry for transient errors, blacklist-and-reassign for bad media. *)

type t

val create :
  ?trace_base:int ->
  ?trace_tier:string ->
  nslots:int ->
  page_size:int ->
  clock:Sim.Simclock.t ->
  costs:Sim.Cost_model.t ->
  stats:Sim.Stats.t ->
  unit ->
  t
(** [trace_base] offsets the slot numbers recorded in trace events (the
    tier layer passes its global-namespace base so multi-device traces
    stay coherent); [trace_tier] tags every event with the device name. *)

val capacity : t -> int
val slots_in_use : t -> int

val slots_usable : t -> int
(** Capacity net of blacklisted slots. *)

val bad_slot_count : t -> int
val is_bad_slot : t -> slot:int -> bool

val is_allocated_slot : t -> slot:int -> bool
(** Whether [slot] is currently charged to an owner (invariant auditing). *)

val alloc_slots : t -> n:int -> int option
(** Reserve [n] contiguous slots (no I/O yet). *)

val free_slots : t -> slot:int -> n:int -> unit
(** Release slots and discard their stored contents.  Blacklisted slots
    are retired rather than returned to circulation. *)

val mark_bad : t -> slot:int -> unit
(** Blacklist [slot] as bad media and discard whatever it stored.
    Idempotent; counts into [Stats.bad_slots]. *)

val write_cluster :
  t -> slot:int -> pages:Physmem.Page.t list -> (unit, Sim.Fault_plan.error) result
(** Write the pages to consecutive slots starting at [slot] as a single
    I/O operation (this is UVM's clustered pageout: one seek, n transfers).
    Marks the pages clean on success; on [Error] the pages stay dirty and
    no slot contents change. *)

val read_slot :
  t -> slot:int -> dst:Physmem.Page.t -> (unit, Sim.Fault_plan.error) result
(** Page in one slot (one I/O operation).
    @raise Invalid_argument if the slot holds no data. *)

val read_cluster :
  t -> slot:int -> dsts:Physmem.Page.t list -> (unit, Sim.Fault_plan.error) result
(** Page in consecutive slots in one I/O operation. *)

val has_data : t -> slot:int -> bool
(** Whether a successful write ever stored bytes in [slot]. *)

val read_raw : t -> slot:int -> (bytes, Sim.Fault_plan.error) result
(** Read one slot's stored bytes (one charged I/O operation) without
    touching any page or the pagein counters — the tier layer's
    swapcache-hit and drain-migration primitive.
    @raise Invalid_argument if the slot holds no data. *)

val write_raw : t -> slot:int -> bytes -> (unit, Sim.Fault_plan.error) result
(** Store bytes in an allocated slot (one charged I/O operation) without
    touching any page or the pageout counters.
    @raise Invalid_argument if the slot is not allocated. *)

val read_resilient :
  t ->
  retries:int ->
  backoff_us:float ->
  slot:int ->
  dst:Physmem.Page.t ->
  (unit, Sim.Fault_plan.error) result
(** [read_slot] with up to [retries] extra attempts on transient errors,
    sleeping [backoff_us * 2^attempt] simulated microseconds between
    attempts.  Permanent errors are returned immediately: the data is on
    bad media and retrying cannot help. *)

type write_outcome =
  | Written  (** on the original slots, possibly after transient retries *)
  | Reassigned of int
      (** permanent error: bad slot blacklisted, cluster rewritten at the
          returned base slot *)
  | No_space of Sim.Fault_plan.error
      (** permanent error and no replacement slots available *)
  | Failed of Sim.Fault_plan.error
      (** transient error persisted through every retry *)

val write_resilient :
  t ->
  retries:int ->
  backoff_us:float ->
  slot:int ->
  assign:(int -> unit) ->
  pages:Physmem.Page.t list ->
  write_outcome
(** [write_cluster] under the full recovery policy.  Transient errors are
    retried up to [retries] times with exponential backoff charged to the
    simulated clock.  A permanent error blacklists the offending slot,
    allocates a fresh contiguous range, and calls [assign base] so the
    caller rebinds its bookkeeping (anon swslots / object slot tables) to
    the new range — the caller must free the old slots in [assign], which
    permanently retires the blacklisted one — then rewrites there.
    Successful recovery (any path involving a retry or reassignment)
    counts into [Stats.pageouts_recovered]. *)

val disk : t -> Sim.Disk.t

val set_hist : t -> Sim.Hist.t option -> unit
(** Attach an event history: every transfer then records a [Swap]
    subsystem span ([swap_read]/[swap_write] with slot, page count and
    result), and recovery records [slot_bad]/[reassign] instants.  Both
    VM systems page through this device, so attaching here traces their
    swap traffic identically. *)

(** Swap-slot allocator.

    Slots are numbered from 1 ([0] means "no swap location", as in UVM's
    [an_swslot = 0]).  Supports contiguous multi-slot allocation, which is
    what lets UVM's pagedaemon *reassign* scattered dirty anonymous pages to
    one contiguous range and push them out in a single I/O (paper §6). *)

type t

val create : nslots:int -> t
val capacity : t -> int

val in_use : t -> int
(** Number of slots currently allocated. *)

val usable : t -> int
(** Capacity net of blacklisted slots: the ceiling [in_use] can reach. *)

val bad_count : t -> int
(** Number of slots blacklisted so far. *)

val alloc : t -> n:int -> int option
(** [alloc t ~n] finds [n] contiguous free slots, first-fit from a rotating
    hint, skipping blacklisted slots.  Returns the first slot, or [None] if
    no run of [n] exists. *)

val free : t -> slot:int -> n:int -> unit
(** Release [n] slots starting at [slot].  Freeing a blacklisted slot
    permanently retires it rather than returning it to circulation.
    @raise Invalid_argument on double free or out-of-range slots. *)

val mark_bad : t -> slot:int -> unit
(** Blacklist [slot] as bad media: it will never be handed out by [alloc]
    again.  A currently-allocated slot stays charged to its owner until
    freed; a free slot leaves the usable pool immediately.  Idempotent. *)

val is_allocated : t -> slot:int -> bool

val is_bad : t -> slot:int -> bool

type t = {
  map : Swapmap.t;
  disk : Sim.Disk.t;
  clock : Sim.Simclock.t;
  page_size : int;
  store : (int, bytes) Hashtbl.t;
  stats : Sim.Stats.t;
  trace_base : int;
  trace_tier : string option;
  mutable hist : Sim.Hist.t option;
}

let create ?(trace_base = 0) ?trace_tier ~nslots ~page_size ~clock ~costs
    ~stats () =
  {
    map = Swapmap.create ~nslots;
    disk = Sim.Disk.create ~clock ~costs ~stats;
    clock;
    page_size;
    store = Hashtbl.create 256;
    stats;
    trace_base;
    trace_tier;
    hist = None;
  }

let set_hist t h = t.hist <- h

(* Both VM systems drive paging I/O through this device, so recording
   Swap-subsystem events here traces them identically for free.  The
   detail list is only built once we know a history is attached. *)
let tier_detail t rest =
  match t.trace_tier with
  | None -> rest
  | Some tier -> ("tier", tier) :: rest

let trace_span t ~t0 ~slot ~n ~result name =
  match t.hist with
  | None -> ()
  | Some h ->
      Sim.Hist.record h ~subsys:Sim.Hist.Swap ~ts:t0
        ~dur:(Sim.Simclock.now t.clock -. t0)
        ~detail:
          (tier_detail t
             [
               ("slot", string_of_int (t.trace_base + slot));
               ("pages", string_of_int n);
               ("result", result);
             ])
        name

let trace_instant t ~slot name =
  match t.hist with
  | None -> ()
  | Some h ->
      Sim.Hist.record h ~subsys:Sim.Hist.Swap ~ts:(Sim.Simclock.now t.clock)
        ~detail:(tier_detail t [ ("slot", string_of_int (t.trace_base + slot)) ])
        name

let result_of = function
  | Ok () -> "ok"
  | Error (e : Sim.Fault_plan.error) -> Sim.Fault_plan.string_of_error e

let capacity t = Swapmap.capacity t.map
let slots_in_use t = Swapmap.in_use t.map
let slots_usable t = Swapmap.usable t.map
let bad_slot_count t = Swapmap.bad_count t.map
let is_bad_slot t ~slot = Swapmap.is_bad t.map ~slot
let is_allocated_slot t ~slot = Swapmap.is_allocated t.map ~slot
let disk t = t.disk

let alloc_slots t ~n =
  let r = Swapmap.alloc t.map ~n in
  (match r with
  | Some _ ->
      t.stats.Sim.Stats.swap_slots_allocated <-
        t.stats.Sim.Stats.swap_slots_allocated + n
  | None -> ());
  r

let free_slots t ~slot ~n =
  Swapmap.free t.map ~slot ~n;
  for i = slot to slot + n - 1 do
    Hashtbl.remove t.store i
  done;
  t.stats.Sim.Stats.swap_slots_freed <- t.stats.Sim.Stats.swap_slots_freed + n

let mark_bad t ~slot =
  if not (Swapmap.is_bad t.map ~slot) then begin
    Swapmap.mark_bad t.map ~slot;
    (* Whatever the bad slot held is unreadable now. *)
    Hashtbl.remove t.store slot;
    t.stats.Sim.Stats.bad_slots <- t.stats.Sim.Stats.bad_slots + 1;
    trace_instant t ~slot "slot_bad"
  end

let slot_range slot n = List.init n (fun i -> slot + i)

(* The disk decides the fate of the transfer before any bytes move: a
   failed write leaves the pages dirty and the store untouched, so the
   caller can retry or reassign without losing data. *)
let write_cluster t ~slot ~pages =
  let n = List.length pages in
  if n = 0 then invalid_arg "Swapdev.write_cluster: no pages";
  List.iteri
    (fun i (_ : Physmem.Page.t) ->
      if not (Swapmap.is_allocated t.map ~slot:(slot + i)) then
        invalid_arg "Swapdev.write_cluster: slot not allocated")
    pages;
  let t0 = Sim.Simclock.now t.clock in
  let r =
    match Sim.Disk.write t.disk ~slots:(slot_range slot n) ~npages:n with
    | Error _ as e -> e
    | Ok () ->
        List.iteri
          (fun i (page : Physmem.Page.t) ->
            Hashtbl.replace t.store (slot + i) (Bytes.copy page.data);
            page.dirty <- false)
          pages;
        t.stats.Sim.Stats.pageouts <- t.stats.Sim.Stats.pageouts + n;
        Ok ()
  in
  trace_span t ~t0 ~slot ~n ~result:(result_of r) "swap_write";
  r

let read_slot t ~slot ~dst =
  match Hashtbl.find_opt t.store slot with
  | None -> invalid_arg "Swapdev.read_slot: slot holds no data"
  | Some data ->
      let t0 = Sim.Simclock.now t.clock in
      let r =
        match Sim.Disk.read t.disk ~slots:[ slot ] ~npages:1 with
        | Error _ as e -> e
        | Ok () ->
            Bytes.blit data 0 dst.Physmem.Page.data 0 t.page_size;
            dst.Physmem.Page.dirty <- false;
            t.stats.Sim.Stats.pageins <- t.stats.Sim.Stats.pageins + 1;
            Ok ()
      in
      trace_span t ~t0 ~slot ~n:1 ~result:(result_of r) "swap_read";
      r

let read_cluster t ~slot ~dsts =
  let n = List.length dsts in
  if n = 0 then invalid_arg "Swapdev.read_cluster: no pages";
  let datas =
    List.mapi
      (fun i (_ : Physmem.Page.t) ->
        match Hashtbl.find_opt t.store (slot + i) with
        | None -> invalid_arg "Swapdev.read_cluster: slot holds no data"
        | Some data -> data)
      dsts
  in
  let t0 = Sim.Simclock.now t.clock in
  let r =
    match Sim.Disk.read t.disk ~slots:(slot_range slot n) ~npages:n with
    | Error _ as e -> e
    | Ok () ->
        List.iter2
          (fun data (dst : Physmem.Page.t) ->
            Bytes.blit data 0 dst.Physmem.Page.data 0 t.page_size;
            dst.Physmem.Page.dirty <- false)
          datas dsts;
        t.stats.Sim.Stats.pageins <- t.stats.Sim.Stats.pageins + n;
        Ok ()
  in
  trace_span t ~t0 ~slot ~n ~result:(result_of r) "swap_read";
  r

let has_data t ~slot = Hashtbl.mem t.store slot

(* Raw slot transfers for the tier layer: swapcache fills/hits and
   cross-device drain migration move bytes without touching page state or
   the pagein/pageout counters — those flows have their own accounting. *)
let read_raw t ~slot =
  match Hashtbl.find_opt t.store slot with
  | None -> invalid_arg "Swapdev.read_raw: slot holds no data"
  | Some data ->
      let t0 = Sim.Simclock.now t.clock in
      let r =
        match Sim.Disk.read t.disk ~slots:[ slot ] ~npages:1 with
        | Error e -> Error e
        | Ok () -> Ok (Bytes.copy data)
      in
      trace_span t ~t0 ~slot ~n:1
        ~result:(result_of (Result.map ignore r))
        "swap_read";
      r

let write_raw t ~slot data =
  if not (Swapmap.is_allocated t.map ~slot) then
    invalid_arg "Swapdev.write_raw: slot not allocated";
  let t0 = Sim.Simclock.now t.clock in
  let r =
    match Sim.Disk.write t.disk ~slots:[ slot ] ~npages:1 with
    | Error _ as e -> e
    | Ok () ->
        Hashtbl.replace t.store slot (Bytes.copy data);
        Ok ()
  in
  trace_span t ~t0 ~slot ~n:1 ~result:(result_of r) "swap_write";
  r

(* Exponential backoff before retry attempt [attempt] (0-based), charged
   to the simulated clock: the pagedaemon sleeps, it does not spin. *)
let backoff_delay ~backoff_us attempt =
  backoff_us *. (2.0 ** float_of_int attempt)

let read_resilient t ~retries ~backoff_us ~slot ~dst =
  let rec go attempt =
    match read_slot t ~slot ~dst with
    | Ok () -> Ok ()
    | Error e -> (
        match e.Sim.Fault_plan.severity with
        | Sim.Fault_plan.Transient when attempt < retries ->
            Sim.Simclock.advance t.clock (backoff_delay ~backoff_us attempt);
            go (attempt + 1)
        | _ -> Error e)
  in
  go 0

type write_outcome =
  | Written  (** on the original slots, possibly after transient retries *)
  | Reassigned of int
      (** permanent error: bad slot blacklisted, cluster rewritten at the
          returned base slot *)
  | No_space of Sim.Fault_plan.error
      (** permanent error and no replacement slots available *)
  | Failed of Sim.Fault_plan.error
      (** transient error persisted through every retry *)

let write_resilient t ~retries ~backoff_us ~slot ~assign ~pages =
  let n = List.length pages in
  let recovered = ref false in
  let outcome = ref Written in
  (* Termination: every transient retry decrements [attempt] budget, and
     every permanent failure blacklists a slot, shrinking the usable pool
     until allocation fails — the recursion cannot run forever. *)
  let rec go base attempt =
    match write_cluster t ~slot:base ~pages with
    | Ok () ->
        if !recovered then
          t.stats.Sim.Stats.pageouts_recovered <-
            t.stats.Sim.Stats.pageouts_recovered + 1;
        !outcome
    | Error e -> (
        match e.Sim.Fault_plan.severity with
        | Sim.Fault_plan.Transient when attempt < retries ->
            t.stats.Sim.Stats.pageout_retries <-
              t.stats.Sim.Stats.pageout_retries + 1;
            Sim.Simclock.advance t.clock (backoff_delay ~backoff_us attempt);
            recovered := true;
            go base (attempt + 1)
        | Sim.Fault_plan.Transient -> Failed e
        | Sim.Fault_plan.Permanent -> (
            (* Bad media.  Retrying the same slot is pointless: blacklist
               it and move the whole cluster elsewhere — the paper's
               swap-location reassignment doubling as error recovery. *)
            let bad =
              match e.Sim.Fault_plan.bad_slot with
              | Some s when s >= base && s < base + n -> s
              | _ -> base
            in
            mark_bad t ~slot:bad;
            match alloc_slots t ~n with
            | None ->
                t.stats.Sim.Stats.swap_full_events <-
                  t.stats.Sim.Stats.swap_full_events + 1;
                No_space e
            | Some fresh ->
                (* The caller rebinds its bookkeeping (anon swslots, object
                   slot tables) to the fresh range, releasing the old slots
                   — which permanently retires the blacklisted one. *)
                trace_instant t ~slot:fresh "reassign";
                assign fresh;
                recovered := true;
                outcome := Reassigned fresh;
                go fresh 0))
  in
  go slot 0

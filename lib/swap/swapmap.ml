type t = {
  nslots : int;
  used : bool array; (* index 0 unused; slots are 1..nslots *)
  bad : bool array; (* blacklisted: bad media, never handed out again *)
  mutable hint : int;
  mutable in_use : int;
  mutable usable : int; (* nslots minus blacklisted slots *)
  mutable bad_count : int;
}

let create ~nslots =
  if nslots < 1 then invalid_arg "Swapmap.create: nslots must be >= 1";
  {
    nslots;
    used = Array.make (nslots + 1) false;
    bad = Array.make (nslots + 1) false;
    hint = 1;
    in_use = 0;
    usable = nslots;
    bad_count = 0;
  }

let capacity t = t.nslots
let in_use t = t.in_use
let usable t = t.usable
let bad_count t = t.bad_count

let run_free_at t start n =
  let rec check i =
    i >= n || ((not t.used.(start + i)) && (not t.bad.(start + i)) && check (i + 1))
  in
  start + n - 1 <= t.nslots && check 0

let alloc t ~n =
  if n < 1 then invalid_arg "Swapmap.alloc: n must be >= 1";
  if t.in_use + n > t.usable then None
  else begin
    (* First fit, scanning from the hint and wrapping once. *)
    let found = ref None in
    let pos = ref t.hint in
    let scanned = ref 0 in
    while !found = None && !scanned <= t.nslots do
      if !pos + n - 1 > t.nslots then begin
        scanned := !scanned + (t.nslots - !pos + 1);
        pos := 1
      end
      else if run_free_at t !pos n then found := Some !pos
      else begin
        incr pos;
        incr scanned
      end
    done;
    match !found with
    | None -> None
    | Some slot ->
        for i = slot to slot + n - 1 do
          t.used.(i) <- true
        done;
        t.in_use <- t.in_use + n;
        t.hint <- (if slot + n > t.nslots then 1 else slot + n);
        Some slot
  end

let free t ~slot ~n =
  if slot < 1 || slot + n - 1 > t.nslots then
    invalid_arg "Swapmap.free: slot range out of bounds";
  for i = slot to slot + n - 1 do
    if not t.used.(i) then invalid_arg "Swapmap.free: slot not allocated";
    t.used.(i) <- false;
    (* A blacklisted slot leaves circulation the moment its current
       tenant releases it: it stays marked bad and stops counting as
       usable capacity. *)
    if t.bad.(i) then t.usable <- t.usable - 1
  done;
  t.in_use <- t.in_use - n

let mark_bad t ~slot =
  if slot < 1 || slot > t.nslots then
    invalid_arg "Swapmap.mark_bad: slot out of bounds";
  if not t.bad.(slot) then begin
    t.bad.(slot) <- true;
    t.bad_count <- t.bad_count + 1;
    (* If currently allocated, the owner still holds it; capacity shrinks
       when it is freed (see [free]).  A free slot shrinks capacity now. *)
    if not t.used.(slot) then t.usable <- t.usable - 1
  end

let is_allocated t ~slot = slot >= 1 && slot <= t.nslots && t.used.(slot)
let is_bad t ~slot = slot >= 1 && slot <= t.nslots && t.bad.(slot)

type spec = {
  tier_name : string;
  tier_pages : int;
  tier_priority : int;
  tier_costs : Sim.Cost_model.t option;
}

type device = {
  dev_id : int;
  spec : spec;
  base : int;  (** global slot = base + device-local slot (locals start at 1) *)
  dev : Swapdev.t;
  mutable alive : bool;  (** false once the media died: writes fail permanently *)
  mutable offline : bool;  (** out of the allocation pool (death or swapoff) *)
  mutable draining : bool;  (** offline with slots still charged to owners *)
  mutable d_pageouts : int;
  mutable d_pageins : int;
  mutable d_migrated_out : int;
}

(* Swapcache keys: (vnode id, page number).  Both kernels name a file
   page the same way, so the cache layer needs no per-VM-system state. *)
type cache_key = int * int

type t = {
  devices : device array;  (** creation order; bases ascending *)
  bands : device array array;  (** grouped by priority, best band first *)
  page_size : int;
  clock : Sim.Simclock.t;
  stats : Sim.Stats.t;
  cache : (cache_key, int) Hashtbl.t;  (** key -> global slot *)
  cache_rev : (int, cache_key) Hashtbl.t;
  cache_fifo : cache_key Queue.t;  (** shed order under pressure *)
  mutable rr : int;  (** striping rotation within a priority band *)
  mutable drain_hook : (unit -> unit) option;
  mutable hist : Sim.Hist.t option;
  mutable spans : Sim.Span.t option;
  mutable lockq : (Sim.Lockstat.t * Sim.Lockstat.lock) option;
}

(* Slots a cache fill must leave free on its device, so the cache never
   crowds dirty-pageout traffic out of the fast tier. *)
let cache_reserve = 8

let create ~specs ~page_size ~clock ~costs ~stats =
  if specs = [] then invalid_arg "Swaptier.create: no devices";
  let base = ref 0 in
  let devices =
    Array.of_list
      (List.mapi
         (fun i spec ->
           if spec.tier_pages < 1 then
             invalid_arg "Swaptier.create: empty device";
           let dev =
             Swapdev.create ~trace_base:!base ~trace_tier:spec.tier_name
               ~nslots:spec.tier_pages ~page_size ~clock
               ~costs:(Option.value spec.tier_costs ~default:costs)
               ~stats ()
           in
           let d =
             {
               dev_id = i;
               spec;
               base = !base;
               dev;
               alive = true;
               offline = false;
               draining = false;
               d_pageouts = 0;
               d_pageins = 0;
               d_migrated_out = 0;
             }
           in
           base := !base + spec.tier_pages;
           d)
         specs)
  in
  let order = Array.copy devices in
  Array.sort
    (fun a b ->
      compare
        (a.spec.tier_priority, a.dev_id)
        (b.spec.tier_priority, b.dev_id))
    order;
  let bands =
    Array.to_list order
    |> List.fold_left
         (fun acc d ->
           match acc with
           | (p, band) :: rest when p = d.spec.tier_priority ->
               (p, d :: band) :: rest
           | _ -> (d.spec.tier_priority, [ d ]) :: acc)
         []
    |> List.rev_map (fun (_, band) -> Array.of_list (List.rev band))
    |> Array.of_list
  in
  {
    devices;
    bands;
    page_size;
    clock;
    stats;
    cache = Hashtbl.create 64;
    cache_rev = Hashtbl.create 64;
    cache_fifo = Queue.create ();
    rr = 0;
    drain_hook = None;
    hist = None;
    spans = None;
    lockq = None;
  }

let set_hist t h =
  t.hist <- h;
  Array.iter (fun d -> Swapdev.set_hist d.dev h) t.devices

let set_spans t s = t.spans <- s

let set_lockstat t reg =
  t.lockq <-
    Option.map
      (fun ls -> (ls, Sim.Lockstat.register ls ~cls:"swap" "swaptier"))
      reg

(* Every public tier entry point holds the swap-tier lock for its
   duration.  Nested calls (write_resilient -> write_cluster, drain ->
   migrate_slot) re-enter the same handle; the registry's recursion
   depth makes that one recorded outer hold, not two. *)
let with_tier_lock t ~mode f =
  match t.lockq with
  | None -> f ()
  | Some (ls, l) ->
      Sim.Lockstat.acquire ls l ~mode;
      Fun.protect ~finally:(fun () -> Sim.Lockstat.release ls l) f

(* Device I/O spans carry the tier in the subsystem key ("swap:slow"),
   so the critical-path breakdown attributes tail latency to the tier
   that caused it, not just "swap". *)
let span_start t ~subsys name =
  match t.spans with
  | Some c when Sim.Span.enabled c ->
      Some (Sim.Span.start c ~subsys ~ts:(Sim.Simclock.now t.clock) name)
  | _ -> None

let span_finish t sp ?(detail = []) () =
  match (t.spans, sp) with
  | Some c, Some sp ->
      Sim.Span.finish c sp ~ts:(Sim.Simclock.now t.clock) ~detail ()
  | _ -> ()

let result_str = function Ok () -> "ok" | Error _ -> "error"

let trace_instant t ?(detail = []) name =
  match t.hist with
  | None -> ()
  | Some h ->
      Sim.Hist.record h ~subsys:Sim.Hist.Swap ~ts:(Sim.Simclock.now t.clock)
        ~detail name

let device_of t ~slot =
  let rec go i =
    if i >= Array.length t.devices then
      invalid_arg "Swaptier: slot outside every device"
    else
      let d = t.devices.(i) in
      if slot > d.base && slot <= d.base + d.spec.tier_pages then d
      else go (i + 1)
  in
  go 0

let find_device t name =
  Array.to_list t.devices
  |> List.find_opt (fun d -> d.spec.tier_name = name)

let device_exn t name =
  match find_device t name with
  | Some d -> d
  | None -> invalid_arg ("Swaptier: no device named " ^ name)

(* -- aggregate accounting -------------------------------------------- *)

let sum f t = Array.fold_left (fun acc d -> acc + f d) 0 t.devices

let capacity t = sum (fun d -> d.spec.tier_pages) t
let slots_in_use t = sum (fun d -> Swapdev.slots_in_use d.dev) t

let slots_usable t =
  sum
    (fun d ->
      if d.alive && not d.offline then Swapdev.slots_usable d.dev else 0)
    t

let bad_slot_count t = sum (fun d -> Swapdev.bad_slot_count d.dev) t

let is_bad_slot t ~slot =
  let d = device_of t ~slot in
  (not d.alive) || Swapdev.is_bad_slot d.dev ~slot:(slot - d.base)

let is_allocated_slot t ~slot =
  let d = device_of t ~slot in
  Swapdev.is_allocated_slot d.dev ~slot:(slot - d.base)

let disks t = Array.to_list t.devices |> List.map (fun d -> Swapdev.disk d.dev)
let disk t = Swapdev.disk t.devices.(0).dev

(* -- swapcache bookkeeping ------------------------------------------- *)

let cache_slots t = Hashtbl.length t.cache

let cache_drop t ~reason key =
  match Hashtbl.find_opt t.cache key with
  | None -> ()
  | Some g ->
      Hashtbl.remove t.cache key;
      Hashtbl.remove t.cache_rev g;
      let d = device_of t ~slot:g in
      Swapdev.free_slots d.dev ~slot:(g - d.base) ~n:1;
      t.stats.Sim.Stats.swap_cache_evictions <-
        t.stats.Sim.Stats.swap_cache_evictions + 1;
      trace_instant t
        ~detail:[ ("slot", string_of_int g); ("reason", reason) ]
        "cache_evict"

(* Shed one cache entry in fill order; false when the cache is empty.
   The FIFO may hold keys already invalidated — skip them lazily. *)
let rec shed_one t =
  if Queue.is_empty t.cache_fifo then false
  else
    let key = Queue.pop t.cache_fifo in
    if Hashtbl.mem t.cache key then begin
      cache_drop t ~reason:"pressure" key;
      true
    end
    else shed_one t

(* -- allocation ------------------------------------------------------ *)

let allocatable d = d.alive && not d.offline

(* Priority-ordered first fit: walk bands best-first; within a band,
   rotate the starting device per successful allocation so equal-priority
   devices stripe.  Contiguous clusters never span devices. *)
let raw_alloc t ~n ~pred =
  let found = ref None in
  Array.iter
    (fun band ->
      if !found = None then begin
        let len = Array.length band in
        let start = t.rr mod len in
        let i = ref 0 in
        while !found = None && !i < len do
          let d = band.((start + !i) mod len) in
          (if pred d then
             match Swapdev.alloc_slots d.dev ~n with
             | Some local -> found := Some (d.base + local, d)
             | None -> ());
          incr i
        done
      end)
    t.bands;
  (match !found with Some _ -> t.rr <- t.rr + 1 | None -> ());
  !found

(* Degradation ladder, first rung: when no device can satisfy the
   allocation, sacrifice swapcache entries — they are redundant copies of
   clean file pages — and retry until it fits or the cache is dry. *)
let alloc_where t ~n ~pred =
  let rec go () =
    match raw_alloc t ~n ~pred with
    | Some (g, _) -> Some g
    | None -> if shed_one t then go () else None
  in
  go ()

let alloc_slots t ~n =
  with_tier_lock t ~mode:Sim.Lockstat.Write @@ fun () ->
  alloc_where t ~n ~pred:allocatable

let free_slots t ~slot ~n =
  with_tier_lock t ~mode:Sim.Lockstat.Write @@ fun () ->
  let d = device_of t ~slot in
  Swapdev.free_slots d.dev ~slot:(slot - d.base) ~n

let mark_bad t ~slot =
  let d = device_of t ~slot in
  if d.alive then Swapdev.mark_bad d.dev ~slot:(slot - d.base)

(* -- paging I/O ------------------------------------------------------ *)

let dead_write_error slot =
  {
    Sim.Fault_plan.failed_op = Sim.Fault_plan.Write;
    severity = Sim.Fault_plan.Permanent;
    bad_slot = Some slot;
  }

let write_cluster t ~slot ~pages =
  with_tier_lock t ~mode:Sim.Lockstat.Write @@ fun () ->
  let d = device_of t ~slot in
  let sp = span_start t ~subsys:("swap:" ^ d.spec.tier_name) "write" in
  let r =
    if not d.alive then Error (dead_write_error slot)
    else begin
      let r = Swapdev.write_cluster d.dev ~slot:(slot - d.base) ~pages in
      (match r with
      | Ok () -> d.d_pageouts <- d.d_pageouts + List.length pages
      | Error _ -> ());
      r
    end
  in
  span_finish t sp
    ~detail:
      [
        ("slot", string_of_int slot);
        ("pages", string_of_int (List.length pages));
        ("result", result_str r);
      ]
    ();
  r

(* Reads are still served from a dead device: the failure model is dying
   media that rejects writes — that readability window is exactly what
   lets the pagedaemon drain survivors to healthy tiers. *)
let read_slot t ~slot ~dst =
  with_tier_lock t ~mode:Sim.Lockstat.Read @@ fun () ->
  let d = device_of t ~slot in
  let sp = span_start t ~subsys:("swap:" ^ d.spec.tier_name) "read" in
  let r = Swapdev.read_slot d.dev ~slot:(slot - d.base) ~dst in
  (match r with Ok () -> d.d_pageins <- d.d_pageins + 1 | Error _ -> ());
  span_finish t sp
    ~detail:[ ("slot", string_of_int slot); ("result", result_str r) ]
    ();
  r

let read_cluster t ~slot ~dsts =
  with_tier_lock t ~mode:Sim.Lockstat.Read @@ fun () ->
  let d = device_of t ~slot in
  let sp = span_start t ~subsys:("swap:" ^ d.spec.tier_name) "read" in
  let r = Swapdev.read_cluster d.dev ~slot:(slot - d.base) ~dsts in
  (match r with
  | Ok () -> d.d_pageins <- d.d_pageins + List.length dsts
  | Error _ -> ());
  span_finish t sp
    ~detail:
      [
        ("slot", string_of_int slot);
        ("pages", string_of_int (List.length dsts));
        ("result", result_str r);
      ]
    ();
  r

let backoff_delay ~backoff_us attempt =
  backoff_us *. (2.0 ** float_of_int attempt)

let read_resilient t ~retries ~backoff_us ~slot ~dst =
  with_tier_lock t ~mode:Sim.Lockstat.Read @@ fun () ->
  let rec go attempt =
    match read_slot t ~slot ~dst with
    | Ok () -> Ok ()
    | Error e -> (
        match e.Sim.Fault_plan.severity with
        | Sim.Fault_plan.Transient when attempt < retries ->
            Sim.Simclock.advance t.clock (backoff_delay ~backoff_us attempt);
            go (attempt + 1)
        | _ -> Error e)
  in
  go 0

type write_outcome = Swapdev.write_outcome =
  | Written
  | Reassigned of int
  | No_space of Sim.Fault_plan.error
  | Failed of Sim.Fault_plan.error

(* The single-device recovery policy lifted across tiers: a permanent
   error blacklists the slot (or hits an already-dead device) and the
   replacement range comes from priority-ordered allocation over the
   healthy devices — when it lands on a different device, that is a
   failover, counted and traced as such. *)
let write_resilient t ~retries ~backoff_us ~slot ~assign ~pages =
  with_tier_lock t ~mode:Sim.Lockstat.Write @@ fun () ->
  let n = List.length pages in
  let recovered = ref false in
  let outcome = ref Written in
  let rec go base attempt =
    match write_cluster t ~slot:base ~pages with
    | Ok () ->
        if !recovered then
          t.stats.Sim.Stats.pageouts_recovered <-
            t.stats.Sim.Stats.pageouts_recovered + 1;
        !outcome
    | Error e -> (
        match e.Sim.Fault_plan.severity with
        | Sim.Fault_plan.Transient when attempt < retries ->
            t.stats.Sim.Stats.pageout_retries <-
              t.stats.Sim.Stats.pageout_retries + 1;
            Sim.Simclock.advance t.clock (backoff_delay ~backoff_us attempt);
            recovered := true;
            go base (attempt + 1)
        | Sim.Fault_plan.Transient -> Failed e
        | Sim.Fault_plan.Permanent -> (
            let d = device_of t ~slot:base in
            let bad =
              match e.Sim.Fault_plan.bad_slot with
              | Some s when s >= base && s < base + n -> s
              | _ -> base
            in
            mark_bad t ~slot:bad;
            match alloc_slots t ~n with
            | None ->
                t.stats.Sim.Stats.swap_full_events <-
                  t.stats.Sim.Stats.swap_full_events + 1;
                No_space e
            | Some fresh ->
                let d' = device_of t ~slot:fresh in
                if d'.dev_id <> d.dev_id then begin
                  t.stats.Sim.Stats.swap_failovers <-
                    t.stats.Sim.Stats.swap_failovers + 1;
                  trace_instant t
                    ~detail:
                      [
                        ("from", d.spec.tier_name);
                        ("to", d'.spec.tier_name);
                        ("slot", string_of_int fresh);
                      ]
                    "failover"
                end;
                trace_instant t
                  ~detail:[ ("slot", string_of_int fresh) ]
                  "reassign";
                assign fresh;
                recovered := true;
                outcome := Reassigned fresh;
                go fresh 0))
  in
  go slot 0

(* -- device death, swapoff and drain --------------------------------- *)

let shed_device_cache t ~reason d =
  let victims =
    Hashtbl.fold
      (fun g key acc ->
        if g > d.base && g <= d.base + d.spec.tier_pages then key :: acc
        else acc)
      t.cache_rev []
  in
  List.iter (cache_drop t ~reason) (List.sort compare victims)

let take_offline t ~dead d =
  d.offline <- true;
  if dead then d.alive <- false;
  shed_device_cache t ~reason:(if dead then "device_dead" else "swapoff") d;
  d.draining <- Swapdev.slots_in_use d.dev > 0

let kill_device t ~name =
  let d = device_exn t name in
  if d.alive then begin
    t.stats.Sim.Stats.swap_devices_dead <-
      t.stats.Sim.Stats.swap_devices_dead + 1;
    trace_instant t ~detail:[ ("device", name) ] "device_dead";
    take_offline t ~dead:true d
  end

let drain_pending t = Array.exists (fun d -> d.draining) t.devices

let set_drain_hook t hook = t.drain_hook <- hook

let run_drain t =
  if drain_pending t then begin
    with_tier_lock t ~mode:Sim.Lockstat.Write @@ fun () ->
    let sp = span_start t ~subsys:"swap" "drain" in
    (match t.drain_hook with Some f -> f () | None -> ());
    Array.iter
      (fun d ->
        if d.draining && Swapdev.slots_in_use d.dev = 0 then begin
          d.draining <- false;
          trace_instant t
            ~detail:[ ("device", d.spec.tier_name) ]
            "drain_complete"
        end)
      t.devices;
    span_finish t sp ()
  end

let swapoff t ~name =
  let d = device_exn t name in
  if not d.offline then begin
    trace_instant t ~detail:[ ("device", name) ] "swapoff";
    take_offline t ~dead:false d
  end;
  run_drain t

let slot_needs_drain t ~slot =
  let d = device_of t ~slot in
  d.offline && Swapdev.is_allocated_slot d.dev ~slot:(slot - d.base)

(* Copy one surviving slot to a healthy device.  Returns the fresh global
   slot; the caller rebinds its bookkeeping and frees the old slot.  None
   when the slot has no stored bytes (owner will rewrite it), the read
   failed, or no healthy device has room even after shedding cache. *)
let migrate_data t ~slot ~src =
    match Swapdev.read_raw src.dev ~slot:(slot - src.base) with
    | Error _ -> None
    | Ok data -> (
        let pred d = allocatable d && d.dev_id <> src.dev_id in
        match alloc_where t ~n:1 ~pred with
        | None -> None
        | Some g -> (
            let dst = device_of t ~slot:g in
            match Swapdev.write_raw dst.dev ~slot:(g - dst.base) data with
            | Error _ ->
                Swapdev.free_slots dst.dev ~slot:(g - dst.base) ~n:1;
                None
            | Ok () ->
                src.d_migrated_out <- src.d_migrated_out + 1;
                t.stats.Sim.Stats.swap_migrations <-
                  t.stats.Sim.Stats.swap_migrations + 1;
                trace_instant t
                  ~detail:
                    [
                      ("from", src.spec.tier_name);
                      ("to", dst.spec.tier_name);
                      ("slot", string_of_int slot);
                      ("new", string_of_int g);
                    ]
                  "migrate";
                Some g))

let migrate_slot t ~slot =
  with_tier_lock t ~mode:Sim.Lockstat.Write @@ fun () ->
  let src = device_of t ~slot in
  if not (Swapdev.has_data src.dev ~slot:(slot - src.base)) then None
  else begin
    let sp = span_start t ~subsys:"swap" "migrate" in
    let r = migrate_data t ~slot ~src in
    span_finish t sp
      ~detail:
        [
          ("slot", string_of_int slot);
          ("result", match r with Some g -> string_of_int g | None -> "none");
        ]
      ();
    r
  end

(* -- swapcache ------------------------------------------------------- *)

(* A cache fill only makes sense on a device strictly faster (lower
   priority number) than the slowest healthy tier: with one device — the
   default single-tier boot — caching a clean page there buys nothing
   over re-reading the file, so the cache stays inert and single-device
   behaviour is exactly as before. *)
let fill_target t =
  let worst = ref min_int in
  Array.iter
    (fun d ->
      if allocatable d then worst := max !worst d.spec.tier_priority)
    t.devices;
  let best = ref None in
  Array.iter
    (fun d ->
      if
        allocatable d
        && d.spec.tier_priority < !worst
        && Swapdev.slots_usable d.dev - Swapdev.slots_in_use d.dev
           > cache_reserve
      then
        match !best with
        | Some b when b.spec.tier_priority <= d.spec.tier_priority -> ()
        | _ -> best := Some d)
    t.devices;
  !best

let cache_put t ~vid ~pgno ~(page : Physmem.Page.t) =
  with_tier_lock t ~mode:Sim.Lockstat.Write @@ fun () ->
  let key = (vid, pgno) in
  if not (Hashtbl.mem t.cache key) then
    match fill_target t with
    | None -> ()
    | Some d -> (
        match Swapdev.alloc_slots d.dev ~n:1 with
        | None -> ()
        | Some local -> (
            match Swapdev.write_raw d.dev ~slot:local page.Physmem.Page.data with
            | Error _ -> Swapdev.free_slots d.dev ~slot:local ~n:1
            | Ok () ->
                let g = d.base + local in
                Hashtbl.replace t.cache key g;
                Hashtbl.replace t.cache_rev g key;
                Queue.push key t.cache_fifo;
                t.stats.Sim.Stats.swap_cache_fills <-
                  t.stats.Sim.Stats.swap_cache_fills + 1;
                trace_instant t
                  ~detail:
                    [
                      ("vid", string_of_int vid);
                      ("pgno", string_of_int pgno);
                      ("slot", string_of_int g);
                    ]
                  "cache_fill"))

let cache_contains t ~vid ~pgno = Hashtbl.mem t.cache (vid, pgno)

let cache_lookup t ~vid ~pgno ~(dst : Physmem.Page.t) =
  with_tier_lock t ~mode:Sim.Lockstat.Read @@ fun () ->
  match Hashtbl.find_opt t.cache (vid, pgno) with
  | None -> false
  | Some g -> (
      let d = device_of t ~slot:g in
      match Swapdev.read_raw d.dev ~slot:(g - d.base) with
      | Error _ ->
          (* Unreadable cache entry: drop it and let the caller fall back
             to the vnode — the canonical copy is always the file. *)
          cache_drop t ~reason:"read_error" (vid, pgno);
          false
      | Ok data ->
          Bytes.blit data 0 dst.Physmem.Page.data 0 t.page_size;
          dst.Physmem.Page.dirty <- false;
          d.d_pageins <- d.d_pageins + 1;
          t.stats.Sim.Stats.swap_cache_hits <-
            t.stats.Sim.Stats.swap_cache_hits + 1;
          trace_instant t
            ~detail:
              [
                ("vid", string_of_int vid);
                ("pgno", string_of_int pgno);
                ("slot", string_of_int g);
              ]
            "cache_hit";
          true)

let cache_invalidate t ~vid ~pgno =
  with_tier_lock t ~mode:Sim.Lockstat.Write @@ fun () ->
  cache_drop t ~reason:"invalidate" (vid, pgno)

let cache_invalidate_obj t ~vid =
  with_tier_lock t ~mode:Sim.Lockstat.Write @@ fun () ->
  let victims =
    Hashtbl.fold
      (fun ((v, _) as key) _ acc -> if v = vid then key :: acc else acc)
      t.cache []
  in
  List.iter (cache_drop t ~reason:"invalidate") (List.sort compare victims)

(* -- introspection --------------------------------------------------- *)

type tier_info = {
  ti_name : string;
  ti_priority : int;
  ti_capacity : int;
  ti_in_use : int;
  ti_usable : int;
  ti_alive : bool;
  ti_draining : bool;
  ti_pageouts : int;
  ti_pageins : int;
  ti_migrated_out : int;
  ti_cache_slots : int;
}

let tiers t =
  Array.to_list t.devices
  |> List.map (fun d ->
         let cached =
           Hashtbl.fold
             (fun g _ acc ->
               if g > d.base && g <= d.base + d.spec.tier_pages then acc + 1
               else acc)
             t.cache_rev 0
         in
         {
           ti_name = d.spec.tier_name;
           ti_priority = d.spec.tier_priority;
           ti_capacity = d.spec.tier_pages;
           ti_in_use = Swapdev.slots_in_use d.dev;
           ti_usable = Swapdev.slots_usable d.dev;
           ti_alive = d.alive;
           ti_draining = d.draining;
           ti_pageouts = d.d_pageouts;
           ti_pageins = d.d_pageins;
           ti_migrated_out = d.d_migrated_out;
           ti_cache_slots = cached;
         })

let device_alive t ~name = (device_exn t name).alive

(* -- audit support --------------------------------------------------- *)

let cache_claims t =
  Hashtbl.fold
    (fun (vid, pgno) slot acc -> ((vid, pgno), slot) :: acc)
    t.cache []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let slot_on_dead_device t ~slot = not (device_of t ~slot).alive

(* A device that finished draining may never own slots again (nothing
   allocates on an offline device); a violation means the allocator
   handed out slots on retired media. *)
let undrained_violation t =
  Array.to_list t.devices
  |> List.find_opt (fun d ->
         d.offline && (not d.draining) && Swapdev.slots_in_use d.dev > 0)
  |> Option.map (fun d -> d.spec.tier_name)

module Testhook = struct
  (* Seeded corruption for the torture oracle: a swapcache entry whose
     slot was freed underneath it — the cache claims media it no longer
     owns, which the cross-tier audit must attribute to Swap. *)
  let leak_cache_entry t =
    match alloc_slots t ~n:1 with
    | None -> false
    | Some g ->
        let key = (-1, 0) in
        Hashtbl.replace t.cache key g;
        Hashtbl.replace t.cache_rev g key;
        Queue.push key t.cache_fifo;
        free_slots t ~slot:g ~n:1;
        true
end

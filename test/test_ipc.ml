(* The IPC subsystem (pipes/sockets over mbuf chains, paper §6-§7):
   policy equivalence across Copy/Loan/Mexp and across kernels, COW on
   write-after-send, pageout of staged pages mid-transfer, mapped
   delivery, the vslock'd physio path, and the loan-count census. *)

module Vt = Vmiface.Vmtypes
module M = Vmiface.Machine

let ps = 4096

(* A deterministic chunked transfer through one pipe, identical for any
   VM system and policy; returns a transcript of accepted/received
   counts plus every delivered byte.  Audits after every syscall, so an
   IPC path that corrupts VM state fails loudly here. *)
module Stream (V : Vmiface.Vm_sig.VM_SYS) = struct
  module I = Ipc.Make (V)

  let pattern n = Bytes.init n (fun i -> Char.chr ((i * 7 + 13) land 0xff))

  let run ~policy ?cap_bytes ?(vslocked = false) () =
    let config = { M.default_config with ram_pages = 512; swap_pages = 1024 } in
    let sys = V.boot ~config () in
    let tx = V.new_vmspace sys and rx = V.new_vmspace sys in
    let src =
      V.mmap sys tx ~npages:8 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero
    in
    let dst =
      V.mmap sys rx ~npages:8 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero
    in
    let src_addr = src * ps and dst_addr = dst * ps in
    V.write_bytes sys tx ~addr:src_addr (pattern (8 * ps));
    let ch = I.pipe sys ?cap_bytes () in
    let out = Buffer.create 1024 in
    let sends =
      (* Unaligned, page-aligned and multi-page payloads. *)
      [ (0, 300); (300, 4096); (4396, 33); (8192, 4096); (12288, 8192); (20480, 1) ]
    in
    List.iter
      (fun (off, len) ->
        let sent =
          I.send sys tx ~vslocked ch ~policy ~addr:(src_addr + off) ~len
        in
        V.audit sys;
        let rec drain () =
          match I.recv sys rx ~vslocked ch ~addr:dst_addr ~len:(8 * ps) with
          | I.Data 0 -> ()
          | I.Data n ->
              Buffer.add_bytes out (V.read_bytes sys rx ~addr:dst_addr ~len:n);
              drain ()
          | I.Mapped _ -> assert false
        in
        drain ();
        V.audit sys;
        Buffer.add_string out (Printf.sprintf "|sent=%d|" sent))
      sends;
    I.close sys ch;
    V.audit sys;
    Buffer.contents out
end

module SU = Stream (Uvm.Sys)
module SB = Stream (Bsdvm.Sys)

let test_policy_equivalence () =
  let reference = SB.run ~policy:Ipc.Copy () in
  List.iter
    (fun policy ->
      Alcotest.(check string)
        (Printf.sprintf "UVM %s stream" (Ipc.policy_name policy))
        reference
        (SU.run ~policy ());
      Alcotest.(check string)
        (Printf.sprintf "BSD %s stream (degrades to copy)"
           (Ipc.policy_name policy))
        reference
        (SB.run ~policy ()))
    Ipc.all_policies

let test_backpressure_policy_independent () =
  (* Acceptance is capacity-driven only, so a tiny socket buffer yields
     the same accepted counts for every policy on every kernel. *)
  let reference = SB.run ~policy:Ipc.Copy ~cap_bytes:1000 () in
  List.iter
    (fun policy ->
      Alcotest.(check string)
        (Printf.sprintf "capped UVM %s stream" (Ipc.policy_name policy))
        reference
        (SU.run ~policy ~cap_bytes:1000 ()))
    Ipc.all_policies

let test_vslocked_stream () =
  let reference = SB.run ~policy:Ipc.Copy () in
  Alcotest.(check string)
    "vslock'd UVM loan stream" reference
    (SU.run ~policy:Ipc.Loan ~vslocked:true ());
  Alcotest.(check string)
    "vslock'd BSD copy stream" reference
    (SB.run ~policy:Ipc.Copy ~vslocked:true ())

(* -- UVM-specific mechanics --------------------------------------------- *)

module S = Uvm.Sys
module IU = Ipc.Make (Uvm.Sys)

let mk ?(ram_pages = 512) () =
  let config = { M.default_config with ram_pages; swap_pages = 1024 } in
  let sys = S.boot ~config () in
  (sys, S.new_vmspace sys, S.new_vmspace sys)

let stats sys = (S.machine sys).M.stats

let test_vslock_counted () =
  let sys, tx, rx = mk () in
  let src = S.mmap sys tx ~npages:1 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  let dst = S.mmap sys rx ~npages:1 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  S.write_bytes sys tx ~addr:(src * ps) (Bytes.of_string "physio");
  let ch = IU.pipe sys () in
  ignore (IU.send sys tx ~vslocked:true ch ~policy:Ipc.Loan ~addr:(src * ps) ~len:6);
  ignore (IU.recv sys rx ~vslocked:true ch ~addr:(dst * ps) ~len:6);
  Alcotest.(check int) "two vslock'd transfers" 2 (stats sys).Sim.Stats.vslock_ios;
  Alcotest.(check string) "payload" "physio"
    (Bytes.to_string (S.read_bytes sys rx ~addr:(dst * ps) ~len:6));
  IU.close sys ch

let test_cow_write_after_send () =
  let sys, tx, rx = mk () in
  let src = S.mmap sys tx ~npages:1 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  let dst = S.mmap sys rx ~npages:1 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  S.write_bytes sys tx ~addr:(src * ps) (Bytes.of_string "original");
  let ch = IU.pipe sys () in
  let sent = IU.send sys tx ch ~policy:Ipc.Loan ~addr:(src * ps) ~len:8 in
  Alcotest.(check int) "accepted" 8 sent;
  Alcotest.(check bool) "bytes moved by loan, not copy" true
    ((stats sys).Sim.Stats.ipc_bytes_loaned = 8);
  (* The sender scribbles after send: the queued data must be the
     pre-write snapshot (COW broke the loan). *)
  S.write_bytes sys tx ~addr:(src * ps) (Bytes.of_string "SCRIBBLE");
  S.audit sys;
  (match IU.recv sys rx ch ~addr:(dst * ps) ~len:8 with
  | IU.Data 8 -> ()
  | _ -> Alcotest.fail "expected 8 bytes");
  Alcotest.(check string) "receiver sees pre-write data" "original"
    (Bytes.to_string (S.read_bytes sys rx ~addr:(dst * ps) ~len:8));
  Alcotest.(check string) "sender sees its write" "SCRIBBLE"
    (Bytes.to_string (S.read_bytes sys tx ~addr:(src * ps) ~len:8));
  S.audit sys;
  IU.close sys ch

let test_owner_exit_mid_transfer () =
  let sys, tx, rx = mk () in
  let src = S.mmap sys tx ~npages:1 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  let dst = S.mmap sys rx ~npages:1 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  S.write_bytes sys tx ~addr:(src * ps) (Bytes.of_string "survive");
  let ch = IU.pipe sys () in
  ignore (IU.send sys tx ch ~policy:Ipc.Loan ~addr:(src * ps) ~len:7);
  (* Sender exits with the loan outstanding: the frame goes to limbo and
     must still satisfy the receive, and the census must stay clean. *)
  S.destroy_vmspace sys tx;
  S.audit sys;
  (match IU.recv sys rx ch ~addr:(dst * ps) ~len:7 with
  | IU.Data 7 -> ()
  | _ -> Alcotest.fail "expected 7 bytes");
  Alcotest.(check string) "data survives owner exit" "survive"
    (Bytes.to_string (S.read_bytes sys rx ~addr:(dst * ps) ~len:7));
  S.audit sys;
  IU.close sys ch;
  S.audit sys

let test_mexp_pageout_mid_transfer () =
  (* A mexp-staged page is neither wired nor loaned, so the pagedaemon
     may evict it mid-transfer; the receive path must fault it back. *)
  let sys, tx, rx = mk ~ram_pages:128 () in
  let src = S.mmap sys tx ~npages:1 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  let dst = S.mmap sys rx ~npages:1 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  S.write_bytes sys tx ~addr:(src * ps) (Bytes.of_string "paged-out");
  let ch = IU.pipe sys () in
  let sent = IU.send sys tx ch ~policy:Ipc.Mexp ~addr:(src * ps) ~len:ps in
  Alcotest.(check int) "whole page accepted" ps sent;
  Alcotest.(check int) "moved by mapping" ps (stats sys).Sim.Stats.ipc_bytes_mapped;
  (* Memory pressure: push everything reclaimable out to swap. *)
  let hog = S.new_vmspace sys in
  let big = S.mmap sys hog ~npages:300 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  for i = 0 to 299 do
    S.write_bytes sys hog ~addr:((big + i) * ps) (Bytes.of_string "z")
  done;
  Alcotest.(check bool) "pressure caused pageouts" true
    ((stats sys).Sim.Stats.pageouts > 0);
  S.audit sys;
  (match IU.recv sys rx ch ~addr:(dst * ps) ~len:ps with
  | IU.Data n -> Alcotest.(check int) "full page received" ps n
  | IU.Mapped _ -> Alcotest.fail "unrequested mapped delivery");
  Alcotest.(check string) "data faulted back in" "paged-out"
    (Bytes.to_string (S.read_bytes sys rx ~addr:(dst * ps) ~len:9));
  S.audit sys;
  IU.close sys ch

let test_mapped_delivery () =
  let sys, tx, rx = mk () in
  let src = S.mmap sys tx ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  let dst = S.mmap sys rx ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  S.write_bytes sys tx ~addr:(src * ps) (Bytes.of_string "mapped!");
  let ch = IU.pipe sys () in
  ignore (IU.send sys tx ch ~policy:Ipc.Mexp ~addr:(src * ps) ~len:(2 * ps));
  S.audit sys;
  (match
     IU.recv sys rx ~accept_mapped:true ch ~addr:(dst * ps) ~len:(2 * ps)
   with
  | IU.Mapped { vpn; npages; len } ->
      Alcotest.(check int) "two pages" 2 npages;
      Alcotest.(check int) "whole payload" (2 * ps) len;
      Alcotest.(check string) "zero-copy contents" "mapped!"
        (Bytes.to_string (S.read_bytes sys rx ~addr:(vpn * ps) ~len:7));
      (* Receiver writes into the donated mapping: COW must isolate the
         sender. *)
      S.write_bytes sys rx ~addr:(vpn * ps) (Bytes.of_string "altered");
      Alcotest.(check string) "sender isolated from receiver write" "mapped!"
        (Bytes.to_string (S.read_bytes sys tx ~addr:(src * ps) ~len:7))
  | IU.Data _ -> Alcotest.fail "expected mapped delivery");
  S.audit sys;
  IU.close sys ch;
  S.audit sys

let test_loan_census_over_chain () =
  let sys, tx, rx = mk () in
  let src = S.mmap sys tx ~npages:4 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  let dst = S.mmap sys rx ~npages:4 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  S.access_range sys tx ~vpn:src ~npages:4 Vt.Write;
  let ch = IU.pipe sys () in
  (* Several loans outstanding at once; the census must match at every
     intermediate state, including after close drops the chain. *)
  ignore (IU.send sys tx ch ~policy:Ipc.Loan ~addr:(src * ps) ~len:(2 * ps));
  S.audit sys;
  ignore (IU.send sys tx ch ~policy:Ipc.Loan ~addr:((src + 2) * ps) ~len:100);
  S.audit sys;
  ignore (IU.recv sys rx ch ~addr:(dst * ps) ~len:300);
  S.audit sys;
  IU.close sys ch;
  S.audit sys;
  (* All loans returned: every frame's loan_count is back to zero. *)
  Physmem.iter_pages
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "page %d unloaned" p.Physmem.Page.id)
        0 p.Physmem.Page.loan_count)
    (Uvm.State.physmem sys.S.usys)

let () =
  Alcotest.run "ipc"
    [
      ( "streams",
        [
          Alcotest.test_case "policy equivalence" `Quick test_policy_equivalence;
          Alcotest.test_case "backpressure policy-independent" `Quick
            test_backpressure_policy_independent;
          Alcotest.test_case "vslock'd streams" `Quick test_vslocked_stream;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "vslock counted" `Quick test_vslock_counted;
          Alcotest.test_case "COW write-after-send" `Quick
            test_cow_write_after_send;
          Alcotest.test_case "owner exit mid-transfer" `Quick
            test_owner_exit_mid_transfer;
          Alcotest.test_case "mexp pageout mid-transfer" `Quick
            test_mexp_pageout_mid_transfer;
          Alcotest.test_case "mapped delivery" `Quick test_mapped_delivery;
          Alcotest.test_case "loan census over chain" `Quick
            test_loan_census_over_chain;
        ] );
    ]

(* The lock observatory: registry semantics (recursion, read/write
   split, span attribution), the lockdep-style order auditor (ABBA must
   cycle, acquire_root must break the context), the would-be-contention
   projection's determinism, folded-profile telescoping, and the
   end-to-end experiment covering every lock class on both kernels. *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* A registry on a hand-cranked clock. *)
let make_reg () =
  let t = ref 0.0 in
  let reg = Sim.Lockstat.create ~enabled:true ~now:(fun () -> !t) () in
  (reg, t)

(* -- order auditing ----------------------------------------------------- *)

let test_abba_cycle () =
  let reg, _ = make_reg () in
  let a = Sim.Lockstat.register reg ~cls:"alpha" "a0" in
  let b = Sim.Lockstat.register reg ~cls:"beta" "b0" in
  (* alpha -> beta ... *)
  Sim.Lockstat.acquire reg a ~mode:Sim.Lockstat.Write;
  Sim.Lockstat.acquire reg b ~mode:Sim.Lockstat.Write;
  Sim.Lockstat.release reg b;
  Sim.Lockstat.release reg a;
  Alcotest.(check (list (list string))) "one nesting is acyclic" []
    (Sim.Lockstat.cycles reg);
  (* ... then beta -> alpha: the ABBA deadlock shape. *)
  Sim.Lockstat.acquire reg b ~mode:Sim.Lockstat.Write;
  Sim.Lockstat.acquire reg a ~mode:Sim.Lockstat.Write;
  Sim.Lockstat.release reg a;
  Sim.Lockstat.release reg b;
  (match Sim.Lockstat.cycles reg with
  | [ cyc ] ->
      Alcotest.(check (list string))
        "cycle names both classes, smallest first" [ "alpha"; "beta" ] cyc
  | other ->
      Alcotest.failf "expected exactly one cycle, got %d" (List.length other));
  (* The Check.Lock audit class reports it as an invariant failure. *)
  match Check.check_lock_order ~system:"TEST" reg with
  | () -> Alcotest.fail "check_lock_order accepted an ABBA cycle"
  | exception Check.Audit_failure f ->
      Alcotest.(check string) "subsystem" "lock"
        (Check.subsystem_name f.Check.subsys);
      Alcotest.(check string) "invariant" "order_cycle" f.Check.invariant;
      Alcotest.(check bool) "detail names alpha" true
        (contains ~sub:"alpha" f.Check.detail);
      Alcotest.(check bool) "detail names beta" true
        (contains ~sub:"beta" f.Check.detail)

let test_empty_registry_audits_clean () =
  let reg, _ = make_reg () in
  Check.check_lock_order ~system:"TEST" reg;
  Alcotest.(check (list (list string))) "no cycles" []
    (Sim.Lockstat.cycles reg)

let test_acquire_root_breaks_context () =
  let reg, _ = make_reg () in
  let a = Sim.Lockstat.register reg ~cls:"alpha" "a0" in
  let r = Sim.Lockstat.register reg ~cls:"daemon" "d0" in
  let b = Sim.Lockstat.register reg ~cls:"beta" "b0" in
  (* alpha held; the daemon runs as a context break; beta under it. *)
  Sim.Lockstat.acquire reg a ~mode:Sim.Lockstat.Write;
  Sim.Lockstat.acquire_root reg r ~mode:Sim.Lockstat.Write;
  Sim.Lockstat.acquire reg b ~mode:Sim.Lockstat.Write;
  Sim.Lockstat.release reg b;
  Sim.Lockstat.release reg r;
  Sim.Lockstat.release reg a;
  let edges =
    List.map (fun (h, a, _) -> (h, a)) (Sim.Lockstat.order_edges reg)
  in
  Alcotest.(check bool) "daemon -> beta drawn" true
    (List.mem ("daemon", "beta") edges);
  Alcotest.(check bool) "no alpha -> daemon edge" false
    (List.mem ("alpha", "daemon") edges);
  Alcotest.(check bool) "no alpha -> beta edge across the break" false
    (List.mem ("alpha", "beta") edges);
  (* The reverse nesting outside the break is therefore still legal. *)
  Sim.Lockstat.acquire reg b ~mode:Sim.Lockstat.Write;
  Sim.Lockstat.acquire reg a ~mode:Sim.Lockstat.Write;
  Sim.Lockstat.release reg a;
  Sim.Lockstat.release reg b;
  Alcotest.(check (list (list string))) "still acyclic" []
    (Sim.Lockstat.cycles reg)

(* -- registry accounting ------------------------------------------------ *)

let test_recursion_records_once () =
  let reg, now = make_reg () in
  let a = Sim.Lockstat.register reg ~cls:"alpha" "a0" in
  Sim.Lockstat.acquire reg a ~mode:Sim.Lockstat.Write;
  now := 5.0;
  Sim.Lockstat.acquire reg a ~mode:Sim.Lockstat.Write;
  now := 7.0;
  Sim.Lockstat.release reg a;
  now := 10.0;
  Sim.Lockstat.release reg a;
  match Sim.Lockstat.views reg with
  | [ cv ] ->
      Alcotest.(check int) "one outermost acquire" 1
        cv.Sim.Lockstat.cv_acquires;
      Alcotest.(check (float 1e-9)) "hold spans the outermost pair" 10.0
        cv.Sim.Lockstat.cv_max_hold_us
  | other -> Alcotest.failf "expected one class view, got %d" (List.length other)

let test_mode_split_and_attribution () =
  let t = ref 0.0 in
  let reg = Sim.Lockstat.create ~enabled:true ~now:(fun () -> !t) () in
  let spans = Sim.Span.create ~enabled:true () in
  Sim.Lockstat.set_spans reg (Some spans);
  let a = Sim.Lockstat.register reg ~cls:"alpha" "a0" in
  (* One write hold attributed to "fault", one read hold to "pager". *)
  let s1 = Sim.Span.start spans ~subsys:"fault" ~ts:0.0 "fault" in
  Sim.Lockstat.acquire reg a ~mode:Sim.Lockstat.Write;
  t := 4.0;
  Sim.Lockstat.release reg a;
  Sim.Span.finish spans s1 ~ts:5.0 ();
  let s2 = Sim.Span.start spans ~subsys:"pager" ~ts:5.0 "pagein" in
  t := 5.0;
  Sim.Lockstat.acquire reg a ~mode:Sim.Lockstat.Read;
  t := 6.0;
  Sim.Lockstat.release reg a;
  Sim.Span.finish spans s2 ~ts:7.0 ();
  (match Sim.Lockstat.views reg with
  | [ cv ] ->
      Alcotest.(check int) "reads" 1 cv.Sim.Lockstat.cv_reads;
      Alcotest.(check int) "writes" 1 cv.Sim.Lockstat.cv_writes;
      Alcotest.(check int) "read histogram count" 1
        (Sim.Histogram.count cv.Sim.Lockstat.cv_read_hold);
      Alcotest.(check int) "write histogram count" 1
        (Sim.Histogram.count cv.Sim.Lockstat.cv_write_hold);
      let subsys (name : string) =
        match
          List.find_opt
            (fun (s, _, _) -> s = name)
            cv.Sim.Lockstat.cv_by_subsys
        with
        | Some (_, holds, total) -> (holds, total)
        | None -> Alcotest.failf "no %s attribution" name
      in
      let fh, ft = subsys "fault" in
      Alcotest.(check int) "one hold under fault" 1 fh;
      Alcotest.(check (float 1e-9)) "4us under fault" 4.0 ft;
      let ph, _ = subsys "pager" in
      Alcotest.(check int) "one hold under pager" 1 ph
  | other -> Alcotest.failf "expected one class view, got %d" (List.length other));
  (* The holds opened "lock:alpha" spans under the active span. *)
  let lock_spans =
    List.filter
      (fun s -> s.Sim.Span.sname = "lock:alpha")
      (Sim.Span.spans spans)
  in
  Alcotest.(check int) "two lock spans" 2 (List.length lock_spans);
  List.iter
    (fun s ->
      Alcotest.(check string) "lock span subsys is the class" "alpha"
        s.Sim.Span.ssubsys)
    lock_spans

let test_disabled_registry_is_inert () =
  let t = ref 0.0 in
  let reg = Sim.Lockstat.create ~now:(fun () -> !t) () in
  Alcotest.(check bool) "disabled by default" false (Sim.Lockstat.enabled reg);
  let a = Sim.Lockstat.register reg ~cls:"alpha" "a0" in
  Sim.Lockstat.acquire reg a ~mode:Sim.Lockstat.Write;
  Sim.Lockstat.release reg a;
  Alcotest.(check int) "nothing recorded" 0 (Sim.Lockstat.total_acquires reg)

(* -- contention projection ---------------------------------------------- *)

let record_intervals reg =
  let a = Sim.Lockstat.register reg ~cls:"alpha" "a0" in
  a

let test_projection_deterministic () =
  let reg, now = make_reg () in
  let a = record_intervals reg in
  for i = 0 to 63 do
    now := float_of_int (i * 10);
    Sim.Lockstat.acquire reg a ~mode:Sim.Lockstat.Write;
    now := !now +. 4.0;
    Sim.Lockstat.release reg a
  done;
  let p1 = Sim.Lockstat.project reg ~cls:"alpha" ~cpus:4 ~seed:42 in
  let p2 = Sim.Lockstat.project reg ~cls:"alpha" ~cpus:4 ~seed:42 in
  (match (p1, p2) with
  | Some p1, Some p2 ->
      Alcotest.(check int) "same events" p1.Sim.Lockstat.pj_events
        p2.Sim.Lockstat.pj_events;
      Alcotest.(check (float 1e-9)) "same projected wait"
        p1.Sim.Lockstat.pj_wait_us p2.Sim.Lockstat.pj_wait_us;
      Alcotest.(check int) "4 cpus replay 4x the acquires" (4 * 64)
        p1.Sim.Lockstat.pj_events;
      Alcotest.(check bool) "competition projects some wait" true
        (p1.Sim.Lockstat.pj_wait_us > 0.0)
  | _ -> Alcotest.fail "projection missing for a recorded class");
  (* One CPU replays the recording verbatim: the holds never overlapped,
     so nothing waits. *)
  (match Sim.Lockstat.project reg ~cls:"alpha" ~cpus:1 ~seed:42 with
  | Some p ->
      Alcotest.(check (float 1e-9)) "solo replay waits for nothing" 0.0
        p.Sim.Lockstat.pj_wait_us
  | None -> Alcotest.fail "solo projection missing");
  Alcotest.(check bool) "unrecorded class projects None" true
    (Sim.Lockstat.project reg ~cls:"nosuch" ~cpus:4 ~seed:42 = None)

(* -- folded profiles ---------------------------------------------------- *)

let test_fold_paths_telescopes () =
  let c = Sim.Span.create ~enabled:true () in
  let root = Sim.Span.start c ~subsys:"serve" ~ts:0.0 "request" in
  let f = Sim.Span.start c ~subsys:"fault" ~ts:2.0 "fault" in
  let io = Sim.Span.start c ~subsys:"pager" ~ts:3.0 "pagein" in
  Sim.Span.finish c io ~ts:7.0 ();
  Sim.Span.finish c f ~ts:8.0 ();
  Sim.Span.finish c root ~ts:10.0 ();
  let tree = Sim.Span.take_trace c ~trace:root.Sim.Span.strace in
  let folded = Sim.Span.fold_paths tree in
  let self path =
    match List.assoc_opt path folded with
    | Some v -> v
    | None -> Alcotest.failf "no folded line for %s" path
  in
  Alcotest.(check (float 1e-9)) "root self" 4.0 (self "request");
  Alcotest.(check (float 1e-9)) "mid self" 2.0 (self "request;fault");
  Alcotest.(check (float 1e-9)) "leaf self" 4.0 (self "request;fault;pagein");
  let total = List.fold_left (fun a (_, s) -> a +. s) 0.0 folded in
  Alcotest.(check (float 1e-9)) "self times telescope to the root" 10.0 total

(* -- end to end --------------------------------------------------------- *)

let quick_cfg =
  {
    Experiments.Lockstat.ram_pages = 160;
    swap_pages = 1024;
    anon_pages = 224;
    file_pages = 24;
    requests = 8;
  }

let test_experiment_covers_both_kernels () =
  let r = Experiments.Lockstat.run ~cfg:quick_cfg () in
  (* Folded self times telescope to the measured wall (the lockstat CLI's
     1% acceptance bound; the construction makes it exact). *)
  Alcotest.(check bool) "wall measured" true (r.Experiments.Lockstat.lk_wall_us > 0.0);
  Alcotest.(check bool) "folded within 1% of wall" true
    (Float.abs (r.Experiments.Lockstat.lk_folded_us -. r.Experiments.Lockstat.lk_wall_us)
    <= 0.01 *. r.Experiments.Lockstat.lk_wall_us);
  Alcotest.(check int) "two systems traced" 2
    (List.length r.Experiments.Lockstat.lk_sources);
  List.iter
    (fun (src : Sim.Trace_export.source) ->
      let reg =
        match src.Sim.Trace_export.locks with
        | Some reg -> reg
        | None -> Alcotest.failf "%s has no lock registry" src.Sim.Trace_export.label
      in
      let held_classes =
        List.filter
          (fun cv -> cv.Sim.Lockstat.cv_acquires > 0)
          (Sim.Lockstat.views reg)
      in
      Alcotest.(check bool)
        (src.Sim.Trace_export.label ^ " exercises >= 6 lock classes")
        true
        (List.length held_classes >= 6);
      (* Every hold is attributed somewhere, and fault-path classes see
         the fault subsystem. *)
      List.iter
        (fun cv ->
          let attributed =
            List.fold_left (fun a (_, n, _) -> a + n) 0
              cv.Sim.Lockstat.cv_by_subsys
          in
          Alcotest.(check int)
            (src.Sim.Trace_export.label ^ " " ^ cv.Sim.Lockstat.cv_cls
           ^ " holds all attributed")
            cv.Sim.Lockstat.cv_acquires attributed)
        held_classes;
      let attributed_to cls sub =
        match
          List.find_opt
            (fun cv -> cv.Sim.Lockstat.cv_cls = cls)
            held_classes
        with
        | None -> false
        | Some cv ->
            List.exists (fun (s, _, _) -> s = sub) cv.Sim.Lockstat.cv_by_subsys
      in
      Alcotest.(check bool)
        (src.Sim.Trace_export.label ^ " map holds attributed to fault")
        true
        (attributed_to "map" "fault");
      Alcotest.(check bool)
        (src.Sim.Trace_export.label ^ " lock order acyclic")
        true
        (Sim.Lockstat.cycles reg = []))
    r.Experiments.Lockstat.lk_sources;
  (* UVM splits anonymous memory from objects; BSD has no amap class. *)
  let held label =
    let src =
      List.find
        (fun (s : Sim.Trace_export.source) -> s.Sim.Trace_export.label = label)
        r.Experiments.Lockstat.lk_sources
    in
    match src.Sim.Trace_export.locks with
    | Some reg ->
        List.filter_map
          (fun cv ->
            if cv.Sim.Lockstat.cv_acquires > 0 then
              Some cv.Sim.Lockstat.cv_cls
            else None)
          (Sim.Lockstat.views reg)
    | None -> []
  in
  Alcotest.(check bool) "UVM takes amap locks" true
    (List.mem "amap" (held "UVM"));
  Alcotest.(check bool) "BSD VM has no amap class" false
    (List.mem "amap" (held "BSD VM"))

let test_torture_is_cycle_free () =
  (* A seeded differential run with tracing on: both kernels' audits
     include check_lock_order, so a clean run is the lockdep gate. *)
  Vmiface.Machine.set_default_trace (Some 4096);
  let cfg =
    {
      Oslayer.Torture.default_cfg with
      Oslayer.Torture.seed = 7;
      nops = 1500;
      audit_every = 50;
      ram_pages = 96;
      swap_pages = 1024;
    }
  in
  let r = Oslayer.Torture.run cfg in
  Vmiface.Machine.set_default_trace None;
  Vmiface.Machine.reset_traced ();
  (match r.Oslayer.Torture.r_bug with
  | None -> ()
  | Some b ->
      Alcotest.failf "traced torture run failed: %s"
        (Oslayer.Torture.string_of_bug b))

let () =
  Alcotest.run "lockstat"
    [
      ( "order",
        [
          Alcotest.test_case "abba cycle detected and named" `Quick
            test_abba_cycle;
          Alcotest.test_case "empty registry audits clean" `Quick
            test_empty_registry_audits_clean;
          Alcotest.test_case "acquire_root breaks the context" `Quick
            test_acquire_root_breaks_context;
        ] );
      ( "registry",
        [
          Alcotest.test_case "recursion records once" `Quick
            test_recursion_records_once;
          Alcotest.test_case "mode split and span attribution" `Quick
            test_mode_split_and_attribution;
          Alcotest.test_case "disabled registry is inert" `Quick
            test_disabled_registry_is_inert;
        ] );
      ( "projection",
        [
          Alcotest.test_case "deterministic and overlap-aware" `Quick
            test_projection_deterministic;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "fold_paths telescopes" `Quick
            test_fold_paths_telescopes;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "experiment covers both kernels" `Quick
            test_experiment_covers_both_kernels;
          Alcotest.test_case "traced torture run is cycle-free" `Quick
            test_torture_is_cycle_free;
        ] );
    ]

(* Anons and amaps: reference counting at both granularities, the
   needs-copy copy, splitref/ppref semantics, extension. *)

let mk () =
  let config =
    { Vmiface.Machine.default_config with ram_pages = 128; swap_pages = 256 }
  in
  Uvm.State.create (Vmiface.Machine.boot ~config ())

let stats sys = Uvm.State.stats sys

let test_anon_lifecycle () =
  let sys = mk () in
  let anon = Uvm.Anon.alloc sys ~zero:true in
  Alcotest.(check bool) "resident" true (Uvm.Anon.is_resident anon);
  Alcotest.(check bool) "writable in place" true (Uvm.Anon.writable_in_place anon);
  Uvm.Anon.ref_ anon;
  Alcotest.(check bool) "not writable when shared" false
    (Uvm.Anon.writable_in_place anon);
  Uvm.Anon.unref sys anon;
  Alcotest.(check int) "still alive" 1 anon.Uvm.Anon.refs;
  let free_before = Physmem.free_count (Uvm.State.physmem sys) in
  Uvm.Anon.unref sys anon;
  Alcotest.(check int) "page freed" (free_before + 1)
    (Physmem.free_count (Uvm.State.physmem sys));
  Alcotest.(check int) "anon freed stat" 1 (stats sys).Sim.Stats.anons_freed

let test_anon_swap_roundtrip () =
  let sys = mk () in
  let anon = Uvm.Anon.alloc sys ~zero:false in
  let page = Option.get anon.Uvm.Anon.page in
  Bytes.fill page.Physmem.Page.data 0 4096 'q';
  let slot = Option.get (Swap.Swaptier.alloc_slots (Uvm.State.swapdev sys) ~n:1) in
  Uvm.Anon.set_swslot sys anon slot;
  (match Swap.Swaptier.write_cluster (Uvm.State.swapdev sys) ~slot ~pages:[ page ] with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "unexpected swap write error");
  (* Simulate pageout completion. *)
  Pmap.page_remove_all (Uvm.State.pmap_ctx sys) page;
  anon.Uvm.Anon.page <- None;
  Physmem.free_page (Uvm.State.physmem sys) page;
  let fresh =
    match Uvm.Anon.ensure_resident sys anon with
    | Ok p -> p
    | Error e ->
        Alcotest.failf "unexpected pagein error: %s"
          (Vmiface.Vmtypes.string_of_fault_error e)
  in
  Alcotest.(check char) "data back from swap" 'q'
    (Bytes.get fresh.Physmem.Page.data 123);
  Alcotest.(check int) "pagein counted" 1 (stats sys).Sim.Stats.pageins

let test_anon_swslot_replacement_frees () =
  let sys = mk () in
  let dev = Uvm.State.swapdev sys in
  let anon = Uvm.Anon.alloc sys ~zero:true in
  let s1 = Option.get (Swap.Swaptier.alloc_slots dev ~n:1) in
  Uvm.Anon.set_swslot sys anon s1;
  let used = Swap.Swaptier.slots_in_use dev in
  let s2 = Option.get (Swap.Swaptier.alloc_slots dev ~n:1) in
  Uvm.Anon.set_swslot sys anon s2;
  Alcotest.(check int) "old slot released" used (Swap.Swaptier.slots_in_use dev);
  Uvm.Anon.unref sys anon;
  Alcotest.(check int) "all swap released" 0 (Swap.Swaptier.slots_in_use dev)

let check_ok = function
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariant: " ^ msg)

let test_amap_slots () =
  let sys = mk () in
  let am = Uvm.Amap.create sys ~nslots:8 in
  Alcotest.(check int) "empty" 0 (Uvm.Amap.slots_used am);
  let a = Uvm.Anon.alloc sys ~zero:true in
  Uvm.Amap.add sys am ~slot:3 a;
  Alcotest.(check bool) "lookup hit" true
    (match Uvm.Amap.lookup am ~slot:3 with Some x -> x == a | None -> false);
  Alcotest.(check bool) "lookup miss" true (Uvm.Amap.lookup am ~slot:2 = None);
  Alcotest.check_raises "occupied" (Invalid_argument "Uvm_amap.add: slot occupied")
    (fun () -> Uvm.Amap.add sys am ~slot:3 a);
  let b = Uvm.Anon.alloc sys ~zero:true in
  Uvm.Amap.replace sys am ~slot:3 b;
  Alcotest.(check int) "old anon released by replace" 0 a.Uvm.Anon.refs;
  Uvm.Amap.clear_slot sys am ~slot:3;
  Alcotest.(check int) "cleared" 0 (Uvm.Amap.slots_used am);
  check_ok (Uvm.Amap.check_invariants am)

let test_amap_copy_shares_anons () =
  let sys = mk () in
  let am = Uvm.Amap.create sys ~nslots:4 in
  let a0 = Uvm.Anon.alloc sys ~zero:true in
  let a2 = Uvm.Anon.alloc sys ~zero:true in
  Uvm.Amap.add sys am ~slot:0 a0;
  Uvm.Amap.add sys am ~slot:2 a2;
  let copy = Uvm.Amap.copy sys am ~slotoff:0 ~len:4 in
  Alcotest.(check int) "anon refs bumped" 2 a0.Uvm.Anon.refs;
  Alcotest.(check bool) "same anon aliased" true
    (match Uvm.Amap.lookup copy ~slot:2 with Some x -> x == a2 | None -> false);
  Uvm.Amap.unref_range sys copy ~slotoff:0 ~len:4;
  Alcotest.(check int) "copy release drops anon refs" 1 a0.Uvm.Anon.refs;
  Alcotest.(check int) "amap freed stat" 1 (stats sys).Sim.Stats.amaps_freed;
  check_ok (Uvm.Amap.check_invariants am)

let test_partial_copy_range () =
  let sys = mk () in
  let am = Uvm.Amap.create sys ~nslots:6 in
  for i = 0 to 5 do
    Uvm.Amap.add sys am ~slot:i (Uvm.Anon.alloc sys ~zero:true)
  done;
  let copy = Uvm.Amap.copy sys am ~slotoff:2 ~len:3 in
  Alcotest.(check int) "copy sized to range" 3 copy.Uvm.Amap.nslots;
  Alcotest.(check bool) "slot aliasing offset" true
    (match (Uvm.Amap.lookup copy ~slot:0, Uvm.Amap.lookup am ~slot:2) with
    | Some x, Some y -> x == y
    | _ -> false);
  Uvm.Amap.unref_range sys copy ~slotoff:0 ~len:3

let test_splitref_then_partial_unref () =
  let sys = mk () in
  let am = Uvm.Amap.create sys ~nslots:8 in
  let anons = Array.init 8 (fun _ -> Uvm.Anon.alloc sys ~zero:true) in
  Array.iteri (fun i a -> Uvm.Amap.add sys am ~slot:i a) anons;
  (* A map entry covering all 8 slots is clipped into [0,3) and [3,8). *)
  Uvm.Amap.splitref am;
  Alcotest.(check int) "two refs" 2 am.Uvm.Amap.refs;
  Alcotest.(check bool) "ppref established" true (am.Uvm.Amap.ppref <> None);
  (* Unmapping the first part must free exactly its anons. *)
  Uvm.Amap.unref_range sys am ~slotoff:0 ~len:3;
  Alcotest.(check int) "front anons freed" 0 anons.(0).Uvm.Anon.refs;
  Alcotest.(check int) "back anons alive" 1 anons.(5).Uvm.Anon.refs;
  Alcotest.(check int) "slots used" 5 (Uvm.Amap.slots_used am);
  check_ok (Uvm.Amap.check_invariants am);
  Uvm.Amap.unref_range sys am ~slotoff:3 ~len:5;
  Alcotest.(check int) "rest freed" 0 anons.(5).Uvm.Anon.refs

let test_ref_range_subrange () =
  let sys = mk () in
  let am = Uvm.Amap.create sys ~nslots:4 in
  let anons = Array.init 4 (fun _ -> Uvm.Anon.alloc sys ~zero:true) in
  Array.iteri (fun i a -> Uvm.Amap.add sys am ~slot:i a) anons;
  Uvm.Amap.ref_range am ~slotoff:1 ~len:2;
  Alcotest.(check int) "refs" 2 am.Uvm.Amap.refs;
  (* Original whole-range reference goes away; the subrange survivor must
     keep slots 1-2 alive and release 0 and 3. *)
  Uvm.Amap.unref_range sys am ~slotoff:0 ~len:4;
  Alcotest.(check int) "outside freed" 0 anons.(0).Uvm.Anon.refs;
  Alcotest.(check int) "inside kept" 1 anons.(1).Uvm.Anon.refs;
  Uvm.Amap.unref_range sys am ~slotoff:1 ~len:2;
  Alcotest.(check int) "all freed" 0 anons.(1).Uvm.Anon.refs

let test_extend () =
  let sys = mk () in
  let am = Uvm.Amap.create sys ~nslots:4 in
  Uvm.Amap.add sys am ~slot:3 (Uvm.Anon.alloc sys ~zero:true);
  Uvm.Amap.extend am ~by:4;
  Alcotest.(check int) "grown" 8 am.Uvm.Amap.nslots;
  Alcotest.(check bool) "old content kept" true (Uvm.Amap.lookup am ~slot:3 <> None);
  Alcotest.(check bool) "new slots empty" true (Uvm.Amap.lookup am ~slot:6 = None);
  Uvm.Amap.splitref am;
  Alcotest.check_raises "cannot extend shared"
    (Invalid_argument "Uvm_amap.extend: amap is shared or partially referenced")
    (fun () -> Uvm.Amap.extend am ~by:1);
  check_ok (Uvm.Amap.check_invariants am)

(* Property: random sequences of amap operations never violate the
   structural invariants, and total anon references stay consistent with
   slot occupancy. *)
let prop_amap_invariants =
  QCheck.Test.make ~name:"amap invariants under random ops" ~count:60
    QCheck.(list (pair (int_range 0 4) (int_range 0 7)))
    (fun ops ->
      let sys = mk () in
      let am = Uvm.Amap.create sys ~nslots:8 in
      (* Outstanding references beyond the base one, with the exact range
         each covers — unref must mirror a reference actually taken, as in
         the map layer. *)
      let held = ref [] in
      List.iter
        (fun (op, slot) ->
          if am.Uvm.Amap.refs > 0 then
            match op with
            | 0 ->
                if Uvm.Amap.lookup am ~slot = None then
                  Uvm.Amap.add sys am ~slot (Uvm.Anon.alloc sys ~zero:true)
            | 1 -> Uvm.Amap.clear_slot sys am ~slot
            | 2 -> Uvm.Amap.replace sys am ~slot (Uvm.Anon.alloc sys ~zero:true)
            | 3 ->
                let slotoff = slot mod 4 and len = 1 + (slot mod 4) in
                Uvm.Amap.ref_range am ~slotoff ~len;
                held := (slotoff, len) :: !held
            | _ -> (
                match !held with
                | (slotoff, len) :: rest ->
                    Uvm.Amap.unref_range sys am ~slotoff ~len;
                    held := rest
                | [] -> ()))
        ops;
      Uvm.Amap.check_invariants am = Ok ())

let () =
  Alcotest.run "amap"
    [
      ( "anon",
        [
          Alcotest.test_case "lifecycle" `Quick test_anon_lifecycle;
          Alcotest.test_case "swap roundtrip" `Quick test_anon_swap_roundtrip;
          Alcotest.test_case "swslot replacement" `Quick test_anon_swslot_replacement_frees;
        ] );
      ( "amap",
        [
          Alcotest.test_case "slots" `Quick test_amap_slots;
          Alcotest.test_case "copy shares anons" `Quick test_amap_copy_shares_anons;
          Alcotest.test_case "partial copy" `Quick test_partial_copy_range;
          Alcotest.test_case "splitref + partial unref" `Quick test_splitref_then_partial_unref;
          Alcotest.test_case "subrange refs" `Quick test_ref_range_subrange;
          Alcotest.test_case "extend" `Quick test_extend;
          QCheck_alcotest.to_alcotest prop_amap_invariants;
        ] );
    ]

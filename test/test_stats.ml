(* Sim.Stats accounting invariants.

   The record is all mutable fields read/written by name everywhere, so a
   field added to the type but forgotten in [to_rows] (or mis-paired in
   [diff]) would go unnoticed by the compiler.  These tests close that
   hole with Obj: the record has mixed int/float fields, hence a regular
   block whose size is the field count and whose every field can be set
   generically. *)

let nfields = Obj.size (Obj.repr (Sim.Stats.create ()))

(* Set field [i] to a value derived from [seed]: ints get [seed + i],
   the (boxed) float field gets [float (seed + i)]. *)
let fill_fields (t : Sim.Stats.t) seed =
  let r = Obj.repr t in
  for i = 0 to nfields - 1 do
    if Obj.is_int (Obj.field r i) then Obj.set_field r i (Obj.repr (seed + i))
    else Obj.set_field r i (Obj.repr (float_of_int (seed + i)))
  done

let field_value (t : Sim.Stats.t) i =
  let f = Obj.field (Obj.repr t) i in
  if Obj.is_int f then float_of_int (Obj.obj f : int) else (Obj.obj f : float)

let test_field_count () =
  (* Two boxed fields: map_lock_held_us and lock_wait_us.  The rest are
     immediate ints. *)
  let boxed = ref 0 in
  let r = Obj.repr (Sim.Stats.create ()) in
  for i = 0 to nfields - 1 do
    if not (Obj.is_int (Obj.field r i)) then incr boxed
  done;
  Alcotest.(check int) "exactly two float fields" 2 !boxed

let test_to_rows_complete () =
  let t = Sim.Stats.create () in
  Alcotest.(check int)
    "to_rows covers every field"
    nfields
    (List.length (Sim.Stats.to_rows t));
  (* Declaration order: row i must report field i's value. *)
  fill_fields t 100;
  List.iteri
    (fun i (name, v) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "row %d (%s) = field %d" i name i)
        (field_value t i) v)
    (Sim.Stats.to_rows t);
  let names = List.map fst (Sim.Stats.to_rows t) in
  Alcotest.(check int)
    "row names are unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  (* The ledger-backed fault-ahead outcome counters, the swap-tier /
     swapcache counters and the sampler-facing gauges must be reported
     (and stay immediate ints, per the field-layout test above). *)
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " reported") true (List.mem n names))
    [
      "fault_ahead_used";
      "fault_ahead_wasted";
      "swap_devices_dead";
      "swap_failovers";
      "swap_migrations";
      "swap_cache_fills";
      "swap_cache_hits";
      "swap_cache_evictions";
      "free_pages";
      "active_pages";
      "inactive_pages";
      "swap_slots_used";
      "swapcache_pages";
      "oom_kills";
      "rlimit_denials";
      "proc_swapouts";
      "proc_swapins";
      "reserve_grabs";
    ]

let test_snapshot_independent () =
  let t = Sim.Stats.create () in
  fill_fields t 10;
  let snap = Sim.Stats.snapshot t in
  (* Snapshot reproduces every field... *)
  for i = 0 to nfields - 1 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "snapshot field %d" i)
      (field_value t i) (field_value snap i)
  done;
  (* ...and stays put when the original moves on. *)
  fill_fields t 1000;
  for i = 0 to nfields - 1 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "snapshot field %d unchanged" i)
      (float_of_int (10 + i))
      (field_value snap i)
  done

let test_diff_round_trip () =
  let before = Sim.Stats.create () in
  fill_fields before 10;
  let after = Sim.Stats.create () in
  fill_fields after 250;
  let d = Sim.Stats.diff ~after ~before in
  (* Every field must be the subtraction of the SAME field — a mis-paired
     subtraction in diff's record literal shows up as a wrong delta. *)
  for i = 0 to nfields - 1 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "diff field %d" i)
      240.0
      (field_value d i)
  done;
  (* diff ~after:x ~before:(zeros) round-trips x. *)
  let zero = Sim.Stats.create () in
  let same = Sim.Stats.diff ~after ~before:zero in
  for i = 0 to nfields - 1 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "identity diff field %d" i)
      (field_value after i) (field_value same i)
  done

let test_reset () =
  let t = Sim.Stats.create () in
  fill_fields t 7;
  Sim.Stats.reset t;
  for i = 0 to nfields - 1 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "reset field %d" i)
      0.0
      (field_value t i)
  done

let () =
  Alcotest.run "stats"
    [
      ( "stats",
        [
          Alcotest.test_case "field layout" `Quick test_field_count;
          Alcotest.test_case "to_rows completeness" `Quick test_to_rows_complete;
          Alcotest.test_case "snapshot independence" `Quick
            test_snapshot_independent;
          Alcotest.test_case "diff round-trip" `Quick test_diff_round_trip;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
    ]

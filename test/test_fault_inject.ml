(* Fault injection and I/O-error resilience: fault-plan determinism and
   scripting, the swap bad-slot blacklist, typed pagein failures (SIGBUS
   analogue), transient pageout recovery via retry/backoff, permanent-error
   blacklist-and-reassign, and out-of-swap graceful degradation.  The
   resilience scenarios run against BOTH VM systems through the common
   signature. *)

module Vt = Vmiface.Vmtypes
module Fp = Sim.Fault_plan

(* ------------------------------------------------------------------ *)
(* Fault_plan unit tests                                              *)
(* ------------------------------------------------------------------ *)

let decisions plan ~n =
  List.init n (fun i ->
      let op = if i mod 2 = 0 then Fp.Read else Fp.Write in
      match Fp.check plan ~op ~slots:[ i ] with
      | None -> "ok"
      | Some e -> Fp.string_of_error e)

let test_plan_determinism () =
  let mk () = Fp.create ~seed:7 ~read_error_rate:0.3 ~write_error_rate:0.1 () in
  let a = decisions (mk ()) ~n:200 and b = decisions (mk ()) ~n:200 in
  Alcotest.(check (list string)) "same seed, same fates" a b;
  Alcotest.(check bool) "some ops fail" true (List.exists (( <> ) "ok") a);
  Alcotest.(check bool) "some ops succeed" true (List.mem "ok" a);
  let c = decisions (Fp.create ~seed:8 ~read_error_rate:0.3 ()) ~n:200 in
  Alcotest.(check bool) "different seed, different fates" true (a <> c)

let test_plan_scripting () =
  let plan = Fp.create () in
  (* Fire on the second write touching slot 5, twice; reads never fail. *)
  Fp.fail_op plan ~slot:5 ~after:1 ~count:2 Fp.Write Fp.Transient;
  let write slots = Fp.check plan ~op:Fp.Write ~slots in
  Alcotest.(check bool) "slot mismatch passes" true (write [ 9 ] = None);
  Alcotest.(check bool) "first match skipped" true (write [ 5 ] = None);
  (match write [ 4; 5; 6 ] with
  | Some { failed_op = Fp.Write; severity = Fp.Transient; bad_slot = Some 5 } ->
      ()
  | _ -> Alcotest.fail "expected transient write error at slot 5");
  Alcotest.(check bool) "fires again" true (write [ 5 ] <> None);
  Alcotest.(check bool) "then exhausted" true (write [ 5 ] = None);
  Alcotest.(check bool) "reads unaffected" true
    (Fp.check plan ~op:Fp.Read ~slots:[ 5 ] = None);
  (* Permanent errors do not heal: the rule fires forever. *)
  let perm = Fp.create () in
  Fp.fail_op perm ~slot:3 Fp.Read Fp.Permanent;
  for _ = 1 to 50 do
    match Fp.check perm ~op:Fp.Read ~slots:[ 3 ] with
    | Some { severity = Fp.Permanent; _ } -> ()
    | _ -> Alcotest.fail "permanent error healed"
  done

let test_swapmap_blacklist () =
  let m = Swap.Swapmap.create ~nslots:8 in
  Alcotest.(check int) "all usable" 8 (Swap.Swapmap.usable m);
  (* Blacklisting a free slot retires it immediately. *)
  Swap.Swapmap.mark_bad m ~slot:3;
  Swap.Swapmap.mark_bad m ~slot:3;
  Alcotest.(check int) "one bad slot (idempotent)" 1 (Swap.Swapmap.bad_count m);
  Alcotest.(check int) "usable shrank" 7 (Swap.Swapmap.usable m);
  (* Blacklisting a slot still in use keeps it charged until freed. *)
  let base = Option.get (Swap.Swapmap.alloc m ~n:4) in
  Swap.Swapmap.mark_bad m ~slot:base;
  Alcotest.(check int) "still charged" 4 (Swap.Swapmap.in_use m);
  Alcotest.(check int) "owner keeps capacity until free" 7 (Swap.Swapmap.usable m);
  Swap.Swapmap.free m ~slot:base ~n:4;
  Alcotest.(check int) "freed" 0 (Swap.Swapmap.in_use m);
  Alcotest.(check int) "capacity shrinks at free" 6 (Swap.Swapmap.usable m);
  (* Bad slots never come back out of the allocator. *)
  let got = ref [] in
  let rec drain () =
    match Swap.Swapmap.alloc m ~n:1 with
    | Some s ->
        got := s :: !got;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "drained the usable pool" 6 (List.length !got);
  Alcotest.(check bool) "bad slots skipped" false
    (List.mem 3 !got || List.mem base !got)

(* ------------------------------------------------------------------ *)
(* End-to-end resilience scenarios, generic over the VM system        *)
(* ------------------------------------------------------------------ *)

module Resilience (V : Vmiface.Vm_sig.VM_SYS) = struct
  let stats sys = (V.machine sys).Vmiface.Machine.stats
  let swapdev sys = (V.machine sys).Vmiface.Machine.swap

  (* Boot with a plan we keep a handle on, so tests can add rules
     mid-workload. *)
  let boot_with_plan ?(ram_pages = 128) ?(swap_pages = 2048) plan =
    let config =
      {
        Vmiface.Machine.default_config with
        ram_pages;
        swap_pages;
        fault_plan = Some (fun () -> plan);
      }
    in
    V.boot ~config ()

  let fill sys vm ~vpn ~npages =
    for i = 0 to npages - 1 do
      V.write_bytes sys vm
        ~addr:((vpn + i) * 4096)
        (Bytes.of_string (Printf.sprintf "#%04d#" i))
    done

  let verify sys vm ~vpn ~npages =
    for i = 0 to npages - 1 do
      let got = V.read_bytes sys vm ~addr:((vpn + i) * 4096) ~len:6 in
      Alcotest.(check bytes)
        (Printf.sprintf "page %d content" i)
        (Bytes.of_string (Printf.sprintf "#%04d#" i))
        got
    done

  (* A pagein that keeps failing surfaces as a typed pager error — the
     simulated SIGBUS — not a crash, and not silent data corruption. *)
  let test_pagein_error_is_typed () =
    let plan = Fp.create () in
    let sys = boot_with_plan plan in
    let vm = V.new_vmspace sys in
    let n = 300 in
    let vpn = V.mmap sys vm ~npages:n ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
    fill sys vm ~vpn ~npages:n;
    Alcotest.(check bool) "paging happened" true
      ((stats sys).Sim.Stats.pageouts > 0);
    (* Now the medium dies for reads: every swap pagein fails. *)
    Fp.fail_op plan Fp.Read Fp.Permanent;
    let saw_pager_error = ref false in
    (try
       for i = 0 to n - 1 do
         ignore (V.read_bytes sys vm ~addr:((vpn + i) * 4096) ~len:6)
       done
     with Vt.Segv { error = Vt.Pager_error; _ } -> saw_pager_error := true);
    Alcotest.(check bool) "Segv carries Pager_error" true !saw_pager_error;
    Alcotest.(check bool) "failed pageins counted" true
      ((stats sys).Sim.Stats.pageins_failed > 0);
    Alcotest.(check bool) "injections counted" true
      ((stats sys).Sim.Stats.io_errors_injected > 0);
    (* Anons keep their swap slots on failed pagein: no leak, and teardown
       releases everything. *)
    V.destroy_vmspace sys vm;
    Alcotest.(check int) "swap released" 0 (V.swap_slots_in_use sys)

  (* Transient write errors during pageout are absorbed by retry with
     backoff; the workload never notices and no data is lost. *)
  let test_transient_pageout_recovers () =
    let plan = Fp.create () in
    (* The first pageout write fails twice, then heals. *)
    Fp.fail_op plan ~count:2 Fp.Write Fp.Transient;
    let sys = boot_with_plan plan in
    let vm = V.new_vmspace sys in
    let n = 300 in
    let vpn = V.mmap sys vm ~npages:n ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
    fill sys vm ~vpn ~npages:n;
    verify sys vm ~vpn ~npages:n;
    let st = stats sys in
    Alcotest.(check int) "both failures injected" 2 st.Sim.Stats.io_errors_injected;
    Alcotest.(check bool) "retries happened" true (st.Sim.Stats.pageout_retries >= 2);
    Alcotest.(check bool) "pageout recovered" true
      (st.Sim.Stats.pageouts_recovered >= 1);
    Alcotest.(check int) "no slot blacklisted" 0 st.Sim.Stats.bad_slots;
    V.destroy_vmspace sys vm;
    Alcotest.(check int) "swap released" 0 (V.swap_slots_in_use sys)

  (* Permanent write error on a specific swap slot: the slot is
     blacklisted, the dirty data stays in core and is rewritten to a
     reassigned slot, and the workload completes with full data
     integrity (the acceptance scenario). *)
  let test_permanent_slot_blacklisted_and_reassigned () =
    let plan = Fp.create () in
    (* Slot 1 is the first slot the allocator hands out, so the very first
       pageout hits bad media. *)
    Fp.fail_op plan ~slot:1 Fp.Write Fp.Permanent;
    let sys = boot_with_plan plan in
    let vm = V.new_vmspace sys in
    let n = 300 in
    let vpn = V.mmap sys vm ~npages:n ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
    fill sys vm ~vpn ~npages:n;
    verify sys vm ~vpn ~npages:n;
    let st = stats sys in
    let dev = swapdev sys in
    Alcotest.(check bool) "error injected" true (st.Sim.Stats.io_errors_injected >= 1);
    Alcotest.(check int) "slot 1 blacklisted" 1 st.Sim.Stats.bad_slots;
    Alcotest.(check bool) "device agrees" true (Swap.Swaptier.is_bad_slot dev ~slot:1);
    Alcotest.(check int) "usable pool shrank by one"
      (Swap.Swaptier.capacity dev - 1)
      (Swap.Swaptier.slots_usable dev);
    Alcotest.(check bool) "pageout recovered via reassignment" true
      (st.Sim.Stats.pageouts_recovered >= 1);
    V.destroy_vmspace sys vm;
    Alcotest.(check int) "swap released" 0 (V.swap_slots_in_use sys);
    Alcotest.(check bool) "bad slot stays retired" true
      (Swap.Swaptier.is_bad_slot dev ~slot:1)

  (* Swap exhaustion with clean pages available: the pagedaemon degrades
     to reclaiming clean (file-backed) pages, counts the event, and the
     workload completes. *)
  let test_out_of_swap_degrades () =
    let plan = Fp.create () in
    let sys = boot_with_plan ~ram_pages:96 ~swap_pages:32 plan in
    let vm = V.new_vmspace sys in
    let vfs = (V.machine sys).Vmiface.Machine.vfs in
    let vn = Vfs.create_file vfs ~name:"/bulk" ~size:(128 * 4096) in
    let anon =
      V.mmap sys vm ~npages:60 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero
    in
    fill sys vm ~vpn:anon ~npages:60;
    let file =
      V.mmap sys vm ~npages:128 ~prot:Pmap.Prot.read ~share:Vt.Shared
        (Vt.File (vn, 0))
    in
    (* Stream over the file twice: clean pages pour in while 60 dirty anon
       pages overwhelm the 32-slot swap partition. *)
    for _ = 1 to 2 do
      for i = 0 to 127 do
        ignore (V.read_bytes sys vm ~addr:((file + i) * 4096) ~len:1)
      done
    done;
    Alcotest.(check bool) "swap-full events counted" true
      ((stats sys).Sim.Stats.swap_full_events >= 1);
    (* Anonymous data survived the squeeze. *)
    verify sys vm ~vpn:anon ~npages:60;
    V.destroy_vmspace sys vm;
    Alcotest.(check int) "no swap leaked" 0 (V.swap_slots_in_use sys)

  (* Every swap write fails permanently: write_resilient's reassignment
     chews through the healthy pool slot by slot until nothing is left
     (the No_space rung), the kernel degrades to clean-page reclaim, and
     the anonymous data survives pinned in core. *)
  let test_dying_media_exhausts_pool () =
    let plan = Fp.create () in
    Fp.fail_op plan Fp.Write Fp.Permanent;
    let sys = boot_with_plan ~ram_pages:128 ~swap_pages:32 plan in
    let vm = V.new_vmspace sys in
    let vfs = (V.machine sys).Vmiface.Machine.vfs in
    let vn = Vfs.create_file vfs ~name:"/bulk" ~size:(128 * 4096) in
    let anon =
      V.mmap sys vm ~npages:24 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero
    in
    fill sys vm ~vpn:anon ~npages:24;
    let file =
      V.mmap sys vm ~npages:128 ~prot:Pmap.Prot.read ~share:Vt.Shared
        (Vt.File (vn, 0))
    in
    for _ = 1 to 2 do
      for i = 0 to 127 do
        ignore (V.read_bytes sys vm ~addr:((file + i) * 4096) ~len:1)
      done
    done;
    let st = stats sys in
    Alcotest.(check bool) "write errors injected" true
      (st.Sim.Stats.io_errors_injected >= 1);
    Alcotest.(check bool) "blacklist ate the pool" true
      (st.Sim.Stats.bad_slots >= 1);
    Alcotest.(check bool) "No_space degradation counted" true
      (st.Sim.Stats.swap_full_events >= 1);
    verify sys vm ~vpn:anon ~npages:24;
    V.destroy_vmspace sys vm;
    Alcotest.(check int) "no swap charged" 0 (V.swap_slots_in_use sys)

  let cases =
    let tc = Alcotest.test_case in
    ( V.name,
      [
        tc "pagein error is typed" `Quick test_pagein_error_is_typed;
        tc "transient pageout recovers" `Quick test_transient_pageout_recovers;
        tc "permanent slot reassigned" `Quick
          test_permanent_slot_blacklisted_and_reassigned;
        tc "out of swap degrades" `Quick test_out_of_swap_degrades;
        tc "dying media exhausts pool" `Quick test_dying_media_exhausts_pool;
      ] )
end

module Uvm_resilience = Resilience (Uvm.Sys)
module Bsd_resilience = Resilience (Bsdvm.Sys)

let () =
  Alcotest.run "fault_inject"
    [
      ( "plan",
        [
          Alcotest.test_case "determinism" `Quick test_plan_determinism;
          Alcotest.test_case "scripting" `Quick test_plan_scripting;
          Alcotest.test_case "swapmap blacklist" `Quick test_swapmap_blacklist;
        ] );
      Uvm_resilience.cases;
      Bsd_resilience.cases;
    ]

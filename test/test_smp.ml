(* Simulated SMP (DESIGN.md §16): the per-CPU free-page caches against
   the colored queues (drain returns pages to the right color ring,
   refills never dig into the reserve), the scheduler's determinism
   contract, and the full storm experiment at 4 CPUs with every
   mid-storm audit clean. *)

let mk ?(npages = 128) ?(ncpus = 4) () =
  let clock = Sim.Simclock.create () in
  let stats = Sim.Stats.create () in
  let pm =
    Physmem.create ~page_size:256 ~npages ~ncpus ~clock
      ~costs:Sim.Cost_model.zero ~stats ()
  in
  (pm, stats)

(* -- per-CPU caches vs colored queues ----------------------------------- *)

let test_drain_returns_to_color_queue () =
  let pm, _ = mk () in
  Physmem.set_current_cpu pm 1;
  (* Fault the caches into life, then free the page so CPU 1's cache has
     had at least one refill behind it. *)
  let p = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () in
  Physmem.free_page pm p;
  let held =
    List.fold_left (fun n v -> n + v.Physmem.cw_held) 0 (Physmem.cache_views pm)
  in
  Alcotest.(check bool) "some pages are cached" true (held > 0);
  Physmem.drain_caches pm;
  List.iter
    (fun v -> Alcotest.(check int) "cache empty after drain" 0 v.Physmem.cw_held)
    (Physmem.cache_views pm);
  Alcotest.(check int) "every frame back on the queues"
    (Physmem.free_count pm)
    (Physmem.queue_free_count pm);
  (* The color invariant: every page on color ring c has color c — and
     the rings jointly hold every free frame. *)
  let total = ref 0 in
  for c = 0 to Physmem.ncolors - 1 do
    List.iter
      (fun (page : Physmem.Page.t) ->
        Alcotest.(check int)
          (Printf.sprintf "frame %d on ring %d" page.Physmem.Page.id c)
          c page.Physmem.Page.color;
        incr total)
      (Physmem.free_pages_of_color pm c)
  done;
  Alcotest.(check int) "rings sum to the free count" (Physmem.free_count pm)
    !total;
  Check.check_smp ~system:"TEST" pm

let test_refill_respects_reserve () =
  let pm, _ = mk ~npages:128 ~ncpus:4 () in
  let reserve = Physmem.reserve pm in
  Alcotest.(check bool) "machine has a reserve" true (reserve > 0);
  (* Allocate everything allocatable on a rotating CPU: however the
     caches batch their refills, the colored queues must never drop
     below the reserve while frames are still cached. *)
  let stash = ref [] in
  (try
     let cpu = ref 0 in
     while true do
       Physmem.set_current_cpu pm (!cpu mod Physmem.ncpus pm);
       incr cpu;
       stash :=
         Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () :: !stash;
       let held =
         List.fold_left
           (fun n v -> n + v.Physmem.cw_held)
           0 (Physmem.cache_views pm)
       in
       if held > 0 then
         Alcotest.(check bool)
           (Printf.sprintf "queues (%d) stay above reserve (%d) while %d cached"
              (Physmem.queue_free_count pm)
              reserve held)
           true
           (Physmem.queue_free_count pm >= reserve)
     done
   with Physmem.Out_of_pages -> ());
  (* Out of pages precisely because the queues refused to dig into the
     reserve: what's left free is the reserve plus whatever is stranded
     in other CPUs' caches — and nothing has been lost. *)
  Alcotest.(check bool) "queues stopped at the reserve" true
    (Physmem.queue_free_count pm <= reserve);
  Alcotest.(check int) "no frame lost" 128
    (List.length !stash + Physmem.free_count pm);
  Alcotest.(check bool) "allocated most of RAM" true
    (List.length !stash >= 128 / 2);
  Check.check_smp ~system:"TEST" pm;
  List.iter (fun p -> Physmem.free_page pm p) !stash

let test_cache_stats_flow () =
  let pm, stats = mk () in
  Physmem.set_current_cpu pm 2;
  let ps =
    List.init 8 (fun i ->
        Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:i ())
  in
  List.iter (fun p -> Physmem.free_page pm p) ps;
  Alcotest.(check bool) "refills counted" true
    (stats.Sim.Stats.cache_refills > 0);
  Alcotest.(check bool) "hits counted" true
    (stats.Sim.Stats.cache_alloc_hits > 0);
  let v = List.nth (Physmem.cache_views pm) 2 in
  Alcotest.(check bool) "per-cpu hit view" true (v.Physmem.cw_hits > 0)

(* -- the scheduler's determinism contract -------------------------------- *)

(* Two identical task sets must interleave identically: same per-CPU
   clocks, same quantum counts — byte-for-byte determinism is what makes
   an SMP failure replayable with a seed. *)
let run_toy () =
  let clock = Sim.Simclock.create () in
  let stats = Sim.Stats.create () in
  let costs = Sim.Cost_model.default in
  let smp = Sim.Smp.create ~seed:42 ~cpus:3 ~clock ~costs ~stats () in
  for p = 0 to 5 do
    Sim.Smp.add_task smp ~cpu:(p mod 3) ~name:(Printf.sprintf "t%d" p)
      (fun i ->
        (* Uneven virtual work so the min-clock rule actually matters. *)
        Sim.Simclock.advance clock (float_of_int (((p + 1) * (i + 1)) mod 7));
        i < 9)
  done;
  Sim.Smp.run smp;
  ( Sim.Smp.wall_us smp,
    Sim.Smp.quanta smp,
    List.map (fun v -> (v.Sim.Smp.cv_cpu, v.Sim.Smp.cv_now_us, v.Sim.Smp.cv_quanta))
      (Sim.Smp.cpu_views smp) )

let test_scheduler_deterministic () =
  let a = run_toy () and b = run_toy () in
  let wall_a, quanta_a, cpus_a = a and wall_b, quanta_b, cpus_b = b in
  Alcotest.(check (float 0.0)) "same wall" wall_a wall_b;
  Alcotest.(check int) "same quanta" quanta_a quanta_b;
  Alcotest.(check int) "all 60 quanta ran" 60 quanta_a;
  List.iter2
    (fun (c1, now1, q1) (c2, now2, q2) ->
      Alcotest.(check int) "cpu" c1 c2;
      Alcotest.(check (float 0.0)) "clock" now1 now2;
      Alcotest.(check int) "quanta" q1 q2)
    cpus_a cpus_b

let test_scheduler_balances () =
  let _, _, cpus = run_toy () in
  (* Two tasks of 10 steps per CPU. *)
  List.iter
    (fun (_, _, q) -> Alcotest.(check int) "20 quanta per cpu" 20 q)
    cpus

(* -- the storm ----------------------------------------------------------- *)

let test_storm_4cpus_clean () =
  let r = Experiments.Smp.run ~quick:true ~cpus:4 ~seed:42 () in
  Alcotest.(check int) "both kernels ran" 2
    (List.length r.Experiments.Smp.sm_systems);
  List.iter
    (fun (s : Experiments.Smp.system_result) ->
      let p = s.Experiments.Smp.ss_par in
      Alcotest.(check (list string))
        (s.ss_system ^ ": no audit failures")
        [] p.Experiments.Smp.kr_audit_failures;
      Alcotest.(check bool)
        (s.ss_system ^ ": mid-storm audits ran")
        true
        (p.Experiments.Smp.kr_audits > 1);
      Alcotest.(check bool)
        (s.ss_system ^ ": contention was measured")
        true
        (p.Experiments.Smp.kr_total_wait_us > 0.0);
      Alcotest.(check bool)
        (s.ss_system ^ ": the storm scales")
        true
        (Experiments.Smp.speedup s >= 1.0);
      Alcotest.(check bool)
        (s.ss_system ^ ": fast path serves >50% of lookups")
        true
        (Experiments.Smp.fast_rate p > 0.5))
    r.Experiments.Smp.sm_systems;
  (* The paper's asymmetry, measured: the shared-anonymous storm piles
     write-mode waits on BSD VM's single shared object; UVM spreads the
     same faults over amaps, so its object class stays off the top. *)
  let top sys =
    let s =
      List.find
        (fun (s : Experiments.Smp.system_result) ->
          s.Experiments.Smp.ss_system = sys)
        r.Experiments.Smp.sm_systems
    in
    fst (Experiments.Smp.top_wait s.Experiments.Smp.ss_par)
  in
  Alcotest.(check string) "BSD VM's top waiter is the object class" "object"
    (top "BSD VM");
  Alcotest.(check bool) "UVM's is not" true (top "UVM" <> "object")

let test_storm_deterministic () =
  let wall sys_list =
    List.map
      (fun (s : Experiments.Smp.system_result) ->
        (s.Experiments.Smp.ss_system, s.Experiments.Smp.ss_par.kr_wall_us))
      sys_list
  in
  let a = Experiments.Smp.run ~quick:true ~cpus:2 ~seed:7 () in
  let b = Experiments.Smp.run ~quick:true ~cpus:2 ~seed:7 () in
  List.iter2
    (fun (s1, w1) (s2, w2) ->
      Alcotest.(check string) "system" s1 s2;
      Alcotest.(check (float 0.0)) (s1 ^ " wall reproduces") w1 w2)
    (wall a.Experiments.Smp.sm_systems)
    (wall b.Experiments.Smp.sm_systems)

let () =
  Alcotest.run "smp"
    [
      ( "caches",
        [
          Alcotest.test_case "drain returns pages to their color rings" `Quick
            test_drain_returns_to_color_queue;
          Alcotest.test_case "refill never digs into the reserve" `Quick
            test_refill_respects_reserve;
          Alcotest.test_case "cache stats flow" `Quick test_cache_stats_flow;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "deterministic interleaving" `Quick
            test_scheduler_deterministic;
          Alcotest.test_case "per-cpu quantum balance" `Quick
            test_scheduler_balances;
        ] );
      ( "storm",
        [
          Alcotest.test_case "4-cpu storm audits clean" `Quick
            test_storm_4cpus_clean;
          Alcotest.test_case "storm reproduces bit-for-bit" `Quick
            test_storm_deterministic;
        ] );
    ]

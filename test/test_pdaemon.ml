(* The pagedaemon: reclamation, aggressive clustering, data fidelity
   under paging pressure, wired/loaned page protection. *)

module Vt = Vmiface.Vmtypes
module S = Uvm.Sys

let small_config =
  { Vmiface.Machine.default_config with ram_pages = 128; swap_pages = 2048 }

let stats sys = (S.machine sys).Vmiface.Machine.stats

let fill sys vm ~vpn ~npages =
  for i = 0 to npages - 1 do
    S.write_bytes sys vm
      ~addr:((vpn + i) * 4096)
      (Bytes.of_string (Printf.sprintf "#%04d#" i))
  done

let verify sys vm ~vpn ~npages =
  for i = 0 to npages - 1 do
    let got = S.read_bytes sys vm ~addr:((vpn + i) * 4096) ~len:6 in
    Alcotest.(check bytes)
      (Printf.sprintf "page %d content" i)
      (Bytes.of_string (Printf.sprintf "#%04d#" i))
      got
  done

let test_pressure_roundtrip () =
  let sys = S.boot ~config:small_config () in
  let vm = S.new_vmspace sys in
  let n = 300 in
  let vpn = S.mmap sys vm ~npages:n ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  fill sys vm ~vpn ~npages:n;
  Alcotest.(check bool) "paging happened" true ((stats sys).Sim.Stats.pageouts > 0);
  verify sys vm ~vpn ~npages:n;
  Alcotest.(check bool) "pageins happened" true ((stats sys).Sim.Stats.pageins > 0);
  S.destroy_vmspace sys vm;
  Alcotest.(check int) "swap released at exit" 0 (S.swap_slots_in_use sys)

let test_clustering_reduces_ops () =
  let run ~aggressive =
    let mach = Vmiface.Machine.boot ~config:small_config () in
    let usys =
      Uvm.State.create ~aggressive_clustering:aggressive ~pageout_cluster:8 mach
    in
    (* Drive the daemon directly through a raw map. *)
    ignore usys;
    (* Simpler: boot a full system and compare stats; the facade has no
       clustering knob, so build the workload through the library. *)
    mach
  in
  ignore run;
  (* Compare UVM default (clustered) against the BSD baseline on the same
     workload: write ops must be far fewer under UVM. *)
  let count (module V : Vmiface.Vm_sig.VM_SYS) =
    let sys = V.boot ~config:small_config () in
    let vm = V.new_vmspace sys in
    let vpn = V.mmap sys vm ~npages:300 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
    V.access_range sys vm ~vpn ~npages:300 Vt.Write;
    let st = (V.machine sys).Vmiface.Machine.stats in
    (st.Sim.Stats.disk_write_ops, st.Sim.Stats.pageouts)
  in
  let uvm_ops, uvm_pages = count (module Uvm.Sys) in
  let bsd_ops, bsd_pages = count (module Bsdvm.Sys) in
  Alcotest.(check bool) "similar page counts" true
    (abs (uvm_pages - bsd_pages) < uvm_pages);
  Alcotest.(check bool) "uvm clusters writes" true (uvm_ops * 2 < bsd_ops);
  Alcotest.(check bool) "bsd one op per page" true (bsd_ops >= bsd_pages)

let test_wired_pages_never_paged () =
  let sys = S.boot ~config:small_config () in
  let vm = S.new_vmspace sys in
  let pinned = S.mmap sys vm ~npages:4 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  S.write_bytes sys vm ~addr:(pinned * 4096) (Bytes.of_string "pinned");
  S.mlock sys vm ~vpn:pinned ~npages:4;
  let frame id = (Option.get (Pmap.lookup vm.S.pmap ~vpn:id)).Pmap.page.Physmem.Page.id in
  let f0 = frame pinned in
  (* Crush memory. *)
  let big = S.mmap sys vm ~npages:200 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  fill sys vm ~vpn:big ~npages:200;
  Alcotest.(check int) "wired frame still mapped" f0 (frame pinned);
  Alcotest.(check string) "wired data intact" "pinned"
    (Bytes.to_string (S.read_bytes sys vm ~addr:(pinned * 4096) ~len:6))

let test_second_chance_keeps_hot_pages () =
  let sys = S.boot ~config:small_config () in
  let vm = S.new_vmspace sys in
  let hot = S.mmap sys vm ~npages:4 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  S.write_bytes sys vm ~addr:(hot * 4096) (Bytes.of_string "hot");
  let big = S.mmap sys vm ~npages:400 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  (* Keep touching the hot page while pressure builds. *)
  for i = 0 to 399 do
    S.write_bytes sys vm ~addr:((big + i) * 4096) (Bytes.of_string "x");
    if i mod 10 = 0 then S.touch sys vm ~vpn:hot Vt.Read
  done;
  (* The hot page is likely still resident (second chance); correctness
     either way, but its data must survive. *)
  Alcotest.(check string) "hot data" "hot"
    (Bytes.to_string (S.read_bytes sys vm ~addr:(hot * 4096) ~len:3))

let test_clean_page_with_swap_copy_reclaimed_without_io () =
  let sys = S.boot ~config:small_config () in
  let vm = S.new_vmspace sys in
  let n = 200 in
  let vpn = S.mmap sys vm ~npages:n ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  fill sys vm ~vpn ~npages:n;
  (* Read everything back (pages in, now clean with swap copies). *)
  verify sys vm ~vpn ~npages:n;
  let outs = (stats sys).Sim.Stats.pageouts in
  (* More pressure: clean pages with swap copies must be reclaimed without
     fresh pageouts dominating (some re-dirtying is fine). *)
  let extra = S.mmap sys vm ~npages:60 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  for i = 0 to 59 do
    S.touch sys vm ~vpn:(extra + i) Vt.Read
  done;
  let new_outs = (stats sys).Sim.Stats.pageouts - outs in
  Alcotest.(check bool) "mostly free reclaims" true (new_outs < 60)

let test_aobj_shared_paging () =
  let sys = S.boot ~config:small_config () in
  let vm = S.new_vmspace sys in
  let shm = S.mmap sys vm ~npages:50 ~prot:Pmap.Prot.rw ~share:Vt.Shared Vt.Zero in
  fill sys vm ~vpn:shm ~npages:50;
  (* Shared anon memory must also survive pressure. *)
  let big = S.mmap sys vm ~npages:200 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  fill sys vm ~vpn:big ~npages:200;
  verify sys vm ~vpn:shm ~npages:50;
  S.destroy_vmspace sys vm;
  Alcotest.(check int) "aobj swap freed" 0 (S.swap_slots_in_use sys)

let test_swap_exhaustion_raises () =
  let config =
    { Vmiface.Machine.default_config with ram_pages = 64; swap_pages = 32 }
  in
  let sys = S.boot ~config () in
  let vm = S.new_vmspace sys in
  let vpn = S.mmap sys vm ~npages:200 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  (try
     for i = 0 to 199 do
       S.write_bytes sys vm ~addr:((vpn + i) * 4096) (Bytes.of_string "y")
     done;
     Alcotest.fail "expected Segv Out_of_memory (swap deadlock)"
   with Vt.Segv { error = Vt.Out_of_memory; _ } -> ());
  Alcotest.(check bool) "swap nearly full" true (S.swap_slots_in_use sys > 0)

let () =
  Alcotest.run "pdaemon"
    [
      ( "paging",
        [
          Alcotest.test_case "pressure roundtrip" `Quick test_pressure_roundtrip;
          Alcotest.test_case "clustering reduces ops" `Quick test_clustering_reduces_ops;
          Alcotest.test_case "aobj shared paging" `Quick test_aobj_shared_paging;
          Alcotest.test_case "swap exhaustion" `Quick test_swap_exhaustion_raises;
        ] );
      ( "policy",
        [
          Alcotest.test_case "wired never paged" `Quick test_wired_pages_never_paged;
          Alcotest.test_case "second chance" `Quick test_second_chance_keeps_hot_pages;
          Alcotest.test_case "clean reclaim" `Quick test_clean_page_with_swap_copy_reclaimed_without_io;
        ] );
    ]

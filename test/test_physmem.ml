(* Physical memory: allocator, paging queues, wiring, loans, data ops. *)

let mk ?(npages = 64) () =
  let clock = Sim.Simclock.create () in
  let stats = Sim.Stats.create () in
  let pm =
    Physmem.create ~page_size:256 ~npages ~clock ~costs:Sim.Cost_model.zero
      ~stats ()
  in
  (pm, clock, stats)

let test_boot_state () =
  let pm, _, _ = mk () in
  Alcotest.(check int) "all free" 64 (Physmem.free_count pm);
  Alcotest.(check int) "total" 64 (Physmem.total_pages pm);
  Alcotest.(check int) "page size" 256 (Physmem.page_size pm);
  Alcotest.(check int) "active empty" 0 (Physmem.active_count pm)

let test_alloc_free () =
  let pm, _, _ = mk () in
  let p = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:3 () in
  Alcotest.(check int) "free dropped" 63 (Physmem.free_count pm);
  Alcotest.(check bool) "not on queue" true (p.Physmem.Page.queue = Physmem.Page.Q_none);
  Alcotest.(check int) "offset recorded" 3 p.Physmem.Page.owner_offset;
  Physmem.free_page pm p;
  Alcotest.(check int) "free restored" 64 (Physmem.free_count pm);
  Alcotest.check_raises "double free"
    (Invalid_argument "Physmem.free_page: page already free") (fun () ->
      Physmem.free_page pm p)

let test_zero_alloc () =
  let pm, clock, stats = mk () in
  let p = Physmem.alloc pm ~zero:true ~owner:Physmem.Page.No_owner ~offset:0 () in
  Alcotest.(check bool) "zeroed" true
    (Bytes.for_all (fun c -> c = '\000') p.Physmem.Page.data);
  Alcotest.(check int) "zero counted" 1 stats.Sim.Stats.pages_zeroed;
  Alcotest.(check bool) "zero cost charged" true (Sim.Simclock.now clock = 0.0)

let test_queues () =
  let pm, _, _ = mk () in
  let p = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () in
  Physmem.activate pm p;
  Alcotest.(check int) "active" 1 (Physmem.active_count pm);
  Physmem.deactivate pm p;
  Alcotest.(check int) "inactive" 1 (Physmem.inactive_count pm);
  Alcotest.(check int) "active empty" 0 (Physmem.active_count pm);
  Alcotest.(check bool) "ref cleared" false p.Physmem.Page.referenced;
  Physmem.dequeue pm p;
  Alcotest.(check int) "dequeued" 0 (Physmem.inactive_count pm);
  Physmem.free_page pm p

let test_wire_keeps_off_queues () =
  let pm, _, _ = mk () in
  let p = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () in
  Physmem.activate pm p;
  Physmem.wire pm p;
  Alcotest.(check int) "left queue when wired" 0 (Physmem.active_count pm);
  Physmem.activate pm p;
  Alcotest.(check int) "activate on wired is no-op" 0 (Physmem.active_count pm);
  Alcotest.check_raises "cannot free wired"
    (Invalid_argument "Physmem.free_page: page is wired") (fun () ->
      Physmem.free_page pm p);
  Physmem.unwire pm p;
  Alcotest.(check int) "back on active" 1 (Physmem.active_count pm);
  Alcotest.check_raises "unwire unwired"
    (Invalid_argument "Physmem.unwire: page not wired") (fun () ->
      Physmem.unwire pm p)

let test_loaned_free_defers () =
  let pm, _, _ = mk () in
  let p = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () in
  p.Physmem.Page.loan_count <- 1;
  Physmem.free_page pm p;
  Alcotest.(check int) "frame not freed while loaned" 63 (Physmem.free_count pm);
  Alcotest.(check bool) "ownership dropped" true
    (p.Physmem.Page.owner = Physmem.Page.No_owner);
  Physmem.release_loan pm p;
  Alcotest.(check int) "freed when last loan ends" 64 (Physmem.free_count pm)

let test_pagedaemon_invoked () =
  let pm, _, _ = mk ~npages:32 () in
  let calls = ref 0 in
  let stash = ref [] in
  Physmem.set_pagedaemon pm (fun () ->
      incr calls;
      (* Free one stashed page to make progress, but only a few times so
         the allocation loop below terminates. *)
      if !calls <= 3 then
        match !stash with
        | p :: rest ->
            stash := rest;
            Physmem.free_page pm p
        | [] -> ());
  (* Exhaust memory. *)
  (try
     while true do
       stash := Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () :: !stash
     done
   with Physmem.Out_of_pages -> ());
  Alcotest.(check bool) "daemon ran" true (!calls > 0)

let test_out_of_pages () =
  let pm, _, _ = mk ~npages:16 () in
  let reserve = Physmem.reserve pm in
  Alcotest.(check bool) "reserve is sane" true (reserve > 0 && reserve < 16);
  let all = ref [] in
  (* Ordinary allocations stop above the reserve... *)
  (try
     for _ = 1 to 17 do
       all := Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () :: !all
     done;
     Alcotest.fail "expected Out_of_pages"
   with Physmem.Out_of_pages -> ());
  Alcotest.(check int) "stopped above the reserve" (16 - reserve)
    (List.length !all);
  (* ...and privileged (memory-making) allocations drain it to zero. *)
  (try
     for _ = 1 to reserve + 1 do
       all :=
         Physmem.alloc pm ~privileged:true ~owner:Physmem.Page.No_owner
           ~offset:0 ()
         :: !all
     done;
     Alcotest.fail "expected Out_of_pages"
   with Physmem.Out_of_pages -> ());
  Alcotest.(check int) "privileged got the reserve" 16 (List.length !all);
  Alcotest.(check int) "empty" 0 (Physmem.free_count pm)

let test_copy_and_zero_data () =
  let pm, _, stats = mk () in
  let a = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () in
  let b = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () in
  Bytes.fill a.Physmem.Page.data 0 256 'x';
  Physmem.copy_data pm ~src:a ~dst:b;
  Alcotest.(check bool) "copied" true (Bytes.equal a.Physmem.Page.data b.Physmem.Page.data);
  Alcotest.(check int) "copy counted" 1 stats.Sim.Stats.pages_copied;
  Physmem.zero_data pm b;
  Alcotest.(check bool) "zeroed" true
    (Bytes.for_all (fun c -> c = '\000') b.Physmem.Page.data)

(* Property: any interleaving of alloc/free/activate/deactivate keeps the
   free count consistent with the set of live pages. *)
let prop_accounting =
  QCheck.Test.make ~name:"free count accounting" ~count:100
    QCheck.(list (int_range 0 3))
    (fun ops ->
      let pm, _, _ = mk ~npages:32 () in
      let live = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 -> (
              match Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () with
              | p -> live := p :: !live
              | exception Physmem.Out_of_pages -> ())
          | 1 -> (
              match !live with
              | p :: rest ->
                  Physmem.free_page pm p;
                  live := rest
              | [] -> ())
          | 2 -> ( match !live with p :: _ -> Physmem.activate pm p | [] -> ())
          | _ -> (
              match !live with p :: _ -> Physmem.deactivate pm p | [] -> ()))
        ops;
      Physmem.free_count pm = 32 - List.length !live)

let () =
  Alcotest.run "physmem"
    [
      ( "allocator",
        [
          Alcotest.test_case "boot state" `Quick test_boot_state;
          Alcotest.test_case "alloc/free" `Quick test_alloc_free;
          Alcotest.test_case "zero alloc" `Quick test_zero_alloc;
          Alcotest.test_case "out of pages" `Quick test_out_of_pages;
          QCheck_alcotest.to_alcotest prop_accounting;
        ] );
      ( "queues",
        [
          Alcotest.test_case "transitions" `Quick test_queues;
          Alcotest.test_case "wire" `Quick test_wire_keeps_off_queues;
        ] );
      ( "loans",
        [ Alcotest.test_case "deferred free" `Quick test_loaned_free_defers ] );
      ( "pagedaemon",
        [ Alcotest.test_case "invoked on pressure" `Quick test_pagedaemon_invoked ]
      );
      ( "data",
        [ Alcotest.test_case "copy and zero" `Quick test_copy_and_zero_data ] );
    ]

(* The efficacy report's fault-ahead claim (paper §7): madvise advice pays
   off in proportion to how well it matches the access pattern.  Each case
   boots a fresh UVM machine, warms a file into the page cache, runs one
   measured sweep under one advice and reads the ledger-derived
   mapped/used/wasted counters for that advice's bucket.

   Expected ordering, with the default window (4 ahead, 3 behind; doubled
   and forward-only under Adv_sequential; disabled under Adv_random):
   - full sequential sweep: every premap is touched before munmap, so the
     hit rate is 100% under both Adv_normal and Adv_sequential, and the
     deeper sequential window avoids strictly more faults;
   - strided sweep (stride past both windows): no premap is ever touched,
     so everything is wasted — more under the deeper sequential window;
   - Adv_random never premaps, so it wastes nothing on either pattern. *)

module Vt = Vmiface.Vmtypes
module L = Sim.Lifecycle
module U = Uvm.Sys

let npages = 128
let stride_far = 16 (* > 2 * fault_ahead: past even the sequential window *)

let counts lc madv = (L.fa_mapped lc madv, L.fa_used lc madv, L.fa_wasted lc madv)

(* Run one measured sweep and return the (mapped, used, wasted) delta of
   the advice's own bucket.  The warm pass runs under the default advice,
   so deltas (not absolutes) isolate the measured mapping's premaps; any
   still pending at munmap resolve as wasted before the final read. *)
let sweep ~advice ~stride =
  let config =
    { Vmiface.Machine.default_config with ram_pages = 1024; swap_pages = 4096 }
  in
  let sys = U.boot ~config () in
  let mach = U.machine sys in
  let vfs = mach.Vmiface.Machine.vfs in
  let vn = Vfs.create_file vfs ~name:"/corpus" ~size:(npages * 4096) in
  let vm = U.new_vmspace sys in
  let map () =
    U.mmap sys vm ~npages ~prot:Pmap.Prot.read ~share:Vt.Shared
      (Vt.File (vn, 0))
  in
  let warm = map () in
  U.access_range sys vm ~vpn:warm ~npages Vt.Read;
  U.munmap sys vm ~vpn:warm ~npages;
  let lc = mach.Vmiface.Machine.lifecycle in
  let madv = Vt.lifecycle_madv advice in
  let m0, u0, w0 = counts lc madv in
  let vpn = map () in
  U.madvise sys vm ~vpn ~npages advice;
  let i = ref 0 in
  while !i < npages do
    U.touch sys vm ~vpn:(vpn + !i) Vt.Read;
    i := !i + stride
  done;
  U.munmap sys vm ~vpn ~npages;
  let m1, u1, w1 = counts lc madv in
  Alcotest.(check int)
    "no illegal lifecycle transitions" 0 (L.illegal_transitions lc);
  U.destroy_vmspace sys vm;
  Vfs.vrele vfs vn;
  (m1 - m0, u1 - u0, w1 - w0)

let test_full_sweep_hit_rates () =
  let mn, un, wn = sweep ~advice:Vt.Adv_normal ~stride:1 in
  let ms, us, ws = sweep ~advice:Vt.Adv_sequential ~stride:1 in
  let mr, ur, wr = sweep ~advice:Vt.Adv_random ~stride:1 in
  Alcotest.(check bool) "normal premaps" true (mn > 0);
  Alcotest.(check int) "normal: all premaps used" mn un;
  Alcotest.(check int) "normal: nothing wasted" 0 wn;
  Alcotest.(check int) "sequential: all premaps used" ms us;
  Alcotest.(check int) "sequential: nothing wasted" 0 ws;
  (* The doubled forward window avoids strictly more demand faults. *)
  Alcotest.(check bool)
    (Printf.sprintf "sequential hits (%d) > normal hits (%d)" us un)
    true (us > un);
  Alcotest.(check (list int)) "random never premaps" [ 0; 0; 0 ] [ mr; ur; wr ]

let test_strided_sweep_waste () =
  let mn, un, wn = sweep ~advice:Vt.Adv_normal ~stride:stride_far in
  let ms, us, ws = sweep ~advice:Vt.Adv_sequential ~stride:stride_far in
  let mr, _, _ = sweep ~advice:Vt.Adv_random ~stride:stride_far in
  Alcotest.(check int) "normal: no premap touched" 0 un;
  Alcotest.(check int) "normal: every premap wasted" mn wn;
  Alcotest.(check bool) "normal wastes" true (wn > 0);
  Alcotest.(check int) "sequential: no premap touched" 0 us;
  Alcotest.(check int) "sequential: every premap wasted" ms ws;
  Alcotest.(check bool)
    (Printf.sprintf "sequential waste (%d) > normal waste (%d)" ws wn)
    true (ws > wn);
  Alcotest.(check int) "random wastes nothing because it maps nothing" 0 mr

(* The end-to-end report workload must agree: run both machines through
   the mixed Effreport workload and check the aggregated report source is
   well-formed (one source per system, clean ledgers, UVM clusters). *)
let test_effreport_sources () =
  let srcs = Experiments.Effreport.run ~quick:true () in
  Alcotest.(check int) "two systems reported" 2 (List.length srcs);
  let labels =
    List.map (fun s -> s.Sim.Trace_export.label) srcs |> List.sort compare
  in
  Alcotest.(check (list string)) "labelled" [ "BSD VM"; "UVM" ] labels;
  List.iter
    (fun s ->
      Alcotest.(check int)
        (s.Sim.Trace_export.label ^ ": clean ledger")
        0
        (L.illegal_transitions s.Sim.Trace_export.lifecycle))
    srcs

let () =
  Alcotest.run "report"
    [
      ( "fault-ahead efficacy",
        [
          Alcotest.test_case "full sweep: hit-rate ordering" `Quick
            test_full_sweep_hit_rates;
          Alcotest.test_case "strided sweep: waste ordering" `Quick
            test_strided_sweep_waste;
        ] );
      ( "report workload",
        [
          Alcotest.test_case "effreport sources well-formed" `Quick
            test_effreport_sources;
        ] );
    ]

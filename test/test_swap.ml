(* Swap: the contiguous slot allocator and the paging device. *)

let test_swapmap_basic () =
  let m = Swap.Swapmap.create ~nslots:16 in
  Alcotest.(check int) "capacity" 16 (Swap.Swapmap.capacity m);
  (match Swap.Swapmap.alloc m ~n:4 with
  | Some s ->
      Alcotest.(check bool) "slot >= 1" true (s >= 1);
      Alcotest.(check int) "in use" 4 (Swap.Swapmap.in_use m);
      Alcotest.(check bool) "allocated" true (Swap.Swapmap.is_allocated m ~slot:s);
      Swap.Swapmap.free m ~slot:s ~n:4;
      Alcotest.(check int) "freed" 0 (Swap.Swapmap.in_use m)
  | None -> Alcotest.fail "alloc failed")

let test_swapmap_contiguity () =
  let m = Swap.Swapmap.create ~nslots:16 in
  (* Fragment: allocate singles, free every other one. *)
  let slots = List.init 16 (fun _ -> Option.get (Swap.Swapmap.alloc m ~n:1)) in
  List.iteri (fun i s -> if i mod 2 = 0 then Swap.Swapmap.free m ~slot:s ~n:1) slots;
  Alcotest.(check bool) "no contiguous pair" true (Swap.Swapmap.alloc m ~n:2 = None);
  Alcotest.(check bool) "single fits" true (Swap.Swapmap.alloc m ~n:1 <> None)

let test_swapmap_exhaustion () =
  let m = Swap.Swapmap.create ~nslots:8 in
  Alcotest.(check bool) "full run ok" true (Swap.Swapmap.alloc m ~n:8 <> None);
  Alcotest.(check bool) "exhausted" true (Swap.Swapmap.alloc m ~n:1 = None)

let test_swapmap_errors () =
  let m = Swap.Swapmap.create ~nslots:8 in
  let s = Option.get (Swap.Swapmap.alloc m ~n:2) in
  Swap.Swapmap.free m ~slot:s ~n:2;
  Alcotest.check_raises "double free"
    (Invalid_argument "Swapmap.free: slot not allocated") (fun () ->
      Swap.Swapmap.free m ~slot:s ~n:2);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Swapmap.free: slot range out of bounds") (fun () ->
      Swap.Swapmap.free m ~slot:7 ~n:5)

(* Property: in_use always equals the number of allocated slots, and
   allocated runs never overlap. *)
let prop_swapmap_accounting =
  QCheck.Test.make ~name:"swapmap accounting" ~count:100
    QCheck.(list (int_range 1 5))
    (fun sizes ->
      let m = Swap.Swapmap.create ~nslots:64 in
      let held = ref [] in
      List.iteri
        (fun i n ->
          if i mod 3 = 2 then (
            match !held with
            | (s, k) :: rest ->
                Swap.Swapmap.free m ~slot:s ~n:k;
                held := rest
            | [] -> ())
          else
            match Swap.Swapmap.alloc m ~n with
            | Some s -> held := (s, n) :: !held
            | None -> ())
        sizes;
      let total = List.fold_left (fun acc (_, n) -> acc + n) 0 !held in
      let no_overlap =
        List.for_all
          (fun (s1, n1) ->
            List.for_all
              (fun (s2, n2) ->
                (s1 = s2 && n1 = n2) || s1 + n1 <= s2 || s2 + n2 <= s1)
              !held)
          !held
      in
      Swap.Swapmap.in_use m = total && no_overlap)

let io_ok = function
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "unexpected I/O error: %s" (Sim.Fault_plan.string_of_error e)

let mk_dev () =
  let clock = Sim.Simclock.create () in
  let stats = Sim.Stats.create () in
  let dev =
    Swap.Swapdev.create ~nslots:64 ~page_size:256 ~clock
      ~costs:Sim.Cost_model.default ~stats ()
  in
  let pm =
    Physmem.create ~page_size:256 ~npages:32 ~clock
      ~costs:Sim.Cost_model.zero ~stats ()
  in
  (dev, pm, clock, stats)

let test_swapdev_roundtrip () =
  let dev, pm, _, _ = mk_dev () in
  let mkpage c =
    let p = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () in
    Bytes.fill p.Physmem.Page.data 0 256 c;
    p.Physmem.Page.dirty <- true;
    p
  in
  let pages = [ mkpage 'a'; mkpage 'b'; mkpage 'c' ] in
  let slot = Option.get (Swap.Swapdev.alloc_slots dev ~n:3) in
  io_ok (Swap.Swapdev.write_cluster dev ~slot ~pages);
  List.iter
    (fun (p : Physmem.Page.t) ->
      Alcotest.(check bool) "cleaned by write" false p.dirty)
    pages;
  let dst = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () in
  io_ok (Swap.Swapdev.read_slot dev ~slot:(slot + 1) ~dst);
  Alcotest.(check char) "middle page restored" 'b' (Bytes.get dst.Physmem.Page.data 17);
  let dsts =
    [ Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 ();
      Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () ]
  in
  io_ok (Swap.Swapdev.read_cluster dev ~slot ~dsts);
  Alcotest.(check char) "cluster page 0" 'a'
    (Bytes.get (List.nth dsts 0).Physmem.Page.data 0);
  Alcotest.(check char) "cluster page 1" 'b'
    (Bytes.get (List.nth dsts 1).Physmem.Page.data 0)

let test_swapdev_cluster_is_one_op () =
  let dev, pm, clock, _ = mk_dev () in
  let pages =
    List.init 8 (fun _ -> Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 ())
  in
  let slot = Option.get (Swap.Swapdev.alloc_slots dev ~n:8) in
  let t0 = Sim.Simclock.now clock in
  io_ok (Swap.Swapdev.write_cluster dev ~slot ~pages);
  let c = Sim.Cost_model.default in
  Alcotest.(check (float 1e-6)) "one op + 8 transfers"
    (c.Sim.Cost_model.disk_op_latency +. (8.0 *. c.Sim.Cost_model.disk_page_transfer))
    (Sim.Simclock.now clock -. t0);
  Alcotest.(check int) "one write op" 1 (Sim.Disk.write_ops (Swap.Swapdev.disk dev))

let test_swapdev_free_discards () =
  let dev, pm, _, _ = mk_dev () in
  let p = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () in
  let slot = Option.get (Swap.Swapdev.alloc_slots dev ~n:1) in
  io_ok (Swap.Swapdev.write_cluster dev ~slot ~pages:[ p ]);
  Swap.Swapdev.free_slots dev ~slot ~n:1;
  Alcotest.check_raises "data discarded"
    (Invalid_argument "Swapdev.read_slot: slot holds no data") (fun () ->
      ignore (Swap.Swapdev.read_slot dev ~slot ~dst:p))

(* ------------------------------------------------------------------ *)
(* Swaptier: priority allocation, device death, drain, swapcache      *)
(* ------------------------------------------------------------------ *)

module St = Swap.Swaptier

let spec name pages prio =
  { St.tier_name = name; tier_pages = pages; tier_priority = prio; tier_costs = None }

let mk_tiers specs =
  let clock = Sim.Simclock.create () in
  let stats = Sim.Stats.create () in
  let t =
    St.create ~specs ~page_size:256 ~clock ~costs:Sim.Cost_model.default ~stats
  in
  let pm =
    Physmem.create ~page_size:256 ~npages:64 ~clock
      ~costs:Sim.Cost_model.zero ~stats ()
  in
  (t, pm, stats)

let tier_page pm c =
  let p = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () in
  Bytes.fill p.Physmem.Page.data 0 256 c;
  p.Physmem.Page.dirty <- true;
  p

let tier_named t name =
  List.find (fun ti -> ti.St.ti_name = name) (St.tiers t)

let test_tier_priority_and_striping () =
  let t, _, _ = mk_tiers [ spec "fast" 4 0; spec "slowa" 8 1; spec "slowb" 8 1 ] in
  Alcotest.(check int) "aggregate capacity" 20 (St.capacity t);
  (* The fast tier fills first; its global slots are 1..4. *)
  for _ = 1 to 4 do
    let s = Option.get (St.alloc_slots t ~n:1) in
    Alcotest.(check bool) "fast tier first" true (s >= 1 && s <= 4)
  done;
  (* Then the equal-priority band, striped between its two devices. *)
  for _ = 1 to 4 do
    let s = Option.get (St.alloc_slots t ~n:1) in
    Alcotest.(check bool) "spilled past fast" true (s > 4)
  done;
  Alcotest.(check int) "striped: slowa" 2 (tier_named t "slowa").St.ti_in_use;
  Alcotest.(check int) "striped: slowb" 2 (tier_named t "slowb").St.ti_in_use

let test_tier_death_failover () =
  let t, pm, stats = mk_tiers [ spec "fast" 8 0; spec "slow" 16 1 ] in
  let pages = [ tier_page pm 'a'; tier_page pm 'b' ] in
  let slot = Option.get (St.alloc_slots t ~n:2) in
  io_ok (St.write_cluster t ~slot ~pages);
  St.kill_device t ~name:"fast";
  St.kill_device t ~name:"fast" (* idempotent *);
  Alcotest.(check bool) "dead" false (St.device_alive t ~name:"fast");
  Alcotest.(check int) "one death counted" 1 stats.Sim.Stats.swap_devices_dead;
  Alcotest.(check int) "only the slow tier allocates" 16 (St.slots_usable t);
  Alcotest.(check bool) "whole device blacklisted" true (St.is_bad_slot t ~slot);
  (* Dying media: writes fail permanently, reads still served. *)
  (match St.write_cluster t ~slot ~pages with
  | Error { Sim.Fault_plan.severity = Sim.Fault_plan.Permanent; _ } -> ()
  | _ -> Alcotest.fail "write to dead device must fail permanently");
  let dst = tier_page pm ' ' in
  io_ok (St.read_slot t ~slot ~dst);
  Alcotest.(check char) "drain window read" 'a' (Bytes.get dst.Physmem.Page.data 0);
  (* write_resilient fails over to the slow tier and rebinds the owner. *)
  let bound = ref slot in
  (match
     St.write_resilient t ~retries:2 ~backoff_us:10.0 ~slot
       ~assign:(fun s -> bound := s)
       ~pages
   with
  | St.Reassigned fresh ->
      Alcotest.(check int) "owner rebound" fresh !bound;
      Alcotest.(check bool) "landed on the slow device" true (fresh > 8)
  | _ -> Alcotest.fail "expected cross-tier reassignment");
  Alcotest.(check int) "failover counted" 1 stats.Sim.Stats.swap_failovers;
  io_ok (St.read_slot t ~slot:(!bound + 1) ~dst);
  Alcotest.(check char) "data survived failover" 'b'
    (Bytes.get dst.Physmem.Page.data 0)

(* The No_space rung: reassignment with no healthy slot anywhere. *)
let test_tier_no_space () =
  let t, pm, stats = mk_tiers [ spec "fast" 4 0; spec "slow" 4 1 ] in
  let pages = [ tier_page pm 'x' ] in
  let slot = Option.get (St.alloc_slots t ~n:1) in
  io_ok (St.write_cluster t ~slot ~pages);
  (* Exhaust every remaining slot, then kill the device holding ours. *)
  while St.alloc_slots t ~n:1 <> None do () done;
  St.kill_device t ~name:"fast";
  (match
     St.write_resilient t ~retries:2 ~backoff_us:10.0 ~slot
       ~assign:(fun _ -> Alcotest.fail "no slot to assign")
       ~pages
   with
  | St.No_space { Sim.Fault_plan.severity = Sim.Fault_plan.Permanent; _ } -> ()
  | _ -> Alcotest.fail "expected No_space");
  Alcotest.(check bool) "degradation counted" true
    (stats.Sim.Stats.swap_full_events >= 1)

let test_tier_drain_migration () =
  let t, pm, stats = mk_tiers [ spec "fast" 8 0; spec "slow" 16 1 ] in
  let s1 = Option.get (St.alloc_slots t ~n:1) in
  let s2 = Option.get (St.alloc_slots t ~n:1) in
  let s3 = Option.get (St.alloc_slots t ~n:1) in
  io_ok (St.write_cluster t ~slot:s1 ~pages:[ tier_page pm 'p' ]);
  io_ok (St.write_cluster t ~slot:s2 ~pages:[ tier_page pm 'q' ]);
  (* s3 was never written: the drain drops it (owner rewrites later). *)
  let owned = ref [ s1; s2; s3 ] in
  St.set_drain_hook t
    (Some
       (fun () ->
         owned :=
           List.filter_map
             (fun s ->
               if not (St.slot_needs_drain t ~slot:s) then Some s
               else
                 match St.migrate_slot t ~slot:s with
                 | Some fresh ->
                     St.free_slots t ~slot:s ~n:1;
                     Some fresh
                 | None ->
                     St.free_slots t ~slot:s ~n:1;
                     None)
             !owned));
  St.kill_device t ~name:"fast";
  Alcotest.(check bool) "drain pending" true (St.drain_pending t);
  St.run_drain t;
  Alcotest.(check bool) "drain complete" false (St.drain_pending t);
  Alcotest.(check int) "two slots migrated" 2 stats.Sim.Stats.swap_migrations;
  Alcotest.(check int) "dead device owns nothing" 0
    (tier_named t "fast").St.ti_in_use;
  Alcotest.(check (option string)) "no undrained violation" None
    (St.undrained_violation t);
  (match !owned with
  | [ n1; n2 ] ->
      Alcotest.(check bool) "both on the slow device" true (n1 > 8 && n2 > 8);
      let dst = tier_page pm ' ' in
      io_ok (St.read_slot t ~slot:n1 ~dst);
      Alcotest.(check char) "first survivor" 'p' (Bytes.get dst.Physmem.Page.data 0);
      io_ok (St.read_slot t ~slot:n2 ~dst);
      Alcotest.(check char) "second survivor" 'q' (Bytes.get dst.Physmem.Page.data 0)
  | l -> Alcotest.failf "expected 2 rebound slots, got %d" (List.length l))

let test_swapoff_drains () =
  let t, pm, _ = mk_tiers [ spec "fast" 8 0; spec "slow" 16 1 ] in
  let slot = Option.get (St.alloc_slots t ~n:1) in
  io_ok (St.write_cluster t ~slot ~pages:[ tier_page pm 'v' ]);
  let bound = ref slot in
  St.set_drain_hook t
    (Some
       (fun () ->
         if St.slot_needs_drain t ~slot:!bound then
           match St.migrate_slot t ~slot:!bound with
           | Some fresh ->
               St.free_slots t ~slot:!bound ~n:1;
               bound := fresh
           | None -> ()));
  (* Administrative removal: drains synchronously, media stays healthy. *)
  St.swapoff t ~name:"fast";
  Alcotest.(check bool) "media still alive" true (St.device_alive t ~name:"fast");
  Alcotest.(check bool) "nothing left to drain" false (St.drain_pending t);
  Alcotest.(check bool) "slot moved off" true (!bound > 8);
  Alcotest.(check int) "out of the pool" 16 (St.slots_usable t)

let test_swapcache_basics () =
  let t, pm, stats = mk_tiers [ spec "fast" 16 0; spec "slow" 32 1 ] in
  let page = tier_page pm 'z' in
  St.cache_put t ~vid:7 ~pgno:3 ~page;
  Alcotest.(check int) "one entry" 1 (St.cache_slots t);
  Alcotest.(check int) "fill counted" 1 stats.Sim.Stats.swap_cache_fills;
  Alcotest.(check int) "cached on the fast tier" 1
    (tier_named t "fast").St.ti_cache_slots;
  Alcotest.(check bool) "contains" true (St.cache_contains t ~vid:7 ~pgno:3);
  let dst = tier_page pm ' ' in
  Alcotest.(check bool) "hit" true (St.cache_lookup t ~vid:7 ~pgno:3 ~dst);
  Alcotest.(check char) "served the bytes" 'z' (Bytes.get dst.Physmem.Page.data 9);
  Alcotest.(check bool) "served clean" false dst.Physmem.Page.dirty;
  Alcotest.(check int) "hit counted" 1 stats.Sim.Stats.swap_cache_hits;
  Alcotest.(check bool) "miss on other page" false
    (St.cache_lookup t ~vid:7 ~pgno:4 ~dst);
  St.cache_invalidate t ~vid:7 ~pgno:3;
  Alcotest.(check int) "invalidated" 0 (St.cache_slots t);
  Alcotest.(check int) "slot released" 0 (St.slots_in_use t);
  (* Audit view and single-tier inertness. *)
  St.cache_put t ~vid:9 ~pgno:1 ~page;
  Alcotest.(check int) "one claim" 1 (List.length (St.cache_claims t));
  let single, _, sstats = mk_tiers [ spec "only" 32 0 ] in
  St.cache_put single ~vid:1 ~pgno:0 ~page;
  Alcotest.(check int) "single tier: cache inert" 0 (St.cache_slots single);
  Alcotest.(check int) "single tier: no fill" 0 sstats.Sim.Stats.swap_cache_fills

(* Graceful degradation, first rung: slot pressure sheds cache entries
   before any allocation fails. *)
let test_swapcache_shed_under_pressure () =
  let t, pm, stats = mk_tiers [ spec "fast" 16 0; spec "slow" 4 1 ] in
  let page = tier_page pm 'c' in
  for pgno = 0 to 2 do
    St.cache_put t ~vid:1 ~pgno ~page
  done;
  Alcotest.(check int) "three entries" 3 (St.cache_slots t);
  (* 20 slots total, 3 held by the cache: the 18th allocation only fits
     by shedding, and the cache drains entirely before alloc gives up. *)
  for _ = 1 to 20 do
    Alcotest.(check bool) "alloc sheds instead of failing" true
      (St.alloc_slots t ~n:1 <> None)
  done;
  Alcotest.(check int) "cache fully shed" 0 (St.cache_slots t);
  Alcotest.(check int) "evictions counted" 3 stats.Sim.Stats.swap_cache_evictions;
  Alcotest.(check bool) "then exhaustion" true (St.alloc_slots t ~n:1 = None)

let () =
  Alcotest.run "swap"
    [
      ( "swapmap",
        [
          Alcotest.test_case "basic" `Quick test_swapmap_basic;
          Alcotest.test_case "contiguity" `Quick test_swapmap_contiguity;
          Alcotest.test_case "exhaustion" `Quick test_swapmap_exhaustion;
          Alcotest.test_case "errors" `Quick test_swapmap_errors;
          QCheck_alcotest.to_alcotest prop_swapmap_accounting;
        ] );
      ( "swapdev",
        [
          Alcotest.test_case "roundtrip" `Quick test_swapdev_roundtrip;
          Alcotest.test_case "cluster one op" `Quick test_swapdev_cluster_is_one_op;
          Alcotest.test_case "free discards" `Quick test_swapdev_free_discards;
        ] );
      ( "swaptier",
        [
          Alcotest.test_case "priority and striping" `Quick
            test_tier_priority_and_striping;
          Alcotest.test_case "death and failover" `Quick test_tier_death_failover;
          Alcotest.test_case "no space" `Quick test_tier_no_space;
          Alcotest.test_case "drain migration" `Quick test_tier_drain_migration;
          Alcotest.test_case "swapoff drains" `Quick test_swapoff_drains;
          Alcotest.test_case "swapcache basics" `Quick test_swapcache_basics;
          Alcotest.test_case "swapcache shed" `Quick
            test_swapcache_shed_under_pressure;
        ] );
    ]

(* Swap: the contiguous slot allocator and the paging device. *)

let test_swapmap_basic () =
  let m = Swap.Swapmap.create ~nslots:16 in
  Alcotest.(check int) "capacity" 16 (Swap.Swapmap.capacity m);
  (match Swap.Swapmap.alloc m ~n:4 with
  | Some s ->
      Alcotest.(check bool) "slot >= 1" true (s >= 1);
      Alcotest.(check int) "in use" 4 (Swap.Swapmap.in_use m);
      Alcotest.(check bool) "allocated" true (Swap.Swapmap.is_allocated m ~slot:s);
      Swap.Swapmap.free m ~slot:s ~n:4;
      Alcotest.(check int) "freed" 0 (Swap.Swapmap.in_use m)
  | None -> Alcotest.fail "alloc failed")

let test_swapmap_contiguity () =
  let m = Swap.Swapmap.create ~nslots:16 in
  (* Fragment: allocate singles, free every other one. *)
  let slots = List.init 16 (fun _ -> Option.get (Swap.Swapmap.alloc m ~n:1)) in
  List.iteri (fun i s -> if i mod 2 = 0 then Swap.Swapmap.free m ~slot:s ~n:1) slots;
  Alcotest.(check bool) "no contiguous pair" true (Swap.Swapmap.alloc m ~n:2 = None);
  Alcotest.(check bool) "single fits" true (Swap.Swapmap.alloc m ~n:1 <> None)

let test_swapmap_exhaustion () =
  let m = Swap.Swapmap.create ~nslots:8 in
  Alcotest.(check bool) "full run ok" true (Swap.Swapmap.alloc m ~n:8 <> None);
  Alcotest.(check bool) "exhausted" true (Swap.Swapmap.alloc m ~n:1 = None)

let test_swapmap_errors () =
  let m = Swap.Swapmap.create ~nslots:8 in
  let s = Option.get (Swap.Swapmap.alloc m ~n:2) in
  Swap.Swapmap.free m ~slot:s ~n:2;
  Alcotest.check_raises "double free"
    (Invalid_argument "Swapmap.free: slot not allocated") (fun () ->
      Swap.Swapmap.free m ~slot:s ~n:2);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Swapmap.free: slot range out of bounds") (fun () ->
      Swap.Swapmap.free m ~slot:7 ~n:5)

(* Property: in_use always equals the number of allocated slots, and
   allocated runs never overlap. *)
let prop_swapmap_accounting =
  QCheck.Test.make ~name:"swapmap accounting" ~count:100
    QCheck.(list (int_range 1 5))
    (fun sizes ->
      let m = Swap.Swapmap.create ~nslots:64 in
      let held = ref [] in
      List.iteri
        (fun i n ->
          if i mod 3 = 2 then (
            match !held with
            | (s, k) :: rest ->
                Swap.Swapmap.free m ~slot:s ~n:k;
                held := rest
            | [] -> ())
          else
            match Swap.Swapmap.alloc m ~n with
            | Some s -> held := (s, n) :: !held
            | None -> ())
        sizes;
      let total = List.fold_left (fun acc (_, n) -> acc + n) 0 !held in
      let no_overlap =
        List.for_all
          (fun (s1, n1) ->
            List.for_all
              (fun (s2, n2) ->
                (s1 = s2 && n1 = n2) || s1 + n1 <= s2 || s2 + n2 <= s1)
              !held)
          !held
      in
      Swap.Swapmap.in_use m = total && no_overlap)

let io_ok = function
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "unexpected I/O error: %s" (Sim.Fault_plan.string_of_error e)

let mk_dev () =
  let clock = Sim.Simclock.create () in
  let stats = Sim.Stats.create () in
  let dev =
    Swap.Swapdev.create ~nslots:64 ~page_size:256 ~clock
      ~costs:Sim.Cost_model.default ~stats
  in
  let pm =
    Physmem.create ~page_size:256 ~npages:32 ~clock
      ~costs:Sim.Cost_model.zero ~stats ()
  in
  (dev, pm, clock, stats)

let test_swapdev_roundtrip () =
  let dev, pm, _, _ = mk_dev () in
  let mkpage c =
    let p = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () in
    Bytes.fill p.Physmem.Page.data 0 256 c;
    p.Physmem.Page.dirty <- true;
    p
  in
  let pages = [ mkpage 'a'; mkpage 'b'; mkpage 'c' ] in
  let slot = Option.get (Swap.Swapdev.alloc_slots dev ~n:3) in
  io_ok (Swap.Swapdev.write_cluster dev ~slot ~pages);
  List.iter
    (fun (p : Physmem.Page.t) ->
      Alcotest.(check bool) "cleaned by write" false p.dirty)
    pages;
  let dst = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () in
  io_ok (Swap.Swapdev.read_slot dev ~slot:(slot + 1) ~dst);
  Alcotest.(check char) "middle page restored" 'b' (Bytes.get dst.Physmem.Page.data 17);
  let dsts =
    [ Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 ();
      Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () ]
  in
  io_ok (Swap.Swapdev.read_cluster dev ~slot ~dsts);
  Alcotest.(check char) "cluster page 0" 'a'
    (Bytes.get (List.nth dsts 0).Physmem.Page.data 0);
  Alcotest.(check char) "cluster page 1" 'b'
    (Bytes.get (List.nth dsts 1).Physmem.Page.data 0)

let test_swapdev_cluster_is_one_op () =
  let dev, pm, clock, _ = mk_dev () in
  let pages =
    List.init 8 (fun _ -> Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 ())
  in
  let slot = Option.get (Swap.Swapdev.alloc_slots dev ~n:8) in
  let t0 = Sim.Simclock.now clock in
  io_ok (Swap.Swapdev.write_cluster dev ~slot ~pages);
  let c = Sim.Cost_model.default in
  Alcotest.(check (float 1e-6)) "one op + 8 transfers"
    (c.Sim.Cost_model.disk_op_latency +. (8.0 *. c.Sim.Cost_model.disk_page_transfer))
    (Sim.Simclock.now clock -. t0);
  Alcotest.(check int) "one write op" 1 (Sim.Disk.write_ops (Swap.Swapdev.disk dev))

let test_swapdev_free_discards () =
  let dev, pm, _, _ = mk_dev () in
  let p = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () in
  let slot = Option.get (Swap.Swapdev.alloc_slots dev ~n:1) in
  io_ok (Swap.Swapdev.write_cluster dev ~slot ~pages:[ p ]);
  Swap.Swapdev.free_slots dev ~slot ~n:1;
  Alcotest.check_raises "data discarded"
    (Invalid_argument "Swapdev.read_slot: slot holds no data") (fun () ->
      ignore (Swap.Swapdev.read_slot dev ~slot ~dst:p))

let () =
  Alcotest.run "swap"
    [
      ( "swapmap",
        [
          Alcotest.test_case "basic" `Quick test_swapmap_basic;
          Alcotest.test_case "contiguity" `Quick test_swapmap_contiguity;
          Alcotest.test_case "exhaustion" `Quick test_swapmap_exhaustion;
          Alcotest.test_case "errors" `Quick test_swapmap_errors;
          QCheck_alcotest.to_alcotest prop_swapmap_accounting;
        ] );
      ( "swapdev",
        [
          Alcotest.test_case "roundtrip" `Quick test_swapdev_roundtrip;
          Alcotest.test_case "cluster one op" `Quick test_swapdev_cluster_is_one_op;
          Alcotest.test_case "free discards" `Quick test_swapdev_free_discards;
        ] );
    ]

(* The observability layer: event-history rings, latency histograms and
   the Chrome trace exporter.

   The exporter test round-trips through a minimal JSON parser written
   here — the repo deliberately carries no JSON dependency, and parsing
   the two fixed schemas needs thirty lines, not a library. *)

module Vmtypes = Vmiface.Vmtypes

(* -- ring buffers ------------------------------------------------------- *)

let test_ring_wraparound () =
  let h = Sim.Hist.create ~capacity:4 ~enabled:true () in
  for i = 1 to 10 do
    Sim.Hist.record h ~subsys:Sim.Hist.Fault ~ts:(float_of_int i)
      (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "recorded counts overwritten events" 10
    (Sim.Hist.recorded h);
  Alcotest.(check int) "retained capped at capacity" 4 (Sim.Hist.retained h);
  Alcotest.(check int) "dropped = recorded - retained" 6 (Sim.Hist.dropped h);
  Alcotest.(check (list string))
    "ring keeps the newest events in order"
    [ "e7"; "e8"; "e9"; "e10" ]
    (List.map
       (fun (e : Sim.Hist.event) -> e.name)
       (Sim.Hist.events_of h Sim.Hist.Fault));
  Sim.Hist.clear h;
  Alcotest.(check int) "clear empties the rings" 0 (Sim.Hist.retained h);
  Alcotest.(check int) "clear resets recorded" 0 (Sim.Hist.recorded h)

let test_ring_per_subsystem () =
  (* Capacity is per subsystem: a chatty subsystem cannot evict another's
     events. *)
  let h = Sim.Hist.create ~capacity:2 ~enabled:true () in
  Sim.Hist.record h ~subsys:Sim.Hist.Map ~ts:1.0 "map_lock";
  for i = 2 to 9 do
    Sim.Hist.record h ~subsys:Sim.Hist.Fault ~ts:(float_of_int i) "fault"
  done;
  Alcotest.(check int) "quiet subsystem keeps its event" 1
    (List.length (Sim.Hist.events_of h Sim.Hist.Map));
  Alcotest.(check int) "chatty subsystem wraps alone" 2
    (List.length (Sim.Hist.events_of h Sim.Hist.Fault))

let test_event_ordering () =
  (* Events recorded out of timestamp order across subsystems come back
     sorted by simulated time, sequence number breaking ties. *)
  let h = Sim.Hist.create ~enabled:true () in
  Sim.Hist.record h ~subsys:Sim.Hist.Pager ~ts:30.0 "c";
  Sim.Hist.record h ~subsys:Sim.Hist.Fault ~ts:10.0 "a";
  Sim.Hist.record h ~subsys:Sim.Hist.Map ~ts:20.0 "b";
  Sim.Hist.record h ~subsys:Sim.Hist.Swap ~ts:20.0 "b2";
  let es = Sim.Hist.events h in
  Alcotest.(check (list string))
    "merged stream sorted by (ts, seq)"
    [ "a"; "b"; "b2"; "c" ]
    (List.map (fun (e : Sim.Hist.event) -> e.name) es);
  let sorted =
    List.for_all2
      (fun (x : Sim.Hist.event) (y : Sim.Hist.event) ->
        x.ts < y.ts || (x.ts = y.ts && x.seq < y.seq))
      (List.filteri (fun i _ -> i < List.length es - 1) es)
      (List.tl es)
  in
  Alcotest.(check bool) "strictly ordered" true sorted

let test_disabled_records_nothing () =
  let h = Sim.Hist.create () in
  Alcotest.(check bool) "disabled by default" false (Sim.Hist.enabled h);
  Sim.Hist.record h ~subsys:Sim.Hist.Fault ~ts:1.0 "fault";
  Alcotest.(check int) "no events recorded" 0 (Sim.Hist.recorded h);
  Sim.Hist.set_enabled h true;
  Sim.Hist.record h ~subsys:Sim.Hist.Fault ~ts:2.0 "fault";
  Alcotest.(check int) "recording after enable" 1 (Sim.Hist.recorded h)

(* -- histograms --------------------------------------------------------- *)

(* Log buckets at four per octave bound any percentile's relative error
   by lambda - 1 ~ 19%. *)
let within_bucket_error expected actual =
  Float.abs (actual -. expected) <= 0.19 *. expected

let test_histogram_percentiles () =
  let h = Sim.Histogram.create () in
  for v = 1 to 1000 do
    Sim.Histogram.observe h (float_of_int v)
  done;
  Alcotest.(check int) "count" 1000 (Sim.Histogram.count h);
  Alcotest.(check (float 1e-6)) "sum" 500500.0 (Sim.Histogram.sum h);
  Alcotest.(check (float 1e-6)) "mean" 500.5 (Sim.Histogram.mean h);
  Alcotest.(check (float 1e-6)) "exact min" 1.0 (Sim.Histogram.min_value h);
  Alcotest.(check (float 1e-6)) "exact max" 1000.0 (Sim.Histogram.max_value h);
  List.iter
    (fun (p, expected) ->
      let got = Sim.Histogram.percentile h p in
      if not (within_bucket_error expected got) then
        Alcotest.failf "p%.0f of uniform 1..1000: got %.1f, want %.1f +-19%%" p
          got expected)
    [ (50.0, 500.0); (95.0, 950.0); (99.0, 990.0) ];
  let p100 = Sim.Histogram.percentile h 100.0 in
  Alcotest.(check bool)
    "p100 within a bucket of max, never above" true
    (p100 <= 1000.0 && within_bucket_error 1000.0 p100);
  let p0 = Sim.Histogram.percentile h 0.0 in
  Alcotest.(check bool)
    "p0 within a bucket of min, never below" true
    (p0 >= 1.0 && within_bucket_error 1.0 p0);
  (* Monotone in p. *)
  Alcotest.(check bool)
    "percentiles monotone" true
    (Sim.Histogram.p50 h <= Sim.Histogram.p95 h
    && Sim.Histogram.p95 h <= Sim.Histogram.p99 h
    && Sim.Histogram.p99 h <= p100)

let test_histogram_edge_cases () =
  let h = Sim.Histogram.create () in
  Alcotest.(check (float 0.0)) "empty p50 is 0" 0.0 (Sim.Histogram.p50 h);
  Alcotest.(check (float 0.0)) "empty mean is 0" 0.0 (Sim.Histogram.mean h);
  Sim.Histogram.observe h (-5.0);
  Sim.Histogram.observe h Float.nan;
  Sim.Histogram.observe h Float.infinity;
  Alcotest.(check int) "bad samples ignored" 0 (Sim.Histogram.count h);
  Sim.Histogram.observe h 42.0;
  Alcotest.(check int) "count after one sample" 1 (Sim.Histogram.count h);
  Alcotest.(check (float 1e-6))
    "single sample: p50 = the sample" 42.0 (Sim.Histogram.p50 h);
  (* Sub-microsecond samples land in the [0,1) bucket. *)
  let h0 = Sim.Histogram.create () in
  Sim.Histogram.observe h0 0.25;
  Alcotest.(check (float 1e-6)) "tiny sample p50" 0.25 (Sim.Histogram.p50 h0)

let test_histogram_merge () =
  let a = Sim.Histogram.create () and b = Sim.Histogram.create () in
  for v = 1 to 500 do
    Sim.Histogram.observe a (float_of_int v)
  done;
  for v = 501 to 1000 do
    Sim.Histogram.observe b (float_of_int v)
  done;
  Sim.Histogram.merge ~into:a b;
  Alcotest.(check int) "merged count" 1000 (Sim.Histogram.count a);
  Alcotest.(check (float 1e-6)) "merged sum" 500500.0 (Sim.Histogram.sum a);
  Alcotest.(check (float 1e-6)) "merged min" 1.0 (Sim.Histogram.min_value a);
  Alcotest.(check (float 1e-6)) "merged max" 1000.0 (Sim.Histogram.max_value a);
  let got = Sim.Histogram.p50 a in
  if not (within_bucket_error 500.0 got) then
    Alcotest.failf "merged p50: got %.1f, want 500 +-19%%" got

(* -- a minimal JSON parser for the exporter round-trips ----------------- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let next () =
    if !pos >= len then failwith "json: unexpected end";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    let got = next () in
    if got <> c then failwith (Printf.sprintf "json: want %c, got %c" c got)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' -> (
          (match next () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              let hex = String.init 4 (fun _ -> next ()) in
              let code = int_of_string ("0x" ^ hex) in
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else Buffer.add_char b '?'
          | c -> failwith (Printf.sprintf "json: bad escape \\%c" c));
          go ())
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      incr pos
    done;
    Jnum (float_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
        expect '{';
        skip_ws ();
        if peek () = Some '}' then (incr pos; Jobj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> Jobj (List.rev ((k, v) :: acc))
            | c -> failwith (Printf.sprintf "json: bad object char %c" c)
          in
          members []
    | Some '[' ->
        expect '[';
        skip_ws ();
        if peek () = Some ']' then (incr pos; Jarr [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> elements (v :: acc)
            | ']' -> Jarr (List.rev (v :: acc))
            | c -> failwith (Printf.sprintf "json: bad array char %c" c)
          in
          elements []
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then failwith "json: trailing garbage";
  v

let member k = function
  | Jobj fields -> ( try List.assoc k fields with Not_found -> Jnull)
  | _ -> Jnull

let jstr_exn = function Jstr s -> s | _ -> failwith "json: not a string"
let jarr_exn = function Jarr l -> l | _ -> failwith "json: not an array"
let jnum_exn = function Jnum n -> n | _ -> failwith "json: not a number"

(* -- exporters against live VM systems ---------------------------------- *)

(* Map a file and read it end to end: every page costs a fault and a
   vnode pagein, exercising the traced path in both systems. *)
module Workload (V : Vmiface.Vm_sig.VM_SYS) = struct
  let traced_source () =
    let config = { Vmiface.Machine.default_config with trace_buf = Some 1024 } in
    let sys = V.boot ~config () in
    let vfs = (V.machine sys).Vmiface.Machine.vfs in
    let vn = Vfs.create_file vfs ~name:"/data" ~size:(16 * 4096) in
    let vm = V.new_vmspace sys in
    let vpn =
      V.mmap sys vm ~npages:16 ~prot:Pmap.Prot.read ~share:Vmtypes.Shared
        (Vmtypes.File (vn, 0))
    in
    for i = 0 to 15 do
      V.touch sys vm ~vpn:(vpn + i) Vmtypes.Read
    done;
    (V.machine sys).Vmiface.Machine.trace_source
end

module Uvm_load = Workload (Uvm.Sys)
module Bsd_load = Workload (Bsdvm.Sys)

let run_both () =
  let srcs = [ Uvm_load.traced_source (); Bsd_load.traced_source () ] in
  (* The boots above registered themselves for the CLI exporters; this
     test holds its sources directly, so drop the registrations. *)
  Vmiface.Machine.reset_traced ();
  srcs

let test_live_tracing () =
  List.iter
    (fun (src : Sim.Trace_export.source) ->
      let names =
        List.map (fun (e : Sim.Hist.event) -> e.name) (Sim.Hist.events src.hist)
      in
      Alcotest.(check bool)
        (src.label ^ " records faults")
        true
        (List.mem "fault" names);
      Alcotest.(check bool)
        (src.label ^ " records pageins")
        true
        (List.mem "pagein" names);
      (* Simulated-timestamp ordering holds on real event streams too. *)
      let ts_sorted =
        let es = Sim.Hist.events src.hist in
        List.for_all2
          (fun (x : Sim.Hist.event) (y : Sim.Hist.event) -> x.ts <= y.ts)
          (List.filteri (fun i _ -> i < List.length es - 1) es)
          (List.tl es)
      in
      Alcotest.(check bool) (src.label ^ " events time-ordered") true ts_sorted;
      (* Latency histograms fill alongside the event stream. *)
      let fault_us = Sim.Histogram.get src.latencies "fault_us" in
      Alcotest.(check bool)
        (src.label ^ " observed fault latencies")
        true
        (Sim.Histogram.count fault_us > 0))
    (run_both ())

let test_chrome_export () =
  let srcs = run_both () in
  let buf = Buffer.create 4096 in
  Sim.Trace_export.chrome_json buf srcs;
  let root = parse_json (Buffer.contents buf) in
  let events = jarr_exn (member "traceEvents" root) in
  Alcotest.(check bool) "trace has events" true (List.length events > 0);
  (* process_name metadata maps pid -> system label. *)
  let pid_label =
    List.filter_map
      (fun e ->
        if
          member "ph" e = Jstr "M"
          && member "name" e = Jstr "process_name"
        then
          Some
            ( int_of_float (jnum_exn (member "pid" e)),
              jstr_exn (member "name" (member "args" e)) )
        else None)
      events
  in
  Alcotest.(check bool)
    "UVM process present" true
    (List.exists (fun (_, l) -> l = "UVM") pid_label);
  Alcotest.(check bool)
    "BSD VM process present" true
    (List.exists (fun (_, l) -> l = "BSD VM") pid_label);
  (* Both systems must contribute fault and pagein events. *)
  let events_for label name =
    List.exists
      (fun e ->
        member "name" e = Jstr name
        && List.assoc_opt (int_of_float (jnum_exn (member "pid" e))) pid_label
           = Some label)
      events
  in
  List.iter
    (fun label ->
      Alcotest.(check bool) (label ^ " fault events") true
        (events_for label "fault");
      Alcotest.(check bool)
        (label ^ " pagein events")
        true
        (events_for label "pagein"))
    [ "UVM"; "BSD VM" ];
  (* Spans are well-formed complete events; flow arrows carry ids. *)
  List.iter
    (fun e ->
      match member "ph" e with
      | Jstr "X" ->
          Alcotest.(check bool) "span has dur >= 0" true
            (jnum_exn (member "dur" e) >= 0.0);
          Alcotest.(check bool) "span has ts >= 0" true
            (jnum_exn (member "ts" e) >= 0.0)
      | Jstr ("s" | "f") ->
          Alcotest.(check bool) "flow event has an id" true
            (member "id" e <> Jnull)
      | Jstr ("i" | "M") -> ()
      | _ -> Alcotest.fail "unexpected event phase")
    events

(* Causal spans ride the same Chrome export as dedicated tracks with
   parent->child flow arrows: every flow id must pair one "s" with one
   "f", and land on a span track (tid >= 100, cat "span"). *)
let test_flow_event_round_trip () =
  let srcs = run_both () in
  let buf = Buffer.create 4096 in
  Sim.Trace_export.chrome_json buf srcs;
  let root = parse_json (Buffer.contents buf) in
  let events = jarr_exn (member "traceEvents" root) in
  let span_events =
    List.filter (fun e -> member "cat" e = Jstr "span") events
  in
  Alcotest.(check bool) "span tracks exported" true
    (List.exists (fun e -> member "ph" e = Jstr "X") span_events);
  List.iter
    (fun e ->
      Alcotest.(check bool) "span events live on tids >= 100" true
        (jnum_exn (member "tid" e) >= 100.0))
    span_events;
  let flows ph =
    List.filter_map
      (fun e ->
        if member "ph" e = Jstr ph && member "cat" e = Jstr "span" then
          Some
            ( int_of_float (jnum_exn (member "pid" e)),
              int_of_float (jnum_exn (member "id" e)) )
        else None)
      events
  in
  let starts = flows "s" and finishes = flows "f" in
  Alcotest.(check bool) "parented spans produce flows" true (starts <> []);
  Alcotest.(check int) "every flow start has a finish" (List.length starts)
    (List.length finishes);
  List.iter
    (fun id ->
      Alcotest.(check bool) "flow pairs share the id" true
        (List.mem id finishes))
    starts;
  (* Binding-point "e" is what makes Perfetto attach the arrow to the
     enclosing slice rather than the next one. *)
  List.iter
    (fun e ->
      if member "ph" e = Jstr "f" then
        Alcotest.(check string) "finish binds enclosing" "e"
          (jstr_exn (member "bp" e)))
    events

(* -- the periodic sampler ----------------------------------------------- *)

let test_sampler_monotonic_and_rates () =
  let clock = Sim.Simclock.create () in
  let t = Sim.Timeseries.create ~interval:10.0 () in
  let v = ref 0.0 in
  Sim.Timeseries.set_probe t ~columns:[ "v" ] (fun () -> [| !v |]);
  Sim.Timeseries.attach t clock;
  (* The counter climbs 1 per simulated microsecond while the clock
     advances in ragged steps — so every derived rate must be 1e6/s. *)
  for _ = 1 to 40 do
    v := !v +. 3.7;
    Sim.Simclock.advance clock 3.7
  done;
  let ss = Array.of_list (Sim.Timeseries.samples t) in
  Alcotest.(check bool) "clock advances produced samples" true
    (Array.length ss >= 5);
  let col =
    match Sim.Timeseries.col_index t "v" with
    | Some i -> i
    | None -> Alcotest.fail "missing column"
  in
  for i = 1 to Array.length ss - 1 do
    Alcotest.(check bool) "timestamps strictly increase" true
      (ss.(i).Sim.Timeseries.s_ts > ss.(i - 1).Sim.Timeseries.s_ts);
    Alcotest.(check (float 1e-3))
      "rate = dvalue / dt" 1_000_000.0
      (Sim.Timeseries.rate ~col ss.(i - 1) ss.(i))
  done;
  Alcotest.(check (float 1e-9))
    "degenerate rate is 0" 0.0
    (Sim.Timeseries.rate ~col ss.(0) ss.(0));
  Alcotest.(check int) "recorded matches retained here" (Array.length ss)
    (Sim.Timeseries.recorded t)

let test_watchdog_fires_once_per_episode () =
  let clock = Sim.Simclock.create () in
  let t = Sim.Timeseries.create ~interval:1.0 () in
  let level = ref 0.0 in
  Sim.Timeseries.set_probe t ~columns:[ "level" ] (fun () -> [| !level |]);
  Sim.Timeseries.attach t clock;
  Sim.Timeseries.add_rule t ~name:"high" ~window:3 (fun w ->
      if Array.for_all (fun s -> s.Sim.Timeseries.s_values.(0) > 10.0) w then
        Some [ ("level", "high") ]
      else None);
  let run n set =
    for _ = 1 to n do
      level := set;
      Sim.Simclock.advance clock 2.0
    done
  in
  run 10 20.0;
  (* condition holds for many windows -> still one warning *)
  Alcotest.(check int) "one warning per episode" 1
    (List.length (Sim.Timeseries.warnings t));
  run 3 5.0;
  (* re-armed *)
  run 5 20.0;
  let warns = Sim.Timeseries.warnings t in
  Alcotest.(check int) "second episode, second warning" 2 (List.length warns);
  List.iter
    (fun (w : Sim.Timeseries.warning) ->
      Alcotest.(check string) "rule name" "high" w.Sim.Timeseries.w_rule;
      Alcotest.(check (list (pair string string)))
        "structured detail"
        [ ("level", "high") ]
        w.Sim.Timeseries.w_detail)
    warns

let test_metrics_export_round_trip () =
  (* The machine-level probe: boot traced, do paging work, and check the
     uvm-sim-metrics/1 JSON carries monotonic samples of real gauges. *)
  let srcs = run_both () in
  let buf = Buffer.create 4096 in
  Sim.Trace_export.metrics_json buf srcs;
  let root = parse_json (Buffer.contents buf) in
  Alcotest.(check string)
    "schema tag" "uvm-sim-metrics/1"
    (jstr_exn (member "schema" root));
  List.iter
    (fun s ->
      let columns = List.map jstr_exn (jarr_exn (member "columns" s)) in
      Alcotest.(check bool) "free_pages column" true
        (List.mem "free_pages" columns);
      Alcotest.(check bool) "faults column" true (List.mem "faults" columns);
      let samples = jarr_exn (member "samples" s) in
      Alcotest.(check bool) "samples captured" true (List.length samples >= 2);
      let ncols = List.length columns in
      let last_ts = ref (-1.0) in
      List.iter
        (fun smp ->
          let ts = jnum_exn (member "ts" smp) in
          Alcotest.(check bool) "sample timestamps strictly increase" true
            (ts > !last_ts);
          last_ts := ts;
          Alcotest.(check int) "one value per column" ncols
            (List.length (jarr_exn (member "values" smp))))
        samples)
    (jarr_exn (member "systems" root))

let test_snapshot_export () =
  let srcs = run_both () in
  let buf = Buffer.create 4096 in
  Sim.Trace_export.snapshot_json buf srcs;
  let root = parse_json (Buffer.contents buf) in
  Alcotest.(check string)
    "schema tag" "uvm-sim-stats/1"
    (jstr_exn (member "schema" root));
  let systems = jarr_exn (member "systems" root) in
  Alcotest.(check (list string))
    "one entry per label" [ "UVM"; "BSD VM" ]
    (List.map (fun s -> jstr_exn (member "label" s)) systems);
  List.iter
    (fun s ->
      let faults = member "fault_us" (member "histograms" s) in
      Alcotest.(check bool)
        "fault_us histogram exported" true
        (jnum_exn (member "count" faults) > 0.0);
      Alcotest.(check bool)
        "p99 >= p50" true
        (jnum_exn (member "p99" faults) >= jnum_exn (member "p50" faults));
      Alcotest.(check bool)
        "events recorded" true
        (jnum_exn (member "recorded" (member "trace" s)) > 0.0))
    systems

(* Tier events (device_dead, migrate, drain_complete, cache_fill, …) go
   through the same ring and exporter as everything else: drive a tiered
   boot through death-and-drain and round-trip the Chrome JSON. *)
let test_tier_event_export () =
  Vmiface.Machine.reset_traced ();
  let config =
    Vmiface.Machine.tiered ~fast_pages:64 ~slow_pages:256
      {
        Vmiface.Machine.default_config with
        ram_pages = 32;
        trace_buf = Some 4096;
      }
  in
  let sys = Uvm.Sys.boot ~config () in
  let mach = Uvm.Sys.machine sys in
  let vm = Uvm.Sys.new_vmspace sys in
  let vpn =
    Uvm.Sys.mmap sys vm ~npages:48 ~prot:Pmap.Prot.rw ~share:Vmtypes.Private
      Vmtypes.Zero
  in
  for i = 0 to 47 do
    Uvm.Sys.write_bytes sys vm ~addr:((vpn + i) * 4096) (Bytes.make 1 'x')
  done;
  Swap.Swaptier.kill_device mach.Vmiface.Machine.swap ~name:"fast";
  (* Touching the set drives the pagedaemon, whose drain migrates the
     dead tier's surviving slots to the slow device. *)
  for i = 0 to 47 do
    ignore (Uvm.Sys.read_bytes sys vm ~addr:((vpn + i) * 4096) ~len:1)
  done;
  let src = mach.Vmiface.Machine.trace_source in
  Vmiface.Machine.reset_traced ();
  let buf = Buffer.create 4096 in
  Sim.Trace_export.chrome_json buf [ src ];
  let root = parse_json (Buffer.contents buf) in
  let events = jarr_exn (member "traceEvents" root) in
  (* Hist events only: causal spans share names ("migrate", "drain") but
     live on their own cat:"span" tracks with different args. *)
  let named name =
    List.filter
      (fun e ->
        member "name" e = Jstr name && member "cat" e <> Jstr "span")
      events
  in
  (match named "device_dead" with
  | [ e ] ->
      Alcotest.(check string)
        "death names the device" "fast"
        (jstr_exn (member "device" (member "args" e)))
  | l -> Alcotest.failf "expected 1 device_dead event, got %d" (List.length l));
  let migrations = named "migrate" in
  Alcotest.(check bool) "drain migrations exported" true (migrations <> []);
  List.iter
    (fun e ->
      let args = member "args" e in
      Alcotest.(check string) "migrate from the dead tier" "fast"
        (jstr_exn (member "from" args));
      Alcotest.(check string) "migrate to the healthy tier" "slow"
        (jstr_exn (member "to" args)))
    migrations;
  Alcotest.(check int)
    "exported migrations match the counter"
    mach.Vmiface.Machine.stats.Sim.Stats.swap_migrations
    (List.length migrations);
  Alcotest.(check bool) "drain completion exported" true
    (named "drain_complete" <> [])

let test_untraced_boot_is_silent () =
  Vmiface.Machine.reset_traced ();
  let sys = Uvm.Sys.boot () in
  let mach = Uvm.Sys.machine sys in
  let vm = Uvm.Sys.new_vmspace sys in
  let vpn =
    Uvm.Sys.mmap sys vm ~npages:4 ~prot:Pmap.Prot.rw ~share:Vmtypes.Private
      Vmtypes.Zero
  in
  for i = 0 to 3 do
    Uvm.Sys.touch sys vm ~vpn:(vpn + i) Vmtypes.Write
  done;
  Alcotest.(check int)
    "no events without trace_buf" 0
    (Sim.Hist.recorded mach.Vmiface.Machine.hist);
  Alcotest.(check (list string))
    "no latency series without tracing" []
    (List.map fst (Sim.Histogram.rows mach.Vmiface.Machine.latencies));
  Alcotest.(check int)
    "untraced boots do not register" 0
    (List.length (Vmiface.Machine.traced ()))

let () =
  Alcotest.run "trace"
    [
      ( "hist",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "per-subsystem rings" `Quick
            test_ring_per_subsystem;
          Alcotest.test_case "event ordering" `Quick test_event_ordering;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_disabled_records_nothing;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "percentiles on uniform 1..1000" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "edge cases" `Quick test_histogram_edge_cases;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
      ( "export",
        [
          Alcotest.test_case "live tracing both systems" `Quick
            test_live_tracing;
          Alcotest.test_case "chrome trace round-trip" `Quick test_chrome_export;
          Alcotest.test_case "flow event round-trip" `Quick
            test_flow_event_round_trip;
          Alcotest.test_case "stats snapshot round-trip" `Quick
            test_snapshot_export;
          Alcotest.test_case "tier event round-trip" `Quick
            test_tier_event_export;
          Alcotest.test_case "untraced boot is silent" `Quick
            test_untraced_boot_is_silent;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "sampler monotonic + rate math" `Quick
            test_sampler_monotonic_and_rates;
          Alcotest.test_case "watchdog fires once per episode" `Quick
            test_watchdog_fires_once_per_episode;
          Alcotest.test_case "metrics export round-trip" `Quick
            test_metrics_export_round_trip;
        ] );
    ]

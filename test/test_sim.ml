(* Tests for the sim substrate: doubly-linked lists, the clock, the disk
   cost model, deterministic RNG and statistics. *)

let test_dlist_basic () =
  let l = Sim.Dlist.create () in
  Alcotest.(check bool) "empty" true (Sim.Dlist.is_empty l);
  let _n1 = Sim.Dlist.push_tail l 1 in
  let _n2 = Sim.Dlist.push_tail l 2 in
  let _n3 = Sim.Dlist.push_head l 0 in
  Alcotest.(check int) "length" 3 (Sim.Dlist.length l);
  Alcotest.(check (list int)) "order" [ 0; 1; 2 ] (Sim.Dlist.to_list l)

let test_dlist_remove () =
  let l = Sim.Dlist.create () in
  let n1 = Sim.Dlist.push_tail l 1 in
  let n2 = Sim.Dlist.push_tail l 2 in
  let _n3 = Sim.Dlist.push_tail l 3 in
  Sim.Dlist.remove l n2;
  Alcotest.(check (list int)) "mid removed" [ 1; 3 ] (Sim.Dlist.to_list l);
  Sim.Dlist.remove l n1;
  Alcotest.(check (list int)) "head removed" [ 3 ] (Sim.Dlist.to_list l);
  Alcotest.check_raises "double remove"
    (Invalid_argument "Dlist.remove: node not on this list") (fun () ->
      Sim.Dlist.remove l n1)

let test_dlist_pop () =
  let l = Sim.Dlist.create () in
  ignore (Sim.Dlist.push_tail l 1);
  ignore (Sim.Dlist.push_tail l 2);
  Alcotest.(check (option int)) "pop head" (Some 1) (Sim.Dlist.pop_head l);
  Alcotest.(check (option int)) "pop tail" (Some 2) (Sim.Dlist.pop_tail l);
  Alcotest.(check (option int)) "pop empty" None (Sim.Dlist.pop_head l)

let test_dlist_on_list () =
  let l1 = Sim.Dlist.create () and l2 = Sim.Dlist.create () in
  let n = Sim.Dlist.push_tail l1 42 in
  Alcotest.(check bool) "on l1" true (Sim.Dlist.on_list n l1);
  Alcotest.(check bool) "not on l2" false (Sim.Dlist.on_list n l2);
  Sim.Dlist.remove l1 n;
  Alcotest.(check bool) "off after remove" false (Sim.Dlist.on_list n l1)

(* Property: a Dlist driven by pushes mirrors a reference list. *)
let prop_dlist_model =
  QCheck.Test.make ~name:"dlist matches list model" ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let l = Sim.Dlist.create () in
      let model = ref [] in
      List.iter
        (fun (at_head, v) ->
          if at_head then begin
            ignore (Sim.Dlist.push_head l v);
            model := v :: !model
          end
          else begin
            ignore (Sim.Dlist.push_tail l v);
            model := !model @ [ v ]
          end)
        ops;
      Sim.Dlist.to_list l = !model && Sim.Dlist.length l = List.length !model)

let test_clock () =
  let c = Sim.Simclock.create () in
  Alcotest.(check (float 0.0)) "starts at 0" 0.0 (Sim.Simclock.now c);
  Sim.Simclock.advance c 12.5;
  Sim.Simclock.advance c 7.5;
  Alcotest.(check (float 1e-9)) "monotone sum" 20.0 (Sim.Simclock.now c);
  Alcotest.check_raises "negative"
    (Invalid_argument "Simclock.advance: negative or non-finite duration")
    (fun () -> Sim.Simclock.advance c (-1.0))

let io_ok = function
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "unexpected I/O error: %s" (Sim.Fault_plan.string_of_error e)

let test_disk_costs () =
  let clock = Sim.Simclock.create () in
  let stats = Sim.Stats.create () in
  let d = Sim.Disk.create ~clock ~costs:Sim.Cost_model.default ~stats in
  let c = Sim.Cost_model.default in
  io_ok (Sim.Disk.read d ~npages:1);
  let one = Sim.Simclock.now clock in
  Alcotest.(check (float 1e-6))
    "1-page read"
    (c.Sim.Cost_model.disk_op_latency +. c.Sim.Cost_model.disk_page_transfer)
    one;
  io_ok (Sim.Disk.read d ~npages:16);
  Alcotest.(check (float 1e-6))
    "16-page clustered read"
    (c.Sim.Cost_model.disk_op_latency
    +. (16.0 *. c.Sim.Cost_model.disk_page_transfer))
    (Sim.Simclock.now clock -. one);
  Alcotest.(check int) "ops counted" 2 (Sim.Disk.read_ops d);
  Alcotest.(check int) "pages counted" 17 (Sim.Disk.pages_read d)

let test_disk_sequential () =
  let clock = Sim.Simclock.create () in
  let stats = Sim.Stats.create () in
  let d = Sim.Disk.create ~clock ~costs:Sim.Cost_model.default ~stats in
  io_ok (Sim.Disk.read ~sequential:true d ~npages:4);
  let c = Sim.Cost_model.default in
  Alcotest.(check (float 1e-6))
    "no seek when sequential"
    (4.0 *. c.Sim.Cost_model.disk_page_transfer)
    (Sim.Simclock.now clock)

let test_rng_determinism () =
  let a = Sim.Rng.create ~seed:7 and b = Sim.Rng.create ~seed:7 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same stream" (Sim.Rng.int a 1000) (Sim.Rng.int b 1000)
  done;
  let c = Sim.Rng.create ~seed:8 in
  let diff = ref false in
  for _ = 1 to 20 do
    if Sim.Rng.int a 1000 <> Sim.Rng.int c 1000 then diff := true
  done;
  Alcotest.(check bool) "different seeds differ" true !diff

let prop_rng_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Sim.Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Sim.Rng.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let test_rng_shuffle_permutes () =
  let rng = Sim.Rng.create ~seed:3 in
  let arr = Array.init 100 Fun.id in
  Sim.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 100 Fun.id) sorted

let test_stats_diff () =
  let a = Sim.Stats.create () in
  a.Sim.Stats.faults <- 10;
  a.Sim.Stats.pageins <- 3;
  let before = Sim.Stats.snapshot a in
  a.Sim.Stats.faults <- 25;
  let d = Sim.Stats.diff ~after:a ~before in
  Alcotest.(check int) "delta faults" 15 d.Sim.Stats.faults;
  Alcotest.(check int) "delta pageins" 0 d.Sim.Stats.pageins

let test_stats_rows () =
  let s = Sim.Stats.create () in
  s.Sim.Stats.cow_copies <- 4;
  let rows = Sim.Stats.to_rows s in
  Alcotest.(check (float 0.0)) "row value" 4.0 (List.assoc "cow_copies" rows)

let () =
  Alcotest.run "sim"
    [
      ( "dlist",
        [
          Alcotest.test_case "basic" `Quick test_dlist_basic;
          Alcotest.test_case "remove" `Quick test_dlist_remove;
          Alcotest.test_case "pop" `Quick test_dlist_pop;
          Alcotest.test_case "on_list" `Quick test_dlist_on_list;
          QCheck_alcotest.to_alcotest prop_dlist_model;
        ] );
      ("clock", [ Alcotest.test_case "advance" `Quick test_clock ]);
      ( "disk",
        [
          Alcotest.test_case "costs" `Quick test_disk_costs;
          Alcotest.test_case "sequential" `Quick test_disk_sequential;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
          QCheck_alcotest.to_alcotest prop_rng_bounds;
        ] );
      ( "stats",
        [
          Alcotest.test_case "diff" `Quick test_stats_diff;
          Alcotest.test_case "rows" `Quick test_stats_rows;
        ] );
    ]

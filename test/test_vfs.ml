(* The vnode layer: naming, reference counts, the free LRU, recycling
   hooks and paged file I/O. *)

let mk ?(max_vnodes = 4) () =
  let clock = Sim.Simclock.create () in
  let stats = Sim.Stats.create () in
  let vfs =
    Vfs.create ~max_vnodes ~page_size:256 ~clock ~costs:Sim.Cost_model.zero
      ~stats ()
  in
  let pm =
    Physmem.create ~page_size:256 ~npages:64 ~clock ~costs:Sim.Cost_model.zero
      ~stats ()
  in
  (vfs, pm, stats)

let test_file_byte_deterministic () =
  Alcotest.(check char) "stable"
    (Vfs.file_byte ~name:"/a" ~off:123)
    (Vfs.file_byte ~name:"/a" ~off:123);
  Alcotest.(check bool) "names differ" true
    (List.exists
       (fun off -> Vfs.file_byte ~name:"/a" ~off <> Vfs.file_byte ~name:"/b" ~off)
       (List.init 64 Fun.id))

let test_create_lookup () =
  let vfs, _, _ = mk () in
  let vn = Vfs.create_file vfs ~name:"/x" ~size:1000 in
  Alcotest.(check int) "one ref" 1 vn.Vfs.Vnode.usecount;
  Alcotest.(check int) "pattern" (Char.code (Vfs.file_byte ~name:"/x" ~off:5))
    (Char.code (Bytes.get vn.Vfs.Vnode.data 5));
  Alcotest.check_raises "duplicate create"
    (Invalid_argument "Vfs.create_file: /x exists") (fun () ->
      ignore (Vfs.create_file vfs ~name:"/x" ~size:10));
  let vn2 = Vfs.lookup vfs ~name:"/x" in
  Alcotest.(check bool) "same vnode" true (vn == vn2);
  Alcotest.(check int) "two refs" 2 vn.Vfs.Vnode.usecount;
  (try
     ignore (Vfs.lookup vfs ~name:"/nope");
     Alcotest.fail "expected Not_found"
   with Not_found -> ())

let test_lru_and_recycle () =
  let vfs, _, stats = mk ~max_vnodes:2 () in
  let a = Vfs.create_file vfs ~name:"/a" ~size:256 in
  let b = Vfs.create_file vfs ~name:"/b" ~size:256 in
  Vfs.vrele vfs a;
  Vfs.vrele vfs b;
  Alcotest.(check int) "both on free list" 2 (Vfs.free_list_length vfs);
  let recycled = ref [] in
  Vfs.register_recycle_hook vfs (fun vn -> recycled := vn.Vfs.Vnode.name :: !recycled);
  (* Creating a third file must recycle the LRU vnode (/a). *)
  let c = Vfs.create_file vfs ~name:"/c" ~size:256 in
  Alcotest.(check (list string)) "LRU recycled first" [ "/a" ] !recycled;
  Alcotest.(check bool) "a out of core" false a.Vfs.Vnode.incore;
  Alcotest.(check int) "recycles counted" 1 stats.Sim.Stats.vnode_recycles;
  (* Looking /a up again brings it back in core, recycling /b. *)
  let a2 = Vfs.lookup vfs ~name:"/a" in
  Alcotest.(check bool) "back in core" true a2.Vfs.Vnode.incore;
  Alcotest.(check (list string)) "b recycled next" [ "/b"; "/a" ] !recycled;
  Vfs.vrele vfs c;
  Vfs.vrele vfs a2

let test_ref_revives_from_lru () =
  let vfs, _, _ = mk () in
  let a = Vfs.create_file vfs ~name:"/a" ~size:256 in
  Vfs.vrele vfs a;
  Alcotest.(check int) "on lru" 1 (Vfs.free_list_length vfs);
  let a2 = Vfs.lookup vfs ~name:"/a" in
  Alcotest.(check int) "off lru" 0 (Vfs.free_list_length vfs);
  Alcotest.(check bool) "still in core (no recycle)" true a2.Vfs.Vnode.incore;
  Vfs.vref vfs a2;
  Alcotest.(check int) "vref" 2 a2.Vfs.Vnode.usecount;
  Vfs.vrele vfs a2;
  Vfs.vrele vfs a2;
  Alcotest.check_raises "over-release"
    (Invalid_argument "Vfs.vrele: no references") (fun () -> Vfs.vrele vfs a2)

let io_ok = function
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "unexpected I/O error: %s" (Sim.Fault_plan.string_of_error e)

let test_read_write_pages () =
  let vfs, pm, _ = mk () in
  let vn = Vfs.create_file vfs ~name:"/data" ~size:600 in
  let p0 = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () in
  let p1 = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () in
  let p2 = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () in
  io_ok (Vfs.read_pages vfs vn ~start_page:0 ~dsts:[ p0; p1; p2 ]);
  Alcotest.(check char) "page0 contents" (Vfs.file_byte ~name:"/data" ~off:10)
    (Bytes.get p0.Physmem.Page.data 10);
  Alcotest.(check char) "page1 contents" (Vfs.file_byte ~name:"/data" ~off:266)
    (Bytes.get p1.Physmem.Page.data 10);
  (* Page 2 covers bytes 512..600; the tail past EOF must be zero. *)
  Alcotest.(check char) "zero past EOF" '\000' (Bytes.get p2.Physmem.Page.data 200);
  (* Write back modified data. *)
  Bytes.fill p0.Physmem.Page.data 0 256 'Z';
  p0.Physmem.Page.dirty <- true;
  io_ok (Vfs.write_pages vfs vn ~start_page:0 ~srcs:[ p0 ]);
  Alcotest.(check char) "file updated" 'Z' (Bytes.get vn.Vfs.Vnode.data 100);
  Alcotest.(check bool) "page cleaned" false p0.Physmem.Page.dirty;
  Alcotest.(check int) "npages_of rounds up" 3 (Vfs.npages_of vfs vn)

let test_read_ahead_detection () =
  let clock = Sim.Simclock.create () in
  let stats = Sim.Stats.create () in
  let vfs =
    Vfs.create ~page_size:256 ~clock ~costs:Sim.Cost_model.default ~stats ()
  in
  let pm =
    Physmem.create ~page_size:256 ~npages:64 ~clock
      ~costs:Sim.Cost_model.zero ~stats ()
  in
  let vn = Vfs.create_file vfs ~name:"/seq" ~size:2048 in
  let page () = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 () in
  let c = Sim.Cost_model.default in
  let t0 = Sim.Simclock.now clock in
  io_ok (Vfs.read_pages vfs vn ~start_page:0 ~dsts:[ page () ]);
  let first = Sim.Simclock.now clock -. t0 in
  Alcotest.(check (float 1e-6)) "first read seeks"
    (c.Sim.Cost_model.disk_op_latency +. c.Sim.Cost_model.disk_page_transfer)
    first;
  let t1 = Sim.Simclock.now clock in
  io_ok (Vfs.read_pages vfs vn ~start_page:1 ~dsts:[ page () ]);
  Alcotest.(check (float 1e-6)) "sequential read streams"
    c.Sim.Cost_model.disk_page_transfer
    (Sim.Simclock.now clock -. t1);
  let t2 = Sim.Simclock.now clock in
  io_ok (Vfs.read_pages vfs vn ~start_page:5 ~dsts:[ page () ]);
  Alcotest.(check (float 1e-6)) "non-sequential seeks again"
    (c.Sim.Cost_model.disk_op_latency +. c.Sim.Cost_model.disk_page_transfer)
    (Sim.Simclock.now clock -. t2)

let test_recycle_skips_referenced () =
  let vfs, _, _ = mk ~max_vnodes:1 () in
  let a = Vfs.create_file vfs ~name:"/a" ~size:256 in
  (* /a still referenced: creating /b cannot recycle it. *)
  let b = Vfs.create_file vfs ~name:"/b" ~size:256 in
  Alcotest.(check bool) "a survives while referenced" true a.Vfs.Vnode.incore;
  Vfs.vrele vfs a;
  Vfs.vrele vfs b

let () =
  Alcotest.run "vfs"
    [
      ( "files",
        [
          Alcotest.test_case "deterministic bytes" `Quick test_file_byte_deterministic;
          Alcotest.test_case "create/lookup" `Quick test_create_lookup;
          Alcotest.test_case "read/write pages" `Quick test_read_write_pages;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru + recycle" `Quick test_lru_and_recycle;
          Alcotest.test_case "revive from lru" `Quick test_ref_revives_from_lru;
          Alcotest.test_case "referenced vnodes pinned" `Quick test_recycle_skips_referenced;
        ] );
      ( "io",
        [ Alcotest.test_case "read-ahead" `Quick test_read_ahead_detection ] );
    ]

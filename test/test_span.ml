(* Causal spans: collector semantics, the critical-path analyzer, and
   live propagation — a fault on either kernel must yield one trace tree
   linking the fault to the map lock, the pager I/O and the swap-tier
   operations it caused. *)

module Vmtypes = Vmiface.Vmtypes

(* -- collector unit tests ----------------------------------------------- *)

let test_nesting_and_trace_ids () =
  let c = Sim.Span.create ~enabled:true () in
  let a = Sim.Span.start c ~subsys:"fault" ~ts:0.0 "fault" in
  let b = Sim.Span.start c ~subsys:"map" ~ts:1.0 "map_lock" in
  let d = Sim.Span.start c ~subsys:"pager" ~ts:2.0 "pagein" in
  Sim.Span.finish c d ~ts:5.0 ();
  let e = Sim.Span.start c ~subsys:"pager" ~ts:6.0 "pagein" in
  Sim.Span.finish c e ~ts:7.0 ();
  Sim.Span.finish c b ~ts:8.0 ();
  Sim.Span.finish c a ~ts:10.0 ();
  Alcotest.(check int) "root has parent 0" 0 a.Sim.Span.sparent;
  Alcotest.(check int) "lock is child of fault" a.Sim.Span.sid
    b.Sim.Span.sparent;
  Alcotest.(check int) "pagein is child of lock" b.Sim.Span.sid
    d.Sim.Span.sparent;
  Alcotest.(check int) "sibling shares the parent" b.Sim.Span.sid
    e.Sim.Span.sparent;
  List.iter
    (fun s ->
      Alcotest.(check int) "one request, one trace id" a.Sim.Span.strace
        s.Sim.Span.strace)
    [ b; d; e ];
  Alcotest.(check (float 1e-9)) "durations close on finish" 10.0
    a.Sim.Span.sdur;
  let g = Sim.Span.start c ~subsys:"fault" ~ts:20.0 "fault" in
  Alcotest.(check bool)
    "empty stack mints a fresh trace" true
    (g.Sim.Span.strace <> a.Sim.Span.strace);
  Sim.Span.finish c g ~ts:21.0 ();
  Alcotest.(check int) "all finished" 5 (Sim.Span.recorded c);
  Alcotest.(check int) "nothing left open" 0
    (List.length (Sim.Span.open_spans c));
  Alcotest.(check (list int))
    "take_trace isolates one tree"
    [ d.Sim.Span.sid; e.Sim.Span.sid; b.Sim.Span.sid; a.Sim.Span.sid ]
    (List.map
       (fun s -> s.Sim.Span.sid)
       (Sim.Span.take_trace c ~trace:a.Sim.Span.strace))

let test_disabled_collector_is_inert () =
  let c = Sim.Span.create () in
  Alcotest.(check bool) "disabled by default" false (Sim.Span.enabled c);
  let s = Sim.Span.start c ~subsys:"fault" ~ts:1.0 "fault" in
  Alcotest.(check int) "dummy span id 0" 0 s.Sim.Span.sid;
  Sim.Span.finish c s ~ts:2.0 ();
  Alcotest.(check int) "nothing recorded" 0 (Sim.Span.recorded c);
  Sim.Span.set_enabled c true;
  let s = Sim.Span.start c ~subsys:"fault" ~ts:3.0 "fault" in
  Alcotest.(check bool) "real span once enabled" true (s.Sim.Span.sid > 0);
  Sim.Span.finish c s ~ts:4.0 ();
  Alcotest.(check int) "recorded once enabled" 1 (Sim.Span.recorded c)

let test_lifo_recovery () =
  (* An exception that skips inner finishes must not corrupt the stack:
     finishing an outer span closes the leaked inner spans at the same
     timestamp. *)
  let c = Sim.Span.create ~enabled:true () in
  let a = Sim.Span.start c ~subsys:"torture" ~ts:0.0 "op" in
  let b = Sim.Span.start c ~subsys:"fault" ~ts:1.0 "fault" in
  let d = Sim.Span.start c ~subsys:"map" ~ts:2.0 "map_lock" in
  Sim.Span.finish c a ~ts:9.0 ();
  Alcotest.(check int) "everything closed" 3 (Sim.Span.recorded c);
  Alcotest.(check int) "stack empty after recovery" 0
    (List.length (Sim.Span.open_spans c));
  Alcotest.(check (float 1e-9)) "leaked inner closed at outer ts" 8.0
    b.Sim.Span.sdur;
  Alcotest.(check (float 1e-9)) "leaked innermost too" 7.0 d.Sim.Span.sdur;
  (* Double finish is a no-op. *)
  Sim.Span.finish c b ~ts:50.0 ();
  Alcotest.(check int) "double finish ignored" 3 (Sim.Span.recorded c);
  Alcotest.(check (float 1e-9)) "duration unchanged" 8.0 b.Sim.Span.sdur

let test_ring_wraparound () =
  let c = Sim.Span.create ~capacity:4 ~enabled:true () in
  for i = 1 to 10 do
    let s = Sim.Span.start c ~subsys:"fault" ~ts:(float_of_int i) "fault" in
    Sim.Span.finish c s ~ts:(float_of_int i +. 0.5) ()
  done;
  Alcotest.(check int) "recorded counts everything" 10 (Sim.Span.recorded c);
  Alcotest.(check int) "dropped = recorded - capacity" 6 (Sim.Span.dropped c);
  Alcotest.(check (list (float 1e-9)))
    "ring keeps the newest, oldest first" [ 7.0; 8.0; 9.0; 10.0 ]
    (List.map (fun s -> s.Sim.Span.sts) (Sim.Span.spans c))

let test_self_times () =
  let c = Sim.Span.create ~enabled:true () in
  let a = Sim.Span.start c ~subsys:"fault" ~ts:0.0 "fault" in
  let b = Sim.Span.start c ~subsys:"map" ~ts:1.0 "map_lock" in
  let d = Sim.Span.start c ~subsys:"pager" ~ts:2.0 "pagein" in
  Sim.Span.finish c d ~ts:5.0 ();
  let e = Sim.Span.start c ~subsys:"pager" ~ts:6.0 "pagein" in
  Sim.Span.finish c e ~ts:7.0 ();
  Sim.Span.finish c b ~ts:8.0 ();
  Sim.Span.finish c a ~ts:10.0 ();
  let tree = Sim.Span.take_trace c ~trace:a.Sim.Span.strace in
  let self = Sim.Span.self_times tree in
  (* fault: 10 total - 7 in map_lock; map: 7 - 4 in pageins; pager: 3+1 *)
  Alcotest.(check (float 1e-9)) "fault self" 3.0 (List.assoc "fault" self);
  Alcotest.(check (float 1e-9)) "map self" 3.0 (List.assoc "map" self);
  Alcotest.(check (float 1e-9)) "pager self" 4.0 (List.assoc "pager" self);
  Alcotest.(check (float 1e-9))
    "decomposition telescopes to the root duration" a.Sim.Span.sdur
    (List.fold_left (fun acc (_, v) -> acc +. v) 0.0 self)

(* -- live propagation through both kernels ------------------------------ *)

(* Overcommit anonymous memory so the read-back pass faults pages in from
   swap: every trace must link fault -> map lock -> pager -> swap tier. *)
module Load (V : Vmiface.Vm_sig.VM_SYS) = struct
  let spans () =
    Vmiface.Machine.reset_traced ();
    let config =
      {
        Vmiface.Machine.default_config with
        ram_pages = 64;
        swap_pages = 1024;
        trace_buf = Some 16384;
      }
    in
    let sys = V.boot ~config () in
    let vm = V.new_vmspace sys in
    let vpn =
      V.mmap sys vm ~npages:128 ~prot:Pmap.Prot.rw ~share:Vmtypes.Private
        Vmtypes.Zero
    in
    V.access_range sys vm ~vpn ~npages:128 Vmtypes.Write;
    V.access_range sys vm ~vpn ~npages:128 Vmtypes.Read;
    Vmiface.Machine.reset_traced ();
    (V.machine sys).Vmiface.Machine.spans
end

module Uvm_load = Load (Uvm.Sys)
module Bsd_load = Load (Bsdvm.Sys)

let check_live_tree label spans =
  Alcotest.(check int) (label ^ ": nothing dropped") 0 (Sim.Span.dropped spans);
  Alcotest.(check int) (label ^ ": nothing left open") 0
    (List.length (Sim.Span.open_spans spans));
  let all = Sim.Span.spans spans in
  let by_id = Hashtbl.create 256 in
  List.iter (fun (s : Sim.Span.span) -> Hashtbl.replace by_id s.Sim.Span.sid s) all;
  (* Tree well-formedness: every non-root's parent exists, shares the
     trace, and contains the child's interval. *)
  List.iter
    (fun (s : Sim.Span.span) ->
      if s.Sim.Span.sparent <> 0 then begin
        match Hashtbl.find_opt by_id s.Sim.Span.sparent with
        | None -> Alcotest.failf "%s: span %d has unknown parent" label s.sid
        | Some p ->
            Alcotest.(check int)
              (label ^ ": child inherits trace")
              p.Sim.Span.strace s.Sim.Span.strace;
            Alcotest.(check bool)
              (label ^ ": parent starts first") true
              (p.Sim.Span.sts <= s.Sim.Span.sts);
            Alcotest.(check bool)
              (label ^ ": parent ends last") true
              (p.Sim.Span.sts +. p.Sim.Span.sdur
              >= s.Sim.Span.sts +. s.Sim.Span.sdur -. 1e-9)
      end)
    all;
  let rec root (s : Sim.Span.span) =
    match Hashtbl.find_opt by_id s.Sim.Span.sparent with
    | Some p -> root p
    | None -> s
  in
  (* The causal chain the tentpole promises: a swap-device read caused
     by a pager caused by a fault. *)
  let tiered =
    List.filter
      (fun (s : Sim.Span.span) ->
        String.length s.Sim.Span.ssubsys >= 5
        && String.sub s.Sim.Span.ssubsys 0 5 = "swap:")
      all
  in
  Alcotest.(check bool) (label ^ ": swap-tier spans present") true (tiered <> []);
  List.iter
    (fun (s : Sim.Span.span) ->
      let r = root s in
      Alcotest.(check string)
        (label ^ ": tier I/O roots at a fault")
        "fault" r.Sim.Span.ssubsys)
    tiered;
  let pageins =
    List.filter (fun (s : Sim.Span.span) -> s.Sim.Span.sname = "pagein") all
  in
  Alcotest.(check bool) (label ^ ": pagein spans present") true (pageins <> []);
  List.iter
    (fun (s : Sim.Span.span) ->
      Alcotest.(check bool) (label ^ ": pageins are never roots") true
        (s.Sim.Span.sparent <> 0))
    pageins;
  (* Critical path: each complete trace's decomposition telescopes to
     its root's duration. *)
  List.iter
    (fun (s : Sim.Span.span) ->
      if s.Sim.Span.sparent = 0 then begin
        let tree = Sim.Span.take_trace spans ~trace:s.Sim.Span.strace in
        let total =
          List.fold_left
            (fun acc (_, v) -> acc +. v)
            0.0
            (Sim.Span.self_times tree)
        in
        if Float.abs (total -. s.Sim.Span.sdur) > 1e-6 then
          Alcotest.failf "%s: trace %d self times sum %.9f <> root dur %.9f"
            label s.Sim.Span.strace total s.Sim.Span.sdur
      end)
    all

let test_uvm_fault_tree () = check_live_tree "UVM" (Uvm_load.spans ())
let test_bsd_fault_tree () = check_live_tree "BSD VM" (Bsd_load.spans ())

(* Device death: the drain's migrations must be attributed to the
   pagedaemon scan that performed them. *)
let test_drain_attribution () =
  Vmiface.Machine.reset_traced ();
  let config =
    Vmiface.Machine.tiered ~fast_pages:64 ~slow_pages:256
      {
        Vmiface.Machine.default_config with
        ram_pages = 32;
        trace_buf = Some 16384;
      }
  in
  let sys = Uvm.Sys.boot ~config () in
  let mach = Uvm.Sys.machine sys in
  let vm = Uvm.Sys.new_vmspace sys in
  let vpn =
    Uvm.Sys.mmap sys vm ~npages:48 ~prot:Pmap.Prot.rw ~share:Vmtypes.Private
      Vmtypes.Zero
  in
  for i = 0 to 47 do
    Uvm.Sys.write_bytes sys vm ~addr:((vpn + i) * 4096) (Bytes.make 1 'x')
  done;
  Swap.Swaptier.kill_device mach.Vmiface.Machine.swap ~name:"fast";
  for i = 0 to 47 do
    ignore (Uvm.Sys.read_bytes sys vm ~addr:((vpn + i) * 4096) ~len:1)
  done;
  Vmiface.Machine.reset_traced ();
  let spans = mach.Vmiface.Machine.spans in
  let all = Sim.Span.spans spans in
  let by_id = Hashtbl.create 256 in
  List.iter (fun (s : Sim.Span.span) -> Hashtbl.replace by_id s.Sim.Span.sid s) all;
  let migrations =
    List.filter (fun (s : Sim.Span.span) -> s.Sim.Span.sname = "migrate") all
  in
  Alcotest.(check bool) "migration spans present" true (migrations <> []);
  (* The lock observatory interposes lock:<class> spans; attribution
     walks through them to the enclosing work span. *)
  let is_lock (s : Sim.Span.span) =
    String.length s.Sim.Span.sname >= 5
    && String.sub s.Sim.Span.sname 0 5 = "lock:"
  in
  let rec work_parent (s : Sim.Span.span) =
    match Hashtbl.find_opt by_id s.Sim.Span.sparent with
    | Some p when is_lock p -> work_parent p
    | other -> other
  in
  List.iter
    (fun (s : Sim.Span.span) ->
      match work_parent s with
      | Some d -> (
          Alcotest.(check string) "migrate under the drain" "drain"
            d.Sim.Span.sname;
          match work_parent d with
          | Some scan ->
              Alcotest.(check string) "drain under the pagedaemon scan"
                "pdaemon" scan.Sim.Span.ssubsys
          | None -> Alcotest.fail "drain span has no parent")
      | None -> Alcotest.fail "migrate span has no parent")
    migrations

let () =
  Alcotest.run "span"
    [
      ( "collector",
        [
          Alcotest.test_case "nesting and trace ids" `Quick
            test_nesting_and_trace_ids;
          Alcotest.test_case "disabled is inert" `Quick
            test_disabled_collector_is_inert;
          Alcotest.test_case "LIFO recovery on leaked spans" `Quick
            test_lifo_recovery;
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "critical-path self times" `Quick test_self_times;
        ] );
      ( "live",
        [
          Alcotest.test_case "UVM fault tree" `Quick test_uvm_fault_tree;
          Alcotest.test_case "BSD VM fault tree" `Quick test_bsd_fault_tree;
          Alcotest.test_case "drain attribution" `Quick test_drain_attribution;
        ] );
    ]

(* The invariant auditor driven through the torture harness: seeded
   corruptions must be caught, attributed to the right subsystem, and
   shrunk to a small repro; clean fixed-seed runs must stay clean on both
   kernels, with and without injected I/O faults. *)

module T = Oslayer.Torture

let cfg ~seed ~nops ~audit_every =
  { T.default_cfg with T.seed; nops; audit_every; artifact_dir = None }

let test_fixed_seed_clean () =
  let r = T.run (cfg ~seed:42 ~nops:3000 ~audit_every:50) in
  (match r.T.r_bug with
  | None -> ()
  | Some b -> Alcotest.failf "unexpected bug: %s" (T.string_of_bug b));
  Alcotest.(check int) "all ops executed" 3000 (List.length r.T.r_trace)

let test_fixed_seed_clean_under_faults () =
  let c = { (cfg ~seed:7 ~nops:1500 ~audit_every:25) with T.faults = true } in
  match (T.run c).T.r_bug with
  | None -> ()
  | Some b ->
      Alcotest.failf "unexpected bug under faults: %s" (T.string_of_bug b)

(* Same oracle over a fast+slow tier pair: the cross-tier slot-ownership
   audit (device bases, swapcache claims) stays clean, and the wired
   mprotect / shared-amap mlock candidates run against live tiers. *)
let test_fixed_seed_clean_tiered () =
  let c = { (cfg ~seed:13 ~nops:2000 ~audit_every:25) with T.tiers = true } in
  match (T.run c).T.r_bug with
  | None -> ()
  | Some b -> Alcotest.failf "unexpected bug with tiers: %s" (T.string_of_bug b)

(* The differential oracle itself is deterministic: the same seed yields
   the identical op trace on every run. *)
let test_trace_reproducible () =
  let r1 = T.run (cfg ~seed:11 ~nops:500 ~audit_every:50) in
  let r2 = T.run (cfg ~seed:11 ~nops:500 ~audit_every:50) in
  Alcotest.(check bool) "same trace" true (r1.T.r_trace = r2.T.r_trace)

let corruption_case ?(tiers = false) kind subsys () =
  let c =
    {
      (cfg ~seed:42 ~nops:2000 ~audit_every:5) with
      T.corrupt = Some (500, kind);
      shrink = true;
      tiers;
    }
  in
  let r = T.run c in
  (match r.T.r_bug with
  | Some (T.Audit_bug { f; _ }) ->
      Alcotest.(check string) "caught in UVM" "UVM" f.Check.system;
      Alcotest.(check string) "right subsystem"
        (Check.subsystem_name subsys)
        (Check.subsystem_name f.Check.subsys)
  | Some b -> Alcotest.failf "wrong bug class: %s" (T.string_of_bug b)
  | None -> Alcotest.fail "corruption not caught by any audit");
  match r.T.r_minimal with
  | None -> Alcotest.fail "shrinker produced no repro"
  | Some ops ->
      if List.length ops > 20 then
        Alcotest.failf "repro not minimal: %d ops" (List.length ops)

let () =
  Alcotest.run "audit"
    [
      ( "torture",
        [
          Alcotest.test_case "fixed seed clean" `Quick test_fixed_seed_clean;
          Alcotest.test_case "clean under I/O faults" `Quick
            test_fixed_seed_clean_under_faults;
          Alcotest.test_case "clean with tiers" `Quick
            test_fixed_seed_clean_tiered;
          Alcotest.test_case "trace reproducible" `Quick
            test_trace_reproducible;
        ] );
      ( "corruption oracle",
        [
          Alcotest.test_case "leaked swap slot -> swap audit" `Quick
            (corruption_case T.Leak_swap_slot Check.Swap);
          Alcotest.test_case "over-referenced anon -> anon audit" `Quick
            (corruption_case T.Overref_anon Check.Anon);
          (* The provenance ledger notices the second enqueue before the
             physmem queue-walk does: the page's recorded lifecycle state
             disagrees with the ring it sits on. *)
          Alcotest.test_case "queue double insert -> ledger audit" `Quick
            (corruption_case T.Queue_double_insert Check.Ledger);
          (* A phantom loan_count with no kernel loan or borrowing anon
             behind it is exactly what the loan census exists to catch. *)
          Alcotest.test_case "leaked loan -> loan audit" `Quick
            (corruption_case T.Leak_loan Check.Loan);
          (* A swapcache entry whose slot was freed underneath it: the
             cache claims media it no longer owns, and the cross-tier
             slot-ownership walk attributes it to the swap subsystem. *)
          Alcotest.test_case "leaked swapcache entry -> swap audit" `Quick
            (corruption_case ~tiers:true T.Leak_swapcache Check.Swap);
        ] );
    ]

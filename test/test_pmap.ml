(* The pmap layer: translations, protections, pv (reverse) mappings. *)

let mk () =
  let clock = Sim.Simclock.create () in
  let stats = Sim.Stats.create () in
  let pm =
    Physmem.create ~page_size:256 ~npages:32 ~clock ~costs:Sim.Cost_model.zero
      ~stats ()
  in
  let ctx = Pmap.create_ctx ~clock ~costs:Sim.Cost_model.zero ~stats () in
  (pm, ctx)

let page pm = Physmem.alloc pm ~owner:Physmem.Page.No_owner ~offset:0 ()

let test_prot_algebra () =
  Alcotest.(check bool) "rw subsumes r" true
    (Pmap.Prot.subsumes Pmap.Prot.rw Pmap.Prot.read);
  Alcotest.(check bool) "r does not subsume rw" false
    (Pmap.Prot.subsumes Pmap.Prot.read Pmap.Prot.rw);
  Alcotest.(check bool) "none subsumes none" true
    (Pmap.Prot.subsumes Pmap.Prot.none Pmap.Prot.none);
  Alcotest.(check string) "to_string" "rw-" (Pmap.Prot.to_string Pmap.Prot.rw);
  Alcotest.(check bool) "remove_write" true
    (Pmap.Prot.equal (Pmap.Prot.remove_write Pmap.Prot.rwx) Pmap.Prot.rx);
  Alcotest.(check bool) "intersect" true
    (Pmap.Prot.equal (Pmap.Prot.intersect Pmap.Prot.rw Pmap.Prot.rx) Pmap.Prot.read)

let test_enter_lookup_remove () =
  let pm, ctx = mk () in
  let map = Pmap.create ctx in
  let p = page pm in
  Pmap.enter map ~vpn:100 ~page:p ~prot:Pmap.Prot.rw ~wired:false;
  (match Pmap.lookup map ~vpn:100 with
  | Some pte ->
      Alcotest.(check bool) "same page" true (pte.Pmap.page == p);
      Alcotest.(check bool) "prot" true (Pmap.Prot.equal pte.Pmap.prot Pmap.Prot.rw)
  | None -> Alcotest.fail "no translation");
  Alcotest.(check int) "resident" 1 (Pmap.resident_count map);
  Pmap.remove_one map ~vpn:100;
  Alcotest.(check bool) "gone" true (Pmap.lookup map ~vpn:100 = None);
  Alcotest.(check (list pass)) "pv empty" []
    (List.map (fun _ -> ()) (Pmap.mappings_of_page ctx p))

let test_replace_translation () =
  let pm, ctx = mk () in
  let map = Pmap.create ctx in
  let p1 = page pm and p2 = page pm in
  Pmap.enter map ~vpn:5 ~page:p1 ~prot:Pmap.Prot.read ~wired:false;
  Pmap.enter map ~vpn:5 ~page:p2 ~prot:Pmap.Prot.rw ~wired:false;
  (match Pmap.lookup map ~vpn:5 with
  | Some pte -> Alcotest.(check bool) "replaced" true (pte.Pmap.page == p2)
  | None -> Alcotest.fail "missing");
  Alcotest.(check int) "old pv gone" 0 (List.length (Pmap.mappings_of_page ctx p1));
  Alcotest.(check int) "new pv present" 1 (List.length (Pmap.mappings_of_page ctx p2))

let test_range_ops () =
  let pm, ctx = mk () in
  let map = Pmap.create ctx in
  for v = 10 to 19 do
    Pmap.enter map ~vpn:v ~page:(page pm) ~prot:Pmap.Prot.rw ~wired:false
  done;
  Pmap.protect_range map ~lo:12 ~hi:15 ~prot:Pmap.Prot.read;
  (match Pmap.lookup map ~vpn:13 with
  | Some pte -> Alcotest.(check bool) "downgraded" true (Pmap.Prot.equal pte.Pmap.prot Pmap.Prot.read)
  | None -> Alcotest.fail "missing");
  (match Pmap.lookup map ~vpn:16 with
  | Some pte -> Alcotest.(check bool) "untouched" true (Pmap.Prot.equal pte.Pmap.prot Pmap.Prot.rw)
  | None -> Alcotest.fail "missing");
  Pmap.remove_range map ~lo:10 ~hi:15;
  Alcotest.(check int) "half removed" 5 (Pmap.resident_count map);
  Pmap.restrict_range map ~lo:15 ~hi:20 ~prot:Pmap.Prot.rx;
  (match Pmap.lookup map ~vpn:17 with
  | Some pte ->
      Alcotest.(check bool) "restricted to r-x intersect rw- = r--" true
        (Pmap.Prot.equal pte.Pmap.prot Pmap.Prot.read)
  | None -> Alcotest.fail "missing")

let test_page_wide_ops () =
  let pm, ctx = mk () in
  let m1 = Pmap.create ctx and m2 = Pmap.create ctx in
  let p = page pm in
  Pmap.enter m1 ~vpn:1 ~page:p ~prot:Pmap.Prot.rw ~wired:false;
  Pmap.enter m2 ~vpn:9 ~page:p ~prot:Pmap.Prot.rw ~wired:false;
  Alcotest.(check int) "pv has both" 2 (List.length (Pmap.mappings_of_page ctx p));
  Pmap.page_protect_all ctx p ~prot:(Pmap.Prot.remove_write Pmap.Prot.rwx);
  let check_ro m vpn =
    match Pmap.lookup m ~vpn with
    | Some pte -> Alcotest.(check bool) "write revoked" false pte.Pmap.prot.Pmap.Prot.w
    | None -> Alcotest.fail "missing"
  in
  check_ro m1 1;
  check_ro m2 9;
  Pmap.page_remove_all ctx p;
  Alcotest.(check bool) "all gone" true
    (Pmap.lookup m1 ~vpn:1 = None && Pmap.lookup m2 ~vpn:9 = None)

let test_mark_access () =
  let pm, ctx = mk () in
  let map = Pmap.create ctx in
  let p = page pm in
  Pmap.enter map ~vpn:4 ~page:p ~prot:Pmap.Prot.rw ~wired:false;
  Alcotest.(check bool) "initially unreferenced" false (Pmap.is_referenced p);
  Pmap.mark_access map ~vpn:4 ~write:false;
  Alcotest.(check bool) "referenced" true (Pmap.is_referenced p);
  Alcotest.(check bool) "clean" false p.Physmem.Page.dirty;
  Pmap.mark_access map ~vpn:4 ~write:true;
  Alcotest.(check bool) "dirty" true p.Physmem.Page.dirty;
  Pmap.clear_reference ctx p;
  Alcotest.(check bool) "cleared" false (Pmap.is_referenced p)

let test_destroy () =
  let pm, ctx = mk () in
  let map = Pmap.create ctx in
  let pages = List.init 5 (fun i ->
      let p = page pm in
      Pmap.enter map ~vpn:i ~page:p ~prot:Pmap.Prot.rw ~wired:false;
      p)
  in
  Pmap.destroy map;
  Alcotest.(check int) "nothing resident" 0 (Pmap.resident_count map);
  List.iter
    (fun p ->
      Alcotest.(check int) "pv cleaned" 0
        (List.length (Pmap.mappings_of_page ctx p)))
    pages

(* Property: pv lists always agree with the pmap tables. *)
let prop_pv_consistent =
  QCheck.Test.make ~name:"pv lists consistent" ~count:100
    QCheck.(list (pair (int_range 0 2) (int_range 0 7)))
    (fun ops ->
      let pm, ctx = mk () in
      let map = Pmap.create ctx in
      let pages = Array.init 8 (fun _ -> page pm) in
      List.iter
        (fun (op, i) ->
          match op with
          | 0 -> Pmap.enter map ~vpn:i ~page:pages.(i) ~prot:Pmap.Prot.rw ~wired:false
          | 1 -> Pmap.remove_one map ~vpn:i
          | _ -> Pmap.page_remove_all ctx pages.(i))
        ops;
      Array.for_all
        (fun p ->
          List.for_all
            (fun (m, vpn) ->
              match Pmap.lookup m ~vpn with
              | Some pte -> pte.Pmap.page == p
              | None -> false)
            (Pmap.mappings_of_page ctx p))
        pages
      && Pmap.resident_count map
         = (Array.to_list pages
           |> List.concat_map (fun p -> Pmap.mappings_of_page ctx p)
           |> List.length))

let () =
  Alcotest.run "pmap"
    [
      ("prot", [ Alcotest.test_case "algebra" `Quick test_prot_algebra ]);
      ( "translations",
        [
          Alcotest.test_case "enter/lookup/remove" `Quick test_enter_lookup_remove;
          Alcotest.test_case "replace" `Quick test_replace_translation;
          Alcotest.test_case "range ops" `Quick test_range_ops;
          Alcotest.test_case "destroy" `Quick test_destroy;
        ] );
      ( "pv",
        [
          Alcotest.test_case "page-wide ops" `Quick test_page_wide_ops;
          QCheck_alcotest.to_alcotest prop_pv_consistent;
        ] );
      ( "refmod",
        [ Alcotest.test_case "mark access" `Quick test_mark_access ] );
    ]
